package vpr_test

// Tests for the context-aware Engine facade: construction with functional
// options, batch determinism across parallelism levels, cancellation,
// cache observability, and the experiment registry surface.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	vpr "repro"
)

func engineSpec(workload string, scheme vpr.Scheme, instr int64) vpr.RunSpec {
	cfg := vpr.DefaultConfig()
	cfg.Scheme = scheme
	return vpr.RunSpec{Workload: workload, Config: cfg, MaxInstr: instr}
}

func TestEngineRunBatchDeterminism(t *testing.T) {
	specs := []vpr.RunSpec{
		engineSpec("compress", vpr.SchemeConventional, 4000),
		engineSpec("compress", vpr.SchemeVPWriteback, 4000),
		engineSpec("swim", vpr.SchemeConventional, 4000),
		engineSpec("swim", vpr.SchemeVPIssue, 4000),
	}
	ctx := context.Background()
	serial, err := vpr.New(vpr.WithParallelism(1)).RunBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := vpr.New(vpr.WithParallelism(4)).RunBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	archAll := func(rs []vpr.Result) []vpr.Result {
		out := make([]vpr.Result, len(rs))
		for i, r := range rs {
			r.Stats = r.Stats.Arch()
			out[i] = r
		}
		return out
	}
	if !reflect.DeepEqual(archAll(serial), archAll(parallel)) {
		t.Error("RunBatch results differ between parallelism 1 and 4")
	}
	if serial[0].Workload != "compress" || serial[2].Workload != "swim" {
		t.Error("results are not in spec order")
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := vpr.New().Run(ctx, engineSpec("swim", vpr.SchemeConventional, 4000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineCacheHook(t *testing.T) {
	var sims atomic.Int64
	eng := vpr.New(vpr.WithRunHook(func(vpr.RunSpec) { sims.Add(1) }))
	ctx := context.Background()
	spec := engineSpec("compress", vpr.SchemeConventional, 4000)
	for i := 0; i < 3; i++ {
		if _, err := eng.Run(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	if n := sims.Load(); n != 1 {
		t.Errorf("simulations = %d, want 1 (repeats must hit the cache)", n)
	}
	if hits, misses := eng.CacheStats(); hits != 2 || misses != 1 {
		t.Errorf("cache stats = %d/%d, want 2 hits / 1 miss", hits, misses)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	infos := vpr.Experiments()
	if len(infos) != 14 {
		t.Fatalf("registry size = %d, want 14", len(infos))
	}
	seen := map[string]bool{}
	for _, e := range infos {
		if e.Name == "" || e.Title == "" || e.Reproduces == "" {
			t.Errorf("incomplete experiment info %+v", e)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"table2", "fig4", "fig5", "fig6", "fig7", "smt", "lifetime", "multicore", "coherence"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestEngineRunExperiment(t *testing.T) {
	eng := vpr.New()
	opts := vpr.ExperimentOptions{Instr: 5000, Workloads: []string{"compress", "swim"}}
	res, err := eng.RunExperiment(context.Background(), "table2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "table2" {
		t.Errorf("res.Name = %q", res.Name)
	}
	tab, ok := res.Value.(vpr.Table2)
	if !ok {
		t.Fatalf("res.Value has type %T, want vpr.Table2", res.Value)
	}
	if len(tab.Rows) != 2 || !tab.HavePenalty20 {
		t.Errorf("table2 value = %+v", tab)
	}
	for _, want := range []string{"harmonic mean", "swim", "imp(%)"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("rendered text missing %q:\n%s", want, res.Text)
		}
	}
}

func TestEngineRunExperimentUnknown(t *testing.T) {
	_, err := vpr.New().RunExperiment(context.Background(), "nonesuch", vpr.ExperimentOptions{})
	var ue *vpr.UnknownExperimentError
	if !errors.As(err, &ue) || ue.Name != "nonesuch" {
		t.Fatalf("err = %v, want UnknownExperimentError", err)
	}
}

func TestEngineSMT(t *testing.T) {
	cfg := vpr.DefaultConfig()
	cfg.Rename.PhysRegs = 96
	cfg.Rename.NRRInt = 16
	cfg.Rename.NRRFP = 16
	res, err := vpr.New().RunSMT(context.Background(), vpr.SMTSpec{
		Workloads:         []string{"hydro2d", "hydro2d"},
		Config:            cfg,
		MaxInstrPerThread: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerThreadCommitted) != 2 || res.Stats.Committed != 4000 {
		t.Errorf("smt result = %+v", res)
	}
}
