#!/usr/bin/env python3
"""Docs lint, run by the CI docs job.

Checks two things over README.md and docs/*.md:

  1. every intra-repo markdown link resolves to an existing file or
     directory (anchors are stripped; external http/https/mailto links
     are ignored), so docs never point at moved or deleted files.
     Links are resolved against the linking file's own directory — a
     docs/*.md link like ../internal/lint is checked against the repo
     tree, not just README-rooted paths — "/"-prefixed links resolve
     from the repo root, and a link that escapes the repository is an
     error even if the escaped path happens to exist;
  2. every fenced ```go block that is a complete file (starts with a
     package clause) is gofmt-clean, so example code in the docs stays
     copy-pasteable. Fragment blocks (no package clause) are skipped,
     and the whole check is skipped with a notice when gofmt is not on
     PATH.

Exits non-zero with one line per problem.
"""

import re
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)\)")
GO_BLOCK = re.compile(r"```go\n(.*?)```", re.S)


def check(md: Path, errors: list[str]) -> None:
    text = md.read_text()
    rel = md.relative_to(ROOT)
    for m in LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        if path.startswith("/"):  # repo-root-anchored
            resolved = (ROOT / path.lstrip("/")).resolve()
        else:  # relative to the linking file's directory
            resolved = (md.parent / path).resolve()
        if not resolved.is_relative_to(ROOT):
            errors.append(f"{rel}: link {target} escapes the repository")
        elif not resolved.exists():
            errors.append(f"{rel}: broken link {target}")

    gofmt = shutil.which("gofmt")
    for block in GO_BLOCK.findall(text):
        if not block.lstrip().startswith("package "):
            continue
        if gofmt is None:
            print(f"{rel}: gofmt not found, skipping code-block check")
            return
        res = subprocess.run(
            [gofmt, "-l"], input=block, capture_output=True, text=True
        )
        if res.returncode != 0:
            errors.append(f"{rel}: go block fails to parse:\n{res.stderr.strip()}")
        elif res.stdout.strip():
            errors.append(f"{rel}: go block is not gofmt-clean")


def main() -> int:
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        print("missing expected docs:", ", ".join(str(f) for f in missing))
        return 1
    errors: list[str] = []
    for md in files:
        check(md, errors)
    for e in errors:
        print(e)
    if errors:
        return 1
    print(f"checkdocs: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
