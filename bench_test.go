package vpr_test

// One benchmark per table and figure of the paper, plus simulator
// throughput benchmarks. Each experiment benchmark regenerates its
// table/figure at a reduced instruction budget and reports the headline
// number as a custom metric, so `go test -bench=.` both times the harness
// and republishes the paper-shaped results.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	vpr "repro"
)

// benchInstr keeps benchmark iterations affordable; cmd/vptables uses
// larger budgets for the published numbers.
const benchInstr = 40_000

func benchOpts() vpr.ExperimentOptions {
	return vpr.ExperimentOptions{Instr: benchInstr}
}

func BenchmarkTable2(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		res, err := vpr.RunTable2(benchOpts(), false)
		if err != nil {
			b.Fatal(err)
		}
		imp = res.ImprovementPct
	}
	b.ReportMetric(imp, "improvement-%")
}

func BenchmarkFigure4(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		sweep, err := vpr.RunFigure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mean = sweep.MeanSpeedupAt(len(sweep.NRRs) - 1)
	}
	b.ReportMetric(mean, "speedup-at-max-NRR")
}

func BenchmarkFigure5(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		sweep, err := vpr.RunFigure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mean = sweep.MeanSpeedupAt(len(sweep.NRRs) - 1)
	}
	b.ReportMetric(mean, "speedup-at-max-NRR")
}

func BenchmarkFigure6(b *testing.B) {
	var wb, issue float64
	for i := 0; i < b.N; i++ {
		rows, err := vpr.RunFigure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		wb, issue = 0, 0
		for _, r := range rows {
			wb += r.WritebackSpeedup
			issue += r.IssueSpeedup
		}
		wb /= float64(len(rows))
		issue /= float64(len(rows))
	}
	b.ReportMetric(wb, "writeback-speedup")
	b.ReportMetric(issue, "issue-speedup")
}

func BenchmarkFigure7(b *testing.B) {
	var imp48, imp96 float64
	for i := 0; i < b.N; i++ {
		fig, err := vpr.RunFigure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		imp48 = fig.MeanImprovementAt(0)
		imp96 = fig.MeanImprovementAt(2)
	}
	b.ReportMetric(imp48, "improvement-48regs-%")
	b.ReportMetric(imp96, "improvement-96regs-%")
}

func BenchmarkPressureExample(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		for _, pt := range []vpr.AllocPoint{vpr.AllocDecode, vpr.AllocIssue, vpr.AllocWriteback} {
			total += vpr.TotalPressure(vpr.ChainPressure(vpr.PaperExampleLatencies(), pt))
		}
	}
	if total == 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkAblationEarlyRelease(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"compress", "swim"}
	for i := 0; i < b.N; i++ {
		if _, err := vpr.RunEarlyReleaseAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDisambiguation(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"compress", "vortex"}
	for i := 0; i < b.N; i++ {
		if _, err := vpr.RunDisambiguationAblation(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatch compares a serial batch against the engine's worker
// pool on the same spec grid (all nine workloads × the three schemes).
// Caching is disabled so every iteration simulates every point; the
// parallel/serial ratio is the wall-clock win `vptables -exp all` sees on
// a multicore machine.
func BenchmarkRunBatch(b *testing.B) {
	var specs []vpr.RunSpec
	for _, w := range vpr.Workloads() {
		for _, scheme := range []vpr.Scheme{vpr.SchemeConventional, vpr.SchemeVPWriteback, vpr.SchemeVPIssue} {
			cfg := vpr.DefaultConfig()
			cfg.Scheme = scheme
			specs = append(specs, vpr.RunSpec{Workload: w.Name, Config: cfg, MaxInstr: benchInstr})
		}
	}
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			eng := vpr.New(vpr.WithParallelism(par), vpr.WithCache(0))
			var committed int64
			for i := 0; i < b.N; i++ {
				results, err := eng.RunBatch(context.Background(), specs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					committed += r.Stats.Committed
				}
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instr/s")
		})
	}
}

// BenchmarkRunBatchCached measures the same grid with the result cache on:
// after the first iteration every point is a cache hit, so this is the
// overlapping-sweep fast path (figures 4/5/7 share baselines).
func BenchmarkRunBatchCached(b *testing.B) {
	var specs []vpr.RunSpec
	for _, w := range vpr.Workloads() {
		cfg := vpr.DefaultConfig()
		specs = append(specs, vpr.RunSpec{Workload: w.Name, Config: cfg, MaxInstr: benchInstr})
	}
	eng := vpr.New()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunBatch(context.Background(), specs); err != nil {
			b.Fatal(err)
		}
	}
	hits, misses := eng.CacheStats()
	b.ReportMetric(float64(hits)/float64(max(hits+misses, 1)), "hit-ratio")
}

// Simulator throughput: simulated instructions per second per scheme, the
// number that matters when scaling experiments up.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, scheme := range []vpr.Scheme{vpr.SchemeConventional, vpr.SchemeVPWriteback, vpr.SchemeVPIssue} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := vpr.DefaultConfig()
			cfg.Scheme = scheme
			var committed int64
			for i := 0; i < b.N; i++ {
				res, err := vpr.Run(vpr.RunSpec{Workload: "compress", Config: cfg, MaxInstr: benchInstr})
				if err != nil {
					b.Fatal(err)
				}
				committed += res.Stats.Committed
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instr/s")
		})
	}
}

// Golden-check overhead: the value-carrying checks are on by default; this
// quantifies their cost next to a checks-off run.
func BenchmarkValueCheckOverhead(b *testing.B) {
	for _, check := range []bool{true, false} {
		name := "on"
		if !check {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := vpr.DefaultConfig()
			cfg.ValueCheck = check
			for i := 0; i < b.N; i++ {
				if _, err := vpr.Run(vpr.RunSpec{Workload: "swim", Config: cfg, MaxInstr: benchInstr}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSMTScaling regenerates the future-work study (paper §5): the VP
// advantage under a shared register file across thread counts.
func BenchmarkSMTScaling(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"hydro2d"}
	var one, two float64
	for i := 0; i < b.N; i++ {
		rows, err := vpr.RunSMTScaling([]int{1, 2}, opts)
		if err != nil {
			b.Fatal(err)
		}
		one, two = rows[0].ImprovementPct, rows[1].ImprovementPct
	}
	b.ReportMetric(one, "improvement-1T-%")
	b.ReportMetric(two, "improvement-2T-%")
}
