package vpr_test

import (
	"errors"
	"strings"
	"testing"

	vpr "repro"
)

func TestWorkloadCatalog(t *testing.T) {
	ws := vpr.Workloads()
	if len(ws) != 9 {
		t.Fatalf("catalog size = %d, want 9 (the paper's benchmark set)", len(ws))
	}
	classes := map[string]int{}
	for _, w := range ws {
		classes[w.Class]++
		if w.Description == "" {
			t.Errorf("%s: empty description", w.Name)
		}
	}
	if classes["int"] != 4 || classes["fp"] != 5 {
		t.Errorf("class split = %v, want 4 int / 5 fp", classes)
	}
}

func TestRunCatalogWorkload(t *testing.T) {
	cfg := vpr.DefaultConfig()
	cfg.Scheme = vpr.SchemeVPWriteback
	res, err := vpr.Run(vpr.RunSpec{Workload: "compress", Config: cfg, MaxInstr: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != 5000 || res.Stats.IPC() <= 0 {
		t.Errorf("stats = %s", res.Stats)
	}
}

func TestUnknownWorkloadError(t *testing.T) {
	_, err := vpr.WorkloadGenerator("nonesuch")
	var uw *vpr.UnknownWorkloadError
	if !errors.As(err, &uw) || uw.Name != "nonesuch" {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "nonesuch") {
		t.Errorf("message %q", err)
	}
}

func TestCustomProgramEndToEnd(t *testing.T) {
	prog, err := vpr.Assemble("loop", `
        ldi  r1, 2000
loop:   addi r2, r2, 3
        subi r1, r1, 1
        bne  r1, loop
        halt`)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []vpr.Scheme{vpr.SchemeConventional, vpr.SchemeVPWriteback, vpr.SchemeVPIssue} {
		gen, err := vpr.NewTrace(prog)
		if err != nil {
			t.Fatal(err)
		}
		cfg := vpr.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Debug = true
		res, err := vpr.Run(vpr.RunSpec{Gen: vpr.TakeTrace(gen, 4000), Config: cfg})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Stats.Committed != 4000 {
			t.Errorf("%s: committed %d", scheme, res.Stats.Committed)
		}
	}
}

func TestAssembleErrorSurface(t *testing.T) {
	if _, err := vpr.Assemble("bad", "frobnicate r1"); err == nil {
		t.Error("assembler errors must surface through the facade")
	}
}

func TestPressureModelFacade(t *testing.T) {
	decode := vpr.TotalPressure(vpr.ChainPressure(vpr.PaperExampleLatencies(), vpr.AllocDecode))
	wb := vpr.TotalPressure(vpr.ChainPressure(vpr.PaperExampleLatencies(), vpr.AllocWriteback))
	if decode != 151 || wb != 38 {
		t.Errorf("pressure = %d/%d, want 151/38", decode, wb)
	}
}

func TestMetricsFacade(t *testing.T) {
	if hm := vpr.HarmonicMean([]float64{2, 2}); hm != 2 {
		t.Errorf("harmonic mean = %v", hm)
	}
	if imp := vpr.ImprovementPct(1.0, 1.19); imp < 18.9 || imp > 19.1 {
		t.Errorf("improvement = %v", imp)
	}
}
