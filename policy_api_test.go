package vpr_test

// Tests for the pluggable stage-policy and probe surface of the facade:
// probe determinism across engine parallelism levels, the no-callbacks-
// after-return cancellation guarantee, cache interaction (probed runs
// bypass cache reads; policy selections key the cache by name), and the
// registry-driven SMT fetch-policy experiment.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	vpr "repro"
)

// countingProbe tallies events with atomics — engine probes are invoked
// from several goroutines at once during parallel batches.
type countingProbe struct {
	vpr.BaseProbe
	dispatched, issued, completed, committed atomic.Int64

	// closed is set by tests after the engine call returns; any callback
	// arriving afterwards trips late.
	closed atomic.Bool
	late   atomic.Int64
}

func (p *countingProbe) note(n *atomic.Int64) {
	if p.closed.Load() {
		p.late.Add(1)
	}
	n.Add(1)
}

func (p *countingProbe) Dispatched(int64, int, int64) { p.note(&p.dispatched) }
func (p *countingProbe) Issued(int64, int, int64)     { p.note(&p.issued) }
func (p *countingProbe) Completed(int64, int, int64)  { p.note(&p.completed) }
func (p *countingProbe) Committed(int64, int, int64)  { p.note(&p.committed) }

func policyBatchSpecs(instr int64) []vpr.RunSpec {
	var specs []vpr.RunSpec
	for _, wl := range []string{"compress", "swim", "hydro2d"} {
		for _, scheme := range []vpr.Scheme{vpr.SchemeConventional, vpr.SchemeVPWriteback} {
			cfg := vpr.DefaultConfig()
			cfg.Scheme = scheme
			specs = append(specs, vpr.RunSpec{Workload: wl, Config: cfg, MaxInstr: instr})
		}
	}
	return specs
}

// TestProbeCountsDeterministicAcrossParallelism: a counting probe attached
// to the engine sees identical event totals whether the batch ran serially
// or on the full worker pool, and the totals tie out against the results.
func TestProbeCountsDeterministicAcrossParallelism(t *testing.T) {
	specs := policyBatchSpecs(4000)
	run := func(par int) (*countingProbe, []vpr.Result) {
		probe := &countingProbe{}
		eng := vpr.New(vpr.WithParallelism(par), vpr.WithProbe(probe))
		results, err := eng.RunBatch(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		return probe, results
	}
	serialProbe, serialRes := run(1)
	parProbe, parRes := run(8)
	if s, p := serialProbe.committed.Load(), parProbe.committed.Load(); s != p {
		t.Errorf("committed events: serial %d, parallel %d", s, p)
	}
	if s, p := serialProbe.issued.Load(), parProbe.issued.Load(); s != p {
		t.Errorf("issued events: serial %d, parallel %d", s, p)
	}
	if s, p := serialProbe.dispatched.Load(), parProbe.dispatched.Load(); s != p {
		t.Errorf("dispatched events: serial %d, parallel %d", s, p)
	}
	var committed int64
	for _, r := range serialRes {
		committed += r.Stats.Committed
	}
	if got := serialProbe.committed.Load(); got != committed {
		t.Errorf("probe saw %d commits, results total %d", got, committed)
	}
	for i := range serialRes {
		if serialRes[i].Stats.Arch() != parRes[i].Stats.Arch() {
			t.Errorf("spec %d: results diverge across parallelism with a probe attached", i)
		}
	}
}

// TestProbeNoCallbacksAfterCancelledBatchReturns: cancelling a batch
// mid-run must not leak probe callbacks past RunBatch's return — the
// worker pool drains before the error surfaces.
func TestProbeNoCallbacksAfterCancelledBatchReturns(t *testing.T) {
	probe := &countingProbe{}
	eng := vpr.New(vpr.WithParallelism(4), vpr.WithProbe(probe), vpr.WithCache(0))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := eng.RunBatch(ctx, policyBatchSpecs(3_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	probe.closed.Store(true)
	time.Sleep(50 * time.Millisecond)
	if n := probe.late.Load(); n != 0 {
		t.Errorf("%d probe callbacks arrived after RunBatch returned", n)
	}
}

// TestProbedRunsBypassCacheReads: a probed spec must always simulate (a
// cached result would silently skip every callback), while still feeding
// the cache for unprobed repeats.
func TestProbedRunsBypassCacheReads(t *testing.T) {
	var sims atomic.Int64
	probe := &countingProbe{}
	eng := vpr.New(
		vpr.WithProbe(probe),
		vpr.WithRunHook(func(vpr.RunSpec) { sims.Add(1) }),
	)
	ctx := context.Background()
	spec := vpr.RunSpec{Workload: "compress", Config: vpr.DefaultConfig(), MaxInstr: 4000}
	for i := 0; i < 3; i++ {
		if _, err := eng.Run(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	if n := sims.Load(); n != 3 {
		t.Errorf("probed runs simulated %d times, want 3 (no cache reads)", n)
	}
	if got, want := probe.committed.Load(), int64(3*4000); got != want {
		t.Errorf("probe saw %d commits, want %d", got, want)
	}
	// The probed runs populated the cache: an unprobed engine sharing the
	// cache would hit, but within this engine the probe keeps bypassing.
	var unprobedSims atomic.Int64
	eng2 := vpr.New(vpr.WithRunHook(func(vpr.RunSpec) { unprobedSims.Add(1) }))
	spec2 := spec // per-spec probe instead of engine probe
	spec2.Config.Policies.Probe = &countingProbe{}
	if _, err := eng2.Run(ctx, spec2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if n := unprobedSims.Load(); n != 1 {
		t.Errorf("unprobed repeat simulated (%d sims, want 1): probed run did not populate the cache", n)
	}
}

// TestPolicySelectionKeysCache: policies key the result cache by name —
// two instances of the same named policy share an entry; a different
// policy is a different point.
func TestPolicySelectionKeysCache(t *testing.T) {
	var sims atomic.Int64
	eng := vpr.New(vpr.WithRunHook(func(vpr.RunSpec) { sims.Add(1) }))
	ctx := context.Background()
	mkSpec := func(issue string) vpr.RunSpec {
		cfg := vpr.DefaultConfig()
		if issue != "" {
			sel, ok := vpr.IssueSelectByName(issue)
			if !ok {
				t.Fatalf("unknown issue-select %q", issue)
			}
			cfg.Policies.Issue = sel
		}
		return vpr.RunSpec{Workload: "compress", Config: cfg, MaxInstr: 4000}
	}
	if _, err := eng.Run(ctx, mkSpec(vpr.IssueLoadFirst)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, mkSpec(vpr.IssueLoadFirst)); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 1 {
		t.Errorf("same named policy simulated %d times, want 1 (cache by name)", n)
	}
	if _, err := eng.Run(ctx, mkSpec(vpr.IssueLongLatencyFirst)); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 2 {
		t.Errorf("different policy hit the cache (%d sims, want 2)", n)
	}
	// The explicit default must share the zero value's entry.
	if _, err := eng.Run(ctx, mkSpec("")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, mkSpec(vpr.IssueOldestFirst)); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 3 {
		t.Errorf("explicit oldest-first did not share the default's entry (%d sims, want 3)", n)
	}
}

// TestFacadePolicyRegistry: the facade exposes the policy registry.
func TestFacadePolicyRegistry(t *testing.T) {
	if fp := vpr.FetchPolicies(); len(fp) < 2 || fp[0].Name != vpr.FetchRoundRobin {
		t.Errorf("FetchPolicies = %+v", fp)
	}
	if is := vpr.IssueSelects(); len(is) < 3 || is[0].Name != vpr.IssueOldestFirst {
		t.Errorf("IssueSelects = %+v", is)
	}
	if _, ok := vpr.FetchPolicyByName(vpr.FetchICount); !ok {
		t.Error("icount not resolvable through the facade")
	}
	if _, ok := vpr.IssueSelectByName("nonesuch"); ok {
		t.Error("unknown heuristic resolved")
	}
}

// TestSMTFetchExperiment: the registry's smt-fetch study renders a table
// comparing the two policies.
func TestSMTFetchExperiment(t *testing.T) {
	eng := vpr.New()
	opts := vpr.ExperimentOptions{Instr: 4000, Workloads: []string{"compress", "swim"}}
	res, err := eng.RunExperiment(context.Background(), "smt-fetch", opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Value.([]vpr.FetchPolicyRow)
	if !ok {
		t.Fatalf("res.Value has type %T, want []vpr.FetchPolicyRow", res.Value)
	}
	// 2 heterogeneous mixes × 2 thread counts.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (%+v)", len(rows), rows)
	}
	if rows[0].Mix != "compress+swim" || rows[0].Threads != 2 {
		t.Errorf("first row = %+v", rows[0])
	}
	for _, want := range []string{"icount IPC", "rr IPC", "compress+swim", "imp(%)"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("rendering missing %q:\n%s", want, res.Text)
		}
	}
}

// TestExperimentPolicyOptions: the experiment-wide policy override applies
// to every point and rejects unknown names.
func TestExperimentPolicyOptions(t *testing.T) {
	eng := vpr.New(vpr.WithCache(0))
	opts := vpr.ExperimentOptions{Instr: 3000, Workloads: []string{"compress"}, IssueSelect: vpr.IssueLoadFirst}
	if _, err := eng.RunExperiment(context.Background(), "fig6", opts); err != nil {
		t.Fatalf("fig6 with load-first: %v", err)
	}
	opts.IssueSelect = "nonesuch"
	if _, err := eng.RunExperiment(context.Background(), "fig6", opts); err == nil {
		t.Fatal("unknown issue-select accepted")
	}
	opts.IssueSelect = ""
	opts.FetchPolicy = "nonesuch"
	if _, err := eng.RunExperiment(context.Background(), "fig6", opts); err == nil {
		t.Fatal("unknown fetch policy accepted")
	}
}
