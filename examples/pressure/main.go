// Pressure walks through the paper's §3.1 motivating example: a serial
// dependence chain (load miss → fdiv → fmul → fadd, all writing f2) where
// conventional decode-time allocation holds three registers for 151
// register·cycles, while write-back allocation needs only 38.
package main

import (
	"fmt"
	"strings"

	vpr "repro"
)

func main() {
	fmt.Println("Paper §3.1:   load f2,0(r6); fdiv f2,f2,f10; fmul f2,f2,f12; fadd f2,f2,1")
	fmt.Println("latencies:    load miss 20, fdiv 20, fmul 10, fadd 5; all decoded in cycle 0")
	fmt.Println()

	lat := vpr.PaperExampleLatencies()
	points := []vpr.AllocPoint{vpr.AllocDecode, vpr.AllocIssue, vpr.AllocWriteback}

	baseline := vpr.TotalPressure(vpr.ChainPressure(lat, vpr.AllocDecode))
	for _, pt := range points {
		ivs := vpr.ChainPressure(lat, pt)
		total := vpr.TotalPressure(ivs)
		fmt.Printf("allocate at %-10s  total %3d reg·cycles  (reduction %3.0f%%)\n",
			pt.String()+":", total, 100*(1-float64(total)/float64(baseline)))
		for i, iv := range ivs {
			bar := strings.Repeat(" ", iv.Alloc/2) + strings.Repeat("#", (iv.Free-iv.Alloc+1)/2)
			fmt.Printf("    p%d held [%2d,%2d) %2d cycles  %s\n", i+1, iv.Alloc, iv.Free, iv.Cycles(), bar)
		}
	}

	fmt.Println("\nThe same arithmetic on a chain dominated by a 100-cycle memory miss:")
	long := []int{100, 4, 4, 4}
	for _, pt := range points {
		total := vpr.TotalPressure(vpr.ChainPressure(long, pt))
		fmt.Printf("    allocate at %-10s %4d reg·cycles\n", pt.String()+":", total)
	}
	fmt.Println("the longer the producer latency, the larger late allocation's advantage.")
}
