// Example multicore runs the same workload on 1, 2 and 4 cores behind
// the banked shared L2 and prints the aggregate IPC and shared-L2
// behaviour per point — the smallest end-to-end use of the multi-core
// runner (pipeline.Multicore via vpr.RunMulticore).
package main

import (
	"fmt"
	"log"

	vpr "repro"
)

func main() {
	const workload = "compress"
	const instrPerCore = 50_000

	l2 := vpr.DefaultL2Config()
	fmt.Printf("shared L2: %d KB, %d banks, hit +%d / miss +%d cycles, %d-cycle bank bus\n\n",
		l2.SizeBytes/1024, l2.Banks, l2.HitPenalty, l2.MissPenalty, l2.BankBusCycles)

	for _, cores := range []int{1, 2, 4} {
		names := make([]string, cores)
		for i := range names {
			names[i] = workload
		}
		cfg := vpr.DefaultConfig()
		cfg.Scheme = vpr.SchemeVPWriteback
		res, err := vpr.RunMulticore(vpr.MulticoreSpec{
			Workloads:       names,
			Config:          cfg,
			L2:              l2,
			MaxInstrPerCore: instrPerCore,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("%d core(s): aggregate IPC %.3f over %d cycles", cores, st.IPC(), st.Cycles)
		if st.L2Fetches > 0 {
			fmt.Printf(", L2 miss ratio %.3f, %d refill merges, %d bank conflicts",
				st.L2MissRatio(), st.L2Merges, st.L2Conflicts)
		}
		fmt.Println()
		for i, cs := range res.PerCore {
			fmt.Printf("  core %d: IPC %.3f, L1 miss ratio %.3f\n", i, cs.IPC(), cs.MissRatio())
		}
	}
}
