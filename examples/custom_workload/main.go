// Custom workload: write a kernel in the mini-ISA assembly, run it through
// the functional emulator to get a golden trace, and compare all three
// renaming schemes on it. The kernel here is SAXPY over arrays that miss in
// the 16 KB L1 — a classic candidate for late register allocation.
//
// Custom-generator runs carry a GenID so the engine's result cache can
// identify them: re-running the same scheme costs nothing (the second loop
// below hits the cache instead of re-simulating).
package main

import (
	"context"
	"fmt"
	"log"

	vpr "repro"
)

const saxpy = `
        .data
x:      .space 262144          ; 256 KB: streams miss in the 16 KB L1
y:      .space 262144
        .text
        ldi   r9, 1000000      ; outer repetitions (trace is cut by MaxInstr)
outer:  ldi   r1, x
        ldi   r2, y
        ldi   r4, 8192         ; elements per pass
loop:   ldt   f1, 0(r1)        ; x[i]
        ldt   f2, 0(r2)        ; y[i]
        fmul  f3, f1, f10      ; a*x[i]
        fadd  f4, f3, f2       ; a*x[i] + y[i]
        fmul  f5, f1, f11      ; a second independent use of x[i]
        fadd  f6, f5, f4
        stt   0(r2), f6        ; y[i] = result
        addi  r1, r1, 8
        addi  r2, r2, 8
        subi  r4, r4, 1
        bne   r4, loop
        subi  r9, r9, 1
        bne   r9, outer
        halt
`

func main() {
	prog, err := vpr.Assemble("saxpy", saxpy)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	eng := vpr.New()
	schemes := []vpr.Scheme{vpr.SchemeConventional, vpr.SchemeVPIssue, vpr.SchemeVPWriteback}

	run := func(scheme vpr.Scheme) vpr.Stats {
		gen, err := vpr.NewTrace(prog)
		if err != nil {
			log.Fatal(err)
		}
		cfg := vpr.DefaultConfig()
		cfg.Scheme = scheme
		res, err := eng.Run(ctx, vpr.RunSpec{
			Gen:      vpr.TakeTrace(gen, 80_000),
			GenID:    "saxpy/80k", // lets the result cache identify this trace
			Config:   cfg,
			MaxInstr: 0, // the generator is already bounded
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Stats
	}

	fmt.Println("saxpy on the paper's machine, 80k instructions, 64 regs/file:")
	for _, scheme := range schemes {
		st := run(scheme)
		fmt.Printf("  %-9s IPC %.3f  miss ratio %4.1f%%  avg FP regs %4.1f  exec/commit %.2f\n",
			scheme.String()+":", st.IPC(), st.MissRatio()*100, st.AvgFPRegs(), st.ExecPerCommit())
	}

	// The second pass is free: every (GenID, config, budget) point is
	// already in the engine's result cache.
	for _, scheme := range schemes {
		run(scheme)
	}
	hits, misses := eng.CacheStats()
	fmt.Printf("\nresult cache: %d hits, %d misses (the re-run never touched the simulator)\n", hits, misses)

	fmt.Println("\nboth virtual-physical variants hold far fewer FP registers than the baseline;")
	fmt.Println("on this kernel issue allocation's freedom from re-execution makes it competitive")
	fmt.Println("with write-back allocation, while across the nine paper workloads write-back")
	fmt.Println("wins clearly (run ./cmd/vptables -exp fig6).")
}
