// Policies demonstrates the pluggable stage-policy and probe surface: it
// sweeps every registered issue-select heuristic over a miss-heavy
// workload with a cycle-level probe attached, then compares the two SMT
// fetch policies on an asymmetric two-thread machine. Policies come out of
// the registry by name — the same names the -fetch/-issue flags of
// cmd/vptables and cmd/vpbench accept.
package main

import (
	"context"
	"fmt"
	"log"

	vpr "repro"
)

// latencyProbe measures how long issued instructions stay in flight by
// pairing Issued and Completed events per (thread, inum). The probe API
// hands observers scalar callbacks straight off the kernel's hot path;
// whatever bookkeeping they build from those is their own. This probe is
// attached per-spec to a single run, so plain fields suffice — an
// engine-wide probe shared by parallel batches would need atomics.
type latencyProbe struct {
	vpr.BaseProbe
	issuedAt map[int64]int64
	sum, n   int64
}

func (p *latencyProbe) Issued(cycle int64, tid int, inum int64) {
	if p.issuedAt == nil {
		p.issuedAt = make(map[int64]int64)
	}
	p.issuedAt[int64(tid)<<48|inum] = cycle
}

func (p *latencyProbe) Completed(cycle int64, tid int, inum int64) {
	key := int64(tid)<<48 | inum
	if at, ok := p.issuedAt[key]; ok {
		p.sum += cycle - at
		p.n++
		delete(p.issuedAt, key)
	}
}

func (p *latencyProbe) mean() float64 {
	if p.n == 0 {
		return 0
	}
	return float64(p.sum) / float64(p.n)
}

func main() {
	ctx := context.Background()
	const instr = 50_000

	fmt.Println("issue-select heuristics on swim (vp-issue, 48 regs, NRR 8):")
	for _, info := range vpr.IssueSelects() {
		sel, _ := vpr.IssueSelectByName(info.Name)
		probe := &latencyProbe{}
		cfg := vpr.DefaultConfig()
		cfg.Scheme = vpr.SchemeVPIssue
		cfg.Rename.PhysRegs = 48
		cfg.Rename.NRRInt, cfg.Rename.NRRFP = 8, 8
		cfg.Policies.Issue = sel
		cfg.Policies.Probe = probe

		res, err := vpr.New().Run(ctx, vpr.RunSpec{Workload: "swim", Config: cfg, MaxInstr: instr})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s IPC %.3f  issue blocks %6d  mean issue→complete %.1f cycles\n",
			info.Name, res.Stats.IPC(), res.Stats.IssueBlocks, probe.mean())
	}

	fmt.Println("\nSMT fetch policies, compress+swim sharing the machine (vp-wb, 2 threads):")
	for _, info := range vpr.FetchPolicies() {
		pol, _ := vpr.FetchPolicyByName(info.Name)
		cfg := vpr.DefaultConfig()
		cfg.Scheme = vpr.SchemeVPWriteback
		cfg.Rename.PhysRegs = 96
		cfg.Rename.NRRInt, cfg.Rename.NRRFP = 16, 16
		cfg.Policies.Fetch = pol

		res, err := vpr.New().RunSMT(ctx, vpr.SMTSpec{
			Workloads:         []string{"compress", "swim"},
			Config:            cfg,
			MaxInstrPerThread: instr / 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s aggregate IPC %.3f  per-thread %v\n",
			info.Name, res.Stats.IPC(), res.PerThreadCommitted)
	}
}
