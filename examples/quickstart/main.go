// Quickstart: simulate one workload under conventional and virtual-physical
// renaming and print the headline comparison — the smallest end-to-end use
// of the library. The two points are independent, so they go through
// Engine.RunBatch and run concurrently on multicore machines.
package main

import (
	"context"
	"fmt"
	"log"

	vpr "repro"
)

func main() {
	const workload = "swim" // the paper's best case: streaming FP stencil
	const instructions = 100_000

	// The default configuration is the paper's §4.1 machine: 8-way
	// out-of-order, 128-entry ROB, 64 physical registers per file,
	// 16 KB lockup-free L1.
	spec := func(scheme vpr.Scheme) vpr.RunSpec {
		cfg := vpr.DefaultConfig()
		cfg.Scheme = scheme
		return vpr.RunSpec{Workload: workload, Config: cfg, MaxInstr: instructions}
	}

	eng := vpr.New() // GOMAXPROCS-wide worker pool, result cache
	results, err := eng.RunBatch(context.Background(), []vpr.RunSpec{
		spec(vpr.SchemeConventional),
		spec(vpr.SchemeVPWriteback),
	})
	if err != nil {
		log.Fatal(err)
	}
	conv, vpwb := results[0].Stats, results[1].Stats

	fmt.Printf("workload %s, %d instructions, 64 physical registers per file\n\n", workload, instructions)
	fmt.Printf("conventional renaming:      IPC %.3f  (%d cycles, %.1f FP regs in use)\n",
		conv.IPC(), conv.Cycles, conv.AvgFPRegs())
	fmt.Printf("virtual-physical (wb):      IPC %.3f  (%d cycles, %.1f FP regs in use)\n",
		vpwb.IPC(), vpwb.Cycles, vpwb.AvgFPRegs())
	fmt.Printf("\nimprovement: %+.0f%%  (the paper reports +84%% for swim)\n",
		vpr.ImprovementPct(conv.IPC(), vpwb.IPC()))
	fmt.Printf("each committed instruction executed %.2f times (write-back allocation re-executes)\n",
		vpwb.ExecPerCommit())
}
