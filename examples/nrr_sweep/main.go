// NRR sweep: reproduce one workload's slice of the paper's figure 4 — the
// speedup of virtual-physical renaming over the conventional scheme as the
// number of reserved registers (NRR, the deadlock-avoidance parameter)
// varies from 1 to its maximum.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	vpr "repro"
)

func main() {
	workload := flag.String("workload", "compress", "workload to sweep")
	instr := flag.Int64("instr", 60_000, "instructions per run")
	flag.Parse()

	base := vpr.DefaultConfig()
	conv, err := vpr.Run(vpr.RunSpec{Workload: *workload, Config: base, MaxInstr: *instr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: conventional IPC %.3f\n\n", *workload, conv.Stats.IPC())
	fmt.Println("NRR  speedup  (vs conventional)")

	for _, nrr := range []int{1, 4, 8, 16, 24, 32} {
		cfg := vpr.DefaultConfig()
		cfg.Scheme = vpr.SchemeVPWriteback
		cfg.Rename.NRRInt = nrr
		cfg.Rename.NRRFP = nrr
		res, err := vpr.Run(vpr.RunSpec{Workload: *workload, Config: cfg, MaxInstr: *instr})
		if err != nil {
			log.Fatal(err)
		}
		sp := res.Stats.IPC() / conv.Stats.IPC()
		bar := strings.Repeat("█", int(sp*30))
		marker := ""
		if sp < 1 {
			marker = "  <- worse than conventional (paper §4.2.2: very small NRR)"
		}
		fmt.Printf("%3d  %.3f    %s%s\n", nrr, sp, bar, marker)
	}
	fmt.Println("\nreserving everything (NRR = physical - logical = 32) is the paper's safe default;")
	fmt.Println("small reservations let young instructions hoard registers and can lose to the baseline.")
}
