// NRR sweep: reproduce one workload's slice of the paper's figure 4 — the
// speedup of virtual-physical renaming over the conventional scheme as the
// number of reserved registers (NRR, the deadlock-avoidance parameter)
// varies from 1 to its maximum. The seven points (one conventional
// baseline + six NRR values) are built as one spec list and fanned out
// over Engine.RunBatch.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	vpr "repro"
)

func main() {
	workload := flag.String("workload", "compress", "workload to sweep")
	instr := flag.Int64("instr", 60_000, "instructions per run")
	flag.Parse()

	nrrs := []int{1, 4, 8, 16, 24, 32}
	specs := []vpr.RunSpec{{Workload: *workload, Config: vpr.DefaultConfig(), MaxInstr: *instr}}
	for _, nrr := range nrrs {
		cfg := vpr.DefaultConfig()
		cfg.Scheme = vpr.SchemeVPWriteback
		cfg.Rename.NRRInt = nrr
		cfg.Rename.NRRFP = nrr
		specs = append(specs, vpr.RunSpec{Workload: *workload, Config: cfg, MaxInstr: *instr})
	}

	eng := vpr.New()
	results, err := eng.RunBatch(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}
	conv := results[0]
	fmt.Printf("%s: conventional IPC %.3f\n\n", *workload, conv.Stats.IPC())
	fmt.Println("NRR  speedup  (vs conventional)")

	for i, nrr := range nrrs {
		res := results[1+i]
		sp := res.Stats.IPC() / conv.Stats.IPC()
		bar := strings.Repeat("█", int(sp*30))
		marker := ""
		if sp < 1 {
			marker = "  <- worse than conventional (paper §4.2.2: very small NRR)"
		}
		fmt.Printf("%3d  %.3f    %s%s\n", nrr, sp, bar, marker)
	}
	fmt.Println("\nreserving everything (NRR = physical - logical = 32) is the paper's safe default;")
	fmt.Println("small reservations let young instructions hoard registers and can lose to the baseline.")
}
