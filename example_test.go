package vpr_test

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	vpr "repro"
)

// commitCounter observes commits and memory-order squashes; embedding
// BaseProbe supplies no-ops for every other event. Engine-attached probes
// run concurrently during parallel batches, hence the atomics.
type commitCounter struct {
	vpr.BaseProbe
	commits  atomic.Int64
	squashes atomic.Int64
}

func (p *commitCounter) Committed(cycle int64, tid int, inum int64) { p.commits.Add(1) }

func (p *commitCounter) Squashed(cycle int64, tid int, from int64, flushed int) {
	p.squashes.Add(1)
}

// Example_policiesAndProbes selects a non-default issue heuristic from the
// policy registry and attaches a cycle-level probe to the engine: the
// probe observes every commit of a real simulation (probed runs bypass
// cache reads), and the policy participates in the result-cache key by
// name.
func Example_policiesAndProbes() {
	probe := &commitCounter{}
	eng := vpr.New(vpr.WithProbe(probe))

	cfg := vpr.DefaultConfig()
	cfg.Scheme = vpr.SchemeVPWriteback
	if sel, ok := vpr.IssueSelectByName(vpr.IssueLoadFirst); ok {
		cfg.Policies.Issue = sel // ready loads issue ahead of ALU work
	}

	res, err := eng.Run(context.Background(), vpr.RunSpec{
		Workload: "compress",
		Config:   cfg,
		MaxInstr: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d instructions; probe saw %d commits\n",
		res.Stats.Committed, probe.commits.Load())
	// Output:
	// committed 2000 instructions; probe saw 2000 commits
}

// Example_multicoreCoherence runs the same sharing-heavy synthetic
// workload on two cores in one address space, with and without the MSI
// directory over the banked shared L2. With coherence on, stores take
// ownership of their lines and invalidate the other core's copies —
// traffic the coherence-free hierarchy does not model at all. Both runs
// are deterministic, so the example's output is stable.
func Example_multicoreCoherence() {
	eng := vpr.New()
	spec := vpr.MulticoreSpec{
		// "synth:" names a preset of the synthetic trace generator; the
		// sharing preset is store-heavy over one small resident set.
		Workloads:          []string{"synth:sharing", "synth:sharing"},
		Config:             vpr.DefaultConfig(),
		L2:                 vpr.DefaultL2Config(),
		SharedAddressSpace: true, // both cores address the same lines
		MaxInstrPerCore:    3000,
	}

	off, err := eng.RunMulticore(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	spec.Coherence = true // MSI directory on; a distinct result-cache key
	on, err := eng.RunMulticore(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coherence off: %d invalidations\n", off.Stats.L2Invalidations)
	fmt.Printf("coherence on:  invalidations > 0: %v, upgrades > 0: %v, slower: %v\n",
		on.Stats.L2Invalidations > 0, on.Stats.L2Upgrades > 0,
		on.Stats.Cycles > off.Stats.Cycles)
	// Output:
	// coherence off: 0 invalidations
	// coherence on:  invalidations > 0: true, upgrades > 0: true, slower: true
}
