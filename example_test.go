package vpr_test

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	vpr "repro"
)

// commitCounter observes commits and memory-order squashes; embedding
// BaseProbe supplies no-ops for every other event. Engine-attached probes
// run concurrently during parallel batches, hence the atomics.
type commitCounter struct {
	vpr.BaseProbe
	commits  atomic.Int64
	squashes atomic.Int64
}

func (p *commitCounter) Committed(cycle int64, tid int, inum int64) { p.commits.Add(1) }

func (p *commitCounter) Squashed(cycle int64, tid int, from int64, flushed int) {
	p.squashes.Add(1)
}

// Example_policiesAndProbes selects a non-default issue heuristic from the
// policy registry and attaches a cycle-level probe to the engine: the
// probe observes every commit of a real simulation (probed runs bypass
// cache reads), and the policy participates in the result-cache key by
// name.
func Example_policiesAndProbes() {
	probe := &commitCounter{}
	eng := vpr.New(vpr.WithProbe(probe))

	cfg := vpr.DefaultConfig()
	cfg.Scheme = vpr.SchemeVPWriteback
	if sel, ok := vpr.IssueSelectByName(vpr.IssueLoadFirst); ok {
		cfg.Policies.Issue = sel // ready loads issue ahead of ALU work
	}

	res, err := eng.Run(context.Background(), vpr.RunSpec{
		Workload: "compress",
		Config:   cfg,
		MaxInstr: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d instructions; probe saw %d commits\n",
		res.Stats.Committed, probe.commits.Load())
	// Output:
	// committed 2000 instructions; probe saw 2000 commits
}
