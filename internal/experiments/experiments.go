// Package experiments turns the paper's evaluation (§4.2) into a
// data-driven experiment registry: every table, figure, ablation and the
// SMT future-work study is a named Experiment value (see registry.go) that
// *builds* a flat list of simulation points and *reduces* the completed
// runs into its typed result. The engine layer executes those points with
// bounded parallelism and a deterministic result cache; rendering to the
// paper's row/series shapes lives in report.go and is shared by
// cmd/vptables and README/EXPERIMENTS generation.
//
// The original free-function runners (RunTable2, RunNRRSweep, ...) remain
// as deprecated wrappers that execute the same plans on a fresh default
// engine.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Options tune a whole experiment.
type Options struct {
	// Instr is the trace length per simulation (the paper used 50M;
	// these kernels reach steady state far sooner).
	Instr int64
	// Workloads restricts the benchmark set (default: the full catalog).
	Workloads []string
	// Progress, when non-nil, receives a line per completed run.
	Progress func(format string, args ...any)

	// FetchPolicy and IssueSelect name pipeline stage policies
	// (pipeline.FetchPolicyByName / IssueSelectByName) applied to every
	// simulation point whose plan did not already choose one. Empty
	// selects the defaults — the paper's machine.
	FetchPolicy string
	IssueSelect string

	// Cores is the core-count sweep of the multicore and coherence
	// experiments (defaults 1,2,4 and 2,4 respectively; the CLI -cores
	// flag).
	Cores []int
	// L2SizeBytes and L2Banks override the shared L2 geometry of the
	// multicore and coherence experiments (0 = mem.DefaultL2Config; the
	// CLI -l2 flag).
	L2SizeBytes int
	L2Banks     int
	// Coherence runs the multicore experiment's points in one shared
	// address space with the directory enabled (the CLI -coherence
	// flag). The coherence experiment ignores it — it sweeps the
	// directory on and off by construction.
	Coherence bool
	// Protocol names the coherence protocol ("msi", "mesi", "moesi";
	// the CLI -protocol flag). The coherence experiment restricts its
	// protocol sweep to the selection; the multicore experiment applies
	// it to its coherent points (and ignores it without Coherence).
	// Empty sweeps all registered protocols / selects msi.
	Protocol string
	// Directory names the sharer representation for every coherent
	// point ("fullmap", "limited[:N]"; the CLI -dir flag). Empty is the
	// exact full-map bitmask; limited pointers lift its 64-core cap.
	Directory string
	// Step selects the multicore stepping strategy for the multicore and
	// coherence experiments ("lockstep", "parallel", "skew:W"; the CLI
	// -step flag). Results are bit-identical across modes — only host
	// throughput changes. Empty means lockstep.
	Step string
}

// stepMode validates and returns the option's stepping mode.
func (o Options) stepMode() (pipeline.StepMode, error) {
	return pipeline.ParseStepMode(o.Step)
}

// checkCoherenceSelections validates the option's protocol and directory
// names against the mem registries, so plan building fails fast.
func (o Options) checkCoherenceSelections() error {
	if _, err := mem.ProtocolByName(o.Protocol); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if err := mem.ParseDirectoryKind(o.Directory); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workloads.Names()
}

func (o Options) instr() int64 {
	if o.Instr > 0 {
		return o.Instr
	}
	return 200_000
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// checkWorkloads validates the option's workload subset against the
// catalog, so plan building fails fast instead of deep inside a batch.
func (o Options) checkWorkloads() error {
	for _, name := range o.workloads() {
		if _, ok := workloads.ByName(name); !ok {
			return fmt.Errorf("experiments: unknown workload %q", name)
		}
	}
	return nil
}

// applyPolicies resolves the option's named stage policies and applies
// them to every point of the plan that has not already chosen its own —
// plan-level selections (e.g. the smt-fetch study's per-point fetch
// policies) win over the experiment-wide override.
func (o Options) applyPolicies(plan *Plan) error {
	if o.FetchPolicy == "" && o.IssueSelect == "" {
		return nil
	}
	var fetch pipeline.FetchPolicy
	var issue pipeline.IssueSelect
	// Errors stay unprefixed: Experiment.Run wraps them with the
	// "experiments: <name>:" context.
	if o.FetchPolicy != "" {
		p, ok := pipeline.FetchPolicyByName(o.FetchPolicy)
		if !ok {
			return fmt.Errorf("unknown fetch policy %q", o.FetchPolicy)
		}
		fetch = p
	}
	if o.IssueSelect != "" {
		sel, ok := pipeline.IssueSelectByName(o.IssueSelect)
		if !ok {
			return fmt.Errorf("unknown issue-select heuristic %q", o.IssueSelect)
		}
		issue = sel
	}
	apply := func(p *pipeline.Policies) {
		if fetch != nil && p.Fetch == nil {
			p.Fetch = fetch
		}
		if issue != nil && p.Issue == nil {
			p.Issue = issue
		}
	}
	for i := range plan.Specs {
		apply(&plan.Specs[i].Config.Policies)
	}
	for i := range plan.SMT {
		apply(&plan.SMT[i].Config.Policies)
	}
	for i := range plan.Multicore {
		apply(&plan.Multicore[i].Config.Policies)
	}
	return nil
}

// baseConfig is the paper's machine with the given scheme, register count
// and NRR (applied to both files, as in §4.2).
func baseConfig(scheme core.Scheme, physRegs, nrr int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Rename.PhysRegs = physRegs
	cfg.Rename.NRRInt = nrr
	cfg.Rename.NRRFP = nrr
	return cfg
}

// point is one simulation point of a plan.
func point(name string, cfg pipeline.Config, instr int64) sim.Spec {
	return sim.Spec{Workload: name, Config: cfg, MaxInstr: instr}
}

// runOne executes a single workload × configuration point synchronously —
// the legacy path used by Run.
func runOne(name string, cfg pipeline.Config, instr int64) (sim.Result, error) {
	return sim.Run(point(name, cfg, instr))
}

// Run is the generic cell evaluator used by the CLI for one-off points.
func Run(name string, scheme core.Scheme, physRegs, nrr int, opts Options,
	mutate func(*pipeline.Config)) (sim.Result, error) {
	cfg := baseConfig(scheme, physRegs, nrr)
	if mutate != nil {
		mutate(&cfg)
	}
	return runOne(name, cfg, opts.instr())
}

// --- Table 2 -------------------------------------------------------------------

// Table2Row is one benchmark's line of Table 2.
type Table2Row struct {
	Workload       string
	Class          string
	ConvIPC        float64
	VPIPC          float64
	ImprovementPct float64
	ExecPerCommit  float64 // VP write-back re-execution factor
}

// Table2 reproduces the paper's Table 2: conventional vs virtual-physical
// (write-back allocation, NRR at maximum) with 64 physical registers per
// file, plus the two footnotes (the 20-cycle miss-penalty variant and the
// executions-per-committed-instruction factor).
type Table2 struct {
	Rows []Table2Row

	HarmonicConv   float64
	HarmonicVP     float64
	ImprovementPct float64

	// Penalty20ImprovementPct is the harmonic-mean improvement with a
	// 20-cycle miss penalty (paper: 12% instead of 19%). Only filled
	// when requested.
	Penalty20ImprovementPct float64
	HavePenalty20           bool

	AvgExecPerCommit float64
}

// table2Plan builds the Table 2 spec list: per workload a conventional and
// a VP write-back point, then (optionally) the same pairs with a 20-cycle
// miss penalty.
func table2Plan(opts Options, withPenalty20 bool) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	nrr := physRegs - 32
	names := opts.workloads()
	var specs []sim.Spec
	for _, name := range names {
		specs = append(specs,
			point(name, baseConfig(core.SchemeConventional, physRegs, nrr), opts.instr()),
			point(name, baseConfig(core.SchemeVPWriteback, physRegs, nrr), opts.instr()))
	}
	if withPenalty20 {
		for _, name := range names {
			c := baseConfig(core.SchemeConventional, physRegs, nrr)
			c.Cache.MissPenalty = 20
			v := baseConfig(core.SchemeVPWriteback, physRegs, nrr)
			v.Cache.MissPenalty = 20
			specs = append(specs, point(name, c, opts.instr()), point(name, v, opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var out Table2
		var convIPCs, vpIPCs []float64
		var execSum float64
		for i, name := range names {
			w, _ := workloads.ByName(name)
			conv, vp := runs[2*i], runs[2*i+1]
			row := Table2Row{
				Workload:       name,
				Class:          w.Class,
				ConvIPC:        conv.Stats.IPC(),
				VPIPC:          vp.Stats.IPC(),
				ImprovementPct: improvementPct(conv.Stats.IPC(), vp.Stats.IPC()),
				ExecPerCommit:  vp.Stats.ExecPerCommit(),
			}
			out.Rows = append(out.Rows, row)
			convIPCs = append(convIPCs, row.ConvIPC)
			vpIPCs = append(vpIPCs, row.VPIPC)
			execSum += row.ExecPerCommit
			opts.progress("table2 %-9s conv %.3f vp %.3f (%+.0f%%)", name, row.ConvIPC, row.VPIPC, row.ImprovementPct)
		}
		out.HarmonicConv = harmonicMean(convIPCs)
		out.HarmonicVP = harmonicMean(vpIPCs)
		out.ImprovementPct = improvementPct(out.HarmonicConv, out.HarmonicVP)
		out.AvgExecPerCommit = execSum / float64(len(out.Rows))

		if withPenalty20 {
			base := 2 * len(names)
			var conv20, vp20 []float64
			for i, name := range names {
				conv, vp := runs[base+2*i], runs[base+2*i+1]
				conv20 = append(conv20, conv.Stats.IPC())
				vp20 = append(vp20, vp.Stats.IPC())
				opts.progress("table2/p20 %-9s conv %.3f vp %.3f", name, conv.Stats.IPC(), vp.Stats.IPC())
			}
			out.Penalty20ImprovementPct = improvementPct(harmonicMean(conv20), harmonicMean(vp20))
			out.HavePenalty20 = true
		}
		return out, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunTable2 executes the experiment.
//
// Deprecated: construct an engine and use Experiment "table2" via
// Experiment.Run (or vpr.Engine.RunExperiment) instead; this wrapper runs
// the same plan on a fresh default engine.
func RunTable2(opts Options, withPenalty20 bool) (Table2, error) {
	v, err := runPlan(table2Plan(opts, withPenalty20))
	if err != nil {
		return Table2{}, err
	}
	return v.(Table2), nil
}

// --- Figures 4 and 5 (NRR sweeps) -------------------------------------------------

// PaperNRRs is the NRR set from figures 4 and 5.
var PaperNRRs = []int{1, 4, 8, 16, 24, 32}

// NRRSweep holds a speedup-vs-NRR figure: Speedup[workload][i] is
// IPC(vp)/IPC(conv) at NRRs[i].
type NRRSweep struct {
	Scheme  core.Scheme
	NRRs    []int
	ConvIPC map[string]float64
	Speedup map[string][]float64
}

// nrrSweepPlan builds figure 4 (SchemeVPWriteback) or figure 5
// (SchemeVPIssue): per workload one conventional baseline point and one VP
// point per NRR value, at 64 physical registers.
func nrrSweepPlan(scheme core.Scheme, nrrs []int, opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	if len(nrrs) == 0 {
		nrrs = PaperNRRs
	}
	names := opts.workloads()
	stride := 1 + len(nrrs)
	var specs []sim.Spec
	for _, name := range names {
		specs = append(specs, point(name, baseConfig(core.SchemeConventional, physRegs, physRegs-32), opts.instr()))
		for _, nrr := range nrrs {
			specs = append(specs, point(name, baseConfig(scheme, physRegs, nrr), opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		out := NRRSweep{
			Scheme:  scheme,
			NRRs:    nrrs,
			ConvIPC: map[string]float64{},
			Speedup: map[string][]float64{},
		}
		for i, name := range names {
			conv := runs[i*stride]
			out.ConvIPC[name] = conv.Stats.IPC()
			for j, nrr := range nrrs {
				vp := runs[i*stride+1+j]
				sp := speedup(conv.Stats.IPC(), vp.Stats.IPC())
				out.Speedup[name] = append(out.Speedup[name], sp)
				opts.progress("%s %-9s nrr=%-2d speedup %.3f", scheme, name, nrr, sp)
			}
		}
		return out, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunNRRSweep reproduces figure 4 (SchemeVPWriteback) or figure 5
// (SchemeVPIssue): 64 physical registers, NRR swept over nrrs.
//
// Deprecated: use Experiment "fig4"/"fig5" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunNRRSweep(scheme core.Scheme, nrrs []int, opts Options) (NRRSweep, error) {
	v, err := runPlan(nrrSweepPlan(scheme, nrrs, opts))
	if err != nil {
		return NRRSweep{}, err
	}
	return v.(NRRSweep), nil
}

// MeanSpeedupAt returns the arithmetic-mean speedup across workloads at
// NRR index i (the way the paper quotes per-NRR averages).
func (s NRRSweep) MeanSpeedupAt(i int) float64 {
	var xs []float64
	for _, sp := range s.Speedup {
		xs = append(xs, sp[i])
	}
	return arithmeticMean(xs)
}

// --- Figure 6 (write-back vs issue) ------------------------------------------------

// Fig6Row compares the two allocation policies at their best NRR.
type Fig6Row struct {
	Workload         string
	WritebackSpeedup float64
	IssueSpeedup     float64
}

// figure6Plan builds figure 6: both policies at NRR=32 (the optimum the
// paper found for both), speedup over the conventional scheme.
func figure6Plan(opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	nrr := physRegs - 32
	names := opts.workloads()
	var specs []sim.Spec
	for _, name := range names {
		specs = append(specs,
			point(name, baseConfig(core.SchemeConventional, physRegs, nrr), opts.instr()),
			point(name, baseConfig(core.SchemeVPWriteback, physRegs, nrr), opts.instr()),
			point(name, baseConfig(core.SchemeVPIssue, physRegs, nrr), opts.instr()))
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []Fig6Row
		for i, name := range names {
			conv, wb, iss := runs[3*i], runs[3*i+1], runs[3*i+2]
			rows = append(rows, Fig6Row{
				Workload:         name,
				WritebackSpeedup: speedup(conv.Stats.IPC(), wb.Stats.IPC()),
				IssueSpeedup:     speedup(conv.Stats.IPC(), iss.Stats.IPC()),
			})
			opts.progress("fig6 %-9s wb %.3f issue %.3f", name, rows[len(rows)-1].WritebackSpeedup, rows[len(rows)-1].IssueSpeedup)
		}
		return rows, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunFigure6 reproduces figure 6.
//
// Deprecated: use Experiment "fig6" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunFigure6(opts Options) ([]Fig6Row, error) {
	v, err := runPlan(figure6Plan(opts))
	if err != nil {
		return nil, err
	}
	return v.([]Fig6Row), nil
}

// --- Figure 7 (register-count sweep) -----------------------------------------------

// PaperRegCounts is the register sweep of figure 7; NRR is kept at its
// maximum (count − 32), as the paper does (16, 32 and 64 respectively).
var PaperRegCounts = []int{48, 64, 96}

// Fig7Cell is one bar of figure 7.
type Fig7Cell struct {
	ConvIPC float64
	VPIPC   float64
}

// Fig7 holds figure 7: Cells[workload][i] for RegCounts[i].
type Fig7 struct {
	RegCounts []int
	Cells     map[string][]Fig7Cell
}

// figure7Plan builds figure 7: per workload and register count a
// conventional and a VP write-back point, NRR at its maximum.
func figure7Plan(opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	names := opts.workloads()
	regCounts := PaperRegCounts
	var specs []sim.Spec
	for _, name := range names {
		for _, regs := range regCounts {
			nrr := regs - 32
			specs = append(specs,
				point(name, baseConfig(core.SchemeConventional, regs, nrr), opts.instr()),
				point(name, baseConfig(core.SchemeVPWriteback, regs, nrr), opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		out := Fig7{RegCounts: regCounts, Cells: map[string][]Fig7Cell{}}
		k := 0
		for _, name := range names {
			for _, regs := range regCounts {
				conv, vp := runs[k], runs[k+1]
				k += 2
				out.Cells[name] = append(out.Cells[name], Fig7Cell{ConvIPC: conv.Stats.IPC(), VPIPC: vp.Stats.IPC()})
				opts.progress("fig7 %-9s regs=%-2d conv %.3f vp %.3f", name, regs, conv.Stats.IPC(), vp.Stats.IPC())
			}
		}
		return out, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunFigure7 reproduces figure 7.
//
// Deprecated: use Experiment "fig7" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunFigure7(opts Options) (Fig7, error) {
	v, err := runPlan(figure7Plan(opts))
	if err != nil {
		return Fig7{}, err
	}
	return v.(Fig7), nil
}

// MeanImprovementAt returns the average VP improvement (percent) across
// workloads at register-count index i, using harmonic-mean IPCs as in the
// paper's summary.
func (f Fig7) MeanImprovementAt(i int) float64 {
	var conv, vp []float64
	for _, cells := range f.Cells {
		conv = append(conv, cells[i].ConvIPC)
		vp = append(vp, cells[i].VPIPC)
	}
	return improvementPct(harmonicMean(conv), harmonicMean(vp))
}

// HarmonicIPCAt returns the harmonic-mean IPCs (conv, vp) at register-count
// index i.
func (f Fig7) HarmonicIPCAt(i int) (float64, float64) {
	var conv, vp []float64
	for _, cells := range f.Cells {
		conv = append(conv, cells[i].ConvIPC)
		vp = append(vp, cells[i].VPIPC)
	}
	return harmonicMean(conv), harmonicMean(vp)
}
