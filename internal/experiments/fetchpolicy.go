package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// FetchPolicyRow is one workload-mix × thread-count point of the SMT
// fetch-policy study: aggregate IPC under round-robin and under ICOUNT
// fetch gating, on the same machine.
type FetchPolicyRow struct {
	// Mix labels the workload pair sharing the machine ("hydro2d+mgrid");
	// threads alternate between the two.
	Mix            string
	Threads        int
	RoundRobinIPC  float64
	ICountIPC      float64
	ImprovementPct float64 // ICOUNT over round-robin
}

// fetchPolicyPlan builds the SMT fetch-policy study: the §5 multithreaded
// machine (VP write-back, shared register file with constant per-class
// renaming headroom) with the front end's per-cycle thread choice swept
// between round-robin and ICOUNT. Each point co-schedules a heterogeneous
// workload pair (threads alternate between the two kernels) — fetch
// gating only matters when threads load the window asymmetrically, which
// identical copies never do. With a single thread the two policies
// coincide, so the sweep starts at two; the study is the first registry
// consumer of the pluggable stage-policy surface.
func fetchPolicyPlan(threadCounts []int, opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	if len(threadCounts) == 0 {
		threadCounts = []int{2, 4}
	}
	for _, n := range threadCounts {
		if n < 2 {
			return Plan{}, fmt.Errorf("experiments: fetch-policy study needs >= 2 threads, got %d", n)
		}
	}
	rr, ok := pipeline.FetchPolicyByName(pipeline.FetchRoundRobin)
	if !ok {
		return Plan{}, fmt.Errorf("experiments: fetch policy %q not registered", pipeline.FetchRoundRobin)
	}
	icount, ok := pipeline.FetchPolicyByName(pipeline.FetchICount)
	if !ok {
		return Plan{}, fmt.Errorf("experiments: fetch policy %q not registered", pipeline.FetchICount)
	}
	names := opts.workloads()
	type mix struct {
		label string
		a, b  string
	}
	// Pair each workload with its successor in reporting order (a single
	// workload degenerates to the homogeneous case).
	var mixes []mix
	for i, name := range names {
		partner := names[(i+1)%len(names)]
		if partner == name && len(names) > 1 {
			continue
		}
		label := name
		if partner != name {
			label = name + "+" + partner
		}
		mixes = append(mixes, mix{label: label, a: name, b: partner})
	}
	var specs []sim.SMTSpec
	for _, m := range mixes {
		for _, n := range threadCounts {
			base := smtPointSpec(m.a, core.SchemeVPWriteback, n, opts)
			for i := range base.Workloads {
				if i%2 == 1 {
					base.Workloads[i] = m.b
				}
			}
			rrSpec := base
			rrSpec.Config.Policies.Fetch = rr
			icSpec := base
			icSpec.Config.Policies.Fetch = icount
			specs = append(specs, rrSpec, icSpec)
		}
	}
	reduce := func(_ []sim.Result, smt []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []FetchPolicyRow
		k := 0
		for _, m := range mixes {
			for _, n := range threadCounts {
				rrRes, icRes := smt[k], smt[k+1]
				k += 2
				row := FetchPolicyRow{
					Mix:            m.label,
					Threads:        n,
					RoundRobinIPC:  rrRes.Stats.IPC(),
					ICountIPC:      icRes.Stats.IPC(),
					ImprovementPct: improvementPct(rrRes.Stats.IPC(), icRes.Stats.IPC()),
				}
				rows = append(rows, row)
				opts.progress("smt-fetch %-17s threads=%d rr %.3f icount %.3f (%+.0f%%)",
					m.label, n, row.RoundRobinIPC, row.ICountIPC, row.ImprovementPct)
			}
		}
		return rows, nil
	}
	return Plan{SMT: specs, Reduce: reduce}, nil
}

// RenderFetchPolicy formats the SMT fetch-policy study.
func RenderFetchPolicy(rows []FetchPolicyRow) string {
	var tb metrics.Table
	tb.AddRow("mix", "threads", "rr IPC", "icount IPC", "imp(%)")
	for _, r := range rows {
		tb.AddRow(r.Mix, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.RoundRobinIPC), fmt.Sprintf("%.2f", r.ICountIPC),
			fmt.Sprintf("%+.1f", r.ImprovementPct))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("VP write-back machine of the smt study; threads alternate the mix's two\n")
	b.WriteString("kernels and the fetch policy is the only variable. ICOUNT gives the front\n")
	b.WriteString("end to the least-loaded thread (Tullsen et al.).\n")
	return b.String()
}
