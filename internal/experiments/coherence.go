package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// CoherenceRow is one pattern × cores × scheme × protocol point of the
// coherence study: the same sharing workload in one address space with
// the directory off and on, plus a namespaced control run where no line
// is ever shared.
type CoherenceRow struct {
	Workload string
	Cores    int
	Scheme   core.Scheme
	Protocol string // "msi", "mesi", "moesi"

	IPCOff      float64 // shared address space, coherence-free (PR-4 timing)
	IPCOn       float64 // shared address space, directory active
	SlowdownPct float64 // how much the coherence traffic costs

	Invalidations     int64 // sharing-driven invalidation messages (coherent shared run)
	BackInvalidations int64 // inclusion: L2 victims invalidated out of sharer L1s
	Upgrades          int64 // store S→M ownership requests through the directory
	WritebackForwards int64 // dirty remote lines forwarded through a bank into the L2
	OwnerForwards     int64 // MOESI: dirty lines forwarded cache-to-cache, kept Owned
	SilentUpgrades    int64 // MESI/MOESI: E→M stores with zero directory traffic

	NamespacedInvalidations int64 // control: coherent but namespaced — always 0
}

// coherenceDefaultCores is the sweep the registry experiment defaults to.
var coherenceDefaultCores = []int{2, 4}

// coherenceDefaultWorkloads is the pattern axis of the grid: the classic
// store-heavy sharing stress plus the three named sharing patterns, each
// built to reward (or defeat) a different protocol feature.
var coherenceDefaultWorkloads = []string{
	sim.SynthWorkloadPrefix + "sharing",
	sim.SynthWorkloadPrefix + "producer-consumer",
	sim.SynthWorkloadPrefix + "migratory",
	sim.SynthWorkloadPrefix + "false-sharing",
}

// coherenceProtocols is the protocol axis of the grid.
var coherenceProtocols = []string{"msi", "mesi", "moesi"}

// coherenceSchemes compares the paper's baseline against its headline
// scheme under coherence traffic.
var coherenceSchemes = []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback}

// checkMulticoreWorkloads validates workload names that may be catalog
// kernels or "synth:" presets — the namespace MulticoreSpec accepts,
// defined once by sim.CheckMulticoreWorkload.
func checkMulticoreWorkloads(names []string) error {
	for _, name := range names {
		if err := sim.CheckMulticoreWorkload(name); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

// withCoherenceDefaults applies the pattern grid when the caller did not
// restrict the workload set.
func withCoherenceDefaults(opts Options) Options {
	if len(opts.Workloads) == 0 {
		opts.Workloads = coherenceDefaultWorkloads
	}
	return opts
}

// coherencePlan sweeps pattern × cores × scheme, and per point runs the
// workload shared-coherence-free once (the PR-4 timing, protocol-
// independent), then shared under each registered protocol, then
// namespaced with the directory on (the control that must show zero
// sharing invalidations). The per-core instruction budget divides the
// option's budget, as in the multicore experiment.
func coherencePlan(opts Options) (Plan, error) {
	if err := checkMulticoreWorkloads(opts.Workloads); err != nil {
		return Plan{}, err
	}
	coreCounts := opts.Cores
	if len(coreCounts) == 0 {
		coreCounts = coherenceDefaultCores
	}
	for _, n := range coreCounts {
		if n < 1 {
			return Plan{}, fmt.Errorf("experiments: bad core count %d", n)
		}
	}
	if _, err := opts.stepMode(); err != nil {
		return Plan{}, err
	}
	if err := opts.checkCoherenceSelections(); err != nil {
		return Plan{}, err
	}
	protocols := coherenceProtocols
	if opts.Protocol != "" {
		protocols = []string{opts.Protocol}
	}
	l2 := opts.l2Config()
	names := opts.Workloads
	point := func(name string, scheme core.Scheme, cores int, shared, coherent bool, proto string) sim.MulticoreSpec {
		spec := multicorePointSpec(name, scheme, cores, l2, opts)
		spec.SharedAddressSpace = shared
		spec.Coherence = coherent
		spec.Protocol = proto
		if coherent {
			spec.Directory = opts.Directory
		} else {
			spec.Directory = ""
		}
		return spec
	}
	var specs []sim.MulticoreSpec
	for _, name := range names {
		for _, n := range coreCounts {
			for _, scheme := range coherenceSchemes {
				specs = append(specs, point(name, scheme, n, true, false, ""))
				for _, proto := range protocols {
					specs = append(specs, point(name, scheme, n, true, true, proto))
				}
				specs = append(specs, point(name, scheme, n, false, true, ""))
			}
		}
	}
	perPoint := 2 + len(protocols)
	reduce := func(_ []sim.Result, _ []sim.SMTResult, mc []sim.MulticoreResult) (any, error) {
		var rows []CoherenceRow
		k := 0
		for _, name := range names {
			for _, n := range coreCounts {
				for _, scheme := range coherenceSchemes {
					off := mc[k]
					ns := mc[k+perPoint-1]
					for i, proto := range protocols {
						on := mc[k+1+i]
						row := CoherenceRow{
							Workload:                name,
							Cores:                   n,
							Scheme:                  scheme,
							Protocol:                proto,
							IPCOff:                  off.Stats.IPC(),
							IPCOn:                   on.Stats.IPC(),
							SlowdownPct:             -improvementPct(off.Stats.IPC(), on.Stats.IPC()),
							Invalidations:           on.Stats.L2Invalidations,
							BackInvalidations:       on.Stats.L2BackInvalidations,
							Upgrades:                on.Stats.L2Upgrades,
							WritebackForwards:       on.Stats.L2WritebackForwards,
							OwnerForwards:           on.Stats.L2OwnerForwards,
							SilentUpgrades:          on.Stats.SilentUpgrades,
							NamespacedInvalidations: ns.Stats.L2Invalidations,
						}
						rows = append(rows, row)
						opts.progress("coherence %-18s cores=%d %-8s %-5s off %.3f on %.3f (%.1f%% slower) inval %d",
							name, n, scheme, proto, row.IPCOff, row.IPCOn, row.SlowdownPct, row.Invalidations)
					}
					k += perPoint
				}
			}
		}
		return rows, nil
	}
	return Plan{Multicore: specs, Reduce: reduce}, nil
}

// RunCoherenceStudy executes the coherence study on a fresh default
// engine (the registry path is Experiment "coherence" via Experiment.Run
// or vpr.Engine.RunExperiment).
func RunCoherenceStudy(coreCounts []int, opts Options) ([]CoherenceRow, error) {
	opts.Cores = coreCounts
	v, err := runPlan(coherencePlan(withCoherenceDefaults(opts)))
	if err != nil {
		return nil, err
	}
	return v.([]CoherenceRow), nil
}

// RenderCoherence formats the coherence study: aggregate IPC with the
// directory off and on, the slowdown the coherence traffic costs, and the
// raw transition counts next to the namespaced control.
func RenderCoherence(rows []CoherenceRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "cores", "scheme", "proto", "IPC coh-off", "IPC coh-on", "slow(%)",
		"inval", "back-inv", "upgrades", "wb-fwd", "own-fwd", "silent", "ns-inval")
	for _, r := range rows {
		tb.AddRow(r.Workload, fmt.Sprintf("%d", r.Cores), r.Scheme.String(), r.Protocol,
			fmt.Sprintf("%.2f", r.IPCOff), fmt.Sprintf("%.2f", r.IPCOn),
			fmt.Sprintf("%.1f", r.SlowdownPct),
			fmt.Sprintf("%d", r.Invalidations), fmt.Sprintf("%d", r.BackInvalidations),
			fmt.Sprintf("%d", r.Upgrades),
			fmt.Sprintf("%d", r.WritebackForwards), fmt.Sprintf("%d", r.OwnerForwards),
			fmt.Sprintf("%d", r.SilentUpgrades), fmt.Sprintf("%d", r.NamespacedInvalidations))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("cores share one address space and run identical streams per pattern; coh-on adds the\n")
	b.WriteString("named directory protocol (store upgrades invalidate remote L1 copies; dirty lines\n")
	b.WriteString("forward over the bank bus — into the L2 under MSI/MESI (wb-fwd), cache-to-cache under\n")
	b.WriteString("MOESI (own-fwd); silent counts MESI/MOESI E→M upgrades with zero directory traffic;\n")
	b.WriteString("back-inv counts inclusion victims of L2 evictions). ns-inval is the namespaced\n")
	b.WriteString("control: no line is ever shared, so sharing-driven invalidations are zero.\n")
	return b.String()
}
