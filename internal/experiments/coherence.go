package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// CoherenceRow is one cores × scheme point of the coherence study: the
// same sharing-heavy workload in one address space with the MSI directory
// off and on, plus a namespaced control run where no line is ever shared.
type CoherenceRow struct {
	Workload string
	Cores    int
	Scheme   core.Scheme

	IPCOff      float64 // shared address space, coherence-free (PR-4 timing)
	IPCOn       float64 // shared address space, MSI directory active
	SlowdownPct float64 // how much the invalidation traffic costs

	Invalidations     int64 // sharing-driven invalidation messages (coherent shared run)
	BackInvalidations int64 // inclusion: L2 victims invalidated out of sharer L1s
	Upgrades          int64 // store S→M ownership requests
	WritebackForwards int64 // dirty remote lines forwarded through a bank

	NamespacedInvalidations int64 // control: coherent but namespaced — always 0
}

// coherenceDefaultCores is the sweep the registry experiment defaults to.
var coherenceDefaultCores = []int{2, 4}

// coherenceDefaultWorkload is the sharing-heavy synthetic preset: cores
// run identical store-heavy streams over one small resident set, so in a
// shared address space the directory ping-pongs ownership between them.
const coherenceDefaultWorkload = sim.SynthWorkloadPrefix + "sharing"

// coherenceSchemes compares the paper's baseline against its headline
// scheme under coherence traffic.
var coherenceSchemes = []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback}

// checkMulticoreWorkloads validates workload names that may be catalog
// kernels or "synth:" presets — the namespace MulticoreSpec accepts,
// defined once by sim.CheckMulticoreWorkload.
func checkMulticoreWorkloads(names []string) error {
	for _, name := range names {
		if err := sim.CheckMulticoreWorkload(name); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

// withCoherenceDefaults applies the sharing preset when the caller did
// not restrict the workload set.
func withCoherenceDefaults(opts Options) Options {
	if len(opts.Workloads) == 0 {
		opts.Workloads = []string{coherenceDefaultWorkload}
	}
	return opts
}

// coherencePlan sweeps cores × scheme, and per point runs the workload
// three ways: shared address space with coherence off (the PR-4 timing),
// shared with the MSI directory on, and namespaced with the directory on
// (the control that must show zero invalidations). The per-core
// instruction budget divides the option's budget, as in the multicore
// experiment.
func coherencePlan(opts Options) (Plan, error) {
	if err := checkMulticoreWorkloads(opts.Workloads); err != nil {
		return Plan{}, err
	}
	coreCounts := opts.Cores
	if len(coreCounts) == 0 {
		coreCounts = coherenceDefaultCores
	}
	for _, n := range coreCounts {
		if n < 1 {
			return Plan{}, fmt.Errorf("experiments: bad core count %d", n)
		}
	}
	if _, err := opts.stepMode(); err != nil {
		return Plan{}, err
	}
	l2 := opts.l2Config()
	names := opts.Workloads
	point := func(name string, scheme core.Scheme, cores int, shared, coherent bool) sim.MulticoreSpec {
		spec := multicorePointSpec(name, scheme, cores, l2, opts)
		spec.SharedAddressSpace = shared
		spec.Coherence = coherent
		return spec
	}
	var specs []sim.MulticoreSpec
	for _, name := range names {
		for _, n := range coreCounts {
			for _, scheme := range coherenceSchemes {
				specs = append(specs,
					point(name, scheme, n, true, false),
					point(name, scheme, n, true, true),
					point(name, scheme, n, false, true))
			}
		}
	}
	reduce := func(_ []sim.Result, _ []sim.SMTResult, mc []sim.MulticoreResult) (any, error) {
		var rows []CoherenceRow
		k := 0
		for _, name := range names {
			for _, n := range coreCounts {
				for _, scheme := range coherenceSchemes {
					off, on, ns := mc[k], mc[k+1], mc[k+2]
					k += 3
					row := CoherenceRow{
						Workload:                name,
						Cores:                   n,
						Scheme:                  scheme,
						IPCOff:                  off.Stats.IPC(),
						IPCOn:                   on.Stats.IPC(),
						SlowdownPct:             -improvementPct(off.Stats.IPC(), on.Stats.IPC()),
						Invalidations:           on.Stats.L2Invalidations,
						BackInvalidations:       on.Stats.L2BackInvalidations,
						Upgrades:                on.Stats.L2Upgrades,
						WritebackForwards:       on.Stats.L2WritebackForwards,
						NamespacedInvalidations: ns.Stats.L2Invalidations,
					}
					rows = append(rows, row)
					opts.progress("coherence %-14s cores=%d %-8s off %.3f on %.3f (%.1f%% slower) inval %d",
						name, n, scheme, row.IPCOff, row.IPCOn, row.SlowdownPct, row.Invalidations)
				}
			}
		}
		return rows, nil
	}
	return Plan{Multicore: specs, Reduce: reduce}, nil
}

// RunCoherenceStudy executes the coherence study on a fresh default
// engine (the registry path is Experiment "coherence" via Experiment.Run
// or vpr.Engine.RunExperiment).
func RunCoherenceStudy(coreCounts []int, opts Options) ([]CoherenceRow, error) {
	opts.Cores = coreCounts
	v, err := runPlan(coherencePlan(withCoherenceDefaults(opts)))
	if err != nil {
		return nil, err
	}
	return v.([]CoherenceRow), nil
}

// RenderCoherence formats the coherence study: aggregate IPC with the
// directory off and on, the slowdown the invalidation traffic costs, and
// the raw MSI transition counts next to the namespaced control.
func RenderCoherence(rows []CoherenceRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "cores", "scheme", "IPC coh-off", "IPC coh-on", "slow(%)",
		"inval", "back-inv", "upgrades", "wb-fwd", "ns-inval")
	for _, r := range rows {
		tb.AddRow(r.Workload, fmt.Sprintf("%d", r.Cores), r.Scheme.String(),
			fmt.Sprintf("%.2f", r.IPCOff), fmt.Sprintf("%.2f", r.IPCOn),
			fmt.Sprintf("%.1f", r.SlowdownPct),
			fmt.Sprintf("%d", r.Invalidations), fmt.Sprintf("%d", r.BackInvalidations),
			fmt.Sprintf("%d", r.Upgrades),
			fmt.Sprintf("%d", r.WritebackForwards), fmt.Sprintf("%d", r.NamespacedInvalidations))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("cores share one address space and run identical store-heavy streams; coh-on adds the\n")
	b.WriteString("MSI directory (store upgrades invalidate remote L1 copies, dirty lines forward over\n")
	b.WriteString("the bank bus; back-inv counts inclusion victims of L2 evictions). ns-inval is the\n")
	b.WriteString("namespaced control: no line is ever shared, so sharing-driven invalidations are zero.\n")
	return b.String()
}
