package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestCoherenceExperiment is the acceptance run: on the sharing workload
// every protocol row carries nonzero invalidation counts, the MESI and
// MOESI rows show their signature machinery, and the namespaced control
// stays at zero.
func TestCoherenceExperiment(t *testing.T) {
	exp, ok := ByName("coherence")
	if !ok {
		t.Fatal("coherence experiment missing from the registry")
	}
	opts := Options{Instr: 16_000, Cores: []int{2}, Workloads: []string{"synth:sharing"}}
	v, err := exp.Run(context.Background(), engine.New(), withCoherenceDefaults(opts))
	if err != nil {
		t.Fatal(err)
	}
	rows := v.([]CoherenceRow)
	if len(rows) != 6 { // 1 workload × 1 core count × 2 schemes × 3 protocols
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Workload != "synth:sharing" {
			t.Errorf("row workload %q, want synth:sharing", r.Workload)
		}
		if r.Invalidations == 0 || r.Upgrades == 0 {
			t.Errorf("%s/%s cores=%d: sharing run shows no coherence traffic: %+v",
				r.Scheme, r.Protocol, r.Cores, r)
		}
		if r.NamespacedInvalidations != 0 {
			t.Errorf("%s/%s cores=%d: namespaced control saw %d invalidations, want 0",
				r.Scheme, r.Protocol, r.Cores, r.NamespacedInvalidations)
		}
		switch r.Protocol {
		case "msi":
			if r.SilentUpgrades != 0 || r.OwnerForwards != 0 {
				t.Errorf("msi row uses MESI/MOESI machinery: %+v", r)
			}
		case "mesi":
			if r.SilentUpgrades == 0 {
				t.Errorf("mesi row never upgraded silently: %+v", r)
			}
			if r.OwnerForwards != 0 {
				t.Errorf("mesi row owner-forwarded: %+v", r)
			}
		case "moesi":
			if r.OwnerForwards == 0 {
				t.Errorf("moesi row never owner-forwarded: %+v", r)
			}
		default:
			t.Errorf("unexpected protocol %q", r.Protocol)
		}
	}
	text := exp.Render(v)
	for _, col := range []string{"proto", "inval", "own-fwd", "silent", "ns-inval"} {
		if !strings.Contains(text, col) {
			t.Errorf("rendering missing column %q:\n%s", col, text)
		}
	}
}

// TestCoherenceDefaultGrid: with no workload restriction the plan covers
// the full pattern × protocol grid, including the three new presets.
func TestCoherenceDefaultGrid(t *testing.T) {
	plan, err := coherencePlan(withCoherenceDefaults(Options{Instr: 1_000}))
	if err != nil {
		t.Fatal(err)
	}
	// 4 patterns × 2 core counts × 2 schemes × (off + 3 protocols + ns)
	want := 4 * 2 * 2 * (2 + len(coherenceProtocols))
	if len(plan.Multicore) != want {
		t.Fatalf("plan has %d multicore specs, want %d", len(plan.Multicore), want)
	}
	patterns := map[string]bool{}
	for _, spec := range plan.Multicore {
		patterns[spec.Workloads[0]] = true
		if spec.Coherence && spec.SharedAddressSpace && spec.Protocol == "" {
			continue // the namespaced control reuses the default protocol
		}
	}
	for _, name := range coherenceDefaultWorkloads {
		if !patterns[name] {
			t.Errorf("default grid missing pattern %q", name)
		}
	}
}

// TestMulticoreCoherenceOption: Options.Coherence (the -coherence flag)
// switches the multicore experiment's points into the shared, coherent
// configuration.
func TestMulticoreCoherenceOption(t *testing.T) {
	plan, err := multicorePlan(withMulticoreDefaultWorkloads(Options{Instr: 1_000, Coherence: true}))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plan.Multicore {
		if !spec.Coherence || !spec.SharedAddressSpace {
			t.Fatalf("multicore spec ignored Options.Coherence: %+v", spec)
		}
	}
	plan, err = multicorePlan(withMulticoreDefaultWorkloads(Options{Instr: 1_000}))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plan.Multicore {
		if spec.Coherence || spec.SharedAddressSpace {
			t.Fatalf("default multicore spec must stay namespaced and coherence-free: %+v", spec)
		}
	}
}
