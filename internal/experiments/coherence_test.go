package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestCoherenceExperiment is the acceptance run: on the sharing workload
// the rendered table carries nonzero invalidation counts, and the
// namespaced control stays at zero.
func TestCoherenceExperiment(t *testing.T) {
	exp, ok := ByName("coherence")
	if !ok {
		t.Fatal("coherence experiment missing from the registry")
	}
	opts := Options{Instr: 16_000, Cores: []int{2}}
	v, err := exp.Run(context.Background(), engine.New(), withCoherenceDefaults(opts))
	if err != nil {
		t.Fatal(err)
	}
	rows := v.([]CoherenceRow)
	if len(rows) != 2 { // 1 workload × 1 core count × 2 schemes
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Workload != coherenceDefaultWorkload {
			t.Errorf("row workload %q, want %q", r.Workload, coherenceDefaultWorkload)
		}
		if r.Invalidations == 0 || r.Upgrades == 0 {
			t.Errorf("%s cores=%d: sharing run shows no coherence traffic: %+v", r.Scheme, r.Cores, r)
		}
		if r.NamespacedInvalidations != 0 {
			t.Errorf("%s cores=%d: namespaced control saw %d invalidations, want 0",
				r.Scheme, r.Cores, r.NamespacedInvalidations)
		}
	}
	text := exp.Render(v)
	if !strings.Contains(text, "inval") || !strings.Contains(text, "ns-inval") {
		t.Errorf("rendering missing expected columns:\n%s", text)
	}
}

// TestMulticoreCoherenceOption: Options.Coherence (the -coherence flag)
// switches the multicore experiment's points into the shared, coherent
// configuration.
func TestMulticoreCoherenceOption(t *testing.T) {
	plan, err := multicorePlan(withMulticoreDefaultWorkloads(Options{Instr: 1_000, Coherence: true}))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plan.Multicore {
		if !spec.Coherence || !spec.SharedAddressSpace {
			t.Fatalf("multicore spec ignored Options.Coherence: %+v", spec)
		}
	}
	plan, err = multicorePlan(withMulticoreDefaultWorkloads(Options{Instr: 1_000}))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plan.Multicore {
		if spec.Coherence || spec.SharedAddressSpace {
			t.Fatalf("default multicore spec must stay namespaced and coherence-free: %+v", spec)
		}
	}
}
