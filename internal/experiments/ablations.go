package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// Thin aliases so the experiment code reads like the paper's text.
func harmonicMean(xs []float64) float64   { return metrics.HarmonicMean(xs) }
func arithmeticMean(xs []float64) float64 { return metrics.ArithmeticMean(xs) }
func improvementPct(o, n float64) float64 { return metrics.ImprovementPct(o, n) }
func speedup(o, n float64) float64        { return metrics.Speedup(o, n) }

// AblationRow is one benchmark × variant cell of an ablation study.
type AblationRow struct {
	Workload string
	Variant  string
	IPC      float64
	Extra    float64 // variant-specific secondary metric
}

// earlyReleasePlan quantifies the paper's "second source of waste" (§3.1,
// refs [8][10]): conventional renaming with and without early release of
// provably dead registers, next to VP write-back. Extra reports early
// releases per 1000 committed instructions for the early-release variant
// and the re-execution factor for VP.
func earlyReleasePlan(opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	nrr := physRegs - 32
	names := opts.workloads()
	var specs []sim.Spec
	for _, name := range names {
		er := baseConfig(core.SchemeConventional, physRegs, nrr)
		er.Rename.EarlyRelease = true
		specs = append(specs,
			point(name, baseConfig(core.SchemeConventional, physRegs, nrr), opts.instr()),
			point(name, er, opts.instr()),
			point(name, baseConfig(core.SchemeVPWriteback, physRegs, nrr), opts.instr()))
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []AblationRow
		for i, name := range names {
			conv, rel, vp := runs[3*i], runs[3*i+1], runs[3*i+2]
			perK := float64(rel.Stats.EarlyReleases) / float64(rel.Stats.Committed) * 1000
			rows = append(rows,
				AblationRow{Workload: name, Variant: "conv", IPC: conv.Stats.IPC()},
				AblationRow{Workload: name, Variant: "conv+early-release", IPC: rel.Stats.IPC(), Extra: perK},
				AblationRow{Workload: name, Variant: "vp-wb", IPC: vp.Stats.IPC(), Extra: vp.Stats.ExecPerCommit()})
			opts.progress("ablation-release %-9s conv %.3f +er %.3f vp %.3f", name, conv.Stats.IPC(), rel.Stats.IPC(), vp.Stats.IPC())
		}
		return rows, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunEarlyReleaseAblation executes the early-release ablation.
//
// Deprecated: use Experiment "ablation-release" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunEarlyReleaseAblation(opts Options) ([]AblationRow, error) {
	v, err := runPlan(earlyReleasePlan(opts))
	if err != nil {
		return nil, err
	}
	return v.([]AblationRow), nil
}

// disambiguationPlan compares PA-8000-style speculative disambiguation
// with the conservative wait-for-addresses policy on the VP write-back
// machine. Extra reports memory-order violations per 1000 committed
// instructions for the speculative variant.
func disambiguationPlan(opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	nrr := physRegs - 32
	names := opts.workloads()
	modes := []pipeline.Disambiguation{pipeline.DisambSpeculative, pipeline.DisambConservative}
	var specs []sim.Spec
	for _, name := range names {
		for _, mode := range modes {
			cfg := baseConfig(core.SchemeVPWriteback, physRegs, nrr)
			cfg.Disambiguation = mode
			specs = append(specs, point(name, cfg, opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []AblationRow
		k := 0
		for _, name := range names {
			for _, mode := range modes {
				res := runs[k]
				k++
				perK := float64(res.Stats.MemViolations) / float64(res.Stats.Committed) * 1000
				rows = append(rows, AblationRow{Workload: name, Variant: mode.String(), IPC: res.Stats.IPC(), Extra: perK})
				opts.progress("ablation-disamb %-9s %s %.3f", name, mode, res.Stats.IPC())
			}
		}
		return rows, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunDisambiguationAblation executes the disambiguation ablation.
//
// Deprecated: use Experiment "ablation-disamb" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunDisambiguationAblation(opts Options) ([]AblationRow, error) {
	v, err := runPlan(disambiguationPlan(opts))
	if err != nil {
		return nil, err
	}
	return v.([]AblationRow), nil
}

// recoveryPlan sweeps the recovery penalty (0 models R10000-style
// checkpointing; larger values approximate a serial reorder-buffer walk)
// on the conventional machine, where misprediction costs dominate.
func recoveryPlan(opts Options, penalties []int) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	if len(penalties) == 0 {
		penalties = []int{0, 4, 8}
	}
	const physRegs = 64
	names := opts.workloads()
	var specs []sim.Spec
	for _, name := range names {
		for _, pen := range penalties {
			cfg := baseConfig(core.SchemeConventional, physRegs, physRegs-32)
			cfg.RecoveryPenalty = pen
			specs = append(specs, point(name, cfg, opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []AblationRow
		k := 0
		for _, name := range names {
			for _, pen := range penalties {
				res := runs[k]
				k++
				rows = append(rows, AblationRow{Workload: name, Variant: variantName("penalty", pen), IPC: res.Stats.IPC()})
				opts.progress("ablation-recovery %-9s pen=%d %.3f", name, pen, res.Stats.IPC())
			}
		}
		return rows, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunRecoveryAblation executes the recovery-penalty sweep.
//
// Deprecated: use Experiment "ablation-recovery" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunRecoveryAblation(opts Options, penalties []int) ([]AblationRow, error) {
	v, err := runPlan(recoveryPlan(opts, penalties))
	if err != nil {
		return nil, err
	}
	return v.([]AblationRow), nil
}

// splitNRRPlan explores NRRint ≠ NRRfp (the paper notes the parameter "can
// be different for floating point and integer" but evaluates equal
// values): for each workload the three corners (equal, int-heavy,
// fp-heavy) at 64 registers.
func splitNRRPlan(opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	type split struct {
		name   string
		nrrInt int
		nrrFP  int
	}
	splits := []split{
		{"int32/fp32", 32, 32},
		{"int8/fp32", 8, 32},
		{"int32/fp8", 32, 8},
	}
	names := opts.workloads()
	var specs []sim.Spec
	for _, name := range names {
		for _, sp := range splits {
			cfg := baseConfig(core.SchemeVPWriteback, physRegs, 32)
			cfg.Rename.NRRInt = sp.nrrInt
			cfg.Rename.NRRFP = sp.nrrFP
			specs = append(specs, point(name, cfg, opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []AblationRow
		k := 0
		for _, name := range names {
			for _, sp := range splits {
				res := runs[k]
				k++
				rows = append(rows, AblationRow{Workload: name, Variant: sp.name, IPC: res.Stats.IPC()})
				opts.progress("ablation-nrr-split %-9s %s %.3f", name, sp.name, res.Stats.IPC())
			}
		}
		return rows, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunSplitNRRAblation executes the NRR-split ablation.
//
// Deprecated: use Experiment "ablation-nrr-split" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunSplitNRRAblation(opts Options) ([]AblationRow, error) {
	v, err := runPlan(splitNRRPlan(opts))
	if err != nil {
		return nil, err
	}
	return v.([]AblationRow), nil
}

func variantName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
