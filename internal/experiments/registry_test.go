package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "fig4", "fig5", "fig6", "fig7",
		"ablation-release", "ablation-disamb", "ablation-recovery", "ablation-nrr-split",
		"smt", "lifetime", "smt-fetch", "multicore", "coherence",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry names = %v, want %v", got, want)
	}
	for _, e := range Registry() {
		if e.Title == "" || e.Reproduces == "" || e.Build == nil || e.Render == nil {
			t.Errorf("%s: incomplete registry entry %+v", e.Name, e)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName must reject unknown names")
	}
}

// TestRegistryParallelMatchesSerial is the acceptance-criteria test at the
// registry level: every simulation experiment renders byte-identically
// whether its batch ran serially or on a parallel worker pool.
func TestRegistryParallelMatchesSerial(t *testing.T) {
	opts := Options{Instr: 5_000, Workloads: []string{"compress", "swim"}}
	serial := engine.New(engine.WithParallelism(1))
	parallel := engine.New(engine.WithParallelism(8))
	for _, name := range []string{"table2", "fig4", "fig6", "ablation-disamb", "lifetime"} {
		exp, ok := ByName(name)
		if !ok {
			t.Fatalf("missing experiment %s", name)
		}
		v1, err := exp.Run(context.Background(), serial, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		vN, err := exp.Run(context.Background(), parallel, opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		r1, rN := exp.Render(v1), exp.Render(vN)
		if r1 != rN {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", name, r1, rN)
		}
		if r1 == "" {
			t.Errorf("%s: empty rendering", name)
		}
	}
}

// TestRegistrySharedEngineCaches: experiments that share points (table2
// and fig6 both need conv and vp-wb at 64 regs / NRR 32) re-simulate
// nothing for the overlap when run on one engine.
func TestRegistrySharedEngineCaches(t *testing.T) {
	opts := Options{Instr: 5_000, Workloads: []string{"compress"}}
	eng := engine.New()
	run := func(name string) {
		exp, _ := ByName(name)
		if _, err := exp.Run(context.Background(), eng, opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	run("table2") // conv, vp-wb, conv/p20, vp-wb/p20
	hitsBefore, _ := eng.CacheStats()
	run("fig6") // conv, vp-wb (cached) + vp-issue (new)
	hitsAfter, misses := eng.CacheStats()
	if hitsAfter-hitsBefore != 2 {
		t.Errorf("fig6 after table2: %d cache hits, want 2 (conv and vp-wb shared)", hitsAfter-hitsBefore)
	}
	if misses != 5 {
		t.Errorf("total misses = %d, want 5 (4 table2 points + vp-issue)", misses)
	}
}

// TestRegistrySMTDefaultsSubset: the registry's smt entry defaults to the
// representative workload subset rather than the full catalog.
func TestRegistrySMTDefaultsSubset(t *testing.T) {
	exp, _ := ByName("smt")
	plan, err := exp.Build(Options{Instr: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	// 5 subset workloads × 3 thread counts × 2 schemes.
	if len(plan.SMT) != 30 || len(plan.Specs) != 0 {
		t.Fatalf("smt plan: %d SMT specs / %d specs, want 30/0", len(plan.SMT), len(plan.Specs))
	}
	if got := plan.SMT[0].Workloads[0]; got != "hydro2d" {
		t.Errorf("first smt workload = %q, want hydro2d", got)
	}
}

// TestPlanBuildingIsPure: building a plan runs no simulation and an
// unknown workload fails at build time.
func TestPlanBuildingIsPure(t *testing.T) {
	for _, e := range Registry() {
		if _, err := e.Build(Options{Workloads: []string{"nonesuch"}}); err == nil {
			t.Errorf("%s: build with unknown workload must fail", e.Name)
		}
		plan, err := e.Build(Options{Instr: 1_000, Workloads: []string{"swim"}})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(plan.Specs)+len(plan.SMT)+len(plan.Multicore) == 0 {
			t.Errorf("%s: empty plan", e.Name)
		}
	}
}

// TestExperimentRunRendersLikeLegacy: the registry path and the deprecated
// free-function path produce identical renderings (they execute the same
// plan).
func TestExperimentRunRendersLikeLegacy(t *testing.T) {
	opts := Options{Instr: 5_000, Workloads: []string{"swim"}}
	exp, _ := ByName("fig7")
	v, err := exp.Run(context.Background(), engine.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := RunFigure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exp.Render(v), RenderFigure7(legacy); got != want {
		t.Errorf("registry vs legacy rendering:\n--- registry ---\n%s--- legacy ---\n%s", got, want)
	}
	if !strings.Contains(exp.Render(v), "conv(48)") {
		t.Errorf("fig7 rendering missing expected column:\n%s", exp.Render(v))
	}
}
