package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// SMTRow is one thread-count × workload point of the future-work study.
type SMTRow struct {
	Workload       string
	Threads        int
	ConvIPC        float64 // aggregate across threads
	VPIPC          float64
	ImprovementPct float64
}

// RunSMTScaling realizes the paper's §5 future-work prediction: "in the
// context of multithreaded architectures the benefits of the
// virtual-physical register organization will be more important". Each
// point runs n copies of the workload on an SMT machine whose shared
// register file keeps a constant 32-register renaming headroom per class
// (32·n architectural + 32), with the aggregate NRR reservation split
// evenly. VP's improvement over the conventional scheme is expected to
// hold or grow as threads multiply the pressure on the shared file.
func RunSMTScaling(threadCounts []int, opts Options) ([]SMTRow, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4}
	}
	var rows []SMTRow
	for _, name := range opts.workloads() {
		for _, n := range threadCounts {
			if n < 1 {
				return nil, fmt.Errorf("experiments: bad thread count %d", n)
			}
			conv, err := runSMTPoint(name, core.SchemeConventional, n, opts)
			if err != nil {
				return nil, err
			}
			vp, err := runSMTPoint(name, core.SchemeVPWriteback, n, opts)
			if err != nil {
				return nil, err
			}
			row := SMTRow{
				Workload:       name,
				Threads:        n,
				ConvIPC:        conv.Stats.IPC(),
				VPIPC:          vp.Stats.IPC(),
				ImprovementPct: improvementPct(conv.Stats.IPC(), vp.Stats.IPC()),
			}
			rows = append(rows, row)
			opts.progress("smt %-9s threads=%d conv %.3f vp %.3f (%+.0f%%)",
				name, n, row.ConvIPC, row.VPIPC, row.ImprovementPct)
		}
	}
	return rows, nil
}

func runSMTPoint(name string, scheme core.Scheme, threads int, opts Options) (sim.SMTResult, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Rename.PhysRegs = 32*threads + 32
	nrr := 32 / threads
	if nrr < 1 {
		nrr = 1
	}
	cfg.Rename.NRRInt = nrr
	cfg.Rename.NRRFP = nrr
	names := make([]string, threads)
	for i := range names {
		names[i] = name
	}
	return sim.RunSMT(sim.SMTSpec{
		Workloads:         names,
		Config:            cfg,
		MaxInstrPerThread: opts.instr() / int64(threads),
	})
}

// RenderSMT formats the SMT scaling study: aggregate IPC per scheme and
// the VP improvement, per workload and thread count.
func RenderSMT(rows []SMTRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "threads", "conv IPC", "vp IPC", "imp(%)")
	for _, r := range rows {
		tb.AddRow(r.Workload, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.ConvIPC), fmt.Sprintf("%.2f", r.VPIPC),
			fmt.Sprintf("%+.0f", r.ImprovementPct))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("register file: 32·threads architectural + 32 renaming registers per class;\n")
	b.WriteString("NRR split evenly across threads; IPC is the aggregate over all threads.\n")
	return b.String()
}

// LifetimeRow quantifies the paper's §3.1 claim in vivo: the average
// number of cycles a physical register is held per produced value, under
// each allocation point.
type LifetimeRow struct {
	Workload    string
	Scheme      string
	IPC         float64
	AvgLifetime float64 // cycles a register is held per value
	AvgInUse    float64 // mean registers allocated (both classes)
}

// RunLifetime measures register-holding time for all three schemes — the
// experimental counterpart of the paper's §3.1 analytic example (151 vs 88
// vs 38 register·cycles for decode/issue/write-back allocation).
func RunLifetime(opts Options) ([]LifetimeRow, error) {
	const physRegs = 64
	nrr := physRegs - 32
	var rows []LifetimeRow
	for _, name := range opts.workloads() {
		for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPIssue, core.SchemeVPWriteback} {
			res, err := runOne(name, baseConfig(scheme, physRegs, nrr), opts.instr())
			if err != nil {
				return nil, err
			}
			st := res.Stats
			rows = append(rows, LifetimeRow{
				Workload:    name,
				Scheme:      scheme.String(),
				IPC:         st.IPC(),
				AvgLifetime: st.AvgRegLifetime(),
				AvgInUse:    st.AvgIntRegs() + st.AvgFPRegs(),
			})
			opts.progress("lifetime %-9s %-8s held %.1f cycles/value", name, scheme, st.AvgRegLifetime())
		}
	}
	return rows, nil
}

// RenderLifetime formats the lifetime study.
func RenderLifetime(rows []LifetimeRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "scheme", "IPC", "cycles held/value", "avg regs in use")
	for _, r := range rows {
		tb.AddRow(r.Workload, r.Scheme, fmt.Sprintf("%.2f", r.IPC),
			fmt.Sprintf("%.1f", r.AvgLifetime), fmt.Sprintf("%.1f", r.AvgInUse))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("the paper's §3.1 example predicts decode >> issue > write-back holding times.\n")
	return b.String()
}
