package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// SMTRow is one thread-count × workload point of the future-work study.
type SMTRow struct {
	Workload       string
	Threads        int
	ConvIPC        float64 // aggregate across threads
	VPIPC          float64
	ImprovementPct float64
}

// smtDefaultSubset is the representative workload subset the registry's
// "smt" experiment defaults to: the full catalog × three thread counts is
// slow, and the register-file sharing story is told by these five.
var smtDefaultSubset = []string{"hydro2d", "mgrid", "swim", "compress", "go"}

// withSMTDefaultWorkloads applies smtDefaultSubset when the caller did not
// restrict the workload set.
func withSMTDefaultWorkloads(opts Options) Options {
	if len(opts.Workloads) == 0 {
		opts.Workloads = smtDefaultSubset
	}
	return opts
}

// smtScalingPlan realizes the paper's §5 future-work prediction: "in the
// context of multithreaded architectures the benefits of the
// virtual-physical register organization will be more important". Each
// point runs n copies of the workload on an SMT machine whose shared
// register file keeps a constant 32-register renaming headroom per class
// (32·n architectural + 32), with the aggregate NRR reservation split
// evenly. VP's improvement over the conventional scheme is expected to
// hold or grow as threads multiply the pressure on the shared file.
func smtScalingPlan(threadCounts []int, opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4}
	}
	for _, n := range threadCounts {
		if n < 1 {
			return Plan{}, fmt.Errorf("experiments: bad thread count %d", n)
		}
	}
	names := opts.workloads()
	var specs []sim.SMTSpec
	for _, name := range names {
		for _, n := range threadCounts {
			specs = append(specs,
				smtPointSpec(name, core.SchemeConventional, n, opts),
				smtPointSpec(name, core.SchemeVPWriteback, n, opts))
		}
	}
	reduce := func(_ []sim.Result, smt []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []SMTRow
		k := 0
		for _, name := range names {
			for _, n := range threadCounts {
				conv, vp := smt[k], smt[k+1]
				k += 2
				row := SMTRow{
					Workload:       name,
					Threads:        n,
					ConvIPC:        conv.Stats.IPC(),
					VPIPC:          vp.Stats.IPC(),
					ImprovementPct: improvementPct(conv.Stats.IPC(), vp.Stats.IPC()),
				}
				rows = append(rows, row)
				opts.progress("smt %-9s threads=%d conv %.3f vp %.3f (%+.0f%%)",
					name, n, row.ConvIPC, row.VPIPC, row.ImprovementPct)
			}
		}
		return rows, nil
	}
	return Plan{SMT: specs, Reduce: reduce}, nil
}

// RunSMTScaling executes the SMT scaling study over the full catalog (or
// the opts subset).
//
// Deprecated: use Experiment "smt" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead; note the registry entry defaults to a
// representative workload subset where this wrapper defaults to the full
// catalog.
func RunSMTScaling(threadCounts []int, opts Options) ([]SMTRow, error) {
	v, err := runPlan(smtScalingPlan(threadCounts, opts))
	if err != nil {
		return nil, err
	}
	return v.([]SMTRow), nil
}

func smtPointSpec(name string, scheme core.Scheme, threads int, opts Options) sim.SMTSpec {
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Rename.PhysRegs = 32*threads + 32
	nrr := 32 / threads
	if nrr < 1 {
		nrr = 1
	}
	cfg.Rename.NRRInt = nrr
	cfg.Rename.NRRFP = nrr
	names := make([]string, threads)
	for i := range names {
		names[i] = name
	}
	return sim.SMTSpec{
		Workloads:         names,
		Config:            cfg,
		MaxInstrPerThread: opts.instr() / int64(threads),
	}
}

// RenderSMT formats the SMT scaling study: aggregate IPC per scheme and
// the VP improvement, per workload and thread count.
func RenderSMT(rows []SMTRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "threads", "conv IPC", "vp IPC", "imp(%)")
	for _, r := range rows {
		tb.AddRow(r.Workload, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.ConvIPC), fmt.Sprintf("%.2f", r.VPIPC),
			fmt.Sprintf("%+.0f", r.ImprovementPct))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("register file: 32·threads architectural + 32 renaming registers per class;\n")
	b.WriteString("NRR split evenly across threads; IPC is the aggregate over all threads.\n")
	return b.String()
}

// LifetimeRow quantifies the paper's §3.1 claim in vivo: the average
// number of cycles a physical register is held per produced value, under
// each allocation point.
type LifetimeRow struct {
	Workload    string
	Scheme      string
	IPC         float64
	AvgLifetime float64 // cycles a register is held per value
	AvgInUse    float64 // mean registers allocated (both classes)
}

// lifetimeSchemes is the scheme order of the lifetime study's rows.
var lifetimeSchemes = []core.Scheme{core.SchemeConventional, core.SchemeVPIssue, core.SchemeVPWriteback}

// lifetimePlan measures register-holding time for all three schemes — the
// experimental counterpart of the paper's §3.1 analytic example (151 vs 88
// vs 38 register·cycles for decode/issue/write-back allocation).
func lifetimePlan(opts Options) (Plan, error) {
	if err := opts.checkWorkloads(); err != nil {
		return Plan{}, err
	}
	const physRegs = 64
	nrr := physRegs - 32
	names := opts.workloads()
	var specs []sim.Spec
	for _, name := range names {
		for _, scheme := range lifetimeSchemes {
			specs = append(specs, point(name, baseConfig(scheme, physRegs, nrr), opts.instr()))
		}
	}
	reduce := func(runs []sim.Result, _ []sim.SMTResult, _ []sim.MulticoreResult) (any, error) {
		var rows []LifetimeRow
		k := 0
		for _, name := range names {
			for _, scheme := range lifetimeSchemes {
				st := runs[k].Stats
				k++
				rows = append(rows, LifetimeRow{
					Workload:    name,
					Scheme:      scheme.String(),
					IPC:         st.IPC(),
					AvgLifetime: st.AvgRegLifetime(),
					AvgInUse:    st.AvgIntRegs() + st.AvgFPRegs(),
				})
				opts.progress("lifetime %-9s %-8s held %.1f cycles/value", name, scheme, st.AvgRegLifetime())
			}
		}
		return rows, nil
	}
	return Plan{Specs: specs, Reduce: reduce}, nil
}

// RunLifetime executes the register-holding-time study.
//
// Deprecated: use Experiment "lifetime" via Experiment.Run (or
// vpr.Engine.RunExperiment) instead.
func RunLifetime(opts Options) ([]LifetimeRow, error) {
	v, err := runPlan(lifetimePlan(opts))
	if err != nil {
		return nil, err
	}
	return v.([]LifetimeRow), nil
}

// RenderLifetime formats the lifetime study.
func RenderLifetime(rows []LifetimeRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "scheme", "IPC", "cycles held/value", "avg regs in use")
	for _, r := range rows {
		tb.AddRow(r.Workload, r.Scheme, fmt.Sprintf("%.2f", r.IPC),
			fmt.Sprintf("%.1f", r.AvgLifetime), fmt.Sprintf("%.1f", r.AvgInUse))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("the paper's §3.1 example predicts decode >> issue > write-back holding times.\n")
	return b.String()
}
