package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

// Plan is the data-driven form of an experiment: the flat list of
// simulation points it needs, and a reducer that folds the completed runs
// (delivered in spec order) back into the experiment's typed result.
// Building the plan is pure; only executing it simulates anything, which
// is what lets a batch runner fan the points out over a worker pool and a
// result cache share overlapping points between experiments.
type Plan struct {
	Specs     []sim.Spec
	SMT       []sim.SMTSpec
	Multicore []sim.MulticoreSpec

	// Reduce folds results — runs[i] corresponds to Specs[i], smt[i] to
	// SMT[i], mc[i] to Multicore[i] — into the experiment's result value
	// (Table2, NRRSweep, ...). It also replays the per-point
	// Options.Progress lines, in the deterministic spec order, regardless
	// of completion order.
	Reduce func(runs []sim.Result, smt []sim.SMTResult, mc []sim.MulticoreResult) (any, error)
}

// Runner executes the simulation points of a plan. *engine.Engine is the
// production implementation; tests may substitute serial fakes.
type Runner interface {
	RunBatch(ctx context.Context, specs []sim.Spec) ([]sim.Result, error)
	RunSMTBatch(ctx context.Context, specs []sim.SMTSpec) ([]sim.SMTResult, error)
	RunMulticoreBatch(ctx context.Context, specs []sim.MulticoreSpec) ([]sim.MulticoreResult, error)
}

// Experiment is one named, enumerable study: every table and figure of the
// paper's evaluation, each ablation, and the SMT future-work projection.
// Build turns Options into a Plan; Render formats the value Reduce
// produced in the paper's row/series shape.
type Experiment struct {
	// Name is the registry key ("table2", "fig4", "ablation-release", ...).
	Name string
	// Title is the one-line description shown by listings and CLI help.
	Title string
	// Reproduces names the paper section/artifact the experiment
	// regenerates, or the repository study it belongs to.
	Reproduces string

	Build  func(opts Options) (Plan, error)
	Render func(v any) string
}

// Run builds the experiment's plan, applies the option's named stage
// policies to every point the plan left at defaults, executes it on r, and
// reduces the results. The value's dynamic type is the experiment's result
// type.
func (e Experiment) Run(ctx context.Context, r Runner, opts Options) (any, error) {
	plan, err := e.Build(opts)
	if err != nil {
		return nil, err
	}
	if err := opts.applyPolicies(&plan); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
	}
	runs, err := r.RunBatch(ctx, plan.Specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
	}
	var smt []sim.SMTResult
	if len(plan.SMT) > 0 {
		smt, err = r.RunSMTBatch(ctx, plan.SMT)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
	}
	var mc []sim.MulticoreResult
	if len(plan.Multicore) > 0 {
		mc, err = r.RunMulticoreBatch(ctx, plan.Multicore)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
	}
	return plan.Reduce(runs, smt, mc)
}

// registry lists every experiment in the paper's reporting order; the
// CLIs and the vpr facade enumerate it instead of hand-maintaining lists.
//
//vpr:registry experiments
var registry = []Experiment{
	{
		Name:       "table2",
		Title:      "Table 2: conventional vs VP write-back, 64 regs, max NRR",
		Reproduces: "paper §4.2 Table 2, including the 20-cycle miss-penalty and re-execution footnotes",
		Build:      func(opts Options) (Plan, error) { return table2Plan(opts, true) },
		Render:     func(v any) string { return RenderTable2(v.(Table2)) },
	},
	{
		Name:       "fig4",
		Title:      "Figure 4: VP write-back speedup across NRR",
		Reproduces: "paper §4.2.2 Figure 4 (NRR ∈ {1,4,8,16,24,32}, 64 registers)",
		Build:      func(opts Options) (Plan, error) { return nrrSweepPlan(core.SchemeVPWriteback, nil, opts) },
		Render:     func(v any) string { return RenderNRRSweep(v.(NRRSweep)) },
	},
	{
		Name:       "fig5",
		Title:      "Figure 5: VP issue-allocation speedup across NRR",
		Reproduces: "paper §4.2.3 Figure 5 (NRR ∈ {1,4,8,16,24,32}, 64 registers)",
		Build:      func(opts Options) (Plan, error) { return nrrSweepPlan(core.SchemeVPIssue, nil, opts) },
		Render:     func(v any) string { return RenderNRRSweep(v.(NRRSweep)) },
	},
	{
		Name:       "fig6",
		Title:      "Figure 6: write-back vs issue allocation",
		Reproduces: "paper §4.2.3 Figure 6 (both policies at NRR=32)",
		Build:      func(opts Options) (Plan, error) { return figure6Plan(opts) },
		Render:     func(v any) string { return RenderFigure6(v.([]Fig6Row)) },
	},
	{
		Name:       "fig7",
		Title:      "Figure 7: IPC across 48/64/96 physical registers",
		Reproduces: "paper §4.2.4 Figure 7 (register sweep at maximum NRR)",
		Build:      func(opts Options) (Plan, error) { return figure7Plan(opts) },
		Render:     func(v any) string { return RenderFigure7(v.(Fig7)) },
	},
	{
		Name:       "ablation-release",
		Title:      "ablation: conventional early register release",
		Reproduces: "paper §3.1's second source of waste (refs [8][10]), next to VP write-back",
		Build:      func(opts Options) (Plan, error) { return earlyReleasePlan(opts) },
		Render:     func(v any) string { return RenderAblation(v.([]AblationRow), "releases/1k or exec/commit") },
	},
	{
		Name:       "ablation-disamb",
		Title:      "ablation: speculative vs conservative disambiguation",
		Reproduces: "paper §4.1's PA-8000 memory-ordering assumption, quantified",
		Build:      func(opts Options) (Plan, error) { return disambiguationPlan(opts) },
		Render:     func(v any) string { return RenderAblation(v.([]AblationRow), "violations/1k") },
	},
	{
		Name:       "ablation-recovery",
		Title:      "ablation: recovery penalty sweep",
		Reproduces: "paper §4.1's R10000-style checkpoint-recovery assumption, stressed",
		Build:      func(opts Options) (Plan, error) { return recoveryPlan(opts, nil) },
		Render:     func(v any) string { return RenderAblation(v.([]AblationRow), "-") },
	},
	{
		Name:       "ablation-nrr-split",
		Title:      "ablation: NRRint != NRRfp",
		Reproduces: "paper §3.2's note that NRR \"can be different for floating point and integer\"",
		Build:      func(opts Options) (Plan, error) { return splitNRRPlan(opts) },
		Render:     func(v any) string { return RenderAblation(v.([]AblationRow), "-") },
	},
	{
		Name:       "smt",
		Title:      "future work (§5): SMT scaling of the VP advantage",
		Reproduces: "paper §5's multithreading prediction; defaults to a representative workload subset",
		Build:      func(opts Options) (Plan, error) { return smtScalingPlan(nil, withSMTDefaultWorkloads(opts)) },
		Render:     func(v any) string { return RenderSMT(v.([]SMTRow)) },
	},
	{
		Name:       "lifetime",
		Title:      "supplementary: §3.1 register-holding time, measured in vivo",
		Reproduces: "paper §3.1's analytic holding-time example, measured on all three schemes",
		Build:      func(opts Options) (Plan, error) { return lifetimePlan(opts) },
		Render:     func(v any) string { return RenderLifetime(v.([]LifetimeRow)) },
	},
	{
		Name:       "smt-fetch",
		Title:      "SMT fetch policy: ICOUNT vs round-robin",
		Reproduces: "repository study: Tullsen-style ICOUNT fetch gating on the §5 SMT machine, via the pluggable stage-policy surface",
		Build:      func(opts Options) (Plan, error) { return fetchPolicyPlan(nil, withSMTDefaultWorkloads(opts)) },
		Render:     func(v any) string { return RenderFetchPolicy(v.([]FetchPolicyRow)) },
	},
	{
		Name:       "multicore",
		Title:      "multi-core scaling over the banked shared L2",
		Reproduces: "repository study: cores × register-pool scheme behind internal/mem's shared L2 (ROADMAP's multi-core sharding axis); defaults to a representative workload subset",
		Build:      func(opts Options) (Plan, error) { return multicorePlan(withMulticoreDefaultWorkloads(opts)) },
		Render:     func(v any) string { return RenderMulticore(v.([]MulticoreRow)) },
	},
	{
		Name:       "coherence",
		Title:      "coherence protocol cost over the banked shared L2",
		Reproduces: "repository study: sharing pattern × cores × scheme × protocol (MSI/MESI/MOESI) with coherence on/off and a namespaced zero-invalidation control (ROADMAP's coherence axis)",
		Build:      func(opts Options) (Plan, error) { return coherencePlan(withCoherenceDefaults(opts)) },
		Render:     func(v any) string { return RenderCoherence(v.([]CoherenceRow)) },
	},
}

// Registry returns the experiments in reporting order.
//
//vpr:lookup experiments
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered experiment names in reporting order.
//
//vpr:lookup experiments
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// ByName finds an experiment.
//
//vpr:lookup experiments
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// runPlan executes a plan on a fresh default engine — the path the
// deprecated free-function runners take. The engine uses the full machine
// (GOMAXPROCS workers); caching is disabled because a single plan never
// contains duplicate points and the engine does not outlive the call.
func runPlan(plan Plan, err error) (any, error) {
	if err != nil {
		return nil, err
	}
	eng := engine.New(engine.WithCache(0))
	ctx := context.Background()
	runs, err := eng.RunBatch(ctx, plan.Specs)
	if err != nil {
		return nil, err
	}
	var smt []sim.SMTResult
	if len(plan.SMT) > 0 {
		smt, err = eng.RunSMTBatch(ctx, plan.SMT)
		if err != nil {
			return nil, err
		}
	}
	var mc []sim.MulticoreResult
	if len(plan.Multicore) > 0 {
		mc, err = eng.RunMulticoreBatch(ctx, plan.Multicore)
		if err != nil {
			return nil, err
		}
	}
	return plan.Reduce(runs, smt, mc)
}
