package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// Small budgets keep these tests quick; the qualitative shape assertions
// hold from a few tens of thousands of instructions.
func quickOpts(workloads ...string) Options {
	return Options{Instr: 30_000, Workloads: workloads}
}

func TestTable2Shape(t *testing.T) {
	res, err := RunTable2(quickOpts("go", "compress", "swim", "hydro2d"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		if r.ConvIPC <= 0 || r.VPIPC <= 0 {
			t.Fatalf("%s: non-positive IPC", r.Workload)
		}
		byName[r.Workload] = r
	}
	// The paper's headline shape: the VP scheme wins overall, and the
	// FP streaming benchmark gains far more than the integer ones.
	if res.ImprovementPct <= 0 {
		t.Errorf("mean improvement = %.1f%%, want positive", res.ImprovementPct)
	}
	if byName["swim"].ImprovementPct < 30 {
		t.Errorf("swim improvement = %.1f%%, want large", byName["swim"].ImprovementPct)
	}
	if byName["go"].ImprovementPct > 15 {
		t.Errorf("go improvement = %.1f%%, want small", byName["go"].ImprovementPct)
	}
	if res.HarmonicConv <= 0 || res.HarmonicVP <= res.HarmonicConv {
		t.Errorf("harmonic means: conv %.2f vp %.2f", res.HarmonicConv, res.HarmonicVP)
	}
	if res.HavePenalty20 {
		t.Error("penalty-20 variant not requested")
	}
	out := RenderTable2(res)
	for _, want := range []string{"swim", "harmonic mean", "imp(%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Penalty20ReducesGain(t *testing.T) {
	res, err := RunTable2(quickOpts("swim", "mgrid"), true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HavePenalty20 {
		t.Fatal("penalty-20 variant missing")
	}
	// The paper: 19% at 50-cycle penalty vs 12% at 20 — shorter misses
	// shrink the register-pressure advantage.
	if res.Penalty20ImprovementPct >= res.ImprovementPct {
		t.Errorf("improvement with 20-cycle penalty (%.1f%%) should be below the 50-cycle one (%.1f%%)",
			res.Penalty20ImprovementPct, res.ImprovementPct)
	}
}

func TestNRRSweepShape(t *testing.T) {
	sweep, err := RunNRRSweep(core.SchemeVPWriteback, []int{1, 32}, quickOpts("compress", "swim"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Speedup["swim"]) != 2 || len(sweep.Speedup["compress"]) != 2 {
		t.Fatalf("speedup vectors: %+v", sweep.Speedup)
	}
	// compress at NRR=1 reproduces the paper's warning that very small
	// NRR can lose to the conventional scheme; at max NRR it must win.
	if sweep.Speedup["compress"][0] >= 1.0 {
		t.Errorf("compress at NRR=1 = %.2f, expected below 1.0", sweep.Speedup["compress"][0])
	}
	if sweep.Speedup["compress"][1] <= 1.0 {
		t.Errorf("compress at NRR=32 = %.2f, expected above 1.0", sweep.Speedup["compress"][1])
	}
	// swim wins at every NRR (the paper: speedups 1.27–1.84).
	for i, sp := range sweep.Speedup["swim"] {
		if sp <= 1.1 {
			t.Errorf("swim speedup[%d] = %.2f, want > 1.1", i, sp)
		}
	}
	if m := sweep.MeanSpeedupAt(1); m <= 1.0 {
		t.Errorf("mean speedup at max NRR = %.2f", m)
	}
	out := RenderNRRSweep(sweep)
	if !strings.Contains(out, "NRR=32") || !strings.Contains(out, "mean") {
		t.Errorf("rendered sweep:\n%s", out)
	}
}

func TestFigure6WritebackBeatsIssue(t *testing.T) {
	rows, err := RunFigure6(quickOpts("swim", "mgrid"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WritebackSpeedup <= r.IssueSpeedup {
			t.Errorf("%s: write-back %.2f vs issue %.2f — the paper's figure 6 has write-back clearly ahead",
				r.Workload, r.WritebackSpeedup, r.IssueSpeedup)
		}
	}
	out := RenderFigure6(rows)
	if !strings.Contains(out, "write-back") {
		t.Errorf("rendered figure 6:\n%s", out)
	}
}

func TestFigure7Shape(t *testing.T) {
	fig, err := RunFigure7(quickOpts("swim"))
	if err != nil {
		t.Fatal(err)
	}
	cells := fig.Cells["swim"]
	if len(cells) != 3 {
		t.Fatalf("cells = %+v", cells)
	}
	// Conventional IPC grows with register count; VP always wins; the
	// improvement shrinks as registers get plentiful (31% → 19% → 8% in
	// the paper).
	if !(cells[0].ConvIPC < cells[1].ConvIPC && cells[1].ConvIPC < cells[2].ConvIPC) {
		t.Errorf("conventional IPC not increasing across 48/64/96: %+v", cells)
	}
	for i, c := range cells {
		if c.VPIPC <= c.ConvIPC {
			t.Errorf("regs=%d: vp %.2f <= conv %.2f", fig.RegCounts[i], c.VPIPC, c.ConvIPC)
		}
	}
	if !(fig.MeanImprovementAt(0) > fig.MeanImprovementAt(2)) {
		t.Errorf("improvements across 48/96: %.1f%% / %.1f%% — want decreasing",
			fig.MeanImprovementAt(0), fig.MeanImprovementAt(2))
	}
	// The paper's register-saving claim: VP at 48 registers at least
	// matches conventional at 64.
	if cells[0].VPIPC < cells[1].ConvIPC {
		t.Errorf("vp@48 (%.2f) should reach conv@64 (%.2f)", cells[0].VPIPC, cells[1].ConvIPC)
	}
	out := RenderFigure7(fig)
	if !strings.Contains(out, "conv(48)") || !strings.Contains(out, "improvement") {
		t.Errorf("rendered figure 7:\n%s", out)
	}
}

func TestEarlyReleaseAblation(t *testing.T) {
	rows, err := RunEarlyReleaseAblation(quickOpts("compress"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	var conv, er, vp float64
	var erExtra float64
	for _, r := range rows {
		switch r.Variant {
		case "conv":
			conv = r.IPC
		case "conv+early-release":
			er, erExtra = r.IPC, r.Extra
		case "vp-wb":
			vp = r.IPC
		}
	}
	if er < conv {
		t.Errorf("early release must not hurt: conv %.3f, +er %.3f", conv, er)
	}
	if erExtra <= 0 {
		t.Error("early release fired zero times; ablation is inert")
	}
	if vp <= conv {
		t.Errorf("vp %.3f should beat conv %.3f on compress", vp, conv)
	}
}

func TestDisambiguationAblation(t *testing.T) {
	rows, err := RunDisambiguationAblation(quickOpts("compress"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.IPC <= 0 {
			t.Errorf("%s: bad IPC", r.Variant)
		}
	}
}

func TestRecoveryAblationPenaltyHurts(t *testing.T) {
	rows, err := RunRecoveryAblation(quickOpts("go"), []int{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// go mispredicts a lot; a 16-cycle extra recovery penalty must cost
	// clearly measurable IPC.
	if rows[1].IPC >= rows[0].IPC {
		t.Errorf("recovery penalty should reduce IPC: %.3f -> %.3f", rows[0].IPC, rows[1].IPC)
	}
}

func TestSplitNRRAblation(t *testing.T) {
	rows, err := RunSplitNRRAblation(quickOpts("swim"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	out := RenderAblation(rows, "extra")
	if !strings.Contains(out, "int8/fp32") {
		t.Errorf("rendered ablation:\n%s", out)
	}
}

func TestUnknownWorkloadFails(t *testing.T) {
	if _, err := RunTable2(quickOpts("nonesuch"), false); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestProgressCallback(t *testing.T) {
	var lines int
	opts := quickOpts("compress")
	opts.Progress = func(string, ...any) { lines++ }
	if _, err := RunTable2(opts, false); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("progress callback never invoked")
	}
}

func TestSMTScaling(t *testing.T) {
	opts := quickOpts("hydro2d")
	rows, err := RunSMTScaling([]int{1, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Threads != 1 || rows[1].Threads != 2 {
		t.Fatalf("thread counts = %+v", rows)
	}
	// The paper's §5 prediction: the VP advantage grows when threads
	// share the register file.
	if rows[1].ImprovementPct <= rows[0].ImprovementPct {
		t.Errorf("VP improvement: 1T %+.0f%%, 2T %+.0f%% — expected growth under sharing",
			rows[0].ImprovementPct, rows[1].ImprovementPct)
	}
	out := RenderSMT(rows)
	if !strings.Contains(out, "threads") {
		t.Errorf("rendered SMT study:\n%s", out)
	}
}

func TestLifetimeOrdering(t *testing.T) {
	rows, err := RunLifetime(quickOpts("swim"))
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]LifetimeRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	conv, issue, wb := byScheme["conv"], byScheme["vp-issue"], byScheme["vp-wb"]
	// §3.1: decode-time allocation holds registers longest, write-back
	// shortest. Issue allocation sits in between (or ties conventional
	// when the guard blocks issues).
	if !(conv.AvgLifetime >= issue.AvgLifetime*0.95) {
		t.Errorf("conv lifetime %.1f should be >= issue %.1f", conv.AvgLifetime, issue.AvgLifetime)
	}
	if !(issue.AvgLifetime > wb.AvgLifetime) {
		t.Errorf("issue lifetime %.1f should exceed write-back %.1f", issue.AvgLifetime, wb.AvgLifetime)
	}
	if !(conv.AvgLifetime > wb.AvgLifetime*1.5) {
		t.Errorf("write-back (%.1f) should hold registers far shorter than conventional (%.1f)",
			wb.AvgLifetime, conv.AvgLifetime)
	}
	out := RenderLifetime(rows)
	if !strings.Contains(out, "cycles held/value") {
		t.Errorf("rendered lifetime study:\n%s", out)
	}
}
