package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// MulticoreRow is one core-count × workload point of the multi-core
// study: aggregate IPC per renaming scheme behind the banked shared L2.
type MulticoreRow struct {
	Workload       string
	Cores          int
	ConvIPC        float64 // aggregate across cores
	VPIPC          float64
	ImprovementPct float64
	L2MissRatio    float64 // shared-L2 misses per fetch (conventional point)
	L2Conflicts    int64   // bank-bus conflicts (conventional point)
}

// multicoreDefaultCores is the sweep the registry experiment defaults to.
var multicoreDefaultCores = []int{1, 2, 4}

// multicoreDefaultSubset keeps the default run affordable: simulation
// work scales with the core count, and the shared-L2 story is told by a
// cache-hungry integer kernel and two FP kernels.
var multicoreDefaultSubset = []string{"compress", "swim", "hydro2d"}

// l2Config resolves the option's shared-L2 overrides over the defaults.
func (o Options) l2Config() mem.L2Config {
	cfg := mem.DefaultL2Config()
	if o.L2SizeBytes > 0 {
		cfg.SizeBytes = o.L2SizeBytes
	}
	if o.L2Banks > 0 {
		cfg.Banks = o.L2Banks
	}
	return cfg
}

// multicorePlan sweeps core count × register-pool scheme over the banked
// shared L2 — the ROADMAP's multi-core sharding axis. Each core runs a
// private copy of the workload on the paper's machine (64 registers, max
// NRR); the per-core instruction budget divides the option's budget so
// total simulated work stays constant across the sweep.
func multicorePlan(opts Options) (Plan, error) {
	if err := checkMulticoreWorkloads(opts.workloads()); err != nil {
		return Plan{}, err
	}
	coreCounts := opts.Cores
	if len(coreCounts) == 0 {
		coreCounts = multicoreDefaultCores
	}
	for _, n := range coreCounts {
		if n < 1 {
			return Plan{}, fmt.Errorf("experiments: bad core count %d", n)
		}
	}
	if _, err := opts.stepMode(); err != nil {
		return Plan{}, err
	}
	if err := opts.checkCoherenceSelections(); err != nil {
		return Plan{}, err
	}
	l2 := opts.l2Config()
	names := opts.workloads() // may include "synth:" presets, as in MulticoreSpec
	var specs []sim.MulticoreSpec
	for _, name := range names {
		for _, n := range coreCounts {
			specs = append(specs,
				multicorePointSpec(name, core.SchemeConventional, n, l2, opts),
				multicorePointSpec(name, core.SchemeVPWriteback, n, l2, opts))
		}
	}
	reduce := func(_ []sim.Result, _ []sim.SMTResult, mc []sim.MulticoreResult) (any, error) {
		var rows []MulticoreRow
		k := 0
		for _, name := range names {
			for _, n := range coreCounts {
				conv, vp := mc[k], mc[k+1]
				k += 2
				row := MulticoreRow{
					Workload:       name,
					Cores:          n,
					ConvIPC:        conv.Stats.IPC(),
					VPIPC:          vp.Stats.IPC(),
					ImprovementPct: improvementPct(conv.Stats.IPC(), vp.Stats.IPC()),
					L2MissRatio:    conv.Stats.L2MissRatio(),
					L2Conflicts:    conv.Stats.L2Conflicts,
				}
				rows = append(rows, row)
				opts.progress("multicore %-9s cores=%d conv %.3f vp %.3f (%+.0f%%) l2miss %.3f",
					name, n, row.ConvIPC, row.VPIPC, row.ImprovementPct, row.L2MissRatio)
			}
		}
		return rows, nil
	}
	return Plan{Multicore: specs, Reduce: reduce}, nil
}

func multicorePointSpec(name string, scheme core.Scheme, cores int, l2 mem.L2Config, opts Options) sim.MulticoreSpec {
	names := make([]string, cores)
	for i := range names {
		names[i] = name
	}
	step, _ := opts.stepMode() // plan builders validate the mode up front
	spec := sim.MulticoreSpec{
		Workloads:          names,
		Config:             baseConfig(scheme, 64, 32),
		L2:                 l2,
		SharedAddressSpace: opts.Coherence,
		Coherence:          opts.Coherence,
		MaxInstrPerCore:    opts.instr() / int64(cores),
		Step:               step,
	}
	if opts.Coherence {
		spec.Protocol = opts.Protocol
		spec.Directory = opts.Directory
	}
	return spec
}

// RunMulticoreStudy executes the multi-core scaling study on a fresh
// default engine (the registry path is Experiment "multicore" via
// Experiment.Run or vpr.Engine.RunExperiment).
func RunMulticoreStudy(coreCounts []int, opts Options) ([]MulticoreRow, error) {
	opts.Cores = coreCounts
	v, err := runPlan(multicorePlan(withMulticoreDefaultWorkloads(opts)))
	if err != nil {
		return nil, err
	}
	return v.([]MulticoreRow), nil
}

// withMulticoreDefaultWorkloads applies multicoreDefaultSubset when the
// caller did not restrict the workload set.
func withMulticoreDefaultWorkloads(opts Options) Options {
	if len(opts.Workloads) == 0 {
		opts.Workloads = multicoreDefaultSubset
	}
	return opts
}

// RenderMulticore formats the multi-core study: aggregate IPC per scheme,
// the VP improvement, and the shared-L2 behaviour per core count.
func RenderMulticore(rows []MulticoreRow) string {
	var tb metrics.Table
	tb.AddRow("bench", "cores", "conv IPC", "vp IPC", "imp(%)", "L2 miss", "bank conflicts")
	for _, r := range rows {
		tb.AddRow(r.Workload, fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.2f", r.ConvIPC), fmt.Sprintf("%.2f", r.VPIPC),
			fmt.Sprintf("%+.0f", r.ImprovementPct),
			fmt.Sprintf("%.3f", r.L2MissRatio), fmt.Sprintf("%d", r.L2Conflicts))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("each core is the paper's machine (64 regs/file, max NRR) with a private L1;\n")
	b.WriteString("cores share a banked finite L2 and run in cycle-lockstep; IPC aggregates all cores.\n")
	return b.String()
}
