package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// RenderTable2 formats a Table2 result in the paper's row shape.
func RenderTable2(t Table2) string {
	var tb metrics.Table
	tb.AddRow("bench", "class", "conv IPC", "vp IPC", "imp(%)", "exec/commit")
	for _, r := range t.Rows {
		tb.AddRow(r.Workload, r.Class,
			fmt.Sprintf("%.2f", r.ConvIPC), fmt.Sprintf("%.2f", r.VPIPC),
			fmt.Sprintf("%+.0f", r.ImprovementPct), fmt.Sprintf("%.2f", r.ExecPerCommit))
	}
	tb.AddRow("harmonic mean", "",
		fmt.Sprintf("%.2f", t.HarmonicConv), fmt.Sprintf("%.2f", t.HarmonicVP),
		fmt.Sprintf("%+.0f", t.ImprovementPct), fmt.Sprintf("%.2f", t.AvgExecPerCommit))
	out := tb.String()
	if t.HavePenalty20 {
		out += fmt.Sprintf("with a 20-cycle miss penalty the improvement is %+.0f%% (paper: +12%%)\n",
			t.Penalty20ImprovementPct)
	}
	return out
}

// RenderNRRSweep formats figures 4 and 5: one row per workload, one column
// per NRR value, cells are speedups over the conventional scheme.
func RenderNRRSweep(s NRRSweep) string {
	var tb metrics.Table
	header := []string{"bench"}
	for _, nrr := range s.NRRs {
		header = append(header, fmt.Sprintf("NRR=%d", nrr))
	}
	tb.AddRow(header...)
	for _, name := range sortedKeys(s.Speedup) {
		row := []string{name}
		for _, sp := range s.Speedup[name] {
			row = append(row, fmt.Sprintf("%.2f", sp))
		}
		tb.AddRow(row...)
	}
	mean := []string{"mean"}
	for i := range s.NRRs {
		mean = append(mean, fmt.Sprintf("%.2f", s.MeanSpeedupAt(i)))
	}
	tb.AddRow(mean...)
	return tb.String()
}

// RenderFigure6 formats figure 6.
func RenderFigure6(rows []Fig6Row) string {
	var tb metrics.Table
	tb.AddRow("bench", "write-back", "issue")
	var wb, iss []float64
	for _, r := range rows {
		tb.AddRow(r.Workload, fmt.Sprintf("%.2f", r.WritebackSpeedup), fmt.Sprintf("%.2f", r.IssueSpeedup))
		wb = append(wb, r.WritebackSpeedup)
		iss = append(iss, r.IssueSpeedup)
	}
	tb.AddRow("mean", fmt.Sprintf("%.2f", metrics.ArithmeticMean(wb)), fmt.Sprintf("%.2f", metrics.ArithmeticMean(iss)))
	return tb.String()
}

// RenderFigure7 formats figure 7: per-workload IPC bars for each register
// count and the paper's average-improvement summary line.
func RenderFigure7(f Fig7) string {
	var tb metrics.Table
	header := []string{"bench"}
	for _, regs := range f.RegCounts {
		header = append(header, fmt.Sprintf("conv(%d)", regs), fmt.Sprintf("virt(%d)", regs))
	}
	tb.AddRow(header...)
	for _, name := range sortedKeys(f.Cells) {
		row := []string{name}
		for _, c := range f.Cells[name] {
			row = append(row, fmt.Sprintf("%.2f", c.ConvIPC), fmt.Sprintf("%.2f", c.VPIPC))
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	for i, regs := range f.RegCounts {
		hc, hv := f.HarmonicIPCAt(i)
		fmt.Fprintf(&b, "regs=%d: harmonic conv %.2f, virt %.2f, improvement %+.0f%%\n",
			regs, hc, hv, f.MeanImprovementAt(i))
	}
	return b.String()
}

// RenderAblation formats any []AblationRow grouped by workload.
func RenderAblation(rows []AblationRow, extraLabel string) string {
	var tb metrics.Table
	tb.AddRow("bench", "variant", "IPC", extraLabel)
	for _, r := range rows {
		tb.AddRow(r.Workload, r.Variant, fmt.Sprintf("%.2f", r.IPC), fmt.Sprintf("%.2f", r.Extra))
	}
	return tb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
