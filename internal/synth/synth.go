// Package synth generates stochastic instruction traces with controlled
// microarchitectural characteristics: operation mix, true-dependence
// distance, cache-miss behaviour and branch predictability. It complements
// the emulator-backed kernels in internal/workloads: synthetic traces carry
// no golden values (trace.Record.HasValues is false) but let tests and
// ablation experiments dial one property at a time.
package synth

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Params controls the generated stream. Fractions need not sum to 1; the
// remainder becomes single-cycle integer ALU work. The zero value is
// invalid; start from Defaults().
type Params struct {
	Seed int64

	// Operation mix (fractions of all instructions).
	FracLoad    float64
	FracStore   float64
	FracBranch  float64
	FracFPALU   float64
	FracFPMul   float64
	FracFPDiv   float64
	FracIntMul  float64
	FracIntDiv  float64
	FracFPLoads float64 // fraction of loads that target the FP file

	// MeanDepDist is the mean true-dependence distance: each source
	// operand names the destination of an instruction ~Geometric(1/mean)
	// positions back. Small values mean serial code.
	MeanDepDist float64

	// MissRatio is the fraction of memory accesses that touch a fresh
	// cache line (guaranteed cold); the rest hit a small resident set.
	MissRatio float64

	// BiasedBranchFrac is the fraction of branches that are strongly
	// biased taken (predictable loop-like branches); the rest are 50/50
	// data-dependent branches the 2-bit predictor cannot learn.
	BiasedBranchFrac float64

	// The sharing-pattern knobs below all treat their zero value as "off"
	// and consume no RNG draws when off, so parameter sets that predate
	// them generate byte-identical streams.

	// ResidentLines sizes the resident working set in cache lines
	// (0 = the classic 64-line ≈ 2 KB set). Large values overflow the L1
	// and turn resident traffic into L2 sharing traffic.
	ResidentLines int

	// MigratoryFrac is the fraction of memory accesses that target the
	// current migratory line: one resident line accessed in long bursts
	// before the walk advances to the next, so in a shared address space
	// its ownership migrates from core to core, burst by burst.
	MigratoryFrac float64

	// FalseShareWords scatters resident accesses over the first N 8-byte
	// words of their line (0 or 1 = whole-line addressing): distinct
	// words, same line — with a small resident set, the classic
	// false-sharing pattern at line granularity.
	FalseShareWords int
}

// Defaults returns a balanced integer-program-like parameter set.
func Defaults() Params {
	return Params{
		Seed:             1,
		FracLoad:         0.25,
		FracStore:        0.10,
		FracBranch:       0.15,
		MeanDepDist:      6,
		MissRatio:        0.05,
		BiasedBranchFrac: 0.85,
	}
}

// FPStream returns parameters resembling a streaming FP kernel.
func FPStream() Params {
	p := Defaults()
	p.FracLoad = 0.30
	p.FracStore = 0.08
	p.FracBranch = 0.06
	p.FracFPALU = 0.25
	p.FracFPMul = 0.12
	p.FracFPLoads = 0.9
	p.MeanDepDist = 4
	p.MissRatio = 0.25
	p.BiasedBranchFrac = 1.0
	return p
}

// Sharing returns a sharing-heavy parameter set for coherence studies:
// store-heavy traffic over the small resident set with almost no cold
// streaming, so cores running the same seed in a shared address space
// write the same lines in lockstep and the MSI directory ping-pongs
// ownership between them.
func Sharing() Params {
	p := Defaults()
	p.FracLoad = 0.30
	p.FracStore = 0.30
	p.FracBranch = 0.08
	p.MeanDepDist = 8
	p.MissRatio = 0.01
	p.BiasedBranchFrac = 0.95
	return p
}

// ProducerConsumer returns a read-dominant sharing pattern over a
// working set larger than the L1: consumers stream reads, the occasional
// store invalidates them, and every re-read goes through the shared L2 —
// the pattern that rewards clean-exclusive (E) grants.
func ProducerConsumer() Params {
	p := Defaults()
	p.FracLoad = 0.45
	p.FracStore = 0.06
	p.FracBranch = 0.08
	p.MeanDepDist = 8
	p.MissRatio = 0
	p.BiasedBranchFrac = 0.95
	p.ResidentLines = 1536 // 48 KB: 3× the 16 KB L1
	return p
}

// Migratory returns the migratory-object pattern: most accesses hit the
// current line of a slow walk over the resident set, read-modify-write
// style, so ownership of one hot line at a time migrates between cores —
// the pattern that rewards dirty forwarding (MOESI's Owned state).
func Migratory() Params {
	p := Defaults()
	p.FracLoad = 0.30
	p.FracStore = 0.15
	p.FracBranch = 0.08
	p.MissRatio = 0
	p.MigratoryFrac = 0.8
	p.ResidentLines = 128
	return p
}

// FalseSharing returns the false-sharing pattern: a resident set of just
// two lines with accesses scattered over their words, so cores fight for
// ownership of lines they never truly share — the pattern no protocol
// can fix, only measure.
func FalseSharing() Params {
	p := Defaults()
	p.FracLoad = 0.25
	p.FracStore = 0.30
	p.FracBranch = 0.08
	p.MissRatio = 0
	p.ResidentLines = 2
	p.FalseShareWords = 4 // 32-byte lines hold 4 words
	return p
}

// Preset is one named parameter set, for the CLIs and the multicore
// workload syntax ("synth:sharing").
type Preset struct {
	Name        string
	Description string
	Params      func() Params
}

// presets mirrors the experiment/policy registries: enumerable, looked up
// by name, default first.
//
//vpr:registry synth-presets
var presets = []Preset{
	{"default", "balanced integer-program-like mix", Defaults},
	{"fpstream", "streaming FP kernel: FP-heavy, miss-heavy, predictable branches", FPStream},
	{"sharing", "coherence stress: store-heavy over a small resident set", Sharing},
	{"producer-consumer", "read-dominant sharing over an L1-overflowing set (rewards E grants)", ProducerConsumer},
	{"migratory", "one hot line at a time migrates between cores (rewards dirty forwarding)", Migratory},
	{"false-sharing", "cores fight over the words of two lines they never truly share", FalseSharing},
}

// Presets lists the named parameter sets.
//
//vpr:lookup synth-presets
func Presets() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	return out
}

// ByName resolves a preset name to its parameters.
//
//vpr:lookup synth-presets
func ByName(name string) (Params, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p.Params(), true
		}
	}
	return Params{}, false
}

// gen implements trace.Generator.
type gen struct {
	p   Params
	rng *rand.Rand

	pc        int
	seq       int64
	missLine  uint64 // next cold line address
	residents []uint64
	migSeq    int64 // migratory accesses so far; line advances per burst

	// Ring of recent destination registers per class, used to realize the
	// dependence-distance distribution.
	recentInt []isa.Reg
	recentFP  []isa.Reg
	nextInt   uint8
	nextFP    uint8
}

// New builds a generator. The stream is infinite and deterministic for a
// given Params (including Seed).
func New(p Params) trace.Generator {
	g := &gen{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		missLine: 1 << 30,
	}
	// The resident working set: the classic 64 lines ≈ 2 KB (comfortably
	// inside the 16 KB L1) unless the parameters size it explicitly.
	lines := p.ResidentLines
	if lines <= 0 {
		lines = 64
	}
	for i := 0; i < lines; i++ {
		g.residents = append(g.residents, uint64(isa.DefaultDataBase)+uint64(i*32))
	}
	return g
}

// migBurst is how many migratory accesses hit one line before the walk
// advances — long enough for a core to take ownership and work, short
// enough that lines keep moving.
const migBurst = 48

const loopLen = 64 // synthetic "loop body" length; PCs cycle mod loopLen

func (g *gen) Next() (trace.Record, bool) {
	rec := trace.Record{Seq: g.seq, PC: g.pc}
	in := g.pick()
	rec.Inst = in
	info := in.Op.Info()

	switch {
	case info.IsLoad || info.IsStore:
		rec.EA = g.address()
	case info.IsBranch:
		// The branch's own PC determines its behaviour class so the
		// 2-bit table sees a consistent stream per slot.
		biased := float64(g.pc%loopLen)/loopLen < g.p.BiasedBranchFrac
		if biased {
			rec.Taken = g.rng.Float64() < 0.95
		} else {
			rec.Taken = g.rng.Float64() < 0.5
		}
		// Taken branches skip one instruction (wrapping inside the
		// synthetic loop body), so taken vs not-taken genuinely
		// diverge and redirect fetch.
		rec.Inst.Target = (g.pc + 2) % loopLen
		if rec.Taken {
			rec.NextPC = rec.Inst.Target
		}
	}
	if !info.IsBranch || !rec.Taken {
		rec.NextPC = (g.pc + 1) % loopLen
	}
	g.pc = rec.NextPC
	g.seq++
	g.note(rec.Inst.Dst)
	return rec, true
}

// pick chooses the next instruction according to the mix.
func (g *gen) pick() isa.Inst {
	r := g.rng.Float64()
	p := g.p
	switch {
	case r < p.FracLoad:
		if g.rng.Float64() < p.FracFPLoads {
			return isa.Inst{Op: isa.LDT, Dst: g.freshFP(), Src1: g.srcInt()}
		}
		return isa.Inst{Op: isa.LDQ, Dst: g.freshInt(), Src1: g.srcInt()}
	case r < p.FracLoad+p.FracStore:
		if g.rng.Float64() < p.FracFPLoads {
			return isa.Inst{Op: isa.STT, Src1: g.srcInt(), Src2: g.srcFP()}
		}
		return isa.Inst{Op: isa.STQ, Src1: g.srcInt(), Src2: g.srcInt()}
	case r < p.FracLoad+p.FracStore+p.FracBranch:
		return isa.Inst{Op: isa.BNE, Src1: g.srcInt()}
	case r < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPALU:
		return isa.Inst{Op: isa.FADD, Dst: g.freshFP(), Src1: g.srcFP(), Src2: g.srcFP()}
	case r < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPALU+p.FracFPMul:
		return isa.Inst{Op: isa.FMUL, Dst: g.freshFP(), Src1: g.srcFP(), Src2: g.srcFP()}
	case r < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPALU+p.FracFPMul+p.FracFPDiv:
		return isa.Inst{Op: isa.FDIV, Dst: g.freshFP(), Src1: g.srcFP(), Src2: g.srcFP()}
	case r < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPALU+p.FracFPMul+p.FracFPDiv+p.FracIntMul:
		return isa.Inst{Op: isa.MUL, Dst: g.freshInt(), Src1: g.srcInt(), Src2: g.srcInt()}
	case r < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPALU+p.FracFPMul+p.FracFPDiv+p.FracIntMul+p.FracIntDiv:
		return isa.Inst{Op: isa.DIV, Dst: g.freshInt(), Src1: g.srcInt(), Src2: g.srcInt()}
	default:
		return isa.Inst{Op: isa.ADD, Dst: g.freshInt(), Src1: g.srcInt(), Src2: g.srcInt()}
	}
}

// address synthesizes an effective address: the current migratory line,
// a cold line (guaranteed miss) or a resident one. Every branch that is
// off in the parameters draws nothing from the RNG, keeping pre-existing
// parameter sets byte-identical.
func (g *gen) address() uint64 {
	if g.p.MigratoryFrac > 0 && g.rng.Float64() < g.p.MigratoryFrac {
		g.migSeq++
		return g.residents[int(g.migSeq/migBurst)%len(g.residents)]
	}
	if g.rng.Float64() < g.p.MissRatio {
		a := g.missLine
		g.missLine += 32 // next line; never revisited
		return a
	}
	a := g.residents[g.rng.Intn(len(g.residents))]
	if g.p.FalseShareWords > 1 {
		a += uint64(g.rng.Intn(g.p.FalseShareWords)) * 8
	}
	return a
}

// freshInt/freshFP allocate destination registers round-robin through
// r1..r30 / f1..f30 (avoiding the zero register and r0/f0, which stay
// loop-invariant).
func (g *gen) freshInt() isa.Reg {
	g.nextInt = g.nextInt%30 + 1
	return isa.IntReg(int(g.nextInt))
}

func (g *gen) freshFP() isa.Reg {
	g.nextFP = g.nextFP%30 + 1
	return isa.FPReg(int(g.nextFP))
}

// note records a destination for future dependence edges.
func (g *gen) note(d isa.Reg) {
	switch d.Class {
	case isa.RegInt:
		g.recentInt = pushRecent(g.recentInt, d)
	case isa.RegFP:
		g.recentFP = pushRecent(g.recentFP, d)
	}
}

// pushRecent appends d to the window, sliding a full window with a
// memmove. The previous [1:]-then-append form walked the backing array
// and reallocated it every ~window instructions — one allocation per
// ~24 generated instructions, the generator's entire steady-state
// allocation rate.
func pushRecent(recent []isa.Reg, d isa.Reg) []isa.Reg {
	const window = 32
	if len(recent) < window {
		return append(recent, d)
	}
	copy(recent, recent[1:])
	recent[window-1] = d
	return recent
}

// srcInt/srcFP pick a source register whose producer is ~Geometric(mean)
// instructions back.
func (g *gen) srcInt() isa.Reg { return g.src(g.recentInt, isa.RegInt) }
func (g *gen) srcFP() isa.Reg  { return g.src(g.recentFP, isa.RegFP) }

func (g *gen) src(recent []isa.Reg, class isa.RegClass) isa.Reg {
	if len(recent) == 0 {
		if class == isa.RegInt {
			return isa.IntReg(0)
		}
		return isa.FPReg(0)
	}
	d := g.geometric()
	if d >= len(recent) {
		d = len(recent) - 1
	}
	return recent[len(recent)-1-d]
}

func (g *gen) geometric() int {
	mean := g.p.MeanDepDist
	if mean < 1 {
		mean = 1
	}
	d := 0
	p := 1 / mean
	for g.rng.Float64() > p && d < 64 {
		d++
	}
	return d
}
