package synth

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestMixMatchesParams(t *testing.T) {
	p := Defaults()
	p.FracLoad = 0.3
	p.FracStore = 0.1
	p.FracBranch = 0.2
	const n = 50000
	m := trace.MeasureMix(New(p), n)
	if m.Total != n {
		t.Fatalf("generator ended early at %d", m.Total)
	}
	within := func(got, want, tol float64, what string) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s fraction = %.3f, want %.3f±%.3f", what, got, want, tol)
		}
	}
	within(m.Frac(m.Loads), 0.3, 0.02, "load")
	within(m.Frac(m.Stores), 0.1, 0.02, "store")
	within(m.Frac(m.Branches), 0.2, 0.02, "branch")
}

func TestFPStreamHasFPWork(t *testing.T) {
	m := trace.MeasureMix(New(FPStream()), 20000)
	if m.FPALU == 0 || m.FPMul == 0 {
		t.Error("FPStream must generate FP work")
	}
	if m.FPDst <= m.IntDst {
		t.Errorf("FPStream dests: fp %d should exceed int %d", m.FPDst, m.IntDst)
	}
}

func TestDeterminism(t *testing.T) {
	p := Defaults()
	a := trace.Collect(New(p), 2000)
	b := trace.Collect(New(p), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between identical generators", i)
		}
	}
	p.Seed = 2
	c := trace.Collect(New(p), 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should change the stream")
	}
}

func TestPCFlowIsConsistent(t *testing.T) {
	recs := trace.Collect(New(Defaults()), 5000)
	for i := 0; i+1 < len(recs); i++ {
		if recs[i].NextPC != recs[i+1].PC {
			t.Fatalf("record %d: NextPC %d but next PC is %d", i, recs[i].NextPC, recs[i+1].PC)
		}
		info := recs[i].Inst.Op.Info()
		if info.IsBranch && recs[i].Taken && recs[i].NextPC != recs[i].Inst.Target {
			t.Fatalf("record %d: taken branch NextPC %d != target %d", i, recs[i].NextPC, recs[i].Inst.Target)
		}
	}
}

func TestMissRatioControlsColdLines(t *testing.T) {
	count := func(ratio float64) int {
		p := Defaults()
		p.MissRatio = ratio
		seen := map[uint64]bool{}
		cold := 0
		for _, r := range trace.Collect(New(p), 20000) {
			info := r.Inst.Op.Info()
			if !info.IsLoad && !info.IsStore {
				continue
			}
			line := r.EA / 32
			if !seen[line] {
				cold++
				seen[line] = true
			}
		}
		return cold
	}
	few, many := count(0.01), count(0.5)
	if many < few*5 {
		t.Errorf("cold lines: ratio 0.5 gave %d, ratio 0.01 gave %d; expected a large increase", many, few)
	}
}

func TestDependenceDistance(t *testing.T) {
	// With a small mean distance, sources should mostly name very recent
	// destinations. Measure the realized distance distribution.
	meanOf := func(mean float64) float64 {
		p := Defaults()
		p.MeanDepDist = mean
		p.FracBranch = 0 // keep every instruction a producer+consumer
		p.FracLoad = 0
		p.FracStore = 0
		recs := trace.Collect(New(p), 20000)
		lastWrite := map[isa.Reg]int{}
		var total, nsamples float64
		for i, r := range recs {
			for _, s := range r.Inst.Sources() {
				if w, ok := lastWrite[s]; ok {
					total += float64(i - w)
					nsamples++
				}
			}
			if r.Inst.HasDst() {
				lastWrite[r.Inst.Dst] = i
			}
		}
		return total / nsamples
	}
	short, long := meanOf(1.5), meanOf(12)
	if short >= long {
		t.Errorf("realized dependence distance: mean 1.5 gave %.2f, mean 12 gave %.2f; want increasing", short, long)
	}
	if short > 4 {
		t.Errorf("short chains: realized distance %.2f too large", short)
	}
}

func TestSyntheticRecordsHaveNoValues(t *testing.T) {
	for _, r := range trace.Collect(New(Defaults()), 100) {
		if r.HasValues {
			t.Fatal("synthetic traces must not claim golden values")
		}
	}
}

func TestBranchBias(t *testing.T) {
	taken := func(biasFrac float64) float64 {
		p := Defaults()
		p.BiasedBranchFrac = biasFrac
		p.FracBranch = 0.3
		m := trace.MeasureMix(New(p), 30000)
		return float64(m.Taken) / float64(m.Branches)
	}
	allBiased, allRandom := taken(1.0), taken(0.0)
	if allBiased < 0.9 {
		t.Errorf("fully biased branches taken %.2f, want ≥0.9", allBiased)
	}
	if allRandom < 0.4 || allRandom > 0.6 {
		t.Errorf("random branches taken %.2f, want ≈0.5", allRandom)
	}
}
