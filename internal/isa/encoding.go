package isa

// Binary instruction encoding. The simulator itself works on decoded
// instructions, but a fixed 64-bit encoding is provided so programs can be
// stored compactly (trace files, program images) and because a real ISA
// defines one. The format packs every operand field of Inst losslessly:
//
//	bits  0..7   opcode
//	bits  8..9   dst class    bits 10..15  dst index
//	bits 16..17  src1 class   bits 18..23  src1 index
//	bits 24..25  src2 class   bits 26..31  src2 index
//	bits 32..55  imm24: signed 24-bit immediate (see below)
//	bits 56..63  reserved (zero)
//
// Immediates exceeding 24 bits and branch targets are carried in an
// optional 64-bit extension word; bit 55 of imm24 space cannot express
// them. Encode returns the words; instructions whose immediate fits and
// that have no target need only the first.

import (
	"errors"
	"fmt"
)

const (
	immBits = 24
	immMax  = 1<<(immBits-1) - 1
	immMin  = -1 << (immBits - 1)
)

// ErrNeedsExtension reports that DecodeWord saw an instruction that
// requires its extension word.
var ErrNeedsExtension = errors.New("isa: instruction requires an extension word")

// Encode packs the instruction into one or two 64-bit words. The second
// word is present when the immediate does not fit in 24 bits or the
// instruction is a direct branch (targets are word-indexed PCs and get the
// full 64 bits).
func Encode(in Inst) (words []uint64, err error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	info := in.Op.Info()
	needExt := in.Imm > immMax || in.Imm < immMin || (info.IsBranch && !info.IsIndirect)

	w := uint64(in.Op)
	w |= uint64(in.Dst.Class&3) << 8
	w |= uint64(in.Dst.Index&63) << 10
	w |= uint64(in.Src1.Class&3) << 16
	w |= uint64(in.Src1.Index&63) << 18
	w |= uint64(in.Src2.Class&3) << 24
	w |= uint64(in.Src2.Index&63) << 26
	if !needExt {
		w |= (uint64(in.Imm) & (1<<immBits - 1)) << 32
		return []uint64{w}, nil
	}
	w |= 1 << 56 // extension marker
	ext := uint64(in.Imm)
	if info.IsBranch && !info.IsIndirect {
		// Branches carry the target; their immediate is unused.
		ext = uint64(int64(in.Target))
	}
	return []uint64{w, ext}, nil
}

// DecodeWord unpacks one or two words produced by Encode. It returns the
// number of words consumed. When the first word requires an extension and
// words contains only one element, it returns ErrNeedsExtension.
func DecodeWord(words []uint64) (Inst, int, error) {
	if len(words) == 0 {
		return Inst{}, 0, errors.New("isa: no words to decode")
	}
	w := words[0]
	in := Inst{
		Op:     Opcode(w & 0xFF),
		Dst:    Reg{Class: RegClass(w >> 8 & 3), Index: uint8(w >> 10 & 63)},
		Src1:   Reg{Class: RegClass(w >> 16 & 3), Index: uint8(w >> 18 & 63)},
		Src2:   Reg{Class: RegClass(w >> 24 & 3), Index: uint8(w >> 26 & 63)},
		Target: -1,
	}
	info := in.Op.Info()
	if info.Name == "" {
		return Inst{}, 0, fmt.Errorf("isa: unknown opcode %d in encoded word", w&0xFF)
	}
	n := 1
	if w>>56&1 != 0 {
		if len(words) < 2 {
			return Inst{}, 0, ErrNeedsExtension
		}
		ext := words[1]
		if info.IsBranch && !info.IsIndirect {
			in.Target = int(int64(ext))
		} else {
			in.Imm = int64(ext)
		}
		n = 2
	} else {
		// Sign-extend the 24-bit immediate.
		raw := int64(w >> 32 & (1<<immBits - 1))
		if raw > immMax {
			raw -= 1 << immBits
		}
		in.Imm = raw
	}
	if err := in.Validate(); err != nil {
		return Inst{}, 0, err
	}
	return in, n, nil
}

// EncodeProgram packs every instruction of a program into a flat word
// stream.
func EncodeProgram(insts []Inst) ([]uint64, error) {
	var out []uint64
	for pc, in := range insts {
		words, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: pc %d: %w", pc, err)
		}
		out = append(out, words...)
	}
	return out, nil
}

// DecodeProgram unpacks a word stream produced by EncodeProgram.
func DecodeProgram(words []uint64) ([]Inst, error) {
	var out []Inst
	for i := 0; i < len(words); {
		in, n, err := DecodeWord(words[i:])
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i, err)
		}
		out = append(out, in)
		i += n
	}
	return out, nil
}
