package isa

// FUKind classifies functional units following Table 1 of the paper.
type FUKind uint8

// Functional-unit kinds. The counts and latencies the paper attaches to each
// kind live in the simulator configuration; here we only record which kind an
// opcode needs.
const (
	FUIntALU  FUKind = iota // "Simple Integer": 3 units, latency 1
	FUIntMul                // "Complex Integer": 2 units, multiply latency 9
	FUIntDiv                //   (same 2 units), divide latency 67, unpipelined
	FUEffAddr               // "Effective Address": 3 units, latency 1
	FUFPALU                 // "Simple FP": 3 units, latency 4
	FUFPMul                 // "FP Multiplication": 2 units, latency 4
	FUFPDiv                 // "FP Divide and SQR": 2 units, latency 16, unpipelined
	NumFUKinds
)

// String names the unit kind.
func (k FUKind) String() string {
	switch k {
	case FUIntALU:
		return "int-alu"
	case FUIntMul:
		return "int-mul"
	case FUIntDiv:
		return "int-div"
	case FUEffAddr:
		return "eff-addr"
	case FUFPALU:
		return "fp-alu"
	case FUFPMul:
		return "fp-mul"
	case FUFPDiv:
		return "fp-div"
	default:
		return "fu?"
	}
}

// Opcode enumerates every operation in the ISA.
type Opcode uint8

// The opcode set. Arithmetic follows Alpha conventions: conditional branches
// test one register against zero, compares produce 0/1 in a register.
const (
	NOP Opcode = iota

	// Integer ALU, register forms.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	CMPEQ
	CMPLT
	CMPLE

	// Integer ALU, immediate forms.
	ADDI
	SUBI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	CMPEQI
	CMPLTI
	CMPLEI
	LDI // Dst = Imm

	// Complex integer.
	MUL
	DIV // signed divide; division by zero yields 0 (defined, no traps)
	REM // signed remainder; same latency/unit as DIV

	// Memory.
	LDQ // integer load
	STQ // integer store
	LDT // FP load
	STT // FP store

	// Simple FP.
	FADD
	FSUB
	FCMPEQ // Dst(fp) = 1.0 if Src1 == Src2 else 0.0
	FCMPLT
	FCMPLE
	CVTIF // int → fp: Dst(fp) = float(Src1(int))
	FCVTI // fp → int: Dst(int) = trunc(Src1(fp))

	// FP multiply.
	FMUL

	// FP divide / square root.
	FDIV  // division by zero yields 0 (defined, no traps)
	FSQRT // of a negative operand yields 0

	// Control flow. Conditional branches test an integer register.
	BEQ
	BNE
	BLT
	BLE
	BGT
	BGE
	// FP conditional branches test an FP register against 0.0 and resolve
	// on a simple-FP unit.
	FBEQ
	FBNE
	// Unconditional.
	BR
	BSR // Dst = return PC; jump to Target
	JSR // Dst = return PC; jump to Src1 (indirect)
	RET // jump to Src1 (indirect)

	HALT // stops the functional emulator; never reaches the pipeline

	numOpcodes
)

// OpInfo describes an opcode's operand signature and execution resource.
type OpInfo struct {
	Name      string
	Kind      FUKind
	Latency   int  // execution latency in cycles (loads: cache adds more)
	Pipelined bool // false for the dividers, which occupy their unit

	DstClass  RegClass
	Src1Class RegClass
	Src2Class RegClass
	HasImm    bool

	IsLoad     bool
	IsStore    bool
	IsBranch   bool
	IsUncond   bool // always-taken control flow
	IsIndirect bool // target comes from a register
}

// opTable is indexed by Opcode.
var opTable = [numOpcodes]OpInfo{
	NOP: {Name: "nop", Kind: FUIntALU, Latency: 1, Pipelined: true},

	ADD:   intALU3("add"),
	SUB:   intALU3("sub"),
	AND:   intALU3("and"),
	OR:    intALU3("or"),
	XOR:   intALU3("xor"),
	SLL:   intALU3("sll"),
	SRL:   intALU3("srl"),
	SRA:   intALU3("sra"),
	CMPEQ: intALU3("cmpeq"),
	CMPLT: intALU3("cmplt"),
	CMPLE: intALU3("cmple"),

	ADDI:   intALUImm("addi"),
	SUBI:   intALUImm("subi"),
	ANDI:   intALUImm("andi"),
	ORI:    intALUImm("ori"),
	XORI:   intALUImm("xori"),
	SLLI:   intALUImm("slli"),
	SRLI:   intALUImm("srli"),
	SRAI:   intALUImm("srai"),
	CMPEQI: intALUImm("cmpeqi"),
	CMPLTI: intALUImm("cmplti"),
	CMPLEI: intALUImm("cmplei"),
	LDI: {Name: "ldi", Kind: FUIntALU, Latency: 1, Pipelined: true,
		DstClass: RegInt, HasImm: true},

	MUL: {Name: "mul", Kind: FUIntMul, Latency: 9, Pipelined: true,
		DstClass: RegInt, Src1Class: RegInt, Src2Class: RegInt},
	DIV: {Name: "div", Kind: FUIntDiv, Latency: 67, Pipelined: false,
		DstClass: RegInt, Src1Class: RegInt, Src2Class: RegInt},
	REM: {Name: "rem", Kind: FUIntDiv, Latency: 67, Pipelined: false,
		DstClass: RegInt, Src1Class: RegInt, Src2Class: RegInt},

	LDQ: {Name: "ldq", Kind: FUEffAddr, Latency: 1, Pipelined: true,
		DstClass: RegInt, Src1Class: RegInt, HasImm: true, IsLoad: true},
	STQ: {Name: "stq", Kind: FUEffAddr, Latency: 1, Pipelined: true,
		Src1Class: RegInt, Src2Class: RegInt, HasImm: true, IsStore: true},
	LDT: {Name: "ldt", Kind: FUEffAddr, Latency: 1, Pipelined: true,
		DstClass: RegFP, Src1Class: RegInt, HasImm: true, IsLoad: true},
	STT: {Name: "stt", Kind: FUEffAddr, Latency: 1, Pipelined: true,
		Src1Class: RegInt, Src2Class: RegFP, HasImm: true, IsStore: true},

	FADD:   fpALU3("fadd"),
	FSUB:   fpALU3("fsub"),
	FCMPEQ: fpALU3("fcmpeq"),
	FCMPLT: fpALU3("fcmplt"),
	FCMPLE: fpALU3("fcmple"),
	CVTIF: {Name: "cvtif", Kind: FUFPALU, Latency: 4, Pipelined: true,
		DstClass: RegFP, Src1Class: RegInt},
	FCVTI: {Name: "fcvti", Kind: FUFPALU, Latency: 4, Pipelined: true,
		DstClass: RegInt, Src1Class: RegFP},

	FMUL: {Name: "fmul", Kind: FUFPMul, Latency: 4, Pipelined: true,
		DstClass: RegFP, Src1Class: RegFP, Src2Class: RegFP},

	FDIV: {Name: "fdiv", Kind: FUFPDiv, Latency: 16, Pipelined: false,
		DstClass: RegFP, Src1Class: RegFP, Src2Class: RegFP},
	FSQRT: {Name: "fsqrt", Kind: FUFPDiv, Latency: 16, Pipelined: false,
		DstClass: RegFP, Src1Class: RegFP},

	BEQ: condBr("beq"),
	BNE: condBr("bne"),
	BLT: condBr("blt"),
	BLE: condBr("ble"),
	BGT: condBr("bgt"),
	BGE: condBr("bge"),
	FBEQ: {Name: "fbeq", Kind: FUFPALU, Latency: 4, Pipelined: true,
		Src1Class: RegFP, IsBranch: true},
	FBNE: {Name: "fbne", Kind: FUFPALU, Latency: 4, Pipelined: true,
		Src1Class: RegFP, IsBranch: true},

	BR: {Name: "br", Kind: FUIntALU, Latency: 1, Pipelined: true,
		IsBranch: true, IsUncond: true},
	BSR: {Name: "bsr", Kind: FUIntALU, Latency: 1, Pipelined: true,
		DstClass: RegInt, IsBranch: true, IsUncond: true},
	JSR: {Name: "jsr", Kind: FUIntALU, Latency: 1, Pipelined: true,
		DstClass: RegInt, Src1Class: RegInt, IsBranch: true, IsUncond: true, IsIndirect: true},
	RET: {Name: "ret", Kind: FUIntALU, Latency: 1, Pipelined: true,
		Src1Class: RegInt, IsBranch: true, IsUncond: true, IsIndirect: true},

	HALT: {Name: "halt", Kind: FUIntALU, Latency: 1, Pipelined: true},
}

func intALU3(name string) OpInfo {
	return OpInfo{Name: name, Kind: FUIntALU, Latency: 1, Pipelined: true,
		DstClass: RegInt, Src1Class: RegInt, Src2Class: RegInt}
}

func intALUImm(name string) OpInfo {
	return OpInfo{Name: name, Kind: FUIntALU, Latency: 1, Pipelined: true,
		DstClass: RegInt, Src1Class: RegInt, HasImm: true}
}

func fpALU3(name string) OpInfo {
	return OpInfo{Name: name, Kind: FUFPALU, Latency: 4, Pipelined: true,
		DstClass: RegFP, Src1Class: RegFP, Src2Class: RegFP}
}

func condBr(name string) OpInfo {
	return OpInfo{Name: name, Kind: FUIntALU, Latency: 1, Pipelined: true,
		Src1Class: RegInt, IsBranch: true}
}

// Info returns the opcode's description. Unknown opcodes return a zero
// OpInfo whose Name is empty.
func (op Opcode) Info() OpInfo {
	if int(op) >= len(opTable) {
		return OpInfo{}
	}
	return opTable[op]
}

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	info := op.Info()
	if info.Name == "" {
		return "op?"
	}
	return info.Name
}

// Opcodes returns every defined opcode except the internal bound marker.
// The order is stable. Generators and the assembler use this to build
// lookup tables.
func Opcodes() []Opcode {
	out := make([]Opcode, 0, int(numOpcodes))
	for op := Opcode(0); op < numOpcodes; op++ {
		out = append(out, op)
	}
	return out
}

// ByName resolves an assembler mnemonic to its opcode.
func ByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[opTable[op].Name] = op
	}
	delete(m, "")
	return m
}()
