package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{IntReg(0), "r0"},
		{IntReg(31), "r31"},
		{FPReg(12), "f12"},
		{NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegValid(t *testing.T) {
	if !IntReg(0).Valid() || !IntReg(31).Valid() || !FPReg(31).Valid() {
		t.Error("in-range registers must be valid")
	}
	if (Reg{Class: RegInt, Index: 32}).Valid() {
		t.Error("r32 must be invalid")
	}
	if NoReg.Valid() {
		t.Error("NoReg must be invalid")
	}
}

func TestZeroRegs(t *testing.T) {
	if !IntReg(31).IsZero() || !FPReg(31).IsZero() {
		t.Error("r31 and f31 are the hardwired zeros")
	}
	if IntReg(30).IsZero() || NoReg.IsZero() {
		t.Error("only index 31 is zero")
	}
}

func TestHasDst(t *testing.T) {
	add := Inst{Op: ADD, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)}
	if !add.HasDst() {
		t.Error("add r1 has a destination")
	}
	addZero := Inst{Op: ADD, Dst: IntReg(31), Src1: IntReg(2), Src2: IntReg(3)}
	if addZero.HasDst() {
		t.Error("writes to r31 allocate nothing")
	}
	st := Inst{Op: STQ, Src1: IntReg(2), Src2: IntReg(3)}
	if st.HasDst() {
		t.Error("stores have no destination")
	}
}

func TestEveryOpcodeHasInfo(t *testing.T) {
	for _, op := range Opcodes() {
		info := op.Info()
		if info.Name == "" {
			t.Fatalf("opcode %d has no table entry", op)
		}
		if info.Latency <= 0 {
			t.Errorf("%s: latency must be positive, got %d", info.Name, info.Latency)
		}
		if info.Kind >= NumFUKinds {
			t.Errorf("%s: bad FU kind %d", info.Name, info.Kind)
		}
		back, ok := ByName(info.Name)
		if !ok || back != op {
			t.Errorf("ByName(%q) = %v,%v; want %v", info.Name, back, ok, op)
		}
	}
}

func TestTable1Latencies(t *testing.T) {
	// The paper's Table 1 pins these down; a change here silently changes
	// every experiment, so lock them in.
	want := map[Opcode]int{
		ADD: 1, MUL: 9, DIV: 67, LDQ: 1, FADD: 4, FMUL: 4, FDIV: 16, FSQRT: 16,
	}
	for op, lat := range want {
		if got := op.Info().Latency; got != lat {
			t.Errorf("%s latency = %d, want %d", op, got, lat)
		}
	}
	for _, op := range []Opcode{DIV, REM, FDIV, FSQRT} {
		if op.Info().Pipelined {
			t.Errorf("%s must be unpipelined", op)
		}
	}
}

func TestOpClassFlags(t *testing.T) {
	if !LDQ.Info().IsLoad || !LDT.Info().IsLoad {
		t.Error("ldq/ldt are loads")
	}
	if !STQ.Info().IsStore || !STT.Info().IsStore {
		t.Error("stq/stt are stores")
	}
	for _, op := range []Opcode{BEQ, BNE, BLT, BLE, BGT, BGE, FBEQ, FBNE, BR, BSR, JSR, RET} {
		if !op.Info().IsBranch {
			t.Errorf("%s is a branch", op)
		}
	}
	for _, op := range []Opcode{BR, BSR, JSR, RET} {
		if !op.Info().IsUncond {
			t.Errorf("%s is unconditional", op)
		}
	}
	for _, op := range []Opcode{JSR, RET} {
		if !op.Info().IsIndirect {
			t.Errorf("%s is indirect", op)
		}
	}
	if BEQ.Info().IsIndirect || BR.Info().IsIndirect {
		t.Error("direct branches are not indirect")
	}
}

func TestValidate(t *testing.T) {
	good := []Inst{
		{Op: ADD, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)},
		{Op: ADDI, Dst: IntReg(1), Src1: IntReg(2), Imm: 5},
		{Op: LDQ, Dst: IntReg(1), Src1: IntReg(2), Imm: 8},
		{Op: STT, Src1: IntReg(2), Src2: FPReg(3), Imm: -8},
		{Op: BEQ, Src1: IntReg(4), Target: 7},
		{Op: BR, Target: 0},
		{Op: RET, Src1: IntReg(26)},
		{Op: FCVTI, Dst: IntReg(3), Src1: FPReg(1)},
		{Op: NOP},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", in, err)
		}
	}
	bad := []Inst{
		{Op: ADD, Dst: FPReg(1), Src1: IntReg(2), Src2: IntReg(3)},                      // wrong dst file
		{Op: ADD, Dst: IntReg(1), Src1: IntReg(2)},                                      // missing src2
		{Op: FADD, Dst: FPReg(1), Src1: FPReg(2), Src2: IntReg(3)},                      // wrong src file
		{Op: BEQ, Src1: IntReg(4), Target: -1},                                          // unresolved target
		{Op: NOP, Dst: IntReg(1)},                                                       // spurious operand
		{Op: Opcode(200), Dst: IntReg(1)},                                               // unknown op
		{Op: ADD, Dst: Reg{Class: RegInt, Index: 40}, Src1: IntReg(0), Src2: IntReg(0)}, // out of range
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%v: expected validation error", in)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Dst: IntReg(1), Src1: IntReg(2), Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: LDI, Dst: IntReg(9), Imm: 100}, "ldi r9, 100"},
		{Inst{Op: LDQ, Dst: IntReg(1), Src1: IntReg(2), Imm: 16}, "ldq r1, 16(r2)"},
		{Inst{Op: STT, Src1: IntReg(5), Src2: FPReg(6), Imm: 0}, "stt 0(r5), f6"},
		{Inst{Op: BNE, Src1: IntReg(3), Target: 12}, "bne r3, @12"},
		{Inst{Op: BR, Target: 3}, "br @3"},
		{Inst{Op: BSR, Dst: IntReg(26), Target: 40}, "bsr r26, @40"},
		{Inst{Op: RET, Src1: IntReg(26)}, "ret r26"},
		{Inst{Op: JSR, Dst: IntReg(26), Src1: IntReg(27)}, "jsr r26, r27"},
		{Inst{Op: FCVTI, Dst: IntReg(3), Src1: FPReg(1)}, "fcvti r3, f1"},
		{Inst{Op: NOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSources(t *testing.T) {
	st := Inst{Op: STQ, Src1: IntReg(2), Src2: IntReg(3), Imm: 0}
	if n := len(st.Sources()); n != 2 {
		t.Errorf("store has 2 sources, got %d", n)
	}
	ldi := Inst{Op: LDI, Dst: IntReg(1), Imm: 3}
	if n := len(ldi.Sources()); n != 0 {
		t.Errorf("ldi has 0 sources, got %d", n)
	}
}

// Property: String never panics and is non-empty for arbitrary register
// values, and Validate never panics for arbitrary instructions.
func TestQuickStringValidateTotal(t *testing.T) {
	f := func(op uint8, dc, s1c, s2c uint8, di, s1i, s2i uint8, imm int64, tgt int16) bool {
		in := Inst{
			Op:     Opcode(op % uint8(numOpcodes)),
			Dst:    Reg{Class: RegClass(dc % 3), Index: di % 40},
			Src1:   Reg{Class: RegClass(s1c % 3), Index: s1i % 40},
			Src2:   Reg{Class: RegClass(s2c % 3), Index: s2i % 40},
			Imm:    imm,
			Target: int(tgt),
		}
		_ = in.Validate()
		return in.String() != "" && !strings.Contains(in.Op.String(), "\x00")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
