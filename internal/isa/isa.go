// Package isa defines the mini Alpha-like instruction set simulated by this
// repository: 32 integer and 32 floating-point logical registers (the last of
// each hardwired to zero, as on the Alpha), a load/store architecture with
// 8-byte memory words, and an opcode set whose functional-unit classes and
// latencies follow Table 1 of González, González and Valero, "Virtual-Physical
// Registers" (HPCA 1998).
//
// Instructions are kept in a decoded structural form: the simulator never
// encodes to or decodes from machine words, so immediates and branch targets
// are plain integers.
package isa

import "fmt"

// Architectural constants. Each register file has NumLogical registers and
// the highest-numbered register of each file reads as zero and discards
// writes, mirroring the Alpha's r31/f31.
const (
	NumLogical = 32 // logical registers per file (int and FP alike)
	ZeroReg    = 31 // index of the hardwired-zero register in both files

	// WordSize is the size in bytes of every memory access. The ISA has
	// only 8-byte aligned loads and stores, which keeps memory
	// disambiguation an exact address-equality test.
	WordSize = 8
)

// RegClass identifies which register file (if any) a register belongs to.
type RegClass uint8

// Register file classes.
const (
	RegNone RegClass = iota // no register (absent operand)
	RegInt                  // integer file
	RegFP                   // floating-point file
)

// String returns a short human-readable name for the class.
func (c RegClass) String() string {
	switch c {
	case RegNone:
		return "none"
	case RegInt:
		return "int"
	case RegFP:
		return "fp"
	default:
		return fmt.Sprintf("RegClass(%d)", uint8(c))
	}
}

// Reg names one architectural (logical) register, or no register at all when
// Class is RegNone. The zero value is "no register".
type Reg struct {
	Class RegClass
	Index uint8
}

// Convenience constructors for the two files.

// IntReg returns the integer register with the given index.
func IntReg(i int) Reg { return Reg{Class: RegInt, Index: uint8(i)} }

// FPReg returns the floating-point register with the given index.
func FPReg(i int) Reg { return Reg{Class: RegFP, Index: uint8(i)} }

// NoReg is the absent operand.
var NoReg = Reg{}

// Valid reports whether r names an actual register in range.
func (r Reg) Valid() bool {
	return (r.Class == RegInt || r.Class == RegFP) && r.Index < NumLogical
}

// IsZero reports whether r is one of the hardwired-zero registers.
func (r Reg) IsZero() bool {
	return (r.Class == RegInt || r.Class == RegFP) && r.Index == ZeroReg
}

// String renders the register in assembler syntax (r7, f12, or "-" for none).
func (r Reg) String() string {
	switch r.Class {
	case RegInt:
		return fmt.Sprintf("r%d", r.Index)
	case RegFP:
		return fmt.Sprintf("f%d", r.Index)
	default:
		return "-"
	}
}

// Inst is one decoded instruction. Interpretation of the operand fields
// depends on the opcode:
//
//   - ALU register forms: Dst = Src1 op Src2
//   - ALU immediate forms: Dst = Src1 op Imm
//   - Loads:  Dst = MEM[Src1 + Imm]
//   - Stores: MEM[Src1 + Imm] = Src2
//   - Conditional branches: test Src1 against zero; Target is the taken PC
//   - BR/BSR: unconditional; BSR writes the return PC to Dst
//   - JSR: jump to Src1, return PC to Dst; RET: jump to Src1
//
// PCs are instruction indices, not byte addresses.
type Inst struct {
	Op     Opcode
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int // taken-path PC for direct branches; unused otherwise
}

// HasDst reports whether the instruction writes an architectural register
// that actually needs renaming (writes to the hardwired zero registers are
// discarded and allocate nothing).
func (i Inst) HasDst() bool {
	return i.Dst.Class != RegNone && !i.Dst.IsZero()
}

// Sources returns the instruction's register source operands, skipping
// absent ones. Zero registers are still reported (they read as zero but are
// renamed like any other source; schemes may special-case them).
func (i Inst) Sources() []Reg {
	var out []Reg
	if i.Src1.Class != RegNone {
		out = append(out, i.Src1)
	}
	if i.Src2.Class != RegNone {
		out = append(out, i.Src2)
	}
	return out
}

// Validate checks structural well-formedness of the instruction against its
// opcode's operand signature. The assembler and generators call this so the
// pipeline can assume instructions are well-formed.
func (i Inst) Validate() error {
	info := i.Op.Info()
	if info.Name == "" {
		return fmt.Errorf("isa: unknown opcode %d", i.Op)
	}
	check := func(got Reg, want RegClass, what string) error {
		if want == RegNone {
			if got.Class != RegNone {
				return fmt.Errorf("isa: %s: unexpected %s operand %s", info.Name, what, got)
			}
			return nil
		}
		if got.Class != want {
			return fmt.Errorf("isa: %s: %s operand must be %s register, got %s", info.Name, what, want, got)
		}
		if !got.Valid() {
			return fmt.Errorf("isa: %s: %s operand %s out of range", info.Name, what, got)
		}
		return nil
	}
	if err := check(i.Dst, info.DstClass, "destination"); err != nil {
		return err
	}
	if err := check(i.Src1, info.Src1Class, "first source"); err != nil {
		return err
	}
	if err := check(i.Src2, info.Src2Class, "second source"); err != nil {
		return err
	}
	if info.IsBranch && !info.IsIndirect && i.Target < 0 {
		return fmt.Errorf("isa: %s: direct branch needs a resolved target", info.Name)
	}
	return nil
}

// String disassembles the instruction.
func (i Inst) String() string {
	info := i.Op.Info()
	switch {
	case info.IsLoad:
		return fmt.Sprintf("%s %s, %d(%s)", info.Name, i.Dst, i.Imm, i.Src1)
	case info.IsStore:
		return fmt.Sprintf("%s %d(%s), %s", info.Name, i.Imm, i.Src1, i.Src2)
	case info.IsBranch && info.IsIndirect:
		if i.Dst.Class != RegNone {
			return fmt.Sprintf("%s %s, %s", info.Name, i.Dst, i.Src1)
		}
		return fmt.Sprintf("%s %s", info.Name, i.Src1)
	case info.IsBranch && info.IsUncond:
		if i.Dst.Class != RegNone {
			return fmt.Sprintf("%s %s, @%d", info.Name, i.Dst, i.Target)
		}
		return fmt.Sprintf("%s @%d", info.Name, i.Target)
	case info.IsBranch:
		return fmt.Sprintf("%s %s, @%d", info.Name, i.Src1, i.Target)
	case info.HasImm && info.Src1Class != RegNone:
		return fmt.Sprintf("%s %s, %s, %d", info.Name, i.Dst, i.Src1, i.Imm)
	case info.HasImm:
		return fmt.Sprintf("%s %s, %d", info.Name, i.Dst, i.Imm)
	case info.Src2Class != RegNone:
		return fmt.Sprintf("%s %s, %s, %s", info.Name, i.Dst, i.Src1, i.Src2)
	case info.Src1Class != RegNone && info.DstClass != RegNone:
		return fmt.Sprintf("%s %s, %s", info.Name, i.Dst, i.Src1)
	default:
		return info.Name
	}
}
