package isa

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBasics(t *testing.T) {
	cases := []Inst{
		{Op: ADD, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3), Target: -1},
		{Op: ADDI, Dst: IntReg(4), Src1: IntReg(5), Imm: -9, Target: -1},
		{Op: LDI, Dst: IntReg(6), Imm: 1 << 20, Target: -1},
		{Op: LDQ, Dst: IntReg(7), Src1: IntReg(8), Imm: 4088, Target: -1},
		{Op: STT, Src1: IntReg(9), Src2: FPReg(10), Imm: -8, Target: -1},
		{Op: FDIV, Dst: FPReg(1), Src1: FPReg(2), Src2: FPReg(3), Target: -1},
		{Op: NOP, Target: -1},
		{Op: RET, Src1: IntReg(26), Target: -1},
	}
	for _, in := range cases {
		words, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if len(words) != 1 {
			t.Errorf("%v: expected single-word encoding, got %d words", in, len(words))
		}
		got, n, err := DecodeWord(words)
		if err != nil || n != len(words) {
			t.Fatalf("%v: decode: %v (n=%d)", in, err, n)
		}
		if got != in {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
		}
	}
}

func TestEncodeExtensionWord(t *testing.T) {
	// Large immediates and branch targets need the extension word.
	cases := []Inst{
		{Op: LDI, Dst: IntReg(1), Imm: math.MaxInt64, Target: -1},
		{Op: LDI, Dst: IntReg(1), Imm: math.MinInt64, Target: -1},
		{Op: LDI, Dst: IntReg(1), Imm: 1 << 30, Target: -1},
		{Op: BEQ, Src1: IntReg(2), Target: 123456},
		{Op: BR, Target: 0},
		{Op: BSR, Dst: IntReg(26), Target: 7},
	}
	for _, in := range cases {
		words, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if len(words) != 2 {
			t.Fatalf("%v: expected extension word, got %d words", in, len(words))
		}
		got, n, err := DecodeWord(words)
		if err != nil || n != 2 {
			t.Fatalf("%v: decode: %v (n=%d)", in, err, n)
		}
		if got != in {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
		}
		// Truncated stream reports the need explicitly.
		if _, _, err := DecodeWord(words[:1]); !errors.Is(err, ErrNeedsExtension) {
			t.Errorf("%v: truncation should report ErrNeedsExtension, got %v", in, err)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(Inst{Op: ADD, Dst: FPReg(1), Src1: IntReg(2), Src2: IntReg(3)}); err == nil {
		t.Error("invalid instruction must not encode")
	}
	if _, _, err := DecodeWord([]uint64{250}); err == nil {
		t.Error("unknown opcode must not decode")
	}
	if _, _, err := DecodeWord(nil); err == nil {
		t.Error("empty stream must not decode")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	prog := []Inst{
		{Op: LDI, Dst: IntReg(1), Imm: 10, Target: -1},
		{Op: SUBI, Dst: IntReg(1), Src1: IntReg(1), Imm: 1, Target: -1},
		{Op: BNE, Src1: IntReg(1), Target: 1},
		{Op: HALT, Target: -1},
	}
	words, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	// One extension word for the branch.
	if len(words) != len(prog)+1 {
		t.Errorf("encoded %d words, want %d", len(words), len(prog)+1)
	}
	got, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instructions", len(got))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Errorf("inst %d: %+v != %+v", i, got[i], prog[i])
		}
	}
	// Corrupt stream fails loudly.
	words[0] = 255
	if _, err := DecodeProgram(words); err == nil {
		t.Error("corrupt program must not decode")
	}
}

// Property: every valid instruction the generator can produce survives the
// encode/decode round trip exactly.
func TestQuickEncodeRoundTrip(t *testing.T) {
	ops := []Opcode{ADD, SUB, ADDI, LDI, LDQ, STQ, LDT, STT, FADD, FMUL, FDIV, MUL, DIV, BEQ, BNE, BR, BSR, JSR, RET, NOP, CVTIF, FCVTI}
	f := func(opSel, d, s1, s2 uint8, imm int64, tgt uint16) bool {
		op := ops[int(opSel)%len(ops)]
		info := op.Info()
		in := Inst{Op: op, Target: -1}
		if info.DstClass != RegNone {
			in.Dst = Reg{Class: info.DstClass, Index: d % 32}
		}
		if info.Src1Class != RegNone {
			in.Src1 = Reg{Class: info.Src1Class, Index: s1 % 32}
		}
		if info.Src2Class != RegNone {
			in.Src2 = Reg{Class: info.Src2Class, Index: s2 % 32}
		}
		if info.HasImm {
			in.Imm = imm
		}
		if info.IsBranch && !info.IsIndirect {
			in.Target = int(tgt)
		}
		words, err := Encode(in)
		if err != nil {
			return false
		}
		got, n, err := DecodeWord(words)
		return err == nil && n == len(words) && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
