package isa

import "fmt"

// DefaultDataBase is the virtual address where an assembled program's data
// section is placed. Code addresses (PCs) are a separate instruction-index
// space, so data may start low; a non-zero base keeps address 0 out of normal
// traffic, which makes stray-pointer bugs in workloads easy to spot.
const DefaultDataBase = 0x10000

// Program is an executable unit: decoded instructions plus an initial data
// image. It is produced by the assembler (internal/asm) or built directly by
// generators, and consumed by the functional emulator.
type Program struct {
	Insts    []Inst
	Data     []byte           // initial bytes at DataBase
	DataBase uint64           // virtual address of Data[0]
	Symbols  map[string]int64 // label → PC (text) or address (data)
	EntryPC  int              // first instruction to execute
}

// Validate checks every instruction and that branch targets are in range.
func (p *Program) Validate() error {
	for pc, in := range p.Insts {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("pc %d: %w", pc, err)
		}
		info := in.Op.Info()
		if info.IsBranch && !info.IsIndirect {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("pc %d: branch target %d out of range [0,%d)", pc, in.Target, len(p.Insts))
			}
		}
	}
	if p.EntryPC < 0 || p.EntryPC >= len(p.Insts) {
		return fmt.Errorf("entry pc %d out of range [0,%d)", p.EntryPC, len(p.Insts))
	}
	return nil
}

// Symbol returns the value of a label defined by the program.
func (p *Program) Symbol(name string) (int64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}
