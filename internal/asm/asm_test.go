package asm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasicBlock(t *testing.T) {
	p, err := Assemble("t", `
        ; a tiny loop
        ldi   r1, 4
loop:   addi  r2, r2, 1
        subi  r1, r1, 1
        bne   r1, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 5 {
		t.Fatalf("got %d instructions, want 5", len(p.Insts))
	}
	if p.Insts[0].Op != isa.LDI || p.Insts[0].Imm != 4 {
		t.Errorf("inst 0 = %v", p.Insts[0])
	}
	bne := p.Insts[3]
	if bne.Op != isa.BNE || bne.Target != 1 {
		t.Errorf("bne = %v, want target 1", bne)
	}
	if pc, ok := p.Symbol("loop"); !ok || pc != 1 {
		t.Errorf("Symbol(loop) = %d,%v", pc, ok)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	p, err := Assemble("t", `
        ldq r1, 8(r2)
        stq -16(r3), r4
        ldt f1, (r5)
        stt 0(r6), f7
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ld := p.Insts[0]
	if ld.Dst != isa.IntReg(1) || ld.Src1 != isa.IntReg(2) || ld.Imm != 8 {
		t.Errorf("ldq = %+v", ld)
	}
	st := p.Insts[1]
	if st.Src1 != isa.IntReg(3) || st.Src2 != isa.IntReg(4) || st.Imm != -16 {
		t.Errorf("stq = %+v", st)
	}
	if p.Insts[2].Imm != 0 {
		t.Errorf("empty offset should be 0, got %d", p.Insts[2].Imm)
	}
	if p.Insts[3].Src2 != isa.FPReg(7) {
		t.Errorf("stt src = %v", p.Insts[3].Src2)
	}
}

func TestAssembleData(t *testing.T) {
	p, err := Assemble("t", `
        .data
tbl:    .word 1, 0x10, -2
vec:    .double 1.5
buf:    .space 20
end:    .word tbl
        .text
        ldi r1, tbl
        ldi r2, vec+8
        ldi r3, end-8
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	base := int64(isa.DefaultDataBase)
	if got, _ := p.Symbol("tbl"); got != base {
		t.Errorf("tbl = %#x, want %#x", got, base)
	}
	if got, _ := p.Symbol("vec"); got != base+24 {
		t.Errorf("vec = %#x, want %#x", got, base+24)
	}
	// .space 20 rounds to 24 bytes.
	if got, _ := p.Symbol("end"); got != base+24+8+24 {
		t.Errorf("end = %#x, want %#x", got, base+56)
	}
	if len(p.Data) != 64 {
		t.Fatalf("data length = %d, want 64", len(p.Data))
	}
	if v := binary.LittleEndian.Uint64(p.Data[8:]); v != 0x10 {
		t.Errorf("tbl[1] = %#x", v)
	}
	if v := int64(binary.LittleEndian.Uint64(p.Data[16:])); v != -2 {
		t.Errorf("tbl[2] = %d", v)
	}
	if f := math.Float64frombits(binary.LittleEndian.Uint64(p.Data[24:])); f != 1.5 {
		t.Errorf("vec[0] = %g", f)
	}
	if v := int64(binary.LittleEndian.Uint64(p.Data[56:])); v != base {
		t.Errorf("end word = %#x, want tbl address %#x", v, base)
	}
	if p.Insts[1].Imm != base+24+8 {
		t.Errorf("vec+8 = %#x", p.Insts[1].Imm)
	}
	if p.Insts[2].Imm != base+48 {
		t.Errorf("end-8 = %#x", p.Insts[2].Imm)
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	p, err := Assemble("t", `
        mov  r1, r2
        fmov f1, f2
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mov := p.Insts[0]
	if mov.Op != isa.OR || mov.Src2 != isa.IntReg(31) {
		t.Errorf("mov = %v", mov)
	}
	fmov := p.Insts[1]
	if fmov.Op != isa.FADD || fmov.Src2 != isa.FPReg(31) {
		t.Errorf("fmov = %v", fmov)
	}
}

func TestAssembleControlFlowForms(t *testing.T) {
	p, err := Assemble("t", `
start:  br   next
next:   bsr  r26, sub
        jsr  r25, r9
        ret  r26
sub:    ret  r26
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != 1 {
		t.Errorf("br target = %d", p.Insts[0].Target)
	}
	bsr := p.Insts[1]
	if bsr.Dst != isa.IntReg(26) || bsr.Target != 4 {
		t.Errorf("bsr = %+v", bsr)
	}
	jsr := p.Insts[2]
	if jsr.Dst != isa.IntReg(25) || jsr.Src1 != isa.IntReg(9) {
		t.Errorf("jsr = %+v", jsr)
	}
}

func TestAssembleFPForms(t *testing.T) {
	p, err := Assemble("t", `
        fadd  f1, f2, f3
        fdiv  f4, f5, f6
        fsqrt f7, f8
        cvtif f9, r1
        fcvti r2, f9
        fbne  f1, 0
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Src1 != isa.FPReg(8) || p.Insts[2].Dst != isa.FPReg(7) {
		t.Errorf("fsqrt = %+v", p.Insts[2])
	}
	if p.Insts[3].Dst != isa.FPReg(9) || p.Insts[3].Src1 != isa.IntReg(1) {
		t.Errorf("cvtif = %+v", p.Insts[3])
	}
	if p.Insts[5].Target != 0 {
		t.Errorf("fbne target = %d", p.Insts[5].Target)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frob r1, r2", "unknown mnemonic"},
		{"add r1, r2", "takes 3 operand"},
		{"add r1, r2, f3", "wrong file"},
		{"add r1, r2, r32", "bad register"},
		{"beq r1, nowhere\nhalt", "undefined label"},
		{"ldq r1, 8[r2]", "bad memory operand"},
		{".word 1", "outside .data"},
		{".data\n.space -1", "non-negative"},
		{"x: halt\nx: halt", "redefined"},
		{".quux 1", "unknown directive"},
		{"9bad: halt", "bad label"},
		{"ldi r1, tbl*2\nhalt", "bad expression"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("source %q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestAssembleReportsAllErrors(t *testing.T) {
	_, err := Assemble("t", "frob r1\nblargh r2\nhalt")
	if err == nil {
		t.Fatal("want errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "t:1") || !strings.Contains(msg, "t:2") {
		t.Errorf("want both line numbers reported, got %q", msg)
	}
}

func TestAssembleStoreOperandOrderMatchesPaper(t *testing.T) {
	// The paper's figure 3 writes "store 0(r2),r3": address first.
	p, err := Assemble("t", "stq 0(r2), r3\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Src1 != isa.IntReg(2) || p.Insts[0].Src2 != isa.IntReg(3) {
		t.Errorf("stq operands = %+v", p.Insts[0])
	}
}

func TestRoundTripThroughString(t *testing.T) {
	// Disassembling and re-assembling ALU/memory forms must preserve the
	// instruction. (Branches print resolved targets as @N, which the
	// assembler does not consume, so they are exercised separately above.)
	src := `
        add r1, r2, r3
        addi r4, r5, -9
        ldi r6, 123
        ldq r7, 40(r8)
        stq 0(r9), r10
        fadd f1, f2, f3
        fcvti r11, f4
        nop
        halt
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, in := range p.Insts {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	p2, err := Assemble("t2", b.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, b.String())
	}
	for i := range p.Insts {
		if p.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v != %v", i, p.Insts[i], p2.Insts[i])
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("t", "frob r1")
}
