// Package asm implements a two-pass assembler for the mini-ISA defined in
// internal/isa. It exists so that workloads, examples and tests can be
// written as readable assembly text rather than hand-built instruction
// slices.
//
// Syntax (one statement per line, ';' or '#' start a comment):
//
//	        .data
//	table:  .word 1, 2, -3, table   ; 8-byte little-endian words
//	vec:    .double 0.5, 1.5        ; 8-byte IEEE-754 doubles
//	buf:    .space 4096             ; zeroed bytes, rounded up to 8
//	        .text
//	loop:   ldq   r1, 0(r2)         ; load:  dst, offset(base)
//	        stq   8(r2), r1         ; store: offset(base), src (paper's order)
//	        addi  r2, r2, 16
//	        bne   r3, loop
//	        halt
//
// Immediates are decimal or 0x-hex and may reference labels with an optional
// ±offset (e.g. "ldi r2, table+16"). The pseudo-instructions "mov rd, rs"
// and "fmov fd, fs" expand to or/fadd against the hardwired zero register.
package asm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble translates source text into a Program. The name is used only in
// error messages. All errors in the source are reported, joined together.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		name:    name,
		program: &isa.Program{DataBase: isa.DefaultDataBase, Symbols: map[string]int64{}},
	}
	a.firstPass(src)
	a.secondPass()
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	if err := a.program.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return a.program, nil
}

// MustAssemble is Assemble for statically known-good sources (workload
// kernels, examples); it panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type section int

const (
	inText section = iota
	inData
)

// stmt is a parsed source statement waiting for label resolution.
type stmt struct {
	line    int
	op      isa.Opcode
	operand string // raw operand text, parsed in the second pass
}

type dataItem struct {
	line   int
	kind   string // "word", "double", "space"
	fields []string
	offset int // byte offset within the data image
}

type assembler struct {
	name    string
	program *isa.Program
	errs    []error

	stmts []stmt
	data  []dataItem
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("%s:%d: %s", a.name, line, fmt.Sprintf(format, args...)))
}

// firstPass splits lines, records labels and sizes the data section.
func (a *assembler) firstPass(src string) {
	sec := inText
	dataOff := 0
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		text := raw
		if i := strings.IndexAny(text, ";#"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)

		// Leading labels (possibly several on one line).
		for {
			i := strings.Index(text, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(text[:i])
			if !isIdent(label) {
				a.errorf(line, "bad label %q", label)
				label = ""
			}
			if label != "" {
				if _, dup := a.program.Symbols[label]; dup {
					a.errorf(line, "label %q redefined", label)
				}
				switch sec {
				case inText:
					a.program.Symbols[label] = int64(len(a.stmts))
				case inData:
					a.program.Symbols[label] = int64(a.program.DataBase) + int64(dataOff)
				}
			}
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}

		mnemonic, operand, _ := strings.Cut(text, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		operand = strings.TrimSpace(operand)

		if strings.HasPrefix(mnemonic, ".") {
			switch mnemonic {
			case ".text":
				sec = inText
			case ".data":
				sec = inData
			case ".word", ".double", ".space":
				if sec != inData {
					a.errorf(line, "%s outside .data", mnemonic)
					continue
				}
				it := dataItem{line: line, kind: mnemonic[1:], offset: dataOff}
				if mnemonic == ".space" {
					n, err := strconv.Atoi(operand)
					if err != nil || n < 0 {
						a.errorf(line, ".space needs a non-negative size, got %q", operand)
						continue
					}
					dataOff += (n + isa.WordSize - 1) / isa.WordSize * isa.WordSize
					it.fields = []string{operand}
				} else {
					it.fields = splitOperands(operand)
					if len(it.fields) == 0 {
						a.errorf(line, "%s needs at least one value", mnemonic)
						continue
					}
					dataOff += isa.WordSize * len(it.fields)
				}
				a.data = append(a.data, it)
			default:
				a.errorf(line, "unknown directive %q", mnemonic)
			}
			continue
		}

		if sec != inText {
			a.errorf(line, "instruction %q inside .data", mnemonic)
			continue
		}
		op, operand2, ok := a.resolveMnemonic(line, mnemonic, operand)
		if !ok {
			continue
		}
		a.stmts = append(a.stmts, stmt{line: line, op: op, operand: operand2})
	}
	a.program.Data = make([]byte, dataOff)
}

// resolveMnemonic maps a mnemonic (or pseudo-instruction) to an opcode,
// possibly rewriting the operand text.
func (a *assembler) resolveMnemonic(line int, mnemonic, operand string) (isa.Opcode, string, bool) {
	switch mnemonic {
	case "mov": // mov rd, rs  =>  or rd, rs, r31
		return isa.OR, operand + ", r31", true
	case "fmov": // fmov fd, fs  =>  fadd fd, fs, f31
		return isa.FADD, operand + ", f31", true
	}
	op, ok := isa.ByName(mnemonic)
	if !ok {
		a.errorf(line, "unknown mnemonic %q", mnemonic)
		return 0, "", false
	}
	return op, operand, true
}

// secondPass resolves operands and emits instructions and data bytes.
func (a *assembler) secondPass() {
	for _, st := range a.stmts {
		in, err := a.parseInst(st)
		if err != nil {
			a.errorf(st.line, "%v", err)
			in = isa.Inst{Op: isa.NOP} // keep PCs stable for later errors
		}
		a.program.Insts = append(a.program.Insts, in)
	}
	for _, it := range a.data {
		switch it.kind {
		case "word":
			for k, f := range it.fields {
				v, err := a.evalExpr(f)
				if err != nil {
					a.errorf(it.line, "%v", err)
					continue
				}
				binary.LittleEndian.PutUint64(a.program.Data[it.offset+8*k:], uint64(v))
			}
		case "double":
			for k, f := range it.fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					a.errorf(it.line, "bad double %q", f)
					continue
				}
				binary.LittleEndian.PutUint64(a.program.Data[it.offset+8*k:], math.Float64bits(v))
			}
		case "space":
			// already zeroed
		}
	}
}

func (a *assembler) parseInst(st stmt) (isa.Inst, error) {
	info := st.op.Info()
	in := isa.Inst{Op: st.op, Target: -1}
	ops := splitOperands(st.operand)

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s takes %d operand(s), got %d", info.Name, n, len(ops))
		}
		return nil
	}

	switch {
	case info.IsLoad: // op rd, off(rb)
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Dst, err = parseReg(ops[0], info.DstClass); err != nil {
			return in, err
		}
		if in.Imm, in.Src1, err = a.parseMem(ops[1]); err != nil {
			return in, err
		}
		return in, nil

	case info.IsStore: // op off(rb), rsrc
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Imm, in.Src1, err = a.parseMem(ops[0]); err != nil {
			return in, err
		}
		if in.Src2, err = parseReg(ops[1], info.Src2Class); err != nil {
			return in, err
		}
		return in, nil

	case info.IsBranch && info.IsIndirect: // jsr rd, rs | ret rs
		want := 1
		if info.DstClass != isa.RegNone {
			want = 2
		}
		if err := need(want); err != nil {
			return in, err
		}
		var err error
		k := 0
		if info.DstClass != isa.RegNone {
			if in.Dst, err = parseReg(ops[0], info.DstClass); err != nil {
				return in, err
			}
			k = 1
		}
		if in.Src1, err = parseReg(ops[k], info.Src1Class); err != nil {
			return in, err
		}
		return in, nil

	case info.IsBranch && info.IsUncond: // br label | bsr rd, label
		want := 1
		if info.DstClass != isa.RegNone {
			want = 2
		}
		if err := need(want); err != nil {
			return in, err
		}
		var err error
		k := 0
		if info.DstClass != isa.RegNone {
			if in.Dst, err = parseReg(ops[0], info.DstClass); err != nil {
				return in, err
			}
			k = 1
		}
		tgt, err := a.evalExpr(ops[k])
		if err != nil {
			return in, err
		}
		in.Target = int(tgt)
		return in, nil

	case info.IsBranch: // bxx rs, label
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Src1, err = parseReg(ops[0], info.Src1Class); err != nil {
			return in, err
		}
		tgt, err := a.evalExpr(ops[1])
		if err != nil {
			return in, err
		}
		in.Target = int(tgt)
		return in, nil

	case st.op == isa.LDI: // ldi rd, imm
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Dst, err = parseReg(ops[0], info.DstClass); err != nil {
			return in, err
		}
		if in.Imm, err = a.evalExpr(ops[1]); err != nil {
			return in, err
		}
		return in, nil

	case info.HasImm: // op rd, rs, imm
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Dst, err = parseReg(ops[0], info.DstClass); err != nil {
			return in, err
		}
		if in.Src1, err = parseReg(ops[1], info.Src1Class); err != nil {
			return in, err
		}
		if in.Imm, err = a.evalExpr(ops[2]); err != nil {
			return in, err
		}
		return in, nil

	default: // register forms with 0, 1 or 2 sources
		want := 0
		if info.DstClass != isa.RegNone {
			want++
		}
		if info.Src1Class != isa.RegNone {
			want++
		}
		if info.Src2Class != isa.RegNone {
			want++
		}
		if err := need(want); err != nil {
			return in, err
		}
		var err error
		k := 0
		if info.DstClass != isa.RegNone {
			if in.Dst, err = parseReg(ops[k], info.DstClass); err != nil {
				return in, err
			}
			k++
		}
		if info.Src1Class != isa.RegNone {
			if in.Src1, err = parseReg(ops[k], info.Src1Class); err != nil {
				return in, err
			}
			k++
		}
		if info.Src2Class != isa.RegNone {
			if in.Src2, err = parseReg(ops[k], info.Src2Class); err != nil {
				return in, err
			}
		}
		return in, nil
	}
}

// parseMem parses "off(rb)" where off is an expression (possibly empty,
// meaning 0).
func (a *assembler) parseMem(s string) (int64, isa.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, isa.NoReg, fmt.Errorf("bad memory operand %q, want off(reg)", s)
	}
	offText := strings.TrimSpace(s[:open])
	var off int64
	if offText != "" {
		var err error
		if off, err = a.evalExpr(offText); err != nil {
			return 0, isa.NoReg, err
		}
	}
	base, err := parseReg(strings.TrimSpace(s[open+1:len(s)-1]), isa.RegInt)
	if err != nil {
		return 0, isa.NoReg, err
	}
	return off, base, nil
}

// evalExpr evaluates "number", "label", "label+number" or "label-number".
func (a *assembler) evalExpr(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errors.New("empty expression")
	}
	// Pure number (handles leading '-').
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	// label, label+n, label-n — find the operator after the identifier.
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			base, err := a.lookup(strings.TrimSpace(s[:i]))
			if err != nil {
				return 0, err
			}
			off, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 0, 64)
			if err != nil {
				return 0, fmt.Errorf("bad offset in expression %q", s)
			}
			if s[i] == '-' {
				off = -off
			}
			return base + off, nil
		}
	}
	return a.lookup(s)
}

func (a *assembler) lookup(label string) (int64, error) {
	if !isIdent(label) {
		return 0, fmt.Errorf("bad expression %q", label)
	}
	v, ok := a.program.Symbols[label]
	if !ok {
		return 0, fmt.Errorf("undefined label %q", label)
	}
	return v, nil
}

func parseReg(s string, want isa.RegClass) (isa.Reg, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if len(s) < 2 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	var class isa.RegClass
	switch s[0] {
	case 'r':
		class = isa.RegInt
	case 'f':
		class = isa.RegFP
	default:
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumLogical {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	if want != isa.RegNone && class != want {
		return isa.NoReg, fmt.Errorf("register %s has wrong file (want %s)", s, want)
	}
	return isa.Reg{Class: class, Index: uint8(n)}, nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
