// Package emu is the functional (architectural) emulator for the mini-ISA.
// It executes a Program sequentially, maintaining architectural register and
// memory state, and emits the committed-path trace that drives the timing
// simulator. Because each trace record carries the operand and result values
// the instruction saw architecturally, the out-of-order pipeline can use the
// emulator as a golden model: any renaming bug that routes a stale or wrong
// value to a consumer shows up as a value mismatch.
package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Machine executes one program.
type Machine struct {
	prog   *isa.Program
	pc     int
	intR   [isa.NumLogical]uint64
	fpR    [isa.NumLogical]float64
	mem    *Memory
	halted bool
	seq    int64
}

// New builds a machine with the program's data image loaded.
func New(prog *isa.Program) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: prog, pc: prog.EntryPC, mem: NewMemory()}
	if err := m.mem.LoadImage(prog.DataBase, prog.Data); err != nil {
		return nil, err
	}
	return m, nil
}

// Halted reports whether the program has executed HALT or run off the end.
func (m *Machine) Halted() bool { return m.halted }

// PC returns the next instruction index to execute.
func (m *Machine) PC() int { return m.pc }

// IntReg returns the architectural value of integer register i.
func (m *Machine) IntReg(i int) uint64 {
	if i == isa.ZeroReg {
		return 0
	}
	return m.intR[i]
}

// FPReg returns the architectural value of FP register i.
func (m *Machine) FPReg(i int) float64 {
	if i == isa.ZeroReg {
		return 0
	}
	return m.fpR[i]
}

// Memory exposes the memory image (read-only use expected).
func (m *Machine) Memory() *Memory { return m.mem }

// Step executes the next instruction and returns its trace record.
// ok=false means the machine has halted (no record produced).
func (m *Machine) Step() (rec trace.Record, ok bool, err error) {
	if m.halted {
		return trace.Record{}, false, nil
	}
	if m.pc < 0 || m.pc >= len(m.prog.Insts) {
		m.halted = true
		return trace.Record{}, false, fmt.Errorf("emu: pc %d out of range", m.pc)
	}
	in := m.prog.Insts[m.pc]
	if in.Op == isa.HALT {
		m.halted = true
		return trace.Record{}, false, nil
	}

	rec = trace.Record{
		Seq:       m.seq,
		PC:        m.pc,
		Inst:      in,
		HasValues: true,
	}

	readInt := func(r isa.Reg) uint64 { return m.IntReg(int(r.Index)) }
	readFP := func(r isa.Reg) float64 { return m.FPReg(int(r.Index)) }
	// Record source values as raw bit patterns.
	readSrcBits := func(r isa.Reg) uint64 {
		switch r.Class {
		case isa.RegInt:
			return readInt(r)
		case isa.RegFP:
			return math.Float64bits(readFP(r))
		default:
			return 0
		}
	}
	rec.Src1Val = readSrcBits(in.Src1)
	rec.Src2Val = readSrcBits(in.Src2)

	writeInt := func(r isa.Reg, v uint64) {
		rec.DstVal = v
		if r.Index != isa.ZeroReg {
			m.intR[r.Index] = v
		}
	}
	writeFP := func(r isa.Reg, v float64) {
		rec.DstVal = math.Float64bits(v)
		if r.Index != isa.ZeroReg {
			m.fpR[r.Index] = v
		}
	}

	nextPC := m.pc + 1
	info := in.Op.Info()

	switch in.Op {
	case isa.NOP:
		// nothing

	case isa.ADD:
		writeInt(in.Dst, readInt(in.Src1)+readInt(in.Src2))
	case isa.SUB:
		writeInt(in.Dst, readInt(in.Src1)-readInt(in.Src2))
	case isa.AND:
		writeInt(in.Dst, readInt(in.Src1)&readInt(in.Src2))
	case isa.OR:
		writeInt(in.Dst, readInt(in.Src1)|readInt(in.Src2))
	case isa.XOR:
		writeInt(in.Dst, readInt(in.Src1)^readInt(in.Src2))
	case isa.SLL:
		writeInt(in.Dst, readInt(in.Src1)<<(readInt(in.Src2)&63))
	case isa.SRL:
		writeInt(in.Dst, readInt(in.Src1)>>(readInt(in.Src2)&63))
	case isa.SRA:
		writeInt(in.Dst, uint64(int64(readInt(in.Src1))>>(readInt(in.Src2)&63)))
	case isa.CMPEQ:
		writeInt(in.Dst, b2i(readInt(in.Src1) == readInt(in.Src2)))
	case isa.CMPLT:
		writeInt(in.Dst, b2i(int64(readInt(in.Src1)) < int64(readInt(in.Src2))))
	case isa.CMPLE:
		writeInt(in.Dst, b2i(int64(readInt(in.Src1)) <= int64(readInt(in.Src2))))

	case isa.ADDI:
		writeInt(in.Dst, readInt(in.Src1)+uint64(in.Imm))
	case isa.SUBI:
		writeInt(in.Dst, readInt(in.Src1)-uint64(in.Imm))
	case isa.ANDI:
		writeInt(in.Dst, readInt(in.Src1)&uint64(in.Imm))
	case isa.ORI:
		writeInt(in.Dst, readInt(in.Src1)|uint64(in.Imm))
	case isa.XORI:
		writeInt(in.Dst, readInt(in.Src1)^uint64(in.Imm))
	case isa.SLLI:
		writeInt(in.Dst, readInt(in.Src1)<<(uint64(in.Imm)&63))
	case isa.SRLI:
		writeInt(in.Dst, readInt(in.Src1)>>(uint64(in.Imm)&63))
	case isa.SRAI:
		writeInt(in.Dst, uint64(int64(readInt(in.Src1))>>(uint64(in.Imm)&63)))
	case isa.CMPEQI:
		writeInt(in.Dst, b2i(readInt(in.Src1) == uint64(in.Imm)))
	case isa.CMPLTI:
		writeInt(in.Dst, b2i(int64(readInt(in.Src1)) < in.Imm))
	case isa.CMPLEI:
		writeInt(in.Dst, b2i(int64(readInt(in.Src1)) <= in.Imm))
	case isa.LDI:
		writeInt(in.Dst, uint64(in.Imm))

	case isa.MUL:
		writeInt(in.Dst, readInt(in.Src1)*readInt(in.Src2))
	case isa.DIV:
		d := int64(readInt(in.Src2))
		if d == 0 {
			writeInt(in.Dst, 0)
		} else {
			writeInt(in.Dst, uint64(int64(readInt(in.Src1))/d))
		}
	case isa.REM:
		d := int64(readInt(in.Src2))
		if d == 0 {
			writeInt(in.Dst, 0)
		} else {
			writeInt(in.Dst, uint64(int64(readInt(in.Src1))%d))
		}

	case isa.LDQ, isa.LDT:
		ea := readInt(in.Src1) + uint64(in.Imm)
		rec.EA = ea
		v, lerr := m.mem.Load(ea)
		if lerr != nil {
			m.halted = true
			return trace.Record{}, false, fmt.Errorf("pc %d (%s): %w", m.pc, in, lerr)
		}
		if in.Op == isa.LDQ {
			writeInt(in.Dst, v)
		} else {
			writeFP(in.Dst, math.Float64frombits(v))
		}
	case isa.STQ, isa.STT:
		ea := readInt(in.Src1) + uint64(in.Imm)
		rec.EA = ea
		var v uint64
		if in.Op == isa.STQ {
			v = readInt(in.Src2)
		} else {
			v = math.Float64bits(readFP(in.Src2))
		}
		rec.DstVal = v // store "result" is the stored value; used by golden checks
		if serr := m.mem.Store(ea, v); serr != nil {
			m.halted = true
			return trace.Record{}, false, fmt.Errorf("pc %d (%s): %w", m.pc, in, serr)
		}

	case isa.FADD:
		writeFP(in.Dst, readFP(in.Src1)+readFP(in.Src2))
	case isa.FSUB:
		writeFP(in.Dst, readFP(in.Src1)-readFP(in.Src2))
	case isa.FCMPEQ:
		writeFP(in.Dst, b2f(readFP(in.Src1) == readFP(in.Src2)))
	case isa.FCMPLT:
		writeFP(in.Dst, b2f(readFP(in.Src1) < readFP(in.Src2)))
	case isa.FCMPLE:
		writeFP(in.Dst, b2f(readFP(in.Src1) <= readFP(in.Src2)))
	case isa.CVTIF:
		writeFP(in.Dst, float64(int64(readInt(in.Src1))))
	case isa.FCVTI:
		writeInt(in.Dst, truncToInt(readFP(in.Src1)))
	case isa.FMUL:
		writeFP(in.Dst, readFP(in.Src1)*readFP(in.Src2))
	case isa.FDIV:
		d := readFP(in.Src2)
		if d == 0 {
			writeFP(in.Dst, 0)
		} else {
			writeFP(in.Dst, readFP(in.Src1)/d)
		}
	case isa.FSQRT:
		s := readFP(in.Src1)
		if s < 0 || math.IsNaN(s) {
			writeFP(in.Dst, 0)
		} else {
			writeFP(in.Dst, math.Sqrt(s))
		}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		v := int64(readInt(in.Src1))
		var taken bool
		switch in.Op {
		case isa.BEQ:
			taken = v == 0
		case isa.BNE:
			taken = v != 0
		case isa.BLT:
			taken = v < 0
		case isa.BLE:
			taken = v <= 0
		case isa.BGT:
			taken = v > 0
		case isa.BGE:
			taken = v >= 0
		}
		rec.Taken = taken
		if taken {
			nextPC = in.Target
		}
	case isa.FBEQ, isa.FBNE:
		v := readFP(in.Src1)
		taken := (in.Op == isa.FBEQ && v == 0) || (in.Op == isa.FBNE && v != 0)
		rec.Taken = taken
		if taken {
			nextPC = in.Target
		}

	case isa.BR:
		rec.Taken = true
		nextPC = in.Target
	case isa.BSR:
		rec.Taken = true
		writeInt(in.Dst, uint64(m.pc+1))
		nextPC = in.Target
	case isa.JSR:
		rec.Taken = true
		t := int(readInt(in.Src1))
		writeInt(in.Dst, uint64(m.pc+1))
		nextPC = t
	case isa.RET:
		rec.Taken = true
		nextPC = int(readInt(in.Src1))

	default:
		m.halted = true
		return trace.Record{}, false, fmt.Errorf("emu: pc %d: unimplemented opcode %s", m.pc, in.Op)
	}

	if info.IsBranch && (nextPC < 0 || nextPC > len(m.prog.Insts)) {
		m.halted = true
		return trace.Record{}, false, fmt.Errorf("emu: pc %d (%s): jump to %d out of range", m.pc, in, nextPC)
	}

	rec.NextPC = nextPC
	m.pc = nextPC
	m.seq++
	if m.pc == len(m.prog.Insts) {
		// Running off the end is an implicit halt (only via fallthrough,
		// not via branches — those were range-checked above).
		m.halted = true
	}
	return rec, true, nil
}

// Run executes until halt or limit instructions, whichever is first,
// discarding the trace. It returns the number of instructions executed.
func (m *Machine) Run(limit int64) (int64, error) {
	var n int64
	for n < limit && !m.halted {
		if _, ok, err := m.Step(); err != nil {
			return n, err
		} else if !ok {
			break
		}
		n++
	}
	return n, nil
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// truncToInt converts with defined behaviour at the edges (NaN and
// out-of-range map to 0, keeping workloads deterministic across platforms).
func truncToInt(f float64) uint64 {
	if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
		return 0
	}
	return uint64(int64(f))
}

// TraceGen adapts a Machine to trace.Generator. Errors from the machine
// terminate the trace; the first error is retained for inspection.
type TraceGen struct {
	m   *Machine
	err error
}

// NewTraceGen builds the machine and returns its generator form.
func NewTraceGen(prog *isa.Program) (*TraceGen, error) {
	m, err := New(prog)
	if err != nil {
		return nil, err
	}
	return &TraceGen{m: m}, nil
}

// Next emits the next committed instruction.
func (g *TraceGen) Next() (trace.Record, bool) {
	if g.err != nil {
		return trace.Record{}, false
	}
	rec, ok, err := g.m.Step()
	if err != nil {
		g.err = err
		return trace.Record{}, false
	}
	return rec, ok
}

// NextBatch implements trace.BatchGenerator: it emits up to len(dst)
// committed instructions in one call, amortizing the per-record dispatch
// overhead on the pipeline's refill path. A short count means the program
// halted (or errored; see Err).
func (g *TraceGen) NextBatch(dst []trace.Record) int {
	if g.err != nil {
		return 0
	}
	for i := range dst {
		rec, ok, err := g.m.Step()
		if err != nil {
			g.err = err
			return i
		}
		if !ok {
			return i
		}
		dst[i] = rec
	}
	return len(dst)
}

// Err reports the error that ended the trace, if any.
func (g *TraceGen) Err() error { return g.err }

// Machine exposes the underlying machine (for golden-state comparisons).
func (g *TraceGen) Machine() *Machine { return g.m }
