package emu

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

func run(t *testing.T, src string, limit int64) *Machine {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(limit); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatalf("program did not halt within %d steps", limit)
	}
	return m
}

func TestIntArithmetic(t *testing.T) {
	m := run(t, `
        ldi  r1, 7
        ldi  r2, -3
        add  r3, r1, r2    ; 4
        sub  r4, r1, r2    ; 10
        mul  r5, r1, r2    ; -21
        div  r6, r5, r1    ; -3
        rem  r7, r1, r2    ; 7 % -3 = 1
        and  r8, r1, r2
        xor  r9, r1, r2
        slli r10, r1, 4    ; 112
        srai r11, r2, 1    ; -2
        srli r12, r2, 62   ; 3
        cmplt r13, r2, r1  ; 1
        cmplei r14, r1, 6  ; 0
        halt
`, 100)
	want := map[int]int64{3: 4, 4: 10, 5: -21, 6: -3, 7: 1, 8: 7 & -3, 9: 7 ^ -3,
		10: 112, 11: -2, 12: 3, 13: 1, 14: 0}
	for reg, v := range want {
		if got := int64(m.IntReg(reg)); got != v {
			t.Errorf("r%d = %d, want %d", reg, got, v)
		}
	}
}

func TestDivideByZeroIsDefined(t *testing.T) {
	m := run(t, `
        ldi r1, 5
        div r2, r1, r31
        rem r3, r1, r31
        halt
`, 10)
	if m.IntReg(2) != 0 || m.IntReg(3) != 0 {
		t.Errorf("div/rem by zero = %d,%d, want 0,0", m.IntReg(2), m.IntReg(3))
	}
}

func TestFPArithmetic(t *testing.T) {
	m := run(t, `
        .data
v:      .double 2.0, 8.0, -1.0
        .text
        ldi  r1, v
        ldt  f1, 0(r1)
        ldt  f2, 8(r1)
        ldt  f3, 16(r1)
        fadd f4, f1, f2    ; 10
        fsub f5, f1, f2    ; -6
        fmul f6, f1, f2    ; 16
        fdiv f7, f2, f1    ; 4
        fsqrt f8, f2       ; sqrt(8)
        fsqrt f9, f3       ; negative -> 0
        fdiv  f10, f1, f31 ; div by zero -> 0
        fcmplt f11, f1, f2 ; 1.0
        cvtif f12, r1
        fcvti r2, f7       ; 4
        halt
`, 100)
	cases := []struct {
		reg  int
		want float64
	}{
		{4, 10}, {5, -6}, {6, 16}, {7, 4}, {8, math.Sqrt(8)}, {9, 0}, {10, 0}, {11, 1},
		{12, float64(isa.DefaultDataBase)},
	}
	for _, c := range cases {
		if got := m.FPReg(c.reg); got != c.want {
			t.Errorf("f%d = %g, want %g", c.reg, got, c.want)
		}
	}
	if m.IntReg(2) != 4 {
		t.Errorf("fcvti = %d, want 4", m.IntReg(2))
	}
}

func TestZeroRegistersDiscardWrites(t *testing.T) {
	m := run(t, `
        ldi r31, 55
        ldi r1, 7
        add r31, r1, r1
        fadd f31, f31, f31
        add r2, r31, r1
        halt
`, 10)
	if m.IntReg(31) != 0 {
		t.Error("r31 must stay zero")
	}
	if m.IntReg(2) != 7 {
		t.Errorf("r2 = %d, want 7", m.IntReg(2))
	}
}

func TestMemoryAndLoop(t *testing.T) {
	// Sum 1..10 stored into memory by a first loop, read by a second.
	m := run(t, `
        .data
arr:    .space 80
        .text
        ldi  r1, arr
        ldi  r2, 1        ; value
        ldi  r3, 10       ; count
fill:   stq  0(r1), r2
        addi r1, r1, 8
        addi r2, r2, 1
        subi r3, r3, 1
        bne  r3, fill
        ldi  r1, arr
        ldi  r3, 10
        ldi  r4, 0        ; sum
sum:    ldq  r5, 0(r1)
        add  r4, r4, r5
        addi r1, r1, 8
        subi r3, r3, 1
        bne  r3, sum
        halt
`, 1000)
	if m.IntReg(4) != 55 {
		t.Errorf("sum = %d, want 55", m.IntReg(4))
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
        ldi  r1, 5
        bsr  r26, double
        mov  r2, r1        ; r1 = 10 now
        bsr  r26, double
        mov  r3, r1        ; 20
        br   end
double: add  r1, r1, r1
        ret  r26
end:    halt
`, 100)
	if m.IntReg(2) != 10 || m.IntReg(3) != 20 {
		t.Errorf("r2,r3 = %d,%d, want 10,20", m.IntReg(2), m.IntReg(3))
	}
}

func TestJSRIndirect(t *testing.T) {
	m := run(t, `
        ldi  r9, fn
        jsr  r26, r9
        br   end
fn:     ldi  r1, 42
        ret  r26
end:    halt
`, 100)
	if m.IntReg(1) != 42 {
		t.Errorf("r1 = %d, want 42", m.IntReg(1))
	}
}

func TestBranchFlavors(t *testing.T) {
	m := run(t, `
        ldi r1, -1
        ldi r10, 0
        blt r1, a
        ldi r10, 99       ; skipped
a:      bge r1, bad
        ldi r2, 0
        beq r2, b
        ldi r10, 99
b:      ldi r3, 1
        bgt r3, c
        ldi r10, 99
c:      ble r3, bad
        fbeq f31, d
        ldi r10, 99
d:      halt
bad:    ldi r10, 98
        halt
`, 100)
	if m.IntReg(10) != 0 {
		t.Errorf("r10 = %d, want 0 (a mispredicted branch path executed)", m.IntReg(10))
	}
}

func TestTraceRecords(t *testing.T) {
	p, err := asm.Assemble("t", `
        .data
w:      .word 21
        .text
        ldi  r1, w
        ldq  r2, 0(r1)
        add  r3, r2, r2
        beq  r31, skip
        ldi  r4, 99
skip:   stq  8(r1), r3
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTraceGen(p)
	if err != nil {
		t.Fatal(err)
	}
	recs := trace.Collect(gen, 100)
	if gen.Err() != nil {
		t.Fatal(gen.Err())
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5 (taken branch skips ldi)", len(recs))
	}
	ld := recs[1]
	if ld.EA != isa.DefaultDataBase || ld.DstVal != 21 {
		t.Errorf("load record = EA %#x val %d", ld.EA, ld.DstVal)
	}
	add := recs[2]
	if add.Src1Val != 21 || add.Src2Val != 21 || add.DstVal != 42 {
		t.Errorf("add record = %+v", add)
	}
	br := recs[3]
	if !br.Taken || br.NextPC != 5 {
		t.Errorf("branch record = taken %v next %d", br.Taken, br.NextPC)
	}
	st := recs[4]
	if st.EA != isa.DefaultDataBase+8 || st.DstVal != 42 {
		t.Errorf("store record = EA %#x val %d", st.EA, st.DstVal)
	}
	// Sequence numbers are consecutive.
	for i, r := range recs {
		if r.Seq != int64(i) {
			t.Errorf("rec %d has seq %d", i, r.Seq)
		}
	}
}

func TestUnalignedAccessFails(t *testing.T) {
	p, err := asm.Assemble("t", `
        ldi r1, 3
        ldq r2, 0(r1)
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10); err == nil {
		t.Fatal("unaligned load must error")
	}
}

func TestRunLimit(t *testing.T) {
	p := asm.MustAssemble("t", "loop: br loop")
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(100)
	if err != nil || n != 100 {
		t.Fatalf("Run = %d,%v; want 100,nil", n, err)
	}
	if m.Halted() {
		t.Error("infinite loop is not halted")
	}
}

func TestImplicitHaltAtEnd(t *testing.T) {
	m := run(t, "ldi r1, 1\nldi r2, 2", 10)
	if m.IntReg(2) != 2 {
		t.Error("both instructions should run before implicit halt")
	}
}

func TestMemorySparse(t *testing.T) {
	mem := NewMemory()
	if v, err := mem.Load(0x8000_0000); err != nil || v != 0 {
		t.Errorf("unmapped load = %d,%v", v, err)
	}
	if err := mem.Store(0x8000_0000, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := mem.Load(0x8000_0000); v != 7 {
		t.Errorf("load-after-store = %d", v)
	}
	if mem.Footprint() != 1 {
		t.Errorf("footprint = %d, want 1", mem.Footprint())
	}
	snap := mem.Snapshot()
	if snap[0x8000_0000] != 7 || len(snap) != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if _, err := mem.Load(3); err == nil {
		t.Error("unaligned load must error")
	}
	if err := mem.Store(3, 1); err == nil {
		t.Error("unaligned store must error")
	}
}
