package emu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

const (
	pageShift = 12 // 4 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / isa.WordSize
)

type page [pageWords]uint64

// Memory is a sparse, page-granular 64-bit word memory. The ISA only issues
// 8-byte aligned accesses, so storage is word-addressed internally.
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// LoadImage copies data to consecutive addresses starting at base.
// base must be word-aligned.
func (m *Memory) LoadImage(base uint64, data []byte) error {
	if base%isa.WordSize != 0 {
		return fmt.Errorf("emu: image base %#x not %d-byte aligned", base, isa.WordSize)
	}
	for off := 0; off < len(data); off += isa.WordSize {
		chunk := data[off:]
		var w [isa.WordSize]byte
		copy(w[:], chunk)
		m.mustStore(base+uint64(off), binary.LittleEndian.Uint64(w[:]))
	}
	return nil
}

// Load reads the word at addr, which must be word-aligned. Unmapped
// addresses read as zero.
func (m *Memory) Load(addr uint64) (uint64, error) {
	if addr%isa.WordSize != 0 {
		return 0, fmt.Errorf("emu: unaligned load at %#x", addr)
	}
	p, ok := m.pages[addr>>pageShift]
	if !ok {
		return 0, nil
	}
	return p[(addr%pageBytes)/isa.WordSize], nil
}

// Store writes the word at addr, which must be word-aligned.
func (m *Memory) Store(addr, val uint64) error {
	if addr%isa.WordSize != 0 {
		return fmt.Errorf("emu: unaligned store at %#x", addr)
	}
	m.mustStore(addr, val)
	return nil
}

func (m *Memory) mustStore(addr, val uint64) {
	key := addr >> pageShift
	p, ok := m.pages[key]
	if !ok {
		p = new(page)
		m.pages[key] = p
	}
	p[(addr%pageBytes)/isa.WordSize] = val
}

// Footprint returns the number of mapped pages (for tests and statistics).
func (m *Memory) Footprint() int { return len(m.pages) }

// Snapshot copies every mapped word into a flat map, for golden-model
// comparisons in tests.
func (m *Memory) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for key, p := range m.pages {
		for i, w := range p {
			if w != 0 {
				out[key<<pageShift+uint64(i*isa.WordSize)] = w
			}
		}
	}
	return out
}
