package trace

import (
	"testing"

	"repro/internal/isa"
)

func mkRecs(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{PC: i, Inst: isa.Inst{Op: isa.ADDI, Dst: isa.IntReg(1), Src1: isa.IntReg(1), Imm: int64(i)}}
	}
	return recs
}

func TestFromSliceRenumbers(t *testing.T) {
	recs := mkRecs(3)
	recs[1].Seq = 99 // must be overwritten
	g := FromSlice(recs)
	for want := int64(0); ; want++ {
		r, ok := g.Next()
		if !ok {
			if want != 3 {
				t.Fatalf("trace ended at %d, want 3", want)
			}
			return
		}
		if r.Seq != want {
			t.Fatalf("seq = %d, want %d", r.Seq, want)
		}
	}
}

func TestTake(t *testing.T) {
	g := Take(FromSlice(mkRecs(10)), 4)
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("Take(4) yielded %d", n)
	}
}

func TestCollect(t *testing.T) {
	if got := len(Collect(FromSlice(mkRecs(5)), 100)); got != 5 {
		t.Errorf("Collect short trace = %d, want 5", got)
	}
	if got := len(Collect(FromSlice(mkRecs(5)), 2)); got != 2 {
		t.Errorf("Collect capped = %d, want 2", got)
	}
}

func TestStreamForwardAndRewind(t *testing.T) {
	s := NewStream(FromSlice(mkRecs(100)), 16)
	// Forward access.
	for i := int64(0); i < 10; i++ {
		r, ok := s.At(i)
		if !ok || r.Seq != i {
			t.Fatalf("At(%d) = %v,%v", i, r, ok)
		}
	}
	// Rewind (e.g. after a misprediction squash) within the window.
	r, ok := s.At(3)
	if !ok || r.Seq != 3 || r.Inst.Imm != 3 {
		t.Fatalf("rewind At(3) = %v,%v", r, ok)
	}
	// Slide and keep going.
	s.Retire(8)
	if r, ok := s.At(8); !ok || r.Seq != 8 {
		t.Fatalf("At(8) after retire = %v,%v", r, ok)
	}
	for i := int64(8); i < 24; i++ {
		if _, ok := s.At(i); !ok {
			t.Fatalf("At(%d) failed", i)
		}
		s.Retire(i)
	}
}

func TestStreamEnd(t *testing.T) {
	s := NewStream(FromSlice(mkRecs(5)), 8)
	if _, ok := s.At(4); !ok {
		t.Fatal("At(4) should exist")
	}
	if _, ok := s.At(5); ok {
		t.Fatal("At(5) should be past the end")
	}
	// Still able to re-read buffered records after hitting the end.
	if r, ok := s.At(2); !ok || r.Seq != 2 {
		t.Fatalf("re-read At(2) = %v,%v", r, ok)
	}
}

func TestStreamOverrunPanics(t *testing.T) {
	s := NewStream(FromSlice(mkRecs(100)), 4)
	defer func() {
		if recover() == nil {
			t.Error("window overrun must panic")
		}
	}()
	s.At(10) // window is 4, nothing retired
}

func TestStreamRetiredAccessPanics(t *testing.T) {
	s := NewStream(FromSlice(mkRecs(100)), 8)
	s.At(5)
	s.Retire(4)
	defer func() {
		if recover() == nil {
			t.Error("accessing a retired record must panic")
		}
	}()
	s.At(2)
}

func TestStreamRetireIdempotent(t *testing.T) {
	s := NewStream(FromSlice(mkRecs(10)), 8)
	s.At(5)
	s.Retire(3)
	s.Retire(3)
	s.Retire(1) // going backwards is a no-op
	if r, ok := s.At(3); !ok || r.Seq != 3 {
		t.Fatalf("At(3) = %v,%v", r, ok)
	}
}

func TestMeasureMix(t *testing.T) {
	recs := []Record{
		{Inst: isa.Inst{Op: isa.ADD, Dst: isa.IntReg(1), Src1: isa.IntReg(2), Src2: isa.IntReg(3)}},
		{Inst: isa.Inst{Op: isa.LDQ, Dst: isa.IntReg(1), Src1: isa.IntReg(2)}},
		{Inst: isa.Inst{Op: isa.LDT, Dst: isa.FPReg(1), Src1: isa.IntReg(2)}},
		{Inst: isa.Inst{Op: isa.STQ, Src1: isa.IntReg(1), Src2: isa.IntReg(2)}},
		{Inst: isa.Inst{Op: isa.FMUL, Dst: isa.FPReg(1), Src1: isa.FPReg(2), Src2: isa.FPReg(3)}},
		{Inst: isa.Inst{Op: isa.FDIV, Dst: isa.FPReg(1), Src1: isa.FPReg(2), Src2: isa.FPReg(3)}},
		{Inst: isa.Inst{Op: isa.BNE, Src1: isa.IntReg(1), Target: 0}, Taken: true},
		{Inst: isa.Inst{Op: isa.BEQ, Src1: isa.IntReg(1), Target: 0}, Taken: false},
		{Inst: isa.Inst{Op: isa.MUL, Dst: isa.IntReg(31), Src1: isa.IntReg(1), Src2: isa.IntReg(2)}},
	}
	m := MeasureMix(FromSlice(recs), 100)
	if m.Total != 9 || m.IntALU != 1 || m.Loads != 2 || m.Stores != 1 ||
		m.FPMul != 1 || m.FPDiv != 1 || m.Branches != 2 || m.Taken != 1 || m.IntMul != 1 {
		t.Errorf("mix = %+v", m)
	}
	// Dest accounting: ADD + LDQ write int; LDT, FMUL, FDIV write fp;
	// MUL writes r31 (no dest).
	if m.IntDst != 2 || m.FPDst != 3 {
		t.Errorf("dst counts = int %d fp %d", m.IntDst, m.FPDst)
	}
	if m.Frac(m.Loads) < 0.2 || m.Frac(m.Loads) > 0.25 {
		t.Errorf("Frac = %v", m.Frac(m.Loads))
	}
	if (Mix{}).Frac(3) != 0 {
		t.Error("Frac of empty mix must be 0")
	}
}
