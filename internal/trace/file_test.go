package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func sampleRecords() []Record {
	return []Record{
		{PC: 0, NextPC: 1, Inst: isa.Inst{Op: isa.LDI, Dst: isa.IntReg(1), Imm: -77, Target: -1},
			HasValues: true, DstVal: 0xFFFFFFFFFFFFFFB3},
		{PC: 1, NextPC: 2, Inst: isa.Inst{Op: isa.LDQ, Dst: isa.IntReg(2), Src1: isa.IntReg(1), Imm: 8, Target: -1},
			EA: 0x10008, HasValues: true, DstVal: 42, Src1Val: 0x10000},
		{PC: 2, NextPC: 0, Inst: isa.Inst{Op: isa.BNE, Src1: isa.IntReg(2), Target: 0},
			Taken: true, HasValues: true, Src1Val: 42},
		{PC: 0, NextPC: 1, Inst: isa.Inst{Op: isa.STT, Src1: isa.IntReg(1), Src2: isa.FPReg(3), Imm: -16, Target: -1},
			EA: 0xFFF0, HasValues: true, DstVal: 7, Src1Val: 1, Src2Val: 7},
		{PC: 1, NextPC: 2, Inst: isa.Inst{Op: isa.NOP, Target: -1}},
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	n, err := Dump(&buf, FromSlice(recs), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("wrote %d records, want %d", n, len(recs))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(r, 1<<40)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i]
		want.Seq = int64(i)
		if got[i] != want {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestFileRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE___")); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	if _, err := NewReader(bytes.NewBufferString("VP")); err == nil {
		t.Fatal("short header must be rejected")
	}
}

func TestFileTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Dump(&buf, FromSlice(sampleRecords()), 1<<40); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("a mid-record truncation must surface an error")
	}
}

func TestFileUnknownOpcode(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(fileMagic)+1] = 250 // clobber the opcode byte of record 0
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Fatal("unknown opcode must surface an error")
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Dump(&buf, FromSlice(nil), 10); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace must yield nothing")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF is not an error: %v", r.Err())
	}
}

func TestFileDumpCap(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	n, err := Dump(&buf, FromSlice(recs), 2)
	if err != nil || n != 2 {
		t.Fatalf("Dump cap: n=%d err=%v", n, err)
	}
	r, _ := NewReader(&buf)
	if got := len(Collect(r, 100)); got != 2 {
		t.Fatalf("read %d, want 2", got)
	}
}

// Property: any well-formed record survives the round trip bit-exactly.
func TestQuickFileRoundTrip(t *testing.T) {
	ops := []isa.Opcode{isa.ADD, isa.LDI, isa.LDQ, isa.STQ, isa.FADD, isa.BNE, isa.FDIV, isa.MUL}
	f := func(opSel uint8, d, s1, s2 uint8, imm int64, ea uint64, taken, hasVals bool, dv, s1v, s2v uint64) bool {
		op := ops[int(opSel)%len(ops)]
		info := op.Info()
		rec := Record{
			PC:        int(opSel),
			NextPC:    int(opSel) + 1,
			Inst:      isa.Inst{Op: op, Imm: 0, Target: -1},
			HasValues: hasVals,
		}
		if info.DstClass != isa.RegNone {
			rec.Inst.Dst = isa.Reg{Class: info.DstClass, Index: d % 32}
		}
		if info.Src1Class != isa.RegNone {
			rec.Inst.Src1 = isa.Reg{Class: info.Src1Class, Index: s1 % 32}
		}
		if info.Src2Class != isa.RegNone {
			rec.Inst.Src2 = isa.Reg{Class: info.Src2Class, Index: s2 % 32}
		}
		if info.HasImm {
			rec.Inst.Imm = imm
		}
		if info.IsLoad || info.IsStore {
			rec.EA = ea
		}
		if info.IsBranch {
			rec.Taken = taken
			rec.Inst.Target = int(opSel) % 7
		}
		if hasVals {
			rec.DstVal, rec.Src1Val, rec.Src2Val = dv, s1v, s2v
		}
		var buf bytes.Buffer
		if _, err := Dump(&buf, FromSlice([]Record{rec}), 1); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, ok := r.Next()
		if !ok {
			return false
		}
		rec.Seq = 0
		return got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// The reader must work through a generic io.Reader (no Seek, no buffering
// assumptions) — e.g. a pipe or network stream.
func TestFileStreamingReader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Dump(&buf, FromSlice(sampleRecords()), 100); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes()[:7]), bytes.NewReader(buf.Bytes()[7:])))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Collect(r, 100)); got != len(sampleRecords()) {
		t.Fatalf("read %d records through a fragmented stream", got)
	}
}
