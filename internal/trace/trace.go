// Package trace defines the committed-path instruction trace that drives the
// timing simulator, mirroring the paper's trace-driven methodology (ATOM
// traces of Alpha binaries there; functionally-emulated kernels here).
//
// A Record describes one dynamic instruction: the decoded instruction, its
// effective address if it touches memory, its branch outcome, and —
// when the trace was produced by the functional emulator — the operand and
// result values, which the pipeline uses as a golden model to detect
// renaming bugs.
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// Record is one dynamic (committed-path) instruction.
type Record struct {
	Seq  int64 // position in the dynamic stream, starting at 0
	PC   int   // instruction index
	Inst isa.Inst

	EA     uint64 // effective address (loads/stores)
	Taken  bool   // outcome (branches)
	NextPC int    // PC of the next dynamic instruction

	// Golden values. Values are stored as raw 64-bit patterns
	// (math.Float64bits for FP). HasValues is false for synthetic traces.
	HasValues bool
	DstVal    uint64
	Src1Val   uint64
	Src2Val   uint64
}

// Generator produces a trace one record at a time. Next reports ok=false
// when the trace is exhausted.
type Generator interface {
	Next() (Record, bool)
}

// BatchGenerator is an optional fast path a Generator may implement:
// NextBatch fills dst and returns how many records it produced; any short
// count (including zero) means the trace is exhausted. Consumers that
// refill ring buffers (Stream) use it to amortize the per-record
// interface-call and bookkeeping overhead of the emulator hot path.
type BatchGenerator interface {
	NextBatch(dst []Record) int
}

// GenFunc adapts a function to the Generator interface.
type GenFunc func() (Record, bool)

// Next calls f.
func (f GenFunc) Next() (Record, bool) { return f() }

// nextBatch fills dst from gen, using the batch fast path when the
// generator provides one (callers pass the pre-asserted batch to avoid a
// type assertion per refill).
func nextBatch(gen Generator, batch BatchGenerator, dst []Record) int {
	if batch != nil {
		return batch.NextBatch(dst)
	}
	for i := range dst {
		r, ok := gen.Next()
		if !ok {
			return i
		}
		dst[i] = r
	}
	return len(dst)
}

// FromSlice returns a generator that replays recs, renumbering Seq from 0.
func FromSlice(recs []Record) Generator {
	i := 0
	return GenFunc(func() (Record, bool) {
		if i >= len(recs) {
			return Record{}, false
		}
		r := recs[i]
		r.Seq = int64(i)
		i++
		return r, true
	})
}

// Take caps gen at n records. The returned generator preserves gen's
// batch fast path, so a Take-bounded emulator still refills in batches.
func Take(gen Generator, n int64) Generator {
	t := &takeGen{gen: gen, left: n}
	t.batch, _ = gen.(BatchGenerator)
	return t
}

type takeGen struct {
	gen   Generator
	batch BatchGenerator
	left  int64
}

func (t *takeGen) Next() (Record, bool) {
	if t.left <= 0 {
		return Record{}, false
	}
	r, ok := t.gen.Next()
	if ok {
		t.left--
	}
	return r, ok
}

func (t *takeGen) NextBatch(dst []Record) int {
	if t.left <= 0 {
		return 0
	}
	if int64(len(dst)) > t.left {
		dst = dst[:t.left]
	}
	n := nextBatch(t.gen, t.batch, dst)
	t.left -= int64(n)
	return n
}

// Collect drains up to max records from gen into a slice.
func Collect(gen Generator, max int64) []Record {
	var out []Record
	for int64(len(out)) < max {
		r, ok := gen.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Stream adapts a Generator for the out-of-order pipeline, which needs
// random access within a sliding window: the fetch stage walks forward, a
// squash rewinds the fetch point back to just after the offending
// instruction, and commit retires records so the window can slide.
//
// The window must cover everything between the oldest in-flight instruction
// and the fetch frontier (reorder-buffer size plus fetch lookahead). At
// asks the generator for records on demand; it panics if the pipeline
// overruns the window or rewinds behind a retired record, since both are
// simulator bugs, not recoverable conditions.
type Stream struct {
	gen   Generator
	batch BatchGenerator // gen's batch fast path, nil if not provided
	buf   []Record       // ring buffer, capacity == window
	base  int64          // sequence number of the oldest buffered record
	n     int            // buffered records
	done  bool           // generator exhausted
	next  int64          // sequence number the generator will produce next
}

// refillBatch is how many records a Stream pulls from its generator per
// refill: decoding one instruction at a time through the Generator
// interface was the emulator-side hot spot, so the window fills in
// fixed-size batches (bounded by the free window space) instead. Pure
// prefetch depth — the records a consumer observes are byte-identical.
const refillBatch = 64

// NewStream wraps gen with a sliding window of the given capacity.
func NewStream(gen Generator, window int) *Stream {
	if window <= 0 {
		panic("trace: window must be positive")
	}
	s := &Stream{gen: gen, buf: make([]Record, window)}
	s.batch, _ = gen.(BatchGenerator)
	return s
}

// At returns the record with the given sequence number, generating forward
// as necessary. ok=false means the trace ended before seq.
func (s *Stream) At(seq int64) (Record, bool) {
	if seq < s.base {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("trace: seq %d already retired (base %d)", seq, s.base))
	}
	for seq >= s.base+int64(s.n) {
		if s.done {
			return Record{}, false
		}
		if s.n == len(s.buf) {
			//vpr:allowalloc panic message: an invariant violation aborts the run
			panic(fmt.Sprintf("trace: window of %d overrun (base %d, want %d); retire first", len(s.buf), s.base, seq))
		}
		s.refill()
	}
	return s.buf[seq%int64(len(s.buf))], true
}

// refill pulls the next batch of records into the ring: up to refillBatch
// of them, bounded by the free window space and the ring's wrap point. A
// short batch marks the generator exhausted.
func (s *Stream) refill() {
	pos := int((s.base + int64(s.n)) % int64(len(s.buf)))
	chunk := len(s.buf) - s.n // free space
	if chunk > refillBatch {
		chunk = refillBatch
	}
	if wrap := len(s.buf) - pos; chunk > wrap {
		chunk = wrap // stay contiguous; the next refill starts at the ring head
	}
	got := nextBatch(s.gen, s.batch, s.buf[pos:pos+chunk])
	for i := 0; i < got; i++ {
		s.buf[pos+i].Seq = s.next
		s.next++
	}
	s.n += got
	if got < chunk {
		s.done = true
	}
}

// Retire discards all records with sequence numbers < seq, allowing the
// window to slide. Retiring is monotone; retiring an already-retired point
// is a no-op.
func (s *Stream) Retire(seq int64) {
	if seq <= s.base {
		return
	}
	drop := seq - s.base
	if drop > int64(s.n) {
		drop = int64(s.n)
	}
	s.base += drop
	s.n -= int(drop)
}

// Mix summarises a trace's instruction composition; used by tests and the
// vptrace tool to check that workloads have the intended character.
type Mix struct {
	Total    int64
	IntALU   int64
	IntMul   int64
	IntDiv   int64
	Loads    int64
	Stores   int64
	FPALU    int64
	FPMul    int64
	FPDiv    int64
	Branches int64
	Taken    int64
	IntDst   int64 // instructions writing an integer register
	FPDst    int64 // instructions writing an FP register
}

// MeasureMix drains up to max records and tallies the composition.
func MeasureMix(gen Generator, max int64) Mix {
	var m Mix
	for m.Total < max {
		r, ok := gen.Next()
		if !ok {
			break
		}
		m.Total++
		info := r.Inst.Op.Info()
		switch {
		case info.IsLoad:
			m.Loads++
		case info.IsStore:
			m.Stores++
		case info.IsBranch:
			m.Branches++
			if r.Taken {
				m.Taken++
			}
		default:
			switch info.Kind {
			case isa.FUIntALU:
				m.IntALU++
			case isa.FUIntMul:
				m.IntMul++
			case isa.FUIntDiv:
				m.IntDiv++
			case isa.FUFPALU:
				m.FPALU++
			case isa.FUFPMul:
				m.FPMul++
			case isa.FUFPDiv:
				m.FPDiv++
			}
		}
		if r.Inst.HasDst() {
			switch r.Inst.Dst.Class {
			case isa.RegInt:
				m.IntDst++
			case isa.RegFP:
				m.FPDst++
			}
		}
	}
	return m
}

// Frac returns part/total as a float, 0 when the trace is empty.
func (m Mix) Frac(part int64) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(part) / float64(m.Total)
}
