package trace

// Binary trace files. The paper's methodology stored ATOM-generated traces
// and replayed them through the timing simulator; this file provides the
// equivalent: a compact, streaming, versioned on-disk format so expensive
// traces can be captured once (vptrace -save) and replayed many times
// (vptrace -load / Reader as a Generator).
//
// Format: a magic header, then one varint-encoded record per dynamic
// instruction. Instructions are stored decoded (opcode + operands), not as
// machine words — matching the in-memory representation. A flags byte
// marks which optional fields (EA, taken, values) follow, so integer-only
// traces without golden values stay small.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// fileMagic identifies trace files; the trailing digit is the format
// version.
var fileMagic = []byte("VPRTRACE1")

const (
	flagEA uint8 = 1 << iota
	flagTaken
	flagValues
	flagDst
	flagSrc1
	flagSrc2
)

// Writer streams records to an io.Writer in the binary format.
type Writer struct {
	w     *bufio.Writer
	n     int64
	wrote bool
}

// NewWriter emits the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	var flags uint8
	info := r.Inst.Op.Info()
	if info.IsLoad || info.IsStore {
		flags |= flagEA
	}
	if info.IsBranch {
		flags |= flagTaken
	}
	if r.HasValues {
		flags |= flagValues
	}
	if r.Inst.Dst.Class != isa.RegNone {
		flags |= flagDst
	}
	if r.Inst.Src1.Class != isa.RegNone {
		flags |= flagSrc1
	}
	if r.Inst.Src2.Class != isa.RegNone {
		flags |= flagSrc2
	}

	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := tw.w.Write(buf[:n])
		return err
	}
	if err := tw.w.WriteByte(flags); err != nil {
		return err
	}
	if err := tw.w.WriteByte(byte(r.Inst.Op)); err != nil {
		return err
	}
	if err := put(uint64(r.PC)); err != nil {
		return err
	}
	if err := put(uint64(r.NextPC)); err != nil {
		return err
	}
	writeReg := func(reg isa.Reg) error {
		if err := tw.w.WriteByte(byte(reg.Class)); err != nil {
			return err
		}
		return tw.w.WriteByte(reg.Index)
	}
	if flags&flagDst != 0 {
		if err := writeReg(r.Inst.Dst); err != nil {
			return err
		}
	}
	if flags&flagSrc1 != 0 {
		if err := writeReg(r.Inst.Src1); err != nil {
			return err
		}
	}
	if flags&flagSrc2 != 0 {
		if err := writeReg(r.Inst.Src2); err != nil {
			return err
		}
	}
	// Immediates and targets are signed; zig-zag via PutVarint.
	n := binary.PutVarint(buf[:], r.Inst.Imm)
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutVarint(buf[:], int64(r.Inst.Target))
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return err
	}
	if flags&flagEA != 0 {
		if err := put(r.EA); err != nil {
			return err
		}
	}
	if flags&flagTaken != 0 {
		b := byte(0)
		if r.Taken {
			b = 1
		}
		if err := tw.w.WriteByte(b); err != nil {
			return err
		}
	}
	if flags&flagValues != 0 {
		for _, v := range [...]uint64{r.DstVal, r.Src1Val, r.Src2Val} {
			if err := put(v); err != nil {
				return err
			}
		}
	}
	tw.n++
	tw.wrote = true
	return nil
}

// Count returns records written so far.
func (tw *Writer) Count() int64 { return tw.n }

// Flush drains the buffer; call before closing the underlying file.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Dump drains up to max records from gen into w. It returns the number of
// records written.
func Dump(w io.Writer, gen Generator, max int64) (int64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for tw.Count() < max {
		r, ok := gen.Next()
		if !ok {
			break
		}
		if err := tw.Write(r); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// Reader replays a binary trace as a Generator.
type Reader struct {
	r   *bufio.Reader
	seq int64
	err error
}

// NewReader validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != string(fileMagic) {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, fileMagic)
	}
	return &Reader{r: br}, nil
}

// Err reports the error that terminated the stream, if any (io.EOF at a
// record boundary is a clean end and reported as nil).
func (tr *Reader) Err() error { return tr.err }

// Next implements Generator.
func (tr *Reader) Next() (Record, bool) {
	if tr.err != nil {
		return Record{}, false
	}
	rec, err := tr.read()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			tr.err = err
		}
		return Record{}, false
	}
	rec.Seq = tr.seq
	tr.seq++
	return rec, true
}

func (tr *Reader) read() (Record, error) {
	var rec Record
	flags, err := tr.r.ReadByte()
	if err != nil {
		return rec, err // io.EOF here is a clean end of trace
	}
	fail := func(err error) (Record, error) {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return rec, fmt.Errorf("trace: truncated record %d: %w", tr.seq, err)
	}
	op, err := tr.r.ReadByte()
	if err != nil {
		return fail(err)
	}
	rec.Inst.Op = isa.Opcode(op)
	if rec.Inst.Op.Info().Name == "" {
		return rec, fmt.Errorf("trace: record %d has unknown opcode %d", tr.seq, op)
	}
	pc, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return fail(err)
	}
	rec.PC = int(pc)
	next, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return fail(err)
	}
	rec.NextPC = int(next)
	readReg := func() (isa.Reg, error) {
		class, err := tr.r.ReadByte()
		if err != nil {
			return isa.NoReg, err
		}
		idx, err := tr.r.ReadByte()
		if err != nil {
			return isa.NoReg, err
		}
		return isa.Reg{Class: isa.RegClass(class), Index: idx}, nil
	}
	if flags&flagDst != 0 {
		if rec.Inst.Dst, err = readReg(); err != nil {
			return fail(err)
		}
	}
	if flags&flagSrc1 != 0 {
		if rec.Inst.Src1, err = readReg(); err != nil {
			return fail(err)
		}
	}
	if flags&flagSrc2 != 0 {
		if rec.Inst.Src2, err = readReg(); err != nil {
			return fail(err)
		}
	}
	if rec.Inst.Imm, err = binary.ReadVarint(tr.r); err != nil {
		return fail(err)
	}
	tgt, err := binary.ReadVarint(tr.r)
	if err != nil {
		return fail(err)
	}
	rec.Inst.Target = int(tgt)
	if flags&flagEA != 0 {
		if rec.EA, err = binary.ReadUvarint(tr.r); err != nil {
			return fail(err)
		}
	}
	if flags&flagTaken != 0 {
		b, err := tr.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		rec.Taken = b != 0
	}
	if flags&flagValues != 0 {
		rec.HasValues = true
		for _, dst := range [...]*uint64{&rec.DstVal, &rec.Src1Val, &rec.Src2Val} {
			if *dst, err = binary.ReadUvarint(tr.r); err != nil {
				return fail(err)
			}
		}
	}
	return rec, nil
}
