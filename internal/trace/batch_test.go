package trace

import (
	"testing"

	"repro/internal/isa"
)

// sliceBatchGen replays records with a NextBatch fast path, counting the
// calls so tests can assert the batch path is actually taken.
type sliceBatchGen struct {
	recs       []Record
	i          int
	batchCalls int
}

func (g *sliceBatchGen) Next() (Record, bool) {
	if g.i >= len(g.recs) {
		return Record{}, false
	}
	r := g.recs[g.i]
	g.i++
	return r, true
}

func (g *sliceBatchGen) NextBatch(dst []Record) int {
	g.batchCalls++
	n := copy(dst, g.recs[g.i:])
	g.i += n
	return n
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{PC: i, Inst: isa.Inst{Op: isa.ADD}, EA: uint64(i) * 8}
	}
	return recs
}

// TestStreamBatchedRefillIdentical: a Stream over a batch-capable
// generator delivers byte-identical records, in the same windowed
// discipline, as one over the plain Next interface — batching is pure
// prefetch.
func TestStreamBatchedRefillIdentical(t *testing.T) {
	const n = 1000
	recs := testRecords(n)
	batched := NewStream(&sliceBatchGen{recs: recs}, 96)
	plain := NewStream(FromSlice(recs), 96)

	// Walk with a sliding window and occasional rewinds, like the
	// pipeline: fetch ahead, retire behind, re-read after a squash.
	seq, frontier := int64(0), int64(0)
	for base := int64(0); ; {
		a, okA := batched.At(seq)
		b, okB := plain.At(seq)
		if okA != okB || a != b {
			t.Fatalf("seq %d: batched (%+v,%v) vs plain (%+v,%v)", seq, a, okA, b, okB)
		}
		if !okA {
			break
		}
		if a.Seq != seq {
			t.Fatalf("seq %d: record renumbered to %d", seq, a.Seq)
		}
		seq++
		if seq > frontier {
			frontier = seq
			if frontier%7 == 0 { // rewind within the window, as after a squash
				seq -= 3
			}
		}
		if seq-base > 64 {
			base = seq - 32
			batched.Retire(base)
			plain.Retire(base)
		}
	}
	if frontier != n {
		t.Fatalf("trace ended at %d, want %d", frontier, n)
	}
}

// TestStreamUsesBatchPath: the batch fast path is exercised, and pulls
// more than one record per call.
func TestStreamUsesBatchPath(t *testing.T) {
	g := &sliceBatchGen{recs: testRecords(500)}
	s := NewStream(g, 256)
	for seq := int64(0); seq < 500; seq++ {
		if _, ok := s.At(seq); !ok {
			t.Fatalf("trace ended early at %d", seq)
		}
		s.Retire(seq - 100)
	}
	if g.batchCalls == 0 {
		t.Fatal("batch-capable generator was never batch-refilled")
	}
	if g.batchCalls >= 500 {
		t.Fatalf("batching did not amortize: %d calls for 500 records", g.batchCalls)
	}
}

// TestTakePreservesBatching: Take caps the stream exactly, through the
// batch path, and keeps batching for wrapped batch generators.
func TestTakePreservesBatching(t *testing.T) {
	g := &sliceBatchGen{recs: testRecords(100)}
	capped := Take(g, 37)
	bg, ok := capped.(BatchGenerator)
	if !ok {
		t.Fatal("Take must preserve the batch fast path")
	}
	var got []Record
	buf := make([]Record, 10)
	for {
		n := bg.NextBatch(buf)
		got = append(got, buf[:n]...)
		if n < len(buf) {
			break
		}
	}
	if len(got) != 37 {
		t.Fatalf("Take(37) via batches yielded %d records", len(got))
	}
	if g.batchCalls == 0 {
		t.Fatal("inner batch path unused")
	}

	// And a Take over a plain generator still caps correctly batch-wise.
	capped2 := Take(FromSlice(testRecords(100)), 5)
	n := capped2.(BatchGenerator).NextBatch(make([]Record, 10))
	if n != 5 {
		t.Fatalf("Take(5) over plain generator yielded %d", n)
	}
}
