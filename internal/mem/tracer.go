package mem

// CohTracer is the conformance harness's window into the coherence
// machinery: every L1 state transition and every L2 grant is reported
// through it when one is attached (System.SetCohTracer). Production runs
// never attach one — every emission site is nil-guarded on both the
// tracer and the individual hook, so the cost on the hot path is a
// pointer test.
//
// The callbacks run synchronously inside the (gate-serialized) memory
// phase, so they observe transitions in the same global (cycle,
// core-index) order the hierarchy applies them in and need no locking of
// their own.
//
//vpr:memstate
type CohTracer struct {
	// StateChange reports one L1 copy's transition: core's copy of
	// lineAddr moved from from to to because of ev. Self-loop
	// transitions (a read hit on a Shared line) are reported too — the
	// conformance checker verifies them against the declared table like
	// any other edge. Transitions of refills still in flight are
	// reported the same way as installed lines.
	StateChange func(core int, lineAddr uint64, from, to State, ev Event)

	// Fill reports the state the L2 granted core's copy of lineAddr on a
	// fetch or directory join, and which remote core forwarded the data
	// (-1 when the L2's own copy was current — a fresh refill or a
	// clean-at-L2 hit).
	Fill func(core int, lineAddr uint64, grant State, src int)
}
