package mem

import "testing"

// coherentPair builds a 2-core shared-address coherent System over a
// 1-bank L2 with a cheap geometry, so tests can reason about exact
// transition counts.
func coherentPair(t *testing.T, l2 L2Config) *System {
	t.Helper()
	sys, err := NewSystem(l1cfg(), l2, 2, true, CoherenceConfig{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func smallL2() L2Config {
	return L2Config{Enabled: true, SizeBytes: 64 * 1024, Banks: 1,
		HitPenalty: 2, MissPenalty: 4, BankBusCycles: 0}
}

// access drives one port and fails on an MSHR stall, returning the cycle
// the access completes.
func access(t *testing.T, sys *System, port int, now int64, addr uint64, write bool) int64 {
	t.Helper()
	out, ok := sys.Port(port).Access(now, addr, write)
	if !ok {
		t.Fatalf("unexpected MSHR stall (port %d addr %#x)", port, addr)
	}
	return out.ReadyAt
}

// TestUpgradeInvalidatesRemoteSharers: S in both L1s, then a store from
// one core — the MSI S→M transition — must invalidate the other core's
// copy and count one upgrade and one invalidation message.
func TestUpgradeInvalidatesRemoteSharers(t *testing.T) {
	sys := coherentPair(t, smallL2())
	const addr = 0x2000
	now := access(t, sys, 0, 0, addr, false)
	now = access(t, sys, 1, now+1, addr, false) // both Shared
	now = access(t, sys, 0, now+1, addr, true)  // port 0 upgrades
	l2 := sys.L2()
	if l2.Upgrades != 1 || l2.Invalidations != 1 || l2.WritebackForwards != 0 {
		t.Fatalf("upgrades/invalidations/forwards = %d/%d/%d, want 1/1/0",
			l2.Upgrades, l2.Invalidations, l2.WritebackForwards)
	}
	sys.Port(1).Drain(now + 1)
	if sys.Port(1).Probe(addr) {
		t.Fatal("remote Shared copy must be invalidated by the upgrade")
	}
	if !sys.Port(0).Probe(addr) {
		t.Fatal("the upgrading core keeps its (now Modified) copy")
	}
	// The invalidated core re-fetches: an extra L2 fetch, not an L1 hit.
	fetches := l2.Fetches
	access(t, sys, 1, now+2, addr, false)
	if l2.Fetches != fetches+1 {
		t.Fatalf("re-access after invalidation must go to the L2 (fetches %d -> %d)", fetches, l2.Fetches)
	}
}

// TestWritebackForwardOnDirtyRemoteRead: a read that finds the line
// Modified in another L1 forwards the dirty data through the bank
// (counted, bus charged) and downgrades the owner to Shared — the owner
// keeps a clean copy.
func TestWritebackForwardOnDirtyRemoteRead(t *testing.T) {
	l2cfg := smallL2()
	l2cfg.BankBusCycles = 8
	sys := coherentPair(t, l2cfg)
	const (
		lineX = uint64(0x3000) // stays clean: the baseline L2 hit
		lineY = uint64(0x8000) // Modified at port 0: the forwarded L2 hit
	)
	access(t, sys, 0, 0, lineX, false)
	access(t, sys, 0, 100, lineY, true)
	sys.Port(0).Drain(300)

	d1 := access(t, sys, 1, 300, lineX, false) - 300 // L2 hit, no remote owner
	d2 := access(t, sys, 1, 600, lineY, false) - 600 // L2 hit, dirty at port 0
	l2 := sys.L2()
	if l2.WritebackForwards != 1 || l2.Invalidations != 0 {
		t.Fatalf("forwards/invalidations = %d/%d, want 1/0", l2.WritebackForwards, l2.Invalidations)
	}
	if !sys.Port(0).Probe(lineY) {
		t.Fatal("downgraded owner keeps its copy")
	}
	// The forwarded line occupies the bank bus ahead of the reader's own
	// transfer: the dirty-remote hit takes longer than the clean hit.
	if d2 <= d1 {
		t.Fatalf("write-back forward must cost bus time: dirty-remote hit +%d vs clean hit +%d", d2, d1)
	}

	// The downgraded copy is clean: evicting it must not write back.
	wbs := l2.WriteBacks
	access(t, sys, 0, 900, lineY+16*1024, false) // same L1 set, conflicts the copy out
	if l2.WriteBacks != wbs {
		t.Fatalf("evicting a downgraded (clean) copy wrote back (%d -> %d)", wbs, l2.WriteBacks)
	}
}

// TestInvalidationOfDirtyRemoteLine: a store that finds the line Modified
// elsewhere pays both the invalidation and the write-back forward.
func TestInvalidationOfDirtyRemoteLine(t *testing.T) {
	sys := coherentPair(t, smallL2())
	const addr = 0x4000
	now := access(t, sys, 0, 0, addr, true) // port 0: M
	sys.Port(0).Drain(now + 1)
	access(t, sys, 1, now+1, addr, true) // port 1 takes ownership
	l2 := sys.L2()
	if l2.Invalidations != 1 || l2.WritebackForwards != 1 {
		t.Fatalf("invalidations/forwards = %d/%d, want 1/1 (dirty remote copy)",
			l2.Invalidations, l2.WritebackForwards)
	}
	if sys.Port(0).Probe(addr) {
		t.Fatal("previous owner's copy must be gone")
	}
}

// TestUpgradeRacesInflightRefillMerge: core 0's read refill is still in
// flight when core 1 stores to the line. The directory must win the race:
// core 0's refill returns data to its requester (the outcome stood when
// it was issued) but never installs, so core 0 re-fetches on its next
// access.
func TestUpgradeRacesInflightRefillMerge(t *testing.T) {
	l2cfg := smallL2()
	l2cfg.MissPenalty = 100 // a wide in-flight window
	sys := coherentPair(t, l2cfg)
	const addr = 0x5000
	ready0 := access(t, sys, 0, 0, addr, false) // refill in flight
	access(t, sys, 1, 1, addr, true)            // store while in flight
	l2 := sys.L2()
	if l2.Merges != 1 {
		t.Fatalf("store must merge into the in-flight refill (merges %d, want 1)", l2.Merges)
	}
	if l2.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (the in-flight copy)", l2.Invalidations)
	}
	sys.Port(0).Drain(ready0 + 200)
	if sys.Port(0).Probe(addr) {
		t.Fatal("squashed refill must not install")
	}
	sys.Port(1).Drain(ready0 + 200)
	if !sys.Port(1).Probe(addr) {
		t.Fatal("the new owner's refill installs")
	}
	// Core 0's next access is a fresh miss, not an L1 hit on stale data.
	hits := sys.Port(0).Stats().Hits
	access(t, sys, 0, ready0+201, addr, false)
	if sys.Port(0).Stats().Hits != hits {
		t.Fatal("access after a squashed refill must miss")
	}
}

// TestBackInvalidationOnL2Eviction: the hierarchy is inclusive under
// coherence — an L2 conflict eviction invalidates the victim out of every
// L1 that holds it.
func TestBackInvalidationOnL2Eviction(t *testing.T) {
	sys := coherentPair(t, smallL2())
	const (
		lineA = uint64(0x0)
		lineB = uint64(64 * 1024) // same L2 set as A (64 KB, 1 bank), same tagged set different tag
	)
	now := access(t, sys, 1, 0, lineA, false) // port 1 holds A
	sys.Port(1).Drain(now + 1)
	access(t, sys, 0, now+1, lineB, false) // port 0's miss evicts A from the L2
	l2 := sys.L2()
	if l2.BackInvalidations != 1 {
		t.Fatalf("back-invalidations = %d, want 1 (the victim's sharer)", l2.BackInvalidations)
	}
	if l2.Invalidations != 0 {
		t.Fatalf("invalidations = %d, want 0 (inclusion victims count separately)", l2.Invalidations)
	}
	sys.Port(1).Drain(now + 2)
	if sys.Port(1).Probe(lineA) {
		t.Fatal("victim must be back-invalidated out of its sharer's L1 (inclusion)")
	}
}

// TestMergeIntoEvictedLineRevivesTag is the regression test for a
// directory-corruption bug: a line's L2 tag can be conflict-evicted while
// its refill is still in flight, and a later merge into that refill must
// reinstall the line (back-invalidating the interloper) instead of
// joining the sharer set of whatever line took the set over — which
// showed up as phantom sharing-driven invalidations between cores that
// never share a line.
func TestMergeIntoEvictedLineRevivesTag(t *testing.T) {
	l2cfg := smallL2()
	l2cfg.MissPenalty = 1000 // keep the first refill in flight throughout
	sys := coherentPair(t, l2cfg)
	const (
		lineB = uint64(0)
		lineA = uint64(64 * 1024) // same L2 set as B
	)
	access(t, sys, 0, 0, lineB, false) // port 0: refill of B in flight
	access(t, sys, 1, 1, lineA, false) // port 1: evicts B's tag mid-flight
	l2 := sys.L2()
	if l2.BackInvalidations != 1 {
		t.Fatalf("back-invalidations = %d, want 1 (B's in-flight copy)", l2.BackInvalidations)
	}
	// Port 0 retries B (its squashed MSHR is not a merge target in the
	// L1, so this is a fresh primary miss) and merges into the still
	// in-flight L2 refill: the merge must revive B's tag, not join A's
	// directory entry.
	access(t, sys, 0, 2, lineB, false)
	if l2.Merges != 1 {
		t.Fatalf("merges = %d, want 1", l2.Merges)
	}
	// Port 1 now upgrades A. Port 0 was never a sharer of A, so no
	// sharing-driven invalidation may fire (before the fix, port 0's
	// merge had landed in A's sharer set).
	access(t, sys, 1, 3, lineA, true)
	if l2.Invalidations != 0 {
		t.Fatalf("invalidations = %d, want 0 (phantom sharer from the merge)", l2.Invalidations)
	}
}

// TestNamespacedCoherenceSendsNoInvalidations: with namespaced address
// spaces no line is ever shared, so a coherent run models upgrades but
// zero invalidation traffic — the control the coherence experiment
// renders next to the sharing runs.
func TestNamespacedCoherenceSendsNoInvalidations(t *testing.T) {
	sys, err := NewSystem(l1cfg(), smallL2(), 2, false, CoherenceConfig{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for port := 0; port < 2; port++ {
		// Read then store the same VA on both cores: the store is a real
		// S→M upgrade, but with no remote sharer to invalidate.
		now = access(t, sys, port, now+1, 0x6000, false)
		now = access(t, sys, port, now+1, 0x6000, true)
	}
	l2 := sys.L2()
	if l2.Upgrades != 2 {
		t.Fatalf("upgrades = %d, want 2 (one store per core hit a clean copy)", l2.Upgrades)
	}
	if l2.Invalidations != 0 || l2.WritebackForwards != 0 {
		t.Fatalf("invalidations/forwards = %d/%d, want 0/0 on namespaced cores",
			l2.Invalidations, l2.WritebackForwards)
	}
}

// TestCoherenceRejectsTooManyCores: the sharer bitmask tracks 64 ports.
func TestCoherenceRejectsTooManyCores(t *testing.T) {
	if _, err := NewSystem(l1cfg(), DefaultL2Config(), 65, true, CoherenceConfig{Enabled: true}); err == nil {
		t.Fatal("coherent systems beyond 64 cores must be rejected")
	}
	if _, err := NewSystem(l1cfg(), DefaultL2Config(), 65, true, CoherenceConfig{}); err != nil {
		t.Fatalf("non-coherent systems have no core limit: %v", err)
	}
}
