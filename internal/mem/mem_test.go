package mem

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

func l1cfg() L1Config {
	return L1Config{
		SizeBytes:        16 * 1024,
		LineBytes:        32,
		HitLatency:       2,
		MissPenalty:      50,
		MSHRs:            8,
		BusCyclesPerLine: 4,
	}
}

// TestL1MatchesCacheInfinite pins the new L1 against the original
// cache.Cache in the paper's infinite-L2 mode on randomized access
// streams: every outcome, every acceptance decision and every counter
// must be identical.
func TestL1MatchesCacheInfinite(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := cache.New(cache.DefaultConfig())
		l1, err := NewL1(l1cfg(), nil)
		if err != nil {
			t.Fatal(err)
		}
		compareStreams(t, seed, c, l1)
		want := Stats{
			Accesses:     c.Accesses,
			Hits:         c.Hits,
			Misses:       c.Misses,
			Merges:       c.Merges,
			MSHRStalls:   c.MSHRStalls,
			Evictions:    c.Evictions,
			PeakInFlight: c.PeakInFlight,
		}
		if got := l1.Stats(); got != want {
			t.Fatalf("seed %d: counters diverge:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestL1MatchesCacheFiniteL2 pins the L1 + single-bank BankedL2 (bank bus
// disabled) against cache.Cache's private finite-L2 tag-array mode — the
// configuration the banked L2 subsumes.
func TestL1MatchesCacheFiniteL2(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		oldCfg := cache.DefaultConfig()
		oldCfg.L2Enabled = true
		oldCfg.L2SizeBytes = 64 * 1024
		oldCfg.L2MissPenalty = 100
		c := cache.New(oldCfg)

		l2, err := NewBankedL2(L2Config{
			Enabled:       true,
			SizeBytes:     64 * 1024,
			Banks:         1,
			HitPenalty:    oldCfg.MissPenalty,
			MissPenalty:   oldCfg.L2MissPenalty,
			BankBusCycles: 0,
		}, oldCfg.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := NewL1(l1cfg(), l2)
		if err != nil {
			t.Fatal(err)
		}
		compareStreams(t, seed, c, l1)
		if c.L2Hits != l2.Hits || c.L2Misses != l2.Misses {
			t.Fatalf("seed %d: L2 counters diverge: cache %d/%d vs banked %d/%d",
				seed, c.L2Hits, c.L2Misses, l2.Hits, l2.Misses)
		}
	}
}

// compareStreams drives both hierarchies with an identical randomized
// access stream — hot and cold lines, reads and writes, idle gaps — and
// fails on the first divergent outcome.
func compareStreams(t *testing.T, seed int64, c *cache.Cache, l1 *L1) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	for i := 0; i < 20_000; i++ {
		now += int64(rng.Intn(4))
		var addr uint64
		switch rng.Intn(3) {
		case 0: // hot resident set
			addr = uint64(rng.Intn(64)) * 32
		case 1: // L1-conflicting, L2-sized set
			addr = uint64(rng.Intn(2048)) * 32
		default: // cold streaming
			addr = uint64(1<<24) + uint64(i)*32
		}
		write := rng.Intn(4) == 0
		wantOut, wantOK := c.Access(now, addr, write)
		gotOut, gotOK := l1.Access(now, addr, write)
		if wantOut != gotOut || wantOK != gotOK {
			t.Fatalf("seed %d access %d (now %d addr %#x write %v): cache (%+v,%v) vs L1 (%+v,%v)",
				seed, i, now, addr, write, wantOut, wantOK, gotOut, gotOK)
		}
	}
}

// TestDirtyEvictionCost: writing a line and then conflicting it out pays
// the write-back — the eviction is counted, the victim lands in the L2,
// and the L1 bus time it reserves delays the refill behind it (visible
// with penalties small enough not to dominate the bus).
func TestDirtyEvictionCost(t *testing.T) {
	cfg := l1cfg()
	const conflictStride = 16 * 1024 // same L1 set, different tag
	evict := func(write bool) (refillAt int64, l1 *L1, l2 *BankedL2) {
		t.Helper()
		l2, err := NewBankedL2(L2Config{Enabled: true, SizeBytes: 64 * 1024, Banks: 1,
			HitPenalty: 2, MissPenalty: 4, BankBusCycles: 0}, cfg.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		l1, err = NewL1(cfg, l2)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := l1.Access(0, 0, write)
		conf, _ := l1.Access(out.ReadyAt+100, conflictStride, false)
		return conf.ReadyAt - (out.ReadyAt + 100), l1, l2
	}
	dirtyDelta, l1, l2 := evict(true)
	if got := l1.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if l2.WriteBacks != 1 {
		t.Fatalf("L2 write-backs = %d, want 1", l2.WriteBacks)
	}
	cleanDelta, _, _ := evict(false)
	if dirtyDelta <= cleanDelta {
		t.Fatalf("dirty eviction must cost bus time: dirty refill +%d vs clean +%d", dirtyDelta, cleanDelta)
	}
	// The written-back victim is an L2 hit on re-fetch (inclusive L2).
	refetch, _ := l1.Access(1_000_000, 0, false)
	if refetch.Hit {
		t.Fatal("victim must have left the L1")
	}
	if l2.Hits != 1 {
		t.Fatalf("re-fetch of the written-back victim: L2 hits = %d, want 1", l2.Hits)
	}
}

// TestL2ConflictEviction: two lines mapping to the same L2 set evict each
// other — the second fetch of the first line misses both levels again.
func TestL2ConflictEviction(t *testing.T) {
	cfg := l1cfg()
	const l2Size = 64 * 1024
	l2, err := NewBankedL2(L2Config{Enabled: true, SizeBytes: l2Size, Banks: 1,
		HitPenalty: 20, MissPenalty: 100, BankBusCycles: 0}, cfg.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewL1(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	step := func(addr uint64) {
		out, ok := l1.Access(now, addr, false)
		if !ok {
			t.Fatalf("unexpected MSHR stall at %#x", addr)
		}
		now = out.ReadyAt + 1
	}
	step(0)          // L2 miss, installs set 0
	step(l2Size)     // same L2 set, different tag: L2 miss, evicts line 0 from L2
	step(16 * 1024)  // conflict line 0 out of the L1 (same L1 set)
	step(2 * l2Size) // conflict the L1 again so line 0 is long gone
	step(0)          // L1 miss AND L2 miss again: the L2 copy was evicted
	if l2.Misses != 5 || l2.Hits != 0 {
		t.Fatalf("L2 hits/misses = %d/%d, want 0/5 (conflict eviction)", l2.Hits, l2.Misses)
	}
}

// TestBankBusConflictsDelayRefills: with one bank and a slow bank bus,
// back-to-back misses queue behind each other's line transfers and the
// conflicts are counted.
func TestBankBusConflictsDelayRefills(t *testing.T) {
	cfg := l1cfg()
	l2, err := NewBankedL2(L2Config{Enabled: true, SizeBytes: 64 * 1024, Banks: 1,
		HitPenalty: 2, MissPenalty: 4, BankBusCycles: 40}, cfg.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewL1(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := l1.Access(0, 0, false)
	b, _ := l1.Access(0, 1<<20, false)
	if l2.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", l2.Conflicts)
	}
	if want := int64(80); b.ReadyAt < want {
		t.Fatalf("second refill at %d, want >= %d (queued behind the first transfer)", b.ReadyAt, want)
	}
	if b.ReadyAt <= a.ReadyAt {
		t.Fatalf("refills must serialize on the bank bus: %d then %d", a.ReadyAt, b.ReadyAt)
	}
}

// TestCrossCoreRefillMerge: two L1s sharing one L2 in the same address
// space — a second core fetching a line already on its way from memory
// merges into the in-flight refill instead of paying a second full miss.
func TestCrossCoreRefillMerge(t *testing.T) {
	cfg := l1cfg()
	l2, err := NewBankedL2(L2Config{Enabled: true, SizeBytes: 64 * 1024, Banks: 2,
		HitPenalty: 20, MissPenalty: 100, BankBusCycles: 4}, cfg.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewL1(cfg, l2)
	b, _ := NewL1(cfg, l2)
	outA, _ := a.Access(0, 0x1000, false)
	outB, _ := b.Access(1, 0x1000, false)
	if l2.Merges != 1 || l2.Misses != 1 {
		t.Fatalf("merges/misses = %d/%d, want 1/1", l2.Merges, l2.Misses)
	}
	// The merged core cannot complete before the refill it joined, and is
	// far cheaper than a second full miss.
	if outB.ReadyAt > outA.ReadyAt+int64(cfg.BusCyclesPerLine)+4 {
		t.Fatalf("merged fetch at %d vs refill at %d: should ride the in-flight refill", outB.ReadyAt, outA.ReadyAt)
	}
}

// TestSystemNamespacesCores: by default, ports of a System run identical
// virtual address spaces but must not alias in the shared L2; in
// shared-address-space mode the same access pattern shares lines and
// merges refills.
func TestSystemNamespacesCores(t *testing.T) {
	l2geom := L2Config{Enabled: true, SizeBytes: 64 * 1024, Banks: 4,
		HitPenalty: 20, MissPenalty: 100, BankBusCycles: 0}
	sys, err := NewSystem(l1cfg(), l2geom, 2, false, CoherenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Port(0).Access(0, 0x2000, false)
	sys.Port(1).Access(0, 0x2000, false)
	l2 := sys.L2()
	if l2.Misses != 2 || l2.Merges != 0 {
		t.Fatalf("same VA on two cores: L2 misses/merges = %d/%d, want 2/0 (namespaced)", l2.Misses, l2.Merges)
	}
	if got := sys.Stats().Accesses; got != 2 {
		t.Fatalf("system accesses = %d, want 2", got)
	}

	shared, err := NewSystem(l1cfg(), l2geom, 2, true, CoherenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	shared.Port(0).Access(0, 0x2000, false)
	shared.Port(1).Access(0, 0x2000, false)
	if l2 := shared.L2(); l2.Misses != 1 || l2.Merges != 1 {
		t.Fatalf("shared address space: L2 misses/merges = %d/%d, want 1/1 (refill merged)", l2.Misses, l2.Merges)
	}
}

// TestNamespacedCoresDoNotEvictEachOther is the regression test for the
// L2 index hash: the namespace bits sit above the raw bank/set index
// bits, so without hashing them back in, cores running the same virtual
// addresses would land in the same direct-mapped set and evict each
// other on every fetch (zero L2 hits in every lockstep run).
func TestNamespacedCoresDoNotEvictEachOther(t *testing.T) {
	sys, err := NewSystem(l1cfg(), L2Config{Enabled: true, SizeBytes: 256 * 1024, Banks: 4,
		HitPenalty: 20, MissPenalty: 100, BankBusCycles: 0}, 2, false, CoherenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const conflictStride = 16 * 1024 // same L1 set as addr 0, different tag
	now := int64(0)
	step := func(port int, addr uint64) {
		out, ok := sys.Port(port).Access(now, addr, false)
		if !ok {
			t.Fatalf("unexpected MSHR stall (port %d addr %#x)", port, addr)
		}
		now = out.ReadyAt + 1
	}
	// Both cores install line 0 in the L2, then conflict it out of their
	// L1s, then re-fetch it: the re-fetches must be L2 hits — core 1's
	// install must not have evicted core 0's line.
	step(0, 0)
	step(1, 0)
	step(0, conflictStride)
	step(1, conflictStride)
	step(0, 0)
	step(1, 0)
	if l2 := sys.L2(); l2.Hits != 2 {
		t.Fatalf("re-fetches hit %d times, want 2: namespaced cores alias in the L2 index (misses %d)",
			l2.Hits, l2.Misses)
	}
}

// TestTimeMustNotGoBackwards: like cache.Cache, the mem hierarchy asserts
// monotonic cycle numbers instead of silently corrupting refill state.
func TestTimeMustNotGoBackwards(t *testing.T) {
	t.Run("L1", func(t *testing.T) {
		l1, _ := NewL1(l1cfg(), nil)
		l1.Access(100, 0x10000, false)
		defer func() {
			if recover() == nil {
				t.Error("regressing time must panic")
			}
		}()
		l1.Access(50, 0x20000, false)
	})
	t.Run("L2", func(t *testing.T) {
		l2, _ := NewBankedL2(L2Config{Enabled: true, SizeBytes: 64 * 1024, Banks: 1,
			HitPenalty: 20, MissPenalty: 100}, 32)
		l2.Fetch(100, 1)
		defer func() {
			if recover() == nil {
				t.Error("regressing time must panic")
			}
		}()
		l2.Fetch(50, 2)
	})
}

// TestBadConfigsRejected: geometry errors surface at construction.
func TestBadConfigsRejected(t *testing.T) {
	if _, err := NewL1(L1Config{SizeBytes: 16384, LineBytes: 24, MSHRs: 8}, nil); err == nil {
		t.Error("non-power-of-two line size must be rejected")
	}
	if _, err := NewBankedL2(L2Config{SizeBytes: 100, Banks: 3, HitPenalty: 2, MissPenalty: 4}, 32); err == nil {
		t.Error("unaligned L2 size must be rejected")
	}
	if _, err := NewBankedL2(L2Config{SizeBytes: 64 * 1024, Banks: 1, HitPenalty: 10, MissPenalty: 5}, 32); err == nil {
		t.Error("miss penalty below hit penalty must be rejected")
	}
	if _, err := NewSystem(l1cfg(), L2Config{SizeBytes: 64 * 1024, Banks: 1, HitPenalty: 2, MissPenalty: 4}, 0, false, CoherenceConfig{}); err == nil {
		t.Error("zero cores must be rejected")
	}
}
