// Package mem is the shared memory hierarchy extracted from internal/cache
// and the pipeline: a Memory interface the pipeline drives one port of,
// per-core lockup-free L1 caches (L1), a banked finite shared L2 with
// per-bank bus occupancy and MSHR-style refill tracking (BankedL2), and a
// System that wires N L1 ports over one shared L2 for the multi-core
// runner.
//
// The paper's own configuration — one core, lockup-free L1 over an
// infinite L2 — stays on internal/cache as the single-core fast path;
// Single adapts it to the Memory interface so the pipeline is agnostic.
// The L1 here is a line-for-line port of cache.Cache with the next level
// abstracted, and a differential test pins the two against each other on
// randomized access streams.
//
// When a System is built coherent, the BankedL2 additionally runs a
// directory under a pluggable invalidation protocol (protocol.go: MSI,
// MESI or MOESI behind the Protocol interface) over a pluggable sharer
// representation (directory.go: full-map bitmask or limited pointers
// behind the Directory interface): stores take ownership through an
// upgrade path that invalidates remote L1 copies (including refills
// still in flight), remote dirty lines are forwarded through the
// per-bank bus before a reader or new owner proceeds, and L2 evictions
// back-invalidate the victim's sharers so the hierarchy stays inclusive.
// Every coherence action sits behind the coherent flag — a non-coherent
// hierarchy is bit-for-bit the pre-coherence one, and the default
// MSI/full-map selection is bit-for-bit the hardwired PR-5 directory
// (golden-pinned) — and all transitions happen synchronously at access
// time, so the lockstep multi-core runner keeps the directory
// deterministic. docs/ARCHITECTURE.md has the protocol tables.
//
// The shared types here are the //vpr:memstate surface of the parallel
// stepper's determinism contract: vplint's phasepure analyzer requires
// every mutating entry point to carry //vpr:memphase and bans calls into
// them from outside the gate-serialized memory phase (docs/LINTING.md).
// The package is also determinism-checked (detsource).
//
//vpr:detpkg
package mem

import "repro/internal/cache"

// Memory is one port into the memory hierarchy, as seen by a core's
// execute stage. Access performs a load or store at the given cycle;
// Drain installs every refill completed by the given cycle (accesses
// drain lazily, so calling it is only needed to settle state for
// inspection); Stats snapshots the counters.
//
// Callers must present non-decreasing cycle numbers; implementations
// panic on time going backwards rather than silently corrupting refill
// state.
//
//vpr:memstate
type Memory interface {
	// Access performs one load or store — the memory phase's mutating
	// entry point.
	//
	//vpr:memphase
	Access(now int64, addr uint64, write bool) (cache.Outcome, bool)
	// Drain settles matured refills — mutating, memory phase only.
	//
	//vpr:memphase
	Drain(now int64)
	// Stats snapshots the counters without touching hierarchy state.
	//
	//vpr:phaseexempt read-only snapshot; safe from any phase
	Stats() Stats
}

// Stats are the counters a Memory accumulates. The L1 fields mirror
// cache.Cache's; the L2 fields describe the next level — the private
// finite L2 of the single-core fast path, or a core's share of the banked
// shared L2 (zero on L1 ports of a System: the shared counters are
// reported once, by the System, so aggregates never double-count).
//
//vpr:stats
type Stats struct {
	// L1.
	Accesses     int64
	Hits         int64
	Misses       int64 // primary misses (MSHR allocations)
	Merges       int64 // secondary misses folded into an MSHR
	MSHRStalls   int64 // accesses rejected because every MSHR was busy
	Evictions    int64 // dirty lines written back
	PeakInFlight int

	// SilentUpgrades counts stores that found a MESI/MOESI Exclusive
	// copy and took ownership without any directory traffic — the E
	// state's whole payoff. Zero under MSI (it has no E state).
	SilentUpgrades int64

	// L2.
	L2Fetches    int64
	L2Hits       int64
	L2Misses     int64
	L2Merges     int64 // fetches folded into an in-flight refill (cross-core)
	L2WriteBacks int64
	L2Conflicts  int64 // fetches/write-backs that found the bank bus busy

	// Coherence (zero unless the System was built coherent).
	L2Invalidations     int64 // sharing-driven invalidation messages to remote L1s
	L2BackInvalidations int64 // inclusion: L2 victims invalidated out of sharer L1s
	L2Upgrades          int64 // S→M ownership requests for present lines
	L2WritebackForwards int64 // dirty remote copies forwarded through a bank

	// Protocol/directory variants (zero under the default MSI/full-map
	// selection, which keeps the golden pins byte-identical).
	L2OwnerForwards int64 // MOESI: dirty lines forwarded cache-to-cache, kept Owned
	L2DirOverflows  int64 // limited pointers: sets that exhausted their budget
	L2DirBroadcasts int64 // limited pointers: invalidation rounds degraded to broadcast
}

// Add accumulates other into s (PeakInFlight takes the maximum).
//
//vpr:statsink Stats
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Merges += other.Merges
	s.MSHRStalls += other.MSHRStalls
	s.Evictions += other.Evictions
	if other.PeakInFlight > s.PeakInFlight {
		s.PeakInFlight = other.PeakInFlight
	}
	s.SilentUpgrades += other.SilentUpgrades
	s.L2Fetches += other.L2Fetches
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.L2Merges += other.L2Merges
	s.L2WriteBacks += other.L2WriteBacks
	s.L2Conflicts += other.L2Conflicts
	s.L2Invalidations += other.L2Invalidations
	s.L2BackInvalidations += other.L2BackInvalidations
	s.L2Upgrades += other.L2Upgrades
	s.L2WritebackForwards += other.L2WritebackForwards
	s.L2OwnerForwards += other.L2OwnerForwards
	s.L2DirOverflows += other.L2DirOverflows
	s.L2DirBroadcasts += other.L2DirBroadcasts
}

// Single adapts the original single-core cache.Cache (infinite L2, or the
// private finite-L2 tag-array approximation) to the Memory interface —
// the paper's configuration and the default fast path.
type Single struct{ C *cache.Cache }

// NewSingle wraps an existing cache.
func NewSingle(c *cache.Cache) Single { return Single{C: c} }

// Access implements Memory.
//
//vpr:hotpath
func (s Single) Access(now int64, addr uint64, write bool) (cache.Outcome, bool) {
	return s.C.Access(now, addr, write)
}

// Drain implements Memory.
//
//vpr:hotpath
func (s Single) Drain(now int64) { s.C.Drain(now) }

// Stats implements Memory.
func (s Single) Stats() Stats {
	return Stats{
		Accesses:     s.C.Accesses,
		Hits:         s.C.Hits,
		Misses:       s.C.Misses,
		Merges:       s.C.Merges,
		MSHRStalls:   s.C.MSHRStalls,
		Evictions:    s.C.Evictions,
		PeakInFlight: s.C.PeakInFlight,
		L2Fetches:    s.C.L2Hits + s.C.L2Misses,
		L2Hits:       s.C.L2Hits,
		L2Misses:     s.C.L2Misses,
	}
}
