package mem

import "fmt"

// State is a coherence state in the MOESI lattice. Every protocol uses a
// subset: MSI runs {I,S,M}, MESI adds Exclusive, MOESI adds Owned. The
// states describe one L1's copy of a line; the directory's view (sharer
// set + owner pointer) is deliberately coarser — it cannot distinguish E
// from M (the E→M upgrade is silent) and records both as "owner".
type State uint8

const (
	// Invalid: no copy.
	Invalid State = iota
	// Shared: clean copy, other copies may exist; writes need ownership.
	Shared
	// Exclusive: clean copy, provably sole; a write upgrades to Modified
	// silently, with no directory traffic (MESI/MOESI only).
	Exclusive
	// Owned: dirty copy with readers: the holder forwards the line
	// cache-to-cache on remote reads instead of writing it back, and
	// stays responsible for the data (MOESI only).
	Owned
	// Modified: dirty sole copy.
	Modified
)

// String renders the customary one-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether a copy in this state holds data the L2 does not.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// Event is one stimulus a cached copy can receive. Local events come from
// the owning core's access stream; remote events arrive through the
// directory from other cores' gated memory phases.
type Event uint8

const (
	// EvLocalRead: the core reads the line (hit, or the fill of a miss).
	EvLocalRead Event = iota
	// EvLocalWrite: the core writes the line (hit, merged store, or the
	// fill of a write miss).
	EvLocalWrite
	// EvWriteback: the L1 writes the dirty victim back to the L2 on a
	// conflict miss. The copy is downgraded, not dropped: it stays
	// readable (clean) until the incoming refill replaces it.
	EvWriteback
	// EvReplace: the incoming refill overwrites the victim's frame; the
	// copy vanishes silently.
	EvReplace
	// EvRemoteRead: another core read the line and the directory
	// consulted this copy as its owner.
	EvRemoteRead
	// EvRemoteWrite: another core claimed ownership; this copy (and any
	// refill of it still in flight) is invalidated.
	EvRemoteWrite
	// EvRecall: the L2 evicted the line and back-invalidated it out of
	// every sharer (inclusion).
	EvRecall
)

// Events lists every event, for table enumeration.
var Events = []Event{EvLocalRead, EvLocalWrite, EvWriteback, EvReplace, EvRemoteRead, EvRemoteWrite, EvRecall}

// String names the event.
func (e Event) String() string {
	switch e {
	case EvLocalRead:
		return "LocalRead"
	case EvLocalWrite:
		return "LocalWrite"
	case EvWriteback:
		return "Writeback"
	case EvReplace:
		return "Replace"
	case EvRemoteRead:
		return "RemoteRead"
	case EvRemoteWrite:
		return "RemoteWrite"
	case EvRecall:
		return "Recall"
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Guard conditions a transition on the directory's sharer view at the
// moment of the event. GuardNone transitions apply unconditionally;
// GuardSole/GuardShared split one (state, event) pair on whether any
// other core is recorded for the line — the MESI/MOESI read-fill choice
// between Exclusive and Shared.
type Guard uint8

const (
	GuardNone Guard = iota
	GuardSole
	GuardShared
)

// String names the guard.
func (g Guard) String() string {
	switch g {
	case GuardNone:
		return "-"
	case GuardSole:
		return "sole"
	case GuardShared:
		return "shared"
	}
	return fmt.Sprintf("Guard(%d)", uint8(g))
}

// Transition is one declared edge of a protocol's state machine. The
// conformance harness (internal/mem/conftest) checks the declared table
// two ways: statically, that the table is well-formed and consistent with
// the protocol's decision hooks; and dynamically, that every transition
// the hierarchy actually performs appears in the table.
type Transition struct {
	From  State
	Ev    Event
	Guard Guard
	To    State
}

// ForwardAction is what a remote read asks of the line's current owner.
type ForwardAction uint8

const (
	// ForwardNone: the owner's copy is clean (or gone); the L2's data is
	// current and no transfer rides the bus.
	ForwardNone ForwardAction = iota
	// ForwardWriteback: the owner forwards its dirty line through the
	// bank and the L2 absorbs it — the MSI/MESI M→S downgrade. Counted
	// as a WritebackForward.
	ForwardWriteback
	// ForwardOwner: the owner forwards its dirty line cache-to-cache and
	// keeps it dirty (M/O→O) — MOESI's Owned state. The L2 is not
	// updated. Counted as an OwnerForward.
	ForwardOwner
)

// Protocol is a pluggable invalidation-based coherence protocol over the
// banked L2's directory. The generic controller (BankedL2 + L1) owns all
// mechanism — directory bookkeeping, bus reservations, invalidation
// fan-out, refill squashing — and consults the protocol only for policy:
// what state a read fill is granted, whether a write to a held copy must
// ask the directory for ownership, and how the owner of a line reacts to
// a remote read. Transitions() declares the full state machine those
// hooks induce, which the conformance harness holds the implementation
// to.
type Protocol interface {
	// Name is the registry key ("msi", "mesi", "moesi").
	Name() string
	// Description is one line for CLI help.
	Description() string
	// States lists the states the protocol uses, Invalid first.
	States() []State
	// Transitions declares the complete (state × event) machine. A
	// (state, event) pair with no entry is declared impossible: the
	// conformance harness fails if the hierarchy ever performs it.
	Transitions() []Transition

	// ReadFillState is the state granted to a read miss or read join;
	// sole reports whether the directory records no other copy.
	ReadFillState(sole bool) State
	// NeedsOwnership reports whether a write while holding st must claim
	// ownership through the directory before dirtying the copy; false
	// means the write upgrades silently (Exclusive) or already owns the
	// line (Modified).
	NeedsOwnership(st State) bool
	// OnRemoteRead maps the consulted owner's local state to its next
	// state and the forwarding the controller must model.
	OnRemoteRead(st State) (State, ForwardAction)
}

// msiProtocol is the PR-5 protocol, unchanged: no Exclusive, no Owned.
// Its owner pointer is only ever set for Modified copies, which are dirty
// by construction, so a remote read forwards unconditionally — exactly
// the hardwired dirJoin path it replaced, byte-identical by golden pin.
type msiProtocol struct{}

func (msiProtocol) Name() string        { return "msi" }
func (msiProtocol) Description() string { return "MSI: write-invalidate baseline (PR-5 behaviour)" }
func (msiProtocol) States() []State     { return []State{Invalid, Shared, Modified} }

func (msiProtocol) ReadFillState(bool) State { return Shared }

func (msiProtocol) NeedsOwnership(st State) bool { return st == Shared || st == Owned }

func (msiProtocol) OnRemoteRead(State) (State, ForwardAction) {
	return Shared, ForwardWriteback
}

func (msiProtocol) Transitions() []Transition {
	return []Transition{
		{Invalid, EvLocalRead, GuardNone, Shared},
		{Invalid, EvLocalWrite, GuardNone, Modified},
		{Invalid, EvRemoteRead, GuardNone, Invalid},
		{Invalid, EvRemoteWrite, GuardNone, Invalid},
		{Invalid, EvRecall, GuardNone, Invalid},
		{Shared, EvLocalRead, GuardNone, Shared},
		{Shared, EvLocalWrite, GuardNone, Modified},
		{Shared, EvReplace, GuardNone, Invalid},
		{Shared, EvRemoteRead, GuardNone, Shared},
		{Shared, EvRemoteWrite, GuardNone, Invalid},
		{Shared, EvRecall, GuardNone, Invalid},
		{Modified, EvLocalRead, GuardNone, Modified},
		{Modified, EvLocalWrite, GuardNone, Modified},
		{Modified, EvWriteback, GuardNone, Shared},
		{Modified, EvReplace, GuardNone, Invalid},
		{Modified, EvRemoteRead, GuardNone, Shared},
		{Modified, EvRemoteWrite, GuardNone, Invalid},
		{Modified, EvRecall, GuardNone, Invalid},
	}
}

// mesiProtocol adds the Exclusive state: a read that finds no other copy
// is granted E, and the first write to an E copy upgrades to M silently —
// no Upgrade request, no invalidation round. The directory records an E
// grant as "owner" (it cannot see the silent upgrade), and a remote read
// asks the owner port for its actual state: a still-clean E downgrades to
// S for free, a silently-upgraded M forwards like MSI.
type mesiProtocol struct{}

func (mesiProtocol) Name() string { return "mesi" }
func (mesiProtocol) Description() string {
	return "MESI: Exclusive state makes private read-then-write upgrade silently"
}
func (mesiProtocol) States() []State { return []State{Invalid, Shared, Exclusive, Modified} }

func (mesiProtocol) ReadFillState(sole bool) State {
	if sole {
		return Exclusive
	}
	return Shared
}

func (mesiProtocol) NeedsOwnership(st State) bool { return st == Shared || st == Owned }

func (mesiProtocol) OnRemoteRead(st State) (State, ForwardAction) {
	switch st {
	case Modified:
		return Shared, ForwardWriteback
	case Exclusive, Shared:
		return Shared, ForwardNone
	}
	// The owner lost its copy (silent clean drop, or the dirty-replace
	// artifact): nothing to downgrade, the L2 serves the reader.
	return Invalid, ForwardNone
}

func (mesiProtocol) Transitions() []Transition {
	return append(exclusiveEdges(), []Transition{
		{Invalid, EvLocalRead, GuardSole, Exclusive},
		{Invalid, EvLocalRead, GuardShared, Shared},
		{Invalid, EvLocalWrite, GuardNone, Modified},
		{Invalid, EvRemoteRead, GuardNone, Invalid},
		{Invalid, EvRemoteWrite, GuardNone, Invalid},
		{Invalid, EvRecall, GuardNone, Invalid},
		{Shared, EvLocalRead, GuardNone, Shared},
		{Shared, EvLocalWrite, GuardNone, Modified},
		{Shared, EvReplace, GuardNone, Invalid},
		{Shared, EvRemoteRead, GuardNone, Shared},
		{Shared, EvRemoteWrite, GuardNone, Invalid},
		{Shared, EvRecall, GuardNone, Invalid},
		{Modified, EvLocalRead, GuardNone, Modified},
		{Modified, EvLocalWrite, GuardNone, Modified},
		{Modified, EvWriteback, GuardNone, Shared},
		{Modified, EvReplace, GuardNone, Invalid},
		{Modified, EvRemoteRead, GuardNone, Shared},
		{Modified, EvRemoteWrite, GuardNone, Invalid},
		{Modified, EvRecall, GuardNone, Invalid},
	}...)
}

// exclusiveEdges is the Exclusive state's machine, shared by MESI and
// MOESI: silent E→M on a local write, free E→S downgrade on a remote
// read, silent clean drop on replacement.
func exclusiveEdges() []Transition {
	return []Transition{
		{Exclusive, EvLocalRead, GuardNone, Exclusive},
		{Exclusive, EvLocalWrite, GuardNone, Modified},
		{Exclusive, EvReplace, GuardNone, Invalid},
		{Exclusive, EvRemoteRead, GuardNone, Shared},
		{Exclusive, EvRemoteWrite, GuardNone, Invalid},
		{Exclusive, EvRecall, GuardNone, Invalid},
	}
}

// moesiProtocol adds the Owned state on top of MESI: the owner of a dirty
// line answers a remote read by forwarding the line cache-to-cache and
// keeping it dirty (M/O→O) instead of writing it back to the L2 — the
// writeback-forward traffic MSI pays per read of a dirty line becomes an
// OwnerForward, and the L2 is only updated when the owner is finally
// invalidated or evicts the line.
type moesiProtocol struct{}

func (moesiProtocol) Name() string { return "moesi" }
func (moesiProtocol) Description() string {
	return "MOESI: Owned state forwards dirty lines cache-to-cache without L2 writebacks"
}
func (moesiProtocol) States() []State {
	return []State{Invalid, Shared, Exclusive, Owned, Modified}
}

func (moesiProtocol) ReadFillState(sole bool) State {
	if sole {
		return Exclusive
	}
	return Shared
}

func (moesiProtocol) NeedsOwnership(st State) bool { return st == Shared || st == Owned }

func (moesiProtocol) OnRemoteRead(st State) (State, ForwardAction) {
	switch st {
	case Modified, Owned:
		return Owned, ForwardOwner
	case Exclusive, Shared:
		return Shared, ForwardNone
	}
	return Invalid, ForwardNone
}

func (moesiProtocol) Transitions() []Transition {
	return append(exclusiveEdges(), []Transition{
		{Invalid, EvLocalRead, GuardSole, Exclusive},
		{Invalid, EvLocalRead, GuardShared, Shared},
		{Invalid, EvLocalWrite, GuardNone, Modified},
		{Invalid, EvRemoteRead, GuardNone, Invalid},
		{Invalid, EvRemoteWrite, GuardNone, Invalid},
		{Invalid, EvRecall, GuardNone, Invalid},
		{Shared, EvLocalRead, GuardNone, Shared},
		{Shared, EvLocalWrite, GuardNone, Modified},
		{Shared, EvReplace, GuardNone, Invalid},
		{Shared, EvRemoteRead, GuardNone, Shared},
		{Shared, EvRemoteWrite, GuardNone, Invalid},
		{Shared, EvRecall, GuardNone, Invalid},
		{Owned, EvLocalRead, GuardNone, Owned},
		{Owned, EvLocalWrite, GuardNone, Modified},
		{Owned, EvWriteback, GuardNone, Shared},
		{Owned, EvReplace, GuardNone, Invalid},
		{Owned, EvRemoteRead, GuardNone, Owned},
		{Owned, EvRemoteWrite, GuardNone, Invalid},
		{Owned, EvRecall, GuardNone, Invalid},
		{Modified, EvLocalRead, GuardNone, Modified},
		{Modified, EvLocalWrite, GuardNone, Modified},
		{Modified, EvWriteback, GuardNone, Shared},
		{Modified, EvReplace, GuardNone, Invalid},
		{Modified, EvRemoteRead, GuardNone, Owned},
		{Modified, EvRemoteWrite, GuardNone, Invalid},
		{Modified, EvRecall, GuardNone, Invalid},
	}...)
}

// protocolEntry pairs a registry name with its protocol; the name is the
// registry key and must match the protocol's own Name().
type protocolEntry struct {
	name string
	p    Protocol
}

// protocols mirrors the policy/preset registries: enumerable, looked up
// by name, default (MSI, the pinned PR-5 behaviour) first.
//
//vpr:registry coherence-protocols
var protocols = []protocolEntry{
	{"msi", msiProtocol{}},
	{"mesi", mesiProtocol{}},
	{"moesi", moesiProtocol{}},
}

// DefaultProtocol is the protocol an empty selection resolves to.
const DefaultProtocol = "msi"

// Protocols lists the registered protocols, default first.
//
//vpr:lookup coherence-protocols
func Protocols() []Protocol {
	out := make([]Protocol, len(protocols))
	for i, e := range protocols {
		out[i] = e.p
	}
	return out
}

// ProtocolByName resolves a protocol name; the empty string selects the
// default (MSI).
//
//vpr:lookup coherence-protocols
func ProtocolByName(name string) (Protocol, error) {
	if name == "" {
		name = DefaultProtocol
	}
	for _, e := range protocols {
		if e.name == name {
			return e.p, nil
		}
	}
	return nil, fmt.Errorf("mem: unknown coherence protocol %q (have msi, mesi, moesi)", name)
}
