package mem

import (
	"fmt"
)

// L2Config sizes the banked, finite, shared L2. It subsumes the old
// cache.Config L2Enabled tag-array approximation: with Banks=1,
// BankBusCycles=0, HitPenalty equal to the L1's MissPenalty and
// MissPenalty equal to the old L2MissPenalty, the timing is cycle-exact
// with that mode (a differential test pins this).
//
//vpr:cachekey
type L2Config struct {
	// Enabled gates the shared-L2 path of a multi-core configuration;
	// disabled, every core keeps a private L1 over an infinite L2 (the
	// paper's machine).
	Enabled bool

	SizeBytes int
	Banks     int // lines are interleaved across banks by line address

	// HitPenalty is the cost (beyond the L1 hit latency) of an L1 miss
	// that hits the L2; MissPenalty the cost of missing both levels.
	HitPenalty  int
	MissPenalty int

	// BankBusCycles is how long each line transfer (refill or write-back)
	// occupies the bank's bus; concurrent cores touching the same bank
	// queue behind each other. 0 disables conflict modelling. With
	// coherence enabled, invalidation messages and forwarded write-backs
	// ride the same per-bank bus.
	BankBusCycles int
}

// DefaultL2Config is a 256 KB, 4-bank shared L2: L2 hits cost 20 cycles
// (the paper's fast-memory footnote), misses 100, and each line transfer
// holds a bank's bus for 4 cycles as on the L1 bus.
func DefaultL2Config() L2Config {
	return L2Config{
		Enabled:       true,
		SizeBytes:     256 * 1024,
		Banks:         4,
		HitPenalty:    20,
		MissPenalty:   100,
		BankBusCycles: 4,
	}
}

// validate checks the L2 against the line size it must interleave.
func (c L2Config) validate(lineBytes int) error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("mem: L2 needs at least one bank, have %d", c.Banks)
	case c.SizeBytes <= 0 || c.SizeBytes%(lineBytes*c.Banks) != 0:
		return fmt.Errorf("mem: L2 size %d not a positive multiple of %d banks × %dB lines",
			c.SizeBytes, c.Banks, lineBytes)
	case c.HitPenalty < 0 || c.MissPenalty < c.HitPenalty:
		return fmt.Errorf("mem: L2 miss penalty %d below hit penalty %d", c.MissPenalty, c.HitPenalty)
	case c.BankBusCycles < 0:
		return fmt.Errorf("mem: negative L2 bank bus cycles")
	}
	return nil
}

// refill tracks one line on its way from memory into the L2 — the
// MSHR-style merge window: another core fetching the same line before
// readyAt joins the in-flight refill instead of paying a second full
// miss.
type refill struct {
	lineAddr uint64
	readyAt  int64
}

// Each bank's directory (bank.dir) tracks, per set and valid for the line
// the set's tag currently names, which L1 ports (conservatively) hold a
// copy and which single port — if any — was granted it exclusively
// (Exclusive or Modified; the grant is recorded as "owner" because the
// E→M upgrade is silent). The invariant maintained by every transition is
// owner ∈ sharers, and owner >= 0 implies no other sharer holds the line
// under MSI (MESI/MOESI grant E only when sole). Sharer information is
// conservative: a clean line silently dropped by an L1 conflict eviction
// stays recorded, and a later invalidation of that core is a
// counted-but-no-op message — exactly how imprecise hardware directories
// behave. The representation behind the Directory interface is pluggable
// (full-map bitmask or limited pointers; see directory.go).
type bank struct {
	tags      []uint64 // tag per set, +1 (0 = invalid); direct-mapped
	dir       Directory
	busFreeAt int64
	inflight  []refill
}

// BankedL2 is the finite shared L2: direct-mapped tags interleaved across
// banks by line address, a per-bank bus whose occupancy delays concurrent
// refills, and per-bank in-flight refill tracking that merges same-line
// fetches from different cores. It is driven by the L1s in front of it
// and works entirely in line-address space.
//
// With coherence enabled (System wires it when MulticoreConfig.Coherence
// is set), each bank additionally carries a directory — sharer tracking
// plus exclusive-owner pointer, behind the pluggable Directory interface
// — and the L2 drives invalidation and downgrade messages into the
// registered L1 ports under the selected Protocol (MSI, MESI or MOESI):
// stores take ownership through an upgrade path that invalidates remote
// copies, remote dirty lines are forwarded through the bank bus before a
// reader or new owner proceeds (written back to the L2, or cache-to-cache
// under MOESI's Owned state), and L2 evictions back-invalidate the
// victim's sharers so the hierarchy stays inclusive. Every coherence
// action is behind the coherent flag: a non-coherent BankedL2 is
// bit-for-bit the PR-4 hierarchy, and the default MSI protocol over the
// full-map directory is bit-for-bit the PR-5 one (golden-pinned).
//
// The L2 is not internally synchronized. It relies on its drivers —
// either the serial lockstep loop or the parallel stepper's memory gate
// (pipeline/parallel.go) — to present requests one at a time in global
// (cycle, core-index) order, which is also what makes the shared state
// deterministic. With strict ordering enabled (System.EnableStrictCoreOrder)
// that contract is asserted: same-cycle requests must arrive from
// non-decreasing core indices.
//
//vpr:memstate
type BankedL2 struct {
	cfg       L2Config
	lineBytes int
	coreShift uint // CoreAddrShift in line-address space
	banks     []bank
	now       int64

	// strictOrder asserts the stepper discipline: within one cycle,
	// requests must arrive in non-decreasing core order. lastCore is the
	// previous requester this cycle (-1 right after time advances).
	strictOrder bool
	lastCore    int

	coherent bool
	proto    Protocol
	ports    []*L1 // invalidation/downgrade targets, indexed by L1 id
	tr       *CohTracer
	// visitBuf is the reusable sharer-listing buffer for invalidation
	// rounds (capacity = core count, sized by attachPorts), so the hot
	// paths never allocate per round.
	visitBuf []int16

	// Statistics.
	Fetches    int64
	Hits       int64
	Misses     int64
	Merges     int64
	WriteBacks int64
	Conflicts  int64 // transfers that found their bank's bus busy

	// Coherence statistics (zero unless coherence is enabled).
	// Invalidations counts only ownership-claim messages — upgrades and
	// read-for-ownership fetches invalidating remote sharers — so it is
	// zero whenever cores never share a line (namespaced address
	// spaces). BackInvalidations counts the inclusion half: victims an
	// L2 eviction forces out of their sharers' L1s, which happens under
	// pure capacity pressure even without sharing. OwnerForwards is
	// MOESI's replacement for read-triggered WritebackForwards; the
	// Dir counters measure the limited-pointer directory's precision
	// loss and are zero on the exact full map.
	Invalidations     int64 // sharing-driven invalidation messages to remote L1s
	BackInvalidations int64 // inclusion: L2 victims invalidated out of sharer L1s
	Upgrades          int64 // stores that asked the directory for ownership of a present line
	WritebackForwards int64 // dirty remote copies forwarded through a bank into the L2
	OwnerForwards     int64 // dirty lines forwarded cache-to-cache, kept dirty (MOESI Owned)
	DirOverflows      int64 // sets whose sharer count exhausted the pointer budget
	DirBroadcasts     int64 // invalidation rounds degraded to broadcast by an overflowed set
}

// NewBankedL2 builds the shared L2 for the given L1 line size.
func NewBankedL2(cfg L2Config, lineBytes int) (*BankedL2, error) {
	if err := cfg.validate(lineBytes); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / lineBytes / cfg.Banks
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	l2 := &BankedL2{
		cfg:       cfg,
		lineBytes: lineBytes,
		coreShift: CoreAddrShift - shift,
		banks:     make([]bank, cfg.Banks),
		lastCore:  -1,
	}
	for i := range l2.banks {
		l2.banks[i].tags = make([]uint64, sets)
	}
	return l2, nil
}

// preallocInflight sizes every bank's refill list for the worst case so
// the per-miss append in fetch never grows the backing array.
func (c *BankedL2) preallocInflight(maxInflight int) {
	for i := range c.banks {
		c.banks[i].inflight = make([]refill, 0, maxInflight)
	}
}

// Config returns the configuration the L2 was built with.
func (c *BankedL2) Config() L2Config { return c.cfg }

// Coherent reports whether the coherence directory is active.
func (c *BankedL2) Coherent() bool { return c.coherent }

// Protocol returns the active coherence protocol (nil when not coherent).
func (c *BankedL2) Protocol() Protocol { return c.proto }

// attachPorts switches the L2 into coherent mode under the given protocol
// and directory representation, registering the L1s it may invalidate,
// indexed by their port id. Called by NewSystem before any traffic flows.
func (c *BankedL2) attachPorts(ports []*L1, proto Protocol, dirKind string) error {
	c.coherent = true
	c.proto = proto
	c.ports = ports
	c.visitBuf = make([]int16, 0, len(ports))
	for i := range c.banks {
		b := &c.banks[i]
		dir, err := NewDirectory(dirKind, len(b.tags), len(ports))
		if err != nil {
			return err
		}
		b.dir = dir
	}
	return nil
}

// bankOf maps a line onto its bank and direct-mapped set. Core-namespace
// bits (>= CoreAddrShift) sit far above the index bits, so they are
// hashed back down before indexing — without this, cores running
// identical workloads in lockstep would land in the same bank+set and
// evict each other's lines on every fetch. Namespace-free addresses
// (single core, base-0 L1s, and therefore the cache.Config L2Enabled
// equivalence) index exactly as a plain modulo. Tags always compare the
// full line address, so the hash can never cause a false hit.
func (c *BankedL2) bankOf(lineAddr uint64) (*bank, int) {
	h := lineAddr
	if hi := lineAddr >> c.coreShift; hi != 0 {
		h ^= hi * 0x9e3779b97f4a7c15
	}
	b := &c.banks[h%uint64(len(c.banks))]
	set := int(h / uint64(len(c.banks)) % uint64(len(b.tags)))
	return b, set
}

// advance asserts lockstep monotonicity (cores present non-decreasing
// cycles) and expires completed refills of the touched bank.
func (c *BankedL2) advance(b *bank, now int64) {
	if now < c.now {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("mem: L2 time went backwards (%d after %d)", now, c.now))
	}
	if now > c.now {
		c.lastCore = -1
	}
	c.now = now
	keep := b.inflight[:0]
	for _, r := range b.inflight {
		if r.readyAt > now {
			//vpr:allowalloc in-place filter: keep aliases inflight's backing array
			keep = append(keep, r)
		}
	}
	b.inflight = keep
}

// noteCore asserts the within-cycle core-order half of the determinism
// contract when strict ordering is on: cache keys and golden statistics
// assume same-cycle L2 requests are applied in core-index order, and the
// parallel stepper's memory gate exists to guarantee exactly that, so a
// violation here is a stepper bug worth a hard stop, not a wrong number.
//
//vpr:hotpath
func (c *BankedL2) noteCore(core int) {
	if !c.strictOrder {
		return
	}
	if core < c.lastCore {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("mem: L2 request from core %d after core %d in cycle %d: stepper broke (cycle, core) order",
			core, c.lastCore, c.now))
	}
	c.lastCore = core
}

// reserveBus claims one line transfer on the bank's bus and returns the
// cycle the transfer completes — the floor below which the requesting
// L1's refill cannot finish.
func (c *BankedL2) reserveBus(b *bank, now int64) int64 {
	if c.cfg.BankBusCycles == 0 {
		return now
	}
	if b.busFreeAt > now {
		c.Conflicts++
	} else {
		b.busFreeAt = now
	}
	b.busFreeAt += int64(c.cfg.BankBusCycles)
	return b.busFreeAt
}

// Fetch requests a line on behalf of an L1 miss: it returns the penalty
// (beyond the L1 hit latency) and a completion floor from the bank bus /
// in-flight merge. Tags install immediately (the inclusive-refill
// approximation the old cache.Config L2 mode used); the in-flight list
// only widens the merge window for other cores. Non-coherent entry point:
// the L1s call fetch directly so the directory sees the requesting port.
//
//vpr:memphase
func (c *BankedL2) Fetch(now int64, lineAddr uint64) (penalty int, floor int64) {
	penalty, floor, _ = c.fetch(now, lineAddr, 0, false)
	return penalty, floor
}

// fetch is Fetch with the requesting port and its write intent, returning
// additionally the coherence state the requester's copy is granted
// (Modified for a write; the protocol's read-fill state — Shared, or
// Exclusive when provably sole — for a read; meaningless when not
// coherent). With coherence enabled, an exclusive fetch is a
// read-for-ownership: remote sharers are invalidated and the directory
// records the requester as the owner; a plain fetch that finds a remote
// owner consults it through the protocol — a dirty copy is forwarded
// through the bank (written back under MSI/MESI, cache-to-cache under
// MOESI's Owned state), a clean Exclusive copy downgrades for free.
func (c *BankedL2) fetch(now int64, lineAddr uint64, core int, exclusive bool) (penalty int, floor int64, grant State) {
	b, set := c.bankOf(lineAddr)
	c.advance(b, now)
	c.noteCore(core)
	c.Fetches++
	for _, r := range b.inflight {
		if r.lineAddr == lineAddr {
			c.Merges++
			f := c.reserveBus(b, now)
			if c.coherent {
				// The set's tag can have been conflict-evicted while this
				// refill was in flight; the merge revives the line, so
				// reinstall it (back-invalidating the interloper) before
				// touching the directory — otherwise the join would
				// corrupt the new occupant's sharer set.
				if b.tags[set] != lineAddr+1 {
					c.evictVictim(b, set, now)
					b.tags[set] = lineAddr + 1
					b.dir.Clear(set)
				}
				var cf int64
				cf, grant = c.dirJoin(b, set, lineAddr, core, exclusive, now)
				if cf > f {
					f = cf
				}
			}
			if r.readyAt > f {
				f = r.readyAt
			}
			return c.cfg.HitPenalty, f, grant
		}
	}
	penalty = c.cfg.HitPenalty
	tag := &b.tags[set]
	if *tag == lineAddr+1 {
		c.Hits++
		if c.coherent {
			var cf int64
			cf, grant = c.dirJoin(b, set, lineAddr, core, exclusive, now)
			if cf > floor {
				floor = cf
			}
		}
	} else {
		c.Misses++
		penalty = c.cfg.MissPenalty
		if c.coherent {
			c.evictVictim(b, set, now)
			b.dir.AddSharer(set, core)
			if exclusive {
				b.dir.SetOwner(set, core)
				grant = Modified
			} else {
				// A fresh install is provably sole — no other core can
				// hold a line the L2 itself just fetched (inclusion).
				grant = c.proto.ReadFillState(true)
				if grant == Exclusive {
					b.dir.SetOwner(set, core)
				}
			}
			c.traceFill(core, lineAddr, grant, -1)
		}
		*tag = lineAddr + 1
		//vpr:allowalloc bounded: capacity preallocated to cores*MSHRs by NewSystem
		b.inflight = append(b.inflight, refill{lineAddr: lineAddr, readyAt: now + int64(penalty)})
	}
	if f := c.reserveBus(b, now); f > floor {
		floor = f
	}
	return penalty, floor, grant
}

// dirJoin records core's copy of a line already present in the L2 (tag
// hit or in-flight merge) and performs the transition its intent
// requires under the active protocol, returning the cycle the coherence
// traffic completes and the state the copy is granted.
func (c *BankedL2) dirJoin(b *bank, set int, lineAddr uint64, core int, exclusive bool, now int64) (int64, State) {
	floor := now
	if exclusive {
		if f := c.claimOwnership(b, set, lineAddr, core, now); f > floor {
			floor = f
		}
		c.traceFill(core, lineAddr, Modified, -1)
		return floor, Modified
	}
	src := -1
	if owner := b.dir.Owner(set); owner >= 0 && owner != core {
		// An exclusive grant lives at a remote core; only its L1 knows
		// whether the copy is still clean (E), dirty (M/O), or silently
		// gone. The protocol maps that state to the forwarding to model.
		switch c.ports[owner].remoteRead(now, lineAddr, c.proto) {
		case ForwardWriteback:
			// Dirty line rides the bank bus into the L2; the owner
			// keeps a clean Shared copy.
			c.WritebackForwards++
			src = owner
			if f := c.reserveBus(b, now); f > floor {
				floor = f
			}
			b.dir.ClearOwner(set)
		case ForwardOwner:
			// MOESI: dirty line rides the bus cache-to-cache; the owner
			// keeps it dirty (Owned) and stays the directory's owner.
			c.OwnerForwards++
			src = owner
			if f := c.reserveBus(b, now); f > floor {
				floor = f
			}
		case ForwardNone:
			// Clean (or vanished) copy: the L2's data is current.
			b.dir.ClearOwner(set)
		}
	}
	sole := b.dir.Owner(set) < 0 && !b.dir.OtherSharers(set, core)
	grant := c.proto.ReadFillState(sole)
	if b.dir.AddSharer(set, core) {
		c.DirOverflows++
	}
	if grant == Exclusive {
		b.dir.SetOwner(set, core)
	}
	c.traceFill(core, lineAddr, grant, src)
	return floor, grant
}

// claimOwnership invalidates every remote copy of the line and records
// core as its exclusive owner. Each invalidation message occupies the
// bank's bus; a remote copy that was dirty additionally forwards its line
// through the bank before ownership transfers. On an overflowed
// limited-pointer set the round degrades to a broadcast over every
// attached core.
func (c *BankedL2) claimOwnership(b *bank, set int, lineAddr uint64, core int, now int64) int64 {
	floor := now
	sharers, broadcast := b.dir.AppendSharers(set, core, c.visitBuf[:0])
	for _, j := range sharers {
		c.Invalidations++
		_, wasDirty := c.ports[j].invalidateLine(now, lineAddr, EvRemoteWrite)
		f := c.reserveBus(b, now)
		if wasDirty {
			c.WritebackForwards++
			f = c.reserveBus(b, now)
		}
		if f > floor {
			floor = f
		}
	}
	if broadcast {
		c.DirBroadcasts++
	}
	b.dir.Clear(set)
	b.dir.AddSharer(set, core)
	b.dir.SetOwner(set, core)
	return floor
}

// traceFill reports a granted copy to the conformance tracer (nil in
// production).
func (c *BankedL2) traceFill(core int, lineAddr uint64, grant State, src int) {
	if c.tr != nil && c.tr.Fill != nil {
		c.tr.Fill(core, lineAddr, grant, src)
	}
}

// Upgrade is the store-to-Shared-line ownership path: the L1 hit a clean
// copy and must invalidate every other copy before marking it Modified.
// Returns the cycle the upgrade traffic completes (now when the L2 is not
// coherent — the non-coherent hierarchy never calls it).
//
//vpr:memphase
func (c *BankedL2) Upgrade(now int64, lineAddr uint64, core int) int64 {
	if !c.coherent {
		return now
	}
	b, set := c.bankOf(lineAddr)
	c.advance(b, now)
	c.noteCore(core)
	c.Upgrades++
	if tag := &b.tags[set]; *tag != lineAddr+1 {
		// Defensive: inclusion means an L1 hit implies an L2 hit, so this
		// should be unreachable; reinstall the tag rather than corrupt the
		// directory of whatever line the set holds.
		c.evictVictim(b, set, now)
		*tag = lineAddr + 1
		b.dir.Clear(set)
	}
	return c.claimOwnership(b, set, lineAddr, core, now)
}

// evictVictim back-invalidates the line a set is about to replace from
// every L1 that (conservatively) holds it — the inclusion invariant. A
// dirty copy surfaces as a write-back forward on its way to memory. An
// overflowed limited-pointer set back-invalidates by broadcast.
func (c *BankedL2) evictVictim(b *bank, set int, now int64) {
	if b.tags[set] == 0 {
		b.dir.Clear(set)
		return
	}
	victim := b.tags[set] - 1
	sharers, broadcast := b.dir.AppendSharers(set, -1, c.visitBuf[:0])
	for _, j := range sharers {
		c.BackInvalidations++
		_, wasDirty := c.ports[j].invalidateLine(now, victim, EvRecall)
		c.reserveBus(b, now)
		if wasDirty {
			c.WritebackForwards++
			c.reserveBus(b, now)
		}
	}
	if broadcast {
		c.DirBroadcasts++
	}
	b.dir.Clear(set)
}

// WriteBack lands a dirty L1 victim in the L2, occupying the bank's bus
// for one line transfer. Non-coherent entry point; the L1s call writeBack
// so the directory learns which port gave the line up.
//
//vpr:memphase
func (c *BankedL2) WriteBack(now int64, lineAddr uint64) {
	c.writeBack(now, lineAddr, 0)
}

// writeBack is WriteBack with the writing port: with coherence on, the
// writer leaves the line's sharer set (its copy is gone) and releases
// ownership; if the write-back lands on a set holding a different line,
// that victim is back-invalidated first (inclusion).
func (c *BankedL2) writeBack(now int64, lineAddr uint64, core int) {
	b, set := c.bankOf(lineAddr)
	c.advance(b, now)
	c.noteCore(core)
	c.WriteBacks++
	tag := &b.tags[set]
	if c.coherent {
		if *tag != lineAddr+1 {
			c.evictVictim(b, set, now)
		} else {
			b.dir.RemoveSharer(set, core)
			if b.dir.Owner(set) == core {
				b.dir.ClearOwner(set)
			}
		}
	}
	*tag = lineAddr + 1
	c.reserveBus(b, now)
}

// Stats reports the shared counters in Memory's stats shape (L1 fields
// zero). Aggregate them once per System, not per port.
func (c *BankedL2) Stats() Stats {
	return Stats{
		L2Fetches:           c.Fetches,
		L2Hits:              c.Hits,
		L2Misses:            c.Misses,
		L2Merges:            c.Merges,
		L2WriteBacks:        c.WriteBacks,
		L2Conflicts:         c.Conflicts,
		L2Invalidations:     c.Invalidations,
		L2BackInvalidations: c.BackInvalidations,
		L2Upgrades:          c.Upgrades,
		L2WritebackForwards: c.WritebackForwards,
		L2OwnerForwards:     c.OwnerForwards,
		L2DirOverflows:      c.DirOverflows,
		L2DirBroadcasts:     c.DirBroadcasts,
	}
}

// MissRatio returns L2 misses per fetch.
func (c *BankedL2) MissRatio() float64 {
	if c.Fetches == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Fetches)
}
