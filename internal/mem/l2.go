package mem

import "fmt"

// L2Config sizes the banked, finite, shared L2. It subsumes the old
// cache.Config L2Enabled tag-array approximation: with Banks=1,
// BankBusCycles=0, HitPenalty equal to the L1's MissPenalty and
// MissPenalty equal to the old L2MissPenalty, the timing is cycle-exact
// with that mode (a differential test pins this).
type L2Config struct {
	// Enabled gates the shared-L2 path of a multi-core configuration;
	// disabled, every core keeps a private L1 over an infinite L2 (the
	// paper's machine).
	Enabled bool

	SizeBytes int
	Banks     int // lines are interleaved across banks by line address

	// HitPenalty is the cost (beyond the L1 hit latency) of an L1 miss
	// that hits the L2; MissPenalty the cost of missing both levels.
	HitPenalty  int
	MissPenalty int

	// BankBusCycles is how long each line transfer (refill or write-back)
	// occupies the bank's bus; concurrent cores touching the same bank
	// queue behind each other. 0 disables conflict modelling.
	BankBusCycles int
}

// DefaultL2Config is a 256 KB, 4-bank shared L2: L2 hits cost 20 cycles
// (the paper's fast-memory footnote), misses 100, and each line transfer
// holds a bank's bus for 4 cycles as on the L1 bus.
func DefaultL2Config() L2Config {
	return L2Config{
		Enabled:       true,
		SizeBytes:     256 * 1024,
		Banks:         4,
		HitPenalty:    20,
		MissPenalty:   100,
		BankBusCycles: 4,
	}
}

// validate checks the L2 against the line size it must interleave.
func (c L2Config) validate(lineBytes int) error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("mem: L2 needs at least one bank, have %d", c.Banks)
	case c.SizeBytes <= 0 || c.SizeBytes%(lineBytes*c.Banks) != 0:
		return fmt.Errorf("mem: L2 size %d not a positive multiple of %d banks × %dB lines",
			c.SizeBytes, c.Banks, lineBytes)
	case c.HitPenalty < 0 || c.MissPenalty < c.HitPenalty:
		return fmt.Errorf("mem: L2 miss penalty %d below hit penalty %d", c.MissPenalty, c.HitPenalty)
	case c.BankBusCycles < 0:
		return fmt.Errorf("mem: negative L2 bank bus cycles")
	}
	return nil
}

// refill tracks one line on its way from memory into the L2 — the
// MSHR-style merge window: another core fetching the same line before
// readyAt joins the in-flight refill instead of paying a second full
// miss.
type refill struct {
	lineAddr uint64
	readyAt  int64
}

type bank struct {
	tags      []uint64 // tag per set, +1 (0 = invalid); direct-mapped
	busFreeAt int64
	inflight  []refill
}

// BankedL2 is the finite shared L2: direct-mapped tags interleaved across
// banks by line address, a per-bank bus whose occupancy delays concurrent
// refills, and per-bank in-flight refill tracking that merges same-line
// fetches from different cores. It is driven by the L1s in front of it
// and works entirely in line-address space.
//
// The L2 is not internally synchronized: the multi-core runner steps
// cores in cycle-lockstep on one goroutine, which is also what makes the
// shared state deterministic.
type BankedL2 struct {
	cfg       L2Config
	lineBytes int
	coreShift uint // CoreAddrShift in line-address space
	banks     []bank
	now       int64

	// Statistics.
	Fetches    int64
	Hits       int64
	Misses     int64
	Merges     int64
	WriteBacks int64
	Conflicts  int64 // transfers that found their bank's bus busy
}

// NewBankedL2 builds the shared L2 for the given L1 line size.
func NewBankedL2(cfg L2Config, lineBytes int) (*BankedL2, error) {
	if err := cfg.validate(lineBytes); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / lineBytes / cfg.Banks
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	l2 := &BankedL2{
		cfg:       cfg,
		lineBytes: lineBytes,
		coreShift: CoreAddrShift - shift,
		banks:     make([]bank, cfg.Banks),
	}
	for i := range l2.banks {
		l2.banks[i].tags = make([]uint64, sets)
	}
	return l2, nil
}

// Config returns the configuration the L2 was built with.
func (c *BankedL2) Config() L2Config { return c.cfg }

// bankOf maps a line onto its bank and direct-mapped set. Core-namespace
// bits (>= CoreAddrShift) sit far above the index bits, so they are
// hashed back down before indexing — without this, cores running
// identical workloads in lockstep would land in the same bank+set and
// evict each other's lines on every fetch. Namespace-free addresses
// (single core, base-0 L1s, and therefore the cache.Config L2Enabled
// equivalence) index exactly as a plain modulo. Tags always compare the
// full line address, so the hash can never cause a false hit.
func (c *BankedL2) bankOf(lineAddr uint64) (*bank, *uint64) {
	h := lineAddr
	if hi := lineAddr >> c.coreShift; hi != 0 {
		h ^= hi * 0x9e3779b97f4a7c15
	}
	b := &c.banks[h%uint64(len(c.banks))]
	set := h / uint64(len(c.banks)) % uint64(len(b.tags))
	return b, &b.tags[set]
}

// advance asserts lockstep monotonicity (cores present non-decreasing
// cycles) and expires completed refills of the touched bank.
func (c *BankedL2) advance(b *bank, now int64) {
	if now < c.now {
		panic(fmt.Sprintf("mem: L2 time went backwards (%d after %d)", now, c.now))
	}
	c.now = now
	keep := b.inflight[:0]
	for _, r := range b.inflight {
		if r.readyAt > now {
			keep = append(keep, r)
		}
	}
	b.inflight = keep
}

// reserveBus claims one line transfer on the bank's bus and returns the
// cycle the transfer completes — the floor below which the requesting
// L1's refill cannot finish.
func (c *BankedL2) reserveBus(b *bank, now int64) int64 {
	if c.cfg.BankBusCycles == 0 {
		return now
	}
	if b.busFreeAt > now {
		c.Conflicts++
	} else {
		b.busFreeAt = now
	}
	b.busFreeAt += int64(c.cfg.BankBusCycles)
	return b.busFreeAt
}

// Fetch requests a line on behalf of an L1 miss: it returns the penalty
// (beyond the L1 hit latency) and a completion floor from the bank bus /
// in-flight merge. Tags install immediately (the inclusive-refill
// approximation the old cache.Config L2 mode used); the in-flight list
// only widens the merge window for other cores.
func (c *BankedL2) Fetch(now int64, lineAddr uint64) (penalty int, floor int64) {
	b, tag := c.bankOf(lineAddr)
	c.advance(b, now)
	c.Fetches++
	for _, r := range b.inflight {
		if r.lineAddr == lineAddr {
			c.Merges++
			f := c.reserveBus(b, now)
			if r.readyAt > f {
				f = r.readyAt
			}
			return c.cfg.HitPenalty, f
		}
	}
	penalty = c.cfg.HitPenalty
	if *tag == lineAddr+1 {
		c.Hits++
	} else {
		c.Misses++
		penalty = c.cfg.MissPenalty
		*tag = lineAddr + 1
		b.inflight = append(b.inflight, refill{lineAddr: lineAddr, readyAt: now + int64(penalty)})
	}
	return penalty, c.reserveBus(b, now)
}

// WriteBack lands a dirty L1 victim in the L2, occupying the bank's bus
// for one line transfer.
func (c *BankedL2) WriteBack(now int64, lineAddr uint64) {
	b, tag := c.bankOf(lineAddr)
	c.advance(b, now)
	c.WriteBacks++
	*tag = lineAddr + 1
	c.reserveBus(b, now)
}

// Stats reports the shared counters in Memory's stats shape (L1 fields
// zero). Aggregate them once per System, not per port.
func (c *BankedL2) Stats() Stats {
	return Stats{
		L2Fetches:    c.Fetches,
		L2Hits:       c.Hits,
		L2Misses:     c.Misses,
		L2Merges:     c.Merges,
		L2WriteBacks: c.WriteBacks,
		L2Conflicts:  c.Conflicts,
	}
}

// MissRatio returns L2 misses per fetch.
func (c *BankedL2) MissRatio() float64 {
	if c.Fetches == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Fetches)
}
