package mem

import "fmt"

// CoreAddrShift namespaces each core's addresses in the shared L2: cores
// run identical virtual address spaces (same workloads, same traces), so
// without an offset they would alias each other's lines. The shift sits
// above the pipeline's per-thread namespace (threadAddrShift = 44).
const CoreAddrShift = 48

// System is the multi-core shared memory hierarchy: one lockup-free L1
// per core in front of a single banked finite L2. Ports are not
// internally synchronized — the multi-core runner either steps cores in
// cycle-lockstep on one goroutine or, under the parallel stepper
// (pipeline/parallel.go), serializes every port's memory phase through a
// gate that reproduces the identical global (cycle, core-index) request
// order. Either discipline keeps the shared L2 state deterministic;
// EnableStrictCoreOrder makes the L2 assert it.
//
//vpr:memstate
type System struct {
	l2  *BankedL2
	l1s []*L1
}

// CoherenceConfig selects the coherence machinery of a System: whether
// it runs at all, which invalidation protocol governs the L1 states
// (registered in protocol.go; "" = MSI), and which directory
// representation tracks sharers (registered in directory.go; "" =
// full-map bitmask, "limited[:N]" for the pointer scheme that lifts the
// 64-core cap). The zero value is coherence off — the pre-coherence
// hierarchy, bit for bit.
type CoherenceConfig struct {
	Enabled   bool
	Protocol  string
	Directory string
	// Tracer, when non-nil, attaches a conformance tracer to every L1
	// port and the shared L2 at construction. Test-only instrumentation:
	// production runs leave it nil and every emission site is nil-guarded.
	Tracer *CohTracer
}

// NewSystem builds the hierarchy for the given number of cores. With
// sharedAddr false each core's addresses are namespaced (cores model
// private memories and never alias, the multi-programmed default); with
// sharedAddr true all cores address one space, so identical accesses hit
// the same L2 lines and in-flight refills merge across cores — the
// shared-data scenario.
//
// coh.Enabled activates the directory over the banked L2 under the
// selected protocol and representation: stores take ownership of their
// line (invalidating remote L1 copies), remote dirty lines are forwarded
// through the bank bus before a reader proceeds, and L2 evictions
// back-invalidate the victim's sharers (inclusion). With it false
// nothing of that machinery runs and the hierarchy is bit-for-bit the
// pre-coherence one. Coherence is meaningful with either address-space
// mode — namespaced cores simply never share a line, so the directory
// records single-core sharer sets and sends no invalidations. The
// full-map directory supports at most 64 cores (its sharer bitmask);
// the limited-pointer one has no core cap.
func NewSystem(l1 L1Config, l2 L2Config, cores int, sharedAddr bool, coh CoherenceConfig) (*System, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("mem: need at least one core, have %d", cores)
	}
	shared, err := NewBankedL2(l2, l1.LineBytes)
	if err != nil {
		return nil, err
	}
	s := &System{l2: shared}
	// Each core's L1 keeps at most MSHRs lines in flight, so a bank can
	// never track more than cores×MSHRs refills: preallocating that bound
	// keeps the per-miss refill append off the allocator (hotpathalloc).
	shared.preallocInflight(cores * l1.MSHRs)
	for i := 0; i < cores; i++ {
		p, err := NewL1(l1, shared)
		if err != nil {
			return nil, err
		}
		p.id = i
		if !sharedAddr {
			p.base = uint64(i) << CoreAddrShift
		}
		s.l1s = append(s.l1s, p)
	}
	if coh.Enabled {
		proto, err := ProtocolByName(coh.Protocol)
		if err != nil {
			return nil, err
		}
		if err := shared.attachPorts(s.l1s, proto, coh.Directory); err != nil {
			return nil, err
		}
	}
	if coh.Tracer != nil {
		shared.tr = coh.Tracer
		for _, p := range s.l1s {
			p.tr = coh.Tracer
		}
	}
	return s, nil
}

// EnableStrictCoreOrder makes the shared L2 assert the determinism
// contract on every request: within one cycle, requests must arrive from
// non-decreasing core indices (time must already be monotonic). The
// multi-core runner enables it unconditionally — the serial loop
// satisfies the order by construction, and for the parallel stepper the
// assertion is the tripwire that would catch a memory-gate bug as a
// panic instead of a silently different statistic.
//
//vpr:phaseexempt setup-time: called once by the runner before stepping begins
func (s *System) EnableStrictCoreOrder() { s.l2.strictOrder = true }

// Cores returns the number of L1 ports.
func (s *System) Cores() int { return len(s.l1s) }

// Port returns core i's L1 — the Memory a core's pipeline drives.
func (s *System) Port(i int) *L1 { return s.l1s[i] }

// L2 exposes the shared level for statistics collection.
func (s *System) L2() *BankedL2 { return s.l2 }

// Stats aggregates every port's L1 counters plus the shared L2's, counted
// once.
func (s *System) Stats() Stats {
	var st Stats
	for _, p := range s.l1s {
		st.Add(p.Stats())
	}
	st.Add(s.l2.Stats())
	return st
}
