package mem

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Directory abstracts one bank's sharer-tracking representation: which
// cores (conservatively) hold each set's line, and which single core —
// if any — was granted it exclusively (Exclusive or Modified; the
// directory cannot tell them apart because the E→M upgrade is silent).
// Sharer information may be imprecise in the conservative direction only:
// a directory may believe a core holds a line it has silently dropped
// (the extra invalidation is a counted no-op), but must never miss a core
// that does hold one. AppendSharers lists cores in ascending index
// order — part of the determinism contract, since invalidation
// bus reservations happen in visit order.
type Directory interface {
	// Kind is the registry name the directory was built from.
	Kind() string
	// Clear forgets everything about a set (its line was replaced).
	Clear(set int)
	// AddSharer records core as holding the set's line; overflowed
	// reports that precision was lost and future visits broadcast.
	AddSharer(set, core int) (overflowed bool)
	// RemoveSharer forgets core's copy (its write-back gave it up).
	RemoveSharer(set, core int)
	// Owner returns the exclusively-granted core, or -1.
	Owner(set int) int
	// SetOwner records core as the exclusive holder.
	SetOwner(set, core int)
	// ClearOwner drops the exclusive grant (the copy was downgraded).
	ClearOwner(set int)
	// OtherSharers reports whether any core besides core may hold the
	// set's line.
	OtherSharers(set, core int) bool
	// AppendSharers appends every core that may hold the set's line to
	// dst, in ascending core order, skipping except (-1 lists all), and
	// returns the extended slice. The caller owns dst and reuses it
	// across calls (the invalidation paths are hot — no closures, no
	// per-round allocation once dst has capacity for every core).
	// broadcast reports that precision was lost and the listing covered
	// every attached core rather than a tracked subset.
	AppendSharers(set, except int, dst []int16) (sharers []int16, broadcast bool)
}

// directoryKindEntry is one registered directory representation.
type directoryKindEntry struct {
	name        string
	description string
	build       func(sets, cores, arg int) Directory
}

// directoryKinds mirrors the protocol registry: enumerable, looked up by
// name, default (the PR-5 full-map bitmask) first.
//
//vpr:registry directory-kinds
var directoryKinds = []directoryKindEntry{
	{"fullmap", "full-map bitmask: exact sharer sets, at most 64 cores",
		func(sets, cores, arg int) Directory { return newFullMapDir(sets) }},
	{"limited", "limited pointers (limited:N, default 4): N exact sharers, broadcast past that; no core cap",
		func(sets, cores, arg int) Directory { return newLimitedDir(sets, cores, arg) }},
}

// DefaultDirectoryKind is the representation an empty selection resolves
// to.
const DefaultDirectoryKind = "fullmap"

// defaultLimitedPtrs is the pointer budget of a bare "limited" selection
// — Dir_4 B in the classic taxonomy.
const defaultLimitedPtrs = 4

// DirectoryKindInfo describes one registered representation for CLI help.
type DirectoryKindInfo struct {
	Name        string
	Description string
}

// DirectoryKinds lists the registered representations, default first.
//
//vpr:lookup directory-kinds
func DirectoryKinds() []DirectoryKindInfo {
	out := make([]DirectoryKindInfo, len(directoryKinds))
	for i, e := range directoryKinds {
		out[i] = DirectoryKindInfo{Name: e.name, Description: e.description}
	}
	return out
}

// ParseDirectoryKind validates a directory selection — a registered name,
// optionally parameterized as "limited:N" — without building anything,
// so config validation can fail fast. The empty string selects the
// default full map.
func ParseDirectoryKind(kind string) error {
	_, _, err := splitDirectoryKind(kind)
	return err
}

// splitDirectoryKind resolves a selection to its registry entry and
// pointer argument.
func splitDirectoryKind(kind string) (directoryKindEntry, int, error) {
	if kind == "" {
		kind = DefaultDirectoryKind
	}
	name, argStr, hasArg := strings.Cut(kind, ":")
	arg := 0
	if hasArg {
		if name != "limited" {
			return directoryKindEntry{}, 0, fmt.Errorf("mem: directory kind %q takes no argument", name)
		}
		n, err := strconv.Atoi(argStr)
		if err != nil || n <= 0 {
			return directoryKindEntry{}, 0, fmt.Errorf("mem: bad pointer count in directory kind %q", kind)
		}
		arg = n
	}
	for _, e := range directoryKinds {
		if e.name == name {
			return e, arg, nil
		}
	}
	return directoryKindEntry{}, 0, fmt.Errorf("mem: unknown directory kind %q (have fullmap, limited[:N])", kind)
}

// NewDirectory builds one bank's directory of the given kind ("" =
// fullmap; "limited" or "limited:N" for the pointer scheme) over sets
// sets tracking cores cores.
//
//vpr:lookup directory-kinds
func NewDirectory(kind string, sets, cores int) (Directory, error) {
	e, arg, err := splitDirectoryKind(kind)
	if err != nil {
		return nil, err
	}
	if e.name == "fullmap" && cores > 64 {
		return nil, fmt.Errorf("mem: the full-map directory tracks at most 64 cores, have %d — use the limited-pointer directory (DirectoryKind \"limited\")", cores)
	}
	return e.build(sets, cores, arg), nil
}

// fullMapDir is the PR-5 representation: one sharer bit per core per set
// plus an exclusive-owner pointer. Exact, and capped at 64 cores by the
// bitmask width.
type fullMapDir struct {
	sharers []uint64
	owner   []int16
}

func newFullMapDir(sets int) *fullMapDir {
	d := &fullMapDir{sharers: make([]uint64, sets), owner: make([]int16, sets)}
	for i := range d.owner {
		d.owner[i] = -1
	}
	return d
}

func (d *fullMapDir) Kind() string { return "fullmap" }

func (d *fullMapDir) Clear(set int) {
	d.sharers[set] = 0
	d.owner[set] = -1
}

func (d *fullMapDir) AddSharer(set, core int) bool {
	d.sharers[set] |= 1 << uint(core)
	return false
}

func (d *fullMapDir) RemoveSharer(set, core int) {
	d.sharers[set] &^= 1 << uint(core)
}

func (d *fullMapDir) Owner(set int) int { return int(d.owner[set]) }

func (d *fullMapDir) SetOwner(set, core int) { d.owner[set] = int16(core) }

func (d *fullMapDir) ClearOwner(set int) { d.owner[set] = -1 }

func (d *fullMapDir) OtherSharers(set, core int) bool {
	return d.sharers[set]&^(1<<uint(core)) != 0
}

func (d *fullMapDir) AppendSharers(set, except int, dst []int16) ([]int16, bool) {
	s := d.sharers[set]
	if except >= 0 {
		s &^= 1 << uint(except)
	}
	for ; s != 0; s &= s - 1 {
		dst = append(dst, int16(bits.TrailingZeros64(s)))
	}
	return dst, false
}

// limitedDir is the Dir_N B limited-pointer representation: each set
// tracks up to slots exact sharer pointers; when a set's line gains more
// sharers than that, the set degrades to broadcast mode — the directory
// only knows "many", and an invalidation round visits every attached
// core (counted per message, like real broadcast invalidations, plus a
// DirBroadcast for the round). Precision returns when the set's line is
// replaced (Clear). Pointers are kept sorted ascending so visits honour
// the deterministic core order. No core cap: the pointer width, not a
// bitmask, bounds the core count.
type limitedDir struct {
	ptrs     []int16 // slots per set, sorted ascending, -1 = empty
	n        []uint8
	overflow []bool
	owner    []int16
	slots    int
	cores    int
}

func newLimitedDir(sets, cores, slots int) *limitedDir {
	if slots <= 0 {
		slots = defaultLimitedPtrs
	}
	d := &limitedDir{
		ptrs:     make([]int16, sets*slots),
		n:        make([]uint8, sets),
		overflow: make([]bool, sets),
		owner:    make([]int16, sets),
		slots:    slots,
		cores:    cores,
	}
	for i := range d.owner {
		d.owner[i] = -1
	}
	return d
}

func (d *limitedDir) Kind() string { return "limited" }

func (d *limitedDir) set(set int) []int16 { return d.ptrs[set*d.slots : (set+1)*d.slots] }

func (d *limitedDir) Clear(set int) {
	d.n[set] = 0
	d.overflow[set] = false
	d.owner[set] = -1
}

func (d *limitedDir) AddSharer(set, core int) bool {
	if d.overflow[set] {
		return false
	}
	p := d.set(set)
	n := int(d.n[set])
	i := 0
	for i < n && int(p[i]) < core {
		i++
	}
	if i < n && int(p[i]) == core {
		return false
	}
	if n == d.slots {
		// Pointer exhaustion: degrade the set to broadcast mode.
		d.overflow[set] = true
		return true
	}
	copy(p[i+1:n+1], p[i:n])
	p[i] = int16(core)
	d.n[set] = uint8(n + 1)
	return false
}

func (d *limitedDir) RemoveSharer(set, core int) {
	if d.overflow[set] {
		// Broadcast mode has no per-core knowledge to retract.
		return
	}
	p := d.set(set)
	n := int(d.n[set])
	for i := 0; i < n; i++ {
		if int(p[i]) == core {
			copy(p[i:n-1], p[i+1:n])
			d.n[set] = uint8(n - 1)
			return
		}
	}
}

func (d *limitedDir) Owner(set int) int { return int(d.owner[set]) }

func (d *limitedDir) SetOwner(set, core int) { d.owner[set] = int16(core) }

func (d *limitedDir) ClearOwner(set int) { d.owner[set] = -1 }

func (d *limitedDir) OtherSharers(set, core int) bool {
	if d.overflow[set] {
		return true
	}
	p := d.set(set)
	for i := 0; i < int(d.n[set]); i++ {
		if int(p[i]) != core {
			return true
		}
	}
	return false
}

func (d *limitedDir) AppendSharers(set, except int, dst []int16) ([]int16, bool) {
	if d.overflow[set] {
		for c := 0; c < d.cores; c++ {
			if c != except {
				dst = append(dst, int16(c))
			}
		}
		return dst, true
	}
	p := d.set(set)
	for i := 0; i < int(d.n[set]); i++ {
		if c := p[i]; int(c) != except {
			dst = append(dst, c)
		}
	}
	return dst, false
}
