package mem

import (
	"fmt"

	"repro/internal/cache"
)

// L1Config sizes one core's lockup-free L1; the fields are the L1 subset
// of cache.Config and L1FromCacheConfig carries a pipeline configuration
// over.
type L1Config struct {
	SizeBytes        int
	LineBytes        int
	HitLatency       int
	MissPenalty      int // cycles beyond HitLatency when there is no next level
	MSHRs            int
	BusCyclesPerLine int // L1↔L2 bus occupancy per line transfer
}

// L1FromCacheConfig extracts the L1 geometry of a cache.Config (the L2
// fields, if set, are superseded by the System's shared BankedL2).
func L1FromCacheConfig(c cache.Config) L1Config {
	return L1Config{
		SizeBytes:        c.SizeBytes,
		LineBytes:        c.LineBytes,
		HitLatency:       c.HitLatency,
		MissPenalty:      c.MissPenalty,
		MSHRs:            c.MSHRs,
		BusCyclesPerLine: c.BusCyclesPerLine,
	}
}

// Validate rejects geometries the model cannot index.
func (c L1Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: L1 line size %d not a power of two", c.LineBytes)
	case c.SizeBytes <= 0 || c.SizeBytes%c.LineBytes != 0:
		return fmt.Errorf("mem: L1 size %d not a positive multiple of the line size", c.SizeBytes)
	case (c.SizeBytes/c.LineBytes)&(c.SizeBytes/c.LineBytes-1) != 0:
		return fmt.Errorf("mem: L1 line count %d not a power of two", c.SizeBytes/c.LineBytes)
	case c.HitLatency < 0 || c.MissPenalty < 0 || c.MSHRs <= 0 || c.BusCyclesPerLine < 0:
		return fmt.Errorf("mem: bad L1 latencies/MSHRs (%+v)", c)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint64

	// st is the line's coherence state under the active protocol; unused
	// (Invalid) without coherence. In coherent mode dirty == st.Dirty().
	st State
}

type mshr struct {
	busy      bool
	lineAddr  uint64
	readyAt   int64
	markDirty bool // a write merged into the pending refill

	// state is the coherence state the refill was granted (and will
	// install with); unused (Invalid) without coherence. In coherent
	// mode markDirty == state.Dirty().
	state State

	// invalidated marks a refill whose line was invalidated by the
	// directory while still in flight: the data returns to the requester
	// (the outcome's ReadyAt stands) but the line never installs, and
	// later accesses must fetch it again. Never set without coherence.
	invalidated bool
}

// L1 is one core's direct-mapped lockup-free data cache: a line-for-line
// port of cache.Cache with the next level abstracted behind a *BankedL2
// (nil models the paper's infinite L2: every miss costs MissPenalty).
// When the L1 is a port of a multi-core System, base namespaces the
// core's addresses so cores never alias each other's lines in the shared
// L2, and id is the port index the shared L2's MSI directory tracks the
// core under.
//
// An L1 is written by two parties: its own core (Access/Drain, only from
// the execute stage) and — under coherence — remote cores, whose gated
// memory phases reach it through invalidateLine/remoteRead. The
// parallel stepper (pipeline/parallel.go) serializes all such phases in
// global (cycle, core-index) order, so the two parties never run
// concurrently and l.now never observes time running backwards.
//
//vpr:memstate
type L1 struct {
	cfg       L1Config
	base      uint64
	id        int
	next      *BankedL2
	lines     []line
	mshrs     []mshr
	busFreeAt int64
	lineShift uint
	now       int64
	tr        *CohTracer

	st Stats
}

// NewL1 builds a private L1 over next (nil = infinite next level).
func NewL1(cfg L1Config, next *BankedL2) (*L1, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next != nil && next.lineBytes != cfg.LineBytes {
		return nil, fmt.Errorf("mem: L1 line size %d != L2 line size %d", cfg.LineBytes, next.lineBytes)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &L1{
		cfg:       cfg,
		next:      next,
		lines:     make([]line, cfg.SizeBytes/cfg.LineBytes),
		mshrs:     make([]mshr, cfg.MSHRs),
		lineShift: shift,
	}, nil
}

// Config returns the configuration the L1 was built with.
func (l *L1) Config() L1Config { return l.cfg }

func (l *L1) index(lineAddr uint64) int { return int(lineAddr) & (len(l.lines) - 1) }

// drain installs every refill that has completed by cycle now. Time must
// not go backwards: a non-monotonic cycle number is a simulator bug that
// would silently corrupt refill state, so it is asserted here exactly as
// in cache.Cache.
func (l *L1) drain(now int64) {
	if now < l.now {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("mem: time went backwards (%d after %d)", now, l.now))
	}
	l.now = now
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if m.busy && m.readyAt <= now {
			if !m.invalidated {
				ln := &l.lines[l.index(m.lineAddr)]
				if ln.valid && l.tr != nil {
					// The install replaces whatever clean (or, in the
					// inherited stale-window artifact, re-dirtied) copy
					// occupied the frame.
					l.traceState(ln.tag, ln.st, Invalid, EvReplace)
				}
				ln.valid = true
				ln.tag = m.lineAddr
				ln.dirty = m.markDirty
				ln.st = m.state
			}
			m.busy = false
			m.invalidated = false
		}
	}
}

// Drain implements Memory.
//
//vpr:hotpath
//vpr:memphase
func (l *L1) Drain(now int64) { l.drain(now) }

// Access performs a load (write=false) or store (write=true) of the word
// at addr; ok=false means every MSHR was busy and the caller must retry.
// The control flow mirrors cache.Access exactly — hit, secondary-miss
// merge, MSHR allocation, dirty-victim write-back, then the refill
// schedule — with the next-level penalty and bank-bus floor supplied by
// the shared L2 instead of a constant.
//
//vpr:hotpath
//vpr:memphase
func (l *L1) Access(now int64, addr uint64, write bool) (cache.Outcome, bool) {
	l.drain(now)
	l.st.Accesses++
	addr += l.base
	la := addr >> l.lineShift
	ln := &l.lines[l.index(la)]

	if ln.valid && ln.tag == la {
		l.st.Hits++
		ready := now + int64(l.cfg.HitLatency)
		if write {
			if l.next != nil && l.next.coherent {
				// A store to a copy without write permission is the
				// *→M transition. The protocol decides the path: a
				// Shared (or MOESI Owned) copy must ask the directory
				// for ownership, which invalidates every remote copy; a
				// MESI/MOESI Exclusive copy upgrades silently — the
				// whole point of the E state.
				if l.next.proto.NeedsOwnership(ln.st) {
					if f := l.next.Upgrade(now, la, l.id); f > ready {
						ready = f
					}
				} else if ln.st == Exclusive {
					l.st.SilentUpgrades++
				}
				l.traceState(la, ln.st, Modified, EvLocalWrite)
				ln.st = Modified
			}
			ln.dirty = true
		} else if l.tr != nil && l.next != nil && l.next.coherent {
			l.traceState(la, ln.st, ln.st, EvLocalRead)
		}
		return cache.Outcome{Hit: true, ReadyAt: ready}, true
	}

	// Secondary miss: the line is already on its way. Refills invalidated
	// mid-flight by the directory no longer carry usable data, so they are
	// not merge targets.
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if m.busy && !m.invalidated && m.lineAddr == la {
			l.st.Merges++
			ready := m.readyAt
			if write {
				// First store to merge into a read refill: the install
				// will be Modified, so take ownership now (silently, if
				// the refill was granted Exclusive).
				if l.next != nil && l.next.coherent && m.state != Modified {
					if l.next.proto.NeedsOwnership(m.state) {
						if f := l.next.Upgrade(now, la, l.id); f > ready {
							ready = f
						}
					} else if m.state == Exclusive {
						l.st.SilentUpgrades++
					}
					l.traceState(la, m.state, Modified, EvLocalWrite)
					m.state = Modified
				}
				m.markDirty = true
			}
			return cache.Outcome{Merged: true, ReadyAt: ready}, true
		}
	}

	// Primary miss: allocate an MSHR.
	slot := -1
	inFlight := 0
	for i := range l.mshrs {
		if l.mshrs[i].busy {
			inFlight++
		} else if slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		l.st.MSHRStalls++
		return cache.Outcome{}, false
	}
	l.st.Misses++
	if inFlight+1 > l.st.PeakInFlight {
		l.st.PeakInFlight = inFlight + 1
	}

	// A dirty victim occupies the L1↔L2 bus for one line transfer and
	// lands in the (inclusive) L2. Under MOESI this is also how an Owned
	// line's dirty data finally reaches the L2: a plain write-back, not a
	// forward.
	if ln.valid && ln.dirty {
		l.st.Evictions++
		if l.busFreeAt < now {
			l.busFreeAt = now
		}
		l.busFreeAt += int64(l.cfg.BusCyclesPerLine)
		ln.dirty = false
		if l.next != nil {
			l.next.writeBack(now, ln.tag, l.id)
			if l.next.coherent {
				// The copy stays readable until the install overwrites
				// it, but its dirty data has been given up: M/O → S.
				l.traceState(ln.tag, ln.st, Shared, EvWriteback)
				ln.st = Shared
			}
		}
	}

	// The next level prices the refill: a constant MissPenalty with no L2
	// attached (the paper's infinite L2), otherwise the shared L2's
	// hit/miss penalty plus a floor from its bank-bus occupancy. Memory
	// latency and bus transfer overlap except for the final line beat, so
	// the refill completes no earlier than each of (penalty after the
	// request), (L1 bus free + one transfer) and (bank bus free).
	penalty := l.cfg.MissPenalty
	floor := now
	var grant State
	if l.next != nil {
		penalty, floor, grant = l.next.fetch(now, la, l.id, write)
	}
	ready := now + int64(l.cfg.HitLatency+penalty)
	if b := l.busFreeAt + int64(l.cfg.BusCyclesPerLine); b > ready {
		ready = b
	}
	if floor > ready {
		ready = floor
	}
	l.busFreeAt = ready
	l.mshrs[slot] = mshr{busy: true, lineAddr: la, readyAt: ready, markDirty: write, state: grant}
	return cache.Outcome{ReadyAt: ready}, true
}

// invalidateLine is the L1's invalidation port: the shared L2's
// directory calls it when another core takes ownership of the line
// (reason EvRemoteWrite) or the L2 evicts it (reason EvRecall). Matured
// refills are installed first (so a refill that completed earlier this
// cycle is invalidated as a line, not missed), the line is dropped if
// present, and a still-in-flight refill of the line is squashed — its
// requester keeps the data (the outcome already returned) but nothing
// installs, the race the directory must win. Reports whether a copy
// existed and whether it was dirty; a merged-but-uninstalled store
// (markDirty) counts as dirty, since its data would otherwise be lost.
func (l *L1) invalidateLine(now int64, lineAddr uint64, reason Event) (present, wasDirty bool) {
	l.drain(now)
	ln := &l.lines[l.index(lineAddr)]
	if ln.valid && ln.tag == lineAddr {
		present = true
		wasDirty = ln.dirty
		l.traceState(lineAddr, ln.st, Invalid, reason)
		ln.valid = false
		ln.dirty = false
		ln.st = Invalid
	}
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if m.busy && !m.invalidated && m.lineAddr == lineAddr {
			present = true
			wasDirty = wasDirty || m.markDirty
			l.traceState(lineAddr, m.state, Invalid, reason)
			m.invalidated = true
		}
	}
	return present, wasDirty
}

// remoteRead is the downgrade half of the port: another core wants to
// read a line this core was granted exclusively, and the protocol
// decides what the local copy gives up — MSI/MESI write a dirty copy
// back and keep it Shared (ForwardWriteback), MOESI forwards
// cache-to-cache and keeps the copy dirty in Owned (ForwardOwner), a
// clean Exclusive copy downgrades for free (ForwardNone). The returned
// action is what the L2 models on its bank bus. A copy the L1 no longer
// holds (silently evicted clean) resolves through OnRemoteRead(Invalid),
// so each protocol also decides the stale-directory-entry case — MSI
// still reports ForwardWriteback there, preserving the pre-refactor
// unconditional forward accounting.
func (l *L1) remoteRead(now int64, lineAddr uint64, p Protocol) ForwardAction {
	l.drain(now)
	found := false
	var action ForwardAction
	ln := &l.lines[l.index(lineAddr)]
	if ln.valid && ln.tag == lineAddr {
		found = true
		next, act := p.OnRemoteRead(ln.st)
		action = act
		l.traceState(lineAddr, ln.st, next, EvRemoteRead)
		ln.st = next
		ln.dirty = next.Dirty()
	}
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if m.busy && !m.invalidated && m.lineAddr == lineAddr {
			st := m.state
			if m.markDirty && !st.Dirty() {
				st = Modified
			}
			next, act := p.OnRemoteRead(st)
			if !found {
				action = act
			}
			found = true
			l.traceState(lineAddr, st, next, EvRemoteRead)
			m.state = next
			m.markDirty = next.Dirty()
		}
	}
	if !found {
		_, action = p.OnRemoteRead(Invalid)
	}
	return action
}

// traceState reports one local state transition to the conformance
// tracer (nil in production).
func (l *L1) traceState(lineAddr uint64, from, to State, ev Event) {
	if l.tr != nil && l.tr.StateChange != nil {
		l.tr.StateChange(l.id, lineAddr, from, to, ev)
	}
}

// Probe reports whether addr currently hits, without side effects (tests
// and debugging; pending refills are not installed).
func (l *L1) Probe(addr uint64) bool {
	la := (addr + l.base) >> l.lineShift
	ln := l.lines[l.index(la)]
	return ln.valid && ln.tag == la
}

// InFlight returns the number of busy MSHRs as of the last drained cycle.
func (l *L1) InFlight() int {
	n := 0
	for i := range l.mshrs {
		if l.mshrs[i].busy {
			n++
		}
	}
	return n
}

// Stats implements Memory. An L1 port of a System reports only its own
// counters; the shared L2's live on System.L2().
func (l *L1) Stats() Stats { return l.st }
