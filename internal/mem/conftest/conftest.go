// Package conftest is the coherence-protocol conformance harness: it
// holds every registered Protocol (internal/mem/protocol.go) to the
// state machine it declares, over every registered Directory
// representation.
//
// The harness checks three layers:
//
//  1. Static (TestTransitionTablesWellFormed, TestHooksMatchTables):
//     every protocol's Transitions() table is enumerated over the full
//     (state × event) grid — each pair is either declared impossible
//     (no entry), a single unconditional edge, or a GuardSole/
//     GuardShared pair — and the table must agree with the decision
//     hooks (ReadFillState, NeedsOwnership, OnRemoteRead) that induce
//     it.
//  2. Dynamic (Checker, attached as a mem.CohTracer): randomized
//     workloads drive a real System while the Checker shadows every
//     per-core line state. Every transition the hierarchy performs must
//     be a declared edge, observed `from` states must match the shadow,
//     at most one core may hold a line in an exclusive state (E/O/M),
//     exclusive grants require every other registered copy Invalid, and
//     a read served by the L2 requires the L2's data to be current —
//     the single-writer / no-stale-read heart of coherence.
//  3. Fuzz (FuzzDirectoryTransitions, FuzzProtocolInterleaving):
//     native Go fuzz targets over directory transition sequences and
//     cross-core access interleavings.
//
// # The write-back window
//
// One inherited artifact shapes the shadow model. When an L1 evicts a
// dirty victim, the write-back (EvWriteback, M/O→S) removes the core
// from the directory immediately, but the copy stays valid — readable,
// even re-dirtyable — until the incoming refill overwrites its frame
// (EvReplace). During that window the directory has forgotten the copy:
// a remote core can be granted Exclusive or Modified while the zombie
// Shared copy still answers local hits. The Checker marks such copies
// zombie and excludes them from the exclusivity assertions; everything
// else about them (declared edges, shadow agreement) is still enforced.
// The companion artifact — a zombie re-dirtied by a local write and then
// replaced, losing the store — is declared in every protocol's table as
// the M-Replace→I edge.
//
// The Checker deliberately never calls into the hierarchy — it only
// listens — so it lives in a non-test file usable by both the tests and
// the fuzz targets; the code that drives Access/Drain sits in _test.go
// files, outside the phasepure fence.
package conftest

import (
	"fmt"

	"repro/internal/mem"
)

// Edge is one observed or declared transition, guard-erased: the dynamic
// checker cannot see the directory's sole/shared view at event time, so
// a guarded declared pair collapses to two acceptable edges.
type Edge struct {
	From mem.State
	Ev   mem.Event
	To   mem.State
}

func (e Edge) String() string {
	return fmt.Sprintf("%v -%v-> %v", e.From, e.Ev, e.To)
}

// DeclaredEdges collapses a protocol's transition table to its
// guard-erased edge set.
func DeclaredEdges(p mem.Protocol) map[Edge]bool {
	out := make(map[Edge]bool)
	for _, tr := range p.Transitions() {
		out[Edge{tr.From, tr.Ev, tr.To}] = true
	}
	return out
}

// copyKey identifies one core's copy of one line.
type copyKey struct {
	core int
	line uint64
}

// copyState is the shadow of one copy: its protocol state plus whether
// it sits in the write-back window (see the package comment).
type copyState struct {
	st     mem.State
	zombie bool
}

// Checker is the dynamic conformance oracle. Attach Tracer() to a
// coherent System (SetCohTracer) built with the same protocol, drive any
// workload through it in the usual gated (cycle, core-index) order, then
// read Errs. The callbacks run synchronously inside the memory phase, so
// the Checker needs no locking.
type Checker struct {
	proto    mem.Protocol
	declared map[Edge]bool

	// state shadows every (core, line) copy the tracer has reported.
	// Dirty states are always accurate (giving one up is always traced);
	// clean states are too, because even silent replacement is traced at
	// install time (EvReplace).
	state map[copyKey]copyState

	// l2stale marks lines whose only current data is a dirty L1 copy, so
	// a fill served from the L2 (Fill src == -1) would read stale data.
	// A line becomes stale when some copy reaches Modified and fresh
	// again when dirty data flows back (write-back, forward, recall) —
	// or is lost to the dirty-replace artifact, which the tracer reports
	// as the declared M-Replace→I edge and the checker then treats as
	// fresh to match the hierarchy's own (documented) behaviour.
	l2stale map[uint64]bool

	// Seen counts every observed state-change edge and Grants every fill
	// state — the dynamic coverage report.
	Seen   map[Edge]int
	Grants map[mem.State]int

	// Errs collects invariant violations, capped so a broken run cannot
	// allocate without bound.
	Errs []string
}

// NewChecker builds a checker for one protocol.
func NewChecker(p mem.Protocol) *Checker {
	return &Checker{
		proto:    p,
		declared: DeclaredEdges(p),
		state:    make(map[copyKey]copyState),
		l2stale:  make(map[uint64]bool),
		Seen:     make(map[Edge]int),
		Grants:   make(map[mem.State]int),
	}
}

const maxErrs = 20

func (c *Checker) errf(format string, args ...interface{}) {
	if len(c.Errs) < maxErrs {
		c.Errs = append(c.Errs, fmt.Sprintf(format, args...))
	}
}

func exclusiveState(st mem.State) bool {
	return st == mem.Exclusive || st == mem.Owned || st == mem.Modified
}

// setState moves one shadowed copy.
func (c *Checker) setState(k copyKey, to mem.State, zombie bool) {
	if to == mem.Invalid {
		delete(c.state, k)
		return
	}
	c.state[k] = copyState{st: to, zombie: zombie}
}

// checkExclusive verifies the single-writer invariant around one core
// entering an exclusive state of a line: every other core's registered
// (non-zombie) copy must be Invalid.
func (c *Checker) checkExclusive(core int, line uint64, entering mem.State) {
	for other, cs := range c.state {
		if other.line == line && other.core != core && !cs.zombie {
			c.errf("%s: core %d entered %v of line %#x while core %d still holds %v (single-writer violated)",
				c.proto.Name(), core, entering, line, other.core, cs.st)
		}
	}
}

// Tracer returns the mem.CohTracer to attach via System.SetCohTracer.
func (c *Checker) Tracer() *mem.CohTracer {
	return &mem.CohTracer{
		StateChange: c.stateChange,
		Fill:        c.fill,
	}
}

func (c *Checker) stateChange(core int, line uint64, from, to mem.State, ev mem.Event) {
	k := copyKey{core, line}
	e := Edge{from, ev, to}
	c.Seen[e]++
	if !c.declared[e] {
		c.errf("%s: undeclared transition %v (core %d line %#x)", c.proto.Name(), e, core, line)
	}
	cur := c.state[k]
	if cur.st != from {
		c.errf("%s: core %d line %#x reports %v on event %v but shadow holds %v",
			c.proto.Name(), core, line, from, ev, cur.st)
	}
	// A copy enters the write-back window when its dirty data departs at
	// eviction; it stays zombie only while it lingers in Shared. Leaving
	// for Modified means an Upgrade re-registered it with the directory;
	// leaving for Invalid ends the window with the copy.
	zombie := ev == mem.EvWriteback || (cur.zombie && to == mem.Shared)
	if exclusiveState(to) && !exclusiveState(from) {
		c.checkExclusive(core, line, to)
	}
	c.setState(k, to, zombie)

	// L2 data currency: dirty data leaves an L1 toward the L2 (or, on a
	// forward, another L1) exactly when a dirty copy moves to a
	// non-dirty state; the dirty-replace artifact loses the data but the
	// hierarchy proceeds as if it landed, so the shadow does too.
	if to == mem.Modified {
		c.l2stale[line] = true
	} else if from.Dirty() && !to.Dirty() {
		c.l2stale[line] = false
	}
}

func (c *Checker) fill(core int, line uint64, grant mem.State, src int) {
	k := copyKey{core, line}
	c.Grants[grant]++
	if grant == mem.Invalid {
		c.errf("%s: core %d line %#x granted Invalid", c.proto.Name(), core, line)
		return
	}
	if cur := c.state[k]; cur.st != mem.Invalid {
		c.errf("%s: core %d granted %v of line %#x while its own shadow holds %v (fetch without a miss)",
			c.proto.Name(), core, grant, line, cur.st)
	}
	if exclusiveState(grant) {
		c.checkExclusive(core, line, grant)
	}
	if src == core {
		c.errf("%s: core %d line %#x forwarded from itself", c.proto.Name(), core, line)
	}
	if src < 0 && c.l2stale[line] {
		c.errf("%s: core %d filled line %#x from the L2 while a dirty copy exists elsewhere (stale read)",
			c.proto.Name(), core, line)
	}
	if grant == mem.Modified {
		c.l2stale[line] = true
	}
	c.setState(k, grant, false)
}

// State returns the shadowed state of core's copy of line (Invalid when
// untracked) — for tests that assert specific end states.
func (c *Checker) State(core int, line uint64) mem.State {
	return c.state[copyKey{core, line}].st
}
