package conftest

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// tinyL1 and tinyL2 build a deliberately cramped geometry — 32 direct-
// mapped L1 frames, 64 L2 lines over 2 banks — so a ~96-line working set
// exercises every transition class: conflict replacement, dirty-victim
// write-backs, inclusion recalls, invalidations and forwards.
func tinyL1() mem.L1Config {
	return mem.L1Config{
		SizeBytes:        1024,
		LineBytes:        32,
		HitLatency:       1,
		MissPenalty:      10,
		MSHRs:            4,
		BusCyclesPerLine: 1,
	}
}

func tinyL2() mem.L2Config {
	return mem.L2Config{
		Enabled:       true,
		SizeBytes:     2048,
		Banks:         2,
		HitPenalty:    3,
		MissPenalty:   9,
		BankBusCycles: 1,
	}
}

// newCheckedSystem builds a coherent shared-address System under the
// given protocol and directory with a conformance Checker attached.
func newCheckedSystem(t testing.TB, proto mem.Protocol, dir string, cores int, l1 mem.L1Config, l2 mem.L2Config) (*mem.System, *Checker) {
	t.Helper()
	ck := NewChecker(proto)
	sys, err := mem.NewSystem(l1, l2, cores, true,
		mem.CoherenceConfig{Enabled: true, Protocol: proto.Name(), Directory: dir, Tracer: ck.Tracer()})
	if err != nil {
		t.Fatalf("NewSystem(%s, %s): %v", proto.Name(), dir, err)
	}
	return sys, ck
}

// runRandom drives every core with a deterministic random access stream
// over a shared pool of lines, in the gated (cycle, core-index) order the
// multi-core runner guarantees, then drains every port. An MSHR-full
// refusal simply skips the access, like a stalled pipeline would.
func runRandom(sys *mem.System, rng *rand.Rand, cycles, poolLines int, writeFrac float64) {
	cores := sys.Cores()
	now := int64(0)
	for cyc := 0; cyc < cycles; cyc++ {
		now += 2
		for core := 0; core < cores; core++ {
			if rng.Float64() < 0.25 {
				continue // idle memory phase this cycle
			}
			line := uint64(1 + rng.Intn(poolLines))
			addr := line*32 + uint64(rng.Intn(4))*8
			write := rng.Float64() < writeFrac
			sys.Port(core).Access(now, addr, write)
		}
	}
	now += 1000
	for core := 0; core < cores; core++ {
		sys.Port(core).Drain(now)
	}
}

// requiredCoverage lists, per protocol, the transition classes a healthy
// randomized run must exhibit — the edges that distinguish the protocol
// from its neighbours. A run that never performs them proves nothing.
func requiredCoverage(name string) []Edge {
	shared := []Edge{
		{mem.Shared, mem.EvLocalWrite, mem.Modified},   // directory upgrade
		{mem.Shared, mem.EvRemoteWrite, mem.Invalid},   // invalidation
		{mem.Shared, mem.EvReplace, mem.Invalid},       // conflict replacement
		{mem.Shared, mem.EvRecall, mem.Invalid},        // inclusion back-invalidation
		{mem.Modified, mem.EvWriteback, mem.Shared},    // dirty eviction
		{mem.Modified, mem.EvRemoteWrite, mem.Invalid}, // ownership stolen
	}
	switch name {
	case "msi":
		return append(shared, Edge{mem.Modified, mem.EvRemoteRead, mem.Shared})
	case "mesi":
		return append(shared,
			Edge{mem.Modified, mem.EvRemoteRead, mem.Shared},
			Edge{mem.Exclusive, mem.EvLocalWrite, mem.Modified}, // silent upgrade
			Edge{mem.Exclusive, mem.EvRemoteRead, mem.Shared},   // free downgrade
			Edge{mem.Exclusive, mem.EvReplace, mem.Invalid},     // silent clean drop
		)
	case "moesi":
		return append(shared,
			Edge{mem.Exclusive, mem.EvLocalWrite, mem.Modified},
			Edge{mem.Modified, mem.EvRemoteRead, mem.Owned}, // dirty forward, stays dirty
			Edge{mem.Owned, mem.EvRemoteRead, mem.Owned},    // serves readers repeatedly
			Edge{mem.Owned, mem.EvLocalWrite, mem.Modified}, // re-claim from Owned
			Edge{mem.Owned, mem.EvWriteback, mem.Shared},    // O eviction finally pays the L2
		)
	}
	return shared
}

// TestDynamicConformance is the heart of the harness: every protocol ×
// every directory representation runs the same randomized sharing
// workload on 4 cores with the Checker attached. Zero undeclared
// transitions, zero invariant violations, and every distinguishing edge
// actually exercised.
func TestDynamicConformance(t *testing.T) {
	for _, p := range mem.Protocols() {
		for _, dir := range []string{"fullmap", "limited:2"} {
			p, dir := p, dir
			t.Run(p.Name()+"/"+dir, func(t *testing.T) {
				sys, ck := newCheckedSystem(t, p, dir, 4, tinyL1(), tinyL2())
				runRandom(sys, rand.New(rand.NewSource(12)), 6000, 96, 0.35)
				for _, e := range ck.Errs {
					t.Error(e)
				}
				for _, e := range requiredCoverage(p.Name()) {
					if ck.Seen[e] == 0 {
						t.Errorf("edge %v never exercised — the workload proves nothing about it", e)
					}
				}
				// Fill grants stay inside the protocol's state set, and the
				// E-capable protocols actually use it.
				states := stateSet(p)
				for g := range ck.Grants {
					if !states[g] {
						t.Errorf("fill granted %v, outside %s's states", g, p.Name())
					}
				}
				st := sys.Stats()
				switch p.Name() {
				case "msi":
					if ck.Grants[mem.Exclusive] != 0 || st.SilentUpgrades != 0 || st.L2OwnerForwards != 0 {
						t.Errorf("msi must never grant E, upgrade silently or owner-forward (E grants %d, silent %d, forwards %d)",
							ck.Grants[mem.Exclusive], st.SilentUpgrades, st.L2OwnerForwards)
					}
				case "mesi":
					if ck.Grants[mem.Exclusive] == 0 || st.SilentUpgrades == 0 {
						t.Errorf("mesi run drew no benefit from E (grants %d, silent upgrades %d)",
							ck.Grants[mem.Exclusive], st.SilentUpgrades)
					}
					if st.L2OwnerForwards != 0 {
						t.Errorf("mesi must not owner-forward, counted %d", st.L2OwnerForwards)
					}
				case "moesi":
					if st.L2OwnerForwards == 0 {
						t.Error("moesi run never forwarded a dirty line cache-to-cache")
					}
				}
				// The limited-pointer runs must actually lose precision with
				// 4 sharers over 2 pointers — otherwise they tested nothing
				// beyond the full map.
				if dir == "limited:2" && st.L2DirOverflows == 0 {
					t.Error("limited:2 run never overflowed a set")
				}
				if dir == "fullmap" && (st.L2DirOverflows != 0 || st.L2DirBroadcasts != 0) {
					t.Errorf("full map cannot overflow (overflows %d, broadcasts %d)",
						st.L2DirOverflows, st.L2DirBroadcasts)
				}
			})
		}
	}
}

// TestDynamicConformanceSingleCore runs each protocol with one core: no
// sharing exists, so no invalidation, forward or upgrade traffic may
// appear — only fills, replacements, write-backs and recalls.
func TestDynamicConformanceSingleCore(t *testing.T) {
	for _, p := range mem.Protocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			sys, ck := newCheckedSystem(t, p, "", 1, tinyL1(), tinyL2())
			runRandom(sys, rand.New(rand.NewSource(7)), 4000, 96, 0.35)
			for _, e := range ck.Errs {
				t.Error(e)
			}
			st := sys.Stats()
			// Write-back forwards still occur (a recall flushing the core's
			// own dirty line rides the same counter), but invalidations and
			// owner-forwards are sharing-only.
			if st.L2Invalidations != 0 || st.L2OwnerForwards != 0 {
				t.Errorf("single core produced sharing traffic: inv=%d own=%d",
					st.L2Invalidations, st.L2OwnerForwards)
			}
			// A lone MESI/MOESI core is sole on (almost) every read — a
			// silently-dropped E leaves a stale owner pointer that demotes
			// the refetch to Shared, so only the common case is asserted:
			// E grants dominate.
			if p.Name() != "msi" && ck.Grants[mem.Exclusive] == 0 {
				t.Errorf("sole core never granted Exclusive under %s", p.Name())
			}
		})
	}
}
