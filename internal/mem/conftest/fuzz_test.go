package conftest

import (
	"testing"

	"repro/internal/mem"
)

// FuzzDirectoryTransitions drives the full-map and limited-pointer
// directories through the same decoded operation sequence and holds the
// limited one to its contract: conservative-superset sharer knowledge
// (it may over-report, never under-report), identical owner tracking,
// ascending visit order, and a pointer budget that is respected whenever
// a set has not degraded to broadcast.
//
// Each input byte pair decodes to one operation: the first byte selects
// the op, the second packs (set, core) as (b>>4)%sets and b%cores.
func FuzzDirectoryTransitions(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0x00, 0, 0x01, 0, 0x02, 0, 0x03, 2, 0x01}) // fill one set past 2 pointers, then set an owner
	f.Add([]byte{0, 0x00, 1, 0x00, 0, 0x10, 1, 0x10})          // add/remove ping-pong on two sets
	f.Add([]byte{0, 0x05, 0, 0x06, 0, 0x07, 4, 0x00, 0, 0x05}) // overflow, clear, re-add: precision restored
	f.Add([]byte{2, 0x04, 3, 0x00, 2, 0x09, 0, 0x09, 1, 0x09})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			sets  = 4
			cores = 16
			slots = 2
		)
		full, err := mem.NewDirectory("fullmap", sets, cores)
		if err != nil {
			t.Fatal(err)
		}
		lim, err := mem.NewDirectory("limited:2", sets, cores)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			set := int(ops[i+1]>>4) % sets
			core := int(ops[i+1]) % cores
			switch ops[i] % 5 {
			case 0:
				full.AddSharer(set, core)
				lim.AddSharer(set, core)
			case 1:
				full.RemoveSharer(set, core)
				lim.RemoveSharer(set, core)
			case 2:
				full.SetOwner(set, core)
				lim.SetOwner(set, core)
			case 3:
				full.ClearOwner(set)
				lim.ClearOwner(set)
			case 4:
				full.Clear(set)
				lim.Clear(set)
			}
		}
		for set := 0; set < sets; set++ {
			if fo, lo := full.Owner(set), lim.Owner(set); fo != lo {
				t.Fatalf("set %d: owners diverge (fullmap %d, limited %d)", set, fo, lo)
			}
			exact := visit(t, full, set)
			cons := visit(t, lim, set)
			inCons := make(map[int]bool, len(cons))
			for _, c := range cons {
				inCons[c] = true
			}
			for _, c := range exact {
				if !inCons[c] {
					t.Fatalf("set %d: limited directory lost sharer %d (exact %v, conservative %v)",
						set, c, exact, cons)
				}
				if !lim.OtherSharers(set, (c+1)%cores) {
					t.Fatalf("set %d: OtherSharers misses recorded sharer %d", set, c)
				}
			}
			if len(cons) > slots && len(cons) != cores {
				t.Fatalf("set %d: %d sharers visited — over the %d-pointer budget yet not a broadcast",
					set, len(cons), slots)
			}
		}
	})
}

// visit collects one set's AppendSharers output and fails on any
// violation of the ascending-order determinism contract.
func visit(t *testing.T, d mem.Directory, set int) []int {
	t.Helper()
	sharers, _ := d.AppendSharers(set, -1, nil)
	out := make([]int, 0, len(sharers))
	for _, core := range sharers {
		if n := len(out); n > 0 && out[n-1] >= int(core) {
			t.Fatalf("AppendSharers listed core %d after %d — descending order breaks determinism", core, out[n-1])
		}
		out = append(out, int(core))
	}
	return out
}

// FuzzProtocolInterleaving decodes an arbitrary byte string into a
// cross-core access interleaving and replays it under every registered
// protocol with the conformance Checker attached: whatever the
// interleaving, no protocol may perform an undeclared transition or
// break the single-writer/no-stale-read invariants.
//
// Each byte is one access: bit 7 = store, bits 0–1 = core, bits 2–6 =
// line within a 32-line pool sized to thrash the tiny hierarchy.
func FuzzProtocolInterleaving(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x04, 0x05, 0x84, 0x06, 0x04}) // read-share then steal ownership
	f.Add([]byte{0x80, 0x81, 0x82, 0x83})       // four cores fight over line 0
	f.Add([]byte{0x84, 0x04, 0x05, 0x06, 0x07}) // dirty line served to three readers
	seq := make([]byte, 64)
	for i := range seq {
		seq[i] = byte(i*37 + 11)
	}
	f.Add(seq)
	f.Fuzz(func(t *testing.T, accs []byte) {
		if len(accs) > 4096 {
			accs = accs[:4096]
		}
		l1 := tinyL1()
		l1.SizeBytes = 512 // 16 frames: replacements arrive fast
		l2 := tinyL2()
		l2.SizeBytes = 1024 // 32 lines: recalls arrive fast
		for _, p := range mem.Protocols() {
			sys, ck := newCheckedSystem(t, p, "limited:2", 4, l1, l2)
			now := int64(0)
			for _, b := range accs {
				now += 2
				core := int(b & 3)
				line := uint64(1 + (b>>2)&31)
				sys.Port(core).Access(now, line*32, b&0x80 != 0)
			}
			now += 1000
			for core := 0; core < sys.Cores(); core++ {
				sys.Port(core).Drain(now)
			}
			for _, e := range ck.Errs {
				t.Errorf("%s: %s", p.Name(), e)
			}
		}
	})
}
