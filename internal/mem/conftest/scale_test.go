package conftest

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// drainAll settles every port at a cycle past all in-flight refills.
func drainAll(sys *mem.System, now int64) {
	for core := 0; core < sys.Cores(); core++ {
		sys.Port(core).Drain(now)
	}
}

// TestLimitedOverflowBroadcastInvalidation walks the pointer-exhaustion
// script deterministically: three readers over a 2-pointer set overflow
// it (the third sharer is known only as "many"), and the subsequent
// ownership claim must degrade to a broadcast that still reaches every
// copy — including the one the pointers could not record.
func TestLimitedOverflowBroadcastInvalidation(t *testing.T) {
	proto, _ := mem.ProtocolByName("msi")
	sys, ck := newCheckedSystem(t, proto, "limited:2", 4, tinyL1(), tinyL2())
	const line = uint64(0x40)
	now := int64(0)
	for core := 0; core < 3; core++ {
		out, ok := sys.Port(core).Access(now, line*32, false)
		if !ok {
			t.Fatal("unexpected MSHR stall")
		}
		now = out.ReadyAt + 1
	}
	drainAll(sys, now)
	st := sys.Stats()
	if st.L2DirOverflows != 1 {
		t.Fatalf("third sharer over 2 pointers must overflow the set once, counted %d", st.L2DirOverflows)
	}
	if st.L2DirBroadcasts != 0 {
		t.Fatalf("no invalidation round ran yet, counted %d broadcasts", st.L2DirBroadcasts)
	}

	out, ok := sys.Port(3).Access(now, line*32, true)
	if !ok {
		t.Fatal("unexpected MSHR stall")
	}
	now = out.ReadyAt + 1
	drainAll(sys, now)
	st = sys.Stats()
	if st.L2DirBroadcasts != 1 {
		t.Fatalf("the ownership claim on an overflowed set must broadcast, counted %d", st.L2DirBroadcasts)
	}
	// The broadcast visits cores 0..2 (all but the writer); each held a
	// copy, so each invalidation finds a line to kill.
	if st.L2Invalidations != 3 {
		t.Fatalf("broadcast must invalidate all 3 readers, counted %d", st.L2Invalidations)
	}
	for core := 0; core < 3; core++ {
		if got := ck.State(core, line); got != mem.Invalid {
			t.Errorf("core %d still shadows %v after the broadcast", core, got)
		}
		if sys.Port(core).Probe(line * 32) {
			t.Errorf("core %d still answers hits on the claimed line", core)
		}
	}
	if got := ck.State(3, line); got != mem.Modified {
		t.Errorf("writer shadows %v, want M", got)
	}
	for _, e := range ck.Errs {
		t.Error(e)
	}
}

// TestLimitedOverflowInclusionHolds evicts an overflowed set's line from
// the L2 and requires the back-invalidation round to recall every copy —
// inclusion may not leak through lost pointer precision.
func TestLimitedOverflowInclusionHolds(t *testing.T) {
	proto, _ := mem.ProtocolByName("msi")
	l2 := tinyL2()
	l2.Banks = 1 // 64 direct-mapped lines: line and line+64 share a set
	sys, ck := newCheckedSystem(t, proto, "limited:2", 4, tinyL1(), l2)
	const line = uint64(0x10)
	now := int64(0)
	for core := 0; core < 4; core++ {
		out, ok := sys.Port(core).Access(now, line*32, false)
		if !ok {
			t.Fatal("unexpected MSHR stall")
		}
		now = out.ReadyAt + 1
	}
	drainAll(sys, now)
	if st := sys.Stats(); st.L2DirOverflows != 1 {
		t.Fatalf("four sharers over 2 pointers must overflow, counted %d", st.L2DirOverflows)
	}

	// A different line mapping to the same L2 set evicts the shared one.
	out, ok := sys.Port(0).Access(now, (line+64)*32, false)
	if !ok {
		t.Fatal("unexpected MSHR stall")
	}
	now = out.ReadyAt + 1
	drainAll(sys, now)
	st := sys.Stats()
	if st.L2BackInvalidations != 4 {
		t.Fatalf("the recall must reach all 4 sharers (broadcast), counted %d", st.L2BackInvalidations)
	}
	if st.L2DirBroadcasts == 0 {
		t.Fatal("an overflowed set's recall must be a broadcast round")
	}
	for core := 0; core < 4; core++ {
		if sys.Port(core).Probe(line * 32) {
			t.Errorf("core %d still holds the recalled line — inclusion leaked", core)
		}
	}
	for _, e := range ck.Errs {
		t.Error(e)
	}
}

// TestLimitedPointerScalesPast64Cores is the cap-lifting acceptance test:
// a 72-core coherent run over the limited-pointer directory — where the
// full map refuses to build — completes a contended random workload with
// zero conformance violations and demonstrably overflows its pointers.
func TestLimitedPointerScalesPast64Cores(t *testing.T) {
	const cores = 72
	if _, err := mem.NewSystem(tinyL1(), tinyL2(), cores, true,
		mem.CoherenceConfig{Enabled: true, Directory: "fullmap"}); err == nil {
		t.Fatal("the full map must refuse 72 cores")
	}
	for _, proto := range mem.Protocols() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			l2 := mem.DefaultL2Config()
			l2.SizeBytes = 16 * 1024 // 512 lines: big enough to share, small enough to recall
			sys, ck := newCheckedSystem(t, proto, "limited:4", cores, tinyL1(), l2)
			runRandom(sys, rand.New(rand.NewSource(9)), 800, 256, 0.2)
			for _, e := range ck.Errs {
				t.Error(e)
			}
			st := sys.Stats()
			if st.L2DirOverflows == 0 || st.L2DirBroadcasts == 0 {
				t.Errorf("72 contending cores never exhausted 4 pointers (overflows %d, broadcasts %d)",
					st.L2DirOverflows, st.L2DirBroadcasts)
			}
			if st.L2Invalidations == 0 {
				t.Error("contended run produced no invalidations")
			}
		})
	}
}

// TestNamespacedManyCoresNoSharingTraffic runs 80 namespaced cores —
// disjoint address spaces over one shared L2 — under the limited-pointer
// directory: every line ever has exactly one sharer, so no pointer can
// overflow and no sharing invalidation may be sent, at any scale.
func TestNamespacedManyCoresNoSharingTraffic(t *testing.T) {
	const cores = 80
	proto, _ := mem.ProtocolByName("mesi")
	ck := NewChecker(proto)
	sys, err := mem.NewSystem(tinyL1(), mem.DefaultL2Config(), cores, false,
		mem.CoherenceConfig{Enabled: true, Protocol: "mesi", Directory: "limited", Tracer: ck.Tracer()})
	if err != nil {
		t.Fatal(err)
	}
	runRandom(sys, rand.New(rand.NewSource(3)), 600, 128, 0.3)
	for _, e := range ck.Errs {
		t.Error(e)
	}
	st := sys.Stats()
	// Recalls of a core's own dirty lines still ride the write-back-
	// forward counter; invalidations and owner-forwards are sharing-only.
	if st.L2Invalidations != 0 || st.L2OwnerForwards != 0 {
		t.Errorf("namespaced cores can never share a line: inv=%d own=%d",
			st.L2Invalidations, st.L2OwnerForwards)
	}
	if st.L2DirOverflows != 0 || st.L2DirBroadcasts != 0 {
		t.Errorf("single-sharer sets cannot overflow: overflows=%d broadcasts=%d",
			st.L2DirOverflows, st.L2DirBroadcasts)
	}
	// Namespaced MESI cores are always sole readers: Shared is never
	// granted and every write upgrade is silent.
	if ck.Grants[mem.Shared] != 0 && st.SilentUpgrades == 0 {
		t.Errorf("namespaced MESI must live off Exclusive grants (S grants %d, silent upgrades %d)",
			ck.Grants[mem.Shared], st.SilentUpgrades)
	}
}
