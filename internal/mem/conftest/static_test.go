package conftest

import (
	"testing"

	"repro/internal/mem"
)

// pairKey groups a protocol's declared transitions by (state, event).
type pairKey struct {
	from mem.State
	ev   mem.Event
}

func groupTable(p mem.Protocol) map[pairKey][]mem.Transition {
	out := make(map[pairKey][]mem.Transition)
	for _, tr := range p.Transitions() {
		k := pairKey{tr.From, tr.Ev}
		out[k] = append(out[k], tr)
	}
	return out
}

func stateSet(p mem.Protocol) map[mem.State]bool {
	out := make(map[mem.State]bool)
	for _, st := range p.States() {
		out[st] = true
	}
	return out
}

// TestTransitionTablesWellFormed enumerates the full (state × event) grid
// of every registered protocol against its declared table: each pair is
// either declared impossible (no entry), covered by one unconditional
// edge, or split by exactly a GuardSole/GuardShared pair; edges stay
// inside the protocol's declared state set; and the pairs the generic
// controller relies on are never declared impossible.
func TestTransitionTablesWellFormed(t *testing.T) {
	for _, p := range mem.Protocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			states := p.States()
			if len(states) == 0 || states[0] != mem.Invalid {
				t.Fatalf("States() must start with Invalid, got %v", states)
			}
			inSet := stateSet(p)
			if !inSet[mem.Modified] || !inSet[mem.Shared] {
				t.Fatalf("States() must include Shared and Modified, got %v", states)
			}

			grouped := groupTable(p)
			for k, entries := range grouped {
				if !inSet[k.from] {
					t.Errorf("(%v, %v): From outside States()", k.from, k.ev)
				}
				for _, tr := range entries {
					if !inSet[tr.To] {
						t.Errorf("%v -%v-> %v: To outside States()", tr.From, tr.Ev, tr.To)
					}
				}
				switch len(entries) {
				case 1:
					if g := entries[0].Guard; g != mem.GuardNone {
						t.Errorf("(%v, %v): lone entry must be unconditional, has guard %v", k.from, k.ev, g)
					}
				case 2:
					guards := map[mem.Guard]bool{entries[0].Guard: true, entries[1].Guard: true}
					if !guards[mem.GuardSole] || !guards[mem.GuardShared] {
						t.Errorf("(%v, %v): a split pair must be exactly {sole, shared}, got %v/%v",
							k.from, k.ev, entries[0].Guard, entries[1].Guard)
					}
				default:
					t.Errorf("(%v, %v): %d entries — a pair is covered by one edge or one guard split",
						k.from, k.ev, len(entries))
				}
			}

			// The controller's obligations over the full grid: a valid copy
			// must answer local accesses, replacement and both remote
			// messages; only dirty states write back; a miss must be able
			// to fill for both intents. Everything uncovered is declared
			// impossible — enumerate it so the declaration is visible.
			for _, st := range states {
				for _, ev := range mem.Events {
					_, covered := grouped[pairKey{st, ev}]
					required := false
					switch {
					case st == mem.Invalid:
						required = ev == mem.EvLocalRead || ev == mem.EvLocalWrite
					case ev == mem.EvWriteback:
						required = st.Dirty()
						if covered && !st.Dirty() {
							t.Errorf("(%v, Writeback) declared: only dirty states write back", st)
						}
					default:
						required = ev != mem.EvWriteback
					}
					if required && !covered {
						t.Errorf("(%v, %v): required by the controller but declared impossible", st, ev)
					}
					if !covered {
						t.Logf("declared impossible: (%v, %v)", st, ev)
					}
				}
			}
		})
	}
}

// TestHooksMatchTables checks that each protocol's decision hooks and its
// declared table describe the same machine: the fill states, the write
// path, and the owner's reaction to a remote read must all be declared
// edges with the properties the controller assumes.
func TestHooksMatchTables(t *testing.T) {
	for _, p := range mem.Protocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			grouped := groupTable(p)
			inSet := stateSet(p)

			// Read fills are the (Invalid, LocalRead) edges.
			fills := grouped[pairKey{mem.Invalid, mem.EvLocalRead}]
			sole, shared := p.ReadFillState(true), p.ReadFillState(false)
			switch len(fills) {
			case 1:
				if fills[0].To != sole || fills[0].To != shared {
					t.Errorf("unconditional read-fill edge grants %v but hooks grant sole=%v shared=%v",
						fills[0].To, sole, shared)
				}
			case 2:
				for _, tr := range fills {
					want := shared
					if tr.Guard == mem.GuardSole {
						want = sole
					}
					if tr.To != want {
						t.Errorf("read-fill edge with guard %v grants %v, hook grants %v", tr.Guard, tr.To, want)
					}
				}
			}
			if !inSet[sole] || !inSet[shared] {
				t.Errorf("ReadFillState grants outside States(): sole=%v shared=%v", sole, shared)
			}

			// Every write lands in Modified, whatever the starting state.
			for _, tr := range p.Transitions() {
				if tr.Ev == mem.EvLocalWrite && tr.To != mem.Modified {
					t.Errorf("%v -LocalWrite-> %v: every write must land in Modified", tr.From, tr.To)
				}
			}

			// NeedsOwnership draws the silent-upgrade line: clean shared
			// states must ask the directory, exclusive and dirty-sole
			// states must not (Exclusive is the whole point of E; Modified
			// already owns the line; Owned still has readers to kill).
			for _, st := range p.States() {
				want := st == mem.Shared || st == mem.Owned
				if got := p.NeedsOwnership(st); got != want {
					t.Errorf("NeedsOwnership(%v) = %v, want %v", st, got, want)
				}
			}

			// The owner's remote-read reaction must be a declared edge, and
			// the forwarding must match the data movement the states imply:
			// dirty data cannot be dropped silently, clean data cannot be
			// forwarded dirty.
			for _, st := range p.States() {
				if st == mem.Invalid {
					// The stale-entry case: the hierarchy uses only the
					// action (the copy is already gone), so the table has
					// nothing to match.
					continue
				}
				next, act := p.OnRemoteRead(st)
				if e := (Edge{st, mem.EvRemoteRead, next}); !DeclaredEdges(p)[e] {
					t.Errorf("OnRemoteRead(%v) -> %v: edge %v not declared", st, next, e)
				}
				if st.Dirty() && act == mem.ForwardNone {
					t.Errorf("OnRemoteRead(%v): dirty data dropped without forwarding", st)
				}
				if !st.Dirty() && act != mem.ForwardNone && p.Name() != "msi" {
					// MSI's unconditional forward on a stale owner entry is
					// the pinned PR-5 accounting; no other protocol may
					// forward clean data.
					t.Errorf("OnRemoteRead(%v): clean copy answered with forward action %v", st, act)
				}
				if act == mem.ForwardOwner && !next.Dirty() {
					t.Errorf("OnRemoteRead(%v): owner-forward must keep the copy dirty, went to %v", st, next)
				}
			}
		})
	}
}

// TestProtocolRegistry pins the registry surface the CLIs expose: MSI
// first (the default), names resolving, the empty selection falling back
// to MSI, and unknown names rejected.
func TestProtocolRegistry(t *testing.T) {
	ps := mem.Protocols()
	if len(ps) < 3 {
		t.Fatalf("want at least msi/mesi/moesi registered, have %d", len(ps))
	}
	if ps[0].Name() != mem.DefaultProtocol || ps[0].Name() != "msi" {
		t.Fatalf("default protocol must be msi, registry leads with %q", ps[0].Name())
	}
	for _, p := range ps {
		got, err := mem.ProtocolByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("ProtocolByName(%q) = %v, %v", p.Name(), got, err)
		}
	}
	if p, err := mem.ProtocolByName(""); err != nil || p.Name() != "msi" {
		t.Errorf("empty selection must resolve to msi, got %v, %v", p, err)
	}
	if _, err := mem.ProtocolByName("mosi"); err == nil {
		t.Error("unknown protocol name must be rejected")
	}
	if err := mem.ParseDirectoryKind("limited:8"); err != nil {
		t.Errorf("limited:8 must parse: %v", err)
	}
	for _, bad := range []string{"limited:0", "limited:x", "fullmap:4", "coarse"} {
		if err := mem.ParseDirectoryKind(bad); err == nil {
			t.Errorf("directory kind %q must be rejected", bad)
		}
	}
}
