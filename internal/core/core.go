// Package core implements the paper's contribution: dynamic register
// renaming schemes for an out-of-order processor with a physical register
// file per class (integer and floating point).
//
// Three schemes are provided:
//
//   - Conventional: the R10000-style baseline. A physical register is
//     allocated for every destination at decode/rename and freed when the
//     next writer of the same logical register commits.
//   - VP with write-back allocation: destinations are renamed to
//     virtual-physical (VP) tags at decode; the physical register is
//     allocated when the instruction completes execution. If no register
//     may be allocated (under the NRR reservation rule that prevents
//     deadlock) the instruction is squashed back to the instruction queue
//     and re-executed.
//   - VP with issue allocation: the physical register is allocated when the
//     instruction issues; an instruction that cannot allocate does not
//     issue. No re-execution is needed.
//
// The pipeline drives a Renamer through a strict protocol: Rename in
// program order with strictly increasing instruction numbers, Complete when
// execution finishes (any order), Commit oldest-first, and Squash
// newest-first when recovering from a misprediction. Violations panic: they
// are simulator bugs, not recoverable conditions.
//
// Renamer state is replayed bit-for-bit by the run cache and the parallel
// stepper, so the package is determinism-checked: vplint's detsource
// analyzer bans unwaived wall clocks, goroutine launches and
// order-dependent map iteration here.
//
//vpr:detpkg
package core

import "repro/internal/isa"

// Scheme selects a renaming scheme.
type Scheme int

// The schemes under study.
const (
	SchemeConventional Scheme = iota
	SchemeVPWriteback
	SchemeVPIssue
)

// String names the scheme as used in experiment output.
func (s Scheme) String() string {
	switch s {
	case SchemeConventional:
		return "conv"
	case SchemeVPWriteback:
		return "vp-wb"
	case SchemeVPIssue:
		return "vp-issue"
	default:
		return "scheme?"
	}
}

// Params sizes a renamer. The zero value is invalid; use DefaultParams.
//
//vpr:cachekey
type Params struct {
	LogicalRegs int // per file; fixed at 32 by the ISA
	PhysRegs    int // per file; the paper sweeps 48, 64, 96
	VPRegs      int // per file; paper: logical + window size (VP schemes)
	NRRInt      int // reserved registers, integer file (VP schemes)
	NRRFP       int // reserved registers, FP file (VP schemes)

	// EarlyRelease enables the oracle-flavoured early register release
	// ablation on the conventional scheme (the paper's "second source of
	// waste", refs [8][10]): a previous mapping is freed as soon as its
	// value has been read by all renamed consumers, the next writer has
	// completed, and the next writer can no longer be squashed.
	EarlyRelease bool
}

// DefaultParams returns the paper's baseline configuration for the given
// scheme: 64 physical registers per file, NVR = 32 + 128, NRR at its
// maximum (physical minus logical = 32).
func DefaultParams() Params {
	return Params{
		LogicalRegs: isa.NumLogical,
		PhysRegs:    64,
		VPRegs:      isa.NumLogical + 128,
		NRRInt:      32,
		NRRFP:       32,
	}
}

// MaxNRR returns the largest legal NRR for the parameter set
// (physical registers minus logical registers).
func (p Params) MaxNRR() int { return p.PhysRegs - p.LogicalRegs }

// SrcOp is a renamed source operand.
type SrcOp struct {
	Present bool
	Zero    bool // hardwired zero register: no tag, always ready
	Class   isa.RegClass
	Tag     int  // wakeup tag: physical register (conventional) or VP register
	Ready   bool // value already available at rename time
}

// DstOp is a renamed destination.
type DstOp struct {
	Present bool
	Class   isa.RegClass
	Tag     int // tag consumers wake up on
}

// Renamed is the rename-stage output for one instruction.
type Renamed struct {
	Src1, Src2 SrcOp
	Dst        DstOp
}

// Renamer is the scheme-independent contract the pipeline drives.
type Renamer interface {
	// Rename maps the instruction's operands in program order. ok=false
	// means a structural stall (conventional scheme out of physical
	// registers): the pipeline must retry the same instruction later and
	// must not call Rename for younger instructions meanwhile.
	Rename(inum int64, in isa.Inst) (Renamed, bool)

	// AllocateAtIssue is consulted when the instruction is selected for
	// issue. Only the VP issue-allocation scheme can refuse (no register
	// available under the NRR rule); everyone else returns true.
	AllocateAtIssue(inum int64) bool

	// Complete is called when execution finishes, before write-back.
	// It returns the physical register that receives the value. ok=false
	// (VP write-back allocation only) means no register could be
	// allocated: the pipeline must squash the instruction back to the
	// instruction queue and re-execute it later (§3.3 of the paper).
	// Instructions without a destination always succeed with preg < 0.
	Complete(inum int64) (preg int, ok bool)

	// ReadPhys resolves an operand's wakeup tag to the physical register
	// holding its value. Valid only once the producer has completed (or,
	// for VP-issue, issued); consumers only read after wakeup, which
	// guarantees this.
	ReadPhys(class isa.RegClass, tag int) int

	// LookupReady re-tests an operand's readiness against current state
	// (used when re-dispatching after squashes).
	LookupReady(class isa.RegClass, tag int) bool

	// TagSpace returns the size of the wakeup-tag namespace for the
	// class: physical registers for the conventional scheme, VP registers
	// for the virtual-physical schemes. The pipeline's event-indexed
	// scheduler sizes its per-tag wakeup waiter lists with it.
	TagSpace(class isa.RegClass) int

	// SetWakeupSink registers the scheduler's notification sink. The
	// renamer must call TagSquashed whenever a destination wakeup tag is
	// reclaimed during recovery, so the scheduler can drop waiters
	// indexed under the tag before the tag is reused by a later rename.
	// A nil sink disables notifications.
	SetWakeupSink(s WakeupSink)

	// Commit retires the oldest renamed instruction.
	Commit(inum int64)

	// Squash undoes one renamed instruction during recovery. Calls must
	// proceed newest-first down to (but excluding) the recovery point.
	Squash(inum int64)

	// Tick is called once per simulated cycle with the current cycle
	// number and the newest instruction number that can no longer be
	// squashed. The cycle drives register-lifetime accounting; the safe
	// bound drives the early-release ablation.
	Tick(now, safe int64)

	// PressureStats reports the aggregate register-holding time observed
	// so far: the sum of cycles each freed physical register was held,
	// and the number of registers freed. Their ratio is the §3.1
	// register-pressure metric measured in vivo.
	PressureStats() (lifetimeSum, freed int64)

	// NoteRead informs the renamer which source operands have now been
	// physically read (first/second). Ordinary instructions read both at
	// issue; stores read their data operand only at completion. Needed
	// by the early-release ablation; a no-op elsewhere.
	NoteRead(inum int64, first, second bool)

	// InUse returns the number of physical registers currently allocated
	// in the class's file.
	InUse(class isa.RegClass) int

	// FreeCount returns the number of free physical registers.
	FreeCount(class isa.RegClass) int

	// CheckInvariants recomputes internal bookkeeping from first
	// principles and reports any inconsistency. Used by tests and the
	// pipeline's debug mode.
	CheckInvariants() error
}

// WakeupSink receives the renamer-side notifications the pipeline's
// event-indexed scheduler needs to keep its wakeup index consistent:
// recovery reclaims wakeup tags (squash undoes renames newest-first) and
// the tag numbers are recycled by later renames, so any waiters still
// filed under a reclaimed tag must be invalidated before the reuse. The
// complementary pool-side notification is SharedPool.SetFreeListener.
type WakeupSink interface {
	// TagSquashed reports that the destination tag of a squashed
	// instruction returned to the renamer's free pool.
	TagSquashed(class isa.RegClass, tag int)
}

// windowHint is the initial per-context capacity of renamer bookkeeping
// rings; they grow on demand, so this only tunes the first allocation
// (the paper's window is 128 instructions).
const windowHint = 256

// New builds a renamer for the scheme.
func New(s Scheme, p Params) Renamer {
	switch s {
	case SchemeConventional:
		return NewConventional(p)
	case SchemeVPWriteback:
		return NewVP(p, AllocAtWriteback)
	case SchemeVPIssue:
		return NewVP(p, AllocAtIssue)
	default:
		panic("core: unknown scheme")
	}
}

// classOf is the inverse of classIdx.
func classOf(f int) isa.RegClass {
	if f == 0 {
		return isa.RegInt
	}
	return isa.RegFP
}

// classIdx maps a register class to an internal file index.
func classIdx(c isa.RegClass) int {
	switch c {
	case isa.RegInt:
		return 0
	case isa.RegFP:
		return 1
	default:
		panic("core: operand has no register class")
	}
}

// freeList is a simple LIFO pool of register indices.
type freeList struct {
	regs []int
}

func newFreeList(lo, hi int) *freeList {
	f := &freeList{regs: make([]int, 0, hi-lo)}
	for r := hi - 1; r >= lo; r-- {
		f.regs = append(f.regs, r) // pop order: lo first
	}
	return f
}

func (f *freeList) len() int    { return len(f.regs) }
func (f *freeList) empty() bool { return len(f.regs) == 0 }

func (f *freeList) pop() int {
	r := f.regs[len(f.regs)-1]
	f.regs = f.regs[:len(f.regs)-1]
	return r
}

func (f *freeList) push(r int) {
	//vpr:allowalloc bounded: the free count never exceeds the initial capacity
	f.regs = append(f.regs, r)
}
