package core

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func intInst(dst, s1, s2 int) isa.Inst {
	return isa.Inst{Op: isa.ADD, Dst: isa.IntReg(dst), Src1: isa.IntReg(s1), Src2: isa.IntReg(s2)}
}

func fpInst(dst, s1, s2 int) isa.Inst {
	return isa.Inst{Op: isa.FADD, Dst: isa.FPReg(dst), Src1: isa.FPReg(s1), Src2: isa.FPReg(s2)}
}

func storeInst(base, val int) isa.Inst {
	return isa.Inst{Op: isa.STQ, Src1: isa.IntReg(base), Src2: isa.IntReg(val)}
}

func smallParams() Params {
	p := DefaultParams()
	p.PhysRegs = 40 // 8 beyond the logical registers: pressure quickly
	p.VPRegs = 32 + 64
	p.NRRInt = 4
	p.NRRFP = 4
	return p
}

// --- Conventional scheme ---------------------------------------------------

func TestConvRenameBasics(t *testing.T) {
	c := NewConventional(DefaultParams())
	r0, ok := c.Rename(0, intInst(1, 2, 3))
	if !ok {
		t.Fatal("rename refused with a full free list")
	}
	// Architectural sources are ready and map to their own registers.
	if !r0.Src1.Ready || r0.Src1.Tag != 2 || !r0.Src2.Ready || r0.Src2.Tag != 3 {
		t.Errorf("sources = %+v %+v", r0.Src1, r0.Src2)
	}
	if !r0.Dst.Present || r0.Dst.Tag < 32 {
		t.Errorf("dest = %+v, want a fresh register >= 32", r0.Dst)
	}
	// A consumer of r1 sees the new mapping, not ready yet.
	r1, _ := c.Rename(1, intInst(4, 1, 1))
	if r1.Src1.Tag != r0.Dst.Tag || r1.Src1.Ready {
		t.Errorf("consumer source = %+v, want tag %d not-ready", r1.Src1, r0.Dst.Tag)
	}
	// Producer completes: consumer operands become ready; tag resolves to
	// the same physical register.
	p, ok := c.Complete(0)
	if !ok || p != r0.Dst.Tag {
		t.Fatalf("complete = %d,%v", p, ok)
	}
	if !c.LookupReady(isa.RegInt, r1.Src1.Tag) {
		t.Error("operand should be ready after completion")
	}
	if c.ReadPhys(isa.RegInt, r1.Src1.Tag) != p {
		t.Error("tag must resolve to the completed register")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConvStallsWhenOutOfRegisters(t *testing.T) {
	p := smallParams() // 8 free per file
	c := NewConventional(p)
	var inum int64
	for i := 0; i < 8; i++ {
		if _, ok := c.Rename(inum, intInst(1, 2, 3)); !ok {
			t.Fatalf("rename %d refused with %d free", i, c.FreeCount(isa.RegInt))
		}
		inum++
	}
	if _, ok := c.Rename(inum, intInst(1, 2, 3)); ok {
		t.Fatal("ninth rename should stall: free list empty")
	}
	if c.RenameStalls != 1 {
		t.Errorf("stall count = %d", c.RenameStalls)
	}
	// FP file is independent: an FP instruction still renames — but the
	// pipeline would not ask (in-order decode); the renamer allows it.
	if _, ok := c.Rename(inum, fpInst(1, 2, 3)); !ok {
		t.Error("FP rename should succeed; files are independent")
	}
	inum++
	// Commit the oldest: its displaced mapping returns, rename resumes.
	c.Complete(0)
	c.Commit(0)
	if _, ok := c.Rename(inum, intInst(1, 2, 3)); !ok {
		t.Error("rename should succeed after a commit freed a register")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConvCommitFreesPreviousMapping(t *testing.T) {
	c := NewConventional(DefaultParams())
	free0 := c.FreeCount(isa.RegInt)
	r0, _ := c.Rename(0, intInst(5, 1, 2)) // displaces architectural r5 (phys 5)
	if c.FreeCount(isa.RegInt) != free0-1 {
		t.Fatal("allocation must consume a register")
	}
	c.Complete(0)
	c.Commit(0)
	if c.FreeCount(isa.RegInt) != free0 {
		t.Error("commit must free the displaced register")
	}
	// The new mapping survives: a consumer still reads r0's register.
	r1, _ := c.Rename(1, intInst(6, 5, 5))
	if r1.Src1.Tag != r0.Dst.Tag {
		t.Error("committed mapping must persist")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConvSquashRestores(t *testing.T) {
	c := NewConventional(DefaultParams())
	r0, _ := c.Rename(0, intInst(5, 1, 2))
	r1, _ := c.Rename(1, intInst(5, 5, 5))
	if r1.Src1.Tag != r0.Dst.Tag {
		t.Fatal("setup: consumer should see first writer")
	}
	free := c.FreeCount(isa.RegInt)
	c.Squash(1)
	if c.FreeCount(isa.RegInt) != free+1 {
		t.Error("squash must free the allocation")
	}
	// r5 now maps to instruction 0's register again.
	r2, _ := c.Rename(1, intInst(6, 5, 5))
	if r2.Src1.Tag != r0.Dst.Tag {
		t.Error("squash must restore the previous mapping")
	}
	c.Squash(1)
	c.Squash(0)
	// Back to architectural state.
	r3, _ := c.Rename(0, intInst(7, 5, 5))
	if r3.Src1.Tag != 5 || !r3.Src1.Ready {
		t.Errorf("after full squash, r5 = %+v, want architectural register 5", r3.Src1)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConvZeroRegister(t *testing.T) {
	c := NewConventional(DefaultParams())
	free := c.FreeCount(isa.RegInt)
	r, ok := c.Rename(0, isa.Inst{Op: isa.ADD, Dst: isa.IntReg(31), Src1: isa.IntReg(31), Src2: isa.IntReg(2)})
	if !ok {
		t.Fatal("rename failed")
	}
	if r.Dst.Present {
		t.Error("writes to r31 must not allocate")
	}
	if !r.Src1.Zero || !r.Src1.Ready {
		t.Errorf("r31 source = %+v, want zero+ready", r.Src1)
	}
	if c.FreeCount(isa.RegInt) != free {
		t.Error("no register may be consumed")
	}
}

func TestConvStoreRenamesSourcesOnly(t *testing.T) {
	c := NewConventional(DefaultParams())
	r, _ := c.Rename(0, storeInst(1, 2))
	if r.Dst.Present {
		t.Error("stores have no destination")
	}
	if !r.Src1.Present || !r.Src2.Present {
		t.Error("store sources must rename")
	}
	if _, ok := c.Complete(0); !ok {
		t.Error("stores always complete")
	}
	c.Commit(0)
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// --- VP scheme --------------------------------------------------------------

func TestVPRenameAllocatesNoPhysical(t *testing.T) {
	v := NewVP(DefaultParams(), AllocAtWriteback)
	inUse := v.InUse(isa.RegInt)
	r0, ok := v.Rename(0, intInst(1, 2, 3))
	if !ok {
		t.Fatal("VP rename must not stall")
	}
	if v.InUse(isa.RegInt) != inUse {
		t.Error("rename must not allocate a physical register")
	}
	if !r0.Dst.Present || r0.Dst.Tag < 32 {
		t.Errorf("dest = %+v, want fresh VP tag >= 32", r0.Dst)
	}
	// Architectural source: ready, resolvable to physical register.
	if !r0.Src1.Ready || v.ReadPhys(isa.RegInt, r0.Src1.Tag) != 2 {
		t.Errorf("source = %+v", r0.Src1)
	}
	// Consumer waits on the VP tag.
	r1, _ := v.Rename(1, intInst(4, 1, 1))
	if r1.Src1.Tag != r0.Dst.Tag || r1.Src1.Ready {
		t.Errorf("consumer = %+v", r1.Src1)
	}
	// Completion allocates and publishes.
	p, ok := v.Complete(0)
	if !ok || p < 0 {
		t.Fatalf("complete = %d,%v", p, ok)
	}
	if v.InUse(isa.RegInt) != inUse+1 {
		t.Error("completion must allocate exactly one register")
	}
	if !v.LookupReady(isa.RegInt, r1.Src1.Tag) || v.ReadPhys(isa.RegInt, r1.Src1.Tag) != p {
		t.Error("consumer must resolve to the allocated register after completion")
	}
	// A decode after completion sees the physical mapping ready.
	r2, _ := v.Rename(2, intInst(6, 1, 1))
	if !r2.Src1.Ready {
		t.Error("GMT must reflect completion for later decodes")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPCommitFreesThroughPMT(t *testing.T) {
	v := NewVP(DefaultParams(), AllocAtWriteback)
	free := v.FreeCount(isa.RegInt)
	v.Rename(0, intInst(5, 1, 2))
	v.Complete(0) // allocates one
	if v.FreeCount(isa.RegInt) != free-1 {
		t.Fatal("allocation accounting wrong")
	}
	v.Commit(0) // frees the register behind the *previous* VP mapping of r5
	if v.FreeCount(isa.RegInt) != free {
		t.Error("commit must free the displaced physical register via the PMT")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPWritebackAllocationRefusal(t *testing.T) {
	// 8 extra registers, NRR = 4. Fill the window with 12 instructions,
	// then complete them youngest-first: the young (unprotected) ones may
	// take only free-(NRR-Used) = 8-4 = 4 registers; the next must be
	// refused.
	p := smallParams()
	v := NewVP(p, AllocAtWriteback)
	for i := int64(0); i < 12; i++ {
		v.Rename(i, intInst(1, 2, 3))
	}
	allocated := 0
	var refused []int64
	for i := int64(11); i >= 4; i-- { // all unprotected (positions 4..11)
		if _, ok := v.Complete(i); ok {
			allocated++
		} else {
			refused = append(refused, i)
		}
	}
	if allocated != 4 {
		t.Errorf("unprotected allocations = %d, want 4", allocated)
	}
	if len(refused) != 4 {
		t.Errorf("refusals = %v, want 4 of them", refused)
	}
	// Protected instructions must still allocate (reserved registers).
	for i := int64(0); i < 4; i++ {
		if _, ok := v.Complete(i); !ok {
			t.Fatalf("protected instruction %d refused", i)
		}
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Commit the oldest. One register frees up, but it is reserved for
	// instruction 4, which just crossed the PRR pointer into the
	// protected set: 4 may allocate, the younger 7 still may not.
	v.Commit(0)
	if _, ok := v.Complete(7); ok {
		t.Error("unprotected retry must not take the register reserved for the protected set")
	}
	if _, ok := v.Complete(4); !ok {
		t.Error("newly protected instruction must allocate the reserved register")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPIssueAllocationGate(t *testing.T) {
	p := smallParams()
	v := NewVP(p, AllocAtIssue)
	for i := int64(0); i < 12; i++ {
		v.Rename(i, intInst(1, 2, 3))
	}
	// Youngest-first issue attempts: only 4 unprotected successes.
	granted := 0
	for i := int64(11); i >= 4; i-- {
		if v.AllocateAtIssue(i) {
			granted++
		}
	}
	if granted != 4 {
		t.Errorf("issue grants = %d, want 4", granted)
	}
	if v.IssueBlocks != 4 {
		t.Errorf("issue blocks = %d, want 4", v.IssueBlocks)
	}
	// Protected always issue.
	for i := int64(0); i < 4; i++ {
		if !v.AllocateAtIssue(i) {
			t.Fatalf("protected instruction %d blocked at issue", i)
		}
	}
	// Completing an issue-allocated instruction must not allocate again.
	inUse := v.InUse(isa.RegInt)
	if _, ok := v.Complete(0); !ok {
		t.Fatal("complete failed")
	}
	if v.InUse(isa.RegInt) != inUse {
		t.Error("completion after issue allocation must not allocate again")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPSquashUndoesEverything(t *testing.T) {
	v := NewVP(DefaultParams(), AllocAtWriteback)
	freeP := v.FreeCount(isa.RegInt)
	r0, _ := v.Rename(0, intInst(5, 1, 2))
	v.Rename(1, intInst(5, 5, 5)) // consumer + re-writer of r5
	v.Complete(0)
	v.Complete(1)
	// Squash both (newest first). All registers return; GMT restored to
	// architectural.
	v.Squash(1)
	v.Squash(0)
	if v.FreeCount(isa.RegInt) != freeP {
		t.Errorf("free registers = %d, want %d", v.FreeCount(isa.RegInt), freeP)
	}
	r, _ := v.Rename(0, intInst(6, 5, 5))
	if !r.Src1.Ready || v.ReadPhys(isa.RegInt, r.Src1.Tag) != 5 {
		t.Errorf("after squash, r5 = %+v, want architectural register 5", r.Src1)
	}
	_ = r0
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPSquashIncompleteProducerLeavesPrevPending(t *testing.T) {
	// Squash a second writer while the first writer is still incomplete:
	// the GMT must restore the VP mapping with V=0 (no physical register
	// yet) and a subsequent consumer must wait on the first writer's tag.
	v := NewVP(DefaultParams(), AllocAtWriteback)
	r0, _ := v.Rename(0, intInst(5, 1, 2)) // writer A, not completed
	v.Rename(1, intInst(5, 3, 4))          // writer B
	v.Squash(1)
	r2, _ := v.Rename(1, intInst(6, 5, 5)) // consumer of r5 again
	if r2.Src1.Ready {
		t.Error("consumer must wait: writer A has not completed")
	}
	if r2.Src1.Tag != r0.Dst.Tag {
		t.Error("consumer must wait on writer A's VP tag")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPPerClassIndependence(t *testing.T) {
	// Exhausting the integer file must not affect FP allocation — one of
	// the paper's listed advantages.
	p := smallParams()
	v := NewVP(p, AllocAtWriteback)
	var inum int64
	// Consume every unprotected integer register.
	for i := 0; i < 12; i++ {
		v.Rename(inum, intInst(1, 2, 3))
		inum++
	}
	for i := inum - 1; i >= 0; i-- {
		v.Complete(i) // some refused; that is fine
	}
	// FP traffic flows unimpeded.
	v.Rename(inum, fpInst(1, 2, 3))
	if _, ok := v.Complete(inum); !ok {
		t.Error("FP completion must not be blocked by integer pressure")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVPMaxNRRNeverRefusesProtected(t *testing.T) {
	// With NRR at maximum, the protected set is as large as the extra
	// registers; completing in program order must never be refused
	// (the conventional-equivalent configuration).
	p := DefaultParams()
	p.PhysRegs = 40
	p.VPRegs = 32 + 64
	p.NRRInt, p.NRRFP = 8, 8 // max for 40 physical
	v := NewVP(p, AllocAtWriteback)
	for i := int64(0); i < 8; i++ {
		v.Rename(i, intInst(1, 2, 3))
	}
	for i := int64(0); i < 8; i++ {
		if _, ok := v.Complete(i); !ok {
			t.Fatalf("in-order completion refused at %d with max NRR", i)
		}
	}
	if err := v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewSelectsScheme(t *testing.T) {
	if _, ok := New(SchemeConventional, DefaultParams()).(*Conventional); !ok {
		t.Error("conv")
	}
	if v, ok := New(SchemeVPWriteback, DefaultParams()).(*VP); !ok || v.Policy() != AllocAtWriteback {
		t.Error("vp-wb")
	}
	if v, ok := New(SchemeVPIssue, DefaultParams()).(*VP); !ok || v.Policy() != AllocAtIssue {
		t.Error("vp-issue")
	}
}

func TestSchemeAndPolicyStrings(t *testing.T) {
	if SchemeConventional.String() != "conv" || SchemeVPWriteback.String() != "vp-wb" ||
		SchemeVPIssue.String() != "vp-issue" {
		t.Error("scheme names are part of the experiment output format")
	}
	if AllocAtWriteback.String() != "write-back" || AllocAtIssue.String() != "issue" {
		t.Error("policy names")
	}
}

func TestBadParamsPanic(t *testing.T) {
	cases := []func(){
		func() { NewConventional(Params{LogicalRegs: 32, PhysRegs: 32}) },
		func() {
			NewVP(Params{LogicalRegs: 32, PhysRegs: 31, VPRegs: 100, NRRInt: 1, NRRFP: 1}, AllocAtWriteback)
		},
		func() {
			NewVP(Params{LogicalRegs: 32, PhysRegs: 64, VPRegs: 32, NRRInt: 1, NRRFP: 1}, AllocAtWriteback)
		},
		func() {
			NewVP(Params{LogicalRegs: 32, PhysRegs: 64, VPRegs: 160, NRRInt: 0, NRRFP: 1}, AllocAtWriteback)
		},
		func() {
			NewVP(Params{LogicalRegs: 32, PhysRegs: 64, VPRegs: 160, NRRInt: 33, NRRFP: 1}, AllocAtWriteback)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// --- Randomized protocol driver ---------------------------------------------

// driver exercises a Renamer with a random but protocol-correct sequence of
// rename/complete/commit/squash operations, checking invariants throughout.
// It is scheme-agnostic: refused completions are retried later, and the
// issue gate is consulted like the pipeline would.
type driver struct {
	t   *testing.T
	rng *rand.Rand
	r   Renamer

	window   int
	inflight []drvInst
	next     int64
	commits  int64
}

type drvInst struct {
	inum     int64
	hasDst   bool
	isBranch bool
	issued   bool
	complete bool
}

func newDriver(t *testing.T, r Renamer, window int, seed int64) *driver {
	return &driver{t: t, rng: rand.New(rand.NewSource(seed)), r: r, window: window}
}

func (d *driver) randInst() isa.Inst {
	switch d.rng.Intn(10) {
	case 0:
		return storeInst(d.rng.Intn(31), d.rng.Intn(31))
	case 1:
		return isa.Inst{Op: isa.BNE, Src1: isa.IntReg(d.rng.Intn(31)), Target: 0}
	case 2, 3:
		return fpInst(d.rng.Intn(32), d.rng.Intn(32), d.rng.Intn(32))
	default:
		return intInst(d.rng.Intn(32), d.rng.Intn(32), d.rng.Intn(32))
	}
}

// step performs one random protocol action.
func (d *driver) step() {
	d.t.Helper()
	switch d.rng.Intn(10) {
	case 0, 1, 2, 3: // rename
		if len(d.inflight) >= d.window {
			return
		}
		in := d.randInst()
		if _, ok := d.r.Rename(d.next, in); !ok {
			return // conventional stall; fine
		}
		d.inflight = append(d.inflight, drvInst{
			inum: d.next, hasDst: in.HasDst(), isBranch: in.Op.Info().IsBranch,
		})
		d.next++
	case 4, 5, 6: // issue+complete a random in-flight instruction
		if len(d.inflight) == 0 {
			return
		}
		k := d.rng.Intn(len(d.inflight))
		di := &d.inflight[k]
		if di.complete {
			return
		}
		if !di.issued {
			if !d.r.AllocateAtIssue(di.inum) {
				return // issue-allocation refused; retry later
			}
			di.issued = true
			d.r.NoteRead(di.inum, true, true)
		}
		if _, ok := d.r.Complete(di.inum); ok {
			di.complete = true
		}
	case 7, 8: // commit the oldest if complete
		if len(d.inflight) == 0 || !d.inflight[0].complete {
			return
		}
		d.r.Commit(d.inflight[0].inum)
		d.inflight = d.inflight[1:]
		d.commits++
	case 9: // a mispredicted branch squashes everything younger than it
		var branches []int
		for k, di := range d.inflight {
			if di.isBranch && !di.complete {
				branches = append(branches, k)
			}
		}
		if len(branches) == 0 {
			return
		}
		keep := branches[d.rng.Intn(len(branches))]
		for k := len(d.inflight) - 1; k > keep; k-- {
			d.r.Squash(d.inflight[k].inum)
		}
		d.inflight = d.inflight[:keep+1]
	}
	// Like the pipeline: everything older than the oldest unresolved
	// branch can no longer be squashed.
	d.r.Tick(int64(0), d.safeBound())
	if err := d.r.CheckInvariants(); err != nil {
		d.t.Fatalf("invariant violated after %d commits: %v", d.commits, err)
	}
}

// safeBound returns the newest inum that can no longer be squashed: the
// instruction just before the oldest unresolved branch (squashes in this
// driver only originate at incomplete branches).
func (d *driver) safeBound() int64 {
	for _, di := range d.inflight {
		if di.isBranch && !di.complete {
			return di.inum - 1
		}
	}
	return d.next - 1
}

// run drives until the target number of commits (or fails).
func (d *driver) run(commits int64, maxSteps int) {
	d.t.Helper()
	for i := 0; i < maxSteps; i++ {
		if d.commits >= commits {
			return
		}
		d.step()
	}
	d.t.Fatalf("only %d/%d commits after %d steps: livelock or deadlock", d.commits, commits, maxSteps)
}

func TestRandomizedProtocolConventional(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := newDriver(t, NewConventional(smallParams()), 32, seed)
		d.run(2000, 400000)
	}
}

func TestRandomizedProtocolConventionalEarlyRelease(t *testing.T) {
	p := smallParams()
	p.EarlyRelease = true
	for seed := int64(0); seed < 5; seed++ {
		c := NewConventional(p)
		d := newDriver(t, c, 32, seed)
		d.run(2000, 400000)
		if c.EarlyReleases == 0 {
			t.Error("early release never fired; ablation is inert")
		}
	}
}

func TestRandomizedProtocolVPWriteback(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := newDriver(t, NewVP(smallParams(), AllocAtWriteback), 48, seed)
		d.run(2000, 400000)
	}
}

func TestRandomizedProtocolVPIssue(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := newDriver(t, NewVP(smallParams(), AllocAtIssue), 48, seed)
		d.run(2000, 400000)
	}
}

func TestRandomizedProtocolVPMinNRR(t *testing.T) {
	// NRR=1 is the paper's most aggressive configuration; the driver must
	// still make forward progress (the deadlock-avoidance guarantee).
	p := smallParams()
	p.NRRInt, p.NRRFP = 1, 1
	for seed := int64(0); seed < 5; seed++ {
		d := newDriver(t, NewVP(p, AllocAtWriteback), 48, seed)
		d.run(2000, 600000)
	}
}

func TestRandomizedProtocolVPMaxNRR(t *testing.T) {
	p := smallParams()
	p.NRRInt, p.NRRFP = p.MaxNRR(), p.MaxNRR()
	for seed := int64(0); seed < 5; seed++ {
		d := newDriver(t, NewVP(p, AllocAtWriteback), 48, seed)
		d.run(2000, 600000)
	}
}

// Register pressure comparison: with identical traffic, the VP write-back
// scheme must hold registers for strictly less aggregate time than the
// conventional scheme — the paper's central claim, in miniature.
func TestVPHoldsFewerRegisters(t *testing.T) {
	sample := func(r Renamer) (pressure int64) {
		var inum int64
		// Pipeline-ish loop: rename 4, complete the oldest 2 late,
		// commit; sample InUse each "cycle".
		type slot struct{ inum int64 }
		var q []slot
		for cycle := 0; cycle < 2000; cycle++ {
			if len(q) < 16 {
				if _, ok := r.Rename(inum, intInst(int(inum%30), 1, 2)); ok {
					q = append(q, slot{inum})
					inum++
				}
			}
			if len(q) >= 16 {
				// complete + commit two oldest
				for k := 0; k < 2; k++ {
					s := q[0]
					r.AllocateAtIssue(s.inum)
					if _, ok := r.Complete(s.inum); !ok {
						break
					}
					r.Commit(s.inum)
					q = q[1:]
				}
			}
			pressure += int64(r.InUse(isa.RegInt))
		}
		return pressure
	}
	conv := sample(NewConventional(DefaultParams()))
	vp := sample(NewVP(DefaultParams(), AllocAtWriteback))
	if vp >= conv {
		t.Errorf("aggregate register occupancy: vp %d, conv %d; VP must be lower", vp, conv)
	}
}
