package core

import "fmt"

// SharedPool owns the physical register files when several hardware
// contexts share them — the paper's "future work" scenario: "in the context
// of multithreaded architectures the benefits of the virtual-physical
// register organization will be more important" (§5). Every renamer draws
// registers from the pool; each keeps its own map tables, so threads have
// private logical (and virtual-physical) namespaces over one shared
// physical file per class.
//
// Deadlock avoidance generalizes per §3.3: the pool tracks the aggregate
// outstanding reservation (Σ over threads of NRR − Used, per class) and
// unprotected allocations must leave more registers free than that.
//
// Single-threaded configurations use a pool with one member, which reduces
// exactly to the paper's original scheme.
type SharedPool struct {
	physRegs int
	free     [2]*freeList
	reserve  [2]int // Σ over VP members of (NRR − Used)
	members  int
	claimed  int // registers handed out for architectural state at attach

	// onFree, when set, observes every register returned to the pool.
	// The pipeline's scheduler uses it for shared-file diagnostics: a
	// free event is the moment allocation-blocked instructions of every
	// member context (SMT contention) can make progress again.
	onFree func(classIdx int)
}

// NewSharedPool builds a pool with physRegs registers per class file.
func NewSharedPool(physRegs int) *SharedPool {
	if physRegs <= 0 {
		panic("core: pool needs registers")
	}
	p := &SharedPool{physRegs: physRegs}
	for f := 0; f < 2; f++ {
		p.free[f] = newFreeList(0, physRegs)
	}
	return p
}

// PhysRegs returns the per-class file size.
func (p *SharedPool) PhysRegs() int { return p.physRegs }

// FreeCount returns the free registers in the class file.
func (p *SharedPool) FreeCount(f int) int { return p.free[f].len() }

// SetFreeListener registers fn to be called every time a register returns
// to the pool (commit, squash or early release, from any member context).
// A nil fn disables the notification.
func (p *SharedPool) SetFreeListener(fn func(classIdx int)) { p.onFree = fn }

// release returns one register to the class's free pool and notifies the
// listener. All renamer frees go through here.
func (p *SharedPool) release(f, reg int) {
	p.free[f].push(reg)
	if p.onFree != nil {
		p.onFree(f)
	}
}

// attach claims the architectural registers for one new context and, for
// VP members, registers its reservation in the aggregate.
func (p *SharedPool) attach(logical int, nrrInt, nrrFP int, vp bool) [2][]int {
	need := 2 * logical
	if p.free[0].len() < logical || p.free[1].len() < logical {
		panic(fmt.Sprintf("core: pool of %d registers/file cannot back another context of %d logical (%d contexts attached)",
			p.physRegs, logical, p.members))
	}
	var arch [2][]int
	for f := 0; f < 2; f++ {
		arch[f] = make([]int, logical)
		for l := 0; l < logical; l++ {
			arch[f][l] = p.free[f].pop()
		}
	}
	if vp {
		p.reserve[0] += nrrInt
		p.reserve[1] += nrrFP
		if p.free[0].len() < p.reserve[0] || p.free[1].len() < p.reserve[1] {
			panic(fmt.Sprintf("core: pool cannot honour aggregate NRR reservation after attaching context %d", p.members))
		}
	}
	p.members++
	p.claimed += need
	return arch
}

// mayAllocateUnprotected applies the generalized §3.3 guard: an
// unprotected instruction may take a register only while more remain free
// than every context's outstanding reservation combined.
func (p *SharedPool) mayAllocateUnprotected(f int) bool {
	return p.free[f].len() > p.reserve[f]
}

// adjustReserve moves the aggregate reservation when a member's Used
// counter changes (delta = −1 when a protected instruction allocates,
// +1 when one leaves the protected set without its register).
func (p *SharedPool) adjustReserve(f, delta int) {
	p.reserve[f] += delta
	if p.reserve[f] < 0 {
		panic("core: negative aggregate reservation")
	}
}

// PoolMember is implemented by renamers that draw from a SharedPool; it
// reports every physical register the member currently references.
type PoolMember interface {
	HeldRegisters(f int) []int
}

// CheckInvariants verifies that the free list and every member's held
// registers partition each class file exactly.
func (p *SharedPool) CheckInvariants(members ...PoolMember) error {
	for f := 0; f < 2; f++ {
		seen := make([]int, p.physRegs)
		for _, r := range p.free[f].regs {
			seen[r]++
		}
		for _, m := range members {
			for _, r := range m.HeldRegisters(f) {
				if r < 0 || r >= p.physRegs {
					return fmt.Errorf("core: pool member holds out-of-range register %d", r)
				}
				seen[r]++
			}
		}
		for r, n := range seen {
			if n != 1 {
				return fmt.Errorf("core: pool file %d register %d referenced %d times", f, r, n)
			}
		}
	}
	return nil
}
