package core

import (
	"testing"

	"repro/internal/isa"
)

// TestPaperSection33Narrative reproduces the paper's §3.3 walk-through:
// NRR=1, 32 logical and 64 physical registers, a 64-entry window full of
// integer-destination instructions. The oldest is a long-latency
// instruction; the youngest 31 complete first and are allowed to take the
// 31 unreserved registers; everything in between is refused until commits
// free registers one by one — "which forces a sequential execution".
func TestPaperSection33Narrative(t *testing.T) {
	p := Params{
		LogicalRegs: 32,
		PhysRegs:    64,
		VPRegs:      32 + 64,
		NRRInt:      1,
		NRRFP:       1,
	}
	v := NewVP(p, AllocAtWriteback)

	// Fill a 64-entry window: every instruction writes an integer register.
	for i := int64(0); i < 64; i++ {
		v.Rename(i, intInst(int(i%30), 1, 2))
	}
	if free := v.FreeCount(isa.RegInt); free != 32 {
		t.Fatalf("initial free = %d, want 32", free)
	}

	// The youngest 31 complete and may all allocate: only one register is
	// reserved (NRR=1, Used=0 → allocation allowed while free > 1).
	for i := int64(63); i >= 33; i-- {
		if _, ok := v.Complete(i); !ok {
			t.Fatalf("youngest instruction %d refused with %d free", i, v.FreeCount(isa.RegInt))
		}
	}
	if free := v.FreeCount(isa.RegInt); free != 1 {
		t.Fatalf("free after youngest 31 allocated = %d, want 1 (the reserved register)", free)
	}

	// The instructions in between are refused: the last register belongs
	// to the oldest.
	for i := int64(32); i >= 1; i-- {
		if _, ok := v.Complete(i); ok {
			t.Fatalf("middle instruction %d must be refused (reserved register)", i)
		}
	}

	// The oldest completes with the reserved register and commits,
	// freeing its previous mapping; then the machine proceeds strictly
	// one instruction at a time — the paper's sequential phase.
	if _, ok := v.Complete(0); !ok {
		t.Fatal("oldest instruction must always get the reserved register")
	}
	v.Commit(0)
	for i := int64(1); i <= 32; i++ {
		// Exactly one register is available now; only the new oldest
		// (protected) instruction may take it.
		if _, ok := v.Complete(i); !ok {
			t.Fatalf("sequential phase: instruction %d refused", i)
		}
		if i+1 <= 32 {
			if _, ok := v.Complete(i + 1); ok {
				t.Fatalf("sequential phase: instruction %d should have been refused while %d holds the free register", i+1, i)
			}
		}
		v.Commit(i)
		if err := v.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// The window drains completely.
	for i := int64(33); i < 64; i++ {
		v.Commit(i)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := v.InUse(isa.RegInt); got != 32 {
		t.Errorf("registers in use after drain = %d, want the 32 architectural", got)
	}
}
