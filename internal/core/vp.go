package core

import (
	"fmt"

	"repro/internal/isa"
)

// AllocPolicy selects when the VP scheme allocates physical registers.
type AllocPolicy int

// The two allocation points investigated by the paper (§3.2 and §3.4).
const (
	AllocAtWriteback AllocPolicy = iota
	AllocAtIssue
)

// String names the policy.
func (p AllocPolicy) String() string {
	if p == AllocAtWriteback {
		return "write-back"
	}
	return "issue"
}

// gmtEntry is one row of the general map table: the current virtual-physical
// mapping of a logical register, the physical register behind it (if
// already allocated) and the V bit.
type gmtEntry struct {
	vp    int
	p     int
	valid bool
}

// vpEntry is the per-instruction state of the VP renamer.
type vpEntry struct {
	inum int64

	hasDst  bool
	class   int
	logical uint8
	vp      int
	prevVP  int
	p       int // allocated physical register, -1 until allocation
	// ready means the value has been produced (write-back happened).
	ready bool
}

// VP implements the virtual-physical register organisation: the GMT and PMT
// map tables, free pools of VP and physical registers per class, the NRR
// reservation machinery (PRR pointers and Reg/Used counters realised over an
// ordered deque of in-flight destination instructions), and both allocation
// policies.
type VP struct {
	params Params
	policy AllocPolicy
	pool   *SharedPool

	gmt     [2][]gmtEntry
	pmt     [2][]int // vp -> physical (-1 unmapped)
	vpReady [2][]bool
	vpFree  [2]*freeList
	nrr     [2]int
	pending [2]ring[int64] // in-flight dest instructions, program order (the paper's PRR/Reg counters)
	used    [2]int         // allocated registers among the NRR oldest (the paper's Used counters)
	// entries holds the in-flight instructions in program order (renamed
	// at the back, committed from the front, squashed from the back);
	// instruction numbers in the window are consecutive, so lookup by
	// inum is an offset from the front.
	entries ring[vpEntry]
	sink    WakeupSink

	// Register-lifetime accounting (§3.1 pressure metric, in vivo).
	now         int64
	allocCycle  [2][]int64
	lifetimeSum int64
	freed       int64

	// Statistics.
	AllocFailures int64 // write-back allocations refused (re-executions follow)
	IssueBlocks   int64 // issue allocations refused
}

var _ Renamer = (*VP)(nil)

// NewVP builds a virtual-physical renamer. Initially each logical register
// is mapped to VP register i, which is mapped to physical register i, so
// architectural state is readable exactly as in the conventional scheme.
func NewVP(p Params, policy AllocPolicy) *VP {
	if p.PhysRegs <= p.LogicalRegs {
		panic(fmt.Sprintf("core: %d physical registers cannot back %d logical", p.PhysRegs, p.LogicalRegs))
	}
	return NewVPShared(p, policy, NewSharedPool(p.PhysRegs))
}

// NewVPShared builds a virtual-physical renamer drawing from a shared
// physical register pool (SMT: one renamer per hardware context, private
// GMT/PMT and VP namespace, shared physical files). The context's
// architectural registers are claimed from the pool immediately and its
// NRR reservation joins the pool's aggregate deadlock-avoidance guard.
func NewVPShared(p Params, policy AllocPolicy, pool *SharedPool) *VP {
	if p.VPRegs <= p.LogicalRegs {
		panic("core: need more VP registers than logical registers")
	}
	maxNRR := p.MaxNRR()
	for _, nrr := range []int{p.NRRInt, p.NRRFP} {
		if nrr < 1 || nrr > maxNRR {
			panic(fmt.Sprintf("core: NRR %d out of range [1,%d]", nrr, maxNRR))
		}
	}
	v := &VP{
		params:  p,
		policy:  policy,
		pool:    pool,
		nrr:     [2]int{p.NRRInt, p.NRRFP},
		entries: newRing[vpEntry](windowHint),
	}
	arch := pool.attach(p.LogicalRegs, p.NRRInt, p.NRRFP, true)
	for f := 0; f < 2; f++ {
		v.pending[f] = newRing[int64](windowHint)
		v.allocCycle[f] = make([]int64, pool.PhysRegs())
		v.gmt[f] = make([]gmtEntry, p.LogicalRegs)
		v.pmt[f] = make([]int, p.VPRegs)
		v.vpReady[f] = make([]bool, p.VPRegs)
		for i := range v.pmt[f] {
			v.pmt[f][i] = -1
		}
		for l := 0; l < p.LogicalRegs; l++ {
			v.gmt[f][l] = gmtEntry{vp: l, p: arch[f][l], valid: true}
			v.pmt[f][l] = arch[f][l]
			v.vpReady[f][l] = true
		}
		v.vpFree[f] = newFreeList(p.LogicalRegs, p.VPRegs)
	}
	return v
}

// Policy returns the allocation policy.
func (v *VP) Policy() AllocPolicy { return v.policy }

// Rename implements Renamer. The VP scheme never stalls here: the VP pool
// is sized (logical + window) so a tag is always available.
//
//vpr:hotpath
func (v *VP) Rename(inum int64, in isa.Inst) (Renamed, bool) {
	if n := v.entries.len(); n > 0 && inum <= v.entries.at(n-1).inum {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: rename out of order (%d after %d)", inum, v.entries.at(n-1).inum))
	}
	e := v.entries.pushBack(vpEntry{inum: inum, p: -1, prevVP: -1})

	var out Renamed
	out.Src1 = v.renameSrc(in.Src1)
	out.Src2 = v.renameSrc(in.Src2)

	if in.HasDst() {
		f := classIdx(in.Dst.Class)
		if v.vpFree[f].empty() {
			// Sized per §3.2.1 this cannot happen; a failure is a
			// configuration or pipeline bug.
			panic("core: out of virtual-physical registers; size VPRegs = logical + window")
		}
		vp := v.vpFree[f].pop()
		e.hasDst = true
		e.class = f
		e.logical = in.Dst.Index
		e.vp = vp
		e.prevVP = v.gmt[f][in.Dst.Index].vp
		v.gmt[f][in.Dst.Index] = gmtEntry{vp: vp, p: -1, valid: false}
		v.pmt[f][vp] = -1
		v.vpReady[f][vp] = false
		v.pending[f].pushBack(inum)
		out.Dst = DstOp{Present: true, Class: in.Dst.Class, Tag: vp}
	}
	return out, true
}

func (v *VP) renameSrc(r isa.Reg) SrcOp {
	if r.Class == isa.RegNone {
		return SrcOp{}
	}
	if r.IsZero() {
		return SrcOp{Present: true, Zero: true, Class: r.Class, Ready: true}
	}
	f := classIdx(r.Class)
	g := v.gmt[f][r.Index]
	// The operand is identified by its VP tag either way; the ready bit
	// tells the queue whether the value has already been produced.
	return SrcOp{Present: true, Class: r.Class, Tag: g.vp, Ready: v.vpReady[f][g.vp]}
}

// protected reports whether the instruction is among the NRR oldest
// uncommitted instructions with a destination in its class — the set the
// PRRint/PRRfp pointers delimit in the paper.
func (v *VP) protected(e *vpEntry) bool {
	q := &v.pending[e.class]
	nrr := v.nrr[e.class]
	if q.len() <= nrr {
		return true
	}
	return e.inum <= *q.at(nrr - 1)
}

// mayAllocate applies §3.3: reserved instructions always may; others only
// while more registers remain free than the reservation still needs.
func (v *VP) mayAllocate(e *vpEntry) bool {
	if v.protected(e) {
		if v.pool.free[e.class].empty() {
			// The reservation invariant guarantees a register here;
			// running dry is a bookkeeping bug.
			panic("core: reserved instruction found no free register")
		}
		return true
	}
	return v.pool.mayAllocateUnprotected(e.class)
}

// allocate binds a physical register to the instruction's VP register.
func (v *VP) allocate(e *vpEntry) {
	p := v.pool.free[e.class].pop()
	v.allocCycle[e.class][p] = v.now
	e.p = p
	v.pmt[e.class][e.vp] = p
	if v.protected(e) {
		v.setUsed(e.class, v.used[e.class]+1)
	}
}

// setUsed updates the Used counter and mirrors the change into the pool's
// aggregate reservation (reserve = NRR − Used per context and class).
func (v *VP) setUsed(f, used int) {
	v.pool.adjustReserve(f, v.used[f]-used)
	v.used[f] = used
}

// AllocateAtIssue implements Renamer. Under the issue policy an instruction
// with a destination may only issue once it can take a register.
//
//vpr:hotpath
func (v *VP) AllocateAtIssue(inum int64) bool {
	if v.policy != AllocAtIssue {
		return true
	}
	e := v.mustEntry(inum, "allocate-at-issue")
	if !e.hasDst || e.p >= 0 {
		return true
	}
	if !v.mayAllocate(e) {
		v.IssueBlocks++
		return false
	}
	v.allocate(e)
	return true
}

// Complete implements Renamer. Under the write-back policy this is the
// allocation point; refusal means squash-and-re-execute.
//
//vpr:hotpath
func (v *VP) Complete(inum int64) (int, bool) {
	e := v.mustEntry(inum, "complete")
	if !e.hasDst {
		e.ready = true
		return -1, true
	}
	if e.ready {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: instruction %d completed twice", inum))
	}
	if e.p < 0 {
		if v.policy == AllocAtIssue {
			panic("core: issue-allocated instruction completing without a register")
		}
		if !v.mayAllocate(e) {
			v.AllocFailures++
			return -1, false
		}
		v.allocate(e)
	}
	e.ready = true
	v.vpReady[e.class][e.vp] = true
	// Propagate to the GMT so later decodes see the physical mapping
	// (paper: the VP/physical pair is broadcast to the GMT as well).
	if g := &v.gmt[e.class][e.logical]; g.vp == e.vp {
		g.p = e.p
		g.valid = true
	}
	return e.p, true
}

// ReadPhys implements Renamer via the PMT.
//
//vpr:hotpath
func (v *VP) ReadPhys(class isa.RegClass, tag int) int {
	p := v.pmt[classIdx(class)][tag]
	if p < 0 {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: reading unmapped VP register %s/%d", class, tag))
	}
	return p
}

// LookupReady implements Renamer.
//
//vpr:hotpath
func (v *VP) LookupReady(class isa.RegClass, tag int) bool {
	return v.vpReady[classIdx(class)][tag]
}

// TagSpace implements Renamer: wakeup tags are VP register numbers.
func (v *VP) TagSpace(class isa.RegClass) int { return v.params.VPRegs }

// SetWakeupSink implements Renamer.
func (v *VP) SetWakeupSink(s WakeupSink) { v.sink = s }

// NoteRead implements Renamer (no-op: the VP scheme frees on commit only).
//
//vpr:hotpath
func (v *VP) NoteRead(int64, bool, bool) {}

// Tick implements Renamer: advance the clock for lifetime accounting.
//
//vpr:hotpath
func (v *VP) Tick(now, _ int64) { v.now = now }

// PressureStats implements Renamer.
func (v *VP) PressureStats() (int64, int64) { return v.lifetimeSum, v.freed }

// Commit implements Renamer: free the previous VP register and the physical
// register reachable through it (paper §3.2.2), then advance the PRR
// machinery.
//
//vpr:hotpath
func (v *VP) Commit(inum int64) {
	if v.entries.len() == 0 || v.entries.at(0).inum != inum {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: commit out of order (%d is not the oldest)", inum))
	}
	e := v.entries.at(0)
	if e.hasDst {
		if !e.ready || e.p < 0 {
			//vpr:allowalloc panic message: an invariant violation aborts the run
			panic(fmt.Sprintf("core: committing instruction %d without its result register", inum))
		}
		f := e.class
		prevP := v.pmt[f][e.prevVP]
		if prevP < 0 {
			//vpr:allowalloc panic message: an invariant violation aborts the run
			panic(fmt.Sprintf("core: previous VP register %d of %d has no physical mapping at commit", e.prevVP, inum))
		}
		v.pmt[f][e.prevVP] = -1
		v.vpReady[f][e.prevVP] = false
		v.vpFree[f].push(e.prevVP)
		v.pool.release(f, prevP)
		v.lifetimeSum += v.now - v.allocCycle[f][prevP]
		v.freed++

		// PRR/Used update: the committing instruction is the oldest in
		// the pending deque and, having completed, held a register.
		q := &v.pending[f]
		if q.len() == 0 || *q.at(0) != inum {
			panic("core: commit does not match pending order")
		}
		q.popFront()
		v.setUsed(f, v.used[f]-1) // the departing instruction was protected and allocated
		// The instruction crossing the PRR pointer becomes protected.
		if q.len() >= v.nrr[f] {
			joining := v.mustEntry(*q.at(v.nrr[f] - 1), "prr-join")
			if joining.p >= 0 {
				v.setUsed(f, v.used[f]+1)
			}
		}
	}
	v.entries.popFront()
}

// Squash implements Renamer: newest-first undo per §3.2.2 — restore the
// GMT from the previous VP mapping and return both registers to their
// pools.
//
//vpr:hotpath
func (v *VP) Squash(inum int64) {
	n := v.entries.len()
	if n == 0 || v.entries.at(n-1).inum != inum {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: squash out of order (%d is not the youngest)", inum))
	}
	e := v.entries.at(n - 1)
	if e.hasDst {
		f := e.class
		if v.gmt[f][e.logical].vp != e.vp {
			panic("core: GMT corrupt during recovery")
		}
		wasProtected := v.protected(e)
		// Return the allocated physical register, if any.
		if e.p >= 0 {
			v.pmt[f][e.vp] = -1
			v.pool.release(f, e.p)
			v.lifetimeSum += v.now - v.allocCycle[f][e.p]
			v.freed++
			if wasProtected {
				v.setUsed(f, v.used[f]-1)
			}
		}
		v.vpReady[f][e.vp] = false
		v.vpFree[f].push(e.vp)
		if v.sink != nil {
			v.sink.TagSquashed(classOf(f), e.vp)
		}
		// Restore the previous mapping, with its physical register if
		// one is still attached (PMT lookup, as in the paper).
		prevP := v.pmt[f][e.prevVP]
		v.gmt[f][e.logical] = gmtEntry{vp: e.prevVP, p: prevP, valid: prevP >= 0}

		// Remove from the pending deque (it must be the newest).
		q := &v.pending[f]
		if q.len() == 0 || *q.at(q.len() - 1) != inum {
			panic("core: squash does not match pending order")
		}
		q.popBack()
		// If the deque shrank to NRR or below, the formerly
		// (NRR+1)-th... nothing joins the protected set on squash; the
		// set only loses this member, handled above.
	}
	v.entries.popBack()
}

// InUse implements Renamer: pool-wide allocated registers (all contexts).
func (v *VP) InUse(class isa.RegClass) int {
	f := classIdx(class)
	return v.pool.PhysRegs() - v.pool.free[f].len()
}

// FreeCount implements Renamer.
func (v *VP) FreeCount(class isa.RegClass) int {
	return v.pool.free[classIdx(class)].len()
}

// HeldRegisters reports every physical register this context references
// through its PMT.
func (v *VP) HeldRegisters(f int) []int {
	var held []int
	for _, p := range v.pmt[f] {
		if p >= 0 {
			held = append(held, p)
		}
	}
	return held
}

// CheckInvariants implements Renamer: the physical file must partition
// exactly between free pool and PMT mappings (validated pool-wide when the
// pool is private, per-context otherwise); the VP file must partition
// between its free pool and live mappings; the Used counters must match a
// recount over the NRR oldest pending instructions; the pending deques
// must be sorted.
func (v *VP) CheckInvariants() error {
	if v.pool.members == 1 {
		if err := v.pool.CheckInvariants(v); err != nil {
			return err
		}
	} else {
		for f := 0; f < 2; f++ {
			seen := make(map[int]int)
			for _, r := range v.HeldRegisters(f) {
				seen[r]++
				if seen[r] > 1 {
					return fmt.Errorf("vp: file %d register %d held twice by one context", f, r)
				}
			}
		}
	}
	for f := 0; f < 2; f++ {
		// VP registers: free, or live (reachable as a current GMT
		// mapping or as an in-flight prevVP/vp).
		seenVP := make([]int, v.params.VPRegs)
		for _, r := range v.vpFree[f].regs {
			seenVP[r]++
		}
		for l := 0; l < v.params.LogicalRegs; l++ {
			seenVP[v.gmt[f][l].vp]++
		}
		for i := 0; i < v.entries.len(); i++ {
			e := v.entries.at(i)
			if e.hasDst && e.class == f && e.prevVP >= 0 {
				seenVP[e.prevVP]++
			}
		}
		for r, n := range seenVP {
			if n != 1 {
				return fmt.Errorf("vp: file %d VP register %d referenced %d times", f, r, n)
			}
		}
		// Deque sortedness and Used recount.
		q := &v.pending[f]
		used := 0
		for i := 0; i < q.len(); i++ {
			inum := *q.at(i)
			if i > 0 && *q.at(i - 1) >= inum {
				return fmt.Errorf("vp: file %d pending deque not sorted at %d", f, i)
			}
			e := v.entry(inum)
			if e == nil {
				return fmt.Errorf("vp: file %d pending instruction %d missing", f, inum)
			}
			if i < v.nrr[f] && e.p >= 0 {
				used++
			}
		}
		if used != v.used[f] {
			return fmt.Errorf("vp: file %d Used counter %d, recount %d", f, v.used[f], used)
		}
	}
	return nil
}

// key implements the ring lookup constraint.
func (e *vpEntry) key() int64 { return e.inum }

// entry returns the in-flight entry for inum, or nil if it is not in the
// window.
func (v *VP) entry(inum int64) *vpEntry {
	return lookup[vpEntry](&v.entries, inum)
}

func (v *VP) mustEntry(inum int64, op string) *vpEntry {
	e := v.entry(inum)
	if e == nil {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: %s of unknown instruction %d", op, inum))
	}
	return e
}
