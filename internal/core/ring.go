package core

// ring is a growable double-ended queue over a power-of-two circular
// buffer. The renamers keep their per-instruction bookkeeping in rings
// instead of maps: instructions are renamed in program order, retired from
// the front (commit) and undone from the back (squash), so the live set is
// always a contiguous window and random access by instruction number is an
// index subtraction away. Compared to a map this removes one heap
// allocation and one hash per instruction from the simulation hot path.
type ring[T any] struct {
	buf  []T // len(buf) is a power of two
	head int
	n    int
}

func newRing[T any](capacity int) ring[T] {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return ring[T]{buf: make([]T, c)}
}

func (r *ring[T]) len() int { return r.n }

// at returns a pointer to the i-th oldest element.
func (r *ring[T]) at(i int) *T {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// pushBack appends v and returns a pointer to the stored element. The
// pointer is valid until the next grow (pushBack when full).
func (r *ring[T]) pushBack(v T) *T {
	if r.n == len(r.buf) {
		r.grow()
	}
	p := &r.buf[(r.head+r.n)&(len(r.buf)-1)]
	*p = v
	r.n++
	return p
}

func (r *ring[T]) popFront() {
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *ring[T]) popBack() {
	var zero T
	r.n--
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = zero
}

func (r *ring[T]) grow() {
	next := make([]T, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		next[i] = *r.at(i)
	}
	r.buf = next
	r.head = 0
}

// keyed constrains ring elements addressable by a strictly increasing
// int64 key (the renamers' instruction numbers).
type keyed[T any] interface {
	*T
	key() int64
}

// lookup finds the element whose key equals k, or returns nil. Keys are
// strictly increasing front to back, so when they are also consecutive
// (as the pipeline's instruction numbers are) the element sits exactly
// k-first positions from the front; otherwise that position bounds a
// binary search.
func lookup[T any, PT keyed[T]](r *ring[T], k int64) PT {
	n := r.len()
	if n == 0 {
		return nil
	}
	off := k - PT(r.at(0)).key()
	if off < 0 {
		return nil
	}
	if off >= int64(n) {
		off = int64(n) - 1
	}
	if e := PT(r.at(int(off))); e.key() == k {
		return e
	}
	lo, hi := 0, int(off) // at(off).key() > k here: search below it
	for lo < hi {
		mid := (lo + hi) / 2
		if PT(r.at(mid)).key() < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if e := PT(r.at(lo)); e.key() == k {
		return e
	}
	return nil
}
