package core

import (
	"fmt"

	"repro/internal/isa"
)

// convEntry is the per-instruction bookkeeping of the conventional scheme.
type convEntry struct {
	inum int64

	hasDst   bool
	class    int // file index of the destination
	logical  uint8
	newP     int // register allocated at rename
	prevP    int // mapping it displaced (freed at commit)
	complete bool

	// Early-release ablation bookkeeping.
	srcP      [2]int // physical registers named by the sources (-1 if none)
	srcClass  [2]int // file index of each source
	srcRead   [2]bool
	prevFreed bool // prevP already returned by early release
}

// Conventional is the R10000-style renamer: map table + free list per
// class, allocation at decode, release at commit of the next writer.
type Conventional struct {
	params   Params
	pool     *SharedPool
	mapTable [2][]int  // logical -> physical
	ready    [2][]bool // physical register holds a valid value
	// entries holds the in-flight instructions in program order: renamed
	// at the back, committed from the front, squashed from the back.
	// Instruction numbers in the window are consecutive, so lookup by
	// inum is an offset from the front.
	entries ring[convEntry]

	safeBound    int64   // instructions <= safeBound cannot be squashed
	earlyPending []int64 // inums with a pending early release
	sink         WakeupSink

	// Register-lifetime accounting (§3.1 pressure metric, in vivo).
	now         int64
	allocCycle  [2][]int64
	lifetimeSum int64
	freed       int64

	// Statistics.
	RenameStalls  int64 // Rename refusals due to an empty free list
	EarlyReleases int64
}

var _ Renamer = (*Conventional)(nil)

// NewConventional builds the baseline renamer. The initial state maps
// logical register i to physical register i in each file, with the
// remaining registers free — the paper's observation that "when the
// instruction window is empty each logical register is mapped to a physical
// register".
func NewConventional(p Params) *Conventional {
	if p.PhysRegs <= p.LogicalRegs {
		panic(fmt.Sprintf("core: %d physical registers cannot back %d logical", p.PhysRegs, p.LogicalRegs))
	}
	return NewConventionalShared(p, NewSharedPool(p.PhysRegs))
}

// NewConventionalShared builds a conventional renamer drawing from a shared
// physical register pool (SMT: one renamer per hardware context). The
// context's architectural registers are claimed from the pool immediately.
func NewConventionalShared(p Params, pool *SharedPool) *Conventional {
	c := &Conventional{
		params:    p,
		pool:      pool,
		entries:   newRing[convEntry](windowHint),
		safeBound: -1,
	}
	arch := pool.attach(p.LogicalRegs, 0, 0, false)
	for f := 0; f < 2; f++ {
		c.mapTable[f] = make([]int, p.LogicalRegs)
		c.ready[f] = make([]bool, pool.PhysRegs())
		c.allocCycle[f] = make([]int64, pool.PhysRegs())
		for l := 0; l < p.LogicalRegs; l++ {
			c.mapTable[f][l] = arch[f][l]
			c.ready[f][arch[f][l]] = true
		}
	}
	return c
}

// Rename implements Renamer.
//
//vpr:hotpath
func (c *Conventional) Rename(inum int64, in isa.Inst) (Renamed, bool) {
	if n := c.entries.len(); n > 0 && inum <= c.entries.at(n-1).inum {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: rename out of order (%d after %d)", inum, c.entries.at(n-1).inum))
	}
	if in.HasDst() && c.pool.free[classIdx(in.Dst.Class)].empty() {
		c.RenameStalls++
		return Renamed{}, false
	}
	e := c.entries.pushBack(convEntry{inum: inum, newP: -1, prevP: -1, srcP: [2]int{-1, -1}})

	var out Renamed
	out.Src1 = c.renameSrc(in.Src1, e, 0)
	out.Src2 = c.renameSrc(in.Src2, e, 1)

	if in.HasDst() {
		f := classIdx(in.Dst.Class)
		p := c.pool.free[f].pop()
		c.allocCycle[f][p] = c.now
		e.hasDst = true
		e.class = f
		e.logical = in.Dst.Index
		e.newP = p
		e.prevP = c.mapTable[f][in.Dst.Index]
		c.mapTable[f][in.Dst.Index] = p
		c.ready[f][p] = false
		out.Dst = DstOp{Present: true, Class: in.Dst.Class, Tag: p}
	}
	return out, true
}

func (c *Conventional) renameSrc(r isa.Reg, e *convEntry, slot int) SrcOp {
	if r.Class == isa.RegNone {
		return SrcOp{}
	}
	if r.IsZero() {
		return SrcOp{Present: true, Zero: true, Class: r.Class, Ready: true}
	}
	f := classIdx(r.Class)
	p := c.mapTable[f][r.Index]
	e.srcP[slot] = p
	e.srcClass[slot] = f
	return SrcOp{Present: true, Class: r.Class, Tag: p, Ready: c.ready[f][p]}
}

// AllocateAtIssue implements Renamer; the conventional scheme allocated at
// rename, so issue never blocks on registers.
//
//vpr:hotpath
func (c *Conventional) AllocateAtIssue(int64) bool { return true }

// Complete implements Renamer: mark the destination value available.
//
//vpr:hotpath
func (c *Conventional) Complete(inum int64) (int, bool) {
	e := c.mustEntry(inum, "complete")
	if e.complete {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: instruction %d completed twice", inum))
	}
	e.complete = true
	if !e.hasDst {
		return -1, true
	}
	c.ready[e.class][e.newP] = true
	if c.params.EarlyRelease && e.prevP >= 0 {
		//vpr:allowalloc amortized: earlyPending retains capacity across cycles
		c.earlyPending = append(c.earlyPending, inum)
	}
	return e.newP, true
}

// ReadPhys implements Renamer: the tag is the physical register.
//
//vpr:hotpath
func (c *Conventional) ReadPhys(class isa.RegClass, tag int) int { return tag }

// LookupReady implements Renamer.
//
//vpr:hotpath
func (c *Conventional) LookupReady(class isa.RegClass, tag int) bool {
	return c.ready[classIdx(class)][tag]
}

// TagSpace implements Renamer: wakeup tags are physical register numbers.
func (c *Conventional) TagSpace(class isa.RegClass) int { return c.pool.PhysRegs() }

// SetWakeupSink implements Renamer.
func (c *Conventional) SetWakeupSink(s WakeupSink) { c.sink = s }

// NoteRead implements Renamer: record which of the instruction's operands
// have been consumed, so the early-release ablation can retire pending
// reads. Store data operands are read at completion, not issue — freeing
// their register any earlier would be unsound.
//
//vpr:hotpath
func (c *Conventional) NoteRead(inum int64, first, second bool) {
	if !c.params.EarlyRelease {
		return
	}
	e := c.mustEntry(inum, "note-read")
	if first {
		e.srcRead[0] = true
	}
	if second {
		e.srcRead[1] = true
	}
}

// Commit implements Renamer: free the displaced mapping.
//
//vpr:hotpath
func (c *Conventional) Commit(inum int64) {
	if c.entries.len() == 0 || c.entries.at(0).inum != inum {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: commit out of order (%d is not the oldest)", inum))
	}
	e := c.entries.at(0)
	if e.hasDst {
		if !e.complete {
			//vpr:allowalloc panic message: an invariant violation aborts the run
			panic(fmt.Sprintf("core: committing incomplete instruction %d", inum))
		}
		if e.prevP >= 0 && !e.prevFreed {
			c.pool.release(e.class, e.prevP)
			c.noteFreed(e.class, e.prevP)
			e.prevFreed = true // a stale earlyPending entry must not free it again
		}
	}
	c.entries.popFront()
}

// Squash implements Renamer: undo the youngest rename.
//
//vpr:hotpath
func (c *Conventional) Squash(inum int64) {
	n := c.entries.len()
	if n == 0 || c.entries.at(n-1).inum != inum {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: squash out of order (%d is not the youngest)", inum))
	}
	e := c.entries.at(n - 1)
	if e.hasDst {
		if c.mapTable[e.class][e.logical] != e.newP {
			panic("core: map table corrupt during recovery")
		}
		c.mapTable[e.class][e.logical] = e.prevP
		c.pool.release(e.class, e.newP)
		c.noteFreed(e.class, e.newP)
		if e.prevFreed {
			panic("core: squashing an instruction whose previous mapping was early-released")
		}
		if c.sink != nil {
			c.sink.TagSquashed(classOf(e.class), e.newP)
		}
	}
	c.entries.popBack()
}

// Tick implements Renamer: advance the clock and the no-squash bound, and
// run the early-release scan.
//
//vpr:hotpath
func (c *Conventional) Tick(now, safe int64) {
	c.now = now
	if safe > c.safeBound {
		c.safeBound = safe
	}
	if !c.params.EarlyRelease || len(c.earlyPending) == 0 {
		return
	}
	kept := c.earlyPending[:0]
	for _, inum := range c.earlyPending {
		e := c.entry(inum)
		if e == nil {
			continue // committed: prevP was freed on the normal path
		}
		if c.tryEarlyRelease(e) {
			continue
		}
		//vpr:allowalloc in-place filter: kept aliases earlyPending's backing array
		kept = append(kept, inum)
	}
	c.earlyPending = kept
}

// tryEarlyRelease frees e.prevP if it is provably dead: the displaced
// value has been produced (its in-flight producer would otherwise write the
// register after reallocation), e (the next writer) has completed and can
// no longer be squashed, and every renamed consumer of prevP has read it.
// Consumers of prevP are all older than e, so they are also beyond
// squashing; requiring their reads to have happened keeps this sound.
func (c *Conventional) tryEarlyRelease(e *convEntry) bool {
	if e.prevFreed || !e.complete || e.inum > c.safeBound || !c.ready[e.class][e.prevP] {
		return false
	}
	// Any live older instruction naming prevP as a source that has not
	// yet read it blocks the release. The window is small (≤ ROB), so a
	// scan is fine.
	for i := 0; i < c.entries.len(); i++ {
		other := c.entries.at(i)
		if other.inum >= e.inum {
			break
		}
		for s := 0; s < 2; s++ {
			if other.srcP[s] == e.prevP && other.srcClass[s] == e.class && !other.srcRead[s] {
				return false
			}
		}
	}
	e.prevFreed = true
	c.pool.release(e.class, e.prevP)
	c.noteFreed(e.class, e.prevP)
	c.EarlyReleases++
	return true
}

// noteFreed accumulates the holding time of a just-freed register.
func (c *Conventional) noteFreed(f, p int) {
	c.lifetimeSum += c.now - c.allocCycle[f][p]
	c.freed++
}

// PressureStats implements Renamer.
func (c *Conventional) PressureStats() (int64, int64) { return c.lifetimeSum, c.freed }

// InUse implements Renamer: pool-wide allocated registers (all contexts).
func (c *Conventional) InUse(class isa.RegClass) int {
	f := classIdx(class)
	return c.pool.PhysRegs() - c.pool.free[f].len()
}

// FreeCount implements Renamer.
func (c *Conventional) FreeCount(class isa.RegClass) int {
	return c.pool.free[classIdx(class)].len()
}

// HeldRegisters reports every physical register this context references:
// current mappings plus displaced-but-recoverable previous mappings.
func (c *Conventional) HeldRegisters(f int) []int {
	held := append([]int(nil), c.mapTable[f]...)
	for i := 0; i < c.entries.len(); i++ {
		e := c.entries.at(i)
		if e.hasDst && e.class == f && e.prevP >= 0 && !e.prevFreed {
			held = append(held, e.prevP)
		}
	}
	return held
}

// CheckInvariants implements Renamer. For a private pool the held
// registers plus the free list must exactly partition each file; in a
// shared pool only this context's self-consistency is checkable here (the
// pipeline validates the full partition across all contexts).
func (c *Conventional) CheckInvariants() error {
	if c.pool.members == 1 {
		return c.pool.CheckInvariants(c)
	}
	for f := 0; f < 2; f++ {
		seen := make(map[int]int)
		for _, r := range c.HeldRegisters(f) {
			if r < 0 || r >= c.pool.PhysRegs() {
				return fmt.Errorf("conv: file %d holds out-of-range register %d", f, r)
			}
			seen[r]++
			if seen[r] > 1 {
				return fmt.Errorf("conv: file %d register %d held twice by one context", f, r)
			}
		}
	}
	return nil
}

// key implements the ring lookup constraint.
func (e *convEntry) key() int64 { return e.inum }

// entry returns the in-flight entry for inum, or nil if it is not in the
// window.
func (c *Conventional) entry(inum int64) *convEntry {
	return lookup[convEntry](&c.entries, inum)
}

func (c *Conventional) mustEntry(inum int64, op string) *convEntry {
	e := c.entry(inum)
	if e == nil {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("core: %s of unknown instruction %d", op, inum))
	}
	return e
}
