package core

import (
	"testing"

	"repro/internal/isa"
)

func TestSharedPoolTwoVPContexts(t *testing.T) {
	// Two contexts × 32 logical need 64 architectural registers; with a
	// 96-register file 32 remain for renaming, shared.
	pool := NewSharedPool(96)
	p := DefaultParams()
	p.PhysRegs = 96
	p.NRRInt, p.NRRFP = 8, 8
	a := NewVPShared(p, AllocAtWriteback, pool)
	b := NewVPShared(p, AllocAtWriteback, pool)

	if pool.FreeCount(0) != 96-64 {
		t.Fatalf("free after two attaches = %d, want 32", pool.FreeCount(0))
	}

	// Context A's architectural values resolve to different physical
	// registers than context B's.
	ra, _ := a.Rename(0, intInst(1, 2, 3))
	rb, _ := b.Rename(0, intInst(1, 2, 3))
	if a.ReadPhys(isa.RegInt, ra.Src1.Tag) == b.ReadPhys(isa.RegInt, rb.Src1.Tag) {
		t.Error("contexts must not share architectural registers")
	}

	// Completions draw from the same shared pool.
	before := pool.FreeCount(0)
	if _, ok := a.Complete(0); !ok {
		t.Fatal("complete refused")
	}
	if _, ok := b.Complete(0); !ok {
		t.Fatal("complete refused")
	}
	if pool.FreeCount(0) != before-2 {
		t.Errorf("free = %d, want %d", pool.FreeCount(0), before-2)
	}
	if err := pool.CheckInvariants(a, b); err != nil {
		t.Fatal(err)
	}
	// Per-context self-checks also pass in shared mode.
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPoolReservationIsAggregate(t *testing.T) {
	// Context A must not starve context B's reserved registers: with
	// NRR=8 each and 16 free beyond the reservations... build a pool
	// where free exactly equals the combined reservation and check that
	// unprotected allocations are refused.
	pool := NewSharedPool(80) // 64 architectural + 16 renaming
	p := DefaultParams()
	p.PhysRegs = 80
	p.NRRInt, p.NRRFP = 8, 8 // aggregate reservation = 16 = all free registers
	a := NewVPShared(p, AllocAtWriteback, pool)
	b := NewVPShared(p, AllocAtWriteback, pool)

	// Fill A with more dest instructions than its protected set.
	for i := int64(0); i < 12; i++ {
		a.Rename(i, intInst(1, 2, 3))
	}
	// Unprotected completions (positions 8..11) must be refused: every
	// free register is reserved (8 for A's oldest, 8 for B).
	for i := int64(11); i >= 8; i-- {
		if _, ok := a.Complete(i); ok {
			t.Fatalf("unprotected completion %d allocated a register reserved for context B", i)
		}
	}
	// Protected completions succeed.
	for i := int64(0); i < 8; i++ {
		if _, ok := a.Complete(i); !ok {
			t.Fatalf("protected completion %d refused", i)
		}
	}
	// B's protected instructions still find registers.
	b.Rename(0, intInst(4, 5, 6))
	if _, ok := b.Complete(0); !ok {
		t.Fatal("context B's protected instruction starved")
	}
	if err := pool.CheckInvariants(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPoolMixedSchemes(t *testing.T) {
	// A conventional context and a VP context can share a pool (useful
	// for asymmetric experiments).
	pool := NewSharedPool(96)
	p := DefaultParams()
	p.PhysRegs = 96
	p.NRRInt, p.NRRFP = 4, 4
	c := NewConventionalShared(p, pool)
	v := NewVPShared(p, AllocAtWriteback, pool)

	if _, ok := c.Rename(0, intInst(1, 2, 3)); !ok {
		t.Fatal("conventional rename refused")
	}
	v.Rename(0, intInst(1, 2, 3))
	c.Complete(0)
	if _, ok := v.Complete(0); !ok {
		t.Fatal("vp complete refused")
	}
	c.Commit(0)
	v.Commit(0)
	if err := pool.CheckInvariants(c, v); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPoolRejectsOverCommit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("attaching more contexts than the pool can back must panic")
		}
	}()
	pool := NewSharedPool(64) // one context uses 32; a second fits; a third cannot
	p := DefaultParams()
	p.PhysRegs = 64
	p.NRRInt, p.NRRFP = 1, 1
	NewVPShared(p, AllocAtWriteback, pool)
	NewVPShared(p, AllocAtWriteback, pool) // reservation check must fire here or on the next
	NewVPShared(p, AllocAtWriteback, pool)
}

func TestSharedPoolRandomizedTwoContexts(t *testing.T) {
	// Drive two independent protocol drivers over one pool, stepping them
	// alternately, with pool-wide invariant checks.
	pool := NewSharedPool(96)
	p := DefaultParams()
	p.PhysRegs = 96
	p.VPRegs = 32 + 64
	p.NRRInt, p.NRRFP = 4, 4
	a := NewVPShared(p, AllocAtWriteback, pool)
	b := NewVPShared(p, AllocAtIssue, pool)
	da := newDriver(t, a, 32, 1)
	db := newDriver(t, b, 32, 2)
	for i := 0; i < 200000 && (da.commits < 1500 || db.commits < 1500); i++ {
		da.step()
		db.step()
		if i%1000 == 0 {
			if err := pool.CheckInvariants(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if da.commits < 1500 || db.commits < 1500 {
		t.Fatalf("contexts starved: %d / %d commits", da.commits, db.commits)
	}
	if err := pool.CheckInvariants(a, b); err != nil {
		t.Fatal(err)
	}
}
