// Package cache models the paper's lockup-free L1 data cache (Kroft [7]):
// 16 KB direct-mapped with 32-byte lines, 2-cycle hit latency, a 50-cycle
// miss penalty, up to 8 outstanding misses to distinct lines (MSHRs) with
// secondary-miss merging, write-back + write-allocate, and a 64-bit bus to
// an infinite L2 on which each line transfer (refill or dirty eviction)
// occupies 4 cycles.
//
// The cache is driven lazily: every Access carries the current cycle, and
// pending refills whose completion time has passed are installed before the
// new access is looked up. Callers must present non-decreasing cycle
// numbers. Port arbitration (3 ports in the paper) is the pipeline's job:
// the cache itself accepts any number of accesses per cycle.
package cache

import "fmt"

// Config sizes the cache. NewDefault matches the paper.
//
//vpr:cachekey
type Config struct {
	SizeBytes        int
	LineBytes        int
	HitLatency       int
	MissPenalty      int // additional cycles after the hit latency
	MSHRs            int
	BusCyclesPerLine int

	// The paper assumes an infinite L2 (every L1 miss costs MissPenalty).
	// Setting L2Enabled models a finite direct-mapped L2 instead: L1
	// misses that hit in L2 cost MissPenalty; those that miss both
	// levels cost L2MissPenalty.
	L2Enabled     bool
	L2SizeBytes   int
	L2MissPenalty int
}

// DefaultConfig is the paper's §4.1 configuration.
func DefaultConfig() Config {
	return Config{
		SizeBytes:        16 * 1024,
		LineBytes:        32,
		HitLatency:       2,
		MissPenalty:      50,
		MSHRs:            8,
		BusCyclesPerLine: 4,
	}
}

// Outcome describes one access.
type Outcome struct {
	Hit     bool
	Merged  bool  // secondary miss folded into an existing MSHR
	ReadyAt int64 // cycle at which load data is available
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
}

type mshr struct {
	busy      bool
	lineAddr  uint64 // address >> lineShift
	readyAt   int64
	markDirty bool // a write merged into the pending refill
}

// Cache is a single direct-mapped lockup-free cache.
type Cache struct {
	cfg       Config
	lines     []line
	l2tags    []uint64 // finite-L2 option: tag per set, +1 (0 = invalid)
	mshrs     []mshr
	busFreeAt int64
	lineShift uint
	now       int64

	// Statistics.
	Accesses     int64
	Hits         int64
	Misses       int64 // primary misses (MSHR allocations)
	Merges       int64 // secondary misses
	MSHRStalls   int64 // accesses rejected because every MSHR was busy
	Evictions    int64 // dirty lines written back
	PeakInFlight int
	L2Hits       int64 // L1 misses that hit the finite L2
	L2Misses     int64 // L1 misses that also missed the L2
}

// New builds a cache; the configuration must have power-of-two line size.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineBytes))
	}
	if cfg.SizeBytes%cfg.LineBytes != 0 {
		panic("cache: size not a multiple of line size")
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.SizeBytes/cfg.LineBytes),
		mshrs:     make([]mshr, cfg.MSHRs),
		lineShift: shift,
	}
	if cfg.L2Enabled {
		if cfg.L2SizeBytes < cfg.SizeBytes || cfg.L2SizeBytes%cfg.LineBytes != 0 {
			panic("cache: L2 must be at least L1-sized and line-aligned")
		}
		if cfg.L2MissPenalty < cfg.MissPenalty {
			panic("cache: L2 miss penalty below the L2 hit penalty")
		}
		c.l2tags = make([]uint64, cfg.L2SizeBytes/cfg.LineBytes)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }
func (c *Cache) index(lineAddr uint64) int   { return int(lineAddr) & (len(c.lines) - 1) }

// drain installs every refill that has completed by cycle now.
func (c *Cache) drain(now int64) {
	if now < c.now {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("cache: time went backwards (%d after %d)", now, c.now))
	}
	c.now = now
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.busy && m.readyAt <= now {
			c.install(m.lineAddr, m.markDirty)
			m.busy = false
		}
	}
}

// install places a refilled line, writing back a dirty victim (bus time for
// the victim was already reserved when the miss was scheduled; eviction here
// only counts statistics).
func (c *Cache) install(lineAddr uint64, dirty bool) {
	l := &c.lines[c.index(lineAddr)]
	l.valid = true
	l.tag = lineAddr
	l.dirty = dirty
}

// Drain installs every refill that has completed by cycle now. Accesses
// drain lazily, so calling this is only needed to settle state for
// inspection. Like Access, it panics if time goes backwards.
func (c *Cache) Drain(now int64) { c.drain(now) }

// Access performs a load (write=false) or store (write=true) of the word at
// addr. ok=false means a primary miss could not start because all MSHRs are
// busy; the caller must retry in a later cycle. Loads should consult the
// store queue before calling Access; the cache has no knowledge of
// speculative stores.
func (c *Cache) Access(now int64, addr uint64, write bool) (Outcome, bool) {
	c.drain(now)
	c.Accesses++
	la := c.lineAddr(addr)
	l := &c.lines[c.index(la)]

	if l.valid && l.tag == la {
		c.Hits++
		if write {
			l.dirty = true
		}
		return Outcome{Hit: true, ReadyAt: now + int64(c.cfg.HitLatency)}, true
	}

	// Secondary miss: the line is already on its way.
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.busy && m.lineAddr == la {
			c.Merges++
			if write {
				m.markDirty = true
			}
			return Outcome{Merged: true, ReadyAt: m.readyAt}, true
		}
	}

	// Primary miss: allocate an MSHR.
	slot := -1
	inFlight := 0
	for i := range c.mshrs {
		if c.mshrs[i].busy {
			inFlight++
		} else if slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		c.MSHRStalls++
		return Outcome{}, false
	}
	c.Misses++
	if inFlight+1 > c.PeakInFlight {
		c.PeakInFlight = inFlight + 1
	}

	// The victim (if dirty) and the refill each occupy the L1↔L2 bus for
	// BusCyclesPerLine cycles; memory latency and bus transfer overlap
	// except for the final line beat, so the refill completes no earlier
	// than both (miss penalty after the request) and (bus free + one
	// transfer).
	victim := &c.lines[c.index(la)]
	if victim.valid && victim.dirty {
		c.Evictions++
		if c.busFreeAt < now {
			c.busFreeAt = now
		}
		c.busFreeAt += int64(c.cfg.BusCyclesPerLine)
		victim.dirty = false
		if c.cfg.L2Enabled {
			// The written-back victim lands in the L2.
			c.l2tags[int(victim.tag)%len(c.l2tags)] = victim.tag + 1
		}
	}
	penalty := c.cfg.MissPenalty
	if c.cfg.L2Enabled {
		set := int(la) % len(c.l2tags)
		if c.l2tags[set] == la+1 {
			c.L2Hits++
		} else {
			c.L2Misses++
			penalty = c.cfg.L2MissPenalty
			c.l2tags[set] = la + 1 // refill installs into L2 (inclusive)
		}
	}
	ready := now + int64(c.cfg.HitLatency+penalty)
	if b := c.busFreeAt + int64(c.cfg.BusCyclesPerLine); b > ready {
		ready = b
	}
	c.busFreeAt = ready
	c.mshrs[slot] = mshr{busy: true, lineAddr: la, readyAt: ready, markDirty: write}
	return Outcome{ReadyAt: ready}, true
}

// Probe reports whether addr currently hits, without side effects and
// without advancing time. Pending refills that would have completed by the
// last drained cycle are not installed. Intended for tests and debugging.
func (c *Cache) Probe(addr uint64) bool {
	la := c.lineAddr(addr)
	l := c.lines[c.index(la)]
	return l.valid && l.tag == la
}

// InFlight returns the number of busy MSHRs as of the last drained cycle.
func (c *Cache) InFlight() int {
	n := 0
	for i := range c.mshrs {
		if c.mshrs[i].busy {
			n++
		}
	}
	return n
}

// MissRatio returns misses (primary + merged) over accesses.
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses+c.Merges) / float64(c.Accesses)
}

// DebugMSHRs returns the readyAt of each busy MSHR and the bus-free cycle
// (temporary debugging aid).
func (c *Cache) DebugMSHRs() ([]int64, int64) {
	var out []int64
	for i := range c.mshrs {
		if c.mshrs[i].busy {
			out = append(out, c.mshrs[i].readyAt)
		}
	}
	return out, c.busFreeAt
}
