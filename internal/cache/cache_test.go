package cache

import (
	"testing"
	"testing/quick"
)

func mk() *Cache { return New(DefaultConfig()) }

func TestHitAfterRefill(t *testing.T) {
	c := mk()
	out, ok := c.Access(0, 0x10000, false)
	if !ok || out.Hit {
		t.Fatalf("first access must be a miss: %+v ok=%v", out, ok)
	}
	if out.ReadyAt != 52 { // hit latency 2 + penalty 50
		t.Errorf("miss ReadyAt = %d, want 52", out.ReadyAt)
	}
	// Before the refill lands the line is still pending: merge.
	out2, ok := c.Access(10, 0x10008, false)
	if !ok || !out2.Merged || out2.ReadyAt != out.ReadyAt {
		t.Errorf("same-line access should merge: %+v", out2)
	}
	// After the refill: hit.
	out3, ok := c.Access(out.ReadyAt, 0x10010, false)
	if !ok || !out3.Hit || out3.ReadyAt != out.ReadyAt+2 {
		t.Errorf("post-refill access should hit: %+v", out3)
	}
	if c.Hits != 1 || c.Misses != 1 || c.Merges != 1 {
		t.Errorf("stats = %d/%d/%d", c.Hits, c.Misses, c.Merges)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := mk()
	// Two addresses 16 KB apart map to the same set.
	c.Access(0, 0x10000, false)
	c.Access(100, 0x10000, false) // now resident
	out, ok := c.Access(200, 0x10000+16*1024, false)
	if !ok || out.Hit {
		t.Fatal("conflicting line must miss")
	}
	out2, ok := c.Access(out.ReadyAt, 0x10000, false)
	if !ok || out2.Hit {
		t.Error("victim must have been evicted")
	}
}

func TestMSHRExhaustion(t *testing.T) {
	c := mk()
	for i := 0; i < 8; i++ {
		if _, ok := c.Access(0, uint64(0x10000+i*32), false); !ok {
			t.Fatalf("miss %d should get an MSHR", i)
		}
	}
	if c.InFlight() != 8 {
		t.Fatalf("in flight = %d, want 8", c.InFlight())
	}
	if _, ok := c.Access(0, 0x90000, false); ok {
		t.Fatal("ninth distinct-line miss must be rejected")
	}
	if c.MSHRStalls != 1 {
		t.Errorf("MSHRStalls = %d", c.MSHRStalls)
	}
	// Merges are still allowed when MSHRs are full.
	if out, ok := c.Access(0, 0x10004, false); !ok || !out.Merged {
		t.Error("secondary miss must merge even with MSHRs full")
	}
	// After refills complete, new misses can start again.
	if _, ok := c.Access(200, 0x90000, false); !ok {
		t.Error("MSHR should be free after refills drain")
	}
}

func TestBusSerializesRefills(t *testing.T) {
	c := mk()
	a, _ := c.Access(0, 0x10000, false)
	b, _ := c.Access(0, 0x20000, false)
	d, _ := c.Access(0, 0x30000, false)
	if a.ReadyAt != 52 {
		t.Errorf("first refill at %d, want 52", a.ReadyAt)
	}
	if b.ReadyAt != a.ReadyAt+4 || d.ReadyAt != b.ReadyAt+4 {
		t.Errorf("refills = %d,%d,%d; want 4-cycle bus spacing", a.ReadyAt, b.ReadyAt, d.ReadyAt)
	}
	// A miss issued long after the bus is idle pays only the base penalty.
	e, _ := c.Access(1000, 0x40000, false)
	if e.ReadyAt != 1052 {
		t.Errorf("idle-bus refill at %d, want 1052", e.ReadyAt)
	}
}

func TestDirtyEvictionCostsBusTime(t *testing.T) {
	// With an idle bus, a dirty eviction overlaps the refill's memory
	// latency and costs nothing; under contention the extra line
	// transfer delays later refills.
	c := mk()
	const conflict = 16 * 1024
	// Dirty two lines (write-allocate, then let them land).
	w1, _ := c.Access(0, 0x10000, true)
	w2, _ := c.Access(0, 0x10020, true)
	c.Access(max64(w1.ReadyAt, w2.ReadyAt), 0x10000, false)

	// Idle bus: eviction overlapped, base latency only.
	out1, _ := c.Access(200, 0x10000+conflict, false)
	if out1.ReadyAt != 252 {
		t.Errorf("refill after dirty eviction (idle bus) at %d, want 252", out1.ReadyAt)
	}
	// Contended bus: the second miss also evicts a dirty victim; its
	// refill queues behind the first refill plus the victim transfer.
	out2, _ := c.Access(200, 0x10020+conflict, false)
	if want := out1.ReadyAt + 4 + 4; out2.ReadyAt != want {
		t.Errorf("contended refill after dirty eviction at %d, want %d", out2.ReadyAt, want)
	}
	if c.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", c.Evictions)
	}

	// Control: clean victims add no bus transfer under contention.
	c2 := mk()
	r1, _ := c2.Access(0, 0x10000, false)
	r2, _ := c2.Access(0, 0x10020, false)
	c2.Access(max64(r1.ReadyAt, r2.ReadyAt), 0x10000, false)
	o1, _ := c2.Access(200, 0x10000+conflict, false)
	o2, _ := c2.Access(200, 0x10020+conflict, false)
	if o1.ReadyAt != 252 || o2.ReadyAt != 256 {
		t.Errorf("clean-victim refills at %d,%d; want 252,256", o1.ReadyAt, o2.ReadyAt)
	}
	if c2.Evictions != 0 {
		t.Errorf("clean evictions counted: %d", c2.Evictions)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestWriteAllocateMakesLineDirty(t *testing.T) {
	c := mk()
	w, _ := c.Access(0, 0x10000, true)
	// After the refill, the line must exist and be dirty (checked via the
	// eviction cost as above, and via Probe for presence).
	c.Access(w.ReadyAt, 0x10040, false) // advance time, drain
	if !c.Probe(0x10000) {
		t.Error("written line must be resident after write-allocate")
	}
}

func TestMergedWriteMarksRefillDirty(t *testing.T) {
	c := mk()
	r, _ := c.Access(0, 0x10000, false) // read miss
	c.Access(1, 0x10008, true)          // write merges into pending refill
	// Once installed, the line is dirty: evicting it costs a writeback.
	c.Access(r.ReadyAt+10, 0x10000+16*1024, false)
	if c.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (merged write must dirty the refill)", c.Evictions)
	}
	// Control: without the merged write, the same sequence evicts clean.
	c2 := mk()
	r2, _ := c2.Access(0, 0x10000, false)
	c2.Access(1, 0x10008, false)
	c2.Access(r2.ReadyAt+10, 0x10000+16*1024, false)
	if c2.Evictions != 0 {
		t.Errorf("control evictions = %d, want 0", c2.Evictions)
	}
}

func TestStreamingMissesEveryLine(t *testing.T) {
	c := mk()
	now := int64(0)
	for i := 0; i < 1024; i++ {
		addr := uint64(0x100000 + i*8)
		out, ok := c.Access(now, addr, false)
		if !ok {
			t.Fatalf("access %d rejected", i)
		}
		now = out.ReadyAt // fully serialized stream
	}
	// 8-byte strides over 32-byte lines: one miss every 4 accesses.
	if c.Misses != 256 || c.Hits != 768 {
		t.Errorf("stream misses/hits = %d/%d, want 256/768", c.Misses, c.Hits)
	}
	if r := c.MissRatio(); r < 0.24 || r > 0.26 {
		t.Errorf("miss ratio = %.3f", r)
	}
}

func TestResidentSetAlwaysHits(t *testing.T) {
	c := mk()
	now := int64(0)
	// Touch 4 KB once to warm.
	for i := 0; i < 128; i++ {
		out, _ := c.Access(now, uint64(0x10000+i*32), false)
		now = out.ReadyAt
	}
	warmMisses := c.Misses
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 128; i++ {
			out, ok := c.Access(now, uint64(0x10000+i*32), false)
			if !ok || !out.Hit {
				t.Fatalf("resident access missed at pass %d line %d", pass, i)
			}
			now = out.ReadyAt
		}
	}
	if c.Misses != warmMisses {
		t.Errorf("extra misses on resident set: %d", c.Misses-warmMisses)
	}
}

func TestTimeMustNotGoBackwards(t *testing.T) {
	c := mk()
	c.Access(100, 0x10000, false)
	defer func() {
		if recover() == nil {
			t.Error("regressing time must panic")
		}
	}()
	c.Access(50, 0x20000, false)
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two line size must panic")
		}
	}()
	New(Config{SizeBytes: 16384, LineBytes: 24, MSHRs: 8})
}

// Property: ReadyAt is always at least now + hit latency, hits never exceed
// it, and the MSHR population never exceeds the configured limit.
func TestQuickTimingInvariants(t *testing.T) {
	c := mk()
	now := int64(0)
	f := func(dt uint8, lineSel uint16, write bool) bool {
		now += int64(dt % 8)
		addr := uint64(0x10000 + int(lineSel%512)*32)
		out, ok := c.Access(now, addr, write)
		if !ok {
			return c.InFlight() == 8 // rejected only when truly full
		}
		if out.ReadyAt < now {
			return false
		}
		if out.Hit && out.ReadyAt != now+2 {
			return false
		}
		// A merge may return sooner than a fresh hit (the refill is
		// already on its way); primary misses never beat the hit latency.
		if !out.Hit && !out.Merged && out.ReadyAt < now+2 {
			return false
		}
		return c.InFlight() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestFiniteL2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Enabled = true
	cfg.L2SizeBytes = 64 * 1024
	cfg.L2MissPenalty = 150
	c := New(cfg)

	// First touch: misses both levels, pays the full memory latency.
	out, _ := c.Access(0, 0x10000, false)
	if out.ReadyAt != 2+150 {
		t.Errorf("cold L2 miss ready at %d, want 152", out.ReadyAt)
	}
	if c.L2Misses != 1 || c.L2Hits != 0 {
		t.Fatalf("L2 stats = %d/%d", c.L2Hits, c.L2Misses)
	}
	// Evict it from L1 via a 16 KB-conflicting line, then re-touch: the
	// line is still in the 64 KB L2, so only the L2 hit penalty applies.
	o2, _ := c.Access(200, 0x10000+16*1024, false)
	o3, _ := c.Access(o2.ReadyAt, 0x10000, false)
	if got := o3.ReadyAt - o2.ReadyAt; got != 2+50 {
		t.Errorf("L2 hit latency = %d, want 52", got)
	}
	if c.L2Hits != 1 {
		t.Errorf("L2 hits = %d, want 1", c.L2Hits)
	}
}

func TestFiniteL2Conflicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Enabled = true
	cfg.L2SizeBytes = 32 * 1024
	cfg.L2MissPenalty = 150
	c := New(cfg)
	// Two lines 32 KB apart conflict in the L2 as well: the second evicts
	// the first from L2, so re-touching the first is a full miss again.
	a, b := uint64(0x10000), uint64(0x10000+32*1024)
	o, _ := c.Access(0, a, false)
	o, _ = c.Access(o.ReadyAt, b, false)
	now := o.ReadyAt
	// Evict a from L1 (b and a already conflict there too: 16 KB apart
	// twice over) — a was displaced by b in both levels.
	o, _ = c.Access(now, a, false)
	if got := o.ReadyAt - now; got != 2+150 {
		t.Errorf("post-conflict re-touch = %d cycles, want full 152", got)
	}
	if c.L2Misses != 3 {
		t.Errorf("L2 misses = %d, want 3", c.L2Misses)
	}
}

func TestFiniteL2BadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undersized L2 must panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.L2Enabled = true
	cfg.L2SizeBytes = 1024
	cfg.L2MissPenalty = 150
	New(cfg)
}
