// Package pipeline is the cycle-accurate, trace-driven out-of-order
// processor model of the paper's §4.1: 8-way fetch/decode/commit, a
// 128-entry reorder buffer, Table 1 functional units, separate integer and
// FP physical register files with 16 read and 8 write ports, three ports
// into a lockup-free data cache, a 2048-entry branch history table, and
// PA-8000-style memory disambiguation.
//
// The pipeline is driven by a committed-path trace (internal/trace).
// Mispredicted branches freeze fetch until they resolve — wrong-path
// instructions are not simulated, exactly as in the paper's trace-driven
// methodology. Memory-order violations under speculative disambiguation do
// squash and re-fetch real instructions, exercising the renamers' recovery
// machinery.
//
// When the trace carries values (emulator-generated traces do), the
// pipeline routes those values through the physical register files and
// verifies at every operand read that the consumer sees exactly the value
// the architectural emulator produced — a golden-model check that turns
// renaming bugs into hard errors instead of silently wrong timing.
//
// The paper closes by predicting that virtual-physical registers matter
// even more for multithreaded architectures (§5, future work). NewSMT
// realizes that scenario: several hardware threads, each with its own
// trace, front end, reorder buffer and map tables, share the functional
// units, cache ports, and — crucially — the physical register files
// through core.SharedPool.
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

type state uint8

const (
	stWaiting   state = iota // dispatched; waiting for operands or re-execution
	stExecuting              // issued to a functional unit / memory pipeline
	stCompleted              // result produced; awaiting in-order commit
)

const (
	valueNone    int64 = -2 // load has not obtained its value yet
	valueMemory  int64 = -1 // load value came from the cache/memory
	timeUnset    int64 = -1
	fetchBufSize       = 16

	// threadAddrShift namespaces each thread's addresses in the shared
	// cache: traces are generated in identical virtual address spaces,
	// but SMT threads must not alias each other's lines.
	threadAddrShift = 44
)

// robEntry is one in-flight instruction. Because fetch follows the
// committed path, instruction numbers in a thread's reorder buffer are
// consecutive trace sequence numbers.
type robEntry struct {
	inum int64
	rec  trace.Record
	ren  core.Renamed

	st         state
	inIQ       bool
	src1Ready  bool
	src2Ready  bool
	executions int

	completeAt int64 // cycle execution finishes (timeUnset while unknown)
	aguDoneAt  int64 // memory ops: cycle the effective address is ready

	isLoad    bool
	isStore   bool
	valueFrom int64 // loads: forwarding store inum, valueMemory, or valueNone

	isBranch bool
	isCond   bool
	mispred  bool
}

func (e *robEntry) ready() bool {
	if e.isStore {
		return e.src1Ready // address only; data may arrive later
	}
	return e.src1Ready && e.src2Ready
}

// sqEntry tracks an uncommitted store for disambiguation and forwarding.
type sqEntry struct {
	inum    int64
	ea      uint64
	eaKnown bool
}

type fetchItem struct {
	rec     trace.Record
	mispred bool
}

// thread is one hardware context: private trace, front end, reorder
// buffer, store queue and renamer (map tables); everything else is shared.
type thread struct {
	id  int
	gen trace.Generator

	stream *trace.Stream
	ren    core.Renamer

	fetchSeq    int64
	fetchBuf    []fetchItem
	frozen      bool
	frozenOn    int64
	nextFetchAt int64
	traceEnded  bool

	rob      []robEntry
	robHead  int
	robCount int
	headInum int64
	sq       []sqEntry

	committed int64
}

// at returns the thread's i-th oldest in-flight entry.
func (t *thread) at(i int) *robEntry {
	return &t.rob[(t.robHead+i)%len(t.rob)]
}

func (t *thread) entryByInum(inum int64) *robEntry {
	off := inum - t.headInum
	if off < 0 || off >= int64(t.robCount) {
		return nil
	}
	return t.at(int(off))
}

func (t *thread) sqEntry(inum int64) *sqEntry {
	for i := range t.sq {
		if t.sq[i].inum == inum {
			return &t.sq[i]
		}
	}
	return nil
}

// addr namespaces an effective address for the shared cache.
func (t *thread) addr(ea uint64) uint64 {
	return ea + uint64(t.id)<<threadAddrShift
}

func (t *thread) done() bool {
	return t.traceEnded && t.robCount == 0 && len(t.fetchBuf) == 0
}

// Sim is one simulated processor bound to one or more traces.
type Sim struct {
	cfg Config

	threads []*thread
	pool    *core.SharedPool
	bht     *bpred.BHT
	dcache  *cache.Cache

	cycle int64

	// Shared structural state.
	iqCount         int // instruction-queue occupancy across threads
	prf             [2][]uint64
	committedStores []uint64
	pools           [6][]int64 // busy-until per functional unit, per pool
	kindToPool      [isa.NumFUKinds]int

	rotate          int // round-robin offset, advanced every cycle
	lastCommitCycle int64

	stats Stats
}

// New builds a single-threaded simulator over the generator — the paper's
// configuration.
func New(cfg Config, gen trace.Generator) (*Sim, error) {
	return NewSMT(cfg, []trace.Generator{gen})
}

// NewSMT builds a simulator with one hardware thread per generator. All
// threads run the same machine configuration; the physical register files
// are shared, so cfg.Rename.PhysRegs must cover every thread's
// architectural registers plus headroom for renaming.
func NewSMT(cfg Config, gens []trace.Generator) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one trace")
	}
	if need := len(gens) * cfg.Rename.LogicalRegs; cfg.Rename.PhysRegs <= need {
		return nil, fmt.Errorf("pipeline: %d physical registers cannot back %d threads × %d logical",
			cfg.Rename.PhysRegs, len(gens), cfg.Rename.LogicalRegs)
	}
	s := &Sim{
		cfg:    cfg,
		pool:   core.NewSharedPool(cfg.Rename.PhysRegs),
		bht:    bpred.New(cfg.BHTEntries),
		dcache: cache.New(cfg.Cache),
	}
	for i, gen := range gens {
		th := &thread{
			id:     i,
			gen:    gen,
			stream: trace.NewStream(gen, cfg.ROBSize+fetchBufSize+4*cfg.FetchWidth+64),
			rob:    make([]robEntry, cfg.ROBSize),
		}
		switch cfg.Scheme {
		case core.SchemeConventional:
			th.ren = core.NewConventionalShared(cfg.Rename, s.pool)
		case core.SchemeVPWriteback:
			th.ren = core.NewVPShared(cfg.Rename, core.AllocAtWriteback, s.pool)
		case core.SchemeVPIssue:
			th.ren = core.NewVPShared(cfg.Rename, core.AllocAtIssue, s.pool)
		default:
			return nil, fmt.Errorf("pipeline: unknown scheme %v", cfg.Scheme)
		}
		s.threads = append(s.threads, th)
	}
	for f := 0; f < 2; f++ {
		s.prf[f] = make([]uint64, cfg.Rename.PhysRegs)
	}
	poolSizes := []int{
		cfg.SimpleIntUnits, cfg.ComplexIntUnits, cfg.EffAddrUnits,
		cfg.SimpleFPUnits, cfg.FPMulUnits, cfg.FPDivUnits,
	}
	for i, n := range poolSizes {
		s.pools[i] = make([]int64, n)
	}
	s.kindToPool = [isa.NumFUKinds]int{
		isa.FUIntALU:  0,
		isa.FUIntMul:  1,
		isa.FUIntDiv:  1, // multiply and divide share the complex-int units
		isa.FUEffAddr: 2,
		isa.FUFPALU:   3,
		isa.FUFPMul:   4,
		isa.FUFPDiv:   5,
	}
	return s, nil
}

// Renamer exposes thread 0's renamer for statistics collection.
func (s *Sim) Renamer() core.Renamer { return s.threads[0].ren }

// Cache exposes the shared data cache for statistics collection.
func (s *Sim) Cache() *cache.Cache { return s.dcache }

// BHT exposes the shared branch predictor for statistics collection.
func (s *Sim) BHT() *bpred.BHT { return s.bht }

// Threads returns the number of hardware threads.
func (s *Sim) Threads() int { return len(s.threads) }

// ThreadCommitted returns instructions committed by one thread.
func (s *Sim) ThreadCommitted(i int) int64 { return s.threads[i].committed }

// Done reports whether every thread's trace is exhausted and drained.
func (s *Sim) Done() bool {
	for _, th := range s.threads {
		if !th.done() {
			return false
		}
	}
	return true
}

// Stats returns a snapshot of the statistics including cache counters.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.Cycles = s.cycle
	st.CacheAccesses = s.dcache.Accesses
	st.CacheMisses = s.dcache.Misses
	st.CacheMergedMiss = s.dcache.Merges
	st.MSHRStallCycles = s.dcache.MSHRStalls
	st.PeakMSHRs = s.dcache.PeakInFlight
	for _, th := range s.threads {
		lifetime, freed := th.ren.PressureStats()
		st.RegLifetimeSum += lifetime
		st.RegsFreed += freed
		if c, ok := th.ren.(*core.Conventional); ok {
			st.RenameRegStall += c.RenameStalls
			st.EarlyReleases += c.EarlyReleases
		}
		if v, ok := th.ren.(*core.VP); ok {
			st.Reexecutions += v.AllocFailures
			st.IssueBlocks += v.IssueBlocks
		}
	}
	return st
}

// Run advances the simulation until every trace drains or maxCommits
// commit in total.
func (s *Sim) Run(maxCommits int64) (Stats, error) {
	return s.RunContext(context.Background(), maxCommits)
}

// ctxCheckCycles bounds how stale a cancellation can go unnoticed: the
// context is polled once per this many simulated cycles, keeping the check
// off the per-cycle hot path.
const ctxCheckCycles = 4096

// RunContext advances the simulation like Run but stops early, returning
// ctx.Err() and the statistics accumulated so far, once ctx is cancelled.
func (s *Sim) RunContext(ctx context.Context, maxCommits int64) (Stats, error) {
	sinceCheck := 0
	for !s.Done() && (maxCommits <= 0 || s.stats.Committed < maxCommits) {
		if sinceCheck++; sinceCheck >= ctxCheckCycles {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return s.Stats(), err
			}
		}
		if err := s.Step(); err != nil {
			return s.Stats(), err
		}
	}
	return s.Stats(), nil
}

// Step simulates one cycle. Stages run in reverse pipeline order so that
// results written back in a cycle can wake and issue dependants in the
// same cycle (full bypassing), identically for every renaming scheme.
// Shared budgets (commit/issue/decode width, ports) rotate their starting
// thread every cycle for fairness.
func (s *Sim) Step() error {
	now := s.cycle
	if err := s.commitStage(now); err != nil {
		return err
	}
	if err := s.writebackStage(now); err != nil {
		return err
	}
	if err := s.executeStage(now); err != nil {
		return err
	}
	if err := s.issueStage(now); err != nil {
		return err
	}
	if err := s.dispatchStage(now); err != nil {
		return err
	}
	s.fetchStage(now)
	s.sample()
	if s.cfg.Debug {
		for _, th := range s.threads {
			if err := th.ren.CheckInvariants(); err != nil {
				return fmt.Errorf("cycle %d thread %d: %w", now, th.id, err)
			}
		}
	}
	if now-s.lastCommitCycle > s.cfg.DeadlockCycles {
		return fmt.Errorf("pipeline: no commit for %d cycles at cycle %d (%s): deadlock",
			s.cfg.DeadlockCycles, now, s.describeHeads())
	}
	s.cycle++
	s.rotate++
	return nil
}

func (s *Sim) describeHeads() string {
	out := ""
	for _, th := range s.threads {
		if out != "" {
			out += "; "
		}
		if th.robCount == 0 {
			out += fmt.Sprintf("t%d empty", th.id)
			continue
		}
		e := th.at(0)
		out += fmt.Sprintf("t%d head inum %d %s state %d ready %v/%v",
			th.id, e.inum, e.rec.Inst, e.st, e.src1Ready, e.src2Ready)
	}
	return out
}

// order returns the threads starting at the current rotation offset.
func (s *Sim) order() []*thread {
	n := len(s.threads)
	if n == 1 {
		return s.threads
	}
	out := make([]*thread, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.threads[(s.rotate+i)%n])
	}
	return out
}

// --- commit ------------------------------------------------------------------

func (s *Sim) commitStage(now int64) error {
	budget := s.cfg.CommitWidth
	for _, th := range s.order() {
		for budget > 0 && th.robCount > 0 {
			e := th.at(0)
			if e.st != stCompleted {
				break
			}
			if e.isStore {
				if len(s.committedStores) >= s.cfg.StoreBufferSize {
					s.stats.CommitSBStalls++
					break
				}
				s.committedStores = append(s.committedStores, th.addr(e.rec.EA))
				if len(th.sq) == 0 || th.sq[0].inum != e.inum {
					return fmt.Errorf("pipeline: store queue out of sync at commit of %d", e.inum)
				}
				th.sq = th.sq[1:]
				s.stats.Stores++
			}
			if e.isLoad {
				s.stats.Loads++
			}
			th.ren.Commit(e.inum)
			s.stats.Committed++
			th.committed++
			s.lastCommitCycle = now
			th.robHead = (th.robHead + 1) % len(th.rob)
			th.robCount--
			th.headInum++
			budget--
		}
		th.stream.Retire(th.headInum)
		th.ren.Tick(now, s.safeBound(th))
	}
	return nil
}

// safeBound returns the newest instruction number in the thread that can
// no longer be squashed. The only squash source in this trace-driven model
// is a memory-order violation, triggered by a store whose address was
// still unknown.
func (s *Sim) safeBound(th *thread) int64 {
	tail := th.headInum + int64(th.robCount) - 1
	if s.cfg.Disambiguation == DisambConservative {
		return tail
	}
	for i := range th.sq {
		if !th.sq[i].eaKnown {
			return th.sq[i].inum - 1
		}
	}
	return tail
}

// --- write-back / completion ---------------------------------------------------

func (s *Sim) writebackStage(now int64) error {
	wbPorts := [2]int{s.cfg.RFWritePorts, s.cfg.RFWritePorts}
	for _, th := range s.order() {
		for i := 0; i < th.robCount; i++ {
			e := th.at(i)
			if e.st != stExecuting {
				continue
			}
			if e.isStore {
				// A store is complete once its address has been
				// recorded in the store queue (by the execute stage,
				// so violation checks always run) and its data has
				// arrived; it consumes no write port.
				sqe := th.sqEntry(e.inum)
				if sqe != nil && sqe.eaKnown && e.src2Ready {
					if err := s.checkOperand(th, e, e.ren.Src2, e.rec.Src2Val); err != nil {
						return err
					}
					th.ren.NoteRead(e.inum, false, true) // data operand read now
					if _, ok := th.ren.Complete(e.inum); !ok {
						return fmt.Errorf("pipeline: store %d refused completion", e.inum)
					}
					e.st = stCompleted
					s.leaveIQ(e)
				}
				continue
			}
			if e.completeAt == timeUnset || e.completeAt > now {
				continue
			}
			hasDst := e.ren.Dst.Present
			f := 0
			if hasDst {
				f = classIdxOf(e.ren.Dst.Class)
				if wbPorts[f] == 0 {
					continue // structural: retry next cycle
				}
			}
			preg, ok := th.ren.Complete(e.inum)
			if !ok {
				// §3.3: no register may be allocated at write-back;
				// squash the instruction back to the queue and
				// re-execute it.
				e.st = stWaiting
				e.completeAt = timeUnset
				e.aguDoneAt = timeUnset
				if e.isLoad {
					e.valueFrom = valueNone
				}
				continue
			}
			if hasDst {
				s.prf[f][preg] = e.rec.DstVal
				wbPorts[f]--
				s.broadcast(th, e.ren.Dst.Class, e.ren.Dst.Tag)
			}
			e.st = stCompleted
			s.leaveIQ(e)
			if e.isBranch {
				s.resolveBranch(th, e, now)
			}
		}
	}
	return nil
}

// leaveIQ releases the instruction-queue slot. Under write-back allocation
// an instruction holds its slot until it completes successfully (it may
// need to re-execute); the other schemes free it at issue.
func (s *Sim) leaveIQ(e *robEntry) {
	if e.inIQ {
		e.inIQ = false
		s.iqCount--
	}
}

func (s *Sim) resolveBranch(th *thread, e *robEntry, now int64) {
	if e.isCond {
		s.bht.Update(e.rec.PC, e.rec.Taken)
		s.stats.CondBranches++
		if e.mispred {
			s.stats.Mispredicts++
		}
	}
	if e.mispred && th.frozen && th.frozenOn == e.inum {
		th.frozen = false
		th.nextFetchAt = now + int64(s.cfg.RecoveryPenalty)
	}
}

// broadcast wakes every waiting operand of the owning thread matching the
// completed tag (tags are per-thread namespaces).
func (s *Sim) broadcast(th *thread, class isa.RegClass, tag int) {
	for i := 0; i < th.robCount; i++ {
		e := th.at(i)
		if e.st == stCompleted {
			continue
		}
		if !e.src1Ready && matches(e.ren.Src1, class, tag) {
			e.src1Ready = true
		}
		if !e.src2Ready && matches(e.ren.Src2, class, tag) {
			e.src2Ready = true
		}
	}
}

func matches(op core.SrcOp, class isa.RegClass, tag int) bool {
	return op.Present && !op.Zero && op.Class == class && op.Tag == tag
}

func classIdxOf(c isa.RegClass) int {
	if c == isa.RegInt {
		return 0
	}
	return 1
}

// --- execute (memory pipeline) -------------------------------------------------

func (s *Sim) executeStage(now int64) error {
	ports := s.cfg.CachePorts
	// The post-commit store buffer gets first claim on one port. Without
	// this guarantee, re-executing loads (VP write-back allocation) can
	// monopolize the ports every cycle, the buffer never drains, commit
	// stalls, no register is ever freed, and the machine livelocks —
	// the §3.3 progress argument needs committed stores to retire.
	if len(s.committedStores) > 0 {
		if _, ok := s.dcache.Access(now, s.committedStores[0], true); ok {
			s.committedStores = s.committedStores[1:]
			ports--
		}
	}
	for _, th := range s.order() {
		for i := 0; i < th.robCount; i++ {
			e := th.at(i)
			if e.st != stExecuting || e.aguDoneAt == timeUnset || e.aguDoneAt > now {
				continue
			}
			switch {
			case e.isStore:
				sqe := th.sqEntry(e.inum)
				if sqe == nil {
					return fmt.Errorf("pipeline: store %d missing from store queue", e.inum)
				}
				if !sqe.eaKnown {
					sqe.ea = e.rec.EA
					sqe.eaKnown = true
					if s.cfg.Disambiguation == DisambSpeculative {
						if err := s.checkViolation(th, sqe, now); err != nil {
							return err
						}
					}
				}
			case e.isLoad && e.valueFrom == valueNone:
				if err := s.tryLoad(th, e, now, &ports); err != nil {
					return err
				}
			}
		}
	}
	// Post-commit stores drain through the remaining cache ports.
	for ports > 0 && len(s.committedStores) > 0 {
		if _, ok := s.dcache.Access(now, s.committedStores[0], true); !ok {
			break // all MSHRs busy; retry next cycle
		}
		s.committedStores = s.committedStores[1:]
		ports--
	}
	return nil
}

// tryLoad attempts to give a post-AGU load its value: forwarded from the
// youngest older matching store in its thread, or from the shared cache.
func (s *Sim) tryLoad(th *thread, e *robEntry, now int64, ports *int) error {
	var match *sqEntry
	for i := len(th.sq) - 1; i >= 0; i-- {
		sqe := &th.sq[i]
		if sqe.inum >= e.inum {
			continue
		}
		if !sqe.eaKnown {
			if s.cfg.Disambiguation == DisambConservative {
				return nil // wait for every older store address
			}
			continue // speculate past the unknown address
		}
		if sqe.ea == e.rec.EA {
			match = sqe
			break
		}
	}
	if match != nil {
		producer := th.entryByInum(match.inum)
		if producer == nil {
			return fmt.Errorf("pipeline: forwarding store %d not in window", match.inum)
		}
		if !producer.src2Ready {
			return nil // data not yet available; retry
		}
		e.valueFrom = match.inum
		e.completeAt = now + int64(s.cfg.ForwardLatency)
		s.stats.LoadsForwarded++
		return nil
	}
	if *ports == 0 {
		return nil
	}
	out, ok := s.dcache.Access(now, th.addr(e.rec.EA), false)
	if !ok {
		return nil // MSHRs exhausted; retry
	}
	*ports = *ports - 1
	e.valueFrom = valueMemory
	e.completeAt = out.ReadyAt
	return nil
}

// checkViolation enforces memory ordering when a store address resolves:
// any younger load in the same thread that already obtained its value from
// somewhere older than this store read stale data; it and everything
// younger is squashed and re-fetched (PA-8000 address-reorder-buffer
// behaviour).
func (s *Sim) checkViolation(th *thread, sqe *sqEntry, now int64) error {
	start := sqe.inum + 1 - th.headInum // ROB offset of the first younger entry
	for i := int(start); i < th.robCount; i++ {
		e := th.at(i)
		if !e.isLoad || e.rec.EA != sqe.ea {
			continue
		}
		if e.valueFrom != valueNone && e.valueFrom < sqe.inum {
			s.stats.MemViolations++
			return s.squashFrom(th, e.inum, now)
		}
	}
	return nil
}

// squashFrom flushes every instruction of the thread from inum (inclusive)
// to its window tail, restores the renamer newest-first, and re-fetches
// from inum.
func (s *Sim) squashFrom(th *thread, inum int64, now int64) error {
	tail := th.headInum + int64(th.robCount) - 1
	for n := tail; n >= inum; n-- {
		e := th.entryByInum(n)
		if e == nil {
			return fmt.Errorf("pipeline: squash of %d not in window", n)
		}
		s.leaveIQ(e)
		th.ren.Squash(n)
		if e.isStore {
			if len(th.sq) == 0 || th.sq[len(th.sq)-1].inum != n {
				return fmt.Errorf("pipeline: store queue out of sync squashing %d", n)
			}
			th.sq = th.sq[:len(th.sq)-1]
		}
		s.stats.SquashedByMem++
		th.robCount--
	}
	// The mispredicted branch the front end froze on may be in the
	// squashed ROB range or still in the fetch buffer (about to be
	// discarded); either way it is younger than the squash point and the
	// freeze must lift, or fetch never resumes.
	if th.frozen && th.frozenOn >= inum {
		th.frozen = false
	}
	th.fetchBuf = th.fetchBuf[:0]
	th.fetchSeq = inum
	th.nextFetchAt = now + 1 + int64(s.cfg.RecoveryPenalty)
	// The squashed instructions must be re-fetched even if the generator
	// already reported end-of-trace: the stream window still buffers them.
	th.traceEnded = false
	return nil
}

// --- issue ----------------------------------------------------------------------

func (s *Sim) issueStage(now int64) error {
	budget := s.cfg.IssueWidth
	rfReads := [2]int{s.cfg.RFReadPorts, s.cfg.RFReadPorts}
	for _, th := range s.order() {
		for i := 0; i < th.robCount && budget > 0; i++ {
			e := th.at(i)
			if e.st != stWaiting || !e.ready() {
				continue
			}
			info := e.rec.Inst.Op.Info()
			pool := s.kindToPool[info.Kind]
			unit := s.freeUnit(pool, now)
			if unit < 0 {
				continue
			}
			needReads := readPortNeeds(e)
			if rfReads[0] < needReads[0] || rfReads[1] < needReads[1] {
				continue
			}
			if !th.ren.AllocateAtIssue(e.inum) {
				continue // VP issue allocation refused; stays in the queue
			}
			if err := s.readIssueOperands(th, e); err != nil {
				return err
			}
			th.ren.NoteRead(e.inum, true, !e.isStore)

			rfReads[0] -= needReads[0]
			rfReads[1] -= needReads[1]
			if info.Pipelined {
				s.pools[pool][unit] = now + 1
			} else {
				s.pools[pool][unit] = now + int64(info.Latency)
			}
			budget--
			e.executions++
			s.stats.Issued++
			e.st = stExecuting
			if e.isLoad || e.isStore {
				e.aguDoneAt = now + int64(info.Latency) // effective-address unit
				e.completeAt = timeUnset
			} else {
				e.completeAt = now + int64(info.Latency)
			}
			if s.cfg.Scheme != core.SchemeVPWriteback {
				s.leaveIQ(e)
			}
		}
	}
	return nil
}

func (s *Sim) freeUnit(pool int, now int64) int {
	for u, busyUntil := range s.pools[pool] {
		if busyUntil <= now {
			return u
		}
	}
	return -1
}

// readPortNeeds counts register-file reads per class performed at issue.
// Store data is read later (at completion) and is not charged a port — a
// documented simplification.
func readPortNeeds(e *robEntry) [2]int {
	var n [2]int
	if op := e.ren.Src1; op.Present && !op.Zero {
		n[classIdxOf(op.Class)]++
	}
	if op := e.ren.Src2; op.Present && !op.Zero && !e.isStore {
		n[classIdxOf(op.Class)]++
	}
	return n
}

// readIssueOperands performs the golden-model check on the operands read
// at issue time.
func (s *Sim) readIssueOperands(th *thread, e *robEntry) error {
	if err := s.checkOperand(th, e, e.ren.Src1, e.rec.Src1Val); err != nil {
		return err
	}
	if !e.isStore {
		if err := s.checkOperand(th, e, e.ren.Src2, e.rec.Src2Val); err != nil {
			return err
		}
	}
	return nil
}

// checkOperand verifies that the physical register behind the operand
// holds the architecturally correct value.
func (s *Sim) checkOperand(th *thread, e *robEntry, op core.SrcOp, want uint64) error {
	if !op.Present || op.Zero || !s.cfg.ValueCheck || !e.rec.HasValues {
		return nil
	}
	f := classIdxOf(op.Class)
	preg := th.ren.ReadPhys(op.Class, op.Tag)
	if got := s.prf[f][preg]; got != want {
		return fmt.Errorf("pipeline: golden-model mismatch at thread %d inum %d (%s): operand %s tag %d -> p%d holds %#x, architectural value %#x",
			th.id, e.inum, e.rec.Inst, op.Class, op.Tag, preg, got, want)
	}
	return nil
}

// --- dispatch (decode + rename) ---------------------------------------------------

func (s *Sim) dispatchStage(now int64) error {
	budget := s.cfg.DecodeWidth
	for _, th := range s.order() {
		for budget > 0 && len(th.fetchBuf) > 0 {
			if th.robCount == len(th.rob) {
				s.stats.ROBStalls++
				break
			}
			if s.iqCount == s.cfg.IQSize {
				s.stats.IQStalls++
				break
			}
			item := th.fetchBuf[0]
			renamed, ok := th.ren.Rename(item.rec.Seq, item.rec.Inst)
			if !ok {
				break // conventional scheme out of registers; retry next cycle
			}
			th.fetchBuf = th.fetchBuf[1:]

			slot := (th.robHead + th.robCount) % len(th.rob)
			info := item.rec.Inst.Op.Info()
			th.rob[slot] = robEntry{
				inum:       item.rec.Seq,
				rec:        item.rec,
				ren:        renamed,
				st:         stWaiting,
				inIQ:       true,
				src1Ready:  !renamed.Src1.Present || renamed.Src1.Zero || renamed.Src1.Ready,
				src2Ready:  !renamed.Src2.Present || renamed.Src2.Zero || renamed.Src2.Ready,
				completeAt: timeUnset,
				aguDoneAt:  timeUnset,
				isLoad:     info.IsLoad,
				isStore:    info.IsStore,
				valueFrom:  valueNone,
				isBranch:   info.IsBranch,
				isCond:     info.IsBranch && !info.IsUncond,
				mispred:    item.mispred,
			}
			th.robCount++
			s.iqCount++
			budget--
			if info.IsStore {
				th.sq = append(th.sq, sqEntry{inum: item.rec.Seq})
			}
		}
	}
	return nil
}

// --- fetch -------------------------------------------------------------------------

// fetchStage gives the whole fetch bandwidth to one thread per cycle,
// rotating among threads that can fetch (round-robin, the classic simple
// SMT fetch policy). With one thread this is the paper's front end.
func (s *Sim) fetchStage(now int64) {
	for _, th := range s.order() {
		if th.traceEnded || th.frozen || now < th.nextFetchAt || len(th.fetchBuf) >= fetchBufSize {
			continue
		}
		s.fetchThread(th, now)
		return
	}
}

func (s *Sim) fetchThread(th *thread, now int64) {
	for budget := s.cfg.FetchWidth; budget > 0 && len(th.fetchBuf) < fetchBufSize; budget-- {
		rec, ok := th.stream.At(th.fetchSeq)
		if !ok {
			th.traceEnded = true
			return
		}
		item := fetchItem{rec: rec}
		info := rec.Inst.Op.Info()
		if info.IsBranch {
			predTaken := true // unconditional and indirect: perfect target prediction
			if !info.IsUncond {
				predTaken = s.bht.Predict(rec.PC)
			}
			if predTaken != rec.Taken {
				// Mispredicted: the branch itself is fetched, then the
				// front end freezes until it resolves.
				item.mispred = true
				th.fetchBuf = append(th.fetchBuf, item)
				th.fetchSeq++
				th.frozen = true
				th.frozenOn = rec.Seq
				return
			}
			th.fetchBuf = append(th.fetchBuf, item)
			th.fetchSeq++
			if rec.Taken {
				return // a taken branch ends the consecutive fetch group
			}
			continue
		}
		th.fetchBuf = append(th.fetchBuf, item)
		th.fetchSeq++
	}
}

// --- statistics ---------------------------------------------------------------------

func (s *Sim) sample() {
	rob := 0
	for _, th := range s.threads {
		rob += th.robCount
	}
	s.stats.ROBOccupancySum += int64(rob)
	s.stats.IQOccupancySum += int64(s.iqCount)
	// InUse is pool-wide; any thread's renamer reports the shared files.
	s.stats.IntRegsInUseSum += int64(s.threads[0].ren.InUse(isa.RegInt))
	s.stats.FPRegsInUseSum += int64(s.threads[0].ren.InUse(isa.RegFP))
}

// PoolCheck validates the shared register pool against every thread's
// holdings (Debug helper; called by tests).
func (s *Sim) PoolCheck() error {
	members := make([]core.PoolMember, 0, len(s.threads))
	for _, th := range s.threads {
		members = append(members, th.ren.(core.PoolMember))
	}
	return s.pool.CheckInvariants(members...)
}
