// Package pipeline is the cycle-accurate, trace-driven out-of-order
// processor model of the paper's §4.1: 8-way fetch/decode/commit, a
// 128-entry reorder buffer, Table 1 functional units, separate integer and
// FP physical register files with 16 read and 8 write ports, three ports
// into a lockup-free data cache, a 2048-entry branch history table, and
// PA-8000-style memory disambiguation.
//
// The pipeline is driven by a committed-path trace (internal/trace).
// Mispredicted branches freeze fetch until they resolve — wrong-path
// instructions are not simulated, exactly as in the paper's trace-driven
// methodology. Memory-order violations under speculative disambiguation do
// squash and re-fetch real instructions, exercising the renamers' recovery
// machinery.
//
// When the trace carries values (emulator-generated traces do), the
// pipeline routes those values through the physical register files and
// verifies at every operand read that the consumer sees exactly the value
// the architectural emulator produced — a golden-model check that turns
// renaming bugs into hard errors instead of silently wrong timing.
//
// The paper closes by predicting that virtual-physical registers matter
// even more for multithreaded architectures (§5, future work). NewSMT
// realizes that scenario: several hardware threads, each with its own
// trace, front end, reorder buffer and map tables, share the functional
// units, cache ports, and — crucially — the physical register files
// through core.SharedPool.
//
// # Structure
//
// The simulator is split into one file per pipeline stage — fetch.go,
// dispatch.go, issue.go, execute.go, writeback.go, commit.go — all methods
// on the shared Sim kernel defined here. Scheduling is event-indexed
// (kernel.go): instead of scanning the whole reorder buffer in every stage
// of every cycle, the kernel keeps an explicit ready queue, per-tag wakeup
// waiter lists updated by result broadcast, and completion/AGU event
// wheels keyed by cycle, so each stage visits only the instructions that
// can actually act now. scanref.go retains the original O(ROB)-scan stage
// implementations as a differential oracle; both kernels are
// cycle-identical by construction and by test.
//
// Beyond the single-core Sim, multicore.go steps N single-thread cores in
// cycle-lockstep against a shared memory hierarchy (internal/mem): private
// lockup-free L1s over a banked finite shared L2, optionally with an MSI
// coherence directory (MulticoreConfig.Coherence) whose invalidation
// traffic surfaces in Stats as L2Invalidations / L2Upgrades /
// L2WritebackForwards. Cores run in index order within each cycle, which
// makes every shared-state statistic deterministic and independent of
// host parallelism. policy.go defines the pluggable stage policies
// (FetchPolicy, IssueSelect) and the zero-allocation Probe interface,
// each looked up by name in a registry so engine cache keys stay
// canonical.
//
// The package is determinism-checked: vplint's detsource analyzer bans
// wall-clock reads, randomness, goroutine launches, and map-order leaks
// outside their annotated sanctioned sites (docs/LINTING.md).
//
//vpr:detpkg
package pipeline

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Memory is the port into the data memory hierarchy a Sim drives: the
// wrapped single-core cache by default, or one L1 of a shared mem.System
// under the Multicore runner.
type Memory = mem.Memory

type state uint8

const (
	stWaiting   state = iota // dispatched; waiting for operands or re-execution
	stExecuting              // issued to a functional unit / memory pipeline
	stCompleted              // result produced; awaiting in-order commit
)

const (
	valueNone    int64 = -2 // load has not obtained its value yet
	valueMemory  int64 = -1 // load value came from the cache/memory
	timeUnset    int64 = -1
	fetchBufSize       = 16

	// threadAddrShift namespaces each thread's addresses in the shared
	// cache: traces are generated in identical virtual address spaces,
	// but SMT threads must not alias each other's lines.
	threadAddrShift = 44
)

// robEntry is one in-flight instruction. Because fetch follows the
// committed path, instruction numbers in a thread's reorder buffer are
// consecutive trace sequence numbers.
type robEntry struct {
	inum int64
	rec  trace.Record
	ren  core.Renamed

	// gen distinguishes this occupancy of the ROB slot from earlier ones
	// with the same inum (squash + re-fetch reuses instruction numbers):
	// scheduler references — wheel events, queue entries, wakeup waiters
	// — carry the gen they were created under and are dropped when it no
	// longer matches.
	gen uint32

	st         state
	inIQ       bool
	inReadyQ   bool // queued in the scheduler's ready index
	src1Ready  bool
	src2Ready  bool
	executions int

	completeAt int64 // cycle execution finishes (timeUnset while unknown)
	aguDoneAt  int64 // memory ops: cycle the effective address is ready

	// allocBlockedAt records the cycle VP-issue allocation last refused
	// this instruction (timeUnset otherwise). The issue stage skips the
	// renamer consult — counting the block without paying for it — until
	// a register of the destination's class returns to the shared pool
	// (see allocAtIssue).
	allocBlockedAt int64

	isLoad    bool
	isStore   bool
	valueFrom int64 // loads: forwarding store inum, valueMemory, or valueNone

	isBranch bool
	isCond   bool
	mispred  bool
}

func (e *robEntry) ready() bool {
	if e.isStore {
		return e.src1Ready // address only; data may arrive later
	}
	return e.src1Ready && e.src2Ready
}

// sqEntry tracks an uncommitted store for disambiguation and forwarding.
type sqEntry struct {
	inum    int64
	ea      uint64
	eaKnown bool
}

type fetchItem struct {
	rec     trace.Record
	mispred bool
}

// thread is one hardware context: private trace, front end, reorder
// buffer, store queue and renamer (map tables); everything else is shared.
type thread struct {
	id  int
	gen trace.Generator

	stream *trace.Stream
	ren    core.Renamer

	fetchSeq    int64
	frozen      bool
	frozenOn    int64
	nextFetchAt int64
	traceEnded  bool

	// Fetch buffer: a fixed ring (no per-cycle reslicing).
	fbuf   []fetchItem
	fbHead int
	fbN    int

	rob      []robEntry
	robHead  int
	robCount int
	headInum int64

	// Store queue: a fixed ring, ordered oldest-first. A thread can have
	// at most ROBSize uncommitted stores.
	sqBuf  []sqEntry
	sqHead int
	sqN    int

	committed int64

	// Event-kernel state (nil slices under the scan reference kernel).
	readyQ  []evRef       // dispatched, operands ready, waiting to issue; inum-sorted
	wbPend  []evRef       // execution finished or store completable; inum-sorted
	aguPend []evRef       // post-AGU memory ops awaiting cache/forwarding; inum-sorted
	waiters [2][][]waiter // wakeup index: per class, per tag, registered consumers
}

// at returns the thread's i-th oldest in-flight entry.
func (t *thread) at(i int) *robEntry {
	return &t.rob[(t.robHead+i)%len(t.rob)]
}

func (t *thread) entryByInum(inum int64) *robEntry {
	off := inum - t.headInum
	if off < 0 || off >= int64(t.robCount) {
		return nil
	}
	return t.at(int(off))
}

// --- fetch-buffer ring -------------------------------------------------------

func (t *thread) fbFull() bool  { return t.fbN == len(t.fbuf) }
func (t *thread) fbEmpty() bool { return t.fbN == 0 }

func (t *thread) fbPush(it fetchItem) {
	t.fbuf[(t.fbHead+t.fbN)%len(t.fbuf)] = it
	t.fbN++
}

func (t *thread) fbFront() *fetchItem { return &t.fbuf[t.fbHead] }

func (t *thread) fbPopFront() {
	t.fbHead = (t.fbHead + 1) % len(t.fbuf)
	t.fbN--
}

func (t *thread) fbClear() { t.fbHead, t.fbN = 0, 0 }

// --- store-queue ring --------------------------------------------------------

func (t *thread) sqAt(i int) *sqEntry {
	return &t.sqBuf[(t.sqHead+i)%len(t.sqBuf)]
}

func (t *thread) sqPush(e sqEntry) {
	t.sqBuf[(t.sqHead+t.sqN)%len(t.sqBuf)] = e
	t.sqN++
}

func (t *thread) sqPopFront() {
	t.sqHead = (t.sqHead + 1) % len(t.sqBuf)
	t.sqN--
}

func (t *thread) sqPopBack() { t.sqN-- }

func (t *thread) sqEntry(inum int64) *sqEntry {
	for i := 0; i < t.sqN; i++ {
		if e := t.sqAt(i); e.inum == inum {
			return e
		}
	}
	return nil
}

// addr namespaces an effective address for the shared cache.
func (t *thread) addr(ea uint64) uint64 {
	return ea + uint64(t.id)<<threadAddrShift
}

func (t *thread) done() bool {
	return t.traceEnded && t.robCount == 0 && t.fbN == 0
}

// Sim is one simulated processor bound to one or more traces.
type Sim struct {
	cfg  Config
	scan bool // use the scan reference kernel instead of the event kernel

	// Stage policies and the probe, copied out of cfg.Policies (nil =
	// built-in default behaviour; the nil fast paths are branch-free
	// beyond one comparison per event site).
	fetchPol FetchPolicy
	issueSel IssueSelect
	probe    Probe

	// Reused policy scratch (allocated only when a policy is attached).
	fetchCands  []FetchCandidate
	fetchCandTh []*thread
	issueCands  []IssueCandidate

	threads []*thread
	pool    *core.SharedPool
	bht     *bpred.BHT
	dmem    Memory

	cycle int64

	// Shared structural state.
	iqCount int // instruction-queue occupancy across threads
	prf     [2][]uint64

	// Post-commit store buffer: a fixed ring of at most StoreBufferSize
	// namespaced addresses.
	sbBuf  []uint64
	sbHead int
	sbN    int

	// Functional units. The event kernel tracks each pool as a free
	// count plus a release wheel (kernel.go); the scan reference keeps
	// the original busy-until array per unit.
	pools      [6]poolState
	scanPools  [6][]int64
	kindToPool [isa.NumFUKinds]int

	// Event wheels (event kernel only).
	compWheel wheel // execution-complete events, keyed by cycle
	aguWheel  wheel // effective-address-ready events, keyed by cycle

	genCtr uint32

	// lastRegFree records, per class, the last cycle a physical register
	// returned to the shared pool (via core.SharedPool's free listener).
	// Shared-pool contention (SMT) shows up in deadlock diagnostics as a
	// stale value here.
	lastRegFree [2]int64

	rotate          int // round-robin offset, advanced every cycle
	orderBuf        []*thread
	lastCommitCycle int64

	// deferredIssueBlocks counts the cycles the issue stage skipped a
	// provably futile VP-issue allocation consult (see allocAtIssue).
	// Each skipped cycle is one issue block the renamer would have
	// counted; Stats folds them back so IssueBlocks stays byte-identical
	// to the consult-every-cycle accounting.
	deferredIssueBlocks int64

	// onCommit, when set, observes every commit in machine order
	// (differential tests compare commit streams across kernels).
	onCommit func(tid int, inum int64)

	wallNanos int64

	stats Stats
}

// New builds a single-threaded simulator over the generator — the paper's
// configuration.
func New(cfg Config, gen trace.Generator) (*Sim, error) {
	return NewSMT(cfg, []trace.Generator{gen})
}

// NewSMT builds a simulator with one hardware thread per generator. All
// threads run the same machine configuration; the physical register files
// are shared, so cfg.Rename.PhysRegs must cover every thread's
// architectural registers plus headroom for renaming.
func NewSMT(cfg Config, gens []trace.Generator) (*Sim, error) {
	return newSMT(cfg, gens, false)
}

// newSMT builds the default memory hierarchy — the paper's single
// lockup-free cache, wrapped for the Memory interface. (newSMTMem
// validates the configuration; cache geometry errors panic in cache.New,
// as they always have.)
func newSMT(cfg Config, gens []trace.Generator, scan bool) (*Sim, error) {
	return newSMTMem(cfg, gens, scan, mem.NewSingle(cache.New(cfg.Cache)))
}

// newSMTMem is the shared constructor; scan selects the pre-refactor
// full-window-scan reference kernel (differential tests only; compiled
// under the scanoracle build tag) and m is the core's port into the data
// memory hierarchy (the Multicore runner passes one L1 of a shared
// mem.System).
func newSMTMem(cfg Config, gens []trace.Generator, scan bool, m Memory) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one trace")
	}
	if need := len(gens) * cfg.Rename.LogicalRegs; cfg.Rename.PhysRegs <= need {
		return nil, fmt.Errorf("pipeline: %d physical registers cannot back %d threads × %d logical",
			cfg.Rename.PhysRegs, len(gens), cfg.Rename.LogicalRegs)
	}
	s := &Sim{
		cfg:      cfg,
		scan:     scan,
		fetchPol: cfg.Policies.Fetch,
		issueSel: cfg.Policies.Issue,
		probe:    cfg.Policies.Probe,
		pool:     core.NewSharedPool(cfg.Rename.PhysRegs),
		bht:      bpred.New(cfg.BHTEntries),
		dmem:     m,
		sbBuf:    make([]uint64, cfg.StoreBufferSize),
	}
	if s.fetchPol != nil {
		s.fetchCands = make([]FetchCandidate, 0, len(gens))
		s.fetchCandTh = make([]*thread, 0, len(gens))
	}
	if s.issueSel != nil {
		s.issueCands = make([]IssueCandidate, 0, 64)
	}
	s.lastRegFree[0], s.lastRegFree[1] = timeUnset, timeUnset
	s.pool.SetFreeListener(func(f int) { s.lastRegFree[f] = s.cycle })
	for i, gen := range gens {
		th := &thread{
			id:     i,
			gen:    gen,
			stream: trace.NewStream(gen, cfg.ROBSize+fetchBufSize+4*cfg.FetchWidth+64),
			rob:    make([]robEntry, cfg.ROBSize),
			fbuf:   make([]fetchItem, fetchBufSize),
			sqBuf:  make([]sqEntry, cfg.ROBSize),
		}
		switch cfg.Scheme {
		case core.SchemeConventional:
			th.ren = core.NewConventionalShared(cfg.Rename, s.pool)
		case core.SchemeVPWriteback:
			th.ren = core.NewVPShared(cfg.Rename, core.AllocAtWriteback, s.pool)
		case core.SchemeVPIssue:
			th.ren = core.NewVPShared(cfg.Rename, core.AllocAtIssue, s.pool)
		default:
			return nil, fmt.Errorf("pipeline: unknown scheme %v", cfg.Scheme)
		}
		if !s.scan {
			s.initThreadEv(th)
		}
		s.threads = append(s.threads, th)
	}
	s.orderBuf = make([]*thread, len(s.threads))
	for f := 0; f < 2; f++ {
		s.prf[f] = make([]uint64, cfg.Rename.PhysRegs)
	}
	poolSizes := []int{
		cfg.SimpleIntUnits, cfg.ComplexIntUnits, cfg.EffAddrUnits,
		cfg.SimpleFPUnits, cfg.FPMulUnits, cfg.FPDivUnits,
	}
	for i, n := range poolSizes {
		if s.scan {
			s.scanPools[i] = make([]int64, n)
		} else {
			s.pools[i].free = n
		}
	}
	if !s.scan {
		s.compWheel.init(compWheelSlots)
		s.aguWheel.init(aguWheelSlots)
	}
	s.kindToPool = [isa.NumFUKinds]int{
		isa.FUIntALU:  0,
		isa.FUIntMul:  1,
		isa.FUIntDiv:  1, // multiply and divide share the complex-int units
		isa.FUEffAddr: 2,
		isa.FUFPALU:   3,
		isa.FUFPMul:   4,
		isa.FUFPDiv:   5,
	}
	return s, nil
}

// Renamer exposes thread 0's renamer for statistics collection.
func (s *Sim) Renamer() core.Renamer { return s.threads[0].ren }

// Memory exposes the data memory hierarchy port for statistics
// collection.
func (s *Sim) Memory() Memory { return s.dmem }

// BHT exposes the shared branch predictor for statistics collection.
func (s *Sim) BHT() *bpred.BHT { return s.bht }

// Threads returns the number of hardware threads.
func (s *Sim) Threads() int { return len(s.threads) }

// ThreadCommitted returns instructions committed by one thread.
func (s *Sim) ThreadCommitted(i int) int64 { return s.threads[i].committed }

// Done reports whether every thread's trace is exhausted and drained.
func (s *Sim) Done() bool {
	for _, th := range s.threads {
		if !th.done() {
			return false
		}
	}
	return true
}

// Stats returns a snapshot of the statistics including cache counters and
// host-throughput numbers.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.Cycles = s.cycle
	ms := s.dmem.Stats()
	st.CacheAccesses = ms.Accesses
	st.CacheMisses = ms.Misses
	st.CacheMergedMiss = ms.Merges
	st.MSHRStallCycles = ms.MSHRStalls
	st.PeakMSHRs = ms.PeakInFlight
	st.SilentUpgrades = ms.SilentUpgrades
	st.L2Fetches = ms.L2Fetches
	st.L2Hits = ms.L2Hits
	st.L2Misses = ms.L2Misses
	st.L2Merges = ms.L2Merges
	st.L2Conflicts = ms.L2Conflicts
	for _, th := range s.threads {
		lifetime, freed := th.ren.PressureStats()
		st.RegLifetimeSum += lifetime
		st.RegsFreed += freed
		if c, ok := th.ren.(*core.Conventional); ok {
			st.RenameRegStall += c.RenameStalls
			st.EarlyReleases += c.EarlyReleases
		}
		if v, ok := th.ren.(*core.VP); ok {
			st.Reexecutions += v.AllocFailures
			st.IssueBlocks += v.IssueBlocks
		}
	}
	st.IssueBlocks += s.deferredIssueBlocks
	if s.wallNanos > 0 {
		st.WallSeconds = float64(s.wallNanos) / 1e9
		st.CyclesPerSec = float64(st.Cycles) / st.WallSeconds
		st.InstrsPerSec = float64(st.Committed) / st.WallSeconds
	}
	return st
}

// Run advances the simulation until every trace drains or maxCommits
// commit in total.
func (s *Sim) Run(maxCommits int64) (Stats, error) {
	return s.RunContext(context.Background(), maxCommits)
}

// ctxCheckCycles bounds how stale a cancellation can go unnoticed: the
// context is polled once per this many simulated cycles, keeping the check
// off the per-cycle hot path.
const ctxCheckCycles = 4096

// RunContext advances the simulation like Run but stops early, returning
// ctx.Err() and the statistics accumulated so far, once ctx is cancelled.
// Wall-clock time spent inside the run loop accumulates into the
// throughput fields of Stats (cycles and instructions simulated per host
// second).
//
//vpr:wallclock host-throughput accounting only; never feeds simulated state
func (s *Sim) RunContext(ctx context.Context, maxCommits int64) (Stats, error) {
	start := time.Now()
	err := s.runLoop(ctx, maxCommits)
	s.wallNanos += time.Since(start).Nanoseconds()
	return s.Stats(), err
}

func (s *Sim) runLoop(ctx context.Context, maxCommits int64) error {
	sinceCheck := 0
	for !s.Done() && (maxCommits <= 0 || s.stats.Committed < maxCommits) {
		if sinceCheck++; sinceCheck >= ctxCheckCycles {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step simulates one cycle. Stages run in reverse pipeline order so that
// results written back in a cycle can wake and issue dependants in the
// same cycle (full bypassing), identically for every renaming scheme.
// Shared budgets (commit/issue/decode width, ports) rotate their starting
// thread every cycle for fairness.
//
// The cycle is split into three phases so the parallel multicore stepper
// (parallel.go) can serialize only the middle one: stepFront and stepBack
// touch nothing but this core's private state, while stepMem (the execute
// stage) is the single place the data-memory port — and, under a shared
// mem.System, shared L2/directory state — is driven.
//
//vpr:hotpath
func (s *Sim) Step() error {
	now := s.cycle
	if err := s.stepFront(now); err != nil {
		return err
	}
	if err := s.stepMem(now); err != nil {
		return err
	}
	return s.stepBack(now)
}

// stepFront runs the private front half of a cycle: commit (which refills
// the post-commit store buffer) and write-back. After it returns, the
// cycle's memory footprint is fixed — memQuiet is meaningful.
//
//vpr:hotpath
//vpr:computephase
func (s *Sim) stepFront(now int64) error {
	if s.probe != nil {
		s.probe.CycleStart(now)
	}
	s.rotateOrder()
	if err := s.commitStage(now); err != nil {
		return err
	}
	return s.writebackStage(now)
}

// stepMem runs the memory phase of a cycle — the execute stage, the only
// phase that calls into s.dmem. Under the parallel multicore stepper this
// phase is admitted in global (cycle, core-index) order whenever it might
// touch shared state.
//
//vpr:hotpath
//vpr:memphase
func (s *Sim) stepMem(now int64) error {
	return s.executeStage(now)
}

// stepBack runs the private back half of a cycle — issue, dispatch,
// fetch, sampling and the per-cycle invariant checks — and advances the
// clock.
//
//vpr:hotpath
//vpr:computephase
func (s *Sim) stepBack(now int64) error {
	if err := s.issueStage(now); err != nil {
		return err
	}
	if err := s.dispatchStage(now); err != nil {
		return err
	}
	s.fetchStage(now)
	s.sample()
	if s.cfg.Debug {
		for _, th := range s.threads {
			if err := th.ren.CheckInvariants(); err != nil {
				//vpr:allowalloc error path: the failed run allocates once and stops
				return fmt.Errorf("cycle %d thread %d: %w", now, th.id, err)
			}
			if !s.scan {
				if err := s.checkEvInvariants(th); err != nil {
					//vpr:allowalloc error path: the failed run allocates once and stops
					return fmt.Errorf("cycle %d thread %d: %w", now, th.id, err)
				}
			}
		}
	}
	if now-s.lastCommitCycle > s.cfg.DeadlockCycles {
		//vpr:allowalloc error path: the failed run allocates once and stops
		return fmt.Errorf("pipeline: no commit for %d cycles at cycle %d (%s): deadlock",
			s.cfg.DeadlockCycles, now, s.describeHeads())
	}
	s.cycle++
	s.rotate++
	return nil
}

// memQuiet reports whether this cycle's stepMem provably performs no
// data-memory access: the post-commit store buffer is empty, no thread
// has a post-AGU memory operation pending or retrying, and the AGU wheel
// cannot deliver one this cycle. Called between stepFront and stepMem
// (commit refills the store buffer, so the predicate is only meaningful
// once the front half has run). Conservative: a quiet cycle makes no
// Access/Drain call at all, so the parallel stepper may run it without
// taking the global memory gate.
//
//vpr:hotpath
//vpr:computephase
func (s *Sim) memQuiet(now int64) bool {
	if s.scan || s.sbN > 0 || !s.aguWheel.emptyAt(now) {
		return false
	}
	for _, th := range s.threads {
		if len(th.aguPend) > 0 {
			return false
		}
	}
	return true
}

//vpr:coldpath
func (s *Sim) describeHeads() string {
	var b strings.Builder
	for _, th := range s.threads {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		if th.robCount == 0 {
			fmt.Fprintf(&b, "t%d empty", th.id)
			continue
		}
		e := th.at(0)
		fmt.Fprintf(&b, "t%d head inum %d %s state %d ready %v/%v",
			th.id, e.inum, e.rec.Inst, e.st, e.src1Ready, e.src2Ready)
	}
	fmt.Fprintf(&b, "; last reg free int/fp cycle %d/%d", s.lastRegFree[0], s.lastRegFree[1])
	return b.String()
}

// rotateOrder refreshes the round-robin thread ordering for this cycle.
// The buffer is reused: order() allocated a fresh slice at every call site
// of every cycle before the scheduling-kernel refactor.
func (s *Sim) rotateOrder() {
	n := len(s.threads)
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		s.orderBuf[i] = s.threads[(s.rotate+i)%n]
	}
}

// threadOrder returns the threads starting at the current rotation offset.
func (s *Sim) threadOrder() []*thread {
	if len(s.threads) == 1 {
		return s.threads
	}
	return s.orderBuf
}

// --- statistics ---------------------------------------------------------------------

func (s *Sim) sample() {
	rob := 0
	for _, th := range s.threads {
		rob += th.robCount
	}
	s.stats.ROBOccupancySum += int64(rob)
	s.stats.IQOccupancySum += int64(s.iqCount)
	// InUse is pool-wide; any thread's renamer reports the shared files.
	s.stats.IntRegsInUseSum += int64(s.threads[0].ren.InUse(isa.RegInt))
	s.stats.FPRegsInUseSum += int64(s.threads[0].ren.InUse(isa.RegFP))
}

// PoolCheck validates the shared register pool against every thread's
// holdings (Debug helper; called by tests).
func (s *Sim) PoolCheck() error {
	members := make([]core.PoolMember, 0, len(s.threads))
	for _, th := range s.threads {
		members = append(members, th.ren.(core.PoolMember))
	}
	return s.pool.CheckInvariants(members...)
}
