package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/trace"
)

// policyRun executes one config over synthetic traces and returns the
// architectural stats plus the machine-order commit stream.
func policyRun(t *testing.T, cfg Config, seeds []int64, instr int64) (Stats, []int64) {
	t.Helper()
	gens := make([]trace.Generator, len(seeds))
	for i, seed := range seeds {
		p := synth.Defaults()
		p.Seed = seed
		if i%2 == 1 {
			p.MissRatio = 0.4 // asymmetric threads: fetch policy matters
		}
		gens[i] = trace.Take(synth.New(p), instr)
	}
	sim, err := NewSMT(cfg, gens)
	if err != nil {
		t.Fatal(err)
	}
	var stream []int64
	sim.onCommit = func(tid int, inum int64) {
		stream = append(stream, int64(tid)<<48|inum)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatalf("%v\nstats: %s", err, st)
	}
	return st.Arch(), stream
}

func smtPolicyConfig(threads int) Config {
	cfg := DefaultConfig()
	cfg.Rename.PhysRegs = 32*threads + 32
	nrr := 32 / threads
	cfg.Rename.NRRInt, cfg.Rename.NRRFP = nrr, nrr
	return cfg
}

// TestExplicitDefaultPoliciesByteIdentical: selecting the default policies
// explicitly (which routes fetch and issue through the generic
// policy-driven paths) must be cycle-identical to the nil fast paths —
// statistics and commit streams byte for byte, single-threaded and SMT.
func TestExplicitDefaultPoliciesByteIdentical(t *testing.T) {
	rr, ok := FetchPolicyByName(FetchRoundRobin)
	if !ok {
		t.Fatal("round-robin not registered")
	}
	oldest, ok := IssueSelectByName(IssueOldestFirst)
	if !ok {
		t.Fatal("oldest-first not registered")
	}
	for _, tc := range []struct {
		name  string
		cfg   Config
		seeds []int64
	}{
		{"1T-conv", DefaultConfig(), []int64{7}},
		{"2T-vpwb", smtPolicyConfig(2), []int64{7, 8}},
	} {
		for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
			cfg := tc.cfg
			cfg.Scheme = scheme
			defSt, defStream := policyRun(t, cfg, tc.seeds, 8000)
			cfg.Policies.Fetch = rr
			cfg.Policies.Issue = oldest
			polSt, polStream := policyRun(t, cfg, tc.seeds, 8000)
			if defSt != polSt {
				t.Errorf("%s/%s: explicit default policies diverge:\ndefault:  %+v\nexplicit: %+v", tc.name, scheme, defSt, polSt)
			}
			if len(defStream) != len(polStream) {
				t.Fatalf("%s/%s: commit streams diverge in length", tc.name, scheme)
			}
			for i := range defStream {
				if defStream[i] != polStream[i] {
					t.Fatalf("%s/%s: commit streams diverge at %d", tc.name, scheme, i)
				}
			}
		}
	}
}

// TestICountFetchChangesSchedule: under asymmetric SMT load, ICOUNT must
// actually steer the front end (different cycle count from round-robin)
// while committing the same instructions.
func TestICountFetchChangesSchedule(t *testing.T) {
	icount, _ := FetchPolicyByName(FetchICount)
	cfg := smtPolicyConfig(2)
	cfg.Scheme = core.SchemeVPWriteback
	base, _ := policyRun(t, cfg, []int64{7, 8}, 8000)
	cfg.Policies.Fetch = icount
	ic, _ := policyRun(t, cfg, []int64{7, 8}, 8000)
	if base.Committed != ic.Committed {
		t.Fatalf("committed diverge: %d vs %d", base.Committed, ic.Committed)
	}
	if base.Cycles == ic.Cycles {
		t.Errorf("icount produced the round-robin schedule (%d cycles); policy not wired?", base.Cycles)
	}
}

// TestIssueSelectHeuristics: every registered heuristic must drive a run
// to completion with the same committed count; the non-default ones go
// through the ranked issue path.
func TestIssueSelectHeuristics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = core.SchemeVPIssue
	cfg.Rename.PhysRegs = 48
	cfg.Rename.NRRInt, cfg.Rename.NRRFP = 8, 8
	cfg.Debug = true
	base, _ := policyRun(t, cfg, []int64{11}, 6000)
	for _, info := range IssueSelects() {
		sel, ok := IssueSelectByName(info.Name)
		if !ok {
			t.Fatalf("listed heuristic %q not resolvable", info.Name)
		}
		c := cfg
		c.Policies.Issue = sel
		st, _ := policyRun(t, c, []int64{11}, 6000)
		if st.Committed != base.Committed {
			t.Errorf("%s: committed %d, want %d", info.Name, st.Committed, base.Committed)
		}
	}
}

// statsProbe counts every probe event with plain integers (single-run use).
type statsProbe struct {
	cycles, dispatched, issued, completed, committed int64
	squashes, flushed                                int64
	refusedIssue, refusedWB                          int64
}

func (p *statsProbe) CycleStart(int64)                        { p.cycles++ }
func (p *statsProbe) Dispatched(int64, int, int64)            { p.dispatched++ }
func (p *statsProbe) Issued(int64, int, int64)                { p.issued++ }
func (p *statsProbe) Completed(int64, int, int64)             { p.completed++ }
func (p *statsProbe) Committed(int64, int, int64)             { p.committed++ }
func (p *statsProbe) Squashed(_ int64, _ int, _ int64, n int) { p.squashes++; p.flushed += int64(n) }
func (p *statsProbe) AllocRefused(_ int64, _ int, _ int64, atIssue bool) {
	if atIssue {
		p.refusedIssue++
	} else {
		p.refusedWB++
	}
}

// TestProbeEventsMatchStatistics ties every probe event stream to the
// statistics the kernel reports — in particular AllocRefused(atIssue) must
// equal IssueBlocks even though the free-listener gating skips most of the
// underlying renamer consults, and AllocRefused(!atIssue) must equal the
// write-back re-execution count.
func TestProbeEventsMatchStatistics(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeVPIssue, core.SchemeVPWriteback} {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Rename.PhysRegs = 40 // heavy allocation pressure
		cfg.Rename.NRRInt, cfg.Rename.NRRFP = 1, 1
		probe := &statsProbe{}
		cfg.Policies.Probe = probe
		st, _ := policyRun(t, cfg, []int64{3}, 6000)
		if probe.committed != st.Committed {
			t.Errorf("%s: probe committed %d, stats %d", scheme, probe.committed, st.Committed)
		}
		if probe.issued != st.Issued {
			t.Errorf("%s: probe issued %d, stats %d", scheme, probe.issued, st.Issued)
		}
		if probe.cycles != st.Cycles {
			t.Errorf("%s: probe cycles %d, stats %d", scheme, probe.cycles, st.Cycles)
		}
		if probe.refusedIssue != st.IssueBlocks {
			t.Errorf("%s: probe issue refusals %d, stats IssueBlocks %d", scheme, probe.refusedIssue, st.IssueBlocks)
		}
		if probe.refusedWB != st.Reexecutions {
			t.Errorf("%s: probe wb refusals %d, stats Reexecutions %d", scheme, probe.refusedWB, st.Reexecutions)
		}
		if probe.squashes != st.MemViolations {
			t.Errorf("%s: probe squashes %d, stats MemViolations %d", scheme, probe.squashes, st.MemViolations)
		}
		if probe.flushed != st.SquashedByMem {
			t.Errorf("%s: probe flushed %d, stats SquashedByMem %d", scheme, probe.flushed, st.SquashedByMem)
		}
		if probe.dispatched < st.Committed {
			t.Errorf("%s: probe dispatched %d < committed %d", scheme, probe.dispatched, st.Committed)
		}
		if probe.completed < st.Committed {
			t.Errorf("%s: probe completed %d < committed %d", scheme, probe.completed, st.Committed)
		}
		switch scheme {
		case core.SchemeVPIssue:
			if st.IssueBlocks == 0 {
				t.Errorf("vp-issue under NRR=1 pressure recorded no issue blocks; gating test is vacuous")
			}
		case core.SchemeVPWriteback:
			if st.Reexecutions == 0 {
				t.Errorf("vp-wb under NRR=1 pressure recorded no re-executions; refusal test is vacuous")
			}
		}
	}
}

// TestProbeAttachedIsStatsNeutral: attaching a probe must not change any
// architectural statistic.
func TestProbeAttachedIsStatsNeutral(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = core.SchemeVPWriteback
	bare, bareStream := policyRun(t, cfg, []int64{5}, 6000)
	cfg.Policies.Probe = &statsProbe{}
	probed, probedStream := policyRun(t, cfg, []int64{5}, 6000)
	if bare != probed {
		t.Errorf("probe changed statistics:\nbare:   %+v\nprobed: %+v", bare, probed)
	}
	if len(bareStream) != len(probedStream) {
		t.Errorf("probe changed the commit stream length")
	}
}

// TestPolicyRegistry: names resolve, defaults lead the listings, unknowns
// are rejected, and the Policies cache-key rendering names policies
// canonically while ignoring probes.
func TestPolicyRegistry(t *testing.T) {
	if fp := FetchPolicies(); len(fp) < 2 || fp[0].Name != FetchRoundRobin {
		t.Errorf("fetch policy listing wrong: %+v", fp)
	}
	if is := IssueSelects(); len(is) < 3 || is[0].Name != IssueOldestFirst {
		t.Errorf("issue-select listing wrong: %+v", is)
	}
	if _, ok := FetchPolicyByName("nonesuch"); ok {
		t.Error("unknown fetch policy resolved")
	}
	if _, ok := IssueSelectByName("nonesuch"); ok {
		t.Error("unknown issue-select resolved")
	}
	for _, info := range FetchPolicies() {
		if p, ok := FetchPolicyByName(info.Name); !ok || p.Name() != info.Name {
			t.Errorf("fetch policy %q: lookup/name mismatch", info.Name)
		}
	}
	for _, info := range IssueSelects() {
		if p, ok := IssueSelectByName(info.Name); !ok || p.Name() != info.Name {
			t.Errorf("issue-select %q: lookup/name mismatch", info.Name)
		}
	}
	zero := Policies{}.GoString()
	rr, _ := FetchPolicyByName(FetchRoundRobin)
	oldest, _ := IssueSelectByName(IssueOldestFirst)
	if got := (Policies{Fetch: rr, Issue: oldest, Probe: &statsProbe{}}).GoString(); got != zero {
		t.Errorf("explicit defaults + probe render %q, zero value %q; cache keys would diverge", got, zero)
	}
	ic, _ := FetchPolicyByName(FetchICount)
	if got := (Policies{Fetch: ic}).GoString(); got == zero {
		t.Errorf("icount renders like the default: %q", got)
	}
}
