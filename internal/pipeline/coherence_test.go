package pipeline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/synth"
	"repro/internal/trace"
)

// sharingGens returns two identical-seed synthetic streams — in a shared
// address space the cores touch the same lines in near-lockstep, the
// worst case for the MSI directory.
func sharingGens(n int64) []trace.Generator {
	gens := make([]trace.Generator, 2)
	for i := range gens {
		p := synth.Sharing()
		p.Seed = 5
		gens[i] = trace.Take(synth.New(p), n)
	}
	return gens
}

func runCoherenceMachine(t *testing.T, shared, coherent bool, gens []trace.Generator) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ValueCheck = false
	mc, err := NewMulticore(MulticoreConfig{
		Cores: 2, Core: cfg, L2: mem.DefaultL2Config(),
		SharedAddressSpace: shared, Coherence: coherent,
	}, gens)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mc.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMulticoreCoherenceOffByteIdentical is the PR's compatibility gate:
// with Coherence disabled, shared-address and namespaced multi-core runs
// must be byte-identical to the pre-coherence hierarchy. The expected
// statistics were captured from the PR-4 code on exactly these
// configurations (2 cores, default machine + default shared L2,
// store-heavy synthetic streams, seed 5, 12000 instructions per core)
// before the MSI directory existed.
func TestMulticoreCoherenceOffByteIdentical(t *testing.T) {
	base := Stats{
		Committed: 24000, Issued: 24802,
		CondBranches: 3730, Mispredicts: 448,
		Loads: 5888, Stores: 7266, LoadsForwarded: 328,
		MemViolations: 104, SquashedByMem: 2812,
		CacheMisses: 520, CacheMergedMiss: 56, PeakMSHRs: 8,
		L2Fetches: 520, L2Hits: 126,
		RegsFreed: 14730,
	}
	namespaced := base
	namespaced.Cycles = 11385
	namespaced.RenameRegStall = 10194
	namespaced.CacheAccesses = 13774
	namespaced.MSHRStallCycles = 690
	namespaced.L2Misses = 394
	namespaced.L2Conflicts = 306
	namespaced.ROBOccupancySum = 964096
	namespaced.IQOccupancySum = 383024
	namespaced.IntRegsInUseSum = 1272548
	namespaced.FPRegsInUseSum = 728640
	namespaced.RegLifetimeSum = 1206446

	shared := base
	shared.Cycles = 11241
	shared.RenameRegStall = 9998
	shared.CacheAccesses = 13754
	shared.MSHRStallCycles = 670
	shared.L2Misses = 197
	shared.L2Merges = 197
	shared.L2Conflicts = 493
	shared.ROBOccupancySum = 949928
	shared.IQOccupancySum = 378452
	shared.IntRegsInUseSum = 1255204
	shared.FPRegsInUseSum = 719360
	shared.RegLifetimeSum = 1189802

	gens := func() []trace.Generator {
		gens := make([]trace.Generator, 2)
		for i := range gens {
			p := synth.Defaults()
			p.FracStore = 0.3
			p.MissRatio = 0.02
			p.Seed = 5
			gens[i] = trace.Take(synth.New(p), 12000)
		}
		return gens
	}
	if got := runCoherenceMachine(t, false, false, gens()); got.Arch() != namespaced {
		t.Errorf("coherence-off namespaced run diverges from the PR-4 golden:\n got  %+v\n want %+v",
			got.Arch(), namespaced)
	}
	if got := runCoherenceMachine(t, true, false, gens()); got.Arch() != shared {
		t.Errorf("coherence-off shared-address run diverges from the PR-4 golden:\n got  %+v\n want %+v",
			got.Arch(), shared)
	}
}

// TestMulticoreCoherenceInvalidationTraffic: the acceptance shape of the
// coherence experiment — on the sharing workload in one address space the
// directory sends invalidations, takes upgrades and forwards dirty lines,
// and the traffic costs cycles; namespaced cores see none of it.
func TestMulticoreCoherenceInvalidationTraffic(t *testing.T) {
	const n = 10_000
	off := runCoherenceMachine(t, true, false, sharingGens(n))
	if off.L2Invalidations != 0 || off.L2Upgrades != 0 || off.L2WritebackForwards != 0 {
		t.Fatalf("coherence-off run recorded coherence traffic: %+v", off.Arch())
	}
	on := runCoherenceMachine(t, true, true, sharingGens(n))
	if on.L2Invalidations == 0 || on.L2Upgrades == 0 {
		t.Fatalf("sharing workload produced no invalidation traffic: inval=%d upgrades=%d forwards=%d",
			on.L2Invalidations, on.L2Upgrades, on.L2WritebackForwards)
	}
	if on.Cycles <= off.Cycles {
		t.Errorf("invalidation traffic must cost cycles: coherent %d vs coherence-free %d",
			on.Cycles, off.Cycles)
	}
	ns := runCoherenceMachine(t, false, true, sharingGens(n))
	if ns.L2Invalidations != 0 || ns.L2WritebackForwards != 0 {
		t.Errorf("namespaced cores share nothing, but saw inval=%d forwards=%d",
			ns.L2Invalidations, ns.L2WritebackForwards)
	}
}

// TestMulticoreCoherenceDeterministic: the MSI directory inherits the
// lockstep determinism guarantee.
func TestMulticoreCoherenceDeterministic(t *testing.T) {
	a := runCoherenceMachine(t, true, true, sharingGens(8_000))
	b := runCoherenceMachine(t, true, true, sharingGens(8_000))
	if a.Arch() != b.Arch() {
		t.Errorf("two identical coherent runs differ:\n%+v\n%+v", a.Arch(), b.Arch())
	}
}

// TestMulticoreCoherenceValidation: coherence without the shared L2 is
// meaningless and rejected up front.
func TestMulticoreCoherenceValidation(t *testing.T) {
	cfg := MulticoreConfig{Cores: 2, Core: DefaultConfig(), Coherence: true}
	if err := cfg.Validate(); err == nil {
		t.Error("coherence without the shared L2 must be rejected")
	}
}
