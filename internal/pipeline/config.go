package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
)

// Disambiguation selects the memory-ordering policy for loads.
type Disambiguation int

const (
	// DisambSpeculative models the PA-8000-style address reorder buffer:
	// loads may execute before older stores have computed their
	// addresses; if an older store later resolves to the same address,
	// the load and everything younger is squashed and re-fetched.
	DisambSpeculative Disambiguation = iota
	// DisambConservative makes loads wait until every older store has a
	// known address.
	DisambConservative
)

// String names the policy.
func (d Disambiguation) String() string {
	if d == DisambSpeculative {
		return "speculative"
	}
	return "conservative"
}

// Config describes the simulated processor. DefaultConfig reproduces the
// paper's §4.1 machine.
//
// Config is rendered into the engine's result-cache key via %#v, so every
// behavioral field must render canonically (see docs/LINTING.md).
//
//vpr:cachekey
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	ROBSize int
	IQSize  int

	Scheme core.Scheme
	Rename core.Params

	// Policies composes the pluggable stage behaviours: the fetch
	// policy, the issue-select heuristic and an optional probe. The zero
	// value is the paper's machine (see Policies).
	Policies Policies

	// Functional-unit counts (paper Table 1). Complex-integer units are
	// shared between multiply and divide.
	SimpleIntUnits  int
	ComplexIntUnits int
	EffAddrUnits    int
	SimpleFPUnits   int
	FPMulUnits      int
	FPDivUnits      int

	// Register-file ports, per file.
	RFReadPorts  int
	RFWritePorts int

	CachePorts int
	Cache      cache.Config

	BHTEntries int

	Disambiguation  Disambiguation
	ForwardLatency  int // store-queue to load forwarding latency
	StoreBufferSize int // post-commit store buffer entries

	// RecoveryPenalty adds cycles before fetch resumes after a
	// misprediction or memory-order violation (0 models R10000-style
	// checkpoint recovery; larger values approximate a serial ROB walk).
	RecoveryPenalty int

	// ValueCheck verifies, at every operand read, that the physical
	// register delivers exactly the value the functional emulator saw —
	// a golden-model check that catches renaming bugs. Only effective on
	// traces that carry values.
	ValueCheck bool

	// Debug runs internal invariant checks every cycle (slow).
	Debug bool

	// DeadlockCycles aborts the run if no instruction commits for this
	// many consecutive cycles. The VP scheme's NRR reservation exists
	// precisely to make this impossible.
	DeadlockCycles int64
}

// DefaultConfig is the paper's processor: 8-way fetch/decode/commit,
// 128-entry ROB, Table 1 functional units, 16R/8W register files, 3 cache
// ports, 2048-entry BHT, speculative disambiguation (PA-8000), and the
// default renaming parameters (64 registers per file, max NRR).
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,

		ROBSize: 128,
		IQSize:  128,

		Scheme: core.SchemeConventional,
		Rename: core.DefaultParams(),

		SimpleIntUnits:  3,
		ComplexIntUnits: 2,
		EffAddrUnits:    3,
		SimpleFPUnits:   3,
		FPMulUnits:      2,
		FPDivUnits:      2,

		RFReadPorts:  16,
		RFWritePorts: 8,

		CachePorts: 3,
		Cache:      cache.DefaultConfig(),

		BHTEntries: 2048,

		Disambiguation:  DisambSpeculative,
		ForwardLatency:  2,
		StoreBufferSize: 16,

		RecoveryPenalty: 0,
		ValueCheck:      true,
		DeadlockCycles:  200000,
	}
}

// Validate rejects configurations the simulator cannot honour.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("pipeline: widths must be positive")
	case c.ROBSize <= 0 || c.IQSize <= 0:
		return fmt.Errorf("pipeline: ROB and IQ sizes must be positive")
	case c.Rename.VPRegs < c.Rename.LogicalRegs+c.ROBSize && c.Scheme != core.SchemeConventional:
		return fmt.Errorf("pipeline: VP registers (%d) must cover logical+window (%d) to never stall decode",
			c.Rename.VPRegs, c.Rename.LogicalRegs+c.ROBSize)
	case c.SimpleIntUnits <= 0 || c.ComplexIntUnits <= 0 || c.EffAddrUnits <= 0 ||
		c.SimpleFPUnits <= 0 || c.FPMulUnits <= 0 || c.FPDivUnits <= 0:
		return fmt.Errorf("pipeline: all functional-unit counts must be positive")
	case c.RFReadPorts <= 0 || c.RFWritePorts <= 0 || c.CachePorts <= 0:
		return fmt.Errorf("pipeline: port counts must be positive")
	case c.StoreBufferSize <= 0:
		return fmt.Errorf("pipeline: store buffer must have at least one entry")
	case c.ForwardLatency <= 0:
		return fmt.Errorf("pipeline: forward latency must be positive")
	case c.DeadlockCycles <= 0:
		return fmt.Errorf("pipeline: deadlock threshold must be positive")
	}
	return nil
}

// poolFor maps an opcode's FU kind onto the configured unit pools.
// Integer multiply and divide share the complex-integer units.
func (c Config) unitCounts() [isa.NumFUKinds]int {
	var n [isa.NumFUKinds]int
	n[isa.FUIntALU] = c.SimpleIntUnits
	n[isa.FUIntMul] = c.ComplexIntUnits
	n[isa.FUIntDiv] = c.ComplexIntUnits // same physical units as FUIntMul
	n[isa.FUEffAddr] = c.EffAddrUnits
	n[isa.FUFPALU] = c.SimpleFPUnits
	n[isa.FUFPMul] = c.FPMulUnits
	n[isa.FUFPDiv] = c.FPDivUnits
	return n
}
