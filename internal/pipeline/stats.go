package pipeline

import "fmt"

// Stats aggregates everything a run measures. IPC (committed instructions
// per cycle) is the paper's headline metric; the register-pressure and
// re-execution numbers support its secondary claims.
//
//vpr:stats
type Stats struct {
	Cycles    int64
	Committed int64
	Issued    int64 // issue events, counting re-executions

	// Renaming behaviour.
	Reexecutions   int64 // write-back allocation failures (VP write-back)
	IssueBlocks    int64 // issue allocation refusals (VP issue)
	RenameRegStall int64 // decode stalls with an empty free list (conventional)
	ROBStalls      int64 // decode stalls on a full reorder buffer
	IQStalls       int64 // decode stalls on a full instruction queue
	EarlyReleases  int64 // conventional early-release ablation events

	// Branches.
	CondBranches int64
	Mispredicts  int64

	// Memory.
	Loads           int64
	Stores          int64
	LoadsForwarded  int64
	MemViolations   int64 // speculative disambiguation squashes
	SquashedByMem   int64 // instructions flushed by those squashes
	CommitSBStalls  int64 // commit blocked on a full store buffer
	CacheAccesses   int64
	CacheMisses     int64 // primary misses
	CacheMergedMiss int64
	MSHRStallCycles int64
	PeakMSHRs       int

	// Second level (zero on the paper's infinite-L2 machine): the private
	// finite L2 of cache.Config.L2Enabled, or this core's view of the
	// banked shared L2 under the Multicore runner (shared counters are
	// folded in once, by Multicore.Aggregate, not per core).
	L2Fetches   int64 // L1 misses presented to the L2 (hits+misses+merges)
	L2Hits      int64
	L2Misses    int64
	L2Merges    int64 // fetches folded into another core's in-flight refill
	L2Conflicts int64 // line transfers that found their L2 bank bus busy

	// Coherence over the shared L2 (all zero unless
	// MulticoreConfig.Coherence is enabled). L2Invalidations counts only
	// sharing-driven messages and is therefore zero whenever cores never
	// share a line (namespaced address spaces); upgrades and inclusion
	// back-invalidations occur even then. The last four fields measure
	// the non-default protocol/directory selections and stay zero under
	// MSI over the full map (the golden-pinned default).
	L2Invalidations     int64 // sharing-driven invalidation messages to remote L1s
	L2BackInvalidations int64 // inclusion: L2 victims invalidated out of sharer L1s
	L2Upgrades          int64 // store S→M ownership requests for present lines
	L2WritebackForwards int64 // dirty remote L1 copies forwarded through a bank
	L2OwnerForwards     int64 // MOESI: dirty lines forwarded cache-to-cache, kept Owned
	L2DirOverflows      int64 // limited pointers: sets that exhausted their budget
	L2DirBroadcasts     int64 // limited pointers: invalidation rounds gone broadcast
	SilentUpgrades      int64 // MESI/MOESI: E→M stores with zero directory traffic

	// Occupancy integrals (divide by Cycles for averages).
	ROBOccupancySum int64
	IQOccupancySum  int64
	IntRegsInUseSum int64
	FPRegsInUseSum  int64

	// Register-lifetime accounting (the §3.1 pressure metric measured in
	// vivo): total cycles freed registers were held, and how many were
	// freed.
	RegLifetimeSum int64
	RegsFreed      int64

	// Kernel throughput: host wall-clock time accumulated inside the run
	// loop and the derived simulation rates. These measure the simulator,
	// not the simulated machine — they vary run to run and are excluded
	// from Arch(), the architectural view determinism and differential
	// tests compare.
	WallSeconds  float64
	CyclesPerSec float64
	InstrsPerSec float64

	// Parallel-stepper wait ladder (parallel.go waitStats), summed over
	// the core goroutines by Multicore.Aggregate; all zero under the
	// lockstep oracle. Like the throughput fields these measure the
	// simulator's host behaviour — how often the memory gate and the
	// pacing window actually blocked, and how each wait was spent — so
	// they depend on host scheduling, vary run to run, and are zeroed by
	// Arch().
	GateWaits   int64 // gated memory phases that found a predecessor lagging
	PacingWaits int64 // cycle starts that found the skew window closed
	GateSpins   int64 // pure load-spin probes across both wait kinds
	GateYields  int64 // runtime.Gosched yields after the spin budget
	GateParks   int64 // park episodes on a per-core notifier
}

// Arch returns the architectural statistics only: the throughput fields
// and the parallel-stepper wait counters, which depend on host wall-clock
// time and scheduling, are zeroed. Two runs of the same workload and
// configuration produce identical Arch() values.
func (s Stats) Arch() Stats {
	s.WallSeconds, s.CyclesPerSec, s.InstrsPerSec = 0, 0, 0
	s.GateWaits, s.PacingWaits, s.GateSpins, s.GateYields, s.GateParks = 0, 0, 0, 0, 0
	return s
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// ExecPerCommit returns how many times the average committed instruction
// was executed (1.0 = no re-execution; the paper reports 3.3 for the VP
// write-back scheme on its workloads).
func (s Stats) ExecPerCommit() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Committed)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// MissRatio returns primary+merged cache misses per access.
func (s Stats) MissRatio() float64 {
	if s.CacheAccesses == 0 {
		return 0
	}
	return float64(s.CacheMisses+s.CacheMergedMiss) / float64(s.CacheAccesses)
}

// L2MissRatio returns second-level misses per L2 fetch (0 on the paper's
// infinite-L2 machine, which never fetches from an L2).
func (s Stats) L2MissRatio() float64 {
	if s.L2Fetches == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Fetches)
}

// AvgRegLifetime returns the mean number of cycles a physical register was
// held per produced value — the paper's §3.1 register-pressure metric.
// Late allocation exists to shrink exactly this number.
func (s Stats) AvgRegLifetime() float64 {
	return avgOver(s.RegLifetimeSum, s.RegsFreed)
}

// AvgROB returns the average reorder-buffer occupancy.
func (s Stats) AvgROB() float64 { return avgOver(s.ROBOccupancySum, s.Cycles) }

// AvgIQ returns the average instruction-queue occupancy.
func (s Stats) AvgIQ() float64 { return avgOver(s.IQOccupancySum, s.Cycles) }

// AvgIntRegs returns the average number of allocated integer registers.
func (s Stats) AvgIntRegs() float64 { return avgOver(s.IntRegsInUseSum, s.Cycles) }

// AvgFPRegs returns the average number of allocated FP registers.
func (s Stats) AvgFPRegs() float64 { return avgOver(s.FPRegsInUseSum, s.Cycles) }

func avgOver(sum, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// String renders a compact human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"cycles=%d committed=%d ipc=%.3f exec/commit=%.2f mispred=%.3f missratio=%.3f avgROB=%.1f avgIntRegs=%.1f avgFPRegs=%.1f reexec=%d violations=%d",
		s.Cycles, s.Committed, s.IPC(), s.ExecPerCommit(), s.MispredictRate(),
		s.MissRatio(), s.AvgROB(), s.AvgIntRegs(), s.AvgFPRegs(),
		s.Reexecutions, s.MemViolations)
}
