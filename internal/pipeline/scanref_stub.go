//go:build !scanoracle

package pipeline

// Without the scanoracle build tag the scan reference kernel (scanref.go)
// is not compiled. Sim.scan is only ever set by newScanSMT, which lives
// behind the tag, so these stubs are unreachable; they exist to keep the
// stage files' kernel dispatch building either way. CI runs the
// differential oracle tests with `go test -tags scanoracle`.

func (s *Sim) writebackScan(int64) error {
	panic("pipeline: scan oracle requires the scanoracle build tag")
}

func (s *Sim) executeScan(int64) error {
	panic("pipeline: scan oracle requires the scanoracle build tag")
}

func (s *Sim) issueScan(int64) error {
	panic("pipeline: scan oracle requires the scanoracle build tag")
}
