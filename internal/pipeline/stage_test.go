package pipeline

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
)

// safeBoundSrc delays one store's address behind a long multiply chain so
// the store sits in the queue with an unknown effective address for many
// cycles while younger instructions pile up behind it.
const safeBoundSrc = `
        .data
d:      .word 3
        .text
        ldi r1, d
        ldi r5, 8
        mul r6, r5, r31    ; 0, but takes 9 cycles
        mul r6, r6, r5     ; lengthen the address chain
        mul r6, r6, r5
        add r7, r1, r6     ; the store address, very late
        stq 0(r7), r5
        ldq r8, 0(r1)
        add r9, r8, r8
        add r10, r9, r9
        halt`

// stepSim builds a simulator over src and calls observe after every cycle
// until the trace drains (or maxCycles pass).
func stepSim(t *testing.T, cfg Config, src string, maxCycles int, observe func(s *Sim, th *thread)) *Sim {
	t.Helper()
	gen, err := emu.NewTraceGen(asm.MustAssemble("t", src))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < maxCycles && !sim.Done(); c++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		observe(sim, sim.threads[0])
	}
	if !sim.Done() {
		t.Fatalf("trace not drained after %d cycles", maxCycles)
	}
	return sim
}

// Under speculative disambiguation the no-squash bound must stop just
// before the oldest store whose address is still unknown — everything
// younger can be flushed by a violation — and reach the window tail once
// every store address is resolved.
func TestSafeBoundSpeculative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disambiguation = DisambSpeculative
	sawUnknown, sawResolved := false, false
	stepSim(t, cfg, safeBoundSrc, 10000, func(s *Sim, th *thread) {
		if th.robCount == 0 {
			return
		}
		tail := th.headInum + int64(th.robCount) - 1
		bound := s.safeBound(th)
		if bound > tail {
			t.Fatalf("safe bound %d beyond window tail %d", bound, tail)
		}
		unresolved := int64(-1)
		for i := 0; i < th.sqN; i++ {
			if sqe := th.sqAt(i); !sqe.eaKnown {
				unresolved = sqe.inum
				break
			}
		}
		if unresolved >= 0 {
			sawUnknown = true
			if want := unresolved - 1; bound != want {
				t.Fatalf("safe bound %d with unresolved store %d, want %d", bound, unresolved, want)
			}
		} else {
			sawResolved = true
			if bound != tail {
				t.Fatalf("safe bound %d with no unresolved store, want tail %d", bound, tail)
			}
		}
	})
	if !sawUnknown || !sawResolved {
		t.Fatalf("test never exercised both regimes (unknown=%v resolved=%v)", sawUnknown, sawResolved)
	}
}

// Under conservative disambiguation loads wait for older store addresses,
// no violation squash can occur, and the bound must always be the window
// tail — store-queue state is irrelevant.
func TestSafeBoundConservative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disambiguation = DisambConservative
	sawUnknownStore := false
	stepSim(t, cfg, safeBoundSrc, 10000, func(s *Sim, th *thread) {
		if th.robCount == 0 {
			return
		}
		for i := 0; i < th.sqN; i++ {
			if !th.sqAt(i).eaKnown {
				sawUnknownStore = true
			}
		}
		tail := th.headInum + int64(th.robCount) - 1
		if bound := s.safeBound(th); bound != tail {
			t.Fatalf("conservative safe bound %d, want tail %d", bound, tail)
		}
	})
	if !sawUnknownStore {
		t.Fatal("test never observed an unresolved store address")
	}
}

// missStormSrc produces a burst of stores to distinct cold lines: every
// store misses, the post-commit buffer backs up behind the cache, and
// commit must stall on it.
func missStormSrc(stores int) string {
	var b strings.Builder
	b.WriteString("ldi r1, 1048576\n")
	for i := 0; i < stores; i++ {
		b.WriteString("stq 0(r1), r31\naddi r1, r1, 32\n")
	}
	b.WriteString("halt")
	return b.String()
}

// A one-entry post-commit store buffer under a miss storm: commit must
// stall (CommitSBStalls), the buffer must never exceed its configured
// size, and the machine must still drain every instruction.
func TestCommitSBStallsTinyBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StoreBufferSize = 1
	peak := 0
	sim := stepSim(t, cfg, missStormSrc(32), 100000, func(s *Sim, th *thread) {
		if s.sbN > s.cfg.StoreBufferSize {
			t.Fatalf("store buffer occupancy %d exceeds size %d", s.sbN, s.cfg.StoreBufferSize)
		}
		if s.sbN > peak {
			peak = s.sbN
		}
	})
	st := sim.Stats()
	if st.CommitSBStalls == 0 {
		t.Error("expected commit stalls on a 1-entry store buffer under a miss storm")
	}
	if want := int64(1 + 2*32); st.Committed != want {
		t.Errorf("committed %d, want %d", st.Committed, want)
	}
	if st.Stores != 32 {
		t.Errorf("stores %d, want 32", st.Stores)
	}
	if peak != 1 {
		t.Errorf("peak store-buffer occupancy %d, want 1", peak)
	}
}

// The same storm with an ample buffer must not stall commit at all, and
// must finish in fewer cycles than the constrained machine.
func TestCommitSBStallsAmpleBuffer(t *testing.T) {
	run := func(size int) Stats {
		cfg := DefaultConfig()
		cfg.StoreBufferSize = size
		sim := stepSim(t, cfg, missStormSrc(32), 100000, func(*Sim, *thread) {})
		return sim.Stats()
	}
	tiny, ample := run(1), run(64)
	if ample.CommitSBStalls != 0 {
		t.Errorf("%d commit stalls with a 64-entry buffer, want 0", ample.CommitSBStalls)
	}
	if ample.Cycles >= tiny.Cycles {
		t.Errorf("ample buffer (%d cycles) should beat the 1-entry buffer (%d cycles)", ample.Cycles, tiny.Cycles)
	}
	if tiny.Committed != ample.Committed {
		t.Errorf("committed counts differ: %d vs %d", tiny.Committed, ample.Committed)
	}
}
