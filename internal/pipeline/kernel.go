// Event-indexed scheduling kernel.
//
// The original simulator scanned the whole reorder buffer in the issue,
// execute and write-back stages of every cycle, and again on every result
// broadcast — O(ROB) work per stage per cycle regardless of how many
// instructions could actually act. The kernel in this file indexes the
// schedule instead:
//
//   - readyQ: per-thread, inum-sorted queue of dispatched instructions
//     whose operands are ready. The issue stage walks only this queue.
//   - waiters: per-thread wakeup lists, one per (class, tag). A result
//     broadcast walks the tag's list instead of the reorder buffer.
//   - compWheel / aguWheel: timing wheels keyed by cycle. An instruction
//     finishing execution (or finishing address generation) is visited in
//     exactly that cycle, never polled.
//   - wbPend / aguPend: per-thread, inum-sorted pending lists fed by the
//     wheels, carrying over instructions that could not complete this
//     cycle (write-port structural stalls, blocked loads), so retry order
//     stays identical to the reference scan.
//
// Consistency across squash/re-fetch (which reuses instruction numbers),
// VP write-back allocation refusal (which sends a finished instruction
// back to the queue) and shared-pool SMT recovery is kept two ways:
// scheduler references carry the robEntry generation they were created
// under and are dropped on mismatch, and the renamers notify the kernel
// through core.WakeupSink when recovery reclaims a wakeup tag, so stale
// waiters never survive until the tag is reused.
package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// evRef names one scheduled robEntry occupancy.
type evRef struct {
	inum int64
	gen  uint32
}

// waiter is one registered wakeup subscription: instruction inum (under
// gen) waits for the list's tag to be broadcast into source slot.
type waiter struct {
	inum int64
	gen  uint32
	slot uint8 // 0 = Src1, 1 = Src2
}

// wevent is one timing-wheel event.
type wevent struct {
	due  int64
	inum int64
	tid  int32
	gen  uint32
}

const (
	// compWheelSlots bounds how far ahead a completion may be scheduled
	// without spilling to the overflow list. Cache misses (50-cycle
	// penalty plus bus queueing) fit comfortably; pathological latencies
	// (finite L2, long bus backlogs) take the overflow path.
	compWheelSlots = 512
	// aguWheelSlots covers effective-address latencies (Table 1: 1 cycle).
	aguWheelSlots = 64
)

// wheel is a timing wheel: events due within the horizon live in their
// cycle's slot; farther events wait in overflow and migrate into slots as
// the horizon advances. The simulator steps one cycle at a time, so every
// slot is drained exactly at its cycle.
type wheel struct {
	slots       [][]wevent
	mask        int64
	overflow    []wevent
	nextMigrate int64
}

func (w *wheel) init(slots int) {
	if slots&(slots-1) != 0 {
		panic("pipeline: wheel size must be a power of two")
	}
	w.slots = make([][]wevent, slots)
	w.mask = int64(slots - 1)
	// Carve every slot's initial capacity out of one flat arena: a
	// typical cycle schedules a handful of events per slot, and growing
	// hundreds of nil-backed slot lists individually through the
	// allocator was a measurable share of a run's allocations. Slots
	// that outgrow their window reallocate individually and keep the
	// larger capacity (drain returns evs[:0]); the three-index slice
	// keeps such growth from bleeding into the next slot's window.
	const perSlot = 4
	arena := make([]wevent, slots*perSlot)
	for i := range w.slots {
		w.slots[i] = arena[i*perSlot : i*perSlot : (i+1)*perSlot]
	}
}

// schedule files ev for cycle due and returns the cycle it will actually
// fire. Events must be scheduled for the future; a due at or before now
// lands in the next cycle, matching the reference scan (which picks work
// up at the first stage pass after the deadline passes). Callers must
// store the returned due back into the robEntry deadline field they
// scheduled from — delivery validates the event against that field, so a
// coerced deadline the entry did not carry would be dropped as stale.
func (w *wheel) schedule(now int64, ev wevent) int64 {
	if ev.due <= now {
		ev.due = now + 1
	}
	if ev.due-now <= w.mask {
		slot := ev.due & w.mask
		//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
		w.slots[slot] = append(w.slots[slot], ev)
	} else {
		//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
		w.overflow = append(w.overflow, ev)
	}
	return ev.due
}

// emptyAt reports whether drain(now) would deliver nothing. The slot for
// now holds only events due exactly at now — every slot is drained at its
// cycle, and schedule files an event into a slot only when its deadline
// is within the horizon — so an empty slot is exact; a non-empty overflow
// list is answered conservatively (its events may migrate anywhere).
//
//vpr:hotpath
func (w *wheel) emptyAt(now int64) bool {
	return len(w.overflow) == 0 && len(w.slots[now&w.mask]) == 0
}

// drain delivers every event due at now. Called once per cycle.
func (w *wheel) drain(now int64, deliver func(ev wevent)) {
	if len(w.overflow) > 0 && now >= w.nextMigrate {
		kept := w.overflow[:0]
		for _, ev := range w.overflow {
			if ev.due-now <= w.mask {
				//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
				w.slots[ev.due&w.mask] = append(w.slots[ev.due&w.mask], ev)
			} else {
				//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
				kept = append(kept, ev)
			}
		}
		w.overflow = kept
		w.nextMigrate = now + (w.mask+1)/2
	}
	slot := now & w.mask
	evs := w.slots[slot]
	if len(evs) == 0 {
		return
	}
	w.slots[slot] = evs[:0]
	for _, ev := range evs {
		deliver(ev)
	}
}

// poolState tracks one functional-unit pool as a free count plus a release
// wheel, replacing the reference kernel's linear scan over per-unit
// busy-until times: availability is a counter read, and units scheduled to
// free at cycle c return to the pool at c's tick.
type poolState struct {
	free int
	rel  [128]int16 // releases indexed by cycle & mask; > max occupancy (div: 67)
}

// tick returns units whose occupancy ends this cycle. Called once per
// cycle per pool (the simulator never skips cycles).
func (p *poolState) tick(now int64) {
	slot := &p.rel[now&int64(len(p.rel)-1)]
	if *slot != 0 {
		p.free += int(*slot)
		*slot = 0
	}
}

// take occupies one unit until cycle until.
func (p *poolState) take(now, until int64) {
	if until-now >= int64(len(p.rel)) {
		//vpr:allowalloc panic message: an invariant violation aborts the run
		panic(fmt.Sprintf("pipeline: functional-unit occupancy %d exceeds the release-wheel horizon %d",
			until-now, len(p.rel)))
	}
	p.free--
	p.rel[until&int64(len(p.rel)-1)]++
}

// tickPools advances every pool's release wheel to now.
func (s *Sim) tickPools(now int64) {
	for i := range s.pools {
		s.pools[i].tick(now)
	}
}

// initThreadEv sizes the thread's scheduler state. The wakeup index is
// sized by the renamer's tag namespace (core.Renamer.TagSpace) and wired
// to recovery through the wakeup sink.
func (s *Sim) initThreadEv(th *thread) {
	for f := 0; f < 2; f++ {
		tags := th.ren.TagSpace(classOfIdx(f))
		th.waiters[f] = make([][]waiter, tags)
		// Same flat-arena trick as wheel.init: most tags collect only a
		// couple of waiters, and first-touch growth of every per-tag nil
		// slice was the hot loop's largest allocation source. Tags that
		// outgrow the window reallocate individually and keep the
		// capacity (TagSquashed resets to [:0]).
		const perTag = 4
		arena := make([]waiter, tags*perTag)
		for t := range th.waiters[f] {
			th.waiters[f][t] = arena[t*perTag : t*perTag : (t+1)*perTag]
		}
	}
	th.readyQ = make([]evRef, 0, 64)
	th.wbPend = make([]evRef, 0, 64)
	th.aguPend = make([]evRef, 0, 64)
	th.ren.SetWakeupSink(&threadSink{th: th})
}

// threadSink adapts core.WakeupSink notifications onto one thread's
// wakeup index.
type threadSink struct{ th *thread }

// TagSquashed implements core.WakeupSink: recovery reclaimed a destination
// tag, so waiters filed under it are dead (they are younger than the
// squashed producer and were squashed with it) and must not be woken by a
// later reuse of the tag.
//
//vpr:hotpath
func (k *threadSink) TagSquashed(class isa.RegClass, tag int) {
	f := classIdxOf(class)
	k.th.waiters[f][tag] = k.th.waiters[f][tag][:0]
}

// classOfIdx is the inverse of classIdxOf.
func classOfIdx(f int) isa.RegClass {
	if f == 0 {
		return isa.RegInt
	}
	return isa.RegFP
}

// insertRef files r into the inum-sorted list. Scheduler lists are short
// (bounded by instructions acting in one cycle plus structural carryover),
// so an insertion memmove beats a heap.
func insertRef(list []evRef, r evRef) []evRef {
	n := len(list)
	//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
	if n == 0 || list[n-1].inum < r.inum {
		//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
		return append(list, r)
	}
	i := searchRefs(list, r.inum)
	//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
	list = append(list, evRef{})
	copy(list[i+1:], list[i:])
	list[i] = r
	return list
}

// searchRefs is sort.Search(len(list), func(k) {list[k].inum >= inum})
// open-coded: the closure a sort.Search call captures escapes and costs
// one allocation per wakeup event, which hotpathalloc rejects.
func searchRefs(list []evRef, inum int64) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].inum < inum {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// removeRefAt deletes index i preserving order.
func removeRefAt(list []evRef, i int) []evRef {
	copy(list[i:], list[i+1:])
	return list[:len(list)-1]
}

// purgeRefsFrom drops every reference to instructions at or after inum —
// the squash range is always a window suffix.
func purgeRefsFrom(list []evRef, inum int64) []evRef {
	return list[:searchRefs(list, inum)]
}

// enqueueReady files a dispatched instruction whose operands are ready
// into the issue stage's queue.
func (s *Sim) enqueueReady(th *thread, e *robEntry) {
	e.inReadyQ = true
	th.readyQ = insertRef(th.readyQ, evRef{inum: e.inum, gen: e.gen})
}

// registerWaiters subscribes the entry's not-yet-ready operands to their
// tags' wakeup lists. Called at dispatch, the only point where an operand
// can be (or become) not-ready: readiness is monotonic within one
// generation — squash+re-fetch starts a new generation, and VP write-back
// refusal re-queues the instruction with operands still ready.
func (s *Sim) registerWaiters(th *thread, e *robEntry) {
	if op := e.ren.Src1; !e.src1Ready && op.Present && !op.Zero {
		f := classIdxOf(op.Class)
		//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
		th.waiters[f][op.Tag] = append(th.waiters[f][op.Tag], waiter{inum: e.inum, gen: e.gen, slot: 0})
	}
	if op := e.ren.Src2; !e.src2Ready && op.Present && !op.Zero {
		f := classIdxOf(op.Class)
		//vpr:allowalloc amortized: scheduler lists retain capacity across cycles
		th.waiters[f][op.Tag] = append(th.waiters[f][op.Tag], waiter{inum: e.inum, gen: e.gen, slot: 1})
	}
}

// purgeThreadEv drops scheduler references to squashed instructions
// (everything at or after inum). Wheel events cannot be purged in place;
// they are dropped on delivery by their stale generation. Waiter lists are
// purged by the renamer's TagSquashed notifications as the squash walks
// the window.
func (s *Sim) purgeThreadEv(th *thread, inum int64) {
	th.readyQ = purgeRefsFrom(th.readyQ, inum)
	th.wbPend = purgeRefsFrom(th.wbPend, inum)
	th.aguPend = purgeRefsFrom(th.aguPend, inum)
}

// checkEvInvariants cross-checks the scheduler indexes against a full
// reorder-buffer scan (Debug mode): every issueable instruction must be in
// the ready queue, every completable store in the write-back pending list,
// and the queues must be inum-sorted.
//
//vpr:coldpath
func (s *Sim) checkEvInvariants(th *thread) error {
	for _, q := range [][]evRef{th.readyQ, th.wbPend, th.aguPend} {
		for i := 1; i < len(q); i++ {
			if q[i-1].inum >= q[i].inum {
				return fmt.Errorf("scheduler queue not inum-sorted at %d", q[i].inum)
			}
		}
	}
	for i := 0; i < th.robCount; i++ {
		e := th.at(i)
		switch {
		case e.st == stWaiting && e.ready() && !e.inReadyQ:
			return fmt.Errorf("instruction %d ready but not in the ready queue", e.inum)
		case e.st == stExecuting && e.isStore && e.src2Ready:
			if sqe := th.sqEntry(e.inum); sqe != nil && sqe.eaKnown && !inRefs(th.wbPend, e) {
				return fmt.Errorf("store %d completable but not pending write-back", e.inum)
			}
		}
	}
	return nil
}

func inRefs(list []evRef, e *robEntry) bool {
	i := sort.Search(len(list), func(k int) bool { return list[k].inum >= e.inum })
	return i < len(list) && list[i].inum == e.inum && list[i].gen == e.gen
}

func (s *Sim) nextGen() uint32 {
	s.genCtr++
	return s.genCtr
}
