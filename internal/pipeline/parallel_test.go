package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/synth"
	"repro/internal/trace"
)

// randSynthParams draws a randomized synthetic-workload parameterization:
// mixes, dependence distances, miss ratios and branch behaviour all vary,
// so kernels and steppers are compared across very different machine
// dynamics (miss storms, re-execution pressure, violation replays, FP
// saturation). Shared with the scanoracle differential suite.
func randSynthParams(rng *rand.Rand) synth.Params {
	p := synth.Defaults()
	p.Seed = rng.Int63()
	p.FracLoad = 0.1 + 0.3*rng.Float64()
	p.FracStore = 0.05 + 0.2*rng.Float64()
	p.FracBranch = 0.05 + 0.15*rng.Float64()
	p.FracFPALU = 0.3 * rng.Float64()
	p.FracFPMul = 0.15 * rng.Float64()
	p.FracFPDiv = 0.05 * rng.Float64()
	p.FracIntMul = 0.1 * rng.Float64()
	p.FracIntDiv = 0.03 * rng.Float64()
	p.FracFPLoads = rng.Float64()
	p.MeanDepDist = 1 + 10*rng.Float64()
	p.MissRatio = 0.5 * rng.Float64()
	p.BiasedBranchFrac = rng.Float64()
	return p
}

// parStepModes are the non-oracle stepping modes every differential case
// is checked under. StepSkew(64) matters beyond being the bench default:
// a window at least quietPublishStride wide is the regime where completed
// cycles are published in batches, so it pins the batched-publish path
// the narrow windows never take.
var parStepModes = []StepMode{StepParallel, StepSkew(1), StepSkew(8), StepSkew(64), StepSkew(-1)}

// mcResult is everything the stepper differential pins: aggregate and
// per-core architectural statistics plus each core's in-order commit
// stream (cores are single-thread, so the inum sequence is the stream).
type mcResult struct {
	agg     Stats
	perCore []Stats
	streams [][]int64
}

// runMulticoreMode builds and runs one Multicore under the given step
// mode, capturing commit streams. Each core's onCommit hook appends only
// to that core's slice, so the capture is race-free under the parallel
// steppers.
func runMulticoreMode(t *testing.T, cfg MulticoreConfig, step StepMode, mkGens func() []trace.Generator, max int64) mcResult {
	t.Helper()
	cfg.Step = step
	mc, err := NewMulticore(cfg, mkGens())
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]int64, mc.Cores())
	for i := 0; i < mc.Cores(); i++ {
		i := i
		mc.Core(i).onCommit = func(_ int, inum int64) {
			streams[i] = append(streams[i], inum)
		}
	}
	agg, err := mc.Run(max)
	if err != nil {
		t.Fatalf("step=%q: %v", step, err)
	}
	if max <= 0 && !mc.Done() {
		t.Fatalf("step=%q: multicore not drained", step)
	}
	res := mcResult{agg: agg.Arch(), streams: streams}
	for i := 0; i < mc.Cores(); i++ {
		res.perCore = append(res.perCore, mc.CoreStats(i).Arch())
	}
	return res
}

// diffSteppers runs one configuration under the lockstep oracle and every
// parallel mode and requires bit-identical aggregate statistics, per-core
// statistics and per-core commit streams.
func diffSteppers(t *testing.T, name string, cfg MulticoreConfig, mkGens func() []trace.Generator, max int64) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		want := runMulticoreMode(t, cfg, StepLockstep, mkGens, max)
		for _, mode := range parStepModes {
			got := runMulticoreMode(t, cfg, mode, mkGens, max)
			if got.agg != want.agg {
				t.Errorf("step=%q aggregate stats diverge:\n got  %+v\n want %+v", mode, got.agg, want.agg)
			}
			for i := range want.perCore {
				if got.perCore[i] != want.perCore[i] {
					t.Errorf("step=%q core %d stats diverge:\n got  %+v\n want %+v",
						mode, i, got.perCore[i], want.perCore[i])
				}
			}
			for i := range want.streams {
				if len(got.streams[i]) != len(want.streams[i]) {
					t.Fatalf("step=%q core %d commit stream length %d, want %d",
						mode, i, len(got.streams[i]), len(want.streams[i]))
				}
				for k := range want.streams[i] {
					if got.streams[i][k] != want.streams[i][k] {
						t.Fatalf("step=%q core %d commit stream diverges at %d: %d vs %d",
							mode, i, k, got.streams[i][k], want.streams[i][k])
					}
				}
			}
		}
	})
}

// synthGens builds one independent synthetic generator per core; shared
// seeds (identical streams on every core) maximize line sharing when the
// address space is shared.
func synthGens(paramsList []synth.Params, instr int64) func() []trace.Generator {
	return func() []trace.Generator {
		gens := make([]trace.Generator, len(paramsList))
		for i, p := range paramsList {
			gens[i] = trace.Take(synth.New(p), instr)
		}
		return gens
	}
}

// TestParallelStepperDifferential is the tentpole's acceptance pin:
// randomized synthetic workloads × schemes × coherence on/off ×
// shared/namespaced address spaces × core counts, each run under every
// parallel mode and compared bit-for-bit against the lockstep oracle.
func TestParallelStepperDifferential(t *testing.T) {
	type variant struct {
		name      string
		l2        bool
		sharedAdr bool
		coherent  bool
	}
	variants := []variant{
		{name: "privL1", l2: false},
		{name: "l2", l2: true},
		{name: "l2-shared", l2: true, sharedAdr: true},
		{name: "l2-coh", l2: true, coherent: true},
		{name: "l2-shared-coh", l2: true, sharedAdr: true, coherent: true},
	}
	schemes := []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue}
	coreCounts := []int{2, 3, 5, 8}
	instr := int64(4000)
	seeds := []int64{101, 202, 303}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for si, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		for vi, v := range variants {
			cores := coreCounts[(si+vi)%len(coreCounts)]
			cfg := MulticoreConfig{
				Cores:              cores,
				Core:               DefaultConfig(),
				SharedAddressSpace: v.sharedAdr,
				Coherence:          v.coherent,
			}
			cfg.Core.Scheme = schemes[(si+vi)%len(schemes)]
			cfg.Core.ValueCheck = false
			if v.l2 {
				cfg.L2 = mem.DefaultL2Config()
			}
			paramsList := make([]synth.Params, cores)
			shared := rng.Intn(2) == 0
			first := randSynthParams(rng)
			for i := range paramsList {
				if v.sharedAdr && shared {
					paramsList[i] = first // identical streams: maximal sharing
				} else {
					paramsList[i] = randSynthParams(rng)
				}
			}
			name := fmt.Sprintf("seed%d/%s-%dc-%s", seed, v.name, cores, cfg.Core.Scheme)
			diffSteppers(t, name, cfg, synthGens(paramsList, instr), 0)
		}
	}
}

// TestParallelStepperGOMAXPROCS repeats a coherent shared-address
// differential with real host parallelism, so goroutines genuinely
// interleave instead of cooperatively yielding on one P.
func TestParallelStepperGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(99))
	p := randSynthParams(rng)
	p.FracStore = 0.25 // plenty of upgrade/invalidation traffic
	paramsList := []synth.Params{p, p, p, p}
	cfg := MulticoreConfig{
		Cores: 4, Core: DefaultConfig(), L2: mem.DefaultL2Config(),
		SharedAddressSpace: true, Coherence: true,
	}
	cfg.Core.ValueCheck = false
	diffSteppers(t, "gomaxprocs4", cfg, synthGens(paramsList, 5000), 0)
}

// TestParallelStepperCommitCap pins the maxCommitsPerCore path: capped
// parallel runs stop at the identical instruction boundary the oracle
// stops at.
func TestParallelStepperCommitCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	paramsList := []synth.Params{randSynthParams(rng), randSynthParams(rng), randSynthParams(rng)}
	cfg := MulticoreConfig{Cores: 3, Core: DefaultConfig(), L2: mem.DefaultL2Config()}
	cfg.Core.ValueCheck = false
	diffSteppers(t, "cap2500", cfg, synthGens(paramsList, 10_000), 2500)
}

// TestParallelStepperSingleCore: one core under the parallel stepper is
// the degenerate gate (no other cores to wait on) and must still match.
func TestParallelStepperSingleCore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	paramsList := []synth.Params{randSynthParams(rng)}
	cfg := MulticoreConfig{Cores: 1, Core: DefaultConfig(), L2: mem.DefaultL2Config(), Coherence: true}
	cfg.Core.ValueCheck = false
	diffSteppers(t, "1core", cfg, synthGens(paramsList, 6000), 0)
}

// --- skew-window safety edges -----------------------------------------------

// skewSharingConfig is a 2-core coherent shared-address machine with an
// asymmetric pair of workloads: core 0 is store-heavy and fast, core 1
// FP-divide-bound and slow, so under a skew window the fast core actually
// runs ahead and coherence traffic crosses the window edge.
func skewSharingConfig() (MulticoreConfig, func() []trace.Generator) {
	cfg := MulticoreConfig{
		Cores: 2, Core: DefaultConfig(), L2: mem.DefaultL2Config(),
		SharedAddressSpace: true, Coherence: true,
	}
	cfg.Core.ValueCheck = false
	fast := synth.Defaults()
	fast.Seed = 41
	fast.FracStore = 0.3
	fast.FracLoad = 0.3
	slow := fast // same address stream, different mix speed
	slow.FracFPDiv = 0.2
	slow.FracFPALU = 0.2
	return cfg, synthGens([]synth.Params{fast, slow}, 6000)
}

// TestSkewEdgeInvalidation: a core sitting at the window edge receives
// invalidations from the other core's stores. The differential pins that
// delivery happens at the identical cycle the oracle delivers it, and the
// run must actually exercise the traffic it claims to test.
func TestSkewEdgeInvalidation(t *testing.T) {
	cfg, mkGens := skewSharingConfig()
	want := runMulticoreMode(t, cfg, StepLockstep, mkGens, 0)
	for _, w := range []int64{0, 1, 4, 64} {
		got := runMulticoreMode(t, cfg, StepSkew(w), mkGens, 0)
		if got.agg != want.agg {
			t.Errorf("skew:%d diverges on the invalidation-at-window-edge run:\n got  %+v\n want %+v",
				w, got.agg, want.agg)
		}
	}
	cfg.Step = StepSkew(4)
	mc, err := NewMulticore(cfg, mkGens())
	if err != nil {
		t.Fatal(err)
	}
	st, err := mc.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Invalidations == 0 {
		t.Error("skew sharing run drove no invalidations; the edge case is not exercised")
	}
	if st.L2Upgrades == 0 {
		t.Error("skew sharing run drove no ownership upgrades; the upgrade-vs-reader race is not exercised")
	}
}

// TestSkewUpgradeRacesReader: both cores store into the same lines, so
// ownership upgrades race skewed readers and each other; every window
// must resolve the race exactly as the oracle does.
func TestSkewUpgradeRacesReader(t *testing.T) {
	cfg := MulticoreConfig{
		Cores: 2, Core: DefaultConfig(), L2: mem.DefaultL2Config(),
		SharedAddressSpace: true, Coherence: true,
	}
	cfg.Core.ValueCheck = false
	p := synth.Defaults()
	p.Seed = 53
	p.FracStore = 0.35
	p.FracLoad = 0.25
	diffSteppers(t, "storestorm", cfg, synthGens([]synth.Params{p, p}, 6000), 0)
}

// TestSkewWindowLargerThanRun: a window far beyond the run length (and
// the unbounded spelling) degenerates to free-running cores whose shared
// interactions are still gated — results must not move.
func TestSkewWindowLargerThanRun(t *testing.T) {
	cfg, mkGens := skewSharingConfig()
	want := runMulticoreMode(t, cfg, StepLockstep, mkGens, 0)
	for _, mode := range []StepMode{StepSkew(1 << 40), StepSkew(-1), StepMode("skew:inf")} {
		got := runMulticoreMode(t, cfg, mode, mkGens, 0)
		if got.agg != want.agg {
			t.Errorf("step=%q diverges with window larger than the run:\n got  %+v\n want %+v",
				mode, got.agg, want.agg)
		}
	}
}

// --- mode plumbing ----------------------------------------------------------

// TestParseStepMode pins the accepted spellings and the rejections.
func TestParseStepMode(t *testing.T) {
	good := map[string]stepPlan{
		"":         {},
		"lockstep": {},
		"parallel": {concurrent: true},
		"skew:0":   {concurrent: true, window: 0},
		"skew:12":  {concurrent: true, window: 12},
		"skew:inf": {concurrent: true, window: -1},
	}
	for s, want := range good {
		m, err := ParseStepMode(s)
		if err != nil {
			t.Errorf("ParseStepMode(%q): %v", s, err)
			continue
		}
		if got, _ := m.plan(); got != want {
			t.Errorf("ParseStepMode(%q) plan %+v, want %+v", s, got, want)
		}
	}
	for _, s := range []string{"skew:", "skew:-3", "skew:w", "turbo", "Lockstep", "skew:1x"} {
		if _, err := ParseStepMode(s); err == nil {
			t.Errorf("ParseStepMode(%q) accepted, want error", s)
		}
	}
}

// TestParallelRejectsProbe: probes are one shared callback across cores
// and only the serial oracle may drive them.
func TestParallelRejectsProbe(t *testing.T) {
	cfg := MulticoreConfig{Cores: 2, Core: DefaultConfig(), L2: mem.DefaultL2Config(), Step: StepParallel}
	cfg.Core.Policies.Probe = BaseProbe{}
	if err := cfg.Validate(); err == nil {
		t.Error("parallel stepping with a probe must be rejected")
	}
	cfg.Step = StepLockstep
	if err := cfg.Validate(); err != nil {
		t.Errorf("lockstep with a probe must stay valid: %v", err)
	}
	cfg.Step = StepMode("warp")
	cfg.Core.Policies.Probe = nil
	if err := cfg.Validate(); err == nil {
		t.Error("unknown step mode must be rejected")
	}
}

// TestMulticoreLiveTracking: Done() is O(1) after a drain and the serial
// loop never steps a drained core again (the live list shrinks).
func TestMulticoreLiveTracking(t *testing.T) {
	cfg := MulticoreConfig{Cores: 2, Core: DefaultConfig(), L2: mem.DefaultL2Config()}
	cfg.Core.ValueCheck = false
	short := synth.Defaults()
	short.Seed = 3
	long := synth.Defaults()
	long.Seed = 4
	mc, err := NewMulticore(cfg, []trace.Generator{
		trace.Take(synth.New(short), 500),
		trace.Take(synth.New(long), 8000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Done() {
		t.Fatal("fresh multicore reports done")
	}
	if _, err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if !mc.Done() {
		t.Fatal("drained multicore not done")
	}
	if mc.liveCount != 0 {
		t.Errorf("liveCount %d after drain, want 0", mc.liveCount)
	}
	c0, c1 := mc.Core(0).cycle, mc.Core(1).cycle
	if c0 >= c1 {
		t.Errorf("short-trace core stepped to cycle %d, long core %d: drained core kept stepping", c0, c1)
	}
}

// TestGateSlotLayout pins the false-sharing fix: a gateSlot is exactly
// gateSlotBytes (a multiple of any plausible cache-line size), so
// consecutive slots in the runner's slice can never land on one line,
// and the hot fields sit in the slot's first bytes — on a single line
// for the owning core's publishes at any base alignment.
func TestGateSlotLayout(t *testing.T) {
	if got := unsafe.Sizeof(gateSlot{}); got != gateSlotBytes {
		t.Fatalf("gateSlot is %d bytes, want %d", got, gateSlotBytes)
	}
	if gateSlotBytes%128 != 0 {
		t.Fatalf("gateSlotBytes %d is not a multiple of 128", gateSlotBytes)
	}
	if off := unsafe.Offsetof(gateSlot{}.sleepers); off+4 > 64 {
		t.Fatalf("hot gateSlot fields span %d bytes — past one 64-byte line", off+4)
	}
}

// TestParallelWaitCounters: the wait-ladder counters surface through
// Aggregate on parallel runs, stay zero under the lockstep oracle, and —
// being host-scheduling noise, not architecture — are erased by Arch(),
// which is what keeps the differential pins meaningful with counters
// enabled.
func TestParallelWaitCounters(t *testing.T) {
	run := func(step StepMode) Stats {
		cfg := MulticoreConfig{Cores: 2, Core: DefaultConfig(), L2: mem.DefaultL2Config(),
			SharedAddressSpace: true, Coherence: true, Step: step}
		cfg.Core.ValueCheck = false
		p, ok := synth.ByName("sharing")
		if !ok {
			t.Fatal("sharing preset missing")
		}
		p.Seed = 7
		mc, err := NewMulticore(cfg, []trace.Generator{
			trace.Take(synth.New(p), 4000),
			trace.Take(synth.New(p), 4000),
		})
		if err != nil {
			t.Fatal(err)
		}
		agg, err := mc.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	lock := run(StepLockstep)
	if n := lock.GateWaits + lock.PacingWaits + lock.GateSpins + lock.GateYields + lock.GateParks; n != 0 {
		t.Errorf("lockstep run recorded %d wait-ladder events, want 0", n)
	}
	par := run(StepParallel)
	if par.GateWaits == 0 {
		t.Error("parallel run on a sharing workload recorded no gate waits")
	}
	if par.PacingWaits == 0 {
		t.Error("parallel run with a zero-width window recorded no pacing waits")
	}
	if par.GateSpins+par.GateYields+par.GateParks == 0 {
		t.Error("gate waits occurred but no ladder activity was recorded")
	}
	arch := par.Arch()
	if n := arch.GateWaits + arch.PacingWaits + arch.GateSpins + arch.GateYields + arch.GateParks; n != 0 {
		t.Errorf("Arch() kept %d wait-ladder events, want 0 (they are host noise)", n)
	}
	if arch != lock.Arch() {
		t.Errorf("parallel Arch() diverges from lockstep:\n got  %+v\n want %+v", arch, lock.Arch())
	}
}

// TestParkWake exercises the park-rung protocol directly: a parker
// registered on a slot is woken by the owner's publish, and by fail().
// The register-then-recheck / publish-then-check pairing must not lose
// either wakeup.
func TestParkWake(t *testing.T) {
	newRun := func() *parRun {
		r := &parRun{slots: make([]gateSlot, 1), parkers: make([]parker, 1)}
		r.slots[0].memCycle.Store(-1)
		r.slots[0].completed.Store(-1)
		r.parkers[0].cond.L = &r.parkers[0].mu
		return r
	}
	t.Run("publish", func(t *testing.T) {
		r := newRun()
		done := make(chan struct{})
		go func() {
			r.park(0, 5, true)
			close(done)
		}()
		var cs coreState
		// Publish progressively; the waiter must survive wakeups that do
		// not yet satisfy it and return once one does.
		for v := int64(0); v <= 5; v++ {
			r.publishMem(0, v, &cs)
			runtime.Gosched()
		}
		<-done
		if got := r.slots[0].sleepers.Load(); got != 0 {
			t.Errorf("sleepers %d after wake, want 0", got)
		}
	})
	t.Run("stop", func(t *testing.T) {
		r := newRun()
		done := make(chan struct{})
		go func() {
			r.park(0, 5, false)
			close(done)
		}()
		for r.slots[0].sleepers.Load() == 0 {
			runtime.Gosched()
		}
		r.fail(context.Canceled)
		<-done
		if r.slots[0].completed.Load() >= 5 {
			t.Error("park returned satisfied, want stopped")
		}
	})
}
