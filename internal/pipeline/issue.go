package pipeline

import "repro/internal/core"

// issueStage selects ready instructions for execution, threads in rotation
// order, bounded by issue width, functional units, register-file read
// ports and — under VP issue allocation — the renamer's willingness to
// hand out a register (a refusal leaves the instruction queued and counts
// an issue block, every cycle, exactly like the reference scan retries
// it). Selection within a thread is oldest-first by default; a configured
// IssueSelect heuristic reorders the attempts under the same budgets.
//
// Event kernel: only the ready queue is walked; an instruction enters it
// at dispatch (operands already ready) or when the last missing operand is
// broadcast, and leaves when it issues or is squashed.
func (s *Sim) issueStage(now int64) error {
	if s.scan {
		return s.issueScan(now)
	}
	s.tickPools(now)
	if s.issueSel != nil {
		return s.issueRanked(now)
	}
	budget := s.cfg.IssueWidth
	rfReads := [2]int{s.cfg.RFReadPorts, s.cfg.RFReadPorts}
	for _, th := range s.threadOrder() {
		q := th.readyQ
		kept := q[:0]
		for qi := 0; qi < len(q); qi++ {
			ref := q[qi]
			e := th.entryByInum(ref.inum)
			if e == nil || e.gen != ref.gen || e.st != stWaiting || !e.ready() {
				continue // stale reference; drop
			}
			issued, err := s.tryIssueEntry(th, e, now, &budget, &rfReads)
			if err != nil {
				return err
			}
			if !issued {
				//vpr:allowalloc amortized: stage buffers retain capacity across cycles
				kept = append(kept, ref)
			}
		}
		th.readyQ = kept
	}
	return nil
}

// issueRanked is the issue stage under a configured IssueSelect: per
// thread the live ready-queue entries become candidates (oldest-first),
// the heuristic reorders them, and issue is attempted in that order under
// the same budgets the default path charges.
func (s *Sim) issueRanked(now int64) error {
	budget := s.cfg.IssueWidth
	rfReads := [2]int{s.cfg.RFReadPorts, s.cfg.RFReadPorts}
	for _, th := range s.threadOrder() {
		cands := s.issueCands[:0]
		for _, ref := range th.readyQ {
			e := th.entryByInum(ref.inum)
			if e == nil || e.gen != ref.gen || e.st != stWaiting || !e.ready() {
				continue // stale reference; dropped at compaction below
			}
			//vpr:allowalloc amortized: stage buffers retain capacity across cycles
			cands = append(cands, IssueCandidate{
				Inum:    ref.inum,
				Latency: e.rec.Inst.Op.Info().Latency,
				IsLoad:  e.isLoad,
				IsStore: e.isStore,
			})
		}
		s.issueCands = cands
		if len(cands) > 1 {
			s.issueSel.Rank(now, cands)
		}
		for _, c := range cands {
			e := th.entryByInum(c.Inum)
			if e == nil || e.st != stWaiting || !e.ready() || !e.inReadyQ {
				continue // defensive against a duplicating Rank
			}
			if _, err := s.tryIssueEntry(th, e, now, &budget, &rfReads); err != nil {
				return err
			}
		}
		// Compact the queue: drop issued and stale references, keeping
		// the survivors in inum order.
		kept := th.readyQ[:0]
		for _, ref := range th.readyQ {
			e := th.entryByInum(ref.inum)
			if e == nil || e.gen != ref.gen || !e.inReadyQ {
				continue
			}
			//vpr:allowalloc amortized: stage buffers retain capacity across cycles
			kept = append(kept, ref)
		}
		th.readyQ = kept
	}
	return nil
}

// tryIssueEntry attempts to issue one ready instruction under the shared
// cycle budgets. It reports whether the instruction issued; a false return
// with nil error means a structural or allocation block — the instruction
// stays queued and retries.
func (s *Sim) tryIssueEntry(th *thread, e *robEntry, now int64, budget *int, rfReads *[2]int) (bool, error) {
	if *budget == 0 {
		return false, nil
	}
	info := e.rec.Inst.Op.Info()
	pool := s.kindToPool[info.Kind]
	if s.pools[pool].free == 0 {
		return false, nil
	}
	needReads := readPortNeeds(e)
	if rfReads[0] < needReads[0] || rfReads[1] < needReads[1] {
		return false, nil
	}
	if !s.allocAtIssue(th, e, now) {
		return false, nil // VP issue allocation refused; stays in the queue
	}
	if err := s.readIssueOperands(th, e); err != nil {
		return false, err
	}
	th.ren.NoteRead(e.inum, true, !e.isStore)

	rfReads[0] -= needReads[0]
	rfReads[1] -= needReads[1]
	if info.Pipelined {
		s.pools[pool].take(now, now+1)
	} else {
		s.pools[pool].take(now, now+int64(info.Latency))
	}
	*budget--
	e.executions++
	s.stats.Issued++
	if s.probe != nil {
		s.probe.Issued(now, th.id, e.inum)
	}
	e.st = stExecuting
	e.inReadyQ = false
	if e.isLoad || e.isStore {
		// Effective-address unit latency, then the memory pipeline.
		e.completeAt = timeUnset
		e.aguDoneAt = s.aguWheel.schedule(now,
			wevent{due: now + int64(info.Latency), inum: e.inum, tid: int32(th.id), gen: e.gen})
	} else {
		e.completeAt = s.compWheel.schedule(now,
			wevent{due: now + int64(info.Latency), inum: e.inum, tid: int32(th.id), gen: e.gen})
	}
	if s.cfg.Scheme != core.SchemeVPWriteback {
		s.leaveIQ(e)
	}
	return true, nil
}

// allocAtIssue consults the renamer's issue-time allocation, gated by the
// shared pool's free events: a VP-issue refusal can only flip to success
// after a register of the destination's class returns to the pool
// (commit, squash or early release in any member context — protection
// promotions and reservation changes are release-coupled, see the
// renamer's §3.3 machinery), and all releases of a cycle happen in stages
// that run before issue. So a blocked instruction skips the consult (the
// window lookup and reservation check) until the pool's free listener has
// fired since the refusal, counting each skipped cycle as the issue block
// the consult would have recorded — IssueBlocks accounting stays
// byte-identical to the consult-every-cycle reference.
func (s *Sim) allocAtIssue(th *thread, e *robEntry, now int64) bool {
	if e.allocBlockedAt != timeUnset {
		if s.lastRegFree[classIdxOf(e.ren.Dst.Class)] <= e.allocBlockedAt {
			s.deferredIssueBlocks++
			if s.probe != nil {
				s.probe.AllocRefused(now, th.id, e.inum, true)
			}
			return false
		}
		e.allocBlockedAt = timeUnset
	}
	if !th.ren.AllocateAtIssue(e.inum) {
		e.allocBlockedAt = now
		if s.probe != nil {
			s.probe.AllocRefused(now, th.id, e.inum, true)
		}
		return false
	}
	return true
}

// readPortNeeds counts register-file reads per class performed at issue.
// Store data is read later (at completion) and is not charged a port — a
// documented simplification.
func readPortNeeds(e *robEntry) [2]int {
	var n [2]int
	if op := e.ren.Src1; op.Present && !op.Zero {
		n[classIdxOf(op.Class)]++
	}
	if op := e.ren.Src2; op.Present && !op.Zero && !e.isStore {
		n[classIdxOf(op.Class)]++
	}
	return n
}

// readIssueOperands performs the golden-model check on the operands read
// at issue time.
func (s *Sim) readIssueOperands(th *thread, e *robEntry) error {
	if err := s.checkOperand(th, e, e.ren.Src1, e.rec.Src1Val); err != nil {
		return err
	}
	if !e.isStore {
		if err := s.checkOperand(th, e, e.ren.Src2, e.rec.Src2Val); err != nil {
			return err
		}
	}
	return nil
}
