package pipeline

import "repro/internal/core"

// issueStage selects ready instructions for execution, oldest-first per
// thread, threads in rotation order, bounded by issue width, functional
// units, register-file read ports and — under VP issue allocation — the
// renamer's willingness to hand out a register (a refusal leaves the
// instruction queued and counts an issue block, every cycle, exactly like
// the reference scan retries it).
//
// Event kernel: only the ready queue is walked; an instruction enters it
// at dispatch (operands already ready) or when the last missing operand is
// broadcast, and leaves when it issues or is squashed.
func (s *Sim) issueStage(now int64) error {
	if s.scan {
		return s.issueScan(now)
	}
	s.tickPools(now)
	budget := s.cfg.IssueWidth
	rfReads := [2]int{s.cfg.RFReadPorts, s.cfg.RFReadPorts}
	for _, th := range s.threadOrder() {
		q := th.readyQ
		kept := q[:0]
		for qi := 0; qi < len(q); qi++ {
			ref := q[qi]
			e := th.entryByInum(ref.inum)
			if e == nil || e.gen != ref.gen || e.st != stWaiting || !e.ready() {
				continue // stale reference; drop
			}
			if budget == 0 {
				kept = append(kept, ref)
				continue
			}
			info := e.rec.Inst.Op.Info()
			pool := s.kindToPool[info.Kind]
			if s.pools[pool].free == 0 {
				kept = append(kept, ref)
				continue
			}
			needReads := readPortNeeds(e)
			if rfReads[0] < needReads[0] || rfReads[1] < needReads[1] {
				kept = append(kept, ref)
				continue
			}
			if !th.ren.AllocateAtIssue(e.inum) {
				kept = append(kept, ref)
				continue // VP issue allocation refused; stays in the queue
			}
			if err := s.readIssueOperands(th, e); err != nil {
				return err
			}
			th.ren.NoteRead(e.inum, true, !e.isStore)

			rfReads[0] -= needReads[0]
			rfReads[1] -= needReads[1]
			if info.Pipelined {
				s.pools[pool].take(now, now+1)
			} else {
				s.pools[pool].take(now, now+int64(info.Latency))
			}
			budget--
			e.executions++
			s.stats.Issued++
			e.st = stExecuting
			e.inReadyQ = false
			if e.isLoad || e.isStore {
				// Effective-address unit latency, then the memory pipeline.
				e.completeAt = timeUnset
				e.aguDoneAt = s.aguWheel.schedule(now,
					wevent{due: now + int64(info.Latency), inum: e.inum, tid: int32(th.id), gen: e.gen})
			} else {
				e.completeAt = s.compWheel.schedule(now,
					wevent{due: now + int64(info.Latency), inum: e.inum, tid: int32(th.id), gen: e.gen})
			}
			if s.cfg.Scheme != core.SchemeVPWriteback {
				s.leaveIQ(e)
			}
		}
		th.readyQ = kept
	}
	return nil
}

// readPortNeeds counts register-file reads per class performed at issue.
// Store data is read later (at completion) and is not charged a port — a
// documented simplification.
func readPortNeeds(e *robEntry) [2]int {
	var n [2]int
	if op := e.ren.Src1; op.Present && !op.Zero {
		n[classIdxOf(op.Class)]++
	}
	if op := e.ren.Src2; op.Present && !op.Zero && !e.isStore {
		n[classIdxOf(op.Class)]++
	}
	return n
}

// readIssueOperands performs the golden-model check on the operands read
// at issue time.
func (s *Sim) readIssueOperands(th *thread, e *robEntry) error {
	if err := s.checkOperand(th, e, e.ren.Src1, e.rec.Src1Val); err != nil {
		return err
	}
	if !e.isStore {
		if err := s.checkOperand(th, e, e.ren.Src2, e.rec.Src2Val); err != nil {
			return err
		}
	}
	return nil
}
