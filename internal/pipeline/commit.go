package pipeline

import "fmt"

// commitStage retires completed instructions in program order, up to
// CommitWidth per cycle across threads. Committed stores move into the
// post-commit store buffer (they drain to the cache in executeStage); a
// full buffer stalls commit. Identical under both kernels.
func (s *Sim) commitStage(now int64) error {
	budget := s.cfg.CommitWidth
	for _, th := range s.threadOrder() {
		for budget > 0 && th.robCount > 0 {
			e := th.at(0)
			if e.st != stCompleted {
				break
			}
			if e.isStore {
				if s.sbN >= s.cfg.StoreBufferSize {
					s.stats.CommitSBStalls++
					break
				}
				s.sbPush(th.addr(e.rec.EA))
				if th.sqN == 0 || th.sqAt(0).inum != e.inum {
					//vpr:allowalloc error path: the failed run allocates once and stops
					return fmt.Errorf("pipeline: store queue out of sync at commit of %d", e.inum)
				}
				th.sqPopFront()
				s.stats.Stores++
			}
			if e.isLoad {
				s.stats.Loads++
			}
			th.ren.Commit(e.inum)
			s.stats.Committed++
			th.committed++
			if s.onCommit != nil {
				s.onCommit(th.id, e.inum)
			}
			if s.probe != nil {
				s.probe.Committed(now, th.id, e.inum)
			}
			s.lastCommitCycle = now
			th.robHead = (th.robHead + 1) % len(th.rob)
			th.robCount--
			th.headInum++
			budget--
		}
		th.stream.Retire(th.headInum)
		th.ren.Tick(now, s.safeBound(th))
	}
	return nil
}

// safeBound returns the newest instruction number in the thread that can
// no longer be squashed. The only squash source in this trace-driven model
// is a memory-order violation, triggered by a store whose address was
// still unknown.
func (s *Sim) safeBound(th *thread) int64 {
	tail := th.headInum + int64(th.robCount) - 1
	if s.cfg.Disambiguation == DisambConservative {
		return tail
	}
	for i := 0; i < th.sqN; i++ {
		if sqe := th.sqAt(i); !sqe.eaKnown {
			return sqe.inum - 1
		}
	}
	return tail
}

// --- post-commit store buffer ring --------------------------------------------

func (s *Sim) sbPush(addr uint64) {
	s.sbBuf[(s.sbHead+s.sbN)%len(s.sbBuf)] = addr
	s.sbN++
}

func (s *Sim) sbFront() uint64 { return s.sbBuf[s.sbHead] }

func (s *Sim) sbPopFront() {
	s.sbHead = (s.sbHead + 1) % len(s.sbBuf)
	s.sbN--
}
