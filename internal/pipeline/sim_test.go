package pipeline

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/trace"
)

// runSrc assembles src, traces it with the emulator and runs it through a
// simulator with the given config (Debug and ValueCheck forced on).
func runSrc(t *testing.T, cfg Config, src string) Stats {
	t.Helper()
	cfg.Debug = true
	cfg.ValueCheck = true
	gen, err := emu.NewTraceGen(asm.MustAssemble("t", src))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Err() != nil {
		t.Fatal(gen.Err())
	}
	return st
}

func traceLen(t *testing.T, src string) int64 {
	t.Helper()
	gen, err := emu.NewTraceGen(asm.MustAssemble("t", src))
	if err != nil {
		t.Fatal(err)
	}
	return int64(len(trace.Collect(gen, 1<<40)))
}

func TestSingleInstructionLatency(t *testing.T) {
	// fetch(0) → dispatch(1) → issue(2) → write-back(3) → commit(4):
	// five cycles for one instruction through the five-stage skeleton.
	st := runSrc(t, DefaultConfig(), "add r1, r31, r31\nhalt")
	if st.Committed != 1 {
		t.Fatalf("committed = %d", st.Committed)
	}
	if st.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", st.Cycles)
	}
}

func TestDependentChainBypassesAtFullRate(t *testing.T) {
	// N serially dependent single-cycle adds sustain one per cycle via
	// the bypass (issue in the producer's write-back cycle).
	var b strings.Builder
	const n = 100
	b.WriteString("ldi r1, 1\n")
	for i := 0; i < n; i++ {
		b.WriteString("add r1, r1, r1\n")
	}
	b.WriteString("halt")
	st := runSrc(t, DefaultConfig(), b.String())
	if st.Committed != n+1 {
		t.Fatalf("committed = %d", st.Committed)
	}
	// n dependent adds at 1/cycle plus pipeline fill/drain.
	if st.Cycles < n+3 || st.Cycles > n+8 {
		t.Errorf("cycles = %d, want ≈ %d (chain at 1 IPC)", st.Cycles, n+5)
	}
}

func TestIndependentAddsLimitedBySimpleIntUnits(t *testing.T) {
	var b strings.Builder
	const n = 300
	for i := 0; i < n; i++ {
		b.WriteString("add r1, r31, r31\n") // independent: sources are zero regs
	}
	b.WriteString("halt")
	st := runSrc(t, DefaultConfig(), b.String())
	ipc := st.IPC()
	if ipc < 2.5 || ipc > 3.05 {
		t.Errorf("IPC = %.2f, want ≈ 3 (three simple-int units)", ipc)
	}
}

func TestDividerIsUnpipelined(t *testing.T) {
	// Three independent divides on two shared complex-int units: the
	// third must wait a full 67-cycle occupancy.
	src := `
        ldi r1, 100
        div r2, r1, r1
        div r3, r1, r1
        div r4, r1, r1
        halt`
	st := runSrc(t, DefaultConfig(), src)
	// ldi WB at 3; divs issue at 3 (two units), third at 3+67=70,
	// completing ≈ 137, commit ≈ 138 → cycles ≈ 139.
	if st.Cycles < 135 || st.Cycles > 145 {
		t.Errorf("cycles = %d, want ≈ 139 (third divide serialized)", st.Cycles)
	}
}

func TestLoadMissTiming(t *testing.T) {
	src := `
        .data
d:      .word 5
        .text
        ldi r1, d
        ldq r2, 0(r1)
        add r3, r2, r2
        halt`
	st := runSrc(t, DefaultConfig(), src)
	// ldi WB@3; ldq issues@3, AGU@4, miss → data @ 4+52=56; add issues
	// @56, WB@57, commit@58 → 59 cycles.
	if st.Cycles != 59 {
		t.Errorf("cycles = %d, want 59 (cold miss of 52 cycles end-to-end)", st.Cycles)
	}
	if st.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1", st.CacheMisses)
	}
}

func TestLoadHitTiming(t *testing.T) {
	// Second load to the same line hits: 2-cycle access after AGU.
	src := `
        .data
d:      .word 5, 6
        .text
        ldi r1, d
        ldq r2, 0(r1)
        add r3, r2, r2
        ldq r4, 8(r1)
        add r5, r4, r4
        halt`
	st := runSrc(t, DefaultConfig(), src)
	// The second load's line was refilled by the first; both loads issue
	// early (independent), the second merges into the first's MSHR.
	if st.CacheMisses != 1 || st.CacheMergedMiss != 1 {
		t.Errorf("misses/merges = %d/%d, want 1/1", st.CacheMisses, st.CacheMergedMiss)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	src := `
        .data
d:      .word 0
        .text
        ldi r1, d
        ldi r2, 7
        stq 0(r1), r2
        ldq r3, 0(r1)
        add r4, r3, r3
        halt`
	st := runSrc(t, DefaultConfig(), src)
	if st.LoadsForwarded != 1 {
		t.Errorf("forwarded = %d, want 1", st.LoadsForwarded)
	}
	if st.MemViolations != 0 {
		t.Errorf("violations = %d, want 0 (load sees the store's address in time)", st.MemViolations)
	}
}

// violationSrc delays a store's address computation behind a 9-cycle
// multiply while a younger load to the same address races ahead.
const violationSrc = `
        .data
d:      .word 3
        .text
        ldi r1, d
        ldi r5, 8
        mul r6, r5, r31    ; 0, but takes 9 cycles
        add r7, r1, r6     ; the store address, late
        stq 0(r7), r5
        ldq r8, 0(r1)      ; same address, executes early under speculation
        add r9, r8, r8
        halt`

func TestSpeculativeViolationReplay(t *testing.T) {
	st := runSrc(t, DefaultConfig(), violationSrc)
	if st.MemViolations < 1 {
		t.Fatalf("violations = %d, want ≥ 1", st.MemViolations)
	}
	if st.Committed != traceLen(t, violationSrc) {
		t.Errorf("committed = %d, want full trace after replay", st.Committed)
	}
}

func TestConservativeDisambiguationAvoidsViolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disambiguation = DisambConservative
	st := runSrc(t, cfg, violationSrc)
	if st.MemViolations != 0 {
		t.Errorf("violations = %d, want 0 under conservative disambiguation", st.MemViolations)
	}
	if st.LoadsForwarded != 1 {
		t.Errorf("forwarded = %d, want 1 (load waits and then forwards)", st.LoadsForwarded)
	}
}

func TestMispredictionFreezesFetch(t *testing.T) {
	// A tight counted loop: the 2-bit predictor learns "taken" and only
	// mispredicts around the exit.
	src := `
        ldi  r1, 50
loop:   subi r1, r1, 1
        bne  r1, loop
        halt`
	st := runSrc(t, DefaultConfig(), src)
	if st.CondBranches != 50 {
		t.Fatalf("branches resolved = %d, want 50", st.CondBranches)
	}
	if st.Mispredicts < 1 || st.Mispredicts > 3 {
		t.Errorf("mispredicts = %d, want 1-3 (warmup + exit)", st.Mispredicts)
	}
}

func TestDataDependentBranchesMispredictOften(t *testing.T) {
	// Branch direction alternates via parity: a 2-bit counter cannot
	// track it perfectly.
	src := `
        ldi  r1, 200
        ldi  r2, 0
loop:   andi r3, r1, 1
        beq  r3, skip
        addi r2, r2, 1
skip:   subi r1, r1, 1
        bne  r1, loop
        halt`
	st := runSrc(t, DefaultConfig(), src)
	if st.MispredictRate() < 0.2 {
		t.Errorf("mispredict rate = %.2f, want ≥ 0.2 on alternating branches", st.MispredictRate())
	}
}

func TestConventionalRenameStall(t *testing.T) {
	// 8 extra integer registers and a window full of long-latency
	// producers: decode must stall on the free list.
	cfg := DefaultConfig()
	cfg.Rename.PhysRegs = 40
	cfg.Rename.NRRInt, cfg.Rename.NRRFP = 8, 8
	var b strings.Builder
	b.WriteString("ldi r1, 3\n")
	for i := 0; i < 30; i++ {
		b.WriteString("div r2, r1, r1\n") // 67-cycle producers
	}
	b.WriteString("halt")
	st := runSrc(t, cfg, b.String())
	if st.RenameRegStall == 0 {
		t.Error("expected rename stalls with 8 free registers and slow producers")
	}
}

func TestVPWritebackReexecutesUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = core.SchemeVPWriteback
	cfg.Rename.PhysRegs = 40
	cfg.Rename.NRRInt, cfg.Rename.NRRFP = 4, 4
	// Many independent adds behind one slow divide: the adds complete
	// long before they may allocate.
	var b strings.Builder
	b.WriteString("ldi r1, 3\ndiv r2, r1, r1\n")
	for i := 0; i < 40; i++ {
		b.WriteString("add r3, r2, r1\n") // dependent on the divide? no: r2 — yes, dependent
	}
	for i := 0; i < 40; i++ {
		b.WriteString("add r4, r1, r1\n") // independent: complete early
	}
	b.WriteString("halt")
	st := runSrc(t, cfg, b.String())
	if st.Reexecutions == 0 {
		t.Error("expected write-back allocation failures (re-executions) under pressure")
	}
	if st.ExecPerCommit() <= 1.0 {
		t.Errorf("exec/commit = %.2f, want > 1 with re-execution", st.ExecPerCommit())
	}
}

func TestVPIssueBlocksInsteadOfReexecuting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = core.SchemeVPIssue
	cfg.Rename.PhysRegs = 40
	cfg.Rename.NRRInt, cfg.Rename.NRRFP = 4, 4
	var b strings.Builder
	b.WriteString("ldi r1, 3\ndiv r2, r1, r1\n")
	for i := 0; i < 60; i++ {
		b.WriteString("add r4, r1, r1\n")
	}
	b.WriteString("halt")
	st := runSrc(t, cfg, b.String())
	if st.Reexecutions != 0 {
		t.Errorf("re-executions = %d, want 0 under issue allocation", st.Reexecutions)
	}
	if st.IssueBlocks == 0 {
		t.Error("expected issue blocks under register pressure")
	}
	if got := st.ExecPerCommit(); got != 1.0 {
		t.Errorf("exec/commit = %.2f, want exactly 1", got)
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePorts = 0
	if _, err := New(cfg, trace.FromSlice(nil)); err == nil {
		t.Error("invalid config must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Scheme = core.SchemeVPWriteback
	cfg.Rename.VPRegs = 40 // < logical + window
	if _, err := New(cfg, trace.FromSlice(nil)); err == nil {
		t.Error("undersized VP pool must be rejected")
	}
}

func TestEmptyTrace(t *testing.T) {
	sim, err := New(DefaultConfig(), trace.FromSlice(nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 || !sim.Done() {
		t.Errorf("empty trace: committed=%d done=%v", st.Committed, sim.Done())
	}
}

func TestMaxCommitCap(t *testing.T) {
	src := `
        ldi r1, 100000
loop:   subi r1, r1, 1
        bne r1, loop
        halt`
	cfg := DefaultConfig()
	gen, err := emu.NewTraceGen(asm.MustAssemble("t", src))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < 1000 || st.Committed > 1000+int64(cfg.CommitWidth) {
		t.Errorf("committed = %d, want ≈ 1000", st.Committed)
	}
}
