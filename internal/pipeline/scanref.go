//go:build scanoracle

package pipeline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Scan reference kernel.
//
// These are the pre-refactor stage implementations: every cycle they scan
// the whole reorder buffer for work (write-back, execute, issue) and again
// on every result broadcast, and probe functional units with a linear scan
// over per-unit busy-until times. They are kept as the differential oracle
// for the event-indexed kernel: a simulator built by newScanSMT (test-only,
// this package) runs these verbatim, and the differential test asserts
// cycle-exact equality of statistics and commit streams between the two
// kernels across randomized workloads, schemes and SMT configurations.
//
// The oracle is compiled only under the scanoracle build tag (ROADMAP
// "Retire the scan oracle once stable"); CI runs the differential tests
// with the tag enabled. It models the default issue selection only — a
// configured IssueSelect applies to the event kernel alone — while fetch
// policies and probes, which live outside the scheduling kernel, behave
// identically under both.

// newScanSMT builds a simulator running the scan reference kernel.
func newScanSMT(cfg Config, gens []trace.Generator) (*Sim, error) {
	return newSMT(cfg, gens, true)
}

func (s *Sim) writebackScan(now int64) error {
	wbPorts := [2]int{s.cfg.RFWritePorts, s.cfg.RFWritePorts}
	for _, th := range s.threadOrder() {
		for i := 0; i < th.robCount; i++ {
			e := th.at(i)
			if e.st != stExecuting {
				continue
			}
			if e.isStore {
				// A store is complete once its address has been
				// recorded in the store queue (by the execute stage,
				// so violation checks always run) and its data has
				// arrived; it consumes no write port.
				sqe := th.sqEntry(e.inum)
				if sqe != nil && sqe.eaKnown && e.src2Ready {
					if err := s.checkOperand(th, e, e.ren.Src2, e.rec.Src2Val); err != nil {
						return err
					}
					th.ren.NoteRead(e.inum, false, true) // data operand read now
					if _, ok := th.ren.Complete(e.inum); !ok {
						//vpr:allowalloc error path: the failed run allocates once and stops
						return fmt.Errorf("pipeline: store %d refused completion", e.inum)
					}
					e.st = stCompleted
					s.leaveIQ(e)
					if s.probe != nil {
						s.probe.Completed(now, th.id, e.inum)
					}
				}
				continue
			}
			if e.completeAt == timeUnset || e.completeAt > now {
				continue
			}
			hasDst := e.ren.Dst.Present
			f := 0
			if hasDst {
				f = classIdxOf(e.ren.Dst.Class)
				if wbPorts[f] == 0 {
					continue // structural: retry next cycle
				}
			}
			preg, ok := th.ren.Complete(e.inum)
			if !ok {
				// §3.3: no register may be allocated at write-back;
				// squash the instruction back to the queue and
				// re-execute it.
				e.st = stWaiting
				e.completeAt = timeUnset
				e.aguDoneAt = timeUnset
				if e.isLoad {
					e.valueFrom = valueNone
				}
				if s.probe != nil {
					s.probe.AllocRefused(now, th.id, e.inum, false)
				}
				continue
			}
			if hasDst {
				s.prf[f][preg] = e.rec.DstVal
				wbPorts[f]--
				s.broadcastScan(th, e.ren.Dst.Class, e.ren.Dst.Tag)
			}
			e.st = stCompleted
			s.leaveIQ(e)
			if s.probe != nil {
				s.probe.Completed(now, th.id, e.inum)
			}
			if e.isBranch {
				s.resolveBranch(th, e, now)
			}
		}
	}
	return nil
}

// broadcastScan wakes every waiting operand of the owning thread matching
// the completed tag by scanning the thread's reorder buffer.
func (s *Sim) broadcastScan(th *thread, class isa.RegClass, tag int) {
	for i := 0; i < th.robCount; i++ {
		e := th.at(i)
		if e.st == stCompleted {
			continue
		}
		if !e.src1Ready && matches(e.ren.Src1, class, tag) {
			e.src1Ready = true
		}
		if !e.src2Ready && matches(e.ren.Src2, class, tag) {
			e.src2Ready = true
		}
	}
}

// executeScan is the scan-kernel memory phase: like executeStage it is
// the only place the oracle touches s.dmem, so it sits inside the same
// //vpr:memphase fence.
//
//vpr:memphase
func (s *Sim) executeScan(now int64) error {
	ports := s.cfg.CachePorts
	// The post-commit store buffer gets first claim on one port (see the
	// event kernel's executeStage for the livelock argument).
	if s.sbN > 0 {
		if _, ok := s.dmem.Access(now, s.sbFront(), true); ok {
			s.sbPopFront()
			ports--
		}
	}
	for _, th := range s.threadOrder() {
		for i := 0; i < th.robCount; i++ {
			e := th.at(i)
			if e.st != stExecuting || e.aguDoneAt == timeUnset || e.aguDoneAt > now {
				continue
			}
			switch {
			case e.isStore:
				sqe := th.sqEntry(e.inum)
				if sqe == nil {
					//vpr:allowalloc error path: the failed run allocates once and stops
					return fmt.Errorf("pipeline: store %d missing from store queue", e.inum)
				}
				if !sqe.eaKnown {
					sqe.ea = e.rec.EA
					sqe.eaKnown = true
					if s.cfg.Disambiguation == DisambSpeculative {
						if err := s.checkViolation(th, sqe, now); err != nil {
							return err
						}
					}
				}
			case e.isLoad && e.valueFrom == valueNone:
				if err := s.tryLoad(th, e, now, &ports); err != nil {
					return err
				}
			}
		}
	}
	// Post-commit stores drain through the remaining cache ports.
	for ports > 0 && s.sbN > 0 {
		if _, ok := s.dmem.Access(now, s.sbFront(), true); !ok {
			break // all MSHRs busy; retry next cycle
		}
		s.sbPopFront()
		ports--
	}
	return nil
}

func (s *Sim) issueScan(now int64) error {
	budget := s.cfg.IssueWidth
	rfReads := [2]int{s.cfg.RFReadPorts, s.cfg.RFReadPorts}
	for _, th := range s.threadOrder() {
		for i := 0; i < th.robCount && budget > 0; i++ {
			e := th.at(i)
			if e.st != stWaiting || !e.ready() {
				continue
			}
			info := e.rec.Inst.Op.Info()
			pool := s.kindToPool[info.Kind]
			unit := s.freeUnitScan(pool, now)
			if unit < 0 {
				continue
			}
			needReads := readPortNeeds(e)
			if rfReads[0] < needReads[0] || rfReads[1] < needReads[1] {
				continue
			}
			if !th.ren.AllocateAtIssue(e.inum) {
				if s.probe != nil {
					s.probe.AllocRefused(now, th.id, e.inum, true)
				}
				continue // VP issue allocation refused; stays in the queue
			}
			if err := s.readIssueOperands(th, e); err != nil {
				return err
			}
			th.ren.NoteRead(e.inum, true, !e.isStore)

			rfReads[0] -= needReads[0]
			rfReads[1] -= needReads[1]
			if info.Pipelined {
				s.scanPools[pool][unit] = now + 1
			} else {
				s.scanPools[pool][unit] = now + int64(info.Latency)
			}
			budget--
			e.executions++
			s.stats.Issued++
			if s.probe != nil {
				s.probe.Issued(now, th.id, e.inum)
			}
			e.st = stExecuting
			if e.isLoad || e.isStore {
				e.aguDoneAt = now + int64(info.Latency) // effective-address unit
				e.completeAt = timeUnset
			} else {
				e.completeAt = now + int64(info.Latency)
			}
			if s.cfg.Scheme != core.SchemeVPWriteback {
				s.leaveIQ(e)
			}
		}
	}
	return nil
}

func (s *Sim) freeUnitScan(pool int, now int64) int {
	for u, busyUntil := range s.scanPools[pool] {
		if busyUntil <= now {
			return u
		}
	}
	return -1
}
