package pipeline

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/trace"
)

// The golden checker itself must be falsifiable: corrupting one operand
// value in an otherwise valid trace has to fail the run. Without this
// meta-test a silently disabled checker would void every equivalence test.
func TestGoldenCheckerDetectsCorruption(t *testing.T) {
	gen, err := emu.NewTraceGen(asm.MustAssemble("t", `
        ldi r1, 5
        ldi r2, 7
        add r3, r1, r2
        add r4, r3, r3
        halt`))
	if err != nil {
		t.Fatal(err)
	}
	recs := trace.Collect(gen, 100)
	if len(recs) != 4 {
		t.Fatalf("trace length %d", len(recs))
	}

	// Control: the unmodified trace passes.
	cfg := DefaultConfig()
	cfg.ValueCheck = true
	sim, err := New(cfg, trace.FromSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err != nil {
		t.Fatalf("clean trace failed: %v", err)
	}

	// Corrupt the producer's destination value: its consumer must trip
	// the checker. (Corrupting DstVal means the write-back stores a value
	// that no longer matches the consumer's recorded operand.)
	recs[2].DstVal = 999
	sim2, err := New(cfg, trace.FromSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim2.Run(0)
	if err == nil || !strings.Contains(err.Error(), "golden-model mismatch") {
		t.Fatalf("corrupted trace must fail the golden check, got %v", err)
	}

	// With checking disabled the same corruption passes silently —
	// proving the flag is what gates the verification.
	cfg.ValueCheck = false
	sim3, err := New(cfg, trace.FromSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim3.Run(0); err != nil {
		t.Fatalf("ValueCheck=false must not verify: %v", err)
	}
}

// Determinism: two runs of the same workload and configuration produce
// bit-identical statistics (experiments depend on this).
func TestSimulationDeterministic(t *testing.T) {
	run := func() Stats {
		gen, err := emu.NewTraceGen(asm.MustAssemble("t", `
        ldi  r1, 1000
        ldi  r2, 1048576
loop:   ldq  r3, 0(r2)
        add  r4, r3, r1
        stq  8(r2), r4
        addi r2, r2, 32
        subi r1, r1, 1
        bne  r1, loop
        halt`))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(DefaultConfig(), gen)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Arch() != b.Arch() {
		t.Errorf("two identical runs differ:\n%s\n%s", a, b)
	}
	if a.WallSeconds <= 0 || a.CyclesPerSec <= 0 || a.InstrsPerSec <= 0 {
		t.Errorf("throughput fields not populated: %+v", a)
	}
}
