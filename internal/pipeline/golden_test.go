package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// randProgram builds a random but well-formed looped program: memory
// operations stay inside a private data region, forward skip-branches add
// data-dependent control flow, and the loop is bounded. Every value the
// program computes flows through the emulator into the trace, so the
// pipeline's golden checks verify end-to-end renaming correctness on
// arbitrary dataflow.
func randProgram(rng *rand.Rand, bodyLen, loops int) *isa.Program {
	const dataWords = 256
	p := &isa.Program{
		DataBase: isa.DefaultDataBase,
		Data:     make([]byte, dataWords*8),
		Symbols:  map[string]int64{},
	}
	for i := range p.Data {
		p.Data[i] = byte(rng.Intn(256))
	}
	add := func(in isa.Inst) { p.Insts = append(p.Insts, in) }

	// Prologue: two base registers and the loop counter.
	add(isa.Inst{Op: isa.LDI, Dst: isa.IntReg(1), Imm: int64(p.DataBase)})
	add(isa.Inst{Op: isa.LDI, Dst: isa.IntReg(2), Imm: int64(p.DataBase) + dataWords*4})
	add(isa.Inst{Op: isa.LDI, Dst: isa.IntReg(20), Imm: int64(loops)})
	bodyStart := len(p.Insts)

	intDst := func() isa.Reg { return isa.IntReg(3 + rng.Intn(15)) }  // r3..r17
	intSrc := func() isa.Reg { return isa.IntReg(1 + rng.Intn(17)) }  // r1..r17
	fpDst := func() isa.Reg { return isa.FPReg(1 + rng.Intn(15)) }    // f1..f15
	fpSrc := func() isa.Reg { return isa.FPReg(rng.Intn(17)) }        // f0..f16
	base := func() isa.Reg { return isa.IntReg(1 + rng.Intn(2)) }     // r1 or r2
	off := func() int64 { return int64(rng.Intn(dataWords/2-1)) * 8 } // stays in region

	for len(p.Insts) < bodyStart+bodyLen {
		pc := len(p.Insts)
		switch rng.Intn(12) {
		case 0, 1:
			add(isa.Inst{Op: isa.LDQ, Dst: intDst(), Src1: base(), Imm: off(), Target: -1})
		case 2:
			add(isa.Inst{Op: isa.LDT, Dst: fpDst(), Src1: base(), Imm: off(), Target: -1})
		case 3:
			add(isa.Inst{Op: isa.STQ, Src1: base(), Src2: intSrc(), Imm: off(), Target: -1})
		case 4:
			add(isa.Inst{Op: isa.STT, Src1: base(), Src2: fpSrc(), Imm: off(), Target: -1})
		case 5:
			ops := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMUL}
			add(isa.Inst{Op: ops[rng.Intn(len(ops))], Dst: fpDst(), Src1: fpSrc(), Src2: fpSrc(), Target: -1})
		case 6:
			if rng.Intn(3) == 0 {
				add(isa.Inst{Op: isa.FDIV, Dst: fpDst(), Src1: fpSrc(), Src2: fpSrc(), Target: -1})
			} else {
				add(isa.Inst{Op: isa.CVTIF, Dst: fpDst(), Src1: intSrc(), Target: -1})
			}
		case 7:
			if rng.Intn(2) == 0 {
				add(isa.Inst{Op: isa.MUL, Dst: intDst(), Src1: intSrc(), Src2: intSrc(), Target: -1})
			} else {
				add(isa.Inst{Op: isa.FCVTI, Dst: intDst(), Src1: fpSrc(), Target: -1})
			}
		case 8:
			// Forward skip branch with a data-dependent direction.
			skip := 2 + rng.Intn(3)
			ops := []isa.Opcode{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
			add(isa.Inst{Op: ops[rng.Intn(len(ops))], Src1: intSrc(), Target: pc + skip})
		default:
			ops := []isa.Opcode{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMPLT, isa.SRA}
			add(isa.Inst{Op: ops[rng.Intn(len(ops))], Dst: intDst(), Src1: intSrc(), Src2: intSrc(), Target: -1})
		}
	}
	// Pad so skip branches near the end stay in range, then close the loop.
	for i := 0; i < 4; i++ {
		add(isa.Inst{Op: isa.ADDI, Dst: isa.IntReg(19), Src1: isa.IntReg(19), Imm: 1, Target: -1})
	}
	add(isa.Inst{Op: isa.SUBI, Dst: isa.IntReg(20), Src1: isa.IntReg(20), Imm: 1, Target: -1})
	add(isa.Inst{Op: isa.BNE, Src1: isa.IntReg(20), Target: bodyStart})
	add(isa.Inst{Op: isa.HALT})
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("randProgram generated an invalid program: %v", err))
	}
	return p
}

// goldenConfigs are the scheme/pressure corners the equivalence test
// sweeps. Small register files with small NRR force heavy re-execution and
// issue blocking; speculative disambiguation forces violation replays.
func goldenConfigs() []Config {
	var out []Config
	for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
		for _, regs := range []int{40, 64} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Rename.PhysRegs = regs
			maxNRR := cfg.Rename.MaxNRR()
			for _, nrr := range []int{1, maxNRR} {
				c := cfg
				c.Rename.NRRInt, c.Rename.NRRFP = nrr, nrr
				c.Debug = true
				c.ValueCheck = true
				out = append(out, c)
				if scheme == core.SchemeConventional {
					break // NRR is meaningless for the baseline
				}
			}
		}
	}
	// Conservative-disambiguation corner and the early-release ablation.
	c := DefaultConfig()
	c.Disambiguation = DisambConservative
	c.Debug, c.ValueCheck = true, true
	out = append(out, c)
	er := DefaultConfig()
	er.Rename.EarlyRelease = true
	er.Rename.PhysRegs = 40
	er.Debug, er.ValueCheck = true, true
	out = append(out, er)
	return out
}

// TestGoldenEquivalence runs random programs through every scheme at
// several pressure corners with per-operand value checking and renamer
// invariant checks every cycle. Any renaming bug — wrong mapping, premature
// free, bad recovery, bad re-execution — fails loudly.
func TestGoldenEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		prog := randProgram(rand.New(rand.NewSource(seed)), 60, 40)
		countGen, err := emu.NewTraceGen(prog)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(len(trace.Collect(countGen, 1<<40)))
		if countGen.Err() != nil {
			t.Fatalf("seed %d: emulator error: %v", seed, countGen.Err())
		}
		for i, cfg := range goldenConfigs() {
			name := fmt.Sprintf("seed%d/cfg%d-%s-p%d-nrr%d", seed, i, cfg.Scheme, cfg.Rename.PhysRegs, cfg.Rename.NRRInt)
			t.Run(name, func(t *testing.T) {
				gen, err := emu.NewTraceGen(prog)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := New(cfg, gen)
				if err != nil {
					t.Fatal(err)
				}
				st, err := sim.Run(0)
				if err != nil {
					t.Fatalf("%v\nstats: %s", err, st)
				}
				if st.Committed != want {
					t.Fatalf("committed %d of %d instructions", st.Committed, want)
				}
				if !sim.Done() {
					t.Fatal("simulator not drained")
				}
			})
		}
	}
}

// TestGoldenEquivalenceStoreHeavy stresses the disambiguation machinery
// with a store-dense body so replays and forwarding are frequent.
func TestGoldenEquivalenceStoreHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const dataWords = 64
	p := &isa.Program{DataBase: isa.DefaultDataBase, Data: make([]byte, dataWords*8), Symbols: map[string]int64{}}
	add := func(in isa.Inst) { p.Insts = append(p.Insts, in) }
	add(isa.Inst{Op: isa.LDI, Dst: isa.IntReg(1), Imm: int64(p.DataBase)})
	add(isa.Inst{Op: isa.LDI, Dst: isa.IntReg(20), Imm: 60})
	body := len(p.Insts)
	for i := 0; i < 40; i++ {
		off := int64(rng.Intn(dataWords)) * 8
		switch rng.Intn(3) {
		case 0:
			add(isa.Inst{Op: isa.STQ, Src1: isa.IntReg(1), Src2: isa.IntReg(3 + rng.Intn(5)), Imm: off, Target: -1})
		case 1:
			add(isa.Inst{Op: isa.LDQ, Dst: isa.IntReg(3 + rng.Intn(5)), Src1: isa.IntReg(1), Imm: off, Target: -1})
		default:
			// A slow address disturbance: MUL feeding an address-ish reg.
			add(isa.Inst{Op: isa.MUL, Dst: isa.IntReg(8 + rng.Intn(4)), Src1: isa.IntReg(3 + rng.Intn(5)), Src2: isa.IntReg(8 + rng.Intn(4)), Target: -1})
		}
	}
	add(isa.Inst{Op: isa.SUBI, Dst: isa.IntReg(20), Src1: isa.IntReg(20), Imm: 1, Target: -1})
	add(isa.Inst{Op: isa.BNE, Src1: isa.IntReg(20), Target: body})
	add(isa.Inst{Op: isa.HALT})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	countGen, _ := emu.NewTraceGen(p)
	want := int64(len(trace.Collect(countGen, 1<<40)))
	for _, cfg := range goldenConfigs() {
		gen, err := emu.NewTraceGen(p)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatalf("%s p%d: %v", cfg.Scheme, cfg.Rename.PhysRegs, err)
		}
		if st.Committed != want {
			t.Fatalf("%s p%d: committed %d of %d", cfg.Scheme, cfg.Rename.PhysRegs, st.Committed, want)
		}
	}
}

// The headline mechanism check: on a miss-dominated workload with long
// dependence chains, the VP write-back scheme must beat the conventional
// scheme at equal register count — and a conventional machine with many
// more registers should recover the difference.
func TestVPBeatsConventionalUnderMissPressure(t *testing.T) {
	// Independent iterations, one cold miss each (32-byte stride), and a
	// deep per-iteration FP chain: seven FP destinations per iteration
	// shrink the conventional scheme's effective window to ~4
	// iterations, while late allocation lets the full reorder buffer
	// (and all 8 MSHRs) stay busy.
	src := `
        .data
a:      .space 1048576
        .text
        ldi  r9, 1000
outer:  ldi  r1, a
        ldi  r4, 8192
inner:  ldt  f1, 0(r1)
        fadd f2, f1, f20
        fmul f3, f2, f21
        fadd f4, f3, f22
        fadd f5, f4, f23
        fmul f6, f5, f24
        fadd f7, f6, f25
        stt  0(r1), f7
        addi r1, r1, 32
        subi r4, r4, 1
        bne  r4, inner
        subi r9, r9, 1
        bne  r9, outer
        halt`
	run := func(scheme core.Scheme, regs int) float64 {
		t.Helper()
		gen, err := emu.NewTraceGen(asm.MustAssemble("t", src))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Rename.PhysRegs = regs
		cfg.Rename.NRRInt = cfg.Rename.MaxNRR()
		cfg.Rename.NRRFP = cfg.Rename.MaxNRR()
		sim, err := New(cfg, trace.Take(gen, 30000))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	conv := run(core.SchemeConventional, 64)
	vpwb := run(core.SchemeVPWriteback, 64)
	if vpwb <= conv*1.02 {
		t.Errorf("vp-wb IPC %.3f vs conv %.3f: expected a clear win under miss pressure", vpwb, conv)
	}
	big := run(core.SchemeConventional, 160)
	if big <= conv {
		t.Errorf("conv with 160 regs (%.3f) should beat conv with 64 (%.3f)", big, conv)
	}
}
