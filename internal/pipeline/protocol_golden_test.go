package pipeline

import (
	"hash/fnv"
	"testing"

	"repro/internal/mem"
	"repro/internal/synth"
	"repro/internal/trace"
)

// The golden differential pin for the protocol refactor (PR 10): the
// explicit Protocol="msi" + Directory="fullmap" selection must be
// byte-identical to the hardwired pre-refactor MSI directory. The
// expected values below were captured at the pre-change HEAD (commit
// 82b1758) by running these exact configurations; every architectural
// counter and every per-core commit-stream hash must still match, and
// the counters the refactor introduced (SilentUpgrades, L2OwnerForwards,
// L2DirOverflows, L2DirBroadcasts) must stay exactly zero — struct
// equality over Arch() enforces both at once.
//
// If this test fails, the refactor changed the default protocol's
// behaviour: that is a regression, not a baseline to re-capture.

// goldenGens builds the pinned workload: every core runs synth:sharing
// with Seed=5, truncated to n instructions.
func goldenGens(cores int, n int64) func() []trace.Generator {
	return func() []trace.Generator {
		gens := make([]trace.Generator, cores)
		for i := range gens {
			p := synth.Sharing()
			p.Seed = 5
			gens[i] = trace.Take(synth.New(p), n)
		}
		return gens
	}
}

// streamHash folds a commit stream into the FNV-1a hash of its
// little-endian instruction numbers.
func streamHash(s []int64) uint64 {
	h := fnv.New64a()
	for _, inum := range s {
		var b [8]byte
		for k := 0; k < 8; k++ {
			b[k] = byte(inum >> (8 * k))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func TestProtocolGoldenMSIByteIdentical(t *testing.T) {
	base := Stats{
		Issued: 25411, RenameRegStall: 28716, CondBranches: 2078, Mispredicts: 266,
		Loads: 7214, Stores: 7120, LoadsForwarded: 666, MemViolations: 159,
		SquashedByMem: 3910, CommitSBStalls: 52, CacheAccesses: 34569,
		CacheMisses: 4800, CacheMergedMiss: 944, MSHRStallCycles: 20382,
		PeakMSHRs: 8, L2Fetches: 4800, L2Hits: 4590, L2Misses: 132, L2Merges: 78,
		L2Conflicts: 12327, L2Invalidations: 4547, L2Upgrades: 1719,
		L2WritebackForwards: 4514, ROBOccupancySum: 1856605, IQOccupancySum: 911626,
		IntRegsInUseSum: 2499942, FPRegsInUseSum: 1340704,
		RegLifetimeSum: 2395123, RegsFreed: 17356,
		Cycles: 21044, Committed: 24000,
	}
	shared4 := Stats{
		Issued: 34129, RenameRegStall: 104614, CondBranches: 2773, Mispredicts: 456,
		Loads: 9540, Stores: 9528, LoadsForwarded: 839, MemViolations: 252,
		SquashedByMem: 6438, CommitSBStalls: 333, CacheAccesses: 176662,
		CacheMisses: 11447, CacheMergedMiss: 1614, MSHRStallCycles: 157610,
		PeakMSHRs: 8, L2Fetches: 11447, L2Hits: 11181, L2Misses: 114, L2Merges: 152,
		L2Conflicts: 29226, L2Invalidations: 11132, L2Upgrades: 1656,
		L2WritebackForwards: 8194, ROBOccupancySum: 6600077, IQOccupancySum: 3559655,
		IntRegsInUseSum: 8852096, FPRegsInUseSum: 4729376,
		RegLifetimeSum: 8501613, RegsFreed: 23844,
		Cycles: 37343, Committed: 32000,
	}
	ns2 := Stats{
		Issued: 24984, RenameRegStall: 9818, CondBranches: 2040, Mispredicts: 264,
		Loads: 7214, Stores: 7120, LoadsForwarded: 458, MemViolations: 138,
		SquashedByMem: 3460, CacheAccesses: 14418,
		CacheMisses: 392, CacheMergedMiss: 92, MSHRStallCycles: 158,
		PeakMSHRs: 8, L2Fetches: 392, L2Hits: 128, L2Misses: 264,
		L2Conflicts: 270, L2Upgrades: 166,
		ROBOccupancySum: 732590, IQOccupancySum: 308708,
		IntRegsInUseSum: 1060990, FPRegsInUseSum: 600256,
		RegLifetimeSum: 1001466, RegsFreed: 17034,
		Cycles: 9379, Committed: 24000,
	}
	cases := []struct {
		name   string
		cores  int
		shared bool
		n      int64
		want   Stats
		hash   uint64
	}{
		{"shared2", 2, true, 12000, base, 0x497c0e7bbbd41b25},
		{"shared4", 4, true, 8000, shared4, 0x216fdbcbdb9d54a5},
		{"ns2", 2, false, 12000, ns2, 0x497c0e7bbbd41b25},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ValueCheck = false
			mccfg := MulticoreConfig{
				Cores: c.cores, Core: cfg, L2: mem.DefaultL2Config(),
				SharedAddressSpace: c.shared, Coherence: true,
				Protocol: "msi", Directory: "fullmap",
			}
			res := runMulticoreMode(t, mccfg, StepLockstep, goldenGens(c.cores, c.n), 0)
			if got := res.agg.Arch(); got != c.want {
				t.Errorf("MSI/fullmap no longer byte-identical to pre-refactor HEAD:\n got %#v\nwant %#v", got, c.want)
			}
			for i, s := range res.streams {
				if h := streamHash(s); h != c.hash {
					t.Errorf("core %d commit stream hash %#x, want %#x", i, h, c.hash)
				}
			}
		})
	}
}

// TestProtocolDefaultIsMSI: the empty selections resolve to MSI over the
// full map, so the default path is covered by the same pin.
func TestProtocolDefaultIsMSI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ValueCheck = false
	mk := goldenGens(2, 3000)
	run := func(proto, dir string) Stats {
		mccfg := MulticoreConfig{
			Cores: 2, Core: cfg, L2: mem.DefaultL2Config(),
			SharedAddressSpace: true, Coherence: true,
			Protocol: proto, Directory: dir,
		}
		return runMulticoreMode(t, mccfg, StepLockstep, mk, 0).agg.Arch()
	}
	if def, named := run("", ""), run("msi", "fullmap"); def != named {
		t.Errorf("default selection differs from explicit msi/fullmap:\n got %#v\nwant %#v", def, named)
	}
}
