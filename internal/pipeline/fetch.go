package pipeline

// fetchStage gives the whole fetch bandwidth to one thread per cycle. The
// default (nil FetchPolicy) takes the first fetchable thread in rotation
// order — round-robin, the classic simple SMT fetch policy, and with one
// thread the paper's front end. A configured FetchPolicy instead chooses
// among every fetchable thread (ICOUNT favours the least-loaded one).
// Identical under both kernels.
func (s *Sim) fetchStage(now int64) {
	if s.fetchPol == nil {
		for _, th := range s.threadOrder() {
			if !s.canFetch(th, now) {
				continue
			}
			s.fetchThread(th, now)
			return
		}
		return
	}
	cands := s.fetchCands[:0]
	ths := s.fetchCandTh[:0]
	for _, th := range s.threadOrder() {
		if !s.canFetch(th, now) {
			continue
		}
		//vpr:allowalloc amortized: stage buffers retain capacity across cycles
		cands = append(cands, FetchCandidate{TID: th.id, InFlight: th.robCount, Buffered: th.fbN})
		//vpr:allowalloc amortized: stage buffers retain capacity across cycles
		ths = append(ths, th)
	}
	s.fetchCands, s.fetchCandTh = cands, ths
	if len(cands) == 0 {
		return
	}
	if i := s.fetchPol.Pick(now, cands); i >= 0 && i < len(ths) {
		s.fetchThread(ths[i], now)
	}
}

// canFetch reports whether the thread can receive fetch bandwidth now.
func (s *Sim) canFetch(th *thread, now int64) bool {
	return !th.traceEnded && !th.frozen && now >= th.nextFetchAt && !th.fbFull()
}

func (s *Sim) fetchThread(th *thread, now int64) {
	for budget := s.cfg.FetchWidth; budget > 0 && !th.fbFull(); budget-- {
		rec, ok := th.stream.At(th.fetchSeq)
		if !ok {
			th.traceEnded = true
			return
		}
		item := fetchItem{rec: rec}
		info := rec.Inst.Op.Info()
		if info.IsBranch {
			predTaken := true // unconditional and indirect: perfect target prediction
			if !info.IsUncond {
				predTaken = s.bht.Predict(rec.PC)
			}
			if predTaken != rec.Taken {
				// Mispredicted: the branch itself is fetched, then the
				// front end freezes until it resolves.
				item.mispred = true
				th.fbPush(item)
				th.fetchSeq++
				th.frozen = true
				th.frozenOn = rec.Seq
				return
			}
			th.fbPush(item)
			th.fetchSeq++
			if rec.Taken {
				return // a taken branch ends the consecutive fetch group
			}
			continue
		}
		th.fbPush(item)
		th.fetchSeq++
	}
}
