package pipeline

// fetchStage gives the whole fetch bandwidth to one thread per cycle,
// rotating among threads that can fetch (round-robin, the classic simple
// SMT fetch policy). With one thread this is the paper's front end.
// Identical under both kernels.
func (s *Sim) fetchStage(now int64) {
	for _, th := range s.threadOrder() {
		if th.traceEnded || th.frozen || now < th.nextFetchAt || th.fbFull() {
			continue
		}
		s.fetchThread(th, now)
		return
	}
}

func (s *Sim) fetchThread(th *thread, now int64) {
	for budget := s.cfg.FetchWidth; budget > 0 && !th.fbFull(); budget-- {
		rec, ok := th.stream.At(th.fetchSeq)
		if !ok {
			th.traceEnded = true
			return
		}
		item := fetchItem{rec: rec}
		info := rec.Inst.Op.Info()
		if info.IsBranch {
			predTaken := true // unconditional and indirect: perfect target prediction
			if !info.IsUncond {
				predTaken = s.bht.Predict(rec.PC)
			}
			if predTaken != rec.Taken {
				// Mispredicted: the branch itself is fetched, then the
				// front end freezes until it resolves.
				item.mispred = true
				th.fbPush(item)
				th.fetchSeq++
				th.frozen = true
				th.frozenOn = rec.Seq
				return
			}
			th.fbPush(item)
			th.fetchSeq++
			if rec.Taken {
				return // a taken branch ends the consecutive fetch group
			}
			continue
		}
		th.fbPush(item)
		th.fetchSeq++
	}
}
