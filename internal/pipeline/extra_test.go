package pipeline

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// A tight 4-instruction loop ends every fetch group at its taken branch, so
// fetch sustains at most 4 instructions per cycle no matter how independent
// the work is — the paper's "eight consecutive instructions" constraint.
func TestTakenBranchEndsFetchGroup(t *testing.T) {
	src := `
        ldi  r1, 3000
loop:   add  r2, r31, r31
        add  r3, r31, r31
        subi r1, r1, 1
        bne  r1, loop
        halt`
	st := runSrc(t, DefaultConfig(), src)
	if ipc := st.IPC(); ipc > 4.01 {
		t.Errorf("IPC = %.2f, must not exceed the 4-instruction fetch group", ipc)
	}
}

// Streaming FP code under VP renaming must saturate the lockup-free cache:
// all eight MSHRs in flight at once.
func TestStreamingSaturatesMSHRs(t *testing.T) {
	gen, err := workloads.MustByName("swim").NewGen()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = core.SchemeVPWriteback
	sim, err := New(cfg, trace.Take(gen, 30000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakMSHRs != 8 {
		t.Errorf("peak MSHRs = %d, want 8 (memory-level parallelism is the paper's win)", st.PeakMSHRs)
	}
}

// A burst of missing stores must back up the post-commit store buffer and
// stall commit — and still drain correctly.
func TestStoreBufferBackpressure(t *testing.T) {
	var b strings.Builder
	b.WriteString("ldi r1, 1048576\n")
	for i := 0; i < 64; i++ {
		b.WriteString("stq 0(r1), r31\naddi r1, r1, 32\n") // one miss per store
	}
	b.WriteString("halt")
	cfg := DefaultConfig()
	cfg.StoreBufferSize = 4
	st := runSrc(t, cfg, b.String())
	if st.CommitSBStalls == 0 {
		t.Error("expected commit stalls on a 4-entry store buffer under a miss storm")
	}
	if st.Committed != 1+128 { // ldi + 64×(stq,addi); halt never enters the trace
		t.Errorf("committed = %d", st.Committed)
	}
}

// Synthetic traces carry no golden values; the pipeline must run them end
// to end (all schemes), exercising the HasValues=false path.
func TestSyntheticTraceAllSchemes(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
		p := synth.Defaults()
		p.MissRatio = 0.15
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Debug = true
		sim, err := New(cfg, trace.Take(synth.New(p), 20000))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if st.Committed != 20000 {
			t.Fatalf("%s: committed %d of 20000", scheme, st.Committed)
		}
	}
}

// The synthetic generator's miss ratio must translate into the expected
// cache behaviour through the whole machine.
func TestSyntheticMissRatioControlsIPC(t *testing.T) {
	run := func(miss float64) float64 {
		p := synth.FPStream()
		p.MissRatio = miss
		sim, err := New(DefaultConfig(), trace.Take(synth.New(p), 20000))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	low, high := run(0.02), run(0.5)
	if high >= low {
		t.Errorf("IPC with 50%% misses (%.2f) should be well below 2%% misses (%.2f)", high, low)
	}
}

// Every workload kernel must run clean through every scheme with golden
// checks and invariant checks enabled — the workload-level equivalence
// sweep (slow-ish, so short mode trims it).
func TestWorkloadsGoldenClean(t *testing.T) {
	names := workloads.Names()
	budget := int64(15000)
	if testing.Short() {
		names = []string{"swim", "compress"}
	}
	for _, name := range names {
		for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
			gen, err := workloads.MustByName(name).NewGen()
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Debug = true
			cfg.ValueCheck = true
			sim, err := New(cfg, trace.Take(gen, budget))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(0)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, scheme, err)
			}
			if st.Committed != budget {
				t.Fatalf("%s/%s: committed %d of %d", name, scheme, st.Committed, budget)
			}
		}
	}
}

// Register-file write ports: with 4 write ports and wide independent
// work, completion throughput (and thus IPC) is capped accordingly.
func TestWritePortLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 600; i++ {
		b.WriteString("add r1, r31, r31\n")
	}
	b.WriteString("halt")
	cfg := DefaultConfig()
	cfg.SimpleIntUnits = 8 // lift the FU limit so ports are the constraint
	cfg.RFWritePorts = 2
	st := runSrc(t, cfg, b.String())
	if ipc := st.IPC(); ipc > 2.05 {
		t.Errorf("IPC = %.2f exceeds the 2-write-port ceiling", ipc)
	}
}

// Commit width bounds throughput even for trivially parallel work.
func TestCommitWidthCap(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 600; i++ {
		b.WriteString("nop\n")
	}
	b.WriteString("halt")
	cfg := DefaultConfig()
	cfg.SimpleIntUnits = 16
	cfg.CommitWidth = 3
	st := runSrc(t, cfg, b.String())
	if ipc := st.IPC(); ipc > 3.05 {
		t.Errorf("IPC = %.2f exceeds the 3-wide commit", ipc)
	}
}

// The deadlock detector must fire (with a useful message) rather than hang
// when the machine genuinely cannot progress. A one-entry store buffer that
// can never drain is simulated by a cache with zero MSHRs... which the
// config rejects; instead force it with an unsatisfiable renamer setup:
// IQ far smaller than a dependence chain needs is legal and must NOT
// deadlock, so instead we check the detector by an artificially tiny
// DeadlockCycles on a long-latency chain.
func TestDeadlockDetectorThreshold(t *testing.T) {
	src := `
        ldi r1, 9
        div r2, r1, r1
        div r3, r2, r2
        div r4, r3, r3
        halt`
	cfg := DefaultConfig()
	cfg.DeadlockCycles = 50 // three dependent 67-cycle divides exceed this
	gen, err := emu.NewTraceGen(asm.MustAssemble("t", src))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(0)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected the deadlock detector to fire, got %v", err)
	}
}

// Conservative disambiguation must never report violations on any workload.
func TestConservativeNeverViolates(t *testing.T) {
	for _, name := range []string{"vortex", "compress"} {
		gen, err := workloads.MustByName(name).NewGen()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Disambiguation = DisambConservative
		sim, err := New(cfg, trace.Take(gen, 20000))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if st.MemViolations != 0 {
			t.Errorf("%s: %d violations under conservative disambiguation", name, st.MemViolations)
		}
	}
}
