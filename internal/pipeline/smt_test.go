package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// smtConfig sizes the machine for n threads with a fixed 32-register
// renaming headroom per class, so sharing pressure is comparable across
// thread counts.
func smtConfig(scheme core.Scheme, n int) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Rename.PhysRegs = 32*n + 32
	nrr := 32 / n
	cfg.Rename.NRRInt = nrr
	cfg.Rename.NRRFP = nrr
	return cfg
}

func smtGens(t *testing.T, names []string, instr int64) []trace.Generator {
	t.Helper()
	var gens []trace.Generator
	for _, name := range names {
		gen, err := workloads.MustByName(name).NewGen()
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, trace.Take(gen, instr))
	}
	return gens
}

func runSMT(t *testing.T, cfg Config, names []string, instr int64) (*Sim, Stats) {
	t.Helper()
	cfg.Debug = true
	cfg.ValueCheck = true
	sim, err := NewSMT(cfg, smtGens(t, names, instr))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.PoolCheck(); err != nil {
		t.Fatal(err)
	}
	return sim, st
}

func TestSMTTwoThreadsComplete(t *testing.T) {
	const instr = 12000
	for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
		sim, st := runSMT(t, smtConfig(scheme, 2), []string{"compress", "swim"}, instr)
		if st.Committed != 2*instr {
			t.Fatalf("%s: committed %d of %d", scheme, st.Committed, 2*instr)
		}
		for i := 0; i < sim.Threads(); i++ {
			if sim.ThreadCommitted(i) != instr {
				t.Errorf("%s: thread %d committed %d", scheme, i, sim.ThreadCommitted(i))
			}
		}
		if !sim.Done() {
			t.Fatalf("%s: not drained", scheme)
		}
	}
}

func TestSMTThroughputExceedsSingleThread(t *testing.T) {
	// Two copies of a mispredict-bound kernel: while one thread's front
	// end is frozen on an unresolved branch the other fetches, so
	// aggregate IPC must clearly beat a single thread's (the point of
	// SMT). A memory-bound kernel would not scale — both threads would
	// fight over the same eight MSHRs.
	const instr = 20000
	_, one := runSMT(t, smtConfig(core.SchemeConventional, 1), []string{"go"}, instr)
	_, two := runSMT(t, smtConfig(core.SchemeConventional, 2), []string{"go", "go"}, instr)
	if two.IPC() <= one.IPC()*1.15 {
		t.Errorf("aggregate IPC: 1 thread %.3f, 2 threads %.3f — expected a clear throughput gain",
			one.IPC(), two.IPC())
	}
}

// The paper's closing prediction (§5): with multithreading the register
// file is shared and pressure multiplies, so the virtual-physical scheme's
// advantage should grow with the thread count.
func TestSMTVPAdvantageGrowsWithThreads(t *testing.T) {
	const instr = 20000
	improvement := func(n int) float64 {
		names := make([]string, n)
		for i := range names {
			names[i] = "hydro2d" // register- and ILP-hungry, not MSHR-bound
		}
		_, conv := runSMT(t, smtConfig(core.SchemeConventional, n), names, instr)
		_, vp := runSMT(t, smtConfig(core.SchemeVPWriteback, n), names, instr)
		return vp.IPC() / conv.IPC()
	}
	one, two := improvement(1), improvement(2)
	if two <= one {
		t.Errorf("VP speedup: 1 thread %.3f, 2 threads %.3f — the paper predicts the advantage grows", one, two)
	}
}

func TestSMTFourThreads(t *testing.T) {
	const instr = 6000
	names := []string{"compress", "go", "li", "vortex"}
	sim, st := runSMT(t, smtConfig(core.SchemeVPWriteback, 4), names, instr)
	if st.Committed != 4*instr {
		t.Fatalf("committed %d of %d", st.Committed, 4*instr)
	}
	for i := 0; i < 4; i++ {
		if sim.ThreadCommitted(i) != instr {
			t.Errorf("thread %d committed %d", i, sim.ThreadCommitted(i))
		}
	}
}

func TestSMTRejectsUndersizedFile(t *testing.T) {
	cfg := smtConfig(core.SchemeVPWriteback, 2)
	cfg.Rename.PhysRegs = 64 // 2×32 architectural leaves nothing
	gens := smtGens(t, []string{"compress", "go"}, 100)
	if _, err := NewSMT(cfg, gens); err == nil {
		t.Fatal("undersized shared file must be rejected")
	}
	if _, err := NewSMT(smtConfig(core.SchemeConventional, 1), nil); err == nil {
		t.Fatal("zero traces must be rejected")
	}
}

func TestSMTThreadsDrainIndependently(t *testing.T) {
	// One short trace and one long trace: the machine must keep running
	// the long one after the short one drains.
	cfg := smtConfig(core.SchemeVPWriteback, 2)
	cfg.Debug = true
	gens := []trace.Generator{
		smtGens(t, []string{"compress"}, 2000)[0],
		smtGens(t, []string{"swim"}, 10000)[0],
	}
	sim, err := NewSMT(cfg, gens)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.ThreadCommitted(0) != 2000 || sim.ThreadCommitted(1) != 10000 {
		t.Errorf("per-thread commits = %d/%d", sim.ThreadCommitted(0), sim.ThreadCommitted(1))
	}
	if st.Committed != 12000 {
		t.Errorf("total = %d", st.Committed)
	}
}
