package pipeline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/synth"
	"repro/internal/trace"
)

// BenchmarkCoherencePoint is the allocation budget the CI bench ratchet
// pins: the MSI-coherent two-core sharing run, allocations reported.
// Steady-state hot-loop allocations are zero by construction
// (hotpathalloc, docs/LINTING.md); what remains is per-run setup, so
// allocs/op must stay flat as instruction counts grow.
func BenchmarkCoherencePoint(b *testing.B) {
	p, ok := synth.ByName("sharing")
	if !ok {
		b.Fatal("sharing preset missing")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mc, err := NewMulticore(MulticoreConfig{
			Cores:              2,
			Core:               DefaultConfig(),
			L2:                 mem.DefaultL2Config(),
			SharedAddressSpace: true,
			Coherence:          true,
		}, []trace.Generator{synth.New(p), synth.New(p)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mc.Run(50000); err != nil {
			b.Fatal(err)
		}
	}
}
