package pipeline

import "fmt"

// This file is the pluggable stage-policy and probe surface of the
// pipeline: the machine's behaviour at the fetch and issue stages is
// composed from small interfaces instead of hard-coded stage logic, and a
// Probe can observe the kernel's events cycle by cycle. The zero value of
// Policies reproduces the paper's machine exactly; the built-in
// alternatives (ICOUNT fetch for SMT, load-first and longest-latency-first
// issue selection) are registered by name so configurations, experiment
// options and CLI flags can refer to them without importing concrete
// types.

// Policies composes the pluggable per-stage behaviours of a Config. The
// zero value selects the paper's §4.1 machine everywhere: round-robin
// fetch (with one thread, the paper's front end), oldest-first issue
// selection, and no observation.
//
//vpr:cachekey
type Policies struct {
	// Fetch decides which hardware thread receives the front end's
	// bandwidth each cycle. nil selects round-robin.
	Fetch FetchPolicy
	// Issue ranks ready instructions for the issue stage's selection.
	// nil selects oldest-first.
	Issue IssueSelect
	// Probe, when non-nil, observes kernel events (see Probe). Probes
	// never change simulation results, so GoString excludes them from
	// the result-cache key (the engine bypasses cache reads for probed
	// runs instead).
	//
	//vpr:nocachekey pure observer; the engine bypasses the cache for probed runs
	Probe Probe
}

// GoString renders the policy selection canonically by name — it is what
// the engine's result-cache key hashes (via %#v on Config), so two
// configurations selecting the same named policies share cache entries
// regardless of which instances they hold. The probe is deliberately
// excluded: observers do not change simulation results (the engine
// instead bypasses cache reads for probed runs, so probes always see a
// real simulation).
func (p Policies) GoString() string {
	return fmt.Sprintf("pipeline.Policies{Fetch:%q, Issue:%q}",
		fetchPolicyName(p.Fetch), issueSelectName(p.Issue))
}

func fetchPolicyName(p FetchPolicy) string {
	if p == nil {
		return FetchRoundRobin
	}
	return p.Name()
}

func issueSelectName(p IssueSelect) string {
	if p == nil {
		return IssueOldestFirst
	}
	return p.Name()
}

// --- fetch policies ----------------------------------------------------------

// FetchCandidate describes one hardware thread able to fetch this cycle
// (trace not exhausted, front end not frozen on a mispredicted branch,
// fetch buffer not full).
type FetchCandidate struct {
	TID      int // hardware thread id
	InFlight int // reorder-buffer occupancy: dispatched, uncommitted
	Buffered int // fetched but not yet dispatched (fetch-buffer entries)
}

// FetchPolicy decides which hardware thread receives the whole fetch
// bandwidth each cycle — the classic SMT fetch-gating knob. With a single
// thread every policy degenerates to the paper's front end.
type FetchPolicy interface {
	// Name identifies the policy. It participates in the engine's
	// result-cache key, so two policies sharing a name must schedule
	// identically (the same contract as sim.Spec.GenID).
	Name() string
	// Pick returns the index into cands of the thread to fetch. cands is
	// never empty, is ordered by the kernel's per-cycle round-robin
	// rotation, is reused across cycles and must not be retained. An
	// out-of-range return fetches nothing this cycle.
	Pick(cycle int64, cands []FetchCandidate) int
}

// Registered fetch-policy names.
const (
	// FetchRoundRobin gives the bandwidth to the first fetchable thread
	// in rotation order — the default, and with one thread the paper's
	// front end.
	FetchRoundRobin = "round-robin"
	// FetchICount favours the fetchable thread with the fewest
	// instructions in flight (Tullsen et al., ISCA '96): threads that
	// drain fast fetch more, threads clogging the window fetch less.
	FetchICount = "icount"
)

type roundRobinFetch struct{}

func (roundRobinFetch) Name() string                         { return FetchRoundRobin }
func (roundRobinFetch) Pick(_ int64, _ []FetchCandidate) int { return 0 }

type icountFetch struct{}

func (icountFetch) Name() string { return FetchICount }

func (icountFetch) Pick(_ int64, cands []FetchCandidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].InFlight+cands[i].Buffered < cands[best].InFlight+cands[best].Buffered {
			best = i
		}
	}
	return best
}

// --- issue-select heuristics -------------------------------------------------

// IssueCandidate describes one ready instruction eligible for issue this
// cycle.
type IssueCandidate struct {
	Inum    int64 // instruction number; smaller = older
	Latency int   // execution latency (Table 1)
	IsLoad  bool
	IsStore bool
}

// IssueSelect ranks a thread's ready instructions for the issue stage:
// the kernel attempts candidates in the order Rank leaves them, under its
// usual width, register-file-port and functional-unit budgets, so a
// heuristic reorders who gets scarce resources but cannot violate
// structural limits.
type IssueSelect interface {
	// Name identifies the heuristic; the same cache-key contract as
	// FetchPolicy.Name applies.
	Name() string
	// Rank reorders cands in place. cands arrives oldest-first
	// (ascending Inum), is reused across cycles and must not be
	// retained or resized.
	Rank(cycle int64, cands []IssueCandidate)
}

// Registered issue-select names.
const (
	// IssueOldestFirst attempts ready instructions in program order —
	// the default, the paper's machine.
	IssueOldestFirst = "oldest-first"
	// IssueLoadFirst attempts ready loads before everything else
	// (program order within each group), modelling memory-level
	// parallelism greed: get misses into the cache early.
	IssueLoadFirst = "load-first"
	// IssueLongLatencyFirst attempts the longest-latency ready
	// instructions first (program order among equals), starting long
	// dependence chains as early as possible.
	IssueLongLatencyFirst = "long-latency-first"
)

type oldestFirstIssue struct{}

func (oldestFirstIssue) Name() string                     { return IssueOldestFirst }
func (oldestFirstIssue) Rank(_ int64, _ []IssueCandidate) {}

type loadFirstIssue struct{}

func (loadFirstIssue) Name() string { return IssueLoadFirst }

func (loadFirstIssue) Rank(_ int64, cands []IssueCandidate) {
	stableRank(cands, func(a, b IssueCandidate) bool { return a.IsLoad && !b.IsLoad })
}

type longLatencyFirstIssue struct{}

func (longLatencyFirstIssue) Name() string { return IssueLongLatencyFirst }

func (longLatencyFirstIssue) Rank(_ int64, cands []IssueCandidate) {
	stableRank(cands, func(a, b IssueCandidate) bool { return a.Latency > b.Latency })
}

// stableRank is an in-place stable insertion sort: candidate lists are
// short (bounded by the ready instructions of one thread in one cycle),
// and avoiding sort.SliceStable keeps the ranked issue path allocation-free.
func stableRank(cands []IssueCandidate, less func(a, b IssueCandidate) bool) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// --- probes ------------------------------------------------------------------

// Probe observes kernel events. Methods are invoked synchronously from
// the simulation loop with scalar arguments only — attaching a probe adds
// branch-and-call overhead but no allocations to the hot path. Events
// fire identically under both scheduling kernels.
//
// A probe attached to an Engine (engine.WithProbe / vpr.WithProbe) is
// shared by every simulation the engine runs and may be invoked from
// several goroutines at once when batches run in parallel; such probes
// must be safe for concurrent use. Embed BaseProbe to implement only the
// events of interest.
type Probe interface {
	// CycleStart fires at the top of every simulated cycle.
	CycleStart(cycle int64)
	// Dispatched fires when an instruction is renamed into the window.
	Dispatched(cycle int64, tid int, inum int64)
	// Issued fires when an instruction is selected for execution
	// (re-executions fire again).
	Issued(cycle int64, tid int, inum int64)
	// Completed fires when an instruction finishes write-back.
	Completed(cycle int64, tid int, inum int64)
	// Committed fires when an instruction retires, in machine order.
	Committed(cycle int64, tid int, inum int64)
	// Squashed fires when a memory-order violation flushes a thread
	// from fromInum to its window tail (flushed instructions total).
	Squashed(cycle int64, tid int, fromInum int64, flushed int)
	// AllocRefused fires each cycle the renamer refuses a physical
	// register: at issue (VP issue allocation; one event per blocked
	// cycle, mirroring the IssueBlocks statistic) or at write-back (VP
	// write-back allocation; the instruction re-executes).
	AllocRefused(cycle int64, tid int, inum int64, atIssue bool)
}

// BaseProbe is a Probe whose every method is a no-op; embed it and
// override the events of interest.
type BaseProbe struct{}

// CycleStart implements Probe.
func (BaseProbe) CycleStart(int64) {}

// Dispatched implements Probe.
func (BaseProbe) Dispatched(int64, int, int64) {}

// Issued implements Probe.
func (BaseProbe) Issued(int64, int, int64) {}

// Completed implements Probe.
func (BaseProbe) Completed(int64, int, int64) {}

// Committed implements Probe.
func (BaseProbe) Committed(int64, int, int64) {}

// Squashed implements Probe.
func (BaseProbe) Squashed(int64, int, int64, int) {}

// AllocRefused implements Probe.
func (BaseProbe) AllocRefused(int64, int, int64, bool) {}

var _ Probe = BaseProbe{}

// --- policy registry ---------------------------------------------------------

// PolicyInfo describes one registered policy for listings and CLI help.
type PolicyInfo struct {
	Name        string
	Description string
}

//vpr:registry fetch-policies
var fetchRegistry = []struct {
	info PolicyInfo
	pol  FetchPolicy
}{
	{PolicyInfo{FetchRoundRobin, "first fetchable thread in rotation order (default; the paper's front end)"}, roundRobinFetch{}},
	{PolicyInfo{FetchICount, "fewest in-flight instructions first (Tullsen-style SMT fetch gating)"}, icountFetch{}},
}

//vpr:registry issue-policies
var issueRegistry = []struct {
	info PolicyInfo
	sel  IssueSelect
}{
	{PolicyInfo{IssueOldestFirst, "ready instructions in program order (default; the paper's machine)"}, oldestFirstIssue{}},
	{PolicyInfo{IssueLoadFirst, "ready loads before everything else (memory-level parallelism greed)"}, loadFirstIssue{}},
	{PolicyInfo{IssueLongLatencyFirst, "longest execution latency first (start long chains early)"}, longLatencyFirstIssue{}},
}

// FetchPolicies lists the registered fetch policies, default first.
//
//vpr:lookup fetch-policies
func FetchPolicies() []PolicyInfo {
	out := make([]PolicyInfo, len(fetchRegistry))
	for i, e := range fetchRegistry {
		out[i] = e.info
	}
	return out
}

// FetchPolicyByName returns the registered fetch policy.
//
//vpr:lookup fetch-policies
func FetchPolicyByName(name string) (FetchPolicy, bool) {
	for _, e := range fetchRegistry {
		if e.info.Name == name {
			return e.pol, true
		}
	}
	return nil, false
}

// IssueSelects lists the registered issue-select heuristics, default first.
//
//vpr:lookup issue-policies
func IssueSelects() []PolicyInfo {
	out := make([]PolicyInfo, len(issueRegistry))
	for i, e := range issueRegistry {
		out[i] = e.info
	}
	return out
}

// IssueSelectByName returns the registered issue-select heuristic.
//
//vpr:lookup issue-policies
func IssueSelectByName(name string) (IssueSelect, bool) {
	for _, e := range issueRegistry {
		if e.info.Name == name {
			return e.sel, true
		}
	}
	return nil, false
}
