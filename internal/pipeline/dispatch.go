package pipeline

// dispatchStage decodes and renames fetched instructions in program order,
// up to DecodeWidth per cycle across threads, allocating a reorder-buffer
// entry and an instruction-queue slot for each. A conventional renamer out
// of registers, a full ROB or a full IQ stalls the thread.
//
// Event kernel: dispatch is where an instruction enters the scheduling
// index — operands that are not ready subscribe to their tag's wakeup
// list, and instructions that are born ready go straight onto the issue
// queue. Each dispatch starts a fresh robEntry generation, invalidating
// any scheduler references left over from a squashed occupancy of the same
// instruction number.
func (s *Sim) dispatchStage(now int64) error {
	budget := s.cfg.DecodeWidth
	for _, th := range s.threadOrder() {
		for budget > 0 && th.fbN > 0 {
			if th.robCount == len(th.rob) {
				s.stats.ROBStalls++
				break
			}
			if s.iqCount == s.cfg.IQSize {
				s.stats.IQStalls++
				break
			}
			item := *th.fbFront()
			renamed, ok := th.ren.Rename(item.rec.Seq, item.rec.Inst)
			if !ok {
				break // conventional scheme out of registers; retry next cycle
			}
			th.fbPopFront()

			slot := (th.robHead + th.robCount) % len(th.rob)
			info := item.rec.Inst.Op.Info()
			th.rob[slot] = robEntry{
				inum:           item.rec.Seq,
				rec:            item.rec,
				ren:            renamed,
				gen:            s.nextGen(),
				st:             stWaiting,
				inIQ:           true,
				src1Ready:      !renamed.Src1.Present || renamed.Src1.Zero || renamed.Src1.Ready,
				src2Ready:      !renamed.Src2.Present || renamed.Src2.Zero || renamed.Src2.Ready,
				completeAt:     timeUnset,
				aguDoneAt:      timeUnset,
				allocBlockedAt: timeUnset,
				isLoad:         info.IsLoad,
				isStore:        info.IsStore,
				valueFrom:      valueNone,
				isBranch:       info.IsBranch,
				isCond:         info.IsBranch && !info.IsUncond,
				mispred:        item.mispred,
			}
			th.robCount++
			s.iqCount++
			budget--
			if s.probe != nil {
				s.probe.Dispatched(now, th.id, item.rec.Seq)
			}
			if info.IsStore {
				th.sqPush(sqEntry{inum: item.rec.Seq})
			}
			if !s.scan {
				e := &th.rob[slot]
				s.registerWaiters(th, e)
				if e.ready() {
					s.enqueueReady(th, e)
				}
			}
		}
	}
	return nil
}
