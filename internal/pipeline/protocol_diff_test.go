package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// The cross-protocol differential: coherence protocols trade traffic for
// latency, so cycle counts may differ — but every selection must commit
// exactly the same instructions in the same per-core order, with every
// operand value checked against the trace (ValueCheck stays on). A
// protocol that corrupts, loses or duplicates work cannot pass; one that
// deadlocks times out.

// protoCombos is the selection grid the differentials sweep: every
// protocol over the full map, plus the pointer-limited variants that
// force overflow broadcasts into the same workload.
var protoCombos = []struct{ proto, dir string }{
	{"msi", "fullmap"},
	{"mesi", "fullmap"},
	{"moesi", "fullmap"},
	{"mesi", "limited:2"},
	{"moesi", "limited:4"},
}

func protoMCConfig(cores int, proto, dir string) MulticoreConfig {
	return MulticoreConfig{
		Cores: cores, Core: DefaultConfig(), L2: mem.DefaultL2Config(),
		SharedAddressSpace: true, Coherence: true,
		Protocol: proto, Directory: dir,
	}
}

// TestCrossProtocolCommittedStreamsIdentical runs the pinned sharing
// workload at 1–8 cores under every protocol/directory selection and
// requires bit-identical per-core commit streams across all of them.
func TestCrossProtocolCommittedStreamsIdentical(t *testing.T) {
	cases := []struct {
		cores int
		n     int64
	}{
		{1, 6000}, {2, 6000}, {4, 3000}, {8, 1500},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("cores%d", c.cores), func(t *testing.T) {
			var want [][]int64
			for i, sel := range protoCombos {
				res := runMulticoreMode(t, protoMCConfig(c.cores, sel.proto, sel.dir),
					StepLockstep, goldenGens(c.cores, c.n), 0)
				if res.agg.Committed != int64(c.cores)*c.n {
					t.Errorf("%s/%s: committed %d instructions, want %d",
						sel.proto, sel.dir, res.agg.Committed, int64(c.cores)*c.n)
				}
				if i == 0 {
					want = res.streams
					continue
				}
				for core := range res.streams {
					if len(res.streams[core]) != len(want[core]) {
						t.Errorf("%s/%s: core %d committed %d instructions, msi committed %d",
							sel.proto, sel.dir, core, len(res.streams[core]), len(want[core]))
						continue
					}
					for j := range res.streams[core] {
						if res.streams[core][j] != want[core][j] {
							t.Errorf("%s/%s: core %d commit stream diverges from msi at position %d (%d != %d)",
								sel.proto, sel.dir, core, j, res.streams[core][j], want[core][j])
							break
						}
					}
				}
			}
		})
	}
}

// TestProtocolParallelDeterminism extends the PR-7/PR-8 stepper contract
// to the new protocols: for each selection, every parallel step mode must
// reproduce the lockstep oracle bit for bit — aggregate statistics,
// per-core statistics and commit streams. MSI over the full map is
// already pinned by the existing stepper differentials; this covers the
// new machinery (silent upgrades, owner forwards, broadcast rounds)
// under concurrent stepping. Run with -race in CI.
func TestProtocolParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("stepper differential sweep is slow")
	}
	for _, sel := range []struct {
		proto, dir string
		cores      int
		n          int64
	}{
		{"mesi", "fullmap", 2, 4000},
		{"mesi", "limited:2", 4, 2000},
		{"moesi", "fullmap", 2, 4000},
		{"moesi", "limited:4", 8, 1000},
	} {
		name := fmt.Sprintf("%s-%s-%dcore", sel.proto, sel.dir, sel.cores)
		diffSteppers(t, name, protoMCConfig(sel.cores, sel.proto, sel.dir),
			goldenGens(sel.cores, sel.n), 0)
	}
}

// TestProtocolTrafficSignatures checks each protocol produces the traffic
// shape it exists for, on the same workload the goldens pin: MESI lives
// off silent E→M upgrades, MOESI converts read-triggered write-back
// forwards into cache-to-cache owner forwards and therefore writes back
// to the L2 strictly less than MSI.
func TestProtocolTrafficSignatures(t *testing.T) {
	run := func(proto, dir string) Stats {
		return runMulticoreMode(t, protoMCConfig(4, proto, dir),
			StepLockstep, goldenGens(4, 3000), 0).agg
	}
	msi := run("msi", "fullmap")
	mesi := run("mesi", "fullmap")
	moesi := run("moesi", "fullmap")

	if msi.SilentUpgrades != 0 || msi.L2OwnerForwards != 0 || msi.L2DirOverflows != 0 {
		t.Errorf("msi must not use the new machinery: silent=%d own=%d overflow=%d",
			msi.SilentUpgrades, msi.L2OwnerForwards, msi.L2DirOverflows)
	}
	if mesi.SilentUpgrades == 0 {
		t.Error("mesi never upgraded silently on a sharing workload")
	}
	if mesi.L2OwnerForwards != 0 {
		t.Errorf("mesi must not owner-forward, counted %d", mesi.L2OwnerForwards)
	}
	if moesi.L2OwnerForwards == 0 {
		t.Error("moesi never forwarded a dirty line cache-to-cache")
	}
	if moesi.L2WritebackForwards >= msi.L2WritebackForwards {
		t.Errorf("moesi L2 write-back forwards (%d) must be strictly below msi's (%d) — Owned exists to avoid them",
			moesi.L2WritebackForwards, msi.L2WritebackForwards)
	}
	// The limited-pointer directory must lose precision under 4 sharing
	// cores and still complete (streams already pinned above).
	lim := run("mesi", "limited:2")
	if lim.L2DirOverflows == 0 || lim.L2DirBroadcasts == 0 {
		t.Errorf("limited:2 under 4 sharing cores never overflowed (overflows=%d broadcasts=%d)",
			lim.L2DirOverflows, lim.L2DirBroadcasts)
	}
}
