//go:build scanoracle

package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// commitRec is one commit observed in machine order.
type commitRec struct {
	tid  int
	inum int64
}

// runKernel executes one configuration over the given generators — on the
// scan reference kernel when scan is set — and returns the architectural
// statistics, the per-thread committed counts and the machine-order commit
// stream.
func runKernel(t *testing.T, cfg Config, gens []trace.Generator, scan bool) (Stats, []int64, []commitRec) {
	t.Helper()
	mk := NewSMT
	if scan {
		mk = newScanSMT
	}
	sim, err := mk(cfg, gens)
	if err != nil {
		t.Fatal(err)
	}
	var stream []commitRec
	sim.onCommit = func(tid int, inum int64) {
		stream = append(stream, commitRec{tid: tid, inum: inum})
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatalf("%v\nstats: %s", err, st)
	}
	if !sim.Done() {
		t.Fatal("simulator not drained")
	}
	var perThread []int64
	for i := 0; i < sim.Threads(); i++ {
		perThread = append(perThread, sim.ThreadCommitted(i))
	}
	return st.Arch(), perThread, stream
}

// diffKernels runs the event-indexed kernel and the scan reference kernel
// on identical inputs and requires cycle-exact equality: the full
// architectural statistics block, per-thread committed counts and the
// machine-order committed-instruction stream must match.
func diffKernels(t *testing.T, name string, cfg Config, mkGens func() []trace.Generator) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		evStats, evPer, evStream := runKernel(t, cfg, mkGens(), false)
		scStats, scPer, scStream := runKernel(t, cfg, mkGens(), true)
		if evStats != scStats {
			t.Errorf("stats diverge:\nevent: %+v\nscan:  %+v", evStats, scStats)
		}
		if len(evPer) != len(scPer) {
			t.Fatalf("thread counts diverge: %d vs %d", len(evPer), len(scPer))
		}
		for i := range evPer {
			if evPer[i] != scPer[i] {
				t.Errorf("thread %d committed %d (event) vs %d (scan)", i, evPer[i], scPer[i])
			}
		}
		if len(evStream) != len(scStream) {
			t.Fatalf("commit streams diverge in length: %d vs %d", len(evStream), len(scStream))
		}
		for i := range evStream {
			if evStream[i] != scStream[i] {
				t.Fatalf("commit streams diverge at %d: %+v (event) vs %+v (scan)", i, evStream[i], scStream[i])
			}
		}
	})
}

// diffConfigs are the pressure corners the differential sweep runs per
// workload: all three schemes, small and default register files, minimum
// and maximum NRR, both disambiguation policies.
func diffConfigs() []Config {
	var out []Config
	for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
		for _, regs := range []int{40, 64} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Rename.PhysRegs = regs
			maxNRR := cfg.Rename.MaxNRR()
			for _, nrr := range []int{1, maxNRR} {
				c := cfg
				c.Rename.NRRInt, c.Rename.NRRFP = nrr, nrr
				out = append(out, c)
				if scheme == core.SchemeConventional {
					break // NRR is meaningless for the baseline
				}
			}
		}
	}
	conservative := DefaultConfig()
	conservative.Disambiguation = DisambConservative
	out = append(out, conservative)
	// Degenerate cache timing: a 0-cycle hit latency makes load
	// completions due "now" at the execute stage, exercising the event
	// wheel's past-due coercion against the scan kernel's next-cycle
	// pickup.
	zeroHit := DefaultConfig()
	zeroHit.Cache.HitLatency = 0
	zeroHit.Scheme = core.SchemeVPWriteback
	out = append(out, zeroHit)
	return out
}

// TestDifferentialEventVsScan sweeps randomized synthetic workloads
// through both kernels at every pressure corner. Synthetic traces carry no
// golden values, so this test is pure timing equivalence — any divergence
// in wakeup, completion, port arbitration or functional-unit scheduling
// shows up as a statistics or commit-stream mismatch.
func TestDifferentialEventVsScan(t *testing.T) {
	seeds := []int64{11, 22, 33}
	instr := int64(12000)
	if testing.Short() {
		seeds = seeds[:1]
		instr = 6000
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		params := randSynthParams(rng)
		for i, cfg := range diffConfigs() {
			name := fmt.Sprintf("seed%d/cfg%d-%s-p%d-nrr%d-%s", seed, i, cfg.Scheme,
				cfg.Rename.PhysRegs, cfg.Rename.NRRInt, cfg.Disambiguation)
			p := params
			diffKernels(t, name, cfg, func() []trace.Generator {
				return []trace.Generator{trace.Take(synth.New(p), instr)}
			})
		}
	}
}

// TestDifferentialEventVsScanSMT repeats the comparison with multiple
// hardware threads sharing the physical register files, cache and
// functional units: rotation-order budget sharing, shared-pool contention
// and per-thread recovery must stay cycle-identical.
func TestDifferentialEventVsScanSMT(t *testing.T) {
	instr := int64(8000)
	if testing.Short() {
		instr = 4000
	}
	for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
		for _, threads := range []int{2, 4} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Rename.PhysRegs = 32*threads + 32
			nrr := 32 / threads
			cfg.Rename.NRRInt, cfg.Rename.NRRFP = nrr, nrr
			rng := rand.New(rand.NewSource(int64(100*threads) + int64(scheme)))
			seeds := make([]int64, threads)
			paramsList := make([]synth.Params, threads)
			for i := range paramsList {
				paramsList[i] = randSynthParams(rng)
				seeds[i] = paramsList[i].Seed
			}
			name := fmt.Sprintf("%s-%dT", scheme, threads)
			diffKernels(t, name, cfg, func() []trace.Generator {
				gens := make([]trace.Generator, threads)
				for i, p := range paramsList {
					gens[i] = trace.Take(synth.New(p), instr)
				}
				return gens
			})
		}
	}
}

// TestDifferentialGoldenWorkloads runs the differential comparison on
// emulator-backed catalog workloads (with golden value checks on in both
// kernels), covering the value-carrying path the synthetic sweep cannot.
func TestDifferentialGoldenWorkloads(t *testing.T) {
	names := []string{"compress", "swim", "go"}
	if testing.Short() {
		names = names[:1]
	}
	for _, wl := range names {
		for _, scheme := range []core.Scheme{core.SchemeConventional, core.SchemeVPWriteback, core.SchemeVPIssue} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Rename.PhysRegs = 48
			cfg.Rename.NRRInt, cfg.Rename.NRRFP = 8, 8
			cfg.ValueCheck = true
			diffKernels(t, fmt.Sprintf("%s-%s", wl, scheme), cfg, func() []trace.Generator {
				gen, err := workloads.MustByName(wl).NewGen()
				if err != nil {
					t.Fatal(err)
				}
				return []trace.Generator{trace.Take(gen, 10000)}
			})
		}
	}
}
