package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/mem"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestMulticoreSingleCoreByteIdentical is the acceptance criterion: a
// 1-core Multicore with the shared L2 disabled is the paper's machine,
// and must produce byte-identical statistics to the plain Sim on the same
// trace.
func TestMulticoreSingleCoreByteIdentical(t *testing.T) {
	prog := randProgram(rand.New(rand.NewSource(7)), 60, 40)
	cfg := DefaultConfig()
	cfg.ValueCheck = true

	gen, err := emu.NewTraceGen(prog)
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	gen2, err := emu.NewTraceGen(prog)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMulticore(MulticoreConfig{Cores: 1, Core: cfg}, []trace.Generator{gen2})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := mc.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Arch() != want.Arch() {
		t.Errorf("1-core Multicore diverges from Sim:\n mc  %+v\n sim %+v", agg.Arch(), want.Arch())
	}
	if core := mc.CoreStats(0); core.Arch() != want.Arch() {
		t.Errorf("core-0 stats diverge from Sim:\n mc  %+v\n sim %+v", core.Arch(), want.Arch())
	}
	if !mc.Done() {
		t.Error("multicore not drained")
	}
}

// TestMulticoreMatchesPrivateL2Mode: the internal/mem single-core path —
// an L1 over a 1-bank BankedL2 with the bank bus disabled — is
// cycle-exact with the old cache.Config L2Enabled tag-array mode it
// subsumes, across randomized synthetic workloads.
func TestMulticoreMatchesPrivateL2Mode(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, params := range []synth.Params{synth.Defaults(), synth.FPStream()} {
			params.Seed = seed
			name := fmt.Sprintf("seed%d-miss%.2f", seed, params.MissRatio)
			t.Run(name, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.ValueCheck = false // synthetic traces carry no values

				oldCfg := cfg
				oldCfg.Cache.L2Enabled = true
				oldCfg.Cache.L2SizeBytes = 64 * 1024
				oldCfg.Cache.L2MissPenalty = 100
				oldSim, err := New(oldCfg, trace.Take(synth.New(params), 30_000))
				if err != nil {
					t.Fatal(err)
				}
				want, err := oldSim.Run(0)
				if err != nil {
					t.Fatal(err)
				}

				mc, err := NewMulticore(MulticoreConfig{
					Cores: 1,
					Core:  cfg,
					L2: mem.L2Config{
						Enabled:       true,
						SizeBytes:     64 * 1024,
						Banks:         1,
						HitPenalty:    cfg.Cache.MissPenalty,
						MissPenalty:   100,
						BankBusCycles: 0,
					},
				}, []trace.Generator{trace.Take(synth.New(params), 30_000)})
				if err != nil {
					t.Fatal(err)
				}
				got, err := mc.Run(0)
				if err != nil {
					t.Fatal(err)
				}
				if got.Arch() != want.Arch() {
					t.Errorf("mem path diverges from L2Enabled mode:\n mem %+v\n old %+v", got.Arch(), want.Arch())
				}
			})
		}
	}
}

// TestMulticoreDeterministic: a shared-L2 multi-core run is bit-identical
// run to run — the lockstep stepping order is the only ordering.
func TestMulticoreDeterministic(t *testing.T) {
	run := func() Stats {
		t.Helper()
		cfg := DefaultConfig()
		cfg.ValueCheck = false
		gens := make([]trace.Generator, 3)
		for i := range gens {
			p := synth.Defaults()
			p.Seed = int64(10 + i)
			gens[i] = trace.Take(synth.New(p), 10_000)
		}
		mc, err := NewMulticore(MulticoreConfig{Cores: 3, Core: cfg, L2: mem.DefaultL2Config()}, gens)
		if err != nil {
			t.Fatal(err)
		}
		st, err := mc.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Arch() != b.Arch() {
		t.Errorf("two identical multi-core runs differ:\n%+v\n%+v", a.Arch(), b.Arch())
	}
	if a.Committed != 30_000 {
		t.Errorf("committed %d, want 30000 across 3 cores", a.Committed)
	}
	if a.L2Hits+a.L2Misses == 0 {
		t.Error("shared L2 saw no fetches")
	}
}

// TestMulticoreSharedL2Contention: cores contending for the same banks
// pay for it — with a single slow bank, the same work takes longer than
// with many fast banks, and the conflicts are counted.
func TestMulticoreSharedL2Contention(t *testing.T) {
	run := func(banks, busCycles int) Stats {
		t.Helper()
		cfg := DefaultConfig()
		cfg.ValueCheck = false
		gens := make([]trace.Generator, 4)
		for i := range gens {
			p := synth.Defaults()
			p.MissRatio = 0.5 // miss-heavy: the L2 is on the critical path
			p.Seed = int64(20 + i)
			gens[i] = trace.Take(synth.New(p), 8_000)
		}
		l2 := mem.DefaultL2Config()
		l2.Banks = banks
		l2.BankBusCycles = busCycles
		mc, err := NewMulticore(MulticoreConfig{Cores: 4, Core: cfg, L2: l2}, gens)
		if err != nil {
			t.Fatal(err)
		}
		st, err := mc.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	contended := run(1, 64)
	wide := run(8, 1)
	if contended.L2Conflicts == 0 {
		t.Fatal("single-bank run recorded no bank conflicts")
	}
	if contended.Cycles <= wide.Cycles {
		t.Errorf("bank contention must cost cycles: 1×slow bank %d cycles vs 8×fast %d",
			contended.Cycles, wide.Cycles)
	}
}

// TestMulticoreSharedAddressSpace: with one address space, cores running
// the same access pattern share L2 lines — in-flight refills merge across
// cores and later fetches hit — where the namespaced default sees only
// cold misses.
func TestMulticoreSharedAddressSpace(t *testing.T) {
	run := func(shared bool) Stats {
		t.Helper()
		cfg := DefaultConfig()
		cfg.ValueCheck = false
		gens := make([]trace.Generator, 2)
		for i := range gens {
			p := synth.Defaults()
			p.Seed = 5 // identical streams on both cores
			gens[i] = trace.Take(synth.New(p), 8_000)
		}
		mc, err := NewMulticore(MulticoreConfig{
			Cores: 2, Core: cfg, L2: mem.DefaultL2Config(), SharedAddressSpace: shared,
		}, gens)
		if err != nil {
			t.Fatal(err)
		}
		st, err := mc.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	private, sharedSt := run(false), run(true)
	if private.L2Merges != 0 {
		t.Errorf("namespaced cores merged %d refills, want 0", private.L2Merges)
	}
	if sharedSt.L2Merges == 0 && sharedSt.L2Hits <= private.L2Hits {
		t.Errorf("shared address space shows no sharing: merges=%d hits=%d (private hits=%d)",
			sharedSt.L2Merges, sharedSt.L2Hits, private.L2Hits)
	}
}

// TestMulticoreConfigValidation: bad machines are rejected up front.
func TestMulticoreConfigValidation(t *testing.T) {
	gen := func() trace.Generator { return trace.Take(synth.New(synth.Defaults()), 100) }
	if _, err := NewMulticore(MulticoreConfig{Cores: 0, Core: DefaultConfig()}, nil); err == nil {
		t.Error("zero cores must be rejected")
	}
	if _, err := NewMulticore(MulticoreConfig{Cores: 2, Core: DefaultConfig()}, []trace.Generator{gen()}); err == nil {
		t.Error("trace/core count mismatch must be rejected")
	}
	bad := DefaultConfig()
	bad.Cache.L2Enabled = true
	bad.Cache.L2SizeBytes = 64 * 1024
	bad.Cache.L2MissPenalty = 100
	if _, err := NewMulticore(MulticoreConfig{Cores: 1, Core: bad, L2: mem.DefaultL2Config()},
		[]trace.Generator{gen()}); err == nil {
		t.Error("private L2 approximation + shared L2 must be rejected")
	}
}
