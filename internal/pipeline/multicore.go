package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/trace"
)

// MulticoreConfig describes a multi-core machine: N identical cores, each
// a full single-thread pipeline (Core), optionally sharing a banked
// finite L2 (L2.Enabled). With the shared L2 disabled every core keeps
// its private Core.Cache hierarchy — with one core that is exactly the
// paper's machine, and Multicore produces byte-identical statistics to
// Sim.
//
//vpr:cachekey
type MulticoreConfig struct {
	Cores int
	Core  Config
	L2    mem.L2Config

	// SharedAddressSpace puts every core in one address space instead of
	// namespacing them (mem.CoreAddrShift): cores touching the same
	// addresses then share L2 lines and merge into each other's in-flight
	// refills — the shared-data scenario. The default (false) models
	// private memories: no aliasing, no sharing.
	SharedAddressSpace bool

	// Step selects how the runner advances the cores each cycle:
	// StepLockstep (also the zero value) is the serial oracle loop,
	// StepParallel and StepSkew(W) run one goroutine per core under the
	// conservative memory gate (parallel.go). All modes produce
	// bit-identical statistics and commit streams; see ParseStepMode for
	// the accepted spellings.
	Step StepMode

	// Coherence activates the directory over the shared L2: stores
	// invalidate remote L1 copies through an ownership/upgrade path,
	// remote dirty lines are forwarded through the bank bus, and L2
	// evictions back-invalidate their sharers (inclusive hierarchy). Off
	// (the default), runs are byte-identical to the coherence-free
	// hierarchy — no directory state exists and no invalidation traffic
	// is modelled, exactly the PR-4 behaviour. Requires L2.Enabled. The
	// traffic appears in Stats as L2Invalidations /
	// L2BackInvalidations / L2Upgrades / L2WritebackForwards; the
	// sharing-driven L2Invalidations are only nonzero when cores actually
	// share lines (SharedAddressSpace), while upgrades and inclusion
	// back-invalidations occur on namespaced runs too.
	Coherence bool

	// Protocol selects the registered coherence protocol ("msi", "mesi",
	// "moesi"; "" = msi, which is golden-pinned byte-identical to the
	// hardwired pre-refactor directory). Only meaningful — and only
	// accepted — with Coherence set.
	Protocol string

	// Directory selects the registered sharer representation ("fullmap",
	// "limited", "limited:N"; "" = fullmap). The full map is exact but
	// capped at 64 cores; limited pointers degrade overflowing sets to
	// broadcast and have no core cap. Only accepted with Coherence set.
	Directory string
}

// DefaultMulticoreConfig is n copies of the paper's core over the default
// banked shared L2.
func DefaultMulticoreConfig(n int) MulticoreConfig {
	return MulticoreConfig{Cores: n, Core: DefaultConfig(), L2: mem.DefaultL2Config()}
}

// Validate rejects configurations the runner cannot honour.
func (c MulticoreConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("pipeline: need at least one core, have %d", c.Cores)
	}
	if c.L2.Enabled && c.Core.Cache.L2Enabled {
		return fmt.Errorf("pipeline: shared L2 and the private cache.Config L2 approximation are mutually exclusive")
	}
	if c.Coherence && !c.L2.Enabled {
		return fmt.Errorf("pipeline: coherence needs the shared L2 (L2.Enabled)")
	}
	if !c.Coherence && (c.Protocol != "" || c.Directory != "") {
		return fmt.Errorf("pipeline: Protocol/Directory selections need Coherence enabled")
	}
	if _, err := mem.ProtocolByName(c.Protocol); err != nil {
		return err
	}
	if err := mem.ParseDirectoryKind(c.Directory); err != nil {
		return err
	}
	plan, err := c.Step.plan()
	if err != nil {
		return err
	}
	if plan.concurrent && c.Core.Policies.Probe != nil {
		return fmt.Errorf("pipeline: probes observe every core through one shared callback and need the serial oracle; use Step=%q", StepLockstep)
	}
	return c.Core.Validate()
}

// Multicore steps N single-thread Sims in cycle-lockstep against a shared
// memory hierarchy. Within a cycle the cores run in index order, which —
// together with the lockstep — makes the shared L2 state, and therefore
// every statistic, deterministic and independent of host parallelism.
// (Engine-level sharding across host threads happens between independent
// Multicore runs, never inside one.)
type Multicore struct {
	cfg   MulticoreConfig
	cores []*Sim
	sys   *mem.System // nil when the shared L2 is disabled
	step  stepPlan    // cfg.Step parsed once (Validate already accepted it)

	// Live-core tracking: drained[i] is set the first time core i reports
	// Done, decrementing liveCount, so Done() is O(1) once everything has
	// drained and the run loops never rescan finished cores. All three
	// fields belong to the serial control plane — the stepper goroutines
	// must never reach them (sharedguard enforces it).
	//
	//vpr:coreprivate
	drained []bool
	//vpr:coreprivate
	liveCount int
	// liveBuf is reused index scratch for the serial run loop.
	//
	//vpr:coreprivate
	liveBuf []int

	//vpr:coreprivate
	wallNanos int64

	// parSync accumulates the parallel stepper's wait-ladder counters
	// (folded in by runParallel after its goroutines join; always zero
	// under the lockstep oracle). Serial control plane, like wallNanos.
	//
	//vpr:coreprivate
	parSync waitStats
}

// NewMulticore builds the machine, one trace generator per core.
func NewMulticore(cfg MulticoreConfig, gens []trace.Generator) (*Multicore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gens) != cfg.Cores {
		return nil, fmt.Errorf("pipeline: %d cores need %d traces, have %d", cfg.Cores, cfg.Cores, len(gens))
	}
	m := &Multicore{cfg: cfg}
	m.step, _ = cfg.Step.plan() // Validate already vetted it
	m.drained = make([]bool, cfg.Cores)
	m.liveCount = cfg.Cores
	m.liveBuf = make([]int, 0, cfg.Cores)
	if cfg.L2.Enabled {
		sys, err := mem.NewSystem(mem.L1FromCacheConfig(cfg.Core.Cache), cfg.L2, cfg.Cores,
			cfg.SharedAddressSpace, mem.CoherenceConfig{
				Enabled:   cfg.Coherence,
				Protocol:  cfg.Protocol,
				Directory: cfg.Directory,
			})
		if err != nil {
			return nil, err
		}
		sys.EnableStrictCoreOrder()
		m.sys = sys
	}
	for i := 0; i < cfg.Cores; i++ {
		var port Memory
		if m.sys != nil {
			port = m.sys.Port(i)
		} else {
			port = mem.NewSingle(cache.New(cfg.Core.Cache))
		}
		core, err := newSMTMem(cfg.Core, []trace.Generator{gens[i]}, false, port)
		if err != nil {
			return nil, fmt.Errorf("pipeline: core %d: %w", i, err)
		}
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// Cores returns the number of cores.
func (m *Multicore) Cores() int { return len(m.cores) }

// Core exposes one core's simulator (probes, renamer statistics).
func (m *Multicore) Core(i int) *Sim { return m.cores[i] }

// System exposes the shared memory hierarchy (nil when the shared L2 is
// disabled).
func (m *Multicore) System() *mem.System { return m.sys }

// noteDrained marks core i as drained exactly once, maintaining the
// live-core count.
func (m *Multicore) noteDrained(i int) {
	if !m.drained[i] {
		m.drained[i] = true
		m.liveCount--
	}
}

// Done reports whether every core has drained its trace. Once every core
// has been seen drained the answer is a counter read; until then only the
// cores not yet marked are consulted (draining is irreversible).
func (m *Multicore) Done() bool {
	if m.liveCount == 0 {
		return true
	}
	for i, c := range m.cores {
		if m.drained[i] {
			continue
		}
		if !c.Done() {
			return false
		}
		m.noteDrained(i)
	}
	return m.liveCount == 0
}

// CoreStats snapshots one core's statistics (local L1 counters; the
// shared L2's appear once, in Aggregate).
func (m *Multicore) CoreStats(i int) Stats { return m.cores[i].Stats() }

// Run advances every core until all traces drain or each core commits
// maxCommitsPerCore instructions, and returns the aggregate statistics.
func (m *Multicore) Run(maxCommitsPerCore int64) (Stats, error) {
	return m.RunContext(context.Background(), maxCommitsPerCore)
}

// RunContext is Run under a context: cancellation stops the stepper
// between cycles and surfaces ctx.Err().
//
//vpr:wallclock host-throughput accounting only; never feeds simulated state
func (m *Multicore) RunContext(ctx context.Context, maxCommitsPerCore int64) (Stats, error) {
	start := time.Now()
	var err error
	if m.step.concurrent {
		err = m.runParallel(ctx, maxCommitsPerCore)
	} else {
		err = m.runLoop(ctx, maxCommitsPerCore)
	}
	m.wallNanos += time.Since(start).Nanoseconds()
	return m.Aggregate(), err
}

//vpr:hotpath
func (m *Multicore) runLoop(ctx context.Context, maxCommitsPerCore int64) error {
	// live holds the indices of the cores still stepping; a core leaves
	// the moment it drains or hits its commit cap and is never rescanned.
	// In-place compaction preserves index order, which the determinism
	// contract fixes as the in-cycle order of shared-memory interactions.
	live := m.liveBuf[:cap(m.liveBuf)]
	n := 0
	for i, c := range m.cores {
		if c.Done() {
			m.noteDrained(i)
			continue
		}
		if maxCommitsPerCore > 0 && c.stats.Committed >= maxCommitsPerCore {
			continue
		}
		live[n] = i
		n++
	}
	live = live[:n]
	sinceCheck := 0
	for len(live) > 0 {
		if sinceCheck++; sinceCheck >= ctxCheckCycles {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		w := 0
		for _, i := range live {
			c := m.cores[i]
			if err := c.Step(); err != nil {
				//vpr:allowalloc error path: the failed run allocates once and stops
				return fmt.Errorf("pipeline: core %d: %w", i, err)
			}
			if c.Done() {
				m.noteDrained(i)
				continue
			}
			if maxCommitsPerCore > 0 && c.stats.Committed >= maxCommitsPerCore {
				continue
			}
			live[w] = i
			w++
		}
		live = live[:w]
	}
	return nil
}

// Aggregate sums the per-core statistics: counters add, cycles and peak
// occupancies take the maximum, and the shared L2's counters are folded
// in exactly once. Throughput fields reflect the lockstep loop's host
// wall-clock.
//
//vpr:statsink Stats
func (m *Multicore) Aggregate() Stats {
	var agg Stats
	for _, c := range m.cores {
		addStats(&agg, c.Stats())
	}
	if m.sys != nil {
		l2 := m.sys.L2().Stats()
		agg.L2Fetches = l2.L2Fetches
		agg.L2Hits = l2.L2Hits
		agg.L2Misses = l2.L2Misses
		agg.L2Merges = l2.L2Merges
		agg.L2Conflicts = l2.L2Conflicts
		agg.L2Invalidations = l2.L2Invalidations
		agg.L2BackInvalidations = l2.L2BackInvalidations
		agg.L2Upgrades = l2.L2Upgrades
		agg.L2WritebackForwards = l2.L2WritebackForwards
		agg.L2OwnerForwards = l2.L2OwnerForwards
		agg.L2DirOverflows = l2.L2DirOverflows
		agg.L2DirBroadcasts = l2.L2DirBroadcasts
	}
	agg.GateWaits = m.parSync.gateWaits
	agg.PacingWaits = m.parSync.pacingWaits
	agg.GateSpins = m.parSync.spins
	agg.GateYields = m.parSync.yields
	agg.GateParks = m.parSync.parks
	agg.WallSeconds, agg.CyclesPerSec, agg.InstrsPerSec = 0, 0, 0
	if m.wallNanos > 0 {
		agg.WallSeconds = float64(m.wallNanos) / 1e9
		agg.CyclesPerSec = float64(agg.Cycles) / agg.WallSeconds
		agg.InstrsPerSec = float64(agg.Committed) / agg.WallSeconds
	}
	return agg
}

// addStats accumulates one core's statistics into agg: Cycles and the
// peak-occupancy gauge take the maximum (the cores run in lockstep),
// everything else adds.
//
//vpr:statsink Stats
func addStats(agg *Stats, st Stats) {
	if st.Cycles > agg.Cycles {
		agg.Cycles = st.Cycles
	}
	agg.Committed += st.Committed
	agg.Issued += st.Issued
	agg.Reexecutions += st.Reexecutions
	agg.IssueBlocks += st.IssueBlocks
	agg.RenameRegStall += st.RenameRegStall
	agg.ROBStalls += st.ROBStalls
	agg.IQStalls += st.IQStalls
	agg.EarlyReleases += st.EarlyReleases
	agg.CondBranches += st.CondBranches
	agg.Mispredicts += st.Mispredicts
	agg.Loads += st.Loads
	agg.Stores += st.Stores
	agg.LoadsForwarded += st.LoadsForwarded
	agg.MemViolations += st.MemViolations
	agg.SquashedByMem += st.SquashedByMem
	agg.CommitSBStalls += st.CommitSBStalls
	agg.CacheAccesses += st.CacheAccesses
	agg.CacheMisses += st.CacheMisses
	agg.CacheMergedMiss += st.CacheMergedMiss
	agg.MSHRStallCycles += st.MSHRStallCycles
	if st.PeakMSHRs > agg.PeakMSHRs {
		agg.PeakMSHRs = st.PeakMSHRs
	}
	agg.L2Fetches += st.L2Fetches
	agg.L2Hits += st.L2Hits
	agg.L2Misses += st.L2Misses
	agg.L2Merges += st.L2Merges
	agg.L2Conflicts += st.L2Conflicts
	agg.L2Invalidations += st.L2Invalidations
	agg.L2BackInvalidations += st.L2BackInvalidations
	agg.L2Upgrades += st.L2Upgrades
	agg.L2WritebackForwards += st.L2WritebackForwards
	agg.L2OwnerForwards += st.L2OwnerForwards
	agg.L2DirOverflows += st.L2DirOverflows
	agg.L2DirBroadcasts += st.L2DirBroadcasts
	agg.SilentUpgrades += st.SilentUpgrades
	agg.ROBOccupancySum += st.ROBOccupancySum
	agg.IQOccupancySum += st.IQOccupancySum
	agg.IntRegsInUseSum += st.IntRegsInUseSum
	agg.FPRegsInUseSum += st.FPRegsInUseSum
	agg.RegLifetimeSum += st.RegLifetimeSum
	agg.RegsFreed += st.RegsFreed
}
