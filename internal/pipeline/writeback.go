package pipeline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// writebackStage completes execution: results are written to the physical
// register file (consuming a write port per class), dependants are woken
// through the wakeup index, branches resolve, and — under VP write-back
// allocation — instructions whose register allocation is refused are sent
// back to the issue queue to re-execute (§3.3).
//
// Event kernel: the completion wheel delivers exactly the instructions
// finishing this cycle into each thread's inum-sorted pending list, which
// also carries port-starved retries from earlier cycles and stores that
// became completable (address recorded and data arrived). Processing the
// list in inum order per thread, threads in rotation order, consumes write
// ports in the same order as the reference ROB scan.
func (s *Sim) writebackStage(now int64) error {
	if s.scan {
		return s.writebackScan(now)
	}
	s.compWheel.drain(now, s.deliverCompletion)
	wbPorts := [2]int{s.cfg.RFWritePorts, s.cfg.RFWritePorts}
	for _, th := range s.threadOrder() {
		i := 0
		for i < len(th.wbPend) {
			ref := th.wbPend[i]
			e := th.entryByInum(ref.inum)
			if e == nil || e.gen != ref.gen || e.st != stExecuting {
				th.wbPend = removeRefAt(th.wbPend, i)
				continue
			}
			if e.isStore {
				// A store completes once its address has been recorded
				// in the store queue (by the execute stage, so violation
				// checks always run) and its data has arrived; it
				// consumes no write port. Both conditions held when it
				// was filed here and neither can revert within a
				// generation.
				sqe := th.sqEntry(e.inum)
				if sqe == nil || !sqe.eaKnown || !e.src2Ready {
					//vpr:allowalloc error path: the failed run allocates once and stops
					return fmt.Errorf("pipeline: store %d pending write-back without being completable", e.inum)
				}
				if err := s.checkOperand(th, e, e.ren.Src2, e.rec.Src2Val); err != nil {
					return err
				}
				th.ren.NoteRead(e.inum, false, true) // data operand read now
				if _, ok := th.ren.Complete(e.inum); !ok {
					//vpr:allowalloc error path: the failed run allocates once and stops
					return fmt.Errorf("pipeline: store %d refused completion", e.inum)
				}
				e.st = stCompleted
				s.leaveIQ(e)
				if s.probe != nil {
					s.probe.Completed(now, th.id, e.inum)
				}
				th.wbPend = removeRefAt(th.wbPend, i)
				continue
			}
			hasDst := e.ren.Dst.Present
			f := 0
			if hasDst {
				f = classIdxOf(e.ren.Dst.Class)
				if wbPorts[f] == 0 {
					i++ // structural: retry next cycle
					continue
				}
			}
			preg, ok := th.ren.Complete(e.inum)
			if !ok {
				// §3.3: no register may be allocated at write-back;
				// squash the instruction back to the queue and
				// re-execute it.
				e.st = stWaiting
				e.completeAt = timeUnset
				e.aguDoneAt = timeUnset
				if e.isLoad {
					e.valueFrom = valueNone
				}
				if s.probe != nil {
					s.probe.AllocRefused(now, th.id, e.inum, false)
				}
				th.wbPend = removeRefAt(th.wbPend, i)
				s.enqueueReady(th, e) // operands are still ready; re-issue from the queue
				continue
			}
			if hasDst {
				s.prf[f][preg] = e.rec.DstVal
				wbPorts[f]--
				s.broadcast(th, e.ren.Dst.Class, e.ren.Dst.Tag)
			}
			e.st = stCompleted
			s.leaveIQ(e)
			if s.probe != nil {
				s.probe.Completed(now, th.id, e.inum)
			}
			if e.isBranch {
				s.resolveBranch(th, e, now)
			}
			th.wbPend = removeRefAt(th.wbPend, i)
		}
	}
	return nil
}

// deliverCompletion files a completion-wheel event into its thread's
// pending list, dropping events whose instruction was squashed (stale
// generation) or already pulled back for re-execution.
func (s *Sim) deliverCompletion(ev wevent) {
	th := s.threads[ev.tid]
	e := th.entryByInum(ev.inum)
	if e == nil || e.gen != ev.gen || e.st != stExecuting || e.completeAt != ev.due {
		return
	}
	th.wbPend = insertRef(th.wbPend, evRef{inum: ev.inum, gen: ev.gen})
}

// leaveIQ releases the instruction-queue slot. Under write-back allocation
// an instruction holds its slot until it completes successfully (it may
// need to re-execute); the other schemes free it at issue.
func (s *Sim) leaveIQ(e *robEntry) {
	if e.inIQ {
		e.inIQ = false
		s.iqCount--
	}
}

func (s *Sim) resolveBranch(th *thread, e *robEntry, now int64) {
	if e.isCond {
		s.bht.Update(e.rec.PC, e.rec.Taken)
		s.stats.CondBranches++
		if e.mispred {
			s.stats.Mispredicts++
		}
	}
	if e.mispred && th.frozen && th.frozenOn == e.inum {
		th.frozen = false
		th.nextFetchAt = now + int64(s.cfg.RecoveryPenalty)
	}
}

// broadcast wakes every waiting operand of the owning thread matching the
// completed tag (tags are per-thread namespaces). The event kernel walks
// the tag's waiter list — registered at dispatch, invalidated by squash
// notifications — instead of scanning the reorder buffer.
func (s *Sim) broadcast(th *thread, class isa.RegClass, tag int) {
	f := classIdxOf(class)
	ws := th.waiters[f][tag]
	for _, w := range ws {
		e := th.entryByInum(w.inum)
		if e == nil || e.gen != w.gen || e.st == stCompleted {
			continue
		}
		if w.slot == 0 {
			if e.src1Ready || !matches(e.ren.Src1, class, tag) {
				continue
			}
			e.src1Ready = true
		} else {
			if e.src2Ready || !matches(e.ren.Src2, class, tag) {
				continue
			}
			e.src2Ready = true
		}
		s.operandBecameReady(th, e)
	}
	th.waiters[f][tag] = ws[:0]
}

// operandBecameReady reacts to a wakeup: a waiting instruction with all
// operands ready joins the issue queue; an executing store whose data just
// arrived becomes completable once its address is recorded. The insertion
// lands after the broadcasting producer in the same cycle's pending list
// (consumers are always younger), so a store woken mid-write-back still
// completes this cycle, exactly as the reference scan does.
func (s *Sim) operandBecameReady(th *thread, e *robEntry) {
	switch e.st {
	case stWaiting:
		if e.ready() && !e.inReadyQ {
			s.enqueueReady(th, e)
		}
	case stExecuting:
		if e.isStore && e.src2Ready {
			if sqe := th.sqEntry(e.inum); sqe != nil && sqe.eaKnown {
				th.wbPend = insertRef(th.wbPend, evRef{inum: e.inum, gen: e.gen})
			}
		}
	}
}

func matches(op core.SrcOp, class isa.RegClass, tag int) bool {
	return op.Present && !op.Zero && op.Class == class && op.Tag == tag
}

func classIdxOf(c isa.RegClass) int {
	if c == isa.RegInt {
		return 0
	}
	return 1
}

// checkOperand verifies that the physical register behind the operand
// holds the architecturally correct value.
func (s *Sim) checkOperand(th *thread, e *robEntry, op core.SrcOp, want uint64) error {
	if !op.Present || op.Zero || !s.cfg.ValueCheck || !e.rec.HasValues {
		return nil
	}
	f := classIdxOf(op.Class)
	preg := th.ren.ReadPhys(op.Class, op.Tag)
	if got := s.prf[f][preg]; got != want {
		//vpr:allowalloc error path: the failed run allocates once and stops
		return fmt.Errorf("pipeline: golden-model mismatch at thread %d inum %d (%s): operand %s tag %d -> p%d holds %#x, architectural value %#x",
			th.id, e.inum, e.rec.Inst, op.Class, op.Tag, preg, got, want)
	}
	return nil
}
