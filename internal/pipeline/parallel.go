// Parallel multicore stepping.
//
// The lockstep oracle (multicore.go) steps every core serially in index
// order, so the host's extra cores sit idle. The stepper in this file
// runs one long-lived goroutine per core and reproduces the oracle's
// results bit-for-bit at any GOMAXPROCS by exploiting the phase split in
// sim.go: stepFront and stepBack touch only core-private state and run
// fully concurrently, while stepMem — the one phase that can reach the
// shared mem.System — is admitted by a conservative gate in exactly the
// global (cycle, core-index) order the serial loop would have used.
//
// # The memory gate
//
// Each core publishes the highest cycle whose memory phase it has
// finished through an atomic in its own cache-line-padded gateSlot.
// Core i may run stepMem for cycle T once every lower-indexed core has
// finished T's memory phase and every higher-indexed core has finished
// T-1's:
//
//	∀j<i: memCycle[j] >= T   and   ∀j>i: memCycle[j] >= T-1
//
// That is precisely "all shared-memory interactions ordered by (cycle,
// core index)", the order the determinism contract fixes — so the shared
// L2 and directory observe the identical request sequence, produce the
// identical timings, and every statistic and commit stream comes out
// bit-identical to the oracle. Cross-core L1 writes (coherence
// invalidations and downgrades) happen only inside gated memory phases,
// so they are serialized too, and the gate's acquire/publish atomics give
// the race detector — and the Go memory model — the happens-before edges
// that make them safe.
//
// Cores whose execute stage provably cannot touch memory this cycle
// (Sim.memQuiet: empty store buffer, no pending or deliverable AGU work)
// skip the wait entirely, and publish their progress in strides rather
// than every cycle, which is what lets low-sharing workloads run ahead
// instead of convoying behind the slowest core. With the shared L2
// disabled there is nothing shared at all and the gate is bypassed
// wholesale.
//
// # Waiting: spin, yield, park
//
// How a core waits is a pure throttle — gate order alone enforces the
// (cycle, core-index) serialization — so the wait ladder is tuned for
// the host, not the contract. A blocked core first spins on the lagging
// core's published atomic (bounded; skipped entirely at GOMAXPROCS=1,
// where nothing can publish until we yield), then yields the processor
// a bounded number of times with runtime.Gosched, and finally parks on
// the lagging core's notifier, to be woken by that core's next publish.
// Short waits stay latency-free in the spin rungs; long waits stop
// burning CPU in the park rung. Liveness at any GOMAXPROCS, including 1:
// a core flushes its own pending progress before probing anyone else, a
// running core publishes at least every quietPublishStride cycles — and
// immediately once a waiter registers on its slot — and a core that
// stops publishes a terminal sentinel and wakes its parkers. The
// lexicographically least (cycle, index) core among those not finished
// never waits on the gate, and the most-behind core never waits on
// pacing, so some core always advances; every other core's wait is then
// resolved by a publish, a wake, or the bounded yield rungs handing the
// processor to the core it is waiting for.
//
// # Pacing (the skew window)
//
// Correctness never depends on how far ahead a core runs — the gate
// already orders every shared interaction. The skew window W is a pacing
// knob: a core may begin cycle T only once every live core has completed
// cycle T-1-W, bounding the lead so gate waits stay short and cores stay
// cache-warm. StepParallel is W=0 (a per-cycle barrier, the classic BSP
// shape); StepSkew(W) relaxes it; "skew:inf" removes it.
package pipeline

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// StepMode names a Multicore stepping strategy. The zero value is the
// serial lockstep oracle; see ParseStepMode for the accepted spellings.
type StepMode string

const (
	// StepLockstep steps every core serially in index order on the
	// calling goroutine — the oracle the parallel modes are pinned to.
	// The empty string means the same thing.
	StepLockstep StepMode = "lockstep"

	// StepParallel runs one goroutine per core under the memory gate
	// with a zero-width skew window: a per-cycle barrier.
	StepParallel StepMode = "parallel"

	stepSkewPrefix = "skew:"
	stepSkewInf    = "skew:inf"
)

// StepSkew returns the mode that lets cores free-run up to w cycles ahead
// of the slowest live core; w < 0 means an unbounded window.
func StepSkew(w int64) StepMode {
	if w < 0 {
		return StepMode(stepSkewInf)
	}
	return StepMode(stepSkewPrefix + strconv.FormatInt(w, 10))
}

// ParseStepMode validates a stepping-mode spelling: "" or "lockstep",
// "parallel", "skew:W" for a decimal window W >= 0, or "skew:inf".
func ParseStepMode(s string) (StepMode, error) {
	m := StepMode(s)
	if _, err := m.plan(); err != nil {
		return StepLockstep, err
	}
	return m, nil
}

// stepPlan is a parsed StepMode: whether to run the goroutine-per-core
// stepper, and its pacing window (-1 = unbounded).
type stepPlan struct {
	concurrent bool
	window     int64
}

func (m StepMode) plan() (stepPlan, error) {
	switch m {
	case "", StepLockstep:
		return stepPlan{}, nil
	case StepParallel:
		return stepPlan{concurrent: true}, nil
	case stepSkewInf:
		return stepPlan{concurrent: true, window: -1}, nil
	}
	if rest, ok := strings.CutPrefix(string(m), stepSkewPrefix); ok {
		w, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || w < 0 {
			return stepPlan{}, fmt.Errorf("pipeline: bad skew window %q (want %q, %q, %q, or %q with W >= 0)",
				string(m), StepLockstep, StepParallel, stepSkewInf, stepSkewPrefix+"W")
		}
		return stepPlan{concurrent: true, window: w}, nil
	}
	return stepPlan{}, fmt.Errorf("pipeline: unknown step mode %q (want %q, %q, %q, or %q with W >= 0)",
		string(m), StepLockstep, StepParallel, stepSkewInf, stepSkewPrefix+"W")
}

// parDone is published as a core's progress once it stops stepping, so no
// other core ever waits on it again.
const parDone = math.MaxInt64

// Wait-ladder and publish tuning. None of these affect results — the
// gate condition alone admits memory phases — only how a blocked core
// spends host time and how often a free-running core touches its slot.
const (
	// gateSpinProbes bounds the pure load-spin rung of a wait: cheap
	// latency for waits that resolve in nanoseconds. Skipped when
	// GOMAXPROCS=1 — on one processor nothing can publish until we
	// yield, so spinning there is pure waste.
	gateSpinProbes = 96

	// gateYieldProbes bounds the runtime.Gosched rung before parking.
	// At GOMAXPROCS=1 a yield hands the processor to the core being
	// waited for, so most waits resolve in the first yield or two.
	gateYieldProbes = 32

	// quietPublishStride is how many memQuiet (or pacing-idle) cycles a
	// core may run between progress publishes. Batching stops a
	// free-running core from invalidating its slot's cache line in
	// every waiter once per cycle; a registered parker (sleepers != 0)
	// or the core's own wait entry flushes immediately, so nobody waits
	// on a stale stride for long.
	quietPublishStride = 32
)

// gateSlotPad rounds gateSlot up to gateSlotBytes so no two cores' slots
// ever share a cache line (the slot's hot fields sit in its first bytes;
// consecutive 128-byte elements keep them at least two 64-byte lines
// apart at any base alignment). A test pins the arithmetic with
// unsafe.Sizeof.
const (
	gateSlotBytes = 128
	gateSlotPad   = gateSlotBytes - 20
)

// gateSlot is one core's published progress, padded to its own cache
// line. PR-7 kept this state in dense []atomic.Int64 slices, which is
// textbook false sharing: eight cores' per-cycle publishes landed in one
// 64-byte line, so every publish invalidated every waiter's cached copy
// of every other core's progress — exactly the coherence-traffic
// pathology the simulator itself models. One padded slot per core keeps
// each core's stores on a line nobody else writes.
type gateSlot struct {
	// memCycle is the highest cycle whose memory phase this core has
	// completed; completed the highest cycle it has fully completed.
	// Both start at startCycle-1 and jump to parDone when the core
	// stops. The gate state is cross-goroutine: sharedguard pins these
	// fields to sync/atomic types accessed only through their methods,
	// which is where the happens-before edges of the gate protocol come
	// from.
	//
	//vpr:shared
	memCycle atomic.Int64
	//vpr:shared
	completed atomic.Int64

	// sleepers counts waiters parked — or registering to park — on this
	// core's parker. The owner checks it after each publish (and on
	// every batched-publish decision) and wakes when nonzero; the
	// seq-cst ordering of the register-then-recheck / publish-then-check
	// pair is what rules out a lost wakeup.
	//
	//vpr:shared
	sleepers atomic.Int32

	_ [gateSlotPad]byte
}

// parker is one core's park-rung notifier: waiters that exhausted their
// spin and yield budgets sleep on cond until the owner's next publish.
// Parkers are deliberately a plain sibling slice, not part of the padded
// slot — mutex and condition variable carry their own synchronization,
// and the park path is off the hot path by construction.
type parker struct {
	mu   sync.Mutex
	cond sync.Cond
}

// waitStats counts what the wait ladder did during one stepping session.
// Each core accumulates its own copy in coreLoop-local state (zero hot
// path cost: plain adds on stack memory) and the runner folds them after
// the goroutines join; they surface through Multicore.Aggregate as the
// Gate*/Pacing* fields of Stats.
type waitStats struct {
	gateWaits   int64 // gated memory phases that found a predecessor lagging
	pacingWaits int64 // cycle starts that found the skew window closed
	spins       int64 // pure load-spin probes (gate and pacing ladders)
	yields      int64 // runtime.Gosched yields after the spin budget
	parks       int64 // park episodes on a notifier
}

func (w *waitStats) add(o waitStats) {
	w.gateWaits += o.gateWaits
	w.pacingWaits += o.pacingWaits
	w.spins += o.spins
	w.yields += o.yields
	w.parks += o.parks
}

// coreState is one core goroutine's private stepping state: its wait
// counters, the progress it has not yet published, and its cached view
// of the other cores' frontiers. Everything here lives on the coreLoop
// stack — no shared line is touched to read or update it.
type coreState struct {
	f waitStats

	// pendingMem/pendingDone are the core's actual progress;
	// publishedMem/publishedDone what its slot last advertised. The
	// invariant the liveness argument needs: published == pending
	// whenever the core is blocked or finished, and a running core
	// publishes at least every quietPublishStride cycles.
	pendingMem, publishedMem   int64
	pendingDone, publishedDone int64

	// Cached frontiers: proven lower bounds on the other cores'
	// published progress (progress is monotonic, so a recorded minimum
	// never goes stale). While the bound satisfies a wait's condition
	// the wait re-checks nothing — zero shared-line touches — and a
	// re-scan only spins on the first core found lagging, not all N.
	memLow  int64 // min over j<i of memCycle[j]
	memHigh int64 // min over j>i of memCycle[j]
	doneMin int64 // min over j≠i of completed[j]
}

// parRun is one parallel stepping session: the per-core goroutines, their
// published progress, and the first error.
type parRun struct {
	m      *Multicore
	ctx    context.Context
	max    int64 // commit cap per core (0 = none)
	window int64 // pacing window (-1 = unbounded)
	gated  bool  // shared memory exists; memory phases take the gate

	// spinBudget is gateSpinProbes, or 0 at GOMAXPROCS=1 where pure
	// spinning cannot observe progress. eagerDone publishes completed
	// every cycle: with a window tighter than the publish stride the
	// pacing barrier needs fresh values, batching them would just
	// convert every pacing wait into a park.
	spinBudget int
	eagerDone  bool

	slots    []gateSlot
	parkers  []parker
	counters []waitStats // per-core; written by the owning goroutine, read after wg.Wait

	//vpr:shared
	stopped atomic.Bool
	errMu   sync.Mutex
	err     error
	wg      sync.WaitGroup
}

// runParallel steps every core on its own goroutine under the memory
// gate. Bit-identical to runLoop by construction; see the package comment
// above. This is the module's one sanctioned goroutine-launch site
// (detsource's //vpr:stepper).
//
//vpr:stepper
func (m *Multicore) runParallel(ctx context.Context, maxCommitsPerCore int64) error {
	r := &parRun{
		m:        m,
		ctx:      ctx,
		max:      maxCommitsPerCore,
		window:   m.step.window,
		gated:    m.sys != nil,
		slots:    make([]gateSlot, len(m.cores)),
		parkers:  make([]parker, len(m.cores)),
		counters: make([]waitStats, len(m.cores)),
	}
	if runtime.GOMAXPROCS(0) > 1 {
		r.spinBudget = gateSpinProbes
	}
	r.eagerDone = r.window >= 0 && r.window < quietPublishStride
	for i, c := range m.cores {
		r.slots[i].memCycle.Store(c.cycle - 1)
		r.slots[i].completed.Store(c.cycle - 1)
	}
	for i := range r.parkers {
		p := &r.parkers[i]
		p.cond.L = &p.mu
	}
	r.wg.Add(len(m.cores))
	for i := range m.cores {
		go r.coreLoop(i)
	}
	r.wg.Wait()
	for i, c := range m.cores {
		if c.Done() {
			m.noteDrained(i)
		}
		m.parSync.add(r.counters[i])
	}
	return r.err
}

// fail records the first error and stops every core, waking any parked
// waiter so it can observe the stop.
//
//vpr:coldpath
func (r *parRun) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.stopped.Store(true)
	for i := range r.parkers {
		r.wakeParked(i)
	}
}

// coreLoop advances one core until its trace drains, its commit cap is
// reached, or the run stops. The loop allocates nothing; the wait ladder
// spins, yields, then parks, so progress is guaranteed at any GOMAXPROCS
// while long waits stop burning the host CPU.
//
//vpr:hotpath
func (r *parRun) coreLoop(i int) {
	defer r.wg.Done()
	c := r.m.cores[i]
	cs := coreState{
		pendingMem: c.cycle - 1, publishedMem: c.cycle - 1,
		pendingDone: c.cycle - 1, publishedDone: c.cycle - 1,
		// Frontier caches start pessimistic: the first wait of each kind
		// does one real scan and tightens them.
		memLow: math.MinInt64, memHigh: math.MinInt64, doneMin: math.MinInt64,
	}
	sinceCheck := 0
	for {
		if r.stopped.Load() {
			break
		}
		if c.Done() || (r.max > 0 && c.stats.Committed >= r.max) {
			break
		}
		if sinceCheck++; sinceCheck >= ctxCheckCycles {
			sinceCheck = 0
			if err := r.ctx.Err(); err != nil {
				r.fail(err) // unwrapped, matching the serial loop
				break
			}
		}
		now := c.cycle
		if !r.waitPacing(now, i, &cs) {
			break
		}
		if err := c.stepFront(now); err != nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			r.fail(fmt.Errorf("pipeline: core %d: %w", i, err))
			break
		}
		// The cycle's memory footprint is now fixed: take the gate only
		// if this cycle can actually reach shared state.
		quiet := !r.gated || c.memQuiet(now)
		if !quiet && !r.waitMemGate(now, i, &cs) {
			break
		}
		err := c.stepMem(now)
		cs.pendingMem = now
		if !quiet {
			// A gated memory phase publishes immediately: successors are
			// gate-ordered behind this very value.
			r.publishMem(i, now, &cs)
		} else if r.gated && (now-cs.publishedMem >= quietPublishStride || r.slots[i].sleepers.Load() != 0) {
			r.publishMem(i, now, &cs)
		}
		if err != nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			r.fail(fmt.Errorf("pipeline: core %d: %w", i, err))
			break
		}
		if err := c.stepBack(now); err != nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			r.fail(fmt.Errorf("pipeline: core %d: %w", i, err))
			break
		}
		cs.pendingDone = now
		if r.eagerDone || now-cs.publishedDone >= quietPublishStride || r.slots[i].sleepers.Load() != 0 {
			r.publishDone(i, now, &cs)
		}
	}
	// Publish terminal progress and wake any parker, so no gate or
	// pacing wait ever blocks on a finished core.
	r.slots[i].memCycle.Store(parDone)
	r.slots[i].completed.Store(parDone)
	r.wakeParked(i)
	r.counters[i] = cs.f
}

// publishMem advertises core i's memory-phase progress and wakes its
// parked waiters, if any. The sleepers check is the publish half of the
// no-lost-wakeup pair (see park).
//
//vpr:hotpath
func (r *parRun) publishMem(i int, v int64, cs *coreState) {
	r.slots[i].memCycle.Store(v)
	cs.publishedMem = v
	if r.slots[i].sleepers.Load() != 0 {
		r.wakeParked(i)
	}
}

// publishDone advertises core i's completed-cycle progress for the
// pacing barrier.
//
//vpr:hotpath
func (r *parRun) publishDone(i int, v int64, cs *coreState) {
	r.slots[i].completed.Store(v)
	cs.publishedDone = v
	if r.slots[i].sleepers.Load() != 0 {
		r.wakeParked(i)
	}
}

// flushProgress publishes any pending progress before core i blocks:
// whoever core i is about to wait for may itself be waiting on core i's
// withheld stride.
//
//vpr:hotpath
func (r *parRun) flushProgress(i int, cs *coreState) {
	if r.gated && cs.pendingMem > cs.publishedMem {
		r.publishMem(i, cs.pendingMem, cs)
	}
	if cs.pendingDone > cs.publishedDone {
		r.publishDone(i, cs.pendingDone, cs)
	}
}

// waitPacing blocks the start of cycle now until every live core has
// completed cycle now-1-window. Returns false if the run stopped.
//
//vpr:hotpath
func (r *parRun) waitPacing(now int64, i int, cs *coreState) bool {
	if r.window < 0 {
		return true
	}
	target := now - 1 - r.window
	if cs.doneMin >= target {
		return true
	}
	r.flushProgress(i, cs)
	low := int64(parDone)
	for j := range r.slots {
		if j == i {
			continue
		}
		v, ok := r.awaitSlot(j, target, false, cs)
		if !ok {
			return false
		}
		if v < low {
			low = v
		}
	}
	cs.doneMin = low
	return true
}

// waitMemGate admits core i's memory phase for cycle now once its global
// (cycle, index) turn has come: every lower-indexed core has finished
// this cycle's memory phase, every higher-indexed core last cycle's.
// Returns false if the run stopped.
//
//vpr:hotpath
func (r *parRun) waitMemGate(now int64, i int, cs *coreState) bool {
	if cs.memLow >= now && cs.memHigh >= now-1 {
		return true
	}
	r.flushProgress(i, cs)
	low, high := int64(parDone), int64(parDone)
	for j := 0; j < i; j++ {
		v, ok := r.awaitSlot(j, now, true, cs)
		if !ok {
			return false
		}
		if v < low {
			low = v
		}
	}
	for j := i + 1; j < len(r.slots); j++ {
		v, ok := r.awaitSlot(j, now-1, true, cs)
		if !ok {
			return false
		}
		if v < high {
			high = v
		}
	}
	cs.memLow, cs.memHigh = low, high
	return true
}

// awaitSlot waits until core j's published progress — memCycle when mem,
// completed otherwise — reaches want, climbing the spin → yield → park
// ladder, and returns the value observed. ok is false if the run
// stopped first.
//
//vpr:hotpath
func (r *parRun) awaitSlot(j int, want int64, mem bool, cs *coreState) (v int64, ok bool) {
	s := &r.slots[j]
	if mem {
		v = s.memCycle.Load()
	} else {
		v = s.completed.Load()
	}
	if v >= want {
		return v, true
	}
	if mem {
		cs.f.gateWaits++
	} else {
		cs.f.pacingWaits++
	}
	spins, yields := 0, 0
	for {
		if r.stopped.Load() {
			return v, false
		}
		switch {
		case spins < r.spinBudget:
			spins++
			cs.f.spins++
		case yields < gateYieldProbes:
			yields++
			cs.f.yields++
			runtime.Gosched()
		default:
			cs.f.parks++
			r.park(j, want, mem)
			// The park returned satisfied or stopped; re-read and let
			// the loop decide. A fresh ladder is pointless after a park,
			// so subsequent laps park straight away.
		}
		if mem {
			v = s.memCycle.Load()
		} else {
			v = s.completed.Load()
		}
		if v >= want {
			return v, true
		}
	}
}

// park sleeps on core j's notifier until its published progress reaches
// want or the run stops. Registration order is the wakeup proof:
// sleepers is incremented (seq-cst) before the condition is re-checked
// under the mutex, and the publisher stores progress before loading
// sleepers — so either the re-check observes the new progress, or the
// publisher observes the registration and broadcasts under the same
// mutex. Wait cannot miss that broadcast: it runs with the mutex held.
func (r *parRun) park(j int, want int64, mem bool) {
	s := &r.slots[j]
	p := &r.parkers[j]
	s.sleepers.Add(1)
	p.mu.Lock()
	for !r.stopped.Load() {
		v := s.completed.Load()
		if mem {
			v = s.memCycle.Load()
		}
		if v >= want {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
	s.sleepers.Add(-1)
}

// wakeParked broadcasts core i's notifier. Holding the mutex across the
// broadcast closes the re-check→Wait window of any concurrent park.
func (r *parRun) wakeParked(i int) {
	p := &r.parkers[i]
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}
