// Parallel multicore stepping.
//
// The lockstep oracle (multicore.go) steps every core serially in index
// order, so the host's extra cores sit idle. The stepper in this file
// runs one long-lived goroutine per core and reproduces the oracle's
// results bit-for-bit at any GOMAXPROCS by exploiting the phase split in
// sim.go: stepFront and stepBack touch only core-private state and run
// fully concurrently, while stepMem — the one phase that can reach the
// shared mem.System — is admitted by a conservative gate in exactly the
// global (cycle, core-index) order the serial loop would have used.
//
// # The memory gate
//
// Each core publishes memCycle[i], the highest cycle whose memory phase
// it has finished, through an atomic. Core i may run stepMem for cycle T
// once every lower-indexed core has finished T's memory phase and every
// higher-indexed core has finished T-1's:
//
//	∀j<i: memCycle[j] >= T   and   ∀j>i: memCycle[j] >= T-1
//
// That is precisely "all shared-memory interactions ordered by (cycle,
// core index)", the order the determinism contract fixes — so the shared
// L2 and directory observe the identical request sequence, produce the
// identical timings, and every statistic and commit stream comes out
// bit-identical to the oracle. Cross-core L1 writes (coherence
// invalidations and downgrades) happen only inside gated memory phases,
// so they are serialized too, and the gate's acquire/publish atomics give
// the race detector — and the Go memory model — the happens-before edges
// that make them safe.
//
// Cores whose execute stage provably cannot touch memory this cycle
// (Sim.memQuiet: empty store buffer, no pending or deliverable AGU work)
// skip the wait entirely and just publish, which is what lets low-sharing
// workloads run ahead instead of convoying behind the slowest core. With
// the shared L2 disabled there is nothing shared at all and the gate is
// bypassed wholesale.
//
// # Pacing (the skew window)
//
// Correctness never depends on how far ahead a core runs — the gate
// already orders every shared interaction. The skew window W is a pacing
// knob: a core may begin cycle T only once every live core has completed
// cycle T-1-W, bounding the lead so gate waits stay short and cores stay
// cache-warm. StepParallel is W=0 (a per-cycle barrier, the classic BSP
// shape); StepSkew(W) relaxes it; "skew:inf" removes it. A blocked core
// spins on runtime.Gosched, which keeps the stepper live even at
// GOMAXPROCS=1.
//
// Liveness: the lexicographically least (cycle, index) core among those
// not finished never waits on the gate — every condition it checks is on
// a core strictly ahead of or equal to it — and the core with the least
// completed cycle never waits on pacing, so some core always advances.
package pipeline

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// StepMode names a Multicore stepping strategy. The zero value is the
// serial lockstep oracle; see ParseStepMode for the accepted spellings.
type StepMode string

const (
	// StepLockstep steps every core serially in index order on the
	// calling goroutine — the oracle the parallel modes are pinned to.
	// The empty string means the same thing.
	StepLockstep StepMode = "lockstep"

	// StepParallel runs one goroutine per core under the memory gate
	// with a zero-width skew window: a per-cycle barrier.
	StepParallel StepMode = "parallel"

	stepSkewPrefix = "skew:"
	stepSkewInf    = "skew:inf"
)

// StepSkew returns the mode that lets cores free-run up to w cycles ahead
// of the slowest live core; w < 0 means an unbounded window.
func StepSkew(w int64) StepMode {
	if w < 0 {
		return StepMode(stepSkewInf)
	}
	return StepMode(stepSkewPrefix + strconv.FormatInt(w, 10))
}

// ParseStepMode validates a stepping-mode spelling: "" or "lockstep",
// "parallel", "skew:W" for a decimal window W >= 0, or "skew:inf".
func ParseStepMode(s string) (StepMode, error) {
	m := StepMode(s)
	if _, err := m.plan(); err != nil {
		return StepLockstep, err
	}
	return m, nil
}

// stepPlan is a parsed StepMode: whether to run the goroutine-per-core
// stepper, and its pacing window (-1 = unbounded).
type stepPlan struct {
	concurrent bool
	window     int64
}

func (m StepMode) plan() (stepPlan, error) {
	switch m {
	case "", StepLockstep:
		return stepPlan{}, nil
	case StepParallel:
		return stepPlan{concurrent: true}, nil
	case stepSkewInf:
		return stepPlan{concurrent: true, window: -1}, nil
	}
	if rest, ok := strings.CutPrefix(string(m), stepSkewPrefix); ok {
		w, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || w < 0 {
			return stepPlan{}, fmt.Errorf("pipeline: bad skew window %q (want %q, %q, %q, or %q with W >= 0)",
				string(m), StepLockstep, StepParallel, stepSkewInf, stepSkewPrefix+"W")
		}
		return stepPlan{concurrent: true, window: w}, nil
	}
	return stepPlan{}, fmt.Errorf("pipeline: unknown step mode %q (want %q, %q, %q, or %q with W >= 0)",
		string(m), StepLockstep, StepParallel, stepSkewInf, stepSkewPrefix+"W")
}

// parDone is published as a core's progress once it stops stepping, so no
// other core ever waits on it again.
const parDone = math.MaxInt64

// parRun is one parallel stepping session: the per-core goroutines, their
// published progress, and the first error.
type parRun struct {
	m      *Multicore
	ctx    context.Context
	max    int64 // commit cap per core (0 = none)
	window int64 // pacing window (-1 = unbounded)
	gated  bool  // shared memory exists; memory phases take the gate

	// memCycle[i] is the highest cycle whose memory phase core i has
	// completed; completed[i] the highest cycle it has fully completed.
	// Both start at startCycle-1 and jump to parDone when the core stops.
	// The gate state is cross-goroutine: sharedguard pins these fields to
	// sync/atomic types accessed only through their methods, which is
	// where the happens-before edges of the gate protocol come from.
	//
	//vpr:shared
	memCycle []atomic.Int64
	//vpr:shared
	completed []atomic.Int64

	//vpr:shared
	stopped atomic.Bool
	errMu   sync.Mutex
	err     error
	wg      sync.WaitGroup
}

// runParallel steps every core on its own goroutine under the memory
// gate. Bit-identical to runLoop by construction; see the package comment
// above. This is the module's one sanctioned goroutine-launch site
// (detsource's //vpr:stepper).
//
//vpr:stepper
func (m *Multicore) runParallel(ctx context.Context, maxCommitsPerCore int64) error {
	r := &parRun{
		m:         m,
		ctx:       ctx,
		max:       maxCommitsPerCore,
		window:    m.step.window,
		gated:     m.sys != nil,
		memCycle:  make([]atomic.Int64, len(m.cores)),
		completed: make([]atomic.Int64, len(m.cores)),
	}
	for i, c := range m.cores {
		r.memCycle[i].Store(c.cycle - 1)
		r.completed[i].Store(c.cycle - 1)
	}
	r.wg.Add(len(m.cores))
	for i := range m.cores {
		go r.coreLoop(i)
	}
	r.wg.Wait()
	for i, c := range m.cores {
		if c.Done() {
			m.noteDrained(i)
		}
	}
	return r.err
}

// fail records the first error and stops every core.
//
//vpr:coldpath
func (r *parRun) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.stopped.Store(true)
}

// coreLoop advances one core until its trace drains, its commit cap is
// reached, or the run stops. The loop allocates nothing; the spin waits
// yield so progress is guaranteed at any GOMAXPROCS.
//
//vpr:hotpath
func (r *parRun) coreLoop(i int) {
	defer r.wg.Done()
	c := r.m.cores[i]
	sinceCheck := 0
	for {
		if r.stopped.Load() {
			break
		}
		if c.Done() || (r.max > 0 && c.stats.Committed >= r.max) {
			break
		}
		if sinceCheck++; sinceCheck >= ctxCheckCycles {
			sinceCheck = 0
			if err := r.ctx.Err(); err != nil {
				r.fail(err) // unwrapped, matching the serial loop
				break
			}
		}
		now := c.cycle
		if !r.waitPacing(now) {
			break
		}
		if err := c.stepFront(now); err != nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			r.fail(fmt.Errorf("pipeline: core %d: %w", i, err))
			break
		}
		// The cycle's memory footprint is now fixed: take the gate only
		// if this cycle can actually reach shared state.
		if r.gated && !c.memQuiet(now) && !r.waitMemGate(now, i) {
			break
		}
		err := c.stepMem(now)
		r.memCycle[i].Store(now)
		if err != nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			r.fail(fmt.Errorf("pipeline: core %d: %w", i, err))
			break
		}
		if err := c.stepBack(now); err != nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			r.fail(fmt.Errorf("pipeline: core %d: %w", i, err))
			break
		}
		r.completed[i].Store(now)
	}
	// Publish terminal progress so no gate or pacing wait ever blocks on
	// a finished core.
	r.memCycle[i].Store(parDone)
	r.completed[i].Store(parDone)
}

// waitPacing blocks the start of cycle now until every live core has
// completed cycle now-1-window. Returns false if the run stopped.
//
//vpr:hotpath
func (r *parRun) waitPacing(now int64) bool {
	if r.window < 0 {
		return true
	}
	target := now - 1 - r.window
	for j := range r.completed {
		for r.completed[j].Load() < target {
			if r.stopped.Load() {
				return false
			}
			runtime.Gosched()
		}
	}
	return true
}

// waitMemGate admits core i's memory phase for cycle now once its global
// (cycle, index) turn has come: every lower-indexed core has finished
// this cycle's memory phase, every higher-indexed core last cycle's.
// Returns false if the run stopped.
//
//vpr:hotpath
func (r *parRun) waitMemGate(now int64, i int) bool {
	for j := range r.memCycle {
		want := now
		if j == i {
			continue
		}
		if j > i {
			want = now - 1
		}
		for r.memCycle[j].Load() < want {
			if r.stopped.Load() {
				return false
			}
			runtime.Gosched()
		}
	}
	return true
}
