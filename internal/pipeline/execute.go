package pipeline

import "fmt"

// executeStage runs the memory pipeline: stores record their effective
// address in the store queue (triggering violation checks under
// speculative disambiguation), loads obtain their value by store-queue
// forwarding or through a shared cache port, and the post-commit store
// buffer drains through whatever ports remain.
//
// Event kernel: the AGU wheel delivers memory operations in the cycle
// their effective address is ready; loads that cannot yet get a value
// (ports, MSHRs, unresolved older store addresses, forwarding data not
// produced) stay in the thread's inum-sorted pending list and retry each
// cycle, exactly like the reference scan revisits them.
//
// Concurrency contract: this is the memory phase of the split cycle
// (Sim.stepMem) — the only phase that touches s.dmem and, through it,
// shared multicore state (the banked L2, the directory, remote L1s).
// The parallel stepper serializes calls in global (cycle, core-index)
// order via the memory gate in parallel.go; everything else in the
// cycle runs concurrently across cores. Keep shared-state access inside
// this phase or the determinism contract breaks — vplint's phasepure
// analyzer enforces it through this annotation.
//
//vpr:memphase
func (s *Sim) executeStage(now int64) error {
	if s.scan {
		return s.executeScan(now)
	}
	s.aguWheel.drain(now, s.deliverAGU)
	ports := s.cfg.CachePorts
	// The post-commit store buffer gets first claim on one port. Without
	// this guarantee, re-executing loads (VP write-back allocation) can
	// monopolize the ports every cycle, the buffer never drains, commit
	// stalls, no register is ever freed, and the machine livelocks —
	// the §3.3 progress argument needs committed stores to retire.
	if s.sbN > 0 {
		if _, ok := s.dmem.Access(now, s.sbFront(), true); ok {
			s.sbPopFront()
			ports--
		}
	}
	for _, th := range s.threadOrder() {
		i := 0
		for i < len(th.aguPend) {
			ref := th.aguPend[i]
			e := th.entryByInum(ref.inum)
			if e == nil || e.gen != ref.gen || e.st != stExecuting ||
				e.aguDoneAt == timeUnset || e.aguDoneAt > now {
				th.aguPend = removeRefAt(th.aguPend, i)
				continue
			}
			switch {
			case e.isStore:
				sqe := th.sqEntry(e.inum)
				if sqe == nil {
					//vpr:allowalloc error path: the failed run allocates once and stops
					return fmt.Errorf("pipeline: store %d missing from store queue", e.inum)
				}
				if !sqe.eaKnown {
					sqe.ea = e.rec.EA
					sqe.eaKnown = true
					if s.cfg.Disambiguation == DisambSpeculative {
						if err := s.checkViolation(th, sqe, now); err != nil {
							return err
						}
					}
					// With the address recorded, a store whose data has
					// already arrived is completable; otherwise the
					// data broadcast will file it (writeback.go).
					if e.src2Ready {
						th.wbPend = insertRef(th.wbPend, evRef{inum: e.inum, gen: e.gen})
					}
				}
				th.aguPend = removeRefAt(th.aguPend, i)
			case e.isLoad && e.valueFrom == valueNone:
				if err := s.tryLoad(th, e, now, &ports); err != nil {
					return err
				}
				if e.valueFrom == valueNone {
					i++ // blocked: retry next cycle
					continue
				}
				e.completeAt = s.compWheel.schedule(now,
					wevent{due: e.completeAt, inum: e.inum, tid: int32(th.id), gen: e.gen})
				th.aguPend = removeRefAt(th.aguPend, i)
			default:
				th.aguPend = removeRefAt(th.aguPend, i)
			}
		}
	}
	// Post-commit stores drain through the remaining cache ports.
	for ports > 0 && s.sbN > 0 {
		if _, ok := s.dmem.Access(now, s.sbFront(), true); !ok {
			break // all MSHRs busy; retry next cycle
		}
		s.sbPopFront()
		ports--
	}
	return nil
}

// deliverAGU files an AGU-wheel event into its thread's pending list,
// dropping stale generations (squash between issue and address-ready).
func (s *Sim) deliverAGU(ev wevent) {
	th := s.threads[ev.tid]
	e := th.entryByInum(ev.inum)
	if e == nil || e.gen != ev.gen || e.st != stExecuting || e.aguDoneAt != ev.due {
		return
	}
	th.aguPend = insertRef(th.aguPend, evRef{inum: ev.inum, gen: ev.gen})
}

// tryLoad attempts to give a post-AGU load its value: forwarded from the
// youngest older matching store in its thread, or from the shared cache.
//
//vpr:memphase
func (s *Sim) tryLoad(th *thread, e *robEntry, now int64, ports *int) error {
	var match *sqEntry
	for i := th.sqN - 1; i >= 0; i-- {
		sqe := th.sqAt(i)
		if sqe.inum >= e.inum {
			continue
		}
		if !sqe.eaKnown {
			if s.cfg.Disambiguation == DisambConservative {
				return nil // wait for every older store address
			}
			continue // speculate past the unknown address
		}
		if sqe.ea == e.rec.EA {
			match = sqe
			break
		}
	}
	if match != nil {
		producer := th.entryByInum(match.inum)
		if producer == nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			return fmt.Errorf("pipeline: forwarding store %d not in window", match.inum)
		}
		if !producer.src2Ready {
			return nil // data not yet available; retry
		}
		e.valueFrom = match.inum
		e.completeAt = now + int64(s.cfg.ForwardLatency)
		s.stats.LoadsForwarded++
		return nil
	}
	if *ports == 0 {
		return nil
	}
	out, ok := s.dmem.Access(now, th.addr(e.rec.EA), false)
	if !ok {
		return nil // MSHRs exhausted; retry
	}
	*ports = *ports - 1
	e.valueFrom = valueMemory
	e.completeAt = out.ReadyAt
	return nil
}

// checkViolation enforces memory ordering when a store address resolves:
// any younger load in the same thread that already obtained its value from
// somewhere older than this store read stale data; it and everything
// younger is squashed and re-fetched (PA-8000 address-reorder-buffer
// behaviour).
func (s *Sim) checkViolation(th *thread, sqe *sqEntry, now int64) error {
	start := sqe.inum + 1 - th.headInum // ROB offset of the first younger entry
	for i := int(start); i < th.robCount; i++ {
		e := th.at(i)
		if !e.isLoad || e.rec.EA != sqe.ea {
			continue
		}
		if e.valueFrom != valueNone && e.valueFrom < sqe.inum {
			s.stats.MemViolations++
			return s.squashFrom(th, e.inum, now)
		}
	}
	return nil
}

// squashFrom flushes every instruction of the thread from inum (inclusive)
// to its window tail, restores the renamer newest-first, and re-fetches
// from inum. Scheduler state for the squashed range is dropped eagerly
// from the per-thread queues; in-flight wheel events die by generation,
// and waiter lists are invalidated by the renamer's squash notifications.
func (s *Sim) squashFrom(th *thread, inum int64, now int64) error {
	tail := th.headInum + int64(th.robCount) - 1
	if s.probe != nil {
		s.probe.Squashed(now, th.id, inum, int(tail-inum+1))
	}
	for n := tail; n >= inum; n-- {
		e := th.entryByInum(n)
		if e == nil {
			//vpr:allowalloc error path: the failed run allocates once and stops
			return fmt.Errorf("pipeline: squash of %d not in window", n)
		}
		s.leaveIQ(e)
		th.ren.Squash(n)
		if e.isStore {
			if th.sqN == 0 || th.sqAt(th.sqN-1).inum != n {
				//vpr:allowalloc error path: the failed run allocates once and stops
				return fmt.Errorf("pipeline: store queue out of sync squashing %d", n)
			}
			th.sqPopBack()
		}
		s.stats.SquashedByMem++
		th.robCount--
	}
	if !s.scan {
		s.purgeThreadEv(th, inum)
	}
	// The mispredicted branch the front end froze on may be in the
	// squashed ROB range or still in the fetch buffer (about to be
	// discarded); either way it is younger than the squash point and the
	// freeze must lift, or fetch never resumes.
	if th.frozen && th.frozenOn >= inum {
		th.frozen = false
	}
	th.fbClear()
	th.fetchSeq = inum
	th.nextFetchAt = now + 1 + int64(s.cfg.RecoveryPenalty)
	// The squashed instructions must be re-fetched even if the generator
	// already reported end-of-trace: the stream window still buffers them.
	th.traceEnded = false
	return nil
}
