package sim

import (
	"context"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// SMTSpec describes a simultaneous-multithreading run: one workload per
// hardware thread, a shared machine, a per-thread instruction budget.
//
//vpr:cachekey
type SMTSpec struct {
	// Workloads names one kernel per hardware thread.
	Workloads []string
	Config    pipeline.Config
	// MaxInstrPerThread bounds every thread's trace.
	MaxInstrPerThread int64
}

// SMTResult is the outcome of an SMT run.
type SMTResult struct {
	Stats              pipeline.Stats
	PerThreadCommitted []int64
}

// RunSMT executes the specification and runs every thread to completion.
func RunSMT(spec SMTSpec) (SMTResult, error) {
	return RunSMTContext(context.Background(), spec)
}

// RunSMTContext executes the specification under ctx: cancellation stops
// the simulation mid-run and surfaces ctx.Err().
func RunSMTContext(ctx context.Context, spec SMTSpec) (SMTResult, error) {
	if err := ctx.Err(); err != nil {
		return SMTResult{}, err
	}
	if len(spec.Workloads) == 0 {
		return SMTResult{}, fmt.Errorf("sim: SMT run needs at least one workload")
	}
	var gens []trace.Generator
	for _, name := range spec.Workloads {
		w, ok := workloads.ByName(name)
		if !ok {
			return SMTResult{}, fmt.Errorf("sim: unknown workload %q", name)
		}
		gen, err := w.NewGen()
		if err != nil {
			return SMTResult{}, err
		}
		if spec.MaxInstrPerThread > 0 {
			gen = trace.Take(gen, spec.MaxInstrPerThread)
		}
		gens = append(gens, gen)
	}
	s, err := pipeline.NewSMT(spec.Config, gens)
	if err != nil {
		return SMTResult{}, err
	}
	stats, err := s.RunContext(ctx, 0)
	if err != nil {
		return SMTResult{}, fmt.Errorf("sim: smt %v: %w", spec.Workloads, err)
	}
	out := SMTResult{Stats: stats}
	for i := 0; i < s.Threads(); i++ {
		out.PerThreadCommitted = append(out.PerThreadCommitted, s.ThreadCommitted(i))
	}
	return out, nil
}
