// Package sim orchestrates single simulation runs: it binds a workload (by
// catalog name or a custom trace generator) to a pipeline configuration,
// runs it for a bounded number of instructions, and returns the combined
// result. The batching, caching and experiment layers in internal/engine
// and internal/experiments are sweeps over this entry point.
//
// Results feed the content-addressed run cache, so the package is
// determinism-checked: vplint's detsource analyzer bans unwaived wall
// clocks, goroutine launches and order-dependent map iteration here.
//
//vpr:detpkg
package sim

import (
	"context"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Spec describes one run. It is keyed into the engine's result cache by
// engine.specKey (//vpr:keyfunc), which must cover every field.
//
//vpr:cachekey
type Spec struct {
	// Workload names a kernel from the catalog. Leave empty and set Gen
	// to drive the pipeline with a custom trace.
	Workload string
	Gen      trace.Generator

	// GenID optionally names a custom generator for result caching: two
	// specs with the same non-empty GenID (and the same configuration and
	// budget) are asserted by the caller to produce identical traces.
	// Specs with Gen set and GenID empty are never cached.
	GenID string

	Config   pipeline.Config
	MaxInstr int64 // trace length; <= 0 means run the trace to completion
}

// Result is the outcome of one run.
type Result struct {
	Workload    string
	Stats       pipeline.Stats
	BHTAccuracy float64
}

// Run executes the specification.
func Run(spec Spec) (Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext executes the specification under ctx: cancellation stops the
// simulation mid-run and surfaces ctx.Err().
func RunContext(ctx context.Context, spec Spec) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	gen := spec.Gen
	name := spec.Workload
	if gen == nil {
		w, ok := workloads.ByName(spec.Workload)
		if !ok {
			return Result{}, fmt.Errorf("sim: unknown workload %q", spec.Workload)
		}
		var err error
		gen, err = w.NewGen()
		if err != nil {
			return Result{}, err
		}
	}
	if spec.MaxInstr > 0 {
		gen = trace.Take(gen, spec.MaxInstr)
	}
	s, err := pipeline.New(spec.Config, gen)
	if err != nil {
		return Result{}, err
	}
	stats, err := s.RunContext(ctx, 0)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", name, err)
	}
	return Result{Workload: name, Stats: stats, BHTAccuracy: s.BHT().Accuracy()}, nil
}
