package sim

// This file is the analytic register-pressure model behind the paper's §3.1
// motivating example: a serial dependence chain (load miss, fdiv, fmul,
// fadd, all writing the same logical register) decoded in one cycle, where
// each instruction's physical register is held from its allocation point
// until the next writer of the logical register commits.
//
// It exists so the worked example — 151 register·cycles under decode-time
// allocation vs 88 at issue vs 38 at write-back — is executable and tested,
// and it powers examples/pressure.

// AllocPoint is where in the pipeline the destination register is
// allocated.
type AllocPoint int

// The three allocation points §3.1 compares.
const (
	AllocDecode AllocPoint = iota
	AllocIssue
	AllocWriteback
)

// String names the point.
func (a AllocPoint) String() string {
	switch a {
	case AllocDecode:
		return "decode"
	case AllocIssue:
		return "issue"
	default:
		return "write-back"
	}
}

// ChainInterval is the [Alloc, Free) interval one chain instruction holds
// its destination register.
type ChainInterval struct {
	Alloc int // cycle the register is taken
	Free  int // cycle it is released
}

// Cycles returns the holding time.
func (iv ChainInterval) Cycles() int { return iv.Free - iv.Alloc }

// ChainPressure reproduces the §3.1 arithmetic for a serial chain of
// instructions with the given execution latencies, all decoded in cycle 0
// and all writing the same logical register. Instruction i issues when its
// predecessor completes, executes for latencies[i] cycles, and commits the
// cycle after it completes (in order). The register held by instruction i
// is freed when instruction i+1 commits; the last instruction's register
// outlives the example, so (as in the paper) only the first n-1 intervals
// are returned.
func ChainPressure(latencies []int, point AllocPoint) []ChainInterval {
	n := len(latencies)
	if n < 2 {
		return nil
	}
	// Timeline per the paper: decode in cycle 0 costs one cycle, so the
	// first instruction executes during cycles [1, 1+lat). Each next
	// instruction starts executing when its predecessor finishes.
	issue := make([]int, n)
	complete := make([]int, n)
	t := 1
	for i, lat := range latencies {
		issue[i] = t
		complete[i] = t + lat
		t = complete[i]
	}
	// In-order commit, one cycle after completion (and after the
	// predecessor's commit).
	commit := make([]int, n)
	prev := 0
	for i := range latencies {
		c := complete[i] + 1
		if c <= prev {
			c = prev + 1
		}
		commit[i] = c
		prev = c
	}
	out := make([]ChainInterval, n-1)
	for i := 0; i < n-1; i++ {
		var alloc int
		switch point {
		case AllocDecode:
			alloc = 0
		case AllocIssue:
			alloc = issue[i]
		case AllocWriteback:
			alloc = complete[i]
		}
		out[i] = ChainInterval{Alloc: alloc, Free: commit[i+1]}
	}
	return out
}

// TotalPressure sums the register·cycles of the intervals.
func TotalPressure(ivs []ChainInterval) int {
	total := 0
	for _, iv := range ivs {
		total += iv.Cycles()
	}
	return total
}

// PaperExampleLatencies is the §3.1 chain: a 20-cycle load miss, a 20-cycle
// FP divide, a 10-cycle FP multiply and a 5-cycle FP add.
func PaperExampleLatencies() []int { return []int{20, 20, 10, 5} }
