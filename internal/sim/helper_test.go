package sim

import "repro/internal/pipeline"

func defaultTestConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Debug = true
	return cfg
}
