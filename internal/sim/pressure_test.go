package sim

import "testing"

// The §3.1 worked example, verified number by number against the paper.
func TestPaperPressureExample(t *testing.T) {
	lat := PaperExampleLatencies()

	decode := ChainPressure(lat, AllocDecode)
	wantDecode := []int{42, 52, 57}
	for i, w := range wantDecode {
		if got := decode[i].Cycles(); got != w {
			t.Errorf("decode alloc p%d held %d cycles, want %d", i+1, got, w)
		}
	}
	if total := TotalPressure(decode); total != 151 {
		t.Errorf("decode total = %d, want 151", total)
	}

	wb := ChainPressure(lat, AllocWriteback)
	wantWB := []int{21, 11, 6}
	for i, w := range wantWB {
		if got := wb[i].Cycles(); got != w {
			t.Errorf("write-back alloc p%d held %d cycles, want %d", i+1, got, w)
		}
	}
	if total := TotalPressure(wb); total != 38 {
		t.Errorf("write-back total = %d, want 38", total)
	}
	// "the register pressure would be reduced by 75% (from 151 to 38)"
	if red := 1 - float64(38)/151; red < 0.74 || red > 0.76 {
		t.Errorf("write-back reduction = %.2f, want ≈ 0.75", red)
	}

	issue := ChainPressure(lat, AllocIssue)
	wantIssue := []int{41, 31, 16}
	for i, w := range wantIssue {
		if got := issue[i].Cycles(); got != w {
			t.Errorf("issue alloc p%d held %d cycles, want %d", i+1, got, w)
		}
	}
	if total := TotalPressure(issue); total != 88 {
		t.Errorf("issue total = %d, want 88", total)
	}
	// "which still implies a reduction of 42%"
	if red := 1 - float64(88)/151; red < 0.41 || red > 0.43 {
		t.Errorf("issue reduction = %.2f, want ≈ 0.42", red)
	}
}

func TestChainPressureDegenerate(t *testing.T) {
	if ChainPressure([]int{5}, AllocDecode) != nil {
		t.Error("single-instruction chains have no measurable interval")
	}
	if ChainPressure(nil, AllocIssue) != nil {
		t.Error("empty chains have no intervals")
	}
}

func TestAllocPointStrings(t *testing.T) {
	if AllocDecode.String() != "decode" || AllocIssue.String() != "issue" || AllocWriteback.String() != "write-back" {
		t.Error("allocation point names are part of example output")
	}
}

func TestRunByWorkloadName(t *testing.T) {
	spec := Spec{Workload: "compress", MaxInstr: 3000}
	cfg := defaultTestConfig()
	spec.Config = cfg
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed != 3000 {
		t.Errorf("committed = %d, want 3000", res.Stats.Committed)
	}
	if res.Stats.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	if res.BHTAccuracy <= 0 || res.BHTAccuracy > 1 {
		t.Errorf("BHT accuracy = %v", res.BHTAccuracy)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Spec{Workload: "nonesuch", Config: defaultTestConfig()}); err == nil {
		t.Error("unknown workload must error")
	}
}
