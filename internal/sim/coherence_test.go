package sim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/pipeline"
)

// TestMulticoreSpecCoherenceOffGolden pins the workload path of the
// compatibility gate: RunMulticore with Coherence unset must reproduce
// the exact statistics the PR-4 hierarchy produced. The values were
// captured on these configurations (compress × 2 cores, default machine
// and shared L2, 15000 instructions per core) before the MSI directory
// existed.
func TestMulticoreSpecCoherenceOffGolden(t *testing.T) {
	base := pipeline.Stats{
		Committed: 30000, Issued: 30000,
		CondBranches: 3528, Mispredicts: 2,
		Loads: 1764, Stores: 1764,
		CacheAccesses: 3528, CacheMisses: 846, CacheMergedMiss: 2, PeakMSHRs: 3,
		L2Fetches: 846,
		RegsFreed: 24708,
	}
	namespaced := base
	namespaced.Cycles = 27585
	namespaced.RenameRegStall = 53214
	namespaced.L2Misses = 846
	namespaced.ROBOccupancySum = 2242994
	namespaced.IQOccupancySum = 424524
	namespaced.IntRegsInUseSum = 3527840
	namespaced.FPRegsInUseSum = 1765440
	namespaced.RegLifetimeSum = 2177088

	shared := base
	shared.Cycles = 27169
	shared.RenameRegStall = 52384
	shared.L2Misses = 423
	shared.L2Merges = 423
	shared.L2Conflicts = 454
	shared.ROBOccupancySum = 2208800
	shared.IQOccupancySum = 421144
	shared.IntRegsInUseSum = 3474464
	shared.FPRegsInUseSum = 1738752
	shared.RegLifetimeSum = 2143760

	for _, tc := range []struct {
		sharedAddr bool
		want       pipeline.Stats
	}{{false, namespaced}, {true, shared}} {
		res, err := RunMulticore(MulticoreSpec{
			Workloads:          []string{"compress", "compress"},
			Config:             pipeline.DefaultConfig(),
			L2:                 mem.DefaultL2Config(),
			SharedAddressSpace: tc.sharedAddr,
			MaxInstrPerCore:    15000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Stats.Arch(); got != tc.want {
			t.Errorf("shared=%v: coherence-off run diverges from the PR-4 golden:\n got  %+v\n want %+v",
				tc.sharedAddr, got, tc.want)
		}
	}
}

// TestMulticoreSynthWorkloads: "synth:" names resolve to the preset
// registry, run deterministically, and unknown presets fail like unknown
// workloads.
func TestMulticoreSynthWorkloads(t *testing.T) {
	spec := MulticoreSpec{
		Workloads:          []string{"synth:sharing", "synth:sharing"},
		Config:             pipeline.DefaultConfig(),
		L2:                 mem.DefaultL2Config(),
		SharedAddressSpace: true,
		Coherence:          true,
		MaxInstrPerCore:    5000,
	}
	a, err := RunMulticore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Committed != 10000 {
		t.Errorf("committed %d, want 10000 across 2 synthetic cores", a.Stats.Committed)
	}
	if a.Stats.L2Invalidations == 0 {
		t.Error("the sharing preset in one address space must generate invalidations")
	}
	b, err := RunMulticore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Arch() != b.Stats.Arch() {
		t.Error("synthetic multicore runs must be deterministic")
	}
	spec.Workloads = []string{"synth:nonesuch"}
	if _, err := RunMulticore(spec); err == nil {
		t.Error("unknown synthetic preset must be rejected")
	}
}
