package sim

import (
	"context"
	"fmt"

	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// MulticoreSpec describes a multi-core run: one workload per core, each
// core a full single-thread pipeline with a private L1, all cores behind
// a banked finite shared L2 (or private infinite-L2 hierarchies when
// L2.Enabled is false — with one core, exactly the paper's machine).
type MulticoreSpec struct {
	// Workloads names one catalog kernel per core.
	Workloads []string
	// Config is the per-core machine.
	Config pipeline.Config
	// L2 is the shared-L2 geometry.
	L2 mem.L2Config
	// SharedAddressSpace puts every core in one address space (cores
	// touching the same addresses share L2 lines and merge refills)
	// instead of the namespaced, no-aliasing default.
	SharedAddressSpace bool
	// MaxInstrPerCore bounds every core's trace.
	MaxInstrPerCore int64
}

// MulticoreResult is the outcome of a multi-core run.
type MulticoreResult struct {
	// Stats aggregates across cores: counters summed, cycles the lockstep
	// maximum, the shared L2's counters folded in once.
	Stats pipeline.Stats
	// PerCore holds each core's own statistics (local L1 counters only).
	PerCore []pipeline.Stats
}

// RunMulticore executes the specification and runs every core to
// completion.
func RunMulticore(spec MulticoreSpec) (MulticoreResult, error) {
	return RunMulticoreContext(context.Background(), spec)
}

// RunMulticoreContext executes the specification under ctx: cancellation
// stops the lockstep loop mid-run and surfaces ctx.Err().
func RunMulticoreContext(ctx context.Context, spec MulticoreSpec) (MulticoreResult, error) {
	if err := ctx.Err(); err != nil {
		return MulticoreResult{}, err
	}
	if len(spec.Workloads) == 0 {
		return MulticoreResult{}, fmt.Errorf("sim: multicore run needs at least one workload")
	}
	var gens []trace.Generator
	for _, name := range spec.Workloads {
		w, ok := workloads.ByName(name)
		if !ok {
			return MulticoreResult{}, fmt.Errorf("sim: unknown workload %q", name)
		}
		gen, err := w.NewGen()
		if err != nil {
			return MulticoreResult{}, err
		}
		if spec.MaxInstrPerCore > 0 {
			gen = trace.Take(gen, spec.MaxInstrPerCore)
		}
		gens = append(gens, gen)
	}
	mc, err := pipeline.NewMulticore(pipeline.MulticoreConfig{
		Cores:              len(gens),
		Core:               spec.Config,
		L2:                 spec.L2,
		SharedAddressSpace: spec.SharedAddressSpace,
	}, gens)
	if err != nil {
		return MulticoreResult{}, err
	}
	agg, err := mc.RunContext(ctx, 0)
	if err != nil {
		return MulticoreResult{}, fmt.Errorf("sim: multicore %v: %w", spec.Workloads, err)
	}
	out := MulticoreResult{Stats: agg}
	for i := 0; i < mc.Cores(); i++ {
		out.PerCore = append(out.PerCore, mc.CoreStats(i))
	}
	return out, nil
}
