package sim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// SynthWorkloadPrefix marks a multicore workload name as a synthetic
// preset rather than a catalog kernel: "synth:sharing" runs
// synth.ByName("sharing") on that core. Synthetic presets are stable,
// named identities, so they participate in engine result caching like
// catalog workloads.
const SynthWorkloadPrefix = "synth:"

// MulticoreSpec describes a multi-core run: one workload per core, each
// core a full single-thread pipeline with a private L1, all cores behind
// a banked finite shared L2 (or private infinite-L2 hierarchies when
// L2.Enabled is false — with one core, exactly the paper's machine).
//
//vpr:cachekey
type MulticoreSpec struct {
	// Workloads names one kernel per core: a catalog workload, or a
	// synthetic preset as SynthWorkloadPrefix + name ("synth:sharing").
	Workloads []string
	// Config is the per-core machine.
	Config pipeline.Config
	// L2 is the shared-L2 geometry.
	L2 mem.L2Config
	// SharedAddressSpace puts every core in one address space (cores
	// touching the same addresses share L2 lines and merge refills)
	// instead of the namespaced, no-aliasing default.
	SharedAddressSpace bool
	// Coherence runs the directory protocol over the shared L2 (see
	// pipeline.MulticoreConfig.Coherence). Off, runs are byte-identical
	// to the coherence-free hierarchy.
	Coherence bool
	// Protocol selects the coherence protocol ("msi", "mesi", "moesi";
	// "" = msi) and Directory the sharer representation ("fullmap",
	// "limited[:N]"; "" = fullmap). Both require Coherence.
	Protocol  string
	Directory string
	// MaxInstrPerCore bounds every core's trace.
	MaxInstrPerCore int64
	// Step selects the stepping strategy (lockstep oracle, parallel, or
	// skew:W — see pipeline.ParseStepMode). Every mode produces
	// bit-identical results; the engine still keys on it so throughput
	// experiments comparing steppers never share a cache entry.
	Step pipeline.StepMode
}

// CheckMulticoreWorkload validates one multicore workload name — catalog
// kernel or "synth:" preset — without building its generator, so plan
// builders can fail fast. This is the single definition of the multicore
// workload namespace; MulticoreWorkloadGen resolves the same names.
func CheckMulticoreWorkload(name string) error {
	if preset, ok := strings.CutPrefix(name, SynthWorkloadPrefix); ok {
		if _, ok := synth.ByName(preset); !ok {
			return fmt.Errorf("sim: unknown synthetic preset %q", name)
		}
		return nil
	}
	if _, ok := workloads.ByName(name); !ok {
		return fmt.Errorf("sim: unknown workload %q", name)
	}
	return nil
}

// MulticoreWorkloadGen resolves one multicore workload name — catalog
// kernel or "synth:" preset — to a fresh trace generator.
func MulticoreWorkloadGen(name string) (trace.Generator, error) {
	if err := CheckMulticoreWorkload(name); err != nil {
		return nil, err
	}
	if preset, ok := strings.CutPrefix(name, SynthWorkloadPrefix); ok {
		p, _ := synth.ByName(preset)
		return synth.New(p), nil
	}
	w, _ := workloads.ByName(name)
	return w.NewGen()
}

// MulticoreResult is the outcome of a multi-core run.
type MulticoreResult struct {
	// Stats aggregates across cores: counters summed, cycles the lockstep
	// maximum, the shared L2's counters folded in once.
	Stats pipeline.Stats
	// PerCore holds each core's own statistics (local L1 counters only).
	PerCore []pipeline.Stats
}

// RunMulticore executes the specification and runs every core to
// completion.
func RunMulticore(spec MulticoreSpec) (MulticoreResult, error) {
	return RunMulticoreContext(context.Background(), spec)
}

// RunMulticoreContext executes the specification under ctx: cancellation
// stops the lockstep loop mid-run and surfaces ctx.Err().
func RunMulticoreContext(ctx context.Context, spec MulticoreSpec) (MulticoreResult, error) {
	if err := ctx.Err(); err != nil {
		return MulticoreResult{}, err
	}
	if len(spec.Workloads) == 0 {
		return MulticoreResult{}, fmt.Errorf("sim: multicore run needs at least one workload")
	}
	var gens []trace.Generator
	for _, name := range spec.Workloads {
		gen, err := MulticoreWorkloadGen(name)
		if err != nil {
			return MulticoreResult{}, err
		}
		if spec.MaxInstrPerCore > 0 {
			gen = trace.Take(gen, spec.MaxInstrPerCore)
		}
		gens = append(gens, gen)
	}
	mc, err := pipeline.NewMulticore(pipeline.MulticoreConfig{
		Cores:              len(gens),
		Core:               spec.Config,
		L2:                 spec.L2,
		SharedAddressSpace: spec.SharedAddressSpace,
		Coherence:          spec.Coherence,
		Protocol:           spec.Protocol,
		Directory:          spec.Directory,
		Step:               spec.Step,
	}, gens)
	if err != nil {
		return MulticoreResult{}, err
	}
	agg, err := mc.RunContext(ctx, 0)
	if err != nil {
		return MulticoreResult{}, fmt.Errorf("sim: multicore %v: %w", spec.Workloads, err)
	}
	out := MulticoreResult{Stats: agg}
	for i := 0; i < mc.Cores(); i++ {
		out.PerCore = append(out.PerCore, mc.CoreStats(i))
	}
	return out, nil
}
