// Package metrics provides the small numeric and formatting helpers shared
// by the experiment runners, the CLI tools and the benchmarks: harmonic
// means (the paper's summary statistic for IPC), speedups, and fixed-width
// text tables shaped like the paper's.
package metrics

import (
	"fmt"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs — the correct average for
// rates like IPC, and the one Table 2 of the paper reports. It returns 0
// for an empty slice or any non-positive element.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// ArithmeticMean returns the ordinary average (0 for empty input).
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Speedup returns new/old, guarding against division by zero.
func Speedup(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return new / old
}

// ImprovementPct returns the percentage improvement of new over old,
// matching the paper's "imp. (%)" column.
func ImprovementPct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new/old - 1) * 100
}

// Table renders fixed-width rows for terminal output. Columns are sized to
// their widest cell; the first row is treated as the header and underlined.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from formatted cells: each argument pair is a
// format string and its value.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.rows[1:] {
		writeRow(r)
	}
	return b.String()
}
