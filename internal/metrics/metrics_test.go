package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("HM(1,1,1) = %v", got)
	}
	// The paper's Table 2: harmonic mean of the conventional IPCs.
	conv := []float64{0.73, 0.98, 1.75, 1.14, 1.37, 1.12, 1.32, 2.16, 1.64}
	if got := HarmonicMean(conv); math.Abs(got-1.23) > 0.01 {
		t.Errorf("HM(paper conv IPCs) = %.3f, want ≈ 1.23", got)
	}
	vp := []float64{0.76, 1.05, 1.84, 1.24, 1.76, 2.06, 2.09, 2.24, 1.71}
	if got := HarmonicMean(vp); math.Abs(got-1.46) > 0.01 {
		t.Errorf("HM(paper VP IPCs) = %.3f, want ≈ 1.46", got)
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestPaperTable2HeadlineImprovement(t *testing.T) {
	// 1.23 → 1.46 is the paper's 19% headline.
	imp := ImprovementPct(1.23, 1.46)
	if math.Abs(imp-18.7) > 1 {
		t.Errorf("improvement = %.1f%%, want ≈ 19%%", imp)
	}
}

func TestArithmeticMean(t *testing.T) {
	if got := ArithmeticMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("AM = %v", got)
	}
	if ArithmeticMean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestSpeedupAndImprovement(t *testing.T) {
	if Speedup(2, 3) != 1.5 || Speedup(0, 3) != 0 {
		t.Error("speedup")
	}
	if ImprovementPct(2, 3) != 50 || ImprovementPct(0, 1) != 0 {
		t.Error("improvement")
	}
}

func TestQuickHarmonicLeArithmetic(t *testing.T) {
	// AM–HM inequality on positive inputs.
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= ArithmeticMean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.AddRow("bench", "conv", "vp")
	tb.AddRowf("swim", 1.12, 2.06)
	tb.AddRowf("go", 0.73, 0.76)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench") || !strings.Contains(lines[2], "1.12") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	// Columns align: every body line has the same width as the header.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if (&Table{}).String() != "" {
		t.Error("empty table renders empty")
	}
}
