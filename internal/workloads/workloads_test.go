package workloads

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/trace"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// Every kernel must assemble, run on the emulator without faults for a
// healthy number of instructions, and keep running (the outer loops are
// effectively infinite so experiments can cut traces at any length).
func TestKernelsExecute(t *testing.T) {
	for _, s := range Catalog() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m, err := emu.New(s.Program())
			if err != nil {
				t.Fatal(err)
			}
			const steps = 50000
			n, err := m.Run(steps)
			if err != nil {
				t.Fatal(err)
			}
			if n != steps || m.Halted() {
				t.Fatalf("kernel stopped after %d steps (halted=%v)", n, m.Halted())
			}
		})
	}
}

func TestCatalogIntegrity(t *testing.T) {
	if len(Catalog()) != 9 {
		t.Fatalf("catalog has %d entries, want 9", len(Catalog()))
	}
	seen := map[string]bool{}
	nInt, nFP := 0, 0
	for _, s := range Catalog() {
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Class {
		case "int":
			nInt++
		case "fp":
			nFP++
		default:
			t.Errorf("%s: bad class %q", s.Name, s.Class)
		}
		if s.Description == "" {
			t.Errorf("%s: missing description", s.Name)
		}
	}
	// The paper studies four integer and five FP benchmarks.
	if nInt != 4 || nFP != 5 {
		t.Errorf("class split = %d int / %d fp, want 4/5", nInt, nFP)
	}
	for _, name := range []string{"go", "li", "compress", "vortex", "apsi", "swim", "mgrid", "hydro2d", "wave5"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("missing paper benchmark %q", name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName should reject unknown names")
	}
}

// Character checks: each kernel's instruction mix must match its intended
// role (see the kernel comments in workloads.go). These bounds are loose;
// they protect the experiments from a kernel silently degenerating (e.g. a mis-assembled
// branch turning a loop into straight-line code).
func TestKernelCharacter(t *testing.T) {
	const n = 30000
	mixOf := func(name string) trace.Mix {
		t.Helper()
		gen, err := MustByName(name).NewGen()
		if err != nil {
			t.Fatal(err)
		}
		m := trace.MeasureMix(gen, n)
		if m.Total != n {
			t.Fatalf("%s: trace ended early at %d", name, m.Total)
		}
		return m
	}

	for _, name := range []string{"swim", "mgrid", "hydro2d", "wave5", "apsi"} {
		m := mixOf(name)
		fpWork := m.FPALU + m.FPMul + m.FPDiv
		if frac := m.Frac(fpWork); frac < 0.20 {
			t.Errorf("%s: FP fraction %.2f too low for an FP benchmark", name, frac)
		}
		if m.FPDst <= m.IntDst/2 {
			t.Errorf("%s: FP dests (%d) should dominate int dests (%d)", name, m.FPDst, m.IntDst)
		}
	}
	for _, name := range []string{"go", "li", "compress", "vortex"} {
		m := mixOf(name)
		if m.FPALU+m.FPMul+m.FPDiv+m.FPDst != 0 {
			t.Errorf("%s: integer benchmark must not execute FP work", name)
		}
	}

	// apsi is the only FP kernel with divides in its steady state.
	if m := mixOf("apsi"); m.FPDiv == 0 {
		t.Error("apsi must contain FP divides")
	}
	if m := mixOf("swim"); m.FPDiv != 0 {
		t.Error("swim should not contain FP divides")
	}

	// go is the branchiest kernel and its branches are data-dependent.
	goMix := mixOf("go")
	if frac := goMix.Frac(goMix.Branches); frac < 0.15 {
		t.Errorf("go: branch fraction %.2f too low", frac)
	}
	// compress multiplies in its hash.
	if m := mixOf("compress"); m.IntMul == 0 {
		t.Error("compress must contain integer multiplies")
	}
	// li chases pointers: loads are a substantial fraction.
	liMix := mixOf("li")
	if frac := liMix.Frac(liMix.Loads); frac < 0.15 {
		t.Errorf("li: load fraction %.2f too low", frac)
	}
}

// The li and vortex pointer rings must be complete cycles: the chase must
// never fall into a short loop, which would shrink the working set and
// change the cache behaviour.
func TestShuffledRingIsSingleCycle(t *testing.T) {
	for _, n := range []int{2, 3, 64, 1024} {
		rng := newTestRand()
		next := shuffledRing(n, rng)
		seen := make([]bool, n)
		at := 0
		for i := 0; i < n; i++ {
			if seen[at] {
				t.Fatalf("n=%d: revisited node %d after %d steps", n, at, i)
			}
			seen[at] = true
			at = next[at]
		}
		if at != 0 {
			t.Fatalf("n=%d: cycle did not close (ended at %d)", n, at)
		}
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic for unknown workloads")
		}
	}()
	MustByName("nonesuch")
}

// Builds must be deterministic: two builds of the same kernel produce
// identical programs (experiments depend on run-to-run reproducibility).
func TestBuildDeterministic(t *testing.T) {
	for _, s := range Catalog() {
		p1, p2 := s.Program(), s.Program()
		if len(p1.Insts) != len(p2.Insts) || len(p1.Data) != len(p2.Data) {
			t.Fatalf("%s: nondeterministic build", s.Name)
		}
		for i := range p1.Insts {
			if p1.Insts[i] != p2.Insts[i] {
				t.Fatalf("%s: instruction %d differs between builds", s.Name, i)
			}
		}
		for i := range p1.Data {
			if p1.Data[i] != p2.Data[i] {
				t.Fatalf("%s: data byte %d differs between builds", s.Name, i)
			}
		}
	}
}
