// Package workloads provides the nine benchmark kernels used by the
// experiments, named after the SPEC95 programs the paper simulated (swim,
// hydro2d, mgrid, apsi, wave5; go, compress, li, vortex).
//
// The paper drove its simulator with ATOM-instrumented Alpha traces of the
// real benchmarks, which are not reproducible here; instead each kernel is a
// small assembly program whose *microarchitectural character* matches its
// namesake: operation mix, working-set size relative to the 16 KB L1,
// dependence-chain depth, branch predictability, and long-latency operation
// frequency. The per-kernel comments below document each substitution. The
// kernels run forever (huge outer loops); experiments cut the trace with
// trace.Take.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Spec names one workload.
type Spec struct {
	Name        string
	Class       string // "int" or "fp", following the paper's grouping
	Description string
	build       func() *isa.Program
}

// Program assembles the kernel. The result is deterministic.
func (s Spec) Program() *isa.Program { return s.build() }

// NewGen returns an emulator-backed trace generator for the kernel.
func (s Spec) NewGen() (trace.Generator, error) {
	gen, err := emu.NewTraceGen(s.build())
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
	}
	return gen, nil
}

//vpr:registry workloads
var catalog = []Spec{
	{"go", "int", "branchy board evaluation, data-dependent branches, mostly-resident board", buildGo},
	{"li", "int", "pointer-chasing list interpreter with call/return per node", buildLi},
	{"compress", "int", "hash/insert loop with shift-xor chains, resident table", buildCompress},
	{"vortex", "int", "object-graph traversal, two interleaved pointer chases, part-resident heap", buildVortex},
	{"apsi", "fp", "mixed FP with divides, one streamed and one resident array", buildApsi},
	{"swim", "fp", "2D shallow-water style streaming stencil, arrays >> L1", buildSwim},
	{"mgrid", "fp", "multigrid-style 3-stream stencil, deep reduction chains, streaming", buildMgrid},
	{"hydro2d", "fp", "cache-resident high-ILP sweep", buildHydro2d},
	{"wave5", "fp", "particle push: streamed particles, resident field", buildWave5},
}

// Catalog returns the workloads in the paper's reporting order
// (integer programs first, as in Table 2).
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// Names returns the workload names in catalog order.
//
//vpr:lookup workloads
func Names() []string {
	names := make([]string, len(catalog))
	for i, s := range catalog {
		names[i] = s.Name
	}
	return names
}

// ByName finds a workload.
//
//vpr:lookup workloads
func ByName(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// outerIters is effectively infinite: experiments bound traces with
// trace.Take, never by kernel termination.
const outerIters = 1 << 40

// wordData renders vals as .word lines, eight per line, labelled with name.
func wordData(name string, vals []int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", name)
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		parts := make([]string, 0, 8)
		for _, v := range vals[i:end] {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
		fmt.Fprintf(&b, "        .word %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// shuffledRing returns a random cyclic permutation visiting every node
// exactly once: out[i] is the successor index of node i. Deterministic for a
// given seed.
func shuffledRing(n int, rng *rand.Rand) []int {
	order := rng.Perm(n)
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[order[i]] = order[(i+1)%n]
	}
	return next
}

// ---------------------------------------------------------------------------
// swim: streaming 2-array stencil with a multiply-add chain per element and
// a third streamed output array. Every stream walks far beyond the 16 KB L1,
// so roughly one miss per iteration reaches memory; long-latency loads feed
// dependence chains — the paper's best case for late allocation (+84%).

func buildSwim() *isa.Program {
	const arrayBytes = 1 << 19 // 512 KB per array
	// Per iteration: six FP loads over two streams (1.5 cold lines), two
	// short independent multiply-add chains, two stores (0.5 more lines).
	// Thirteen FP destinations per iteration pin the conventional
	// scheme's effective window to ~2.5 iterations (≈4 outstanding
	// lines), while late allocation lets the full reorder buffer keep
	// all eight MSHRs busy — the paper's best case.
	src := fmt.Sprintf(`
        .data
a:      .space %d
b:      .space %d
u:      .space %d
        .text
        ldi   r9, %d
outer:  ldi   r1, a
        ldi   r2, b
        ldi   r3, u
        ldi   r4, %d
inner:  ldt   f1, 0(r1)
        ldt   f2, 8(r1)
        ldt   f3, 16(r1)
        ldt   f4, 24(r1)
        ldt   f5, 0(r2)
        ldt   f6, 8(r2)
        fadd  f7, f1, f2
        fmul  f8, f7, f20
        fadd  f9, f3, f4
        fmul  f10, f9, f21
        fsub  f11, f5, f6
        fadd  f12, f11, f22
        fmul  f13, f1, f23
        fadd  f14, f3, f24
        fmul  f15, f5, f25
        stt   0(r3), f8
        stt   8(r3), f10
        addi  r1, r1, 32
        addi  r2, r2, 16
        addi  r3, r3, 16
        subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, arrayBytes, arrayBytes, arrayBytes, outerIters, arrayBytes/32)
	return asm.MustAssemble("swim", src)
}

// ---------------------------------------------------------------------------
// mgrid: three input streams (the three grid planes of a 27-point stencil
// collapsed to 1D) and one output stream, with a deep reduction chain.
// Streaming misses on four streams; the chain keeps ILP moderate (+58%).

func buildMgrid() *isa.Program {
	const arrayBytes = 1 << 19
	// Per iteration: nine loads over three plane streams (three cold
	// lines), nine shallow FP ops (18 FP destinations in all), one
	// store, and a block of 3D index arithmetic on the integer side.
	// The conventional window holds < 2 iterations' FP destinations.
	src := fmt.Sprintf(`
        .data
g0:     .space %d
g1:     .space %d
g2:     .space %d
gout:   .space %d
        .text
        ldi   r9, %d
        ldi   r10, 40
outer:  ldi   r1, g0
        ldi   r2, g1
        ldi   r3, g2
        ldi   r5, gout
        ldi   r6, 0
        ldi   r4, %d
inner:  ldt   f1, 0(r1)
        ldt   f2, 8(r1)
        ldt   f3, 16(r1)
        ldt   f4, 0(r2)
        ldt   f5, 8(r2)
        ldt   f6, 16(r2)
        ldt   f7, 24(r2)
        ldt   f8, 0(r3)
        ldt   f9, 8(r3)
        fadd  f10, f1, f20
        fmul  f11, f2, f21
        fadd  f12, f3, f22
        fmul  f13, f4, f20
        fadd  f14, f5, f21
        fmul  f15, f6, f22
        fadd  f16, f7, f20
        fmul  f17, f8, f21
        fadd  f18, f9, f22
        fmul  f19, f1, f21
        fadd  f23, f5, f20
        fmul  f24, f9, f21
        fadd  f25, f3, f22
        fmul  f26, f7, f20
        stt   0(r5), f10
        addi  r6, r6, 1
        slli  r7, r6, 5
        add   r8, r7, r10
        andi  r8, r8, 1016
        add   r11, r8, r7
        srli  r12, r11, 2
        xor   r13, r12, r6
        addi  r14, r13, 3
        and   r15, r14, r10
        addi  r1, r1, 32
        addi  r2, r2, 32
        addi  r3, r3, 16
        addi  r5, r5, 8
        subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, arrayBytes, arrayBytes, arrayBytes, arrayBytes, outerIters, arrayBytes/32)
	return asm.MustAssemble("mgrid", src)
}

// ---------------------------------------------------------------------------
// apsi: mixed floating point with a divide in the loop-carried chain, one
// streamed array and one resident table. Fewer misses than swim/mgrid,
// divide latency exposed (+28%).

func buildApsi() *isa.Program {
	const (
		streamBytes = 1 << 18 // 256 KB streamed
		tableBytes  = 1 << 13 // 8 KB resident
	)
	src := fmt.Sprintf(`
        .data
s:      .space %d
tbl:    .space %d
out:    .space %d
        .text
        ldi   r9, %d
        ldi   r10, tbl
outer:  ldi   r1, s
        ldi   r3, out
        ldi   r4, %d
        ldi   r6, 0
inner:  add   r2, r10, r6
        ldt   f1, 0(r1)
        ldt   f2, 0(r2)
        ldt   f3, 8(r1)
        fadd  f4, f1, f20
        fdiv  f5, f4, f2
        fmul  f6, f3, f21
        fdiv  f7, f6, f22
        fadd  f8, f5, f23
        fadd  f9, f7, f24
        fmul  f10, f1, f25
        fadd  f11, f3, f26
        stt   0(r3), f8
        stt   8(r3), f9
        addi  r6, r6, 8
        andi  r6, r6, %d
        slli  r7, r6, 2
        xor   r8, r7, r6
        addi  r1, r1, 16
        addi  r3, r3, 16
        subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, streamBytes, tableBytes, streamBytes, outerIters, streamBytes/16, tableBytes-8)
	return asm.MustAssemble("apsi", src)
}

// ---------------------------------------------------------------------------
// hydro2d: everything resident (four 4 KB arrays exactly fill the
// direct-mapped 16 KB L1 without conflicting), shallow chains, wide ILP.
// The conventional scheme is rarely register-starved, so the VP gain is
// small (+4%) and the absolute IPC high.

func buildHydro2d() *isa.Program {
	const arrayBytes = 1 << 12 // 4 KB each
	src := fmt.Sprintf(`
        .data
ha:     .space %d
hb:     .space %d
hc:     .space %d
hd:     .space %d
        .text
        ldi   r9, %d
outer:  ldi   r1, ha
        ldi   r2, hb
        ldi   r3, hc
        ldi   r4, hd
        ldi   r5, %d
inner:  ldt   f1, 0(r1)
        ldt   f2, 0(r2)
        fmul  f3, f1, f20
        fadd  f4, f3, f2
        stt   0(r3), f4
        ldt   f5, 8(r1)
        ldt   f6, 8(r2)
        fmul  f7, f5, f21
        fadd  f8, f7, f6
        stt   8(r3), f8
        ldt   f9, 0(r4)
        fadd  f10, f9, f22
        stt   0(r4), f10
        fadd  f30, f30, f4
        fadd  f30, f30, f8
        addi  r1, r1, 16
        addi  r2, r2, 16
        addi  r3, r3, 16
        addi  r4, r4, 8
        subi  r5, r5, 1
        bne   r5, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, arrayBytes, arrayBytes, arrayBytes, arrayBytes, outerIters, arrayBytes/16)
	return asm.MustAssemble("hydro2d", src)
}

// ---------------------------------------------------------------------------
// wave5: particle push — streamed particle position/velocity arrays, a
// resident 4 KB field table indexed by the particle position, and a
// moderate-depth update chain (+4%, IPC between hydro2d and swim).

func buildWave5() *isa.Program {
	const (
		particleBytes = 1 << 18 // 256 KB per particle array
		fieldBytes    = 1 << 12 // 4 KB resident field
	)
	src := fmt.Sprintf(`
        .data
pos:    .space %d
vel:    .space %d
fld:    .space %d
        .text
        ldi   r9, %d
outer:  ldi   r1, pos
        ldi   r2, vel
        ldi   r10, fld
        ldi   r4, %d
        ldi   r6, 0
inner:  ldt   f1, 0(r1)
        ldt   f2, 0(r2)
        add   r7, r10, r6
        ldt   f3, 0(r7)
        fmul  f4, f3, f20
        fadd  f5, f2, f4
        fadd  f6, f1, f5
        stt   0(r1), f6
        stt   0(r2), f5
        ldt   f7, 8(r1)
        fadd  f8, f7, f5
        stt   8(r1), f8
        fadd  f29, f29, f21
        fadd  f29, f29, f22
        fadd  f29, f29, f23
        addi  r6, r6, 8
        andi  r6, r6, %d
        slli  r8, r6, 1
        xor   r11, r8, r6
        addi  r12, r11, 5
        and   r13, r12, r8
        addi  r1, r1, 16
        addi  r2, r2, 8
        subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, particleBytes, particleBytes, fieldBytes, outerIters, particleBytes/16, fieldBytes-8)
	return asm.MustAssemble("wave5", src)
}

// ---------------------------------------------------------------------------
// go: board evaluation — xorshift walk over a mostly-resident board with
// several data-dependent (50/50) branches per position. Mispredictions,
// not registers, bound performance (IPC 0.73, +4%).

func buildGo() *isa.Program {
	const boardWords = 4096 // 32 KB board, mask keeps a 16 KB window hot
	rng := rand.New(rand.NewSource(1))
	board := make([]int64, boardWords)
	for i := range board {
		board[i] = rng.Int63()
	}
	src := fmt.Sprintf(`
        .data
%s
        .text
        ldi   r9, %d
outer:  ldi   r1, board
        ldi   r4, 100000
        ldi   r5, 88172645463325252
        ldi   r12, 0
        ldi   r14, 0
inner:  slli  r6, r5, 13
        xor   r5, r5, r6
        srli  r6, r5, 7
        xor   r5, r5, r6
        slli  r6, r5, 17
        xor   r5, r5, r6
        andi  r7, r5, %d
        add   r8, r1, r7
        ldq   r10, 0(r8)
        andi  r11, r10, 1
        bne   r11, t1
        addi  r12, r12, 1
        br    t2
t1:     subi  r12, r12, 1
t2:     andi  r13, r10, 2
        bne   r13, t3
        addi  r14, r14, 1
t3:     andi  r15, r10, 4
        bne   r15, t4
        add   r14, r14, r12
t4:     subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, wordData("board", board), outerIters, 16*1024-8)
	return asm.MustAssemble("go", src)
}

// ---------------------------------------------------------------------------
// li: list interpreter — a randomized circular cons-cell list (resident,
// 16 KB) chased serially with a call/return and a value-dependent branch per
// node. The dependent-load chain limits ILP (IPC ~1, +7%).

func buildLi() *isa.Program {
	const nodes = 512 // 8 KB of 2-word cells; with the 8 KB side table the L1 is exactly partitioned
	rng := rand.New(rand.NewSource(2))
	next := shuffledRing(nodes, rng)
	cells := make([]int64, 2*nodes)
	for i := 0; i < nodes; i++ {
		cells[2*i] = int64(isa.DefaultDataBase) + int64(16*next[i]) // next pointer
		cells[2*i+1] = rng.Int63()                                  // value
	}
	src := fmt.Sprintf(`
        .data
%s
ltab:   .space 8192
        .text
        ldi   r9, %d
        ldi   r27, ltab
        ldi   r28, 2654435761
outer:  ldi   r1, cells
        ldi   r4, 100000
        ldi   r6, 0
inner:  ldq   r2, 8(r1)
        bsr   r26, eval
        ldq   r1, 0(r1)
        subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
eval:   andi  r7, r2, 8184
        add   r8, r27, r7
        ldq   r10, 0(r8)
        add   r6, r6, r10
        mul   r11, r2, r28
        mul   r12, r11, r28
        andi  r3, r12, 3
        beq   r3, e1
        addi  r6, r6, 1
        ret   r26
e1:     subi  r6, r6, 1
        ret   r26
`, wordData("cells", cells), outerIters)
	return asm.MustAssemble("li", src)
}

// ---------------------------------------------------------------------------
// compress: hash/insert loop — xorshift input generation, multiply hash,
// probe of a resident 16 KB table, rare-taken mismatch branch, occasional
// store. Predictable branches and short chains give the highest integer
// IPC (1.75, +5%).

func buildCompress() *isa.Program {
	const tableBytes = 1 << 14 // 16 KB, resident
	src := fmt.Sprintf(`
        .data
htab:   .space %d
        .text
        ldi   r9, %d
        ldi   r20, htab
        ldi   r21, 2654435761
outer:  ldi   r4, 100000
        ldi   r5, 123456789
        ldi   r12, 0
inner:  slli  r6, r5, 13
        xor   r5, r5, r6
        srli  r6, r5, 7
        xor   r5, r5, r6
        slli  r6, r5, 17
        xor   r5, r5, r6
        mul   r7, r5, r21
        srli  r7, r7, 18
        andi  r7, r7, %d
        add   r8, r20, r7
        ldq   r10, 0(r8)
        cmpeq r11, r10, r5
        bne   r11, hit
        stq   0(r8), r5
hit:    addi  r12, r12, 1
        subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, tableBytes, outerIters, tableBytes-8)
	return asm.MustAssemble("compress", src)
}

// ---------------------------------------------------------------------------
// vortex: object database — two interleaved pointer chases over a 64 KB
// object heap (~75% of probes miss) with type-dependent field updates.
// The two chains and the surrounding field work give more ILP than li but
// the heap misses keep IPC at ~1.1 (+9%).

func buildVortex() *isa.Program {
	const objects = 512 // 16 KB of 4-word objects; the streaming index scan causes occasional evictions
	rng := rand.New(rand.NewSource(3))
	// Even-numbered objects form one long randomized cycle, odd-numbered
	// objects another, so the two interleaved chases each traverse half
	// the heap without degenerating into short loops.
	ringOver := func(members []int) map[int]int {
		order := make([]int, len(members))
		copy(order, members)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		next := make(map[int]int, len(order))
		for i := range order {
			next[order[i]] = order[(i+1)%len(order)]
		}
		return next
	}
	var evens, odds []int
	for i := 0; i < objects; i++ {
		if i%2 == 0 {
			evens = append(evens, i)
		} else {
			odds = append(odds, i)
		}
	}
	nextEven, nextOdd := ringOver(evens), ringOver(odds)
	words := make([]int64, 4*objects)
	for i := 0; i < objects; i++ {
		n := nextEven[i]
		if i%2 == 1 {
			n = nextOdd[i]
		}
		words[4*i] = int64(isa.DefaultDataBase) + int64(32*n) // next
		words[4*i+1] = rng.Int63n(100)                        // field a
		words[4*i+2] = rng.Int63n(100)                        // field b
		tag := int64(0)
		if rng.Int63n(100) >= 85 {
			tag = 1
		}
		words[4*i+3] = tag // type tag: biased like real dispatch branches
	}
	src := fmt.Sprintf(`
        .data
%s
        .data
idx:    .space 262144
        .text
        ldi   r9, %d
outer:  ldi   r1, objs
        ldi   r2, objs+32
        ldi   r20, idx
        ldi   r4, 100000
inner:  ldq   r16, 0(r20)
        add   r21, r21, r16
        addi  r20, r20, 8
        ldq   r3, 24(r1)
        ldq   r13, 24(r2)
        beq   r3, a0
        ldq   r5, 8(r1)
        addi  r5, r5, 1
        stq   8(r1), r5
        br    anx
a0:     ldq   r5, 16(r1)
        subi  r5, r5, 1
        stq   16(r1), r5
anx:    beq   r13, b0
        ldq   r15, 8(r2)
        addi  r15, r15, 3
        stq   8(r2), r15
        br    bnx
b0:     ldq   r15, 16(r2)
        subi  r15, r15, 3
        stq   16(r2), r15
bnx:    ldq   r1, 0(r1)
        ldq   r2, 0(r2)
        andi  r22, r4, 8191
        bne   r22, noidx
        ldi   r20, idx
noidx:  subi  r4, r4, 1
        bne   r4, inner
        subi  r9, r9, 1
        bne   r9, outer
        halt
`, wordData("objs", words), outerIters)
	return asm.MustAssemble("vortex", src)
}

// sortedNames is used in error messages.
func sortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}

// MustByName resolves a workload or panics with the list of valid names.
func MustByName(name string) Spec {
	s, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q (have %v)", name, sortedNames()))
	}
	return s
}
