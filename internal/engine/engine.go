// Package engine turns the single-point simulator in internal/sim into a
// service: an Engine owns a worker pool and a deterministic result cache
// and exposes context-aware single, batch, SMT-batch and multicore-batch
// entry points.
//
// Batches fan their specs out over the pool and collect results in spec
// order, so a batch's output is byte-for-byte independent of the
// parallelism level — the simulator itself is deterministic, and ordering
// is the only thing concurrency could perturb. (Multi-core machines are
// sharded across the pool as whole machines; the cores of one machine
// stay in lockstep on one worker.) The cache is keyed by a canonical
// hash of workload/generator identity, machine configuration and
// instruction budget (see specKey) — for multi-core specs also the
// shared-L2 geometry, address-space mode and coherence switch — so
// overlapping sweeps, e.g. the conventional baseline shared by figures
// 4, 5 and 7, never re-simulate the same point.
package engine

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/sim"
)

// DefaultCacheCapacity bounds the default result cache. Entries are a few
// hundred bytes of statistics each; 4096 comfortably covers every point of
// every registered experiment at several instruction budgets.
const DefaultCacheCapacity = 4096

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism caps the number of concurrently running simulations in a
// batch. n < 1 selects GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithCache sizes the deterministic result cache (entries, LRU-evicted).
// capacity <= 0 disables caching entirely.
func WithCache(capacity int) Option {
	return func(e *Engine) { e.cacheCapacity = capacity }
}

// WithProgress installs a callback invoked once per completed batch point
// (cache hits included). It may be called from multiple goroutines; the
// Engine serializes the calls.
func WithProgress(fn func(format string, args ...any)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithRunHook installs a callback invoked immediately before every actual
// simulation — cache hits do not fire it — which makes cache behaviour
// observable (count the calls) and supports external metering. It may be
// called from multiple goroutines.
func WithRunHook(fn func(spec sim.Spec)) Option {
	return func(e *Engine) { e.runHook = fn }
}

// WithProbe attaches a pipeline probe to every simulation the engine runs;
// a spec-level probe (Config.Policies.Probe) takes precedence for its run.
// Probed runs never read the result cache — a cached result would skip the
// callbacks — but still populate it for unprobed repeats. Batches invoke
// the probe from several goroutines at once, so it must be safe for
// concurrent use.
func WithProbe(p pipeline.Probe) Option {
	return func(e *Engine) { e.probe = p }
}

// Engine executes simulation points with bounded parallelism and result
// caching. The zero value is not ready; use New. An Engine is safe for
// concurrent use.
type Engine struct {
	parallelism   int
	cacheCapacity int
	cache         *resultCache
	runHook       func(sim.Spec)
	probe         pipeline.Probe

	progressMu sync.Mutex
	progress   func(format string, args ...any)
}

// New builds an Engine. Defaults: parallelism = GOMAXPROCS, cache of
// DefaultCacheCapacity entries, no progress output.
func New(opts ...Option) *Engine {
	e := &Engine{parallelism: 0, cacheCapacity: DefaultCacheCapacity}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallelism < 1 {
		e.parallelism = runtime.GOMAXPROCS(0)
	}
	if e.cacheCapacity > 0 {
		e.cache = newResultCache(e.cacheCapacity)
	}
	return e
}

// Parallelism reports the worker-pool width batches run with.
func (e *Engine) Parallelism() int { return e.parallelism }

// CacheStats reports lifetime cache hits and misses (zeros when caching is
// disabled).
func (e *Engine) CacheStats() (hits, misses int64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.stats()
}

func (e *Engine) progressf(format string, args ...any) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.progress(format, args...)
}

// Run executes one point, consulting and populating the cache. Probed
// specs (an attached engine probe or Config.Policies.Probe) bypass the
// cache read so the probe always observes a real simulation.
func (e *Engine) Run(ctx context.Context, spec sim.Spec) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	if e.probe != nil && spec.Config.Policies.Probe == nil {
		spec.Config.Policies.Probe = e.probe
	}
	key, cacheable := specKey(spec)
	if cacheable && e.cache != nil && spec.Config.Policies.Probe == nil {
		if v, ok := e.cache.get(key); ok {
			e.progressf("engine: cached %s", runLabel(spec))
			return v.(sim.Result), nil
		}
	}
	if e.runHook != nil {
		e.runHook(spec)
	}
	res, err := sim.RunContext(ctx, spec)
	if err != nil {
		return res, err
	}
	if cacheable && e.cache != nil {
		e.cache.put(key, res)
	}
	e.progressf("engine: ran %s", runLabel(spec))
	return res, nil
}

// RunSMT executes one multithreaded point, consulting and populating the
// cache. The same probe handling as Run applies.
func (e *Engine) RunSMT(ctx context.Context, spec sim.SMTSpec) (sim.SMTResult, error) {
	if err := ctx.Err(); err != nil {
		return sim.SMTResult{}, err
	}
	if e.probe != nil && spec.Config.Policies.Probe == nil {
		spec.Config.Policies.Probe = e.probe
	}
	key := smtKey(spec)
	if e.cache != nil && spec.Config.Policies.Probe == nil {
		if v, ok := e.cache.get(key); ok {
			e.progressf("engine: cached smt %v", spec.Workloads)
			return copySMTResult(v.(sim.SMTResult)), nil
		}
	}
	res, err := sim.RunSMTContext(ctx, spec)
	if err != nil {
		return res, err
	}
	if e.cache != nil {
		e.cache.put(key, copySMTResult(res))
	}
	e.progressf("engine: ran smt %v", spec.Workloads)
	return res, nil
}

// copySMTResult deep-copies the result's slice so cached entries never
// share a backing array with what callers receive (sim.Result needs no
// equivalent: pipeline.Stats is all scalars).
func copySMTResult(r sim.SMTResult) sim.SMTResult {
	r.PerThreadCommitted = append([]int64(nil), r.PerThreadCommitted...)
	return r
}

// RunMulticore executes one multi-core point, consulting and populating
// the cache; the key covers the per-core machine and the shared-L2
// memory configuration. The same probe handling as Run applies (the
// probe reaches every core).
func (e *Engine) RunMulticore(ctx context.Context, spec sim.MulticoreSpec) (sim.MulticoreResult, error) {
	if err := ctx.Err(); err != nil {
		return sim.MulticoreResult{}, err
	}
	if e.probe != nil && spec.Config.Policies.Probe == nil {
		spec.Config.Policies.Probe = e.probe
	}
	key := multicoreKey(spec)
	if e.cache != nil && spec.Config.Policies.Probe == nil {
		if v, ok := e.cache.get(key); ok {
			e.progressf("engine: cached multicore %v", spec.Workloads)
			return copyMulticoreResult(v.(sim.MulticoreResult)), nil
		}
	}
	res, err := sim.RunMulticoreContext(ctx, spec)
	if err != nil {
		return res, err
	}
	if e.cache != nil {
		e.cache.put(key, copyMulticoreResult(res))
	}
	e.progressf("engine: ran multicore %v", spec.Workloads)
	return res, nil
}

// RunMulticoreBatch fans independent multi-core specs out over the worker
// pool — each multi-core machine runs its cores in lockstep on one
// worker; the sharding is across machines — and returns results in spec
// order.
func (e *Engine) RunMulticoreBatch(ctx context.Context, specs []sim.MulticoreSpec) ([]sim.MulticoreResult, error) {
	results := make([]sim.MulticoreResult, len(specs))
	err := e.forEach(ctx, len(specs), func(ctx context.Context, i int) error {
		res, err := e.RunMulticore(ctx, specs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// copyMulticoreResult deep-copies the per-core slice so cached entries
// never share a backing array with what callers receive.
func copyMulticoreResult(r sim.MulticoreResult) sim.MulticoreResult {
	r.PerCore = append([]pipeline.Stats(nil), r.PerCore...)
	return r
}

// RunBatch fans specs out over the worker pool and returns results in spec
// order. The first error cancels the remaining work and is returned; if
// ctx is cancelled, the returned error satisfies errors.Is(err,
// ctx.Err()) (a cancellation that lands mid-simulation arrives wrapped
// with the workload name). Results are identical at every parallelism
// level.
func (e *Engine) RunBatch(ctx context.Context, specs []sim.Spec) ([]sim.Result, error) {
	results := make([]sim.Result, len(specs))
	err := e.forEach(ctx, len(specs), func(ctx context.Context, i int) error {
		res, err := e.Run(ctx, specs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunSMTBatch is RunBatch for multithreaded points.
func (e *Engine) RunSMTBatch(ctx context.Context, specs []sim.SMTSpec) ([]sim.SMTResult, error) {
	results := make([]sim.SMTResult, len(specs))
	err := e.forEach(ctx, len(specs), func(ctx context.Context, i int) error {
		res, err := e.RunSMT(ctx, specs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// forEach runs fn(0..n-1) over the worker pool, cancelling the batch on
// the first error and returning it.
func (e *Engine) forEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.parallelism
	if workers > n {
		workers = n
	}
	indexes := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indexes {
				if ctx.Err() != nil {
					fail(ctx.Err())
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case indexes <- i:
		case <-ctx.Done():
			i = n // stop feeding; workers drain via ctx
		}
	}
	close(indexes)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

func runLabel(spec sim.Spec) string {
	if spec.Workload != "" {
		return spec.Workload
	}
	if spec.GenID != "" {
		return "gen:" + spec.GenID
	}
	return "custom"
}
