package engine

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// cacheKey identifies one simulation point. Two specs with equal keys are
// guaranteed (workload runs) or asserted by the caller (GenID runs) to
// produce identical results, so a cached result can stand in for a run.
type cacheKey [sha256.Size]byte

// specKey canonically hashes a spec's workload/generator identity, machine
// configuration (scheme, renaming parameters, cache geometry, ... — every
// field of pipeline.Config is a value type, so %#v is a canonical
// rendering; the Policies field renders as its fetch/issue policy *names*
// via pipeline.Policies.GoString, so two configs selecting the same named
// policies share an entry while non-default policies key distinctly, and
// probes — pure observers — never perturb the key) and instruction budget.
// Specs driven by an anonymous custom generator have no stable identity
// and are reported as not cacheable.
//
//vpr:keyfunc sim.Spec
func specKey(spec sim.Spec) (cacheKey, bool) {
	if spec.Gen != nil && spec.GenID == "" {
		return cacheKey{}, false
	}
	id := spec.Workload
	if spec.Gen != nil {
		id = "gen:" + spec.GenID
	}
	return sha256.Sum256([]byte(fmt.Sprintf("run|%s|%d|%#v", id, spec.MaxInstr, spec.Config))), true
}

// smtKey is specKey for multithreaded runs; SMT specs always name catalog
// workloads, so they are always cacheable.
//
//vpr:keyfunc sim.SMTSpec
func smtKey(spec sim.SMTSpec) cacheKey {
	return sha256.Sum256([]byte(fmt.Sprintf("smt|%q|%d|%#v", spec.Workloads, spec.MaxInstrPerThread, spec.Config)))
}

// multicoreKey is specKey for multi-core runs: the hash covers the
// per-core machine configuration, the memory configuration (shared-L2
// geometry, the address-space mode, the coherence switch and the
// protocol/directory selections) and the stepping mode, so two specs
// differing only in the memory hierarchy — or in which stepper produced
// the throughput numbers — never share a cache entry.
//
//vpr:keyfunc sim.MulticoreSpec
func multicoreKey(spec sim.MulticoreSpec) cacheKey {
	return sha256.Sum256([]byte(fmt.Sprintf("mc|%q|%d|%#v|%#v|%v|%v|%q|%q|%q",
		spec.Workloads, spec.MaxInstrPerCore, spec.Config, spec.L2,
		spec.SharedAddressSpace, spec.Coherence, spec.Protocol,
		spec.Directory, string(spec.Step))))
}

// resultCache is a concurrency-safe LRU over completed runs. Values are
// sim.Result or sim.SMTResult depending on the key namespace.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key   cacheKey
	value any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *resultCache) get(key cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

func (c *resultCache) put(key cacheKey, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats reports lifetime hit/miss counters.
func (c *resultCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
