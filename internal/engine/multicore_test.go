package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func mcSpec(cores int, l2 mem.L2Config) sim.MulticoreSpec {
	names := make([]string, cores)
	for i := range names {
		names[i] = "compress"
	}
	return sim.MulticoreSpec{
		Workloads:       names,
		Config:          pipeline.DefaultConfig(),
		L2:              l2,
		MaxInstrPerCore: 3_000,
	}
}

// TestRunMulticoreCaches: a repeated multi-core point is served from the
// cache; changing only the shared-L2 memory configuration re-simulates
// (the key covers the mem config).
func TestRunMulticoreCaches(t *testing.T) {
	e := New()
	ctx := context.Background()
	l2 := mem.DefaultL2Config()

	first, err := e.RunMulticore(ctx, mcSpec(2, l2))
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.RunMulticore(ctx, mcSpec(2, l2))
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e.CacheStats(); hits != 1 {
		t.Errorf("repeat point: %d cache hits, want 1", hits)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached multi-core result differs from the original")
	}
	// Mutating the cached copy must not poison the cache.
	again.PerCore[0] = pipeline.Stats{}
	third, _ := e.RunMulticore(ctx, mcSpec(2, l2))
	if !reflect.DeepEqual(first, third) {
		t.Error("cache entry shares state with a returned result")
	}

	smaller := l2
	smaller.SizeBytes = 64 * 1024
	if _, err := e.RunMulticore(ctx, mcSpec(2, smaller)); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 2 || misses != 2 {
		t.Errorf("L2-size change: hits/misses = %d/%d, want 2/2 (mem config keys the cache)", hits, misses)
	}
}

// TestRunMulticoreCoherenceKeysCache: flipping only the Coherence (or
// SharedAddressSpace) switch is a different machine and must never share
// a cache entry with the coherence-free run.
func TestRunMulticoreCoherenceKeysCache(t *testing.T) {
	e := New()
	ctx := context.Background()
	base := mcSpec(2, mem.DefaultL2Config())
	base.SharedAddressSpace = true

	off, err := e.RunMulticore(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	coherent := base
	coherent.Coherence = true
	if _, err := e.RunMulticore(ctx, coherent); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("coherence flip: hits/misses = %d/%d, want 0/2 (Coherence keys the cache)", hits, misses)
	}
	if off.Stats.L2Invalidations != 0 {
		t.Errorf("coherence-off run recorded %d invalidations", off.Stats.L2Invalidations)
	}
	// Both variants are cached independently.
	if _, err := e.RunMulticore(ctx, base); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunMulticore(ctx, coherent); err != nil {
		t.Fatal(err)
	}
	if hits, _ := e.CacheStats(); hits != 2 {
		t.Errorf("repeat points: %d cache hits, want 2", hits)
	}
}

// TestRunMulticoreStepKeysCache: the stepping mode yields bit-identical
// results, but throughput experiments comparing modes must never share a
// cache entry — Step is part of the key, and the cached results agree.
func TestRunMulticoreStepKeysCache(t *testing.T) {
	e := New()
	ctx := context.Background()
	base := mcSpec(2, mem.DefaultL2Config())

	lock, err := e.RunMulticore(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Step = pipeline.StepParallel
	parRes, err := e.RunMulticore(ctx, par)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("step flip: hits/misses = %d/%d, want 0/2 (Step keys the cache)", hits, misses)
	}
	if lock.Stats.Arch() != parRes.Stats.Arch() {
		t.Error("parallel-stepped run differs architecturally from lockstep")
	}
	if _, err := e.RunMulticore(ctx, par); err != nil {
		t.Fatal(err)
	}
	if hits, _ := e.CacheStats(); hits != 1 {
		t.Errorf("repeat parallel point: %d cache hits, want 1", hits)
	}
}

// TestRunMulticoreBatchDeterministic: batches of multi-core machines
// produce identical results at every parallelism level.
func TestRunMulticoreBatchDeterministic(t *testing.T) {
	specs := []sim.MulticoreSpec{
		mcSpec(1, mem.DefaultL2Config()),
		mcSpec(2, mem.DefaultL2Config()),
		mcSpec(2, mem.L2Config{}), // shared L2 disabled: private hierarchies
	}
	serial, err := New(WithParallelism(1), WithCache(0)).RunMulticoreBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(WithParallelism(8), WithCache(0)).RunMulticoreBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Stats.Arch() != parallel[i].Stats.Arch() {
			t.Errorf("spec %d: serial and parallel multi-core runs differ", i)
		}
	}
	if serial[0].Stats.Committed >= serial[1].Stats.Committed {
		t.Error("2-core point should commit more in aggregate than 1-core")
	}
}

// TestRunMulticoreCountersCacheNeutral: the parallel stepper's wait
// counters live in results, never in cache keys — a repeated parallel
// point is a cache hit even though its first run recorded nonzero,
// host-scheduling-dependent counters, the cached copy returns those
// counters verbatim, and Arch() equality with the lockstep twin is
// unaffected by them.
func TestRunMulticoreCountersCacheNeutral(t *testing.T) {
	e := New()
	ctx := context.Background()
	spec := mcSpec(2, mem.DefaultL2Config())
	spec.SharedAddressSpace = true
	spec.Coherence = true
	spec.Step = pipeline.StepParallel

	first, err := e.RunMulticore(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := first.Stats.GateWaits + first.Stats.PacingWaits; n == 0 {
		t.Fatal("parallel coherent run recorded no gate or pacing waits; the counter path is dead")
	}
	again, err := e.RunMulticore(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := e.CacheStats(); hits != 1 {
		t.Errorf("repeat parallel point: %d cache hits, want 1 (counters must not reach the key)", hits)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached result differs from the original (counters included)")
	}
	lockSpec := spec
	lockSpec.Step = pipeline.StepLockstep
	lock, err := e.RunMulticore(ctx, lockSpec)
	if err != nil {
		t.Fatal(err)
	}
	if lock.Stats.Arch() != first.Stats.Arch() {
		t.Error("counters leaked into the architectural view: parallel Arch() != lockstep Arch()")
	}
}
