package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workloads"
)

const testInstr = 3_000

// arch strips the host-throughput fields (wall-clock dependent, so they
// legitimately differ between runs) before result comparisons.
func arch(r sim.Result) sim.Result {
	r.Stats = r.Stats.Arch()
	return r
}

func archSMT(r sim.SMTResult) sim.SMTResult {
	r.Stats = r.Stats.Arch()
	return r
}

// spec builds a small point: the named workload under the given NRR.
func spec(workload string, nrr int) sim.Spec {
	cfg := pipeline.DefaultConfig()
	cfg.Rename.NRRInt = nrr
	cfg.Rename.NRRFP = nrr
	return sim.Spec{Workload: workload, Config: cfg, MaxInstr: testInstr}
}

// batchSpecs is a 2 workloads × 3 NRR grid of distinct points.
func batchSpecs() []sim.Spec {
	var specs []sim.Spec
	for _, w := range []string{"compress", "hydro2d"} {
		for _, nrr := range []int{8, 16, 32} {
			specs = append(specs, spec(w, nrr))
		}
	}
	return specs
}

// TestRunBatchDeterministic is the acceptance-criteria test: a batch run
// at parallelism N returns exactly the results of the same batch at
// parallelism 1, in the same order.
func TestRunBatchDeterministic(t *testing.T) {
	specs := batchSpecs()
	serial, err := New(WithParallelism(1)).RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(WithParallelism(8)).RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("result lengths: serial %d, parallel %d, want %d", len(serial), len(parallel), len(specs))
	}
	for i := range serial {
		if !reflect.DeepEqual(arch(serial[i]), arch(parallel[i])) {
			t.Errorf("spec %d (%s): serial and parallel results differ:\nserial:   %+v\nparallel: %+v",
				i, specs[i].Workload, serial[i], parallel[i])
		}
	}
}

// TestRunBatchCancellation proves context cancellation stops a batch
// early: with one worker and a hook that cancels during the first
// simulation, none of the remaining specs run.
func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	eng := New(WithParallelism(1), WithRunHook(func(sim.Spec) {
		if started.Add(1) == 1 {
			cancel()
		}
	}))
	_, err := eng.RunBatch(ctx, batchSpecs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n != 1 {
		t.Errorf("simulations started after cancel: %d, want 1", n)
	}
}

// TestRunBatchPreCancelled: a batch under an already-cancelled context
// simulates nothing.
func TestRunBatchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int64
	eng := New(WithRunHook(func(sim.Spec) { started.Add(1) }))
	if _, err := eng.RunBatch(ctx, batchSpecs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n != 0 {
		t.Errorf("simulations started under cancelled context: %d", n)
	}
}

// TestCacheHitsSkipSimulation: the second identical run comes from the
// cache (the counting hook fires once) and returns the identical result.
func TestCacheHitsSkipSimulation(t *testing.T) {
	var sims atomic.Int64
	eng := New(WithParallelism(2), WithRunHook(func(sim.Spec) { sims.Add(1) }))
	ctx := context.Background()
	first, err := eng.Run(ctx, spec("compress", 32))
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(ctx, spec("compress", 32))
	if err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 1 {
		t.Errorf("simulations = %d, want 1 (second run must hit the cache)", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached result differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if hits, misses := eng.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestCacheOverlappingBatches: re-running a whole batch re-simulates
// nothing; a batch overlapping half of it simulates only the new points.
func TestCacheOverlappingBatches(t *testing.T) {
	var sims atomic.Int64
	eng := New(WithRunHook(func(sim.Spec) { sims.Add(1) }))
	ctx := context.Background()
	specs := batchSpecs()
	if _, err := eng.RunBatch(ctx, specs); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != int64(len(specs)) {
		t.Fatalf("first batch simulated %d of %d", n, len(specs))
	}
	if _, err := eng.RunBatch(ctx, specs); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != int64(len(specs)) {
		t.Errorf("identical batch re-simulated: %d total sims, want %d", n, len(specs))
	}
	overlapping := append(batchSpecs()[:3], spec("go", 24))
	if _, err := eng.RunBatch(ctx, overlapping); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != int64(len(specs))+1 {
		t.Errorf("overlapping batch: %d total sims, want %d", n, len(specs)+1)
	}
}

// TestCacheKeySensitivity: changing any identity component — workload,
// configuration, or budget — must miss the cache.
func TestCacheKeySensitivity(t *testing.T) {
	base := spec("compress", 32)
	variants := map[string]sim.Spec{
		"workload": spec("hydro2d", 32),
		"nrr":      spec("compress", 16),
		"budget": func() sim.Spec {
			s := spec("compress", 32)
			s.MaxInstr = testInstr / 2
			return s
		}(),
		"scheme": func() sim.Spec {
			s := spec("compress", 32)
			s.Config.Scheme = 1
			return s
		}(),
		"miss-penalty": func() sim.Spec {
			s := spec("compress", 32)
			s.Config.Cache.MissPenalty = 20
			return s
		}(),
	}
	baseKey, ok := specKey(base)
	if !ok {
		t.Fatal("workload spec must be cacheable")
	}
	for name, v := range variants {
		k, ok := specKey(v)
		if !ok {
			t.Errorf("%s variant not cacheable", name)
		}
		if k == baseKey {
			t.Errorf("%s variant collides with the base key", name)
		}
	}
}

// TestCustomGeneratorCaching: anonymous generators are never cached;
// GenID opts a custom generator into the cache.
func TestCustomGeneratorCaching(t *testing.T) {
	w, _ := workloads.ByName("compress")
	newGen := func() sim.Spec {
		gen, err := w.NewGen()
		if err != nil {
			t.Fatal(err)
		}
		return sim.Spec{Gen: gen, Config: pipeline.DefaultConfig(), MaxInstr: testInstr}
	}
	if _, ok := specKey(newGen()); ok {
		t.Error("anonymous generator spec must not be cacheable")
	}

	var sims atomic.Int64
	eng := New(WithRunHook(func(sim.Spec) { sims.Add(1) }))
	ctx := context.Background()
	anon1, err := eng.Run(ctx, newGen())
	if err != nil {
		t.Fatal(err)
	}
	anon2, err := eng.Run(ctx, newGen())
	if err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 2 {
		t.Errorf("anonymous generator runs simulated %d times, want 2 (no caching)", n)
	}
	if anon1.Stats.Arch() != anon2.Stats.Arch() {
		t.Error("identical generators should still produce identical stats")
	}

	sims.Store(0)
	withID := func() sim.Spec {
		s := newGen()
		s.GenID = "compress-clone"
		return s
	}
	if _, err := eng.Run(ctx, withID()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, withID()); err != nil {
		t.Fatal(err)
	}
	if n := sims.Load(); n != 1 {
		t.Errorf("GenID runs simulated %d times, want 1 (second hits the cache)", n)
	}
}

// TestCacheDisabled: WithCache(0) turns caching off entirely.
func TestCacheDisabled(t *testing.T) {
	var sims atomic.Int64
	eng := New(WithCache(0), WithRunHook(func(sim.Spec) { sims.Add(1) }))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := eng.Run(ctx, spec("compress", 32)); err != nil {
			t.Fatal(err)
		}
	}
	if n := sims.Load(); n != 2 {
		t.Errorf("simulations = %d, want 2 with caching disabled", n)
	}
}

// TestCacheLRUEviction: a capacity-1 cache evicts the older point.
func TestCacheLRUEviction(t *testing.T) {
	var sims atomic.Int64
	eng := New(WithCache(1), WithRunHook(func(sim.Spec) { sims.Add(1) }))
	ctx := context.Background()
	a, b := spec("compress", 32), spec("compress", 16)
	for _, s := range []sim.Spec{a, b, a} { // a evicted by b, so the second a re-runs
		if _, err := eng.Run(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if n := sims.Load(); n != 3 {
		t.Errorf("simulations = %d, want 3 (capacity-1 cache must evict)", n)
	}
}

// TestRunBatchError: an invalid spec fails the whole batch with its error.
func TestRunBatchError(t *testing.T) {
	specs := []sim.Spec{spec("compress", 32), spec("nonesuch", 32)}
	_, err := New().RunBatch(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("err = %v, want unknown-workload failure", err)
	}
}

// TestSMTBatchDeterministicAndCached: SMT batches share the pool and the
// cache with single-thread runs.
func TestSMTBatchDeterministicAndCached(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Rename.PhysRegs = 96
	cfg.Rename.NRRInt = 16
	cfg.Rename.NRRFP = 16
	specs := []sim.SMTSpec{{
		Workloads:         []string{"hydro2d", "hydro2d"},
		Config:            cfg,
		MaxInstrPerThread: testInstr / 2,
	}}
	serial, err := New(WithParallelism(1)).RunSMTBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithParallelism(4))
	parallel, err := eng.RunSMTBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(archSMT(serial[i]), archSMT(parallel[i])) {
			t.Errorf("SMT results differ across parallelism:\nserial:   %+v\nparallel: %+v", serial, parallel)
		}
	}
	if _, err := eng.RunSMTBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if hits, _ := eng.CacheStats(); hits != 1 {
		t.Errorf("SMT cache hits = %d, want 1", hits)
	}
}

// TestEmptyBatch: a zero-spec batch is a no-op, not a hang.
func TestEmptyBatch(t *testing.T) {
	res, err := New().RunBatch(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}
