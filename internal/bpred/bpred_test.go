package bpred

import (
	"math/rand"
	"testing"
)

func TestInitialPredictionNotTaken(t *testing.T) {
	b := New(DefaultEntries)
	if b.Predict(0) || b.Predict(100) {
		t.Error("fresh counters must predict not-taken")
	}
}

func TestSaturationAndHysteresis(t *testing.T) {
	b := New(16)
	// Train strongly taken.
	for i := 0; i < 10; i++ {
		b.Update(5, true)
	}
	if !b.Predict(5) {
		t.Fatal("should predict taken after training")
	}
	// One not-taken only weakens; the second flips.
	b.Update(5, false)
	if !b.Predict(5) {
		t.Error("2-bit counter must survive one contrary outcome")
	}
	b.Update(5, false)
	if b.Predict(5) {
		t.Error("two contrary outcomes must flip the prediction")
	}
	// Saturation low: many not-takens then one taken shouldn't flip.
	for i := 0; i < 10; i++ {
		b.Update(5, false)
	}
	b.Update(5, true)
	if b.Predict(5) {
		t.Error("counter must saturate at zero")
	}
}

func TestIndexingWraps(t *testing.T) {
	b := New(8)
	b.Update(3, true)
	b.Update(3, true)
	if !b.Predict(3 + 8) {
		t.Error("pc 11 must alias pc 3 in an 8-entry table")
	}
	if b.Predict(4) {
		t.Error("pc 4 is a different entry")
	}
}

func TestRoundsUpToPowerOfTwo(t *testing.T) {
	b := New(2000)
	if len(b.counters) != 2048 {
		t.Errorf("entries = %d, want 2048", len(b.counters))
	}
	if d := New(0); len(d.counters) != DefaultEntries {
		t.Errorf("default entries = %d", len(d.counters))
	}
}

func TestAccuracyBiasedBranch(t *testing.T) {
	b := New(DefaultEntries)
	// A 95%-taken branch should be predicted well above chance.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		b.Update(42, rng.Float64() < 0.95)
	}
	if acc := b.Accuracy(); acc < 0.85 {
		t.Errorf("accuracy on 95%% biased branch = %.3f, want ≥ 0.85", acc)
	}
}

func TestAccuracyRandomBranchNearChance(t *testing.T) {
	b := New(DefaultEntries)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		b.Update(42, rng.Float64() < 0.5)
	}
	if acc := b.Accuracy(); acc < 0.3 || acc > 0.62 {
		t.Errorf("accuracy on random branch = %.3f, want near 0.5", acc)
	}
}

func TestLoopBranchOneMissPerExit(t *testing.T) {
	// Classic 2-bit behaviour: an N-iteration loop mispredicts only the
	// exit (and the first re-entry keeps predicting taken).
	b := New(DefaultEntries)
	b.Update(9, true)
	b.Update(9, true) // warm to strongly-taken
	warm := b.Lookups
	warmCorrect := b.Correct
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 99; i++ {
			b.Update(9, true)
		}
		b.Update(9, false) // exit
	}
	misses := (b.Lookups - warm) - (b.Correct - warmCorrect)
	if misses != 10 {
		t.Errorf("loop branch misses = %d, want exactly 10 (one per exit)", misses)
	}
}

func TestAccuracyEmptyIsOne(t *testing.T) {
	if New(8).Accuracy() != 1 {
		t.Error("accuracy with no lookups must be 1")
	}
}
