// Package bpred implements the paper's branch predictor: a branch history
// table of 2-bit up/down saturating counters indexed by the branch PC
// (2048 entries in the paper's configuration). Unconditional branches and
// indirect jumps are assumed perfectly predicted (the paper models only the
// direction predictor).
package bpred

// BHT is the branch history table.
type BHT struct {
	counters []uint8 // 0..3; taken when >= 2

	// Statistics.
	Lookups int64
	Correct int64
}

// DefaultEntries is the paper's table size.
const DefaultEntries = 2048

// New builds a table with the given number of entries (rounded up to a
// power of two). Counters start weakly not-taken.
func New(entries int) *BHT {
	if entries <= 0 {
		entries = DefaultEntries
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &BHT{counters: c}
}

func (b *BHT) index(pc int) int {
	return pc & (len(b.counters) - 1)
}

// Predict returns the predicted direction for the conditional branch at pc.
func (b *BHT) Predict(pc int) bool {
	return b.counters[b.index(pc)] >= 2
}

// Update trains the counter with the resolved outcome and records accuracy
// statistics. Call it once per executed conditional branch.
func (b *BHT) Update(pc int, taken bool) {
	i := b.index(pc)
	b.Lookups++
	if (b.counters[i] >= 2) == taken {
		b.Correct++
	}
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// Accuracy returns the fraction of correct predictions so far (1 if no
// branches have resolved).
func (b *BHT) Accuracy() float64 {
	if b.Lookups == 0 {
		return 1
	}
	return float64(b.Correct) / float64(b.Lookups)
}
