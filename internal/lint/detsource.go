package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// DetSource hunts nondeterminism sources in the determinism-checked
// simulator packages — those whose package doc carries //vpr:detpkg
// (internal/pipeline, internal/mem, internal/sim, internal/core). The
// engine's result cache serves simulator output by configuration hash,
// so any dependence on host time, scheduler interleaving, or map
// iteration order silently poisons cached sweeps. Three sources are
// flagged:
//
//   - time.Now / time.Since / time.Until and anything from math/rand:
//     allowed only inside //vpr:wallclock functions (host-throughput
//     accounting, which by design never feeds simulated state).
//   - go statements outside //vpr:stepper functions: the parallel
//     stepper is the single sanctioned concurrency site, because its
//     memory gate is what re-serializes shared state.
//   - map-range loops whose body writes variables declared outside the
//     loop: the classic iteration-order leak. Waive with //vpr:detexempt
//     naming the sorted-key or order-insensitive justification.
var DetSource = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "//vpr:detpkg packages must not read wall time, randomness, spawn goroutines, or leak map order",
	Run:  runDetSource,
}

func runDetSource(pass *analysis.Pass) error {
	waivers := collectWaiverLines(pass.Fset, pass.Pkgs, "detexempt")
	for _, pkg := range pass.Pkgs {
		if !pkgHasDirective(pkg, "detpkg") {
			continue
		}
		for _, file := range pkg.Syntax {
			checkDetFile(pass, pkg, file, waivers)
		}
	}
	return nil
}

func checkDetFile(pass *analysis.Pass, pkg *analysis.Package, file *ast.File, waivers waiverLines) {
	info := pkg.TypesInfo
	inWaivedFunc := func(pos token.Pos, directive string) bool {
		fd := funcDeclAt(file, pos)
		return fd != nil && hasDirective(funcDirectives(fd), directive)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			path := callee.Pkg().Path()
			switch {
			case path == "time" && wallClockFunc(callee.Name()):
				if !inWaivedFunc(n.Pos(), "wallclock") && !waivers.waived(pass.Fset, n.Pos()) {
					pass.Reportf(n.Pos(),
						"time.%s in determinism-checked package %s — host time must not feed simulated state; move it into a //vpr:wallclock function or waive with //vpr:detexempt <reason>",
						callee.Name(), pkg.Name)
				}
			case path == "math/rand" || strings.HasPrefix(path, "math/rand/"):
				if !inWaivedFunc(n.Pos(), "wallclock") && !waivers.waived(pass.Fset, n.Pos()) {
					pass.Reportf(n.Pos(),
						"math/rand call %s.%s in determinism-checked package %s — derive pseudo-randomness from seeded simulated state or waive with //vpr:detexempt <reason>",
						callee.Pkg().Name(), callee.Name(), pkg.Name)
				}
			}
		case *ast.GoStmt:
			if !inWaivedFunc(n.Pos(), "stepper") && !waivers.waived(pass.Fset, n.Pos()) {
				pass.Reportf(n.Pos(),
					"go statement in determinism-checked package %s outside a //vpr:stepper function — the parallel stepper's memory gate is the only sanctioned concurrency site",
					pkg.Name)
			}
		case *ast.RangeStmt:
			checkMapRange(pass, info, n, waivers)
		}
		return true
	})
}

// wallClockFunc reports whether a time-package function reads the host
// clock (constructors like time.Duration arithmetic are fine).
func wallClockFunc(name string) bool {
	switch name {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// checkMapRange flags a range over a map whose body writes a variable
// declared outside the loop — the write order then depends on map
// iteration order.
func checkMapRange(pass *analysis.Pass, info *types.Info, rng *ast.RangeStmt, waivers waiverLines) {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if waivers.waived(pass.Fset, rng.Pos()) {
		return
	}
	outerWrite := func(expr ast.Expr) *ast.Ident {
		id := baseIdentOf(expr)
		if id == nil || id.Name == "_" {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		// Writes to variables born inside the loop (including the range
		// key/value themselves) cannot leak iteration order out.
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
			return nil
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return nil
		}
		return id
	}
	var leak *ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if leak != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id := outerWrite(lhs); id != nil {
					leak = id
					return false
				}
			}
		case *ast.IncDecStmt:
			if id := outerWrite(n.X); id != nil {
				leak = id
				return false
			}
		}
		return true
	})
	if leak != nil {
		pass.Reportf(rng.Pos(),
			"map-range loop writes %s, declared outside the loop — the result depends on map iteration order; iterate sorted keys or waive with //vpr:detexempt <order-insensitive reason>",
			leak.Name)
	}
}
