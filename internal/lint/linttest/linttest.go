// Package linttest is the fixture-driven test harness for the vplint
// analyzers — the analysistest workflow on the internal substrate. A
// testdata directory holds a self-contained fixture module (its own
// go.mod, so the repo's build never sees it) whose sources carry
//
//	expr // want `regex` `regex`
//
// comments naming, by line, the diagnostics the analyzers must produce
// there. Run loads the module through the real loader, runs the
// analyzers, and fails the test on any unexpected diagnostic or any
// unmet expectation — so every fixture proves both that the analyzer
// fires on the violation and that it stays quiet on the conforming code
// around it.
package linttest

import (
	"go/token"
	"regexp"
	"testing"

	"repro/internal/lint/analysis"
)

// want is one expectation: a diagnostic on file:line matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantLine = regexp.MustCompile("// want ((?:`[^`]*` ?)+)")
	wantArg  = regexp.MustCompile("`([^`]*)`")
)

// Run loads the fixture module rooted at dir and checks the analyzers'
// diagnostics against its // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset, pkgs, err := analysis.Load(analysis.Config{Dir: dir}, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants := collectWants(t, fset, pkgs)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]",
				pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %v", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts every // want expectation from the fixture's
// comments; the expectation applies to the line the comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := wantLine.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, arg := range wantArg.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(arg[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v",
								pos.Filename, pos.Line, arg[1], err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// claim marks the first open expectation on the diagnostic's line that
// its message satisfies.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
