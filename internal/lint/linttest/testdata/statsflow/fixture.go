// Package fixture seeds statsflow violations: a //vpr:stats struct with
// one counter its //vpr:statsink aggregate drops, one it folds in, one
// explicitly exempted — and a second stats struct with no sink at all.
package fixture

// Stats is the counter set the sink below must fold completely.
//
//vpr:stats
type Stats struct {
	Hits   int64
	Misses int64 // want `counter fixture.Stats.Misses is not referenced by any //vpr:statsink aggregate`
	// Debug is derived at print time, never merged.
	//vpr:statsexempt display only
	Debug int64
}

// Add folds src into s — but forgets Misses.
//
//vpr:statsink Stats
func (s *Stats) Add(src Stats) {
	s.Hits += src.Hits
}

// Orphan has counters and no aggregate anywhere.
//
//vpr:stats
type Orphan struct { // want `//vpr:stats struct fixture.Orphan has no //vpr:statsink aggregate`
	N int64
}
