// Package fixture seeds annotcheck violations — a typo'd directive, four
// misplacements, and malformed arguments — next to conforming directives
// in every placement class. AnnotCheck takes no waiver: a bad directive
// is fixed, not excused, so the honored-waiver half of this fixture is
// the conforming placements staying quiet.
package fixture

// hot carries a conforming function directive.
//
//vpr:hotpath
func hot() {}

// typo misspells hotpath, which would silently disable the check.
//
//vpr:hotpth // want `unknown //vpr: directive "hotpth"`
func typo() {}

// misplacedStats puts a struct directive on a function.
//
//vpr:stats // want `//vpr:stats is misplaced on a function declaration — it belongs on a struct type declaration`
func misplacedStats() {}

// S carries a line waiver in its type doc, where no line exists.
//
//vpr:allowalloc stray reason // want `//vpr:allowalloc is misplaced on a struct type declaration — it belongs on a statement line`
type S struct {
	// N shows a conforming field directive.
	//
	//vpr:statsexempt display only
	N int64
}

// Constants take no directives at all.
//
//vpr:cachekey // want `//vpr:cachekey is misplaced on a declaration that takes no directives`
const answer = 42

// noArg forgets statsink's TYPE argument.
//
//vpr:statsink // want `//vpr:statsink needs exactly 1 argument\(s\), got 0`
func noArg() {}

// chatty hands hotpath an argument it does not take.
//
//vpr:hotpath gotta go fast // want `//vpr:hotpath takes no arguments, got "gotta go fast"`
func chatty() {}

// Port shows conforming interface placements: a type directive on the
// declaration, method directives on its methods.
//
//vpr:memstate
type Port interface {
	// Write mutates.
	//
	//vpr:memphase
	Write(v int)
	// Len is read-only.
	//
	//vpr:phaseexempt read-only
	Len() int
}

// Keyless puts the key-renderer directive on a struct instead of its
// renderer function.
//
//vpr:keyfunc Keyless // want `//vpr:keyfunc is misplaced on a struct type declaration — it belongs on a function declaration`
type Keyless struct{ N int }

// waived puts the field-only observer waiver on a function.
//
//vpr:nocachekey pure observer // want `//vpr:nocachekey is misplaced on a function declaration — it belongs on a struct field`
func waived() {}

// use keeps the declarations referenced.
func use() {
	hot()
	typo()
	misplacedStats()
	noArg()
	chatty()
	waived()
	_ = S{N: answer}
	_ = Keyless{N: 1}
}
