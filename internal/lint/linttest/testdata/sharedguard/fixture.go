// Package fixture seeds sharedguard violations: a //vpr:shared field
// with a non-atomic type, a shared slice whose element address escapes,
// a waived raw read, and a //vpr:coreprivate field referenced from code
// a stepper goroutine reaches.
package fixture

import "sync/atomic"

// run is one stepping session's gate state.
type run struct {
	//vpr:shared
	memCycle []atomic.Int64
	//vpr:shared
	stopped atomic.Bool
	//vpr:shared
	badFlag bool // want `//vpr:shared field fixture.run.badFlag must be a sync/atomic type`

	//vpr:coreprivate
	scratch []int

	plain int
}

// ok drives the shared fields through their atomic methods, ranges, and
// len — every sanctioned access shape, all quiet.
func (r *run) ok() int64 {
	r.stopped.Store(true)
	n := int64(len(r.memCycle))
	for i := range r.memCycle {
		n += r.memCycle[i].Load()
	}
	r.plain++
	return n
}

// leak lets an element's address escape the atomic discipline.
func (r *run) leak() *atomic.Int64 {
	return &r.memCycle[0] // want `//vpr:shared field fixture.run.memCycle used outside its atomic methods`
}

// slot is the padded gate-slot shape: scalar atomics annotated field by
// field inside a cache-line-sized struct, held in a plain container
// slice. The discipline attaches to the slot's fields, not the slice.
type slot struct {
	//vpr:shared
	memCycle atomic.Int64
	//vpr:shared
	sleepers atomic.Int32

	_ [104]byte
}

// padded is a runner over padded slots.
type padded struct {
	slots []slot
}

// okSlots exercises every sanctioned padded-slot access: atomic methods
// through an index chain, through a held element pointer, and container
// iteration.
func (p *padded) okSlots() int64 {
	n := int64(len(p.slots))
	for i := range p.slots {
		p.slots[i].memCycle.Store(int64(i))
		n += p.slots[i].memCycle.Load()
	}
	s := &p.slots[0]
	s.sleepers.Add(1)
	n += int64(s.sleepers.Load())
	return n
}

// leakSlotField lets a padded slot's atomic escape the discipline.
func (p *padded) leakSlotField() *atomic.Int64 {
	return &p.slots[0].memCycle // want `//vpr:shared field fixture.slot.memCycle used outside its atomic methods`
}

// snapshot copies the raw slice header under a waiver.
func (r *run) snapshot() []atomic.Int64 {
	//vpr:guardexempt fixture: header copied only after the goroutines join
	return r.memCycle
}

// launch is the sanctioned goroutine site; everything its goroutines
// reach must stay off the core-private state.
//
//vpr:stepper
func (r *run) launch() {
	go r.loop()
}

// loop runs on a stepper goroutine.
func (r *run) loop() {
	for !r.stopped.Load() {
		r.work()
	}
}

// work is goroutine-reachable through loop and touches serial-only state.
func (r *run) work() {
	_ = r.scratch[0] // want `//vpr:coreprivate field fixture.run.scratch referenced from .*work`
	//vpr:guardexempt fixture: this read is proven race-free by the join barrier
	_ = r.scratch[1]
}
