// Package fixture seeds hotpathalloc violations: a //vpr:hotpath root
// that allocates directly, a plain callee that allocates on its behalf,
// a //vpr:coldpath cut the traversal must not cross, an //vpr:allowalloc
// waiver, and unannotated code that may allocate freely.
package fixture

import "fmt"

// Step is the per-cycle root.
//
//vpr:hotpath
func Step(xs []int, n int) []int {
	xs = append(xs, n) // want `append \(growth allocates without preallocated capacity\) in hot-path function fixture.Step`
	if n < 0 {
		panic(fmt.Sprintf("fixture: bad %d", n)) // want `fmt.Sprintf call \(allocates\) in hot-path function fixture.Step`
	}
	helper(n)
	report(n)
	//vpr:allowalloc fixture waiver: proves the escape hatch works
	waived := make([]int, n)
	_ = waived
	return xs
}

// helper has no annotation of its own: it is hot because Step calls it.
func helper(n int) {
	_ = []int{n} // want `slice literal \(allocates\) in hot-path function fixture.helper \(hot path via fixture.Step\)`
}

// report is diagnostics-only, cut out of the hot traversal: the Sprint
// below must not be flagged.
//
//vpr:coldpath
func report(n int) {
	_ = fmt.Sprint(n)
}

// Setup is unannotated: allocation is fine outside the hot path.
func Setup(n int) []int {
	return make([]int, n)
}
