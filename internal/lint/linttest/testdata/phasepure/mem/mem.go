// Package mem is the fixture's shared-memory surface: a //vpr:memstate
// store with fenced and unfenced mutators, and a //vpr:memstate
// interface with one unclassified method.
package mem

// Store is the shared state behind the phase fence.
//
//vpr:memstate
type Store struct {
	words map[uint64]uint64
	hits  int64
}

// New builds an empty store.
func New() *Store { return &Store{words: map[uint64]uint64{}} }

// Write mutates the store inside the fence.
//
//vpr:memphase
func (s *Store) Write(addr, v uint64) { s.words[addr] = v }

// Bump mutates the store but forgot the fence annotation.
func (s *Store) Bump() { s.hits++ } // want `exported mutating method .*Bump of //vpr:memstate type .*Store is not annotated //vpr:memphase`

// Reset mutates too, but the declaration waiver classifies it.
//
//vpr:phaseexempt fixture: test-harness reset between runs
func (s *Store) Reset() { s.hits = 0 }

// Hits reads a counter and never writes: off the surface by inference.
func (s *Store) Hits() int64 { return s.hits }

// Port is the access interface; every method must be classified.
//
//vpr:memstate
type Port interface {
	// Write mutates.
	//
	//vpr:memphase
	Write(addr, v uint64)
	// Hits is a read-only snapshot.
	//
	//vpr:phaseexempt fixture: read-only snapshot
	Hits() int64
	Bump() // want `method Bump of //vpr:memstate interface mem.Port carries neither //vpr:memphase nor //vpr:phaseexempt`
}
