// Package fixture seeds phasepure violations around the surface declared
// in the mem subpackage: a compute-phase chain that reaches the surface,
// a waived edge, an unfenced cross-package caller, and a function
// annotated on both sides of the fence.
package fixture

import "fixture/mem"

// Core drives one port of the shared store.
type Core struct {
	port *mem.Store
	acc  uint64
}

// stepCompute is a compute-phase root; its whole static call tree must
// stay off the surface.
//
//vpr:computephase
func (c *Core) stepCompute() {
	c.acc++
	c.helper()
}

// helper is compute-reachable and touches the surface.
func (c *Core) helper() {
	c.port.Write(c.acc, 1) // want `compute-phase function .*helper .* calls .*Write .* only the gate-serialized memory phase may touch shared memory state`
}

// stepWaived is a compute-phase root whose one surface edge is waived.
//
//vpr:computephase
func (c *Core) stepWaived() {
	//vpr:phaseexempt fixture: the edge under test is deliberately waived
	c.port.Write(0, 0)
}

// flush calls the surface cross-package without carrying the fence.
func (c *Core) flush() {
	c.port.Write(0, 1) // want `flush calls .*Write .* outside the memory phase`
}

// drain carries the fence, so its surface call is the implementation.
//
//vpr:memphase
func (c *Core) drain() {
	c.port.Write(0, 2)
}

// confused claims both phases at once. // want below anchors on the name.
//
//vpr:computephase
//vpr:memphase
func (c *Core) confused() {} // want `annotated both //vpr:computephase and //vpr:memphase`

// use keeps the fixture's entry points referenced.
func use(c *Core) {
	c.stepCompute()
	c.stepWaived()
	c.flush()
	c.drain()
	c.confused()
	_ = c.port.Hits()
}
