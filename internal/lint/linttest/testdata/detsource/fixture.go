// Package fixture is determinism-checked: detsource flags host clocks,
// host randomness, unsanctioned goroutines, and map-iteration-order
// leaks here, each next to its waived or conforming twin.
//
//vpr:detpkg
package fixture

import (
	"math/rand"
	"time"
)

// tick reads the host clock with no waiver.
func tick() int64 {
	return time.Now().UnixNano() // want `time.Now in determinism-checked package fixture`
}

// throughput is host-side accounting by design.
//
//vpr:wallclock host-throughput metric; never feeds simulated state
func throughput(start time.Time) time.Duration {
	return time.Since(start)
}

// jitter draws host randomness.
func jitter() int {
	return rand.Intn(8) // want `math/rand call rand.Intn in determinism-checked package fixture`
}

// logged reads the clock under a line waiver.
func logged() int64 {
	//vpr:detexempt fixture: value is logged, never fed back into state
	return time.Now().Unix()
}

// spawn launches a goroutine outside the stepper.
func spawn() {
	go tick() // want `go statement in determinism-checked package fixture outside a //vpr:stepper function`
}

// launch is the sanctioned concurrency site.
//
//vpr:stepper
func launch() {
	go tick()
}

// total leaks map iteration order into an outer accumulator.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map-range loop writes sum, declared outside the loop`
		sum += v
	}
	return sum
}

// totalWaived is the same shape with its order-insensitivity argued.
func totalWaived(m map[string]int) int {
	sum := 0
	//vpr:detexempt fixture: integer addition is order-insensitive
	for _, v := range m {
		sum += v
	}
	return sum
}

// localOnly writes nothing that outlives the loop: quiet.
func localOnly(m map[string]int) int {
	last := 0
	for k, v := range m {
		w := v * 2
		if k == "" {
			w++
		}
		_ = w
	}
	return last
}
