// Package fixture seeds cachekey violations across all three coverage
// proofs: a GoString renderer that drops a field, a //vpr:keyfunc
// renderer that drops a field, and a %#v struct with a non-canonical
// field type — plus a //vpr:nocachekey observer waiver and fully
// conforming structs alongside each.
package fixture

import "strconv"

// Config renders its own key: GoString must cover every field.
//
//vpr:cachekey
type Config struct {
	Size int
	Ways int // want `cache-key field fixture.Config.Ways is not rendered by its GoString method`
	// Probe observes without perturbing results.
	//vpr:nocachekey pure observer
	Probe func()
}

// GoString is Config's canonical key — it forgets Ways.
func (c Config) GoString() string {
	return "Config{" + strconv.Itoa(c.Size) + "}"
}

// Keyed is rendered by the key function below.
//
//vpr:cachekey
type Keyed struct {
	A int
	B int // want `cache-key field fixture.Keyed.B is not rendered by any //vpr:keyfunc key function`
}

// KeyOf is Keyed's canonical renderer — it forgets B.
//
//vpr:keyfunc Keyed
func KeyOf(k Keyed) string {
	return strconv.Itoa(k.A)
}

// Spec has neither GoString nor keyfunc: %#v renders it field by field,
// so every field type must render canonically.
//
//vpr:cachekey
type Spec struct {
	Name string
	Opts map[string]int // want `cache-key field fixture.Spec.Opts .*non-canonically`
}

// Clean is fully covered: %#v over basic fields only.
//
//vpr:cachekey
type Clean struct {
	N int
	S string
}

// MCSpec mirrors the multicore spec shape: string *selection* fields
// (protocol, directory kind) that switch behavior and must reach the
// key, or two runs differing only in a selection would share a cached
// result. The renderer below covers Protocol but forgets Directory —
// exactly the regression mode of growing the spec without growing the
// key.
//
//vpr:cachekey
type MCSpec struct {
	Workload  string
	Protocol  string
	Directory string // want `cache-key field fixture.MCSpec.Directory is not rendered by any //vpr:keyfunc key function`
}

// MCKey is MCSpec's canonical renderer — it forgets Directory.
//
//vpr:keyfunc MCSpec
func MCKey(s MCSpec) string {
	return s.Workload + "|" + s.Protocol
}
