// Package fixture seeds reghygiene violations: a duplicate name in a
// //vpr:registry table, a //vpr:register call and a registry write after
// program start, a non-constant registration name, and a //vpr:lookup
// call made during initialization — alongside the conforming init-time
// registration path.
package fixture

// Thing is one registry entry.
type Thing struct{ Name string }

// registry is the static table.
//
//vpr:registry things
var registry = []Thing{
	{Name: "alpha"},
	{Name: "beta"},
	{Name: "alpha"}, // want `duplicate name "alpha" in registry namespace "things"`
}

// Register adds a thing; legal only while initializing.
//
//vpr:register things
func Register(name string) {
	registry = append(registry, Thing{Name: name})
}

// ByName resolves a thing; legal only after initialization.
//
//vpr:lookup things
func ByName(name string) (Thing, bool) {
	for _, t := range registry {
		if t.Name == name {
			return t, true
		}
	}
	return Thing{}, false
}

func init() {
	Register("gamma")
	Register(pick())       // want `//vpr:register things call with a non-constant name`
	_, _ = ByName("alpha") // want `//vpr:lookup things function ByName called during package initialization`
}

func pick() string { return "delta" }

// Late runs after program start: neither registering nor mutating the
// table is safe here.
func Late() {
	Register("epsilon") // want `call to //vpr:register things function Register outside init`
	registry = nil      // want `registry "things" is mutated outside init`
}

// Use is the legal consumer path.
func Use() (Thing, bool) { return ByName("beta") }
