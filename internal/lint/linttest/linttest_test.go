package linttest_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture module seeds at least one violation per diagnostic family
// next to conforming code, so these tests prove both directions: the
// analyzer fires where it must and stays quiet where it must not.

func TestHotPathAllocFixture(t *testing.T) {
	linttest.Run(t, "testdata/hotpathalloc", lint.HotPathAlloc)
}

func TestStatsFlowFixture(t *testing.T) {
	linttest.Run(t, "testdata/statsflow", lint.StatsFlow)
}

func TestCacheKeyFixture(t *testing.T) {
	linttest.Run(t, "testdata/cachekey", lint.CacheKey)
}

func TestRegHygieneFixture(t *testing.T) {
	linttest.Run(t, "testdata/reghygiene", lint.RegHygiene)
}

func TestPhasePureFixture(t *testing.T) {
	linttest.Run(t, "testdata/phasepure", lint.PhasePure)
}

func TestSharedGuardFixture(t *testing.T) {
	linttest.Run(t, "testdata/sharedguard", lint.SharedGuard)
}

func TestDetSourceFixture(t *testing.T) {
	linttest.Run(t, "testdata/detsource", lint.DetSource)
}

// AnnotCheck has no waiver directive by design; its fixture's
// honored-waiver half is the conforming placements staying quiet.
func TestAnnotCheckFixture(t *testing.T) {
	linttest.Run(t, "testdata/annotcheck", lint.AnnotCheck)
}
