package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// RegHygiene guards the registry discipline the CLI depends on: the
// policy, experiment, synth-preset and workload tables must be fully
// populated before the first ByName lookup, and every entry must have a
// unique, statically-known name. The repository's registries come in two
// shapes, and the analyzer covers both:
//
//   - static tables: a package-level var annotated //vpr:registry NS
//     holding a slice of entries. Every entry must carry a static name
//     (a Name:-keyed field or the first constant string in the literal);
//     names must be unique within the namespace; and the var must never
//     be reassigned outside package-level initializers, init functions,
//     or a //vpr:register function for the same namespace.
//   - runtime registration: a function annotated //vpr:register NS may
//     mutate the table, but calls to it are only legal from init
//     functions or package-level var initializers, and the entry name
//     (first string argument) must be a constant — it joins the
//     namespace uniqueness check.
//
// Functions annotated //vpr:lookup NS are the read side; calling one
// from an init function or package-level initializer is flagged, because
// package initialization order would then decide whether later
// registrations are visible — the "registration after first lookup" bug
// made structurally impossible.
var RegHygiene = &analysis.Analyzer{
	Name: "reghygiene",
	Doc:  "//vpr:registry tables: static unique names, writes only during init, lookups only after",
	Run:  runRegHygiene,
}

// registryVar is one //vpr:registry table.
type registryVar struct {
	pkg       *analysis.Package
	namespace string
	obj       types.Object // the table var
	spec      *ast.ValueSpec
	value     ast.Expr // its initializer, if any
}

// annotFunc is a //vpr:register or //vpr:lookup entry point.
type annotFunc struct {
	pkg       *analysis.Package
	namespace string
	obj       *types.Func
	decl      *ast.FuncDecl
}

func runRegHygiene(pass *analysis.Pass) error {
	var registries []*registryVar
	var registerFns, lookupFns []*annotFunc

	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				switch d := d.(type) {
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, dir := range parseDirectives(d.Doc, vs.Doc, vs.Comment) {
							if dir.name != "registry" {
								continue
							}
							if len(dir.args) != 1 {
								pass.Reportf(dir.pos, "//vpr:registry needs exactly one namespace argument")
								continue
							}
							for i, name := range vs.Names {
								var value ast.Expr
								if i < len(vs.Values) {
									value = vs.Values[i]
								}
								registries = append(registries, &registryVar{
									pkg:       pkg,
									namespace: dir.args[0],
									obj:       pkg.TypesInfo.Defs[name],
									spec:      vs,
									value:     value,
								})
							}
						}
					}

				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					for _, dir := range funcDirectives(d) {
						if dir.name != "register" && dir.name != "lookup" {
							continue
						}
						if len(dir.args) != 1 {
							pass.Reportf(dir.pos, "//vpr:%s needs exactly one namespace argument", dir.name)
							continue
						}
						fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
						if fn == nil {
							continue
						}
						af := &annotFunc{pkg: pkg, namespace: dir.args[0], obj: fn, decl: d}
						if dir.name == "register" {
							registerFns = append(registerFns, af)
						} else {
							lookupFns = append(lookupFns, af)
						}
					}
				}
			}
		}
	}

	// Namespace -> entry name -> first position, for uniqueness.
	seen := make(map[string]map[string]token.Pos)
	claim := func(ns, name string, pos token.Pos) {
		if seen[ns] == nil {
			seen[ns] = make(map[string]token.Pos)
		}
		if _, dup := seen[ns][name]; dup {
			pass.Reportf(pos, "duplicate name %q in registry namespace %q — ByName would silently resolve to the first entry", name, ns)
			return
		}
		seen[ns][name] = pos
	}

	sort.Slice(registries, func(i, j int) bool {
		return registries[i].obj.Pos() < registries[j].obj.Pos()
	})
	for _, reg := range registries {
		checkRegistryEntries(pass, reg, claim)
		checkRegistryWrites(pass, reg, registerFns)
	}
	checkRegisterCalls(pass, registerFns, claim)
	checkLookupCalls(pass, lookupFns)
	return nil
}

// checkRegistryEntries extracts each element's static name from the
// table's composite-literal initializer.
func checkRegistryEntries(pass *analysis.Pass, reg *registryVar, claim func(ns, name string, pos token.Pos)) {
	if reg.value == nil {
		return // populated by a //vpr:register function instead
	}
	lit, ok := ast.Unparen(reg.value).(*ast.CompositeLit)
	if !ok {
		pass.Reportf(reg.value.Pos(), "//vpr:registry %s table is not initialized with a composite literal — entry names cannot be checked statically", reg.namespace)
		return
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok { // map-style table
			elt = kv.Value
		}
		name, ok := entryName(reg.pkg.TypesInfo, elt)
		if !ok {
			pass.Reportf(elt.Pos(), "registry %q entry has no statically-known name — give it a Name: field or a constant-string first field", reg.namespace)
			continue
		}
		claim(reg.namespace, name, elt.Pos())
	}
}

// entryName finds an element's name: a Name:-keyed constant string, else
// the first constant string among its fields.
func entryName(info *types.Info, elt ast.Expr) (string, bool) {
	elt = ast.Unparen(elt)
	if ue, ok := elt.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		elt = ast.Unparen(ue.X)
	}
	lit, ok := elt.(*ast.CompositeLit)
	if !ok {
		if s, ok := constString(info, elt); ok {
			return s, true // a bare string element (set-style registries)
		}
		return "", false
	}
	for _, field := range lit.Elts {
		kv, ok := field.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
			return constString(info, kv.Value)
		}
	}
	for _, field := range lit.Elts {
		expr := field
		if kv, ok := field.(*ast.KeyValueExpr); ok {
			expr = kv.Value
		}
		// Recurses into nested literals: pipeline's registry rows hold the
		// name inside an embedded PolicyInfo literal.
		if name, ok := entryName(info, expr); ok {
			return name, true
		}
	}
	return "", false
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkRegistryWrites flags assignments to the table var outside
// package-level initializers, init functions and same-namespace
// //vpr:register functions.
func checkRegistryWrites(pass *analysis.Pass, reg *registryVar, registerFns []*annotFunc) {
	if reg.obj == nil {
		return
	}
	for _, file := range reg.pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || reg.pkg.TypesInfo.Uses[id] != reg.obj {
					continue
				}
				if writeAllowed(reg, registerFns, file, id.Pos()) {
					continue
				}
				pass.Reportf(id.Pos(),
					"registry %q is mutated outside init or a //vpr:register %s function — registration after program start can race the first lookup",
					reg.namespace, reg.namespace)
			}
			return true
		})
	}
}

func writeAllowed(reg *registryVar, registerFns []*annotFunc, file *ast.File, pos token.Pos) bool {
	if encloserAt(file, pos) != inOtherFunc {
		return true // package level or init
	}
	for _, rf := range registerFns {
		if rf.namespace == reg.namespace && rf.pkg == reg.pkg &&
			rf.decl.Body.Pos() <= pos && pos <= rf.decl.Body.End() {
			return true
		}
	}
	return false
}

// checkRegisterCalls requires //vpr:register calls to come from init
// functions or package-level initializers, with a constant-string name.
func checkRegisterCalls(pass *analysis.Pass, registerFns []*annotFunc, claim func(ns, name string, pos token.Pos)) {
	for _, rf := range registerFns {
		forEachCall(pass, rf.obj, func(pkg *analysis.Package, file *ast.File, call *ast.CallExpr) {
			if encloserAt(file, call.Pos()) == inOtherFunc {
				pass.Reportf(call.Pos(),
					"call to //vpr:register %s function %s outside init — entries registered after program start may miss the first lookup",
					rf.namespace, rf.obj.Name())
			}
			name, ok := firstStringArg(pkg.TypesInfo, call)
			if !ok {
				pass.Reportf(call.Pos(),
					"//vpr:register %s call with a non-constant name — the namespace cannot be checked for duplicates",
					rf.namespace)
				return
			}
			claim(rf.namespace, name, call.Pos())
		})
	}
}

// checkLookupCalls flags //vpr:lookup calls made during initialization.
func checkLookupCalls(pass *analysis.Pass, lookupFns []*annotFunc) {
	for _, lf := range lookupFns {
		forEachCall(pass, lf.obj, func(pkg *analysis.Package, file *ast.File, call *ast.CallExpr) {
			if encloserAt(file, call.Pos()) != inOtherFunc {
				pass.Reportf(call.Pos(),
					"//vpr:lookup %s function %s called during package initialization — init order would decide which registrations it sees",
					lf.namespace, lf.obj.Name())
			}
		})
	}
}

// forEachCall visits every static call to fn across the loaded packages.
func forEachCall(pass *analysis.Pass, fn *types.Func, visit func(*analysis.Package, *ast.File, *ast.CallExpr)) {
	want := fn.FullName()
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeOf(pkg.TypesInfo, call); callee != nil && callee.FullName() == want {
					visit(pkg, file, call)
				}
				return true
			})
		}
	}
}

// firstStringArg returns the first argument's constant string value.
func firstStringArg(info *types.Info, call *ast.CallExpr) (string, bool) {
	for _, arg := range call.Args {
		tv, ok := info.Types[ast.Unparen(arg)]
		if !ok {
			continue
		}
		if !isString(tv.Type) {
			continue
		}
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	return "", false
}
