package lint

import (
	"go/ast"
	"sort"

	"repro/internal/lint/analysis"
)

// StatsFlow guards the counter-plumbing invariant: every field of a
// struct annotated //vpr:stats (mem.Stats, pipeline.Stats) must be
// referenced by at least one function annotated //vpr:statsink for that
// type — the aggregate/merge functions results flow through
// ((*mem.Stats).Add, pipeline.addStats, (*pipeline.Multicore).Aggregate).
// A counter added to the struct but not to a sink is silently dropped
// from every aggregated result; that is the bug class this analyzer
// turns into a build failure. Fields that are derived in the sinks
// rather than merged can be waived with //vpr:statsexempt <reason>.
var StatsFlow = &analysis.Analyzer{
	Name: "statsflow",
	Doc:  "every //vpr:stats counter must be referenced by a //vpr:statsink aggregate",
	Run:  runStatsFlow,
}

// annotStruct is one annotated counter struct.
type annotStruct struct {
	pkg      *analysis.Package
	pkgName  string
	typeName string
	fullName string // importpath.Name
	st       *ast.StructType
	sinks    []funcDecl
}

func runStatsFlow(pass *analysis.Pass) error {
	structs := collectAnnotatedStructs(pass, "stats")
	if len(structs) == 0 {
		return nil
	}

	// Attach sinks: any function annotated //vpr:statsink TYPE in any
	// loaded package.
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, dir := range funcDirectives(fd) {
					if dir.name != "statsink" {
						continue
					}
					if len(dir.args) != 1 {
						pass.Reportf(dir.pos, "//vpr:statsink needs exactly one type argument")
						continue
					}
					matched := false
					for _, s := range structs {
						same := pkg.ImportPath == s.pkg.ImportPath
						if (same && typeRefMatches(dir.args[0], s.pkgName, s.typeName)) ||
							(!same && dir.args[0] == s.pkgName+"."+s.typeName) {
							s.sinks = append(s.sinks, funcDecl{pkg: pkg, decl: fd})
							matched = true
						}
					}
					if !matched {
						pass.Reportf(dir.pos, "//vpr:statsink %s names no //vpr:stats struct", dir.args[0])
					}
				}
			}
		}
	}

	names := make([]string, 0, len(structs))
	for n := range structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := structs[n]
		if len(s.sinks) == 0 {
			pass.Reportf(s.st.Pos(), "//vpr:stats struct %s.%s has no //vpr:statsink aggregate — annotate its merge function",
				s.pkgName, s.typeName)
			continue
		}
		checkStatsStruct(pass, s)
	}
	return nil
}

// collectAnnotatedStructs finds every struct type whose declaration
// carries the given directive, keyed by full name.
func collectAnnotatedStructs(pass *analysis.Pass, directiveName string) map[string]*annotStruct {
	out := make(map[string]*annotStruct)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					ds := parseDirectives(gd.Doc, ts.Doc, ts.Comment)
					if !hasDirective(ds, directiveName) {
						continue
					}
					full := pkg.ImportPath + "." + ts.Name.Name
					out[full] = &annotStruct{
						pkg:      pkg,
						pkgName:  pkg.Name,
						typeName: ts.Name.Name,
						fullName: full,
						st:       st,
					}
				}
			}
		}
	}
	return out
}

// checkStatsStruct verifies each field reaches a sink.
func checkStatsStruct(pass *analysis.Pass, s *annotStruct) {
	for _, field := range s.st.Fields.List {
		if hasDirective(fieldDirectives(field), "statsexempt") {
			continue
		}
		for _, name := range field.Names {
			if !referencedInAny(s, name.Name) {
				pass.Reportf(name.Pos(),
					"counter %s.%s.%s is not referenced by any //vpr:statsink aggregate — it is silently dropped from merged results; plumb it through or waive with //vpr:statsexempt <reason>",
					s.pkgName, s.typeName, name.Name)
			}
		}
	}
}

// referencedInAny reports whether any sink body selects fieldName on a
// value of the struct's type.
func referencedInAny(s *annotStruct, fieldName string) bool {
	for _, sink := range s.sinks {
		if selectsField(sink, s.fullName, fieldName) {
			return true
		}
	}
	return false
}

// selectsField reports whether fn's body contains a selector
// `expr.fieldName` where expr (after deref) has the named type full.
func selectsField(fn funcDecl, full, fieldName string) bool {
	info := fn.pkg.TypesInfo
	found := false
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != fieldName {
			return true
		}
		tv, ok := info.Types[sel.X]
		if !ok {
			return true
		}
		if named := namedDeref(tv.Type); named != nil && namedFullName(named) == full {
			found = true
			return false
		}
		return true
	})
	return found
}
