package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// AnnotCheck validates the //vpr: directives themselves against the
// known-directive table in annot.go. Every other analyzer keys off these
// annotations, so a typo (//vpr:hotpth) or a misplaced directive (//vpr:stats
// on a function) silently disables its check — exactly the failure mode a
// mechanized invariant suite exists to rule out. AnnotCheck reports:
//
//   - unknown directive names, with the nearest-miss table listed
//   - directives in a syntactic position their spec does not allow
//     (e.g. a line waiver in a type doc, a field directive on a func)
//   - wrong argument counts for directives taking a TYPE or NAMESPACE
//     argument, and arguments on directives that take none
//
// There is no waiver: a bad directive is fixed, not excused.
var AnnotCheck = &analysis.Analyzer{
	Name: "annotcheck",
	Doc:  "//vpr: directives must be known, well-placed, and well-formed",
	Run:  runAnnotCheck,
}

func runAnnotCheck(pass *analysis.Pass) error {
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			places := classifyComments(file)
			for _, g := range file.Comments {
				for _, d := range parseDirectives(g) {
					checkDirective(pass, d, places)
				}
			}
		}
	}
	return nil
}

func checkDirective(pass *analysis.Pass, d directive, places map[token.Pos]placement) {
	spec, known := directiveTable[d.name]
	if !known {
		pass.Reportf(d.pos, "unknown //vpr: directive %q — its analyzer is silently disabled; known directives: %s",
			d.name, knownDirectiveNames())
		return
	}
	where, classified := places[d.pos]
	if !classified {
		where = onLine
	}
	if spec.where&where == 0 {
		pass.Reportf(d.pos, "//vpr:%s is misplaced on %s — it belongs on %s",
			d.name, placementName(where), placementNames(spec.where))
		return
	}
	if spec.reason {
		return
	}
	switch {
	case spec.args == 0 && len(d.args) > 0:
		pass.Reportf(d.pos, "//vpr:%s takes no arguments, got %q",
			d.name, strings.Join(d.args, " "))
	case spec.args > 0 && len(d.args) != spec.args:
		pass.Reportf(d.pos, "//vpr:%s needs exactly %d argument(s), got %d",
			d.name, spec.args, len(d.args))
	}
}

// knownDirectiveNames renders the table's keys, sorted, for the
// unknown-directive diagnostic.
func knownDirectiveNames() string {
	names := make([]string, 0, len(directiveTable))
	for name := range directiveTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// classifyComments maps each comment's position to the syntactic slot it
// documents: package doc, function doc, type doc (struct or interface),
// struct field, interface method, or package-level var. Comments in none
// of those slots are statement-line comments (onLine). Doc comments on
// declarations no directive may annotate (consts, imports, grouped
// declarations, non-struct non-interface types) get a zero placement, so
// any directive there reports as misplaced.
func classifyComments(file *ast.File) map[token.Pos]placement {
	places := make(map[token.Pos]placement)
	mark := func(p placement, groups ...*ast.CommentGroup) {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				places[c.Pos()] = p
			}
		}
	}
	mark(onPackage, file.Doc)
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			mark(onFunc, d.Doc)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				// The decl doc speaks for its spec only when ungrouped —
				// a grouped decl's doc covers several types at once and
				// is no home for a directive.
				declPlace := placement(0)
				if len(d.Specs) == 1 {
					if ts, ok := d.Specs[0].(*ast.TypeSpec); ok {
						declPlace = typeSpecPlacement(ts)
					}
				}
				mark(declPlace, d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					mark(typeSpecPlacement(ts), ts.Doc, ts.Comment)
					switch t := ts.Type.(type) {
					case *ast.StructType:
						for _, f := range t.Fields.List {
							mark(onField, f.Doc, f.Comment)
						}
					case *ast.InterfaceType:
						for _, f := range t.Methods.List {
							mark(onIfaceMethod, f.Doc, f.Comment)
						}
					}
				}
			case token.VAR:
				declPlace := placement(0)
				if len(d.Specs) == 1 {
					declPlace = onVar
				}
				mark(declPlace, d.Doc)
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						mark(onVar, vs.Doc, vs.Comment)
					}
				}
			default: // const, import: no directive belongs here
				mark(0, d.Doc)
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						mark(0, vs.Doc, vs.Comment)
					}
				}
			}
		}
	}
	return places
}

// typeSpecPlacement classifies one type spec's doc slot.
func typeSpecPlacement(ts *ast.TypeSpec) placement {
	switch ts.Type.(type) {
	case *ast.StructType:
		return onStructType
	case *ast.InterfaceType:
		return onIfaceType
	}
	return 0 // named basic/alias types take no directives
}
