package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// PhasePure proves the compute/memory phase split the parallel stepper's
// determinism contract rests on (internal/pipeline/parallel.go): the
// compute phases of a cycle (//vpr:computephase roots — stepFront,
// stepBack, memQuiet — and everything statically reachable from them)
// run concurrently across cores, so they must never reach the shared
// memory surface; only the gate-serialized memory phase may.
//
// The surface is declared in the source: //vpr:memstate marks the shared
// types (mem.Memory, System, BankedL2, L1), //vpr:memphase marks the
// functions and interface methods allowed to touch them. Three checks
// hold the two sides together:
//
//  1. Purity: no call chain from a //vpr:computephase root reaches a
//     surface member. //vpr:coldpath cuts traversal exactly as in
//     hotpathalloc; //vpr:phaseexempt on (or above) the call line waives
//     one edge with its reason.
//  2. Containment: outside the surface type's own package, a surface
//     member may only be called from a function that itself carries
//     //vpr:memphase (or a //vpr:phaseexempt declaration waiver) — this
//     is what makes deleting the fence annotation from executeStage a
//     lint failure rather than a latent race.
//  3. Inverse inclusion: every exported mutating method of a
//     //vpr:memstate struct must carry //vpr:memphase (or a declaration
//     //vpr:phaseexempt with its reason), and every method of a
//     //vpr:memstate interface must be classified one way or the other —
//     so new mem-layer methods cannot dodge the fence. Mutation is
//     detected transitively: a method that writes a receiver field
//     directly, or calls a receiver-rooted method that does.
var PhasePure = &analysis.Analyzer{
	Name: "phasepure",
	Doc:  "//vpr:computephase code must never reach the //vpr:memphase shared-memory surface",
	Run:  runPhasePure,
}

func runPhasePure(pass *analysis.Pass) error {
	idx := indexFuncs(pass.Pkgs)
	waivers := collectWaiverLines(pass.Fset, pass.Pkgs, "phaseexempt")
	mut := collectMutators(pass, idx)
	surf := collectSurface(pass, idx, mut)

	checkInverseInclusion(pass, idx, mut)
	reach := checkPurity(pass, idx, surf, waivers)
	checkContainment(pass, idx, surf, reach, waivers)
	return nil
}

// surface is the shared-memory fence: the full names code outside the
// memory phase must not call.
type surface struct {
	members map[string]string // full name -> why it is on the surface
	exempt  map[string]bool   // declaration-level //vpr:phaseexempt waivers
	inPhase map[string]bool   // functions carrying //vpr:memphase
}

// collectSurface gathers //vpr:memphase functions, the per-method
// classification of //vpr:memstate interfaces, and the mutating methods
// of //vpr:memstate structs. Interface methods left unclassified are
// reported here (inverse inclusion for interfaces).
func collectSurface(pass *analysis.Pass, idx map[string]funcDecl, mut *mutatorSet) *surface {
	s := &surface{
		members: make(map[string]string),
		exempt:  make(map[string]bool),
		inPhase: make(map[string]bool),
	}
	// Declared functions: //vpr:memphase joins the surface,
	// //vpr:phaseexempt on the declaration waives membership.
	for name, fn := range idx {
		ds := funcDirectives(fn.decl)
		if hasDirective(ds, "memphase") {
			s.members[name] = "//vpr:memphase function"
			s.inPhase[name] = true
			if hasDirective(ds, "computephase") {
				pass.Reportf(fn.decl.Name.Pos(),
					"%s is annotated both //vpr:computephase and //vpr:memphase — a phase cannot be on both sides of the fence",
					shortName(name))
			}
		}
		if hasDirective(ds, "phaseexempt") {
			s.exempt[name] = true
		}
	}
	// Mutating methods of //vpr:memstate structs.
	for name := range mut.mutating {
		if t := mut.recvType[name]; t != "" && mut.memstateStructs[t] {
			if _, ok := s.members[name]; !ok {
				s.members[name] = "mutating method of //vpr:memstate type " + shortName(t)
			}
		}
	}
	// //vpr:memstate interfaces: every method must carry //vpr:memphase
	// (surface) or //vpr:phaseexempt (read-only).
	forEachTypeSpec(pass, func(pkg *analysis.Package, gd *ast.GenDecl, ts *ast.TypeSpec) {
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok || !hasDirective(parseDirectives(gd.Doc, ts.Doc, ts.Comment), "memstate") {
			return
		}
		for _, m := range it.Methods.List {
			if len(m.Names) == 0 {
				continue // embedded interface
			}
			fn, _ := pkg.TypesInfo.Defs[m.Names[0]].(*types.Func)
			if fn == nil {
				continue
			}
			ds := fieldDirectives(m)
			switch {
			case hasDirective(ds, "memphase"):
				s.members[fn.FullName()] = "//vpr:memphase method of //vpr:memstate interface " + ts.Name.Name
			case hasDirective(ds, "phaseexempt"):
				s.exempt[fn.FullName()] = true
			default:
				pass.Reportf(m.Names[0].Pos(),
					"method %s of //vpr:memstate interface %s.%s carries neither //vpr:memphase nor //vpr:phaseexempt — classify it so the phase fence covers it",
					m.Names[0].Name, pkg.Name, ts.Name.Name)
			}
		}
	})
	for name := range s.exempt {
		delete(s.members, name)
	}
	return s
}

// checkPurity walks the static call graph from every //vpr:computephase
// root and reports each unwaived edge into the surface. Returns the set
// of compute-reachable functions (containment skips them — their surface
// calls are already reported here).
func checkPurity(pass *analysis.Pass, idx map[string]funcDecl, surf *surface, waivers waiverLines) map[string]bool {
	type provenance struct{ root string }
	reach := make(map[string]provenance)
	cold := make(map[string]bool)
	var queue []string
	for name, fn := range idx {
		ds := funcDirectives(fn.decl)
		if hasDirective(ds, "coldpath") {
			cold[name] = true
		}
		if hasDirective(ds, "computephase") {
			reach[name] = provenance{root: name}
			queue = append(queue, name)
		}
	}
	sort.Strings(queue) // deterministic traversal order

	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		fn := idx[name]
		from := reach[name]
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fn.pkg.TypesInfo, call)
			if callee == nil {
				return true
			}
			full := callee.FullName()
			if why, onSurface := surf.members[full]; onSurface {
				if !waivers.waived(pass.Fset, call.Pos()) {
					suffix := ""
					if from.root != name {
						suffix = " (compute phase via " + shortName(from.root) + ")"
					}
					pass.Reportf(call.Pos(),
						"compute-phase function %s%s calls %s (%s) — only the gate-serialized memory phase may touch shared memory state; move the call into //vpr:memphase code or waive the edge with //vpr:phaseexempt <reason>",
						shortName(name), suffix, shortName(full), why)
				}
				return true // the surface is a boundary either way
			}
			target, declared := idx[full]
			if !declared || cold[full] {
				return true
			}
			if _, seen := reach[full]; seen {
				return true
			}
			_ = target
			reach[full] = provenance{root: from.root}
			queue = append(queue, full)
			return true
		})
	}
	out := make(map[string]bool, len(reach))
	for name := range reach {
		out[name] = true
	}
	return out
}

// checkContainment enforces the fence from the caller side: any call to
// a surface member whose target is declared in another package must come
// from a function that is itself //vpr:memphase (or declaration-waived).
// Compute-reachable callers are skipped — purity already reported them.
// Calls within the surface type's own package are the implementation.
func checkContainment(pass *analysis.Pass, idx map[string]funcDecl, surf *surface, reach map[string]bool, waivers waiverLines) {
	names := make([]string, 0, len(idx))
	for name := range idx {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if surf.inPhase[name] || surf.exempt[name] || reach[name] {
			continue
		}
		fn := idx[name]
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fn.pkg.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			full := callee.FullName()
			why, onSurface := surf.members[full]
			if !onSurface || callee.Pkg().Path() == fn.pkg.ImportPath {
				return true
			}
			if waivers.waived(pass.Fset, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s calls %s (%s) outside the memory phase — annotate the caller //vpr:memphase or waive with //vpr:phaseexempt <reason>",
				shortName(name), shortName(full), why)
			return true
		})
	}
}

// checkInverseInclusion requires every exported mutating method of a
// //vpr:memstate struct to carry //vpr:memphase or a declaration-level
// //vpr:phaseexempt, so the surface cannot silently grow unannotated
// entry points.
func checkInverseInclusion(pass *analysis.Pass, idx map[string]funcDecl, mut *mutatorSet) {
	names := make([]string, 0, len(mut.mutating))
	for name := range mut.mutating {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := idx[name]
		t := mut.recvType[name]
		if t == "" || !mut.memstateStructs[t] || !fn.decl.Name.IsExported() {
			continue
		}
		ds := funcDirectives(fn.decl)
		if hasDirective(ds, "memphase") || hasDirective(ds, "phaseexempt") {
			continue
		}
		pass.Reportf(fn.decl.Name.Pos(),
			"exported mutating method %s of //vpr:memstate type %s is not annotated //vpr:memphase — annotate it (or waive the declaration with //vpr:phaseexempt <reason>) so the phase fence covers it",
			shortName(name), shortName(t))
	}
}

// mutatorSet is the transitive does-it-mutate-its-receiver analysis over
// every declared method in the module.
type mutatorSet struct {
	mutating        map[string]bool   // method full name -> writes receiver state
	recvType        map[string]string // method full name -> receiver named type full name
	memstateStructs map[string]bool   // //vpr:memstate struct full type names
}

// collectMutators computes, for every method, whether it writes state
// reachable from its receiver: a direct assignment or ++/-- whose
// left-hand side is rooted in the receiver identifier, or a call to
// another declared method through a receiver-rooted chain that mutates
// in turn (L1.Drain -> l.drain, BankedL2.Fetch -> c.fetch).
func collectMutators(pass *analysis.Pass, idx map[string]funcDecl) *mutatorSet {
	m := &mutatorSet{
		mutating:        make(map[string]bool),
		recvType:        make(map[string]string),
		memstateStructs: make(map[string]bool),
	}
	forEachTypeSpec(pass, func(pkg *analysis.Package, gd *ast.GenDecl, ts *ast.TypeSpec) {
		if _, ok := ts.Type.(*ast.StructType); !ok {
			return
		}
		if hasDirective(parseDirectives(gd.Doc, ts.Doc, ts.Comment), "memstate") {
			m.memstateStructs[pkg.ImportPath+"."+ts.Name.Name] = true
		}
	})

	edges := make(map[string][]string) // method -> receiver-rooted callees
	for name, fn := range idx {
		recv := receiverObj(fn)
		if recv == nil {
			continue
		}
		if n := namedDeref(recv.Type()); n != nil {
			m.recvType[name] = namedFullName(n)
		}
		info := fn.pkg.TypesInfo
		rooted := func(expr ast.Expr) bool {
			id := baseIdentOf(expr)
			return id != nil && info.Uses[id] == recv
		}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if _, isIdent := lhs.(*ast.Ident); !isIdent && rooted(lhs) {
						m.mutating[name] = true
					}
				}
			case *ast.IncDecStmt:
				if _, isIdent := n.X.(*ast.Ident); !isIdent && rooted(n.X) {
					m.mutating[name] = true
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || !rooted(sel.X) {
					return true
				}
				if callee := calleeOf(info, n); callee != nil {
					edges[name] = append(edges[name], callee.FullName())
				}
			}
			return true
		})
	}

	// Fixpoint: a receiver-rooted call to a mutating method mutates.
	for changed := true; changed; {
		changed = false
		for caller, callees := range edges {
			if m.mutating[caller] {
				continue
			}
			for _, callee := range callees {
				if m.mutating[callee] {
					m.mutating[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return m
}

// receiverObj returns the declared receiver variable of a method, or nil
// for plain functions and anonymous receivers.
func receiverObj(fn funcDecl) types.Object {
	if fn.decl.Recv == nil || len(fn.decl.Recv.List) == 0 || len(fn.decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return fn.pkg.TypesInfo.Defs[fn.decl.Recv.List[0].Names[0]]
}

// forEachTypeSpec visits every type declaration of every loaded package.
func forEachTypeSpec(pass *analysis.Pass, visit func(*analysis.Package, *ast.GenDecl, *ast.TypeSpec)) {
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						visit(pkg, gd, ts)
					}
				}
			}
		}
	}
}
