package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// The //vpr: annotation grammar (docs/LINTING.md):
//
//	//vpr:hotpath                    on a func: per-cycle kernel root
//	//vpr:coldpath                   on a func: cut hot-path traversal here
//	//vpr:allowalloc [reason]        on/above a line: waive one hotpathalloc finding
//	//vpr:stats                      on a struct: counters that must be aggregated
//	//vpr:statsink TYPE              on a func: aggregates TYPE's counters
//	//vpr:statsexempt [reason]       on a field: not an aggregated counter
//	//vpr:cachekey                   on a struct: rendered into the result-cache key
//	//vpr:keyfunc TYPE               on a func: canonical key renderer for TYPE
//	//vpr:nocachekey [reason]        on a field: observer-only, excluded from the key
//	//vpr:registry NAMESPACE         on a package-level var: static registration table
//	//vpr:register NAMESPACE         on a func: runtime registration entry point
//	//vpr:lookup NAMESPACE           on a func: registry lookup entry point
//	//vpr:computephase               on a func: compute-phase root — must not reach the memory surface
//	//vpr:memphase                   on a func or interface method: shared-memory-phase code
//	//vpr:memstate                   on a struct or interface: shared memory state surface
//	//vpr:phaseexempt [reason]       on a func/method decl or on/above a line: waive one phasepure finding
//	//vpr:shared                     on a field: cross-goroutine gate state, must stay atomic
//	//vpr:coreprivate                on a field: serial-only state, off-limits to stepper goroutines
//	//vpr:guardexempt [reason]       on/above a line: waive one sharedguard finding
//	//vpr:stepper                    on a func: the only place goroutines may be launched
//	//vpr:wallclock [reason]         on a func: host-time throughput accounting, exempt from detsource
//	//vpr:detpkg                     on a package doc: package is determinism-checked by detsource
//	//vpr:detexempt [reason]         on/above a line: waive one detsource finding
//
// Directives are ordinary comments starting exactly with "//vpr:"; the
// first word after the colon is the directive name, the rest its
// arguments. A second "//" inside the comment starts a trailing remark
// and ends the directive's arguments. Directives ride in doc comments
// (functions, types, vars, fields, interface methods, package clauses)
// or stand on/immediately above the line they waive; annotcheck rejects
// unknown names and misplaced directives against the table below.

// directive is one parsed //vpr: annotation.
type directive struct {
	name string
	args []string
	pos  token.Pos
}

const directivePrefix = "//vpr:"

// parseDirectives extracts directives from comment groups.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			text := c.Text[len(directivePrefix):]
			// A second "//" starts a trailing remark, not arguments.
			if i := strings.Index(text, " //"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			out = append(out, directive{name: fields[0], args: fields[1:], pos: c.Pos()})
		}
	}
	return out
}

// hasDirective reports whether name appears among ds.
func hasDirective(ds []directive, name string) bool {
	for _, d := range ds {
		if d.name == name {
			return true
		}
	}
	return false
}

// funcDirectives returns the directives of a function declaration.
func funcDirectives(fd *ast.FuncDecl) []directive {
	return parseDirectives(fd.Doc)
}

// fieldDirectives returns the directives of one struct field (doc comment
// or trailing line comment).
func fieldDirectives(f *ast.Field) []directive {
	return parseDirectives(f.Doc, f.Comment)
}

// waiverLines indexes, per file, the lines carrying a given line-waiver
// directive (e.g. allowalloc). A construct at line L is waived by a
// directive on L (trailing comment) or L-1 (the line above).
type waiverLines map[string]map[int]bool

func collectWaiverLines(fset *token.FileSet, pkgs []*analysis.Package, name string) waiverLines {
	w := make(waiverLines)
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, g := range file.Comments {
				for _, d := range parseDirectives(g) {
					if d.name != name {
						continue
					}
					pos := fset.Position(d.pos)
					lines := w[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						w[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return w
}

// waived reports whether the construct at pos carries a waiver on its own
// line or the line immediately above.
func (w waiverLines) waived(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := w[p.Filename]
	return lines != nil && (lines[p.Line] || lines[p.Line-1])
}

// typeRefMatches reports whether a directive argument ("Stats",
// "mem.Stats") names the given struct, declared as typeName in the
// package named pkgName. Same-package references may omit the package
// name; cross-package references use the package name (not the import
// path), which is unambiguous within this module.
func typeRefMatches(arg, pkgName, typeName string) bool {
	if arg == typeName {
		return true
	}
	return arg == pkgName+"."+typeName
}

// namedDeref unwraps pointers and returns the named type of t, if any.
func namedDeref(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// namedFullName renders a named type as "importpath.Name", the canonical
// cross-package identity used to match objects between a package
// type-checked from source and the same package imported from export
// data.
func namedFullName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// calleeOf resolves the static callee of a call expression: a declared
// function or a method of a concrete type. Interface method calls
// resolve to the interface's method object, which never matches a
// declaration index — exactly the conservative behaviour the hot-path
// traversal wants.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// declFullName returns the canonical identity of a declared function —
// types.Func.FullName: "repro/internal/mem.NewL1" for functions,
// "(*repro/internal/mem.L1).Access" for methods.
func declFullName(info *types.Info, fd *ast.FuncDecl) string {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// funcIndex maps every declared function/method of the loaded packages to
// its declaration and package.
type funcDecl struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
}

func indexFuncs(pkgs []*analysis.Package) map[string]funcDecl {
	idx := make(map[string]funcDecl)
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if name := declFullName(pkg.TypesInfo, fd); name != "" {
					idx[name] = funcDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return idx
}

// enclosure classifies where in a file a position sits: inside an init
// function, inside some other function, or at package level (var/const
// initializers, type declarations).
type enclosure int

const (
	atPackageLevel enclosure = iota
	inInitFunc
	inOtherFunc
)

// encloserAt walks the file's top-level declarations to classify pos.
func encloserAt(file *ast.File, pos token.Pos) enclosure {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			if fd.Name.Name == "init" && fd.Recv == nil {
				return inInitFunc
			}
			return inOtherFunc
		}
	}
	return atPackageLevel
}

// funcDeclAt returns the top-level function declaration whose body spans
// pos, or nil for package-level positions.
func funcDeclAt(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}

// baseIdentOf unwraps a selector/index/star/paren chain to the
// identifier it is rooted in: baseIdentOf(r.m.cores[i]) = r. Returns nil
// for expressions not rooted in a plain identifier (calls, literals).
func baseIdentOf(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// pkgHasDirective reports whether any file's package doc in pkg carries
// the directive (e.g. //vpr:detpkg).
func pkgHasDirective(pkg *analysis.Package, name string) bool {
	for _, file := range pkg.Syntax {
		if hasDirective(parseDirectives(file.Doc), name) {
			return true
		}
	}
	return false
}

// The known-directive table: where each //vpr: directive may be placed
// and how many arguments it takes. annotcheck enforces it so a typo or a
// misplaced directive is an error instead of a silently disabled check.

// placement is a bitmask of syntactic positions a directive may occupy.
type placement uint16

const (
	onFunc        placement = 1 << iota // function/method declaration doc
	onStructType                        // struct type declaration doc
	onIfaceType                         // interface type declaration doc
	onField                             // struct field doc or trailing comment
	onIfaceMethod                       // interface method doc or trailing comment
	onVar                               // package-level var spec doc or trailing comment
	onPackage                           // package doc
	onLine                              // freestanding or trailing statement comment
)

// placementName spells one placement bit for diagnostics.
func placementName(p placement) string {
	switch p {
	case onFunc:
		return "a function declaration"
	case onStructType:
		return "a struct type declaration"
	case onIfaceType:
		return "an interface type declaration"
	case onField:
		return "a struct field"
	case onIfaceMethod:
		return "an interface method"
	case onVar:
		return "a package-level var"
	case onPackage:
		return "a package doc comment"
	case onLine:
		return "a statement line"
	}
	return "a declaration that takes no directives"
}

// placementNames spells a placement set ("a function declaration or a
// struct field").
func placementNames(p placement) string {
	var parts []string
	for bit := placement(1); bit <= onLine; bit <<= 1 {
		if p&bit != 0 {
			parts = append(parts, placementName(bit))
		}
	}
	return strings.Join(parts, " or ")
}

// directiveSpec is one row of the known-directive table.
type directiveSpec struct {
	where  placement
	args   int  // exact argument count, when reason is false
	reason bool // free-form reason text instead of counted arguments
}

var directiveTable = map[string]directiveSpec{
	"hotpath":      {where: onFunc},
	"coldpath":     {where: onFunc},
	"allowalloc":   {where: onLine, reason: true},
	"stats":        {where: onStructType},
	"statsink":     {where: onFunc, args: 1},
	"statsexempt":  {where: onField, reason: true},
	"cachekey":     {where: onStructType},
	"keyfunc":      {where: onFunc, args: 1},
	"nocachekey":   {where: onField, reason: true},
	"registry":     {where: onVar, args: 1},
	"register":     {where: onFunc, args: 1},
	"lookup":       {where: onFunc, args: 1},
	"computephase": {where: onFunc},
	"memphase":     {where: onFunc | onIfaceMethod},
	"memstate":     {where: onStructType | onIfaceType},
	"phaseexempt":  {where: onFunc | onIfaceMethod | onLine, reason: true},
	"shared":       {where: onField},
	"coreprivate":  {where: onField},
	"guardexempt":  {where: onLine, reason: true},
	"stepper":      {where: onFunc},
	"wallclock":    {where: onFunc, reason: true},
	"detpkg":       {where: onPackage},
	"detexempt":    {where: onLine, reason: true},
}
