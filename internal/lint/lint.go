// Package lint holds the repository's invariant analyzers — the checks
// every PR used to re-verify by hand, mechanized over the type-checked
// syntax the internal/lint/analysis loader produces. cmd/vplint is the
// multichecker front end; docs/LINTING.md documents each analyzer and
// the //vpr: annotation grammar they consume.
package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc,
		StatsFlow,
		CacheKey,
		RegHygiene,
	}
}
