// Package lint holds the repository's invariant analyzers — the checks
// every PR used to re-verify by hand, mechanized over the type-checked
// syntax the internal/lint/analysis loader produces. cmd/vplint is the
// multichecker front end; docs/LINTING.md documents each analyzer and
// the //vpr: annotation grammar they consume.
package lint

import (
	"go/token"

	"repro/internal/lint/analysis"
)

// Analyzers returns the full suite in reporting order. AnnotCheck runs
// first: every other analyzer keys off the //vpr: directives it
// validates.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AnnotCheck,
		HotPathAlloc,
		StatsFlow,
		CacheKey,
		RegHygiene,
		PhasePure,
		SharedGuard,
		DetSource,
	}
}

// waiverDirectives are the //vpr:*exempt / allow* directives that excuse
// one finding each. CountWaivers backs vplint's -maxwaivers ratchet: the
// committed baseline in the Makefile keeps waivers from silently
// accumulating.
var waiverDirectives = []string{
	"allowalloc",
	"statsexempt",
	"nocachekey",
	"phaseexempt",
	"guardexempt",
	"detexempt",
}

// CountWaivers counts every waiver directive in the loaded packages.
func CountWaivers(fset *token.FileSet, pkgs []*analysis.Package) int {
	n := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, g := range file.Comments {
				for _, d := range parseDirectives(g) {
					for _, w := range waiverDirectives {
						if d.name == w {
							n++
						}
					}
				}
			}
		}
	}
	return n
}
