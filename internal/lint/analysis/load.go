package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Config controls a Load.
type Config struct {
	// Dir is the directory `go list` runs in (any directory inside the
	// module). Empty means the current directory.
	Dir string
	// BuildFlags are extra `go list` flags, e.g. "-tags=scanoracle".
	// They select which files belong to each package, so the analyzers
	// see exactly what the tagged build compiles.
	BuildFlags []string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns.
//
// The mechanism: one `go list -e -deps -export -json` invocation resolves
// the patterns, selects files under the configured build tags, and makes
// the go command produce compiler export data for the full dependency
// closure. Target packages (the pattern matches) are then parsed with
// comments and type-checked from source; their imports resolve through
// the export data, read by the standard library's gc importer — no
// network, no module downloads, no third-party loader. A target that
// fails to list, parse or type-check fails the Load: the linters refuse
// to reason about code the compiler would reject.
func Load(cfg Config, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(cfg, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listPackage
	for _, lp := range listed {
		if lp.Error != nil && !lp.DepOnly {
			return nil, nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && lp.Name != "" {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		p, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return fset, pkgs, nil
}

// goList runs the go command and decodes its JSON package stream.
func goList(cfg Config, patterns []string) ([]*listPackage, error) {
	args := []string{"list", "-e", "-deps", "-export", "-json"}
	args = append(args, cfg.BuildFlags...)
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: starting go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// typeCheck parses one target package with comments and type-checks it
// against the export-data importer.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	p := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
	}
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		p.GoFiles = append(p.GoFiles, path)
		p.Syntax = append(p.Syntax, file)
	}
	p.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := tcfg.Check(lp.ImportPath, fset, p.Syntax, p.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	p.Types = tpkg
	return p, nil
}
