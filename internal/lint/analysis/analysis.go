// Package analysis is the dependency-free static-analysis substrate the
// repository's linters (internal/lint, driven by cmd/vplint) run on. It
// mirrors the golang.org/x/tools/go/analysis contract — named Analyzer
// values with a Run hook reporting position-tagged Diagnostics over
// type-checked syntax — without importing it: the module is intentionally
// dependency-free (go.mod lists nothing), so the loader is built on
// `go list -export` plus the standard library's go/parser, go/types and
// go/importer instead of go/packages.
//
// One deliberate deviation from x/tools: a Pass here spans every package
// of one load, not a single package. The repository's invariants are
// cross-package by nature — a counter declared in internal/mem must be
// folded in by internal/pipeline, a config struct in internal/pipeline
// must be rendered by internal/engine's cache key — so analyzers get the
// whole module view at once instead of reconstructing it through a fact
// store. Diagnostics still carry precise positions and are reported per
// construct, and the analysistest workflow (testdata fixture modules with
// `// want` comments, see internal/lint/linttest) carries over unchanged.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the canonical import path ("repro/internal/mem").
	ImportPath string
	// Name is the package name ("mem").
	Name string
	// Dir is the directory holding the package's sources.
	Dir string
	// GoFiles are the absolute paths of the parsed files, in the order
	// the build system lists them (test files are never included).
	GoFiles []string
	// Syntax holds the parsed files, parallel to GoFiles.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo carries the type-checker's observations about Syntax.
	TypesInfo *types.Info
}

// Analyzer is one named check. Run inspects every package of the pass and
// reports findings through pass.Report*.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI listings
	// (lower-case, no spaces: "hotpathalloc").
	Name string
	// Doc is the one-paragraph description `vplint -help` prints.
	Doc string
	// Run performs the analysis. A non-nil error aborts the whole lint
	// run (it means the analyzer itself failed, not that findings
	// exist); findings are diagnostics, never errors.
	Run func(*Pass) error
}

// Pass carries one load of packages through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps every position in every loaded package.
	Fset *token.FileSet
	// Pkgs are the target packages of the load, sorted by import path.
	// Dependencies outside the requested patterns are type-checked (their
	// exported API is visible through go/types) but carry no syntax.
	Pkgs []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run executes every analyzer over the loaded packages and returns the
// findings sorted by file position. The error reports analyzer failures,
// not findings.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Pkgs: pkgs, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
