package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// CacheKey guards the result-cache identity invariant: a cached result
// may only stand in for a simulation if the cache key covers every
// behavioral configuration field, otherwise stale entries masquerade as
// real runs. Structs annotated //vpr:cachekey are the ones the engine
// renders into its canonical keys (via %#v or an explicit key function);
// for each, the analyzer checks one of three coverage proofs:
//
//  1. the struct has a GoString method → every field must be referenced
//     in its body (pipeline.Policies renders policy *names*);
//  2. a function annotated //vpr:keyfunc TYPE exists → every field must
//     be referenced in some key function for the type (engine.specKey /
//     smtKey / multicoreKey over the sim specs);
//  3. otherwise the struct is rendered field-by-field by %#v → every
//     field's type must render canonically: basics, named types over
//     basics, arrays of such, nested structs that are themselves
//     //vpr:cachekey, or types providing their own GoString. Pointers,
//     interfaces, maps, slices and funcs render as addresses — never
//     canonical.
//
// Observer-only fields (probes) are excluded with //vpr:nocachekey
// <reason> — the allowlist that keeps "pure observers never perturb the
// key" an explicit, reviewed decision.
var CacheKey = &analysis.Analyzer{
	Name: "cachekey",
	Doc:  "every //vpr:cachekey field must render into the canonical result-cache key",
	Run:  runCacheKey,
}

func runCacheKey(pass *analysis.Pass) error {
	structs := collectAnnotatedStructs(pass, "cachekey")
	if len(structs) == 0 {
		return nil
	}

	// Key functions: //vpr:keyfunc TYPE anywhere in the load.
	keyfuncs := make(map[string][]funcDecl) // struct full name -> funcs
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, dir := range funcDirectives(fd) {
					if dir.name != "keyfunc" {
						continue
					}
					if len(dir.args) != 1 {
						pass.Reportf(dir.pos, "//vpr:keyfunc needs exactly one type argument")
						continue
					}
					matched := false
					for full, s := range structs {
						same := pkg.ImportPath == s.pkg.ImportPath
						if (same && typeRefMatches(dir.args[0], s.pkgName, s.typeName)) ||
							(!same && dir.args[0] == s.pkgName+"."+s.typeName) {
							keyfuncs[full] = append(keyfuncs[full], funcDecl{pkg: pkg, decl: fd})
							matched = true
						}
					}
					if !matched {
						pass.Reportf(dir.pos, "//vpr:keyfunc %s names no //vpr:cachekey struct", dir.args[0])
					}
				}
			}
		}
	}

	names := make([]string, 0, len(structs))
	for n := range structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, full := range names {
		s := structs[full]
		switch {
		case goStringOf(s) != nil:
			checkFieldCoverage(pass, s, []funcDecl{*goStringOf(s)}, "its GoString method")
		case len(keyfuncs[full]) > 0:
			checkFieldCoverage(pass, s, keyfuncs[full], "any //vpr:keyfunc key function")
		default:
			checkFieldShapes(pass, s, structs)
		}
	}
	return nil
}

// goStringOf finds the struct's GoString method declared in its package.
func goStringOf(s *annotStruct) *funcDecl {
	for _, file := range s.pkg.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "GoString" || fd.Body == nil {
				continue
			}
			recv, _ := s.pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if recv == nil {
				continue
			}
			rt := recv.Type().(*types.Signature).Recv().Type()
			if named := namedDeref(rt); named != nil && namedFullName(named) == s.fullName {
				return &funcDecl{pkg: s.pkg, decl: fd}
			}
		}
	}
	return nil
}

// checkFieldCoverage requires every non-waived field to be referenced in
// at least one of the given renderer functions.
func checkFieldCoverage(pass *analysis.Pass, s *annotStruct, renderers []funcDecl, whereDoc string) {
	for _, field := range s.st.Fields.List {
		if hasDirective(fieldDirectives(field), "nocachekey") {
			continue
		}
		for _, name := range field.Names {
			covered := false
			for _, r := range renderers {
				if selectsField(r, s.fullName, name.Name) {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(name.Pos(),
					"cache-key field %s.%s.%s is not rendered by %s — two configs differing only in it would share a cache entry; render it or waive with //vpr:nocachekey <reason>",
					s.pkgName, s.typeName, name.Name, whereDoc)
			}
		}
	}
}

// checkFieldShapes enforces canonical %#v rendering field by field.
func checkFieldShapes(pass *analysis.Pass, s *annotStruct, marked map[string]*annotStruct) {
	for _, field := range s.st.Fields.List {
		if hasDirective(fieldDirectives(field), "nocachekey") {
			continue
		}
		idents := field.Names
		if len(idents) == 0 { // embedded field
			idents = []*ast.Ident{embeddedName(field.Type)}
		}
		for _, name := range idents {
			if name == nil {
				continue
			}
			obj := s.pkg.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if reason := nonCanonical(obj.Type(), marked); reason != "" {
				pass.Reportf(name.Pos(),
					"cache-key field %s.%s.%s %s — %%#v would render it non-canonically; give the type a GoString, mark it //vpr:cachekey, or waive with //vpr:nocachekey <reason>",
					s.pkgName, s.typeName, name.Name, reason)
			}
		}
	}
}

func embeddedName(t ast.Expr) *ast.Ident {
	switch t := t.(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}

// nonCanonical explains why a field type cannot be rendered canonically
// by %#v, or returns "" when it can.
func nonCanonical(t types.Type, marked map[string]*annotStruct) string {
	if named, ok := t.(*types.Named); ok {
		if hasGoString(named) {
			return "" // renders through its own canonical GoString
		}
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			if _, ok := marked[namedFullName(named)]; ok {
				return "" // checked as its own //vpr:cachekey struct
			}
			return "has struct type " + named.Obj().Name() + " that is not marked //vpr:cachekey"
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "is an unsafe.Pointer"
		}
		return ""
	case *types.Struct:
		return "is an anonymous struct (mark a named //vpr:cachekey type instead)"
	case *types.Array:
		return nonCanonical(u.Elem(), marked)
	case *types.Pointer:
		return "is a pointer (renders as an address)"
	case *types.Interface:
		return "is an interface (renders by dynamic value identity)"
	case *types.Slice:
		return "is a slice (renders by contents the key cannot bound)"
	case *types.Map:
		return "is a map (renders in random order)"
	case *types.Signature:
		return "is a func value (renders as an address)"
	case *types.Chan:
		return "is a channel (renders as an address)"
	}
	return "has a type %#v cannot render canonically"
}

// hasGoString reports whether the type (or its pointer receiver) has a
// GoString() string method — including types imported from export data.
func hasGoString(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, "GoString")
		if f, ok := obj.(*types.Func); ok {
			sig := f.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && isString(sig.Results().At(0).Type()) {
				return true
			}
		}
	}
	return false
}
