package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// SharedGuard mechanizes the gate protocol of the parallel stepper
// (internal/pipeline/parallel.go), which ARCHITECTURE.md argues by hand:
//
//   - //vpr:shared fields are the cross-goroutine gate state (memCycle,
//     completed, stopped). They must be sync/atomic types — or slices and
//     arrays of them — and every use must go through an atomic method
//     call (Load/Store/...), a range over the slice, or len/cap. Taking
//     an element's address into a variable, copying the slice header, or
//     assigning the field directly would let a plain read race past the
//     happens-before edges the gate publishes; //vpr:guardexempt on (or
//     above) the line waives one finding with its reason.
//
//   - //vpr:coreprivate fields belong to the serial control plane. They
//     must never be referenced from any function statically reachable
//     from a goroutine launched inside a //vpr:stepper function — the
//     code another core's goroutine can reach.
//
// Deliberately changing a //vpr:shared field to a plain type is a lint
// failure, mirroring phasepure's fence on the memory surface.
var SharedGuard = &analysis.Analyzer{
	Name: "sharedguard",
	Doc:  "//vpr:shared fields stay atomic and method-accessed; //vpr:coreprivate fields stay off goroutines",
	Run:  runSharedGuard,
}

// guardedField is one annotated struct field.
type guardedField struct {
	structFull string // declaring struct's full type name
	name       string
	pos        token.Pos
	ftype      types.Type
}

func runSharedGuard(pass *analysis.Pass) error {
	idx := indexFuncs(pass.Pkgs)
	waivers := collectWaiverLines(pass.Fset, pass.Pkgs, "guardexempt")
	shared := collectGuardedFields(pass, "shared")
	private := collectGuardedFields(pass, "coreprivate")

	for _, f := range shared {
		if !atomicShaped(f.ftype) {
			pass.Reportf(f.pos,
				"//vpr:shared field %s.%s must be a sync/atomic type (or a slice/array of one), not %s — plain types have no happens-before edges for the gate protocol",
				shortName(f.structFull), f.name, f.ftype.String())
		}
	}
	checkSharedUses(pass, shared, waivers)
	checkCorePrivate(pass, idx, private, waivers)
	return nil
}

// collectGuardedFields finds every struct field carrying the directive.
func collectGuardedFields(pass *analysis.Pass, directiveName string) []guardedField {
	var out []guardedField
	forEachTypeSpec(pass, func(pkg *analysis.Package, gd *ast.GenDecl, ts *ast.TypeSpec) {
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		for _, f := range st.Fields.List {
			if !hasDirective(fieldDirectives(f), directiveName) {
				continue
			}
			for _, name := range f.Names {
				v, _ := pkg.TypesInfo.Defs[name].(*types.Var)
				if v == nil {
					continue
				}
				out = append(out, guardedField{
					structFull: pkg.ImportPath + "." + ts.Name.Name,
					name:       name.Name,
					pos:        name.Pos(),
					ftype:      v.Type(),
				})
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// atomicShaped reports whether t is a sync/atomic type or a slice/array
// of one.
func atomicShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return atomicNamed(u.Elem())
	case *types.Array:
		return atomicNamed(u.Elem())
	}
	return atomicNamed(t)
}

func atomicNamed(t types.Type) bool {
	n, _ := t.(*types.Named)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// isGuardedSelector reports whether sel selects one of the guarded
// fields (matched by declaring struct type and field name, which stays
// stable across source-typed and export-data-typed loads).
func isGuardedSelector(info *types.Info, sel *ast.SelectorExpr, fields []guardedField) *guardedField {
	v, _ := info.Uses[sel.Sel].(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	n := namedDeref(tv.Type)
	if n == nil {
		return nil
	}
	full := namedFullName(n)
	for i := range fields {
		if fields[i].name == v.Name() && fields[i].structFull == full {
			return &fields[i]
		}
	}
	return nil
}

// checkSharedUses verifies every selector of a //vpr:shared field is the
// receiver of an atomic method call (possibly through an index), the
// subject of a range statement, or a len/cap argument.
func checkSharedUses(pass *analysis.Pass, shared []guardedField, waivers waiverLines) {
	if len(shared) == 0 {
		return
	}
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Syntax {
			allowed := make(map[*ast.SelectorExpr]bool)
			permit := func(expr ast.Expr) {
				if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
					allowed[sel] = true
				} else if ix, ok := ast.Unparen(expr).(*ast.IndexExpr); ok {
					if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok {
						allowed[sel] = true
					}
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					switch fun := ast.Unparen(n.Fun).(type) {
					case *ast.SelectorExpr:
						// r.stopped.Load(), r.memCycle[i].Store(x): the
						// method must belong to the atomic type itself.
						if m, _ := info.Uses[fun.Sel].(*types.Func); m != nil {
							if recv := m.Type().(*types.Signature).Recv(); recv != nil && atomicNamed(namedOf(recv.Type())) {
								permit(fun.X)
							}
						}
					case *ast.Ident:
						if b, _ := info.Uses[fun].(*types.Builtin); b != nil && (b.Name() == "len" || b.Name() == "cap") {
							for _, arg := range n.Args {
								permit(arg)
							}
						}
					}
				case *ast.RangeStmt:
					permit(n.X)
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				f := isGuardedSelector(info, sel, shared)
				if f == nil || allowed[sel] {
					return true
				}
				if waivers.waived(pass.Fset, sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"//vpr:shared field %s.%s used outside its atomic methods — plain reads, copies, and address escapes race with the stepper goroutines; use Load/Store or waive with //vpr:guardexempt <reason>",
					shortName(f.structFull), f.name)
				return true
			})
		}
	}
}

// namedOf unwraps a pointer and returns t's named type (the receiver of
// atomic methods is *atomic.Int64).
func namedOf(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// checkCorePrivate computes the static closure of every goroutine
// launched inside a //vpr:stepper function and reports any reference to
// a //vpr:coreprivate field from inside it.
func checkCorePrivate(pass *analysis.Pass, idx map[string]funcDecl, private []guardedField, waivers waiverLines) {
	if len(private) == 0 {
		return
	}
	// Goroutine roots: `go f(...)` and `go func(){...}()` statements in
	// stepper functions. Declared targets seed a BFS over static callees;
	// function-literal bodies are scanned directly and their callees join
	// the queue.
	reach := make(map[string]bool)
	var queue []string
	var litBodies []struct {
		pkg  *analysis.Package
		body *ast.BlockStmt
	}
	for _, fn := range idx {
		if !hasDirective(funcDirectives(fn.decl), "stepper") {
			continue
		}
		info := fn.pkg.TypesInfo
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				litBodies = append(litBodies, struct {
					pkg  *analysis.Package
					body *ast.BlockStmt
				}{fn.pkg, lit.Body})
				return true
			}
			if callee := calleeOf(info, g.Call); callee != nil {
				if !reach[callee.FullName()] {
					reach[callee.FullName()] = true
					queue = append(queue, callee.FullName())
				}
			}
			return true
		})
	}
	sort.Strings(queue)
	enqueueCallees := func(pkg *analysis.Package, body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(pkg.TypesInfo, call); callee != nil {
				full := callee.FullName()
				if _, declared := idx[full]; declared && !reach[full] {
					reach[full] = true
					queue = append(queue, full)
				}
			}
			return true
		})
	}
	for _, lit := range litBodies {
		enqueueCallees(lit.pkg, lit.body)
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		fn, declared := idx[name]
		if !declared {
			continue
		}
		enqueueCallees(fn.pkg, fn.decl.Body)
	}

	report := func(pkg *analysis.Package, body ast.Node, where string) {
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := isGuardedSelector(pkg.TypesInfo, sel, private)
			if f == nil || waivers.waived(pass.Fset, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"//vpr:coreprivate field %s.%s referenced from %s, which a stepper goroutine can reach — serial-only state must stay off the concurrent phases; restructure or waive with //vpr:guardexempt <reason>",
				shortName(f.structFull), f.name, where)
			return true
		})
	}
	names := make([]string, 0, len(reach))
	for name := range reach {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if fn, declared := idx[name]; declared {
			report(fn.pkg, fn.decl.Body, shortName(name))
		}
	}
	for _, lit := range litBodies {
		report(lit.pkg, lit.body, "a goroutine function literal")
	}
}
