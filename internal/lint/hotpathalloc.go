package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// HotPathAlloc flags allocating constructs in the simulator's per-cycle
// kernel. Functions annotated //vpr:hotpath are roots; everything they
// statically call within the module (direct function calls and concrete
// method calls — interface dispatch is a traversal boundary, which is why
// the per-cycle core.Renamer and mem.Memory implementations carry their
// own //vpr:hotpath annotations) is checked for:
//
//   - append (growth may allocate; retained-capacity idioms are waived
//     explicitly so the amortization argument is written down)
//   - make, new, map/slice composite literals, &composite literals
//   - closure literals (func values capture and allocate)
//   - fmt calls and non-constant string concatenation / conversions
//   - interface boxing of non-pointer-shaped values
//
// //vpr:coldpath cuts traversal into error-reporting and debug-only
// helpers; //vpr:allowalloc on (or immediately above) a line waives one
// finding with its reason in the source.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "per-cycle //vpr:hotpath code and its static callees must not allocate",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	idx := indexFuncs(pass.Pkgs)
	waivers := collectWaiverLines(pass.Fset, pass.Pkgs, "allowalloc")

	// provenance records how the traversal reached each hot function.
	type provenance struct{ root, via string }
	hot := make(map[string]provenance)
	var queue []string
	cold := make(map[string]bool)
	for name, fn := range idx {
		ds := funcDirectives(fn.decl)
		if hasDirective(ds, "coldpath") {
			cold[name] = true
		}
		if hasDirective(ds, "hotpath") {
			hot[name] = provenance{root: name, via: name}
			queue = append(queue, name)
		}
	}
	sort.Strings(queue) // deterministic traversal order

	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		fn := idx[name]
		from := hot[name]
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fn.pkg.TypesInfo, call)
			if callee == nil {
				return true
			}
			full := callee.FullName()
			target, declared := idx[full]
			if !declared || cold[full] {
				return true // outside the module, or an explicit cold boundary
			}
			if _, seen := hot[full]; seen {
				return true
			}
			_ = target
			hot[full] = provenance{root: from.root, via: name}
			queue = append(queue, full)
			return true
		})
	}

	// Check every hot function, in deterministic order, one finding per
	// line (an fmt.Errorf call would otherwise report both the call and
	// the boxing of its arguments; the line is also the waiver unit).
	names := make([]string, 0, len(hot))
	for name := range hot {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := idx[name]
		c := &allocChecker{
			pass:    pass,
			pkg:     fn.pkg,
			waivers: waivers,
			where:   shortName(name),
			root:    shortName(hot[name].root),
			seen:    make(map[int]bool),
		}
		c.checkFunc(fn.decl)
	}
	return nil
}

// shortName compresses "(*repro/internal/mem.L1).Access" to
// "(*mem.L1).Access" for readable diagnostics.
func shortName(full string) string {
	last := strings.LastIndex(full, "/")
	if last < 0 {
		return full
	}
	prefix := ""
	switch {
	case strings.HasPrefix(full, "(*"):
		prefix = "(*"
	case strings.HasPrefix(full, "("):
		prefix = "("
	}
	return prefix + full[last+1:]
}

// allocChecker walks one hot function body reporting allocation sites.
type allocChecker struct {
	pass    *analysis.Pass
	pkg     *analysis.Package
	waivers waiverLines
	where   string
	root    string
	seen    map[int]bool // lines already reported in this function
}

func (c *allocChecker) report(pos token.Pos, what string) {
	line := c.pass.Fset.Position(pos).Line
	if c.seen[line] || c.waivers.waived(c.pass.Fset, pos) {
		return
	}
	c.seen[line] = true
	suffix := ""
	if c.root != c.where {
		suffix = " (hot path via " + c.root + ")"
	}
	c.pass.Reportf(pos, "%s in hot-path function %s%s — fix it or waive with //vpr:allowalloc <reason>",
		what, c.where, suffix)
}

func (c *allocChecker) checkFunc(fd *ast.FuncDecl) {
	sig, _ := c.pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	var results *types.Tuple
	if sig != nil {
		results = sig.Type().(*types.Signature).Results()
	}
	c.walk(fd.Body, results)
}

// walk inspects a statement tree; results is the enclosing function's
// result tuple, used to detect boxing at return statements.
func (c *allocChecker) walk(body ast.Node, results *types.Tuple) {
	info := c.pkg.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "closure literal (allocates a func value)")
			return false // the closure's body is checked only if it is itself reachable

		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				c.report(n.Pos(), "map literal (allocates)")
			case *types.Slice:
				c.report(n.Pos(), "slice literal (allocates)")
			}

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal (escapes to the heap)")
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					c.report(n.Pos(), "string concatenation (allocates)")
				}
			}

		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, res := range n.Results {
					c.checkBoxing(res, results.At(i).Type())
				}
			}

		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if lt, ok := info.Types[n.Lhs[i]]; ok {
						c.checkBoxing(rhs, lt.Type)
					}
				}
			}

		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

func (c *allocChecker) checkCall(call *ast.CallExpr) {
	info := c.pkg.TypesInfo

	// Builtins and conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				c.report(call.Pos(), "append (growth allocates without preallocated capacity)")
			case "make":
				c.report(call.Pos(), "make (allocates)")
			case "new":
				c.report(call.Pos(), "new (allocates)")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	// fmt calls allocate (formatting state plus boxed arguments).
	if callee := calleeOf(info, call); callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt."+callee.Name()+" call (allocates)")
		return
	}

	// Interface boxing at call arguments.
	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis != token.NoPos {
				pt = last // passed as the slice itself
			} else if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt != nil {
			c.checkBoxing(arg, pt)
		}
	}
}

// checkConversion flags converting constructs: string(bytes/runes/int),
// []byte(string), []rune(string).
func (c *allocChecker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := c.pkg.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value != nil {
		return
	}
	from := tv.Type
	switch {
	case isString(to) && !isString(from):
		c.report(call.Pos(), "conversion to string (allocates)")
	case isByteOrRuneSlice(to) && isString(from):
		c.report(call.Pos(), "string-to-slice conversion (allocates)")
	}
}

// checkBoxing reports arg when storing it into target requires an
// interface allocation: target is an interface type and arg's concrete
// type is not pointer-shaped (pointers, channels, maps and funcs fit the
// interface word; everything else is copied to the heap).
func (c *allocChecker) checkBoxing(arg ast.Expr, target types.Type) {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pkg.TypesInfo.Types[arg]
	if !ok || tv.IsNil() {
		return
	}
	at := tv.Type
	if _, ok := at.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries the existing box
	}
	if !boxes(at) {
		return
	}
	c.report(arg.Pos(), "interface boxing of non-pointer value (allocates)")
}

// boxes reports whether storing a value of concrete type t in an
// interface allocates.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		return u.NumFields() > 0
	case *types.Array:
		return u.Len() > 0
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
