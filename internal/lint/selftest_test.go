package lint_test

import (
	"os/exec"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// TestRepoClean runs every analyzer over the repository itself, in both
// build-tag variants, and requires zero findings: the tree must stay
// lint-clean, and any new invariant violation fails `go test ./...`
// before it ever reaches CI.
func TestRepoClean(t *testing.T) {
	for _, tc := range []struct {
		name  string
		flags []string
	}{
		{name: "default", flags: nil},
		{name: "scanoracle", flags: []string{"-tags=scanoracle"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fset, pkgs, err := analysis.Load(analysis.Config{Dir: "../..", BuildFlags: tc.flags}, "./...")
			if err != nil {
				t.Fatalf("loading repo: %v", err)
			}
			diags, err := analysis.Run(fset, pkgs, lint.Analyzers())
			if err != nil {
				t.Fatalf("running analyzers: %v", err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
			}
		})
	}
}

// TestVplintExitsZero drives the real cmd/vplint binary the way CI does
// and requires a clean exit — the module-level acceptance check.
func TestVplintExitsZero(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/vplint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/vplint ./... failed: %v\n%s", err, out)
	}
}
