package vpr_test

import (
	"context"
	"strings"
	"testing"

	vpr "repro"
)

// TestRunMulticoreFacadeMatchesSingleCore: through the public API, a
// 1-core multi-core run with the shared L2 disabled is the paper's
// machine — architecturally byte-identical to vpr.Run on the same point.
func TestRunMulticoreFacadeMatchesSingleCore(t *testing.T) {
	cfg := vpr.DefaultConfig()
	single, err := vpr.Run(vpr.RunSpec{Workload: "compress", Config: cfg, MaxInstr: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := vpr.RunMulticore(vpr.MulticoreSpec{
		Workloads:       []string{"compress"},
		Config:          cfg,
		MaxInstrPerCore: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Stats.Arch() != single.Stats.Arch() {
		t.Errorf("1-core RunMulticore diverges from Run:\n mc  %+v\n run %+v",
			mc.Stats.Arch(), single.Stats.Arch())
	}
	if len(mc.PerCore) != 1 || mc.PerCore[0].Arch() != single.Stats.Arch() {
		t.Error("per-core stats must match the single-core run")
	}
}

// TestMulticoreExperiment: the registry experiment runs through the
// engine and renders the cores × scheme table.
func TestMulticoreExperiment(t *testing.T) {
	eng := vpr.New()
	opts := vpr.ExperimentOptions{Instr: 4_000, Workloads: []string{"compress"}, Cores: []int{1, 2}}
	res, err := eng.RunExperiment(context.Background(), "multicore", opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Value.([]vpr.MulticoreRow)
	if !ok {
		t.Fatalf("result value is %T, want []vpr.MulticoreRow", res.Value)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (1 workload × 2 core counts)", len(rows))
	}
	for _, r := range rows {
		if r.ConvIPC <= 0 || r.VPIPC <= 0 {
			t.Errorf("cores=%d: non-positive IPC %+v", r.Cores, r)
		}
	}
	if !strings.Contains(res.Text, "cores") || !strings.Contains(res.Text, "L2 miss") {
		t.Errorf("rendering missing expected columns:\n%s", res.Text)
	}
	// The sweep shares no points with other experiments but caches its
	// own: re-running is free.
	if _, err := eng.RunExperiment(context.Background(), "multicore", opts); err != nil {
		t.Fatal(err)
	}
	if hits, _ := eng.CacheStats(); hits < 4 {
		t.Errorf("re-run hit the cache %d times, want >= 4", hits)
	}
}
