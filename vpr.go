// Package vpr is the public face of this repository: a from-scratch,
// cycle-accurate reproduction of "Virtual-Physical Registers" (A. González,
// J. González, M. Valero; HPCA 1998) as a Go library.
//
// The paper proposes delaying the allocation of physical registers from the
// decode stage (conventional renaming) to the issue or write-back stage,
// tracking dependences meanwhile through storage-less virtual-physical
// register tags. This package exposes:
//
//   - Engine, the context-aware entry point: New builds one with functional
//     options (WithParallelism, WithCache, WithProgress), Engine.Run
//     simulates one workload × machine configuration point,
//     Engine.RunBatch fans a spec list out over a worker pool with
//     cancellation and a deterministic result cache, and
//     Engine.RunExperiment executes any named experiment from the registry,
//   - the experiment registry (Experiments): every table and figure of the
//     paper's evaluation (Table 2, Figures 4–7), four ablations, the SMT
//     future-work study and the register-lifetime study, each a named,
//     data-driven experiment that builds a spec list and reduces results,
//   - pluggable stage policies and probes (Policies, WithProbe): the SMT
//     fetch policy and the issue-select heuristic are small interfaces
//     looked up by name in a policy registry (FetchPolicies,
//     IssueSelects), and a Probe observes kernel events — dispatch,
//     issue, completion, commit, squash, allocation refusal — cycle by
//     cycle without allocating on the hot path,
//   - the workload catalog named after the paper's SPEC95 benchmarks,
//   - the §3.1 analytic register-pressure model (ChainPressure),
//   - an assembler for the mini-ISA, so custom workloads can be written
//     as assembly text and simulated like the built-in kernels,
//   - trace tooling (DumpTrace, OpenTrace, MeasureTraceMix) for inspecting
//     and persisting the committed-path traces that drive the simulator.
//
// Everything underneath — ISA, assembler, functional emulator, trace
// layer, branch predictor, lockup-free cache, renaming schemes, the
// out-of-order pipeline, the batch engine and the experiment registry —
// lives in internal packages; this package is the supported API surface.
// See README.md for a quickstart and the experiment registry reference.
package vpr

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Scheme selects a register renaming scheme.
type Scheme = core.Scheme

// The three schemes the paper compares.
const (
	SchemeConventional = core.SchemeConventional // R10000-style, allocate at decode
	SchemeVPWriteback  = core.SchemeVPWriteback  // virtual-physical, allocate at write-back
	SchemeVPIssue      = core.SchemeVPIssue      // virtual-physical, allocate at issue
)

// Config is the full machine description (§4.1 of the paper by default).
type Config = pipeline.Config

// RenameParams sizes the renamer (physical registers, NRR, ...).
type RenameParams = core.Params

// Disambiguation selects the memory-ordering policy for loads.
type Disambiguation = pipeline.Disambiguation

// The two memory-disambiguation policies.
const (
	DisambSpeculative  = pipeline.DisambSpeculative  // PA-8000-style address reorder buffer
	DisambConservative = pipeline.DisambConservative // loads wait for older store addresses
)

// Stats is the statistics block a run produces.
type Stats = pipeline.Stats

// RunSpec describes one simulation (workload or custom generator, machine
// configuration, instruction budget). Set GenID when supplying a custom
// generator that should participate in result caching.
type RunSpec = sim.Spec

// Result is a completed run.
type Result = sim.Result

// SMTSpec and SMTResult describe direct multithreaded runs.
type (
	SMTSpec   = sim.SMTSpec
	SMTResult = sim.SMTResult
)

// MulticoreSpec and MulticoreResult describe multi-core runs: one
// workload per core (a catalog kernel, or a synthetic preset named
// "synth:<preset>" — see SynthWorkloadPrefix), each core a full
// single-thread pipeline with a private lockup-free L1, all cores stepped
// in cycle-lockstep behind a banked finite shared L2 (internal/mem). Set
// SharedAddressSpace to let cores share L2 lines, and Coherence to run
// a directory protocol over them: stores then invalidate remote L1
// copies through an ownership/upgrade path, dirty remote lines are
// forwarded over the bank bus, and the traffic surfaces as
// Stats.L2Invalidations / L2Upgrades / L2WritebackForwards. Protocol
// selects the state machine — "msi" (the pinned default), "mesi" (silent
// E→M upgrades, Stats.SilentUpgrades), or "moesi" (cache-to-cache dirty
// forwarding, Stats.L2OwnerForwards) — and Directory the sharer
// representation: "fullmap" (exact bitmask, ≤64 cores) or "limited:N"
// (N pointers, broadcast on overflow, no core cap;
// Stats.L2DirOverflows / L2DirBroadcasts). With Coherence unset, runs
// are byte-identical to the coherence-free hierarchy.
type (
	MulticoreSpec   = sim.MulticoreSpec
	MulticoreResult = sim.MulticoreResult
)

// SynthWorkloadPrefix marks a multicore workload name as a synthetic
// preset ("synth:sharing" is the coherence experiment's sharing-heavy
// stream) rather than a catalog kernel.
const SynthWorkloadPrefix = sim.SynthWorkloadPrefix

// StepMode selects how a multi-core run advances its cores:
// StepLockstep (the default) is the serial oracle, StepParallel runs one
// goroutine per core under a per-cycle barrier, and StepSkew(W) lets
// cores free-run up to W cycles ahead ("skew:inf" unbounded) with every
// shared-memory interaction still applied in the oracle's global (cycle,
// core-index) order. All modes produce bit-identical statistics and
// commit streams; only host throughput differs.
type StepMode = pipeline.StepMode

// Step-mode re-exports; see pipeline.ParseStepMode for the spellings.
const (
	StepLockstep = pipeline.StepLockstep
	StepParallel = pipeline.StepParallel
)

// StepSkew returns the skew-window stepping mode with window w (< 0 =
// unbounded).
func StepSkew(w int64) StepMode { return pipeline.StepSkew(w) }

// ParseStepMode validates a -step flag value: "lockstep", "parallel",
// "skew:W" or "skew:inf".
func ParseStepMode(s string) (StepMode, error) { return pipeline.ParseStepMode(s) }

// L2Config sizes the banked shared L2 of a multi-core run; the zero
// value (Enabled=false) gives every core a private infinite-L2 hierarchy
// — the paper's machine per core.
type L2Config = mem.L2Config

// DefaultL2Config is a 256 KB, 4-bank shared L2 (L2 hits 20 cycles,
// misses 100, 4-cycle bank bus per line transfer).
func DefaultL2Config() L2Config { return mem.DefaultL2Config() }

// ParseL2Geometry parses the CLI shared-L2 geometry syntax "SIZE[:BANKS]"
// — SIZE accepts a K or M suffix ("256K:4", "1M:8", "524288") — and
// returns the size in bytes and the bank count (0 when ":BANKS" was
// omitted). Both cmd/vptables and cmd/vpbench speak this syntax.
func ParseL2Geometry(s string) (sizeBytes, banks int, err error) {
	sizePart, bankPart, hasBanks := strings.Cut(s, ":")
	if hasBanks {
		banks, err = strconv.Atoi(bankPart)
		if err != nil || banks < 1 {
			return 0, 0, fmt.Errorf("vpr: bad L2 bank count %q", bankPart)
		}
	}
	mult := 1
	switch {
	case strings.HasSuffix(sizePart, "K"), strings.HasSuffix(sizePart, "k"):
		mult, sizePart = 1024, sizePart[:len(sizePart)-1]
	case strings.HasSuffix(sizePart, "M"), strings.HasSuffix(sizePart, "m"):
		mult, sizePart = 1024*1024, sizePart[:len(sizePart)-1]
	}
	n, err := strconv.Atoi(sizePart)
	if err != nil || n < 1 {
		return 0, 0, fmt.Errorf("vpr: bad L2 size %q", s)
	}
	return n * mult, banks, nil
}

// CoherenceProtocol is one registered coherence protocol state machine —
// its declared transition table plus the decision hooks the memory
// hierarchy consults (see internal/mem and internal/mem/conftest, whose
// conformance harness checks every implementation against its table).
type CoherenceProtocol = mem.Protocol

// CoherenceProtocols lists the registered protocols, default (msi) first.
func CoherenceProtocols() []CoherenceProtocol { return mem.Protocols() }

// CoherenceProtocolByName resolves a -protocol selection ("msi", "mesi",
// "moesi"; "" = msi).
func CoherenceProtocolByName(name string) (CoherenceProtocol, error) {
	return mem.ProtocolByName(name)
}

// DirectoryKindInfo describes one registered directory sharer
// representation (-dir): "fullmap" is the exact bitmask capped at 64
// cores; "limited" keeps N exact pointers and degrades overflowing sets
// to broadcast, with no core cap.
type DirectoryKindInfo = mem.DirectoryKindInfo

// DirectoryKinds lists the registered representations, default first.
func DirectoryKinds() []DirectoryKindInfo { return mem.DirectoryKinds() }

// ParseDirectoryKind validates a -dir selection ("fullmap",
// "limited[:N]"; "" = fullmap) without building anything.
func ParseDirectoryKind(kind string) error { return mem.ParseDirectoryKind(kind) }

// MemStats are the memory-hierarchy counters a Memory port accumulates
// (pipeline.Stats carries the per-run view; this is the raw form the
// internal hierarchy reports).
type MemStats = mem.Stats

// DefaultConfig returns the paper's machine: 8-way out-of-order, 128-entry
// ROB, Table 1 functional units, 64 physical registers per file, 16 KB
// lockup-free L1 with 8 MSHRs, 2048-entry BHT, PA-8000-style speculative
// memory disambiguation.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// --- Engine -------------------------------------------------------------------

// EngineOption configures an Engine built by New.
type EngineOption = engine.Option

// WithParallelism caps the number of concurrently running simulations in a
// batch. n < 1 selects GOMAXPROCS.
func WithParallelism(n int) EngineOption { return engine.WithParallelism(n) }

// WithCache sizes the engine's deterministic result cache (entries,
// LRU-evicted). The cache is keyed by a canonical hash of
// workload/generator identity, machine configuration and instruction
// budget, so overlapping sweeps — e.g. the conventional baselines shared
// by figures 4, 5 and 7 — never re-simulate the same point. capacity <= 0
// disables caching.
func WithCache(capacity int) EngineOption { return engine.WithCache(capacity) }

// WithProgress installs a callback invoked once per completed point (cache
// hits included). The engine serializes the calls.
func WithProgress(fn func(format string, args ...any)) EngineOption {
	return engine.WithProgress(fn)
}

// WithRunHook installs a callback fired immediately before every actual
// simulation; cache hits do not fire it. Useful for metering and for
// asserting cache behaviour in tests.
func WithRunHook(fn func(spec RunSpec)) EngineOption { return engine.WithRunHook(fn) }

// WithProbe attaches a pipeline probe to every simulation the engine runs
// (a spec-level probe in Config.Policies.Probe takes precedence for its
// run). Probed runs never read the result cache — a cached result would
// skip the callbacks — but still populate it for unprobed repeats.
// Batches invoke the probe from several goroutines at once, so it must be
// safe for concurrent use.
func WithProbe(p Probe) EngineOption { return engine.WithProbe(p) }

// Engine executes simulation points and experiments with bounded
// parallelism and result caching. Construct with New; an Engine is safe
// for concurrent use.
type Engine struct {
	eng *engine.Engine
}

// New builds an Engine. Defaults: parallelism = GOMAXPROCS and a result
// cache of engine.DefaultCacheCapacity entries.
func New(opts ...EngineOption) *Engine {
	return &Engine{eng: engine.New(opts...)}
}

// Parallelism reports the worker-pool width batches run with.
func (e *Engine) Parallelism() int { return e.eng.Parallelism() }

// CacheStats reports lifetime result-cache hits and misses.
func (e *Engine) CacheStats() (hits, misses int64) { return e.eng.CacheStats() }

// Run simulates one point under ctx, consulting and populating the result
// cache.
func (e *Engine) Run(ctx context.Context, spec RunSpec) (Result, error) {
	return e.eng.Run(ctx, spec)
}

// RunBatch fans specs out over the worker pool and returns results in spec
// order. Results are identical at every parallelism level; the first
// error (or ctx cancellation — test with errors.Is, since a cancellation
// landing mid-simulation arrives wrapped) stops the batch.
func (e *Engine) RunBatch(ctx context.Context, specs []RunSpec) ([]Result, error) {
	return e.eng.RunBatch(ctx, specs)
}

// RunSMT simulates one multithreaded machine under ctx: one workload per
// hardware thread sharing the pipeline, cache and physical register files.
func (e *Engine) RunSMT(ctx context.Context, spec SMTSpec) (SMTResult, error) {
	return e.eng.RunSMT(ctx, spec)
}

// RunSMTBatch is RunBatch for multithreaded points.
func (e *Engine) RunSMTBatch(ctx context.Context, specs []SMTSpec) ([]SMTResult, error) {
	return e.eng.RunSMTBatch(ctx, specs)
}

// RunMulticore simulates one multi-core machine under ctx: one workload
// per core, private L1s over the banked shared L2, cores stepped in
// cycle-lockstep. Results cache under a key covering the per-core
// machine and the shared-L2 memory configuration.
func (e *Engine) RunMulticore(ctx context.Context, spec MulticoreSpec) (MulticoreResult, error) {
	return e.eng.RunMulticore(ctx, spec)
}

// RunMulticoreBatch shards independent multi-core specs across the
// worker pool (each machine's cores stay in lockstep on one worker) and
// returns results in spec order.
func (e *Engine) RunMulticoreBatch(ctx context.Context, specs []MulticoreSpec) ([]MulticoreResult, error) {
	return e.eng.RunMulticoreBatch(ctx, specs)
}

// RunExperiment builds the named experiment's spec list, executes it
// through the engine's worker pool and cache, and reduces the runs into
// the experiment's typed result plus its paper-shaped rendering. The
// available names are listed by Experiments.
func (e *Engine) RunExperiment(ctx context.Context, name string, opts ExperimentOptions) (ExperimentResult, error) {
	exp, ok := experiments.ByName(name)
	if !ok {
		return ExperimentResult{}, &UnknownExperimentError{Name: name}
	}
	v, err := exp.Run(ctx, e.eng, opts)
	if err != nil {
		return ExperimentResult{}, err
	}
	return ExperimentResult{Name: name, Value: v, Text: exp.Render(v)}, nil
}

// Run simulates one point on a throwaway engine.
//
// Deprecated: construct an Engine with New and use Engine.Run, which adds
// context cancellation and result caching.
func Run(spec RunSpec) (Result, error) { return sim.Run(spec) }

// RunSMT simulates one multithreaded machine on a throwaway engine.
//
// Deprecated: construct an Engine with New and use Engine.RunSMT.
func RunSMT(spec SMTSpec) (SMTResult, error) { return sim.RunSMT(spec) }

// RunMulticore simulates one multi-core machine synchronously: N
// single-thread cores with private L1s behind the banked shared L2,
// stepped in cycle-lockstep. For batches, cancellation and result
// caching, construct an Engine with New and use Engine.RunMulticore.
func RunMulticore(spec MulticoreSpec) (MulticoreResult, error) { return sim.RunMulticore(spec) }

// --- Stage policies and probes ------------------------------------------------

// Policies composes the pluggable per-stage behaviours of a Config: the
// SMT fetch policy, the issue-select heuristic and an optional probe. The
// zero value is the paper's §4.1 machine everywhere.
type Policies = pipeline.Policies

// FetchPolicy decides which hardware thread receives the front end's
// fetch bandwidth each cycle; FetchCandidate is what it chooses among.
type (
	FetchPolicy    = pipeline.FetchPolicy
	FetchCandidate = pipeline.FetchCandidate
)

// IssueSelect ranks a thread's ready instructions for the issue stage;
// IssueCandidate is one ready instruction.
type (
	IssueSelect    = pipeline.IssueSelect
	IssueCandidate = pipeline.IssueCandidate
)

// Probe observes kernel events (dispatch, issue, completion, commit,
// squash, allocation refusal, cycle boundaries) without allocating on the
// simulation hot path. Embed BaseProbe to implement only the events of
// interest.
type (
	Probe     = pipeline.Probe
	BaseProbe = pipeline.BaseProbe
)

// PolicyInfo describes one registered policy for listings and CLI help.
type PolicyInfo = pipeline.PolicyInfo

// The registered policy names, usable with FetchPolicyByName and
// IssueSelectByName (and the CLI -fetch/-issue flags).
const (
	FetchRoundRobin       = pipeline.FetchRoundRobin       // default: first fetchable thread in rotation order
	FetchICount           = pipeline.FetchICount           // Tullsen-style least-loaded-thread fetch gating
	IssueOldestFirst      = pipeline.IssueOldestFirst      // default: program order
	IssueLoadFirst        = pipeline.IssueLoadFirst        // ready loads before everything else
	IssueLongLatencyFirst = pipeline.IssueLongLatencyFirst // longest execution latency first
)

// FetchPolicies lists the registered fetch policies, default first.
func FetchPolicies() []PolicyInfo { return pipeline.FetchPolicies() }

// FetchPolicyByName returns the registered fetch policy.
func FetchPolicyByName(name string) (FetchPolicy, bool) { return pipeline.FetchPolicyByName(name) }

// IssueSelects lists the registered issue-select heuristics, default first.
func IssueSelects() []PolicyInfo { return pipeline.IssueSelects() }

// IssueSelectByName returns the registered issue-select heuristic.
func IssueSelectByName(name string) (IssueSelect, bool) { return pipeline.IssueSelectByName(name) }

// --- Experiment registry ------------------------------------------------------

// ExperimentOptions tune the experiment runners (instruction budget per
// run, workload subset, progress callback).
type ExperimentOptions = experiments.Options

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	// Name keys the experiment for Engine.RunExperiment.
	Name string
	// Title is a one-line description for listings and CLI help.
	Title string
	// Reproduces names the paper artifact or repository study the
	// experiment regenerates.
	Reproduces string
}

// Experiments enumerates the registry in the paper's reporting order:
// every table and figure of the evaluation, the ablations, and the SMT
// future-work study. CLI help and documentation are generated from this
// list rather than hand-maintained.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{Name: e.Name, Title: e.Title, Reproduces: e.Reproduces})
	}
	return out
}

// ExperimentResult is a completed experiment: the typed result value
// (Table2, NRRSweep, []AblationRow, ...) and its rendering in the paper's
// row/series shape.
type ExperimentResult struct {
	Name  string
	Value any
	Text  string
}

// UnknownExperimentError reports an experiment name not in the registry.
type UnknownExperimentError struct{ Name string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "vpr: unknown experiment " + e.Name
}

// Experiment result types, re-exported for consumers of the runners.
type (
	Table2      = experiments.Table2
	NRRSweep    = experiments.NRRSweep
	Fig6Row     = experiments.Fig6Row
	Fig7        = experiments.Fig7
	AblationRow = experiments.AblationRow
)

// SMTRow is one point of the simultaneous-multithreading scaling study.
type SMTRow = experiments.SMTRow

// LifetimeRow is one point of the register-holding-time study (§3.1 in
// vivo).
type LifetimeRow = experiments.LifetimeRow

// FetchPolicyRow is one point of the SMT fetch-policy study (ICOUNT vs
// round-robin on the §5 machine).
type FetchPolicyRow = experiments.FetchPolicyRow

// MulticoreRow is one point of the multi-core scaling study (cores ×
// register-pool scheme over the banked shared L2).
type MulticoreRow = experiments.MulticoreRow

// CoherenceRow is one point of the MSI coherence study (cores × scheme ×
// coherence on/off on the sharing-heavy synthetic workload, with a
// namespaced zero-invalidation control).
type CoherenceRow = experiments.CoherenceRow

// RunTable2 reproduces Table 2 (conventional vs VP write-back at 64
// registers, max NRR), optionally with the 20-cycle miss-penalty footnote.
//
// Deprecated: use Engine.RunExperiment(ctx, "table2", opts) instead.
func RunTable2(opts ExperimentOptions, withPenalty20 bool) (Table2, error) {
	return experiments.RunTable2(opts, withPenalty20)
}

// RunFigure4 reproduces figure 4 (VP write-back speedup across NRR).
//
// Deprecated: use Engine.RunExperiment(ctx, "fig4", opts) instead.
func RunFigure4(opts ExperimentOptions) (NRRSweep, error) {
	return experiments.RunNRRSweep(core.SchemeVPWriteback, nil, opts)
}

// RunFigure5 reproduces figure 5 (VP issue-allocation speedup across NRR).
//
// Deprecated: use Engine.RunExperiment(ctx, "fig5", opts) instead.
func RunFigure5(opts ExperimentOptions) (NRRSweep, error) {
	return experiments.RunNRRSweep(core.SchemeVPIssue, nil, opts)
}

// RunFigure6 reproduces figure 6 (write-back vs issue at NRR=32).
//
// Deprecated: use Engine.RunExperiment(ctx, "fig6", opts) instead.
func RunFigure6(opts ExperimentOptions) ([]Fig6Row, error) {
	return experiments.RunFigure6(opts)
}

// RunFigure7 reproduces figure 7 (register-count sweep 48/64/96).
//
// Deprecated: use Engine.RunExperiment(ctx, "fig7", opts) instead.
func RunFigure7(opts ExperimentOptions) (Fig7, error) {
	return experiments.RunFigure7(opts)
}

// Ablation runners.
//
// Deprecated: use Engine.RunExperiment with "ablation-release",
// "ablation-disamb", "ablation-recovery" or "ablation-nrr-split" instead.
var (
	RunEarlyReleaseAblation   = experiments.RunEarlyReleaseAblation
	RunDisambiguationAblation = experiments.RunDisambiguationAblation
	RunRecoveryAblation       = experiments.RunRecoveryAblation
	RunSplitNRRAblation       = experiments.RunSplitNRRAblation
)

// RunLifetime measures how long each scheme holds physical registers —
// the experimental counterpart of the §3.1 analytic example.
//
// Deprecated: use Engine.RunExperiment(ctx, "lifetime", opts) instead.
func RunLifetime(opts ExperimentOptions) ([]LifetimeRow, error) {
	return experiments.RunLifetime(opts)
}

// RunSMTScaling realizes the paper's §5 future-work prediction across
// thread counts (default 1, 2, 4): the virtual-physical advantage under a
// shared register file.
//
// Deprecated: use Engine.RunExperiment(ctx, "smt", opts) instead (note:
// the registry entry defaults to a representative workload subset; this
// wrapper defaults to the full catalog).
func RunSMTScaling(threadCounts []int, opts ExperimentOptions) ([]SMTRow, error) {
	return experiments.RunSMTScaling(threadCounts, opts)
}

// Renderers that format experiment results in the paper's row/series shape.
var (
	RenderTable2   = experiments.RenderTable2
	RenderNRRSweep = experiments.RenderNRRSweep
	RenderFigure6  = experiments.RenderFigure6
	RenderFigure7  = experiments.RenderFigure7
	RenderAblation = experiments.RenderAblation
	RenderSMT      = experiments.RenderSMT
	RenderLifetime = experiments.RenderLifetime
)

// --- Workloads and traces -----------------------------------------------------

// Workload describes one catalog entry.
type Workload struct {
	Name        string
	Class       string // "int" or "fp"
	Description string
}

// Workloads lists the nine kernels in the paper's reporting order.
func Workloads() []Workload {
	var out []Workload
	for _, s := range workloads.Catalog() {
		out = append(out, Workload{Name: s.Name, Class: s.Class, Description: s.Description})
	}
	return out
}

// WorkloadGenerator returns a fresh emulator-backed trace generator for a
// catalog workload. Wrap it with TakeTrace to bound its length.
func WorkloadGenerator(name string) (trace.Generator, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, &UnknownWorkloadError{Name: name}
	}
	return w.NewGen()
}

// UnknownWorkloadError reports a workload name not in the catalog.
type UnknownWorkloadError struct{ Name string }

// Error implements error.
func (e *UnknownWorkloadError) Error() string {
	return "vpr: unknown workload " + e.Name
}

// Program is an assembled program for the mini-ISA.
type Program = isa.Program

// Assemble translates mini-ISA assembly text (see internal/asm for the
// syntax) into a Program that can drive the simulator via NewTrace.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// NewTrace functionally executes a program and returns the committed-path
// trace generator (with golden values) that drives the timing simulator.
func NewTrace(p *Program) (trace.Generator, error) {
	gen, err := emu.NewTraceGen(p)
	if err != nil {
		return nil, err
	}
	return gen, nil
}

// TraceGenerator produces committed-path trace records; the catalog,
// NewTrace and OpenTrace all yield one.
type TraceGenerator = trace.Generator

// TraceRecord is one committed instruction of a trace.
type TraceRecord = trace.Record

// TraceFunc adapts a function to a TraceGenerator.
type TraceFunc = trace.GenFunc

// TraceMix summarizes a trace's dynamic instruction mix.
type TraceMix = trace.Mix

// TakeTrace bounds a generator to n instructions.
func TakeTrace(gen trace.Generator, n int64) trace.Generator { return trace.Take(gen, n) }

// CollectTrace drains up to n records into a slice.
func CollectTrace(gen trace.Generator, n int64) []TraceRecord { return trace.Collect(gen, n) }

// DumpTrace writes up to n records of gen to w in the binary trace format
// and reports how many were written.
func DumpTrace(w io.Writer, gen trace.Generator, n int64) (int64, error) {
	return trace.Dump(w, gen, n)
}

// OpenTrace reads a binary trace previously written by DumpTrace.
func OpenTrace(r io.Reader) (trace.Generator, error) { return trace.NewReader(r) }

// MeasureTraceMix measures the dynamic instruction mix of up to n records.
func MeasureTraceMix(gen trace.Generator, n int64) TraceMix { return trace.MeasureMix(gen, n) }

// --- §3.1 analytic pressure model ---------------------------------------------

// AllocPoint is where a destination register is allocated (decode, issue,
// write-back).
type AllocPoint = sim.AllocPoint

// The three allocation points of the paper's §3.1 example.
const (
	AllocDecode    = sim.AllocDecode
	AllocIssue     = sim.AllocIssue
	AllocWriteback = sim.AllocWriteback
)

// ChainInterval is one instruction's register-holding interval.
type ChainInterval = sim.ChainInterval

// ChainPressure reproduces the paper's §3.1 register-pressure arithmetic
// for a serial dependence chain.
func ChainPressure(latencies []int, point AllocPoint) []ChainInterval {
	return sim.ChainPressure(latencies, point)
}

// TotalPressure sums register·cycles over the intervals.
func TotalPressure(ivs []ChainInterval) int { return sim.TotalPressure(ivs) }

// PaperExampleLatencies is the §3.1 chain (20-cycle load miss, fdiv 20,
// fmul 10, fadd 5).
func PaperExampleLatencies() []int { return sim.PaperExampleLatencies() }

// HarmonicMean is the paper's summary statistic for IPC.
func HarmonicMean(xs []float64) float64 { return metrics.HarmonicMean(xs) }

// ImprovementPct matches the paper's "imp (%)" columns.
func ImprovementPct(old, new float64) float64 { return metrics.ImprovementPct(old, new) }
